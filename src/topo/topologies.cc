#include "topo/topologies.h"

#include "common/logging.h"
#include "common/strings.h"

namespace spardl {

FlatTopology::FlatTopology(int num_workers, CostModel cost)
    : Topology(num_workers, cost) {
  const size_t p = static_cast<size_t>(num_workers);
  pair_link_.assign(p * p, -1);
  for (int s = 0; s < num_workers; ++s) {
    for (int d = 0; d < num_workers; ++d) {
      if (s == d) continue;
      const LinkId id = AddLink(s, d, cost.alpha, cost.beta);
      pair_link_[static_cast<size_t>(s) * p + static_cast<size_t>(d)] = id;
      // The (s, d) link is d's ingress: legacy WorkerSlowdown(d) scaled the
      // whole message cost of everything d receives.
      RegisterIngress(d, id);
    }
  }
}

void FlatTopology::Route(int src, int dst,
                         std::vector<LinkId>* path) const {
  path->clear();
  path->push_back(pair_link_[static_cast<size_t>(src) *
                                 static_cast<size_t>(num_workers()) +
                             static_cast<size_t>(dst)]);
}

double FlatTopology::ChargeMessage(int src, int dst, size_t words,
                                   double sent_at, double receiver_now) {
  (void)src;
  // Exact legacy arithmetic (same operation order as the old Comm::Recv,
  // including the branch-style max), so flat simulated times stay
  // bit-for-bit reproducible. No busy-until update: a per-pair link only
  // carries (src, dst) traffic, and the receiver's own clock already
  // serializes those messages, so the link can never be busy when the next
  // message is ready.
  const double ready = sent_at > receiver_now ? sent_at : receiver_now;
  return ready + base_cost().MessageSeconds(words) * NodeScale(dst);
}

StarTopology::StarTopology(int num_workers, CostModel cost)
    : Topology(num_workers, cost) {
  const int kSwitch = num_workers;  // graph-node id of the central switch
  up_.reserve(static_cast<size_t>(num_workers));
  down_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    up_.push_back(AddLink(w, kSwitch, cost.alpha / 2.0, cost.beta));
    down_.push_back(AddLink(kSwitch, w, cost.alpha / 2.0, cost.beta));
    RegisterIngress(w, down_.back());
  }
}

void StarTopology::Route(int src, int dst,
                         std::vector<LinkId>* path) const {
  path->clear();
  path->push_back(up_[static_cast<size_t>(src)]);
  path->push_back(down_[static_cast<size_t>(dst)]);
}

FatTreeTopology::FatTreeTopology(int num_workers, int rack_size,
                                 double oversubscription, CostModel cost)
    : Topology(num_workers, cost),
      rack_size_(rack_size),
      oversubscription_(oversubscription) {
  // Validate before the rack division: rack_size = 0 must hit the CHECK,
  // not a division by zero in an initializer.
  SPARDL_CHECK_GE(rack_size, 1);
  SPARDL_CHECK_GT(oversubscription, 0.0);
  num_racks_ = (num_workers + rack_size - 1) / rack_size;
  const int kTorBase = num_workers;          // ToR r has id P + r
  const int kCore = num_workers + num_racks_;
  for (int w = 0; w < num_workers; ++w) {
    const int tor = kTorBase + RackOf(w);
    up_.push_back(AddLink(w, tor, cost.alpha / 2.0, cost.beta));
    down_.push_back(AddLink(tor, w, cost.alpha / 2.0, cost.beta));
    RegisterIngress(w, down_.back());
  }
  for (int r = 0; r < num_racks_; ++r) {
    trunk_up_.push_back(AddLink(kTorBase + r, kCore, cost.alpha / 2.0,
                                cost.beta * oversubscription_));
    trunk_down_.push_back(AddLink(kCore, kTorBase + r, cost.alpha / 2.0,
                                  cost.beta * oversubscription_));
  }
}

std::string FatTreeTopology::Describe() const {
  return StrFormat("fattree(P=%d, racks of %d, oversub %.1f)",
                   num_workers(), rack_size_, oversubscription_);
}

void FatTreeTopology::Route(int src, int dst,
                            std::vector<LinkId>* path) const {
  path->clear();
  path->push_back(up_[static_cast<size_t>(src)]);
  const int src_rack = RackOf(src);
  const int dst_rack = RackOf(dst);
  if (src_rack != dst_rack) {
    path->push_back(trunk_up_[static_cast<size_t>(src_rack)]);
    path->push_back(trunk_down_[static_cast<size_t>(dst_rack)]);
  }
  path->push_back(down_[static_cast<size_t>(dst)]);
}

RingTopology::RingTopology(int num_workers, CostModel cost)
    : Topology(num_workers, cost) {
  for (int w = 0; w < num_workers && num_workers >= 2; ++w) {
    next_.push_back(
        AddLink(w, (w + 1) % num_workers, cost.alpha, cost.beta));
    RegisterIngress((w + 1) % num_workers, next_.back());
  }
  // With P = 2 the clockwise link already reaches the only neighbour; a
  // separate counter-clockwise cable would just duplicate it.
  for (int w = 0; w < num_workers && num_workers >= 3; ++w) {
    prev_.push_back(
        AddLink(w, (w + num_workers - 1) % num_workers, cost.alpha,
                cost.beta));
    RegisterIngress((w + num_workers - 1) % num_workers, prev_.back());
  }
}

void RingTopology::Route(int src, int dst,
                         std::vector<LinkId>* path) const {
  path->clear();
  const int p = num_workers();
  const int clockwise = (dst - src + p) % p;
  const int counter = p - clockwise;
  if (clockwise <= counter || prev_.empty()) {
    for (int w = src; w != dst; w = (w + 1) % p) {
      path->push_back(next_[static_cast<size_t>(w)]);
    }
  } else {
    for (int w = src; w != dst; w = (w + p - 1) % p) {
      path->push_back(prev_[static_cast<size_t>(w)]);
    }
  }
}

}  // namespace spardl
