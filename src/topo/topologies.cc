#include "topo/topologies.h"

#include <cstdint>

#include "common/logging.h"
#include "common/strings.h"

namespace spardl {

FlatTopology::FlatTopology(int num_workers, CostModel cost)
    : Topology(num_workers, cost) {
  const size_t p = static_cast<size_t>(num_workers);
  pair_link_.assign(p * p, -1);
  for (int s = 0; s < num_workers; ++s) {
    for (int d = 0; d < num_workers; ++d) {
      if (s == d) continue;
      const LinkId id = AddLink(s, d, cost.alpha, cost.beta);
      pair_link_[static_cast<size_t>(s) * p + static_cast<size_t>(d)] = id;
      // The (s, d) link is d's ingress: legacy WorkerSlowdown(d) scaled the
      // whole message cost of everything d receives.
      RegisterIngress(d, id);
    }
  }
}

void FlatTopology::Route(int src, int dst,
                         std::vector<LinkId>* path) const {
  path->clear();
  path->push_back(pair_link_[static_cast<size_t>(src) *
                                 static_cast<size_t>(num_workers()) +
                             static_cast<size_t>(dst)]);
}

double FlatTopology::ChargeMessage(int src, int dst, size_t words,
                                   double sent_at, double receiver_now) {
  (void)src;
  // Exact legacy arithmetic (same operation order as the old Comm::Recv,
  // including the branch-style max), so flat simulated times stay
  // bit-for-bit reproducible. No busy-until update: a per-pair link only
  // carries (src, dst) traffic, and the receiver's own clock already
  // serializes those messages, so the link can never be busy when the next
  // message is ready.
  const double ready = sent_at > receiver_now ? sent_at : receiver_now;
  return ready + base_cost().MessageSeconds(words) * NodeScale(dst);
}

StarTopology::StarTopology(int num_workers, CostModel cost)
    : Topology(num_workers, cost) {
  const int kSwitch = num_workers;  // graph-node id of the central switch
  up_.reserve(static_cast<size_t>(num_workers));
  down_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    up_.push_back(AddLink(w, kSwitch, cost.alpha / 2.0, cost.beta));
    down_.push_back(AddLink(kSwitch, w, cost.alpha / 2.0, cost.beta));
    RegisterIngress(w, down_.back());
  }
}

void StarTopology::Route(int src, int dst,
                         std::vector<LinkId>* path) const {
  path->clear();
  path->push_back(up_[static_cast<size_t>(src)]);
  path->push_back(down_[static_cast<size_t>(dst)]);
}

FatTreeTopology::FatTreeTopology(int num_workers, int rack_size,
                                 double oversubscription, CostModel cost,
                                 int num_cores)
    : Topology(num_workers, cost),
      rack_size_(rack_size),
      num_cores_(num_cores),
      oversubscription_(oversubscription) {
  // Validate before the rack division: rack_size = 0 must hit the CHECK,
  // not a division by zero in an initializer.
  SPARDL_CHECK_GE(rack_size, 1);
  SPARDL_CHECK_GE(num_cores, 1);
  SPARDL_CHECK_GT(oversubscription, 0.0);
  num_racks_ = (num_workers + rack_size - 1) / rack_size;
  const int kTorBase = num_workers;  // ToR r has id P + r
  const int kCoreBase = num_workers + num_racks_;  // core c has id after ToRs
  for (int w = 0; w < num_workers; ++w) {
    const int tor = kTorBase + RackOf(w);
    up_.push_back(AddLink(w, tor, cost.alpha / 2.0, cost.beta));
    down_.push_back(AddLink(tor, w, cost.alpha / 2.0, cost.beta));
    RegisterIngress(w, down_.back());
  }
  for (int r = 0; r < num_racks_; ++r) {
    for (int c = 0; c < num_cores_; ++c) {
      trunk_up_.push_back(AddLink(kTorBase + r, kCoreBase + c,
                                  cost.alpha / 2.0,
                                  cost.beta * oversubscription_));
      trunk_down_.push_back(AddLink(kCoreBase + c, kTorBase + r,
                                    cost.alpha / 2.0,
                                    cost.beta * oversubscription_));
    }
  }
}

std::string FatTreeTopology::DescribeSpec(int num_workers, int rack_size,
                                          double oversubscription,
                                          int num_cores) {
  if (num_cores > 1) {
    return StrFormat("fattree(P=%d, racks of %d, oversub %.1f, %d cores)",
                     num_workers, rack_size, oversubscription, num_cores);
  }
  return StrFormat("fattree(P=%d, racks of %d, oversub %.1f)", num_workers,
                   rack_size, oversubscription);
}

std::string FatTreeTopology::Describe() const {
  return DescribeSpec(num_workers(), rack_size_, oversubscription_,
                      num_cores_);
}

int FatTreeTopology::CoreFor(int src, int dst) const {
  // Fibonacci-style mixing so adjacent rank pairs do not all land on the
  // same core; any fixed hash works, it just has to be a pure function of
  // the pair.
  const uint64_t mix = static_cast<uint64_t>(src) * 0x9E3779B97F4A7C15ull +
                       static_cast<uint64_t>(dst) * 0xC2B2AE3D27D4EB4Full;
  return static_cast<int>((mix >> 32) % static_cast<uint64_t>(num_cores_));
}

void FatTreeTopology::Route(int src, int dst,
                            std::vector<LinkId>* path) const {
  path->clear();
  path->push_back(up_[static_cast<size_t>(src)]);
  const int src_rack = RackOf(src);
  const int dst_rack = RackOf(dst);
  if (src_rack != dst_rack) {
    const size_t core = static_cast<size_t>(CoreFor(src, dst));
    path->push_back(
        trunk_up_[static_cast<size_t>(src_rack) *
                      static_cast<size_t>(num_cores_) + core]);
    path->push_back(
        trunk_down_[static_cast<size_t>(dst_rack) *
                        static_cast<size_t>(num_cores_) + core]);
  }
  path->push_back(down_[static_cast<size_t>(dst)]);
}

RingTopology::RingTopology(int num_workers, CostModel cost)
    : Topology(num_workers, cost) {
  for (int w = 0; w < num_workers && num_workers >= 2; ++w) {
    next_.push_back(
        AddLink(w, (w + 1) % num_workers, cost.alpha, cost.beta));
    RegisterIngress((w + 1) % num_workers, next_.back());
  }
  // With P = 2 the clockwise link already reaches the only neighbour; a
  // separate counter-clockwise cable would just duplicate it.
  for (int w = 0; w < num_workers && num_workers >= 3; ++w) {
    prev_.push_back(
        AddLink(w, (w + num_workers - 1) % num_workers, cost.alpha,
                cost.beta));
    RegisterIngress((w + num_workers - 1) % num_workers, prev_.back());
  }
}

void RingTopology::Route(int src, int dst,
                         std::vector<LinkId>* path) const {
  path->clear();
  const int p = num_workers();
  const int clockwise = (dst - src + p) % p;
  const int counter = p - clockwise;
  if (clockwise <= counter || prev_.empty()) {
    for (int w = src; w != dst; w = (w + 1) % p) {
      path->push_back(next_[static_cast<size_t>(w)]);
    }
  } else {
    for (int w = src; w != dst; w = (w + p - 1) % p) {
      path->push_back(prev_[static_cast<size_t>(w)]);
    }
  }
}

TorusTopology::TorusTopology(int width, int height, CostModel cost)
    : Topology(width * height, cost), width_(width), height_(height) {
  SPARDL_CHECK_GE(width, 1);
  SPARDL_CHECK_GE(height, 1);
  const size_t p = static_cast<size_t>(num_workers());
  // Same cabling rules as RingTopology, applied per row and per column: a
  // dimension of 2 needs only the positive cable (the negative one would
  // duplicate it), a dimension of 1 needs none.
  if (width_ >= 2) x_next_.resize(p);
  if (width_ >= 3) x_prev_.resize(p);
  if (height_ >= 2) y_next_.resize(p);
  if (height_ >= 3) y_prev_.resize(p);
  for (int w = 0; w < num_workers(); ++w) {
    const int x = XOf(w);
    const int y = YOf(w);
    if (width_ >= 2) {
      const int to = WorkerAt((x + 1) % width_, y);
      x_next_[static_cast<size_t>(w)] = AddLink(w, to, cost.alpha, cost.beta);
      RegisterIngress(to, x_next_[static_cast<size_t>(w)]);
    }
    if (width_ >= 3) {
      const int to = WorkerAt((x + width_ - 1) % width_, y);
      x_prev_[static_cast<size_t>(w)] = AddLink(w, to, cost.alpha, cost.beta);
      RegisterIngress(to, x_prev_[static_cast<size_t>(w)]);
    }
    if (height_ >= 2) {
      const int to = WorkerAt(x, (y + 1) % height_);
      y_next_[static_cast<size_t>(w)] = AddLink(w, to, cost.alpha, cost.beta);
      RegisterIngress(to, y_next_[static_cast<size_t>(w)]);
    }
    if (height_ >= 3) {
      const int to = WorkerAt(x, (y + height_ - 1) % height_);
      y_prev_[static_cast<size_t>(w)] = AddLink(w, to, cost.alpha, cost.beta);
      RegisterIngress(to, y_prev_[static_cast<size_t>(w)]);
    }
  }
}

std::string TorusTopology::DescribeSpec(int num_workers, int width,
                                        int height) {
  return StrFormat("torus(P=%d, %dx%d)", num_workers, width, height);
}

std::string TorusTopology::Describe() const {
  return DescribeSpec(num_workers(), width_, height_);
}

int TorusTopology::WalkDimension(int from, int to, int dim,
                                 std::vector<LinkId>* path) const {
  const int extent = dim == 0 ? width_ : height_;
  const std::vector<LinkId>& next = dim == 0 ? x_next_ : y_next_;
  const std::vector<LinkId>& prev = dim == 0 ? x_prev_ : y_prev_;
  int at = dim == 0 ? XOf(from) : YOf(from);
  const int forward = (to - at + extent) % extent;
  const int backward = extent - forward;
  const bool positive = forward <= backward || prev.empty();
  int node = from;
  while (at != to) {
    path->push_back(positive ? next[static_cast<size_t>(node)]
                             : prev[static_cast<size_t>(node)]);
    at = positive ? (at + 1) % extent : (at + extent - 1) % extent;
    node = dim == 0 ? WorkerAt(at, YOf(node)) : WorkerAt(XOf(node), at);
  }
  return node;
}

void TorusTopology::Route(int src, int dst,
                          std::vector<LinkId>* path) const {
  path->clear();
  // Dimension-order routing: along the row first, then the column — the
  // deterministic deadlock-free classic, and every (src, dst) pair gets
  // one fixed path for both charge engines.
  const int mid = WalkDimension(src, XOf(dst), /*dim=*/0, path);
  WalkDimension(mid, YOf(dst), /*dim=*/1, path);
}

}  // namespace spardl
