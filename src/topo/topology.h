#ifndef SPARDL_TOPO_TOPOLOGY_H_
#define SPARDL_TOPO_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/lockcheck.h"
#include "obs/trace.h"
#include "simnet/cost_model.h"

namespace spardl {

/// Index of a directed link inside a `Topology`.
using LinkId = int;

/// Which accounting engine charges messages on this fabric.
///
///  * `kBusyUntil` — the legacy simnet v2 engine: each `Recv` walks the
///    route and advances per-link busy-until clocks in the wall-clock
///    order receivers happen to charge. Cheap and good enough for
///    uncontended fabrics, but contended times can shift (boundedly) with
///    thread interleaving.
///  * `kEventOrdered` — the simnet v3 discrete-event engine (`src/des`):
///    flows are injected at *send* time and per-hop transmission events
///    are processed in `(time, flow key)` order, so contended times are
///    bit-identical across runs regardless of thread scheduling.
///
/// Topologies whose charge is a closed form independent of link state
/// (`FlatTopology`) ignore the choice — both engines produce the exact
/// legacy arithmetic there.
enum class ChargeEngine {
  kBusyUntil,
  kEventOrdered,
};

std::string_view ChargeEngineName(ChargeEngine engine);

/// Static description of one directed link, for inspection and tests.
///
/// `tail`/`head` are graph-node ids: workers occupy 0..P-1, switches get
/// ids >= P. `alpha`/`beta` include any per-node scale currently applied
/// (see `Topology::SetNodeScale`).
struct LinkInfo {
  int tail = 0;
  int head = 0;
  double alpha = 0.0;
  double beta = 0.0;
};

/// Cumulative per-link charge counters, maintained by whichever engine is
/// accounting the fabric (the busy-until charge loop or the DES
/// `LinkServer`). Closed-form fabrics (`FlatTopology`) never touch link
/// state, so their counters stay zero.
struct LinkUsage {
  /// Simulated seconds the link was occupied (header latency plus body
  /// serialization of every message that crossed it).
  double busy_seconds = 0.0;
  /// Payload bytes carried (wire words * 4).
  uint64_t bytes = 0;
  uint64_t messages = 0;
  /// Worst queueing delay a header saw behind earlier flows — the
  /// time-domain measure of the deepest backlog this link built up.
  double max_queue_seconds = 0.0;
};

/// A simulated network fabric: workers and switches joined by directed
/// links, each with its own latency (alpha, seconds/message) and
/// serialization cost (beta, seconds/word).
///
/// Subclasses lay out the links and answer `Route(src, dst)`; the base
/// class owns the link-time accounting engine. A message of `words` sent
/// at `sent_at` traverses its path for
///
///     sum over path links of alpha_l  +  max over path links of beta_l*words
///
/// (cut-through forwarding: the header pays every hop's latency, the body
/// is serialized once at the bottleneck link), and each link it crosses is
/// occupied for its own serialization time via a per-link busy-until
/// clock. Two concurrent flows through a shared link therefore queue
/// instead of magically overlapping — the behaviour the flat alpha-beta
/// model of the paper (§II) cannot express. Link occupancy is anchored at
/// the *send* time, so a receiver that sits in local compute before
/// ingesting cannot retroactively occupy upstream links; its delivery is
/// simply `max(receiver_now, network arrival)` (network traversal
/// overlaps receiver compute on non-flat fabrics).
///
/// Determinism: on contended links the queueing order is the wall-clock
/// order in which the receiving workers execute `Recv`. Because occupancy
/// windows are anchored at logical send times, a different order can only
/// shift a flow by the other flows' queueing windows (their alpha +
/// serialization), never by receiver-side compute — bounded, and zero when
/// contending flows are symmetric. `FlatTopology` gives every ordered
/// worker pair a dedicated link and overrides the charge with the legacy
/// closed form, so the default remains exactly deterministic (and
/// bit-for-bit equal to the historical `CostModel` charging). Tests on
/// contended topologies should assert order-robust bounds, not exact
/// times.
///
/// Thread safety: `Route` must be const and thread-safe; `ChargeMessage`
/// serializes on an internal mutex. `SetNodeScale` must be called before
/// worker threads run (same contract as the old `SetWorkerSlowdown`).
class Topology {
 public:
  virtual ~Topology() = default;

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  int num_workers() const { return num_workers_; }

  /// The reference alpha-beta model this fabric was derived from (used by
  /// analytical predictions and as the per-hop budget).
  const CostModel& base_cost() const { return base_cost_; }

  virtual std::string_view name() const = 0;

  /// One-line human description ("fattree(P=8, racks of 4, oversub 4)").
  virtual std::string Describe() const;

  /// Which accounting engine `Network` should run on this fabric. Set by
  /// `TopologySpec::Build` (before worker threads run); defaults to the
  /// legacy busy-until engine.
  ChargeEngine charge_engine() const { return charge_engine_; }
  void set_charge_engine(ChargeEngine engine) { charge_engine_ = engine; }

  /// True when `ChargeMessage` is a closed form that never reads or
  /// advances link state (`FlatTopology`'s exact legacy arithmetic). Such
  /// fabrics have nothing for an event engine to order, so `Network`
  /// charges them directly under either `ChargeEngine`.
  virtual bool closed_form_charge() const { return false; }

  /// Writes the link ids a message from worker `src` to worker `dst`
  /// crosses, in order, into `*path` (cleared first). src != dst.
  virtual void Route(int src, int dst, std::vector<LinkId>* path) const = 0;

  /// Advances the per-link clocks for one `words`-word message injected at
  /// `src` at simulated time `sent_at`; returns its delivery time at
  /// `dst`, which is never before `receiver_now` (the receiver's clock
  /// when it ingests). Thread-safe.
  virtual double ChargeMessage(int src, int dst, size_t words,
                               double sent_at, double receiver_now);

  /// Folds per-worker heterogeneity (the legacy `WorkerSlowdown`) into the
  /// fabric: scales the cost of `node`'s ingress link(s) by `factor`
  /// (>= 1 models a straggler NIC). Call before running workers.
  void SetNodeScale(int node, double factor);
  double NodeScale(int node) const {
    return node_scale_[static_cast<size_t>(node)];
  }

  /// Clears every link's busy-until clock and usage counters (between
  /// measured phases, in lockstep with resetting worker clocks).
  void ResetLinkClocks();

  int num_links() const { return static_cast<int>(links_.size()); }
  LinkInfo link_info(LinkId id) const;

  /// Cumulative charge counters for one link under the busy-until engine
  /// (the event engine keeps its own; read merged values via
  /// `Network::link_usage`). Thread-safe.
  LinkUsage link_usage(LinkId id) const;

  /// Attaches a span recorder: the busy-until charge loop records one
  /// `kLink` occupancy span per (message, link crossed). Set while no
  /// worker threads run; the recorder must outlive charging.
  void set_trace_recorder(TraceRecorder* recorder) {
    trace_recorder_ = recorder;
  }

 protected:
  Topology(int num_workers, CostModel base_cost);

  /// Registers a directed link from graph node `tail` to `head`.
  LinkId AddLink(int tail, int head, double alpha, double beta);

  /// Marks `link` as part of worker `node`'s receive path: `SetNodeScale`
  /// on that node will scale this link's alpha and beta.
  void RegisterIngress(int node, LinkId link);

 private:
  struct LinkState {
    int tail;
    int head;
    double alpha;
    double beta;
    double scale = 1.0;
    double busy_until = 0.0;
    LinkUsage usage{};
  };

  int num_workers_;
  CostModel base_cost_;
  ChargeEngine charge_engine_ = ChargeEngine::kBusyUntil;
  std::vector<LinkState> links_;
  std::vector<std::vector<LinkId>> ingress_links_;  // per worker
  std::vector<double> node_scale_;                  // per worker
  TraceRecorder* trace_recorder_ = nullptr;
  /// Guards the busy-until charge loop (and its trace/link-usage
  /// recording). Lock-order checked in debug builds; it nests inside
  /// nothing and nothing nests inside it.
  mutable lockcheck::OrderedMutex mutex_{"topo.charge"};
};

}  // namespace spardl

#endif  // SPARDL_TOPO_TOPOLOGY_H_
