#ifndef SPARDL_TOPO_TOPOLOGY_SPEC_H_
#define SPARDL_TOPO_TOPOLOGY_SPEC_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "simnet/cost_model.h"
#include "topo/topology.h"

namespace spardl {

/// Which fabric layout a `TopologySpec` builds.
enum class TopologyKind {
  kFlat,     // single crossbar; the paper's flat alpha-beta model
  kStar,     // all workers behind one switch
  kFatTree,  // racks behind ToRs, oversubscribed trunks to ECMP'd cores
  kRing,     // neighbour links only
  kTorus,    // 2D grid of per-direction rings
};

std::string_view TopologyKindName(TopologyKind kind);

/// Value-type description of a simulated fabric. Copyable, validated at
/// `Build` time, and threadable through configs/benches/CLIs — the one
/// knob that lets every algorithm, baseline, bench, and example run on any
/// topology unchanged (`Cluster` accepts it directly).
struct TopologySpec {
  TopologyKind kind = TopologyKind::kFlat;
  /// Cluster size P. Benches treat 0 as "fill in from their own worker
  /// count"; `Build` rejects it.
  int num_workers = 0;
  /// The reference alpha-beta budget; concrete topologies split it across
  /// hops so an uncontended one-hop-equivalent message still costs
  /// alpha + beta*words.
  CostModel cost = CostModel::Ethernet();
  /// Which accounting engine charges contended links: the legacy
  /// busy-until clocks (wall-clock charge order; cheap) or the simnet v3
  /// event-ordered engine (bit-identical contended times across runs).
  ChargeEngine engine = ChargeEngine::kBusyUntil;
  /// Fat-tree only: workers per rack.
  int rack_size = 4;
  /// Fat-tree only: trunk beta multiplier (> 1 = under-provisioned rack
  /// uplink).
  double oversubscription = 4.0;
  /// Fat-tree only: number of core switches; cross-rack flows are spread
  /// across them by deterministic ECMP hashing.
  int num_cores = 1;
  /// Torus only: grid dimensions; `Build` requires
  /// num_workers == torus_width * torus_height.
  int torus_width = 0;
  int torus_height = 0;

  static TopologySpec Flat(int num_workers,
                           CostModel cost = CostModel::Ethernet());
  static TopologySpec Star(int num_workers,
                           CostModel cost = CostModel::Ethernet());
  static TopologySpec FatTree(int num_workers, int rack_size,
                              double oversubscription,
                              CostModel cost = CostModel::Ethernet(),
                              int num_cores = 1);
  static TopologySpec Ring(int num_workers,
                           CostModel cost = CostModel::Ethernet());
  static TopologySpec Torus(int width, int height,
                            CostModel cost = CostModel::Ethernet());

  /// Parses "flat", "star", "ring", "fattree",
  /// "fattree:<rack_size>x<oversub>[x<cores>]" (e.g. "fattree:4x8" or the
  /// ECMP'd "fattree:4x8x2"), or "torus:<width>x<height>" (e.g.
  /// "torus:4x2"). Any form takes an optional "+event" / "+busy" suffix
  /// selecting the charge engine (e.g. "fattree:4x8x2+event").
  /// `num_workers` and `cost` fill the corresponding fields.
  static Result<TopologySpec> Parse(std::string_view text, int num_workers,
                                    CostModel cost = CostModel::Ethernet());

  /// Validates and instantiates the fabric (with `engine` applied).
  Result<std::unique_ptr<Topology>> Build() const;

  /// One-line human description, e.g. "fattree(P=8, racks of 4, oversub
  /// 4.0)".
  std::string Describe() const;
};

}  // namespace spardl

#endif  // SPARDL_TOPO_TOPOLOGY_SPEC_H_
