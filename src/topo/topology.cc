#include "topo/topology.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace spardl {

std::string_view ChargeEngineName(ChargeEngine engine) {
  switch (engine) {
    case ChargeEngine::kBusyUntil:
      return "busy-until";
    case ChargeEngine::kEventOrdered:
      return "event-ordered";
  }
  return "?";
}

Topology::Topology(int num_workers, CostModel base_cost)
    : num_workers_(num_workers), base_cost_(base_cost) {
  SPARDL_CHECK_GE(num_workers, 1);
  ingress_links_.resize(static_cast<size_t>(num_workers));
  node_scale_.assign(static_cast<size_t>(num_workers), 1.0);
}

std::string Topology::Describe() const {
  return StrFormat("%.*s(P=%d, %d links)",
                   static_cast<int>(name().size()), name().data(),
                   num_workers_, num_links());
}

LinkId Topology::AddLink(int tail, int head, double alpha, double beta) {
  SPARDL_CHECK_GE(tail, 0);
  SPARDL_CHECK_GE(head, 0);
  SPARDL_CHECK_GE(alpha, 0.0);
  SPARDL_CHECK_GE(beta, 0.0);
  links_.push_back(LinkState{.tail = tail, .head = head, .alpha = alpha,
                             .beta = beta});
  return static_cast<LinkId>(links_.size()) - 1;
}

void Topology::RegisterIngress(int node, LinkId link) {
  SPARDL_CHECK(node >= 0 && node < num_workers_);
  SPARDL_CHECK(link >= 0 && link < num_links());
  ingress_links_[static_cast<size_t>(node)].push_back(link);
}

void Topology::SetNodeScale(int node, double factor) {
  SPARDL_CHECK(node >= 0 && node < num_workers_);
  SPARDL_CHECK_GT(factor, 0.0);
  node_scale_[static_cast<size_t>(node)] = factor;
  for (LinkId id : ingress_links_[static_cast<size_t>(node)]) {
    links_[static_cast<size_t>(id)].scale = factor;
  }
}

void Topology::ResetLinkClocks() {
  std::lock_guard<lockcheck::OrderedMutex> lock(mutex_);
  for (LinkState& link : links_) {
    link.busy_until = 0.0;
    link.usage = LinkUsage{};
  }
}

LinkInfo Topology::link_info(LinkId id) const {
  SPARDL_CHECK(id >= 0 && id < num_links());
  const LinkState& link = links_[static_cast<size_t>(id)];
  return LinkInfo{link.tail, link.head, link.alpha * link.scale,
                  link.beta * link.scale};
}

LinkUsage Topology::link_usage(LinkId id) const {
  SPARDL_CHECK(id >= 0 && id < num_links());
  std::lock_guard<lockcheck::OrderedMutex> lock(mutex_);
  return links_[static_cast<size_t>(id)].usage;
}

double Topology::ChargeMessage(int src, int dst, size_t words,
                               double sent_at, double receiver_now) {
  // Per-thread scratch: Route is hot (every Recv) and must not allocate
  // after warm-up.
  thread_local std::vector<LinkId> path;
  Route(src, dst, &path);
  SPARDL_DCHECK(!path.empty()) << "empty route " << src << "->" << dst;

  std::lock_guard<lockcheck::OrderedMutex> lock(mutex_);
  double head = sent_at;     // when the message header reaches each hop
  double bottleneck = 0.0;   // slowest link's serialization time
  for (LinkId id : path) {
    LinkState& link = links_[static_cast<size_t>(id)];
    const double wait = link.busy_until > head ? link.busy_until - head : 0.0;
    const double start = head + wait;
    const double serialize =
        link.beta * link.scale * static_cast<double>(words);
    head = start + link.alpha * link.scale;
    // The link stays occupied until the whole body has crossed it.
    link.busy_until = head + serialize;
    bottleneck = std::max(bottleneck, serialize);
    link.usage.busy_seconds += link.busy_until - start;
    link.usage.bytes += static_cast<uint64_t>(words) * sizeof(float);
    link.usage.messages += 1;
    link.usage.max_queue_seconds =
        std::max(link.usage.max_queue_seconds, wait);
    if (trace_recorder_ != nullptr) {
      trace_recorder_->RecordLink(
          TraceSpan{id, kStreamLink, Phase::kLink, "flow", src, dst, start,
                    link.busy_until,
                    static_cast<uint64_t>(words) * sizeof(float)});
    }
  }
  // Traversal overlaps whatever the receiver is doing; consumption waits
  // for whichever finishes last.
  return std::max(receiver_now, head + bottleneck);
}

}  // namespace spardl
