#ifndef SPARDL_TOPO_PLACEMENT_H_
#define SPARDL_TOPO_PLACEMENT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace spardl {

struct TopologySpec;

/// How SparDL's d teams are laid out over the fabric's workers.
///
/// The paper's team decomposition (SRS within a team, SAG across teams,
/// §III-D) is layout-agnostic: any partition of the P workers into d
/// equal teams computes the same gradient. On a flat fabric the layout is
/// also cost-neutral — but on a hierarchical fabric it decides whether the
/// bandwidth-heavy SRS rounds stay on cheap intra-rack links or queue
/// through the oversubscribed trunk.
enum class PlacementPolicy {
  /// Teams of consecutive global ranks — bit-for-bit the legacy
  /// `CommGroup::ContiguousTeam` layout. The default everywhere.
  kContiguous,
  /// Teams packed within the fabric's locality groups (fat-tree racks,
  /// torus rows; one group on flat/star/ring, where it degenerates to
  /// kContiguous). When the team size divides the group size, no team
  /// straddles an oversubscribed trunk.
  kRackLocal,
  /// Teams dealt round-robin across locality groups (consecutive ranks go
  /// to different teams), so every SRS exchange crosses the trunk — the
  /// adversarial baseline a placement comparison needs.
  kInterleaved,
};

std::string_view PlacementPolicyName(PlacementPolicy policy);

/// Parses "contiguous", "rack" (or "rack-local"), "interleaved".
Result<PlacementPolicy> ParsePlacementPolicy(std::string_view text);

/// All policies, in comparison order (contiguous, rack-local, interleaved).
std::vector<PlacementPolicy> AllPlacementPolicies();

/// A validated global-rank -> (team, position) permutation: `d` teams of
/// exactly `P / d` members each, every worker in exactly one slot.
///
/// Value type — copy it into configs. An empty (default-constructed)
/// placement means "use the contiguous layout"; every consumer treats the
/// two identically. Build one with `PlanPlacement` (topology-aware) or
/// `TeamPlacement::Contiguous`.
class TeamPlacement {
 public:
  TeamPlacement() = default;

  /// Default-constructed, no layout chosen — consumers substitute the
  /// contiguous layout for their own (num_workers, num_teams).
  bool empty() const { return member_.empty(); }

  int num_workers() const { return static_cast<int>(member_.size()); }
  int num_teams() const { return num_teams_; }
  int team_size() const {
    return num_teams_ == 0 ? 0 : num_workers() / num_teams_;
  }
  PlacementPolicy policy() const { return policy_; }

  /// The global rank sitting at `pos` of `team`. CHECK-fails out of range.
  int GlobalRank(int team, int pos) const;
  /// The team / in-team position of global rank `rank`.
  int TeamOf(int rank) const;
  int PositionOf(int rank) const;
  /// All of `team`'s global ranks, in position order.
  std::vector<int> TeamMembers(int team) const;

  /// InvalidArgument unless this placement is for exactly
  /// (`expected_workers`, `expected_teams`). Empty placements pass (they
  /// mean "contiguous at whatever shape the consumer runs").
  Status Validate(int expected_workers, int expected_teams) const;

  /// e.g. "rack-local(P=8, d=2)".
  std::string Describe() const;

  /// The legacy contiguous layout: team t holds ranks
  /// t*(P/d) .. (t+1)*(P/d)-1. CHECK-fails unless d divides P (callers
  /// needing recoverable validation go through `PlanPlacement`).
  static TeamPlacement Contiguous(int num_workers, int num_teams);

  /// Builds from an explicit member table (`member[team * (P/d) + pos]` =
  /// global rank); InvalidArgument unless it is a bijection on 0..P-1
  /// partitioned into d equal teams.
  static Result<TeamPlacement> FromMembers(std::vector<int> member,
                                           int num_teams,
                                           PlacementPolicy policy);

 private:
  std::vector<int> member_;   // member_[team * team_size + pos]
  std::vector<int> team_of_;  // per global rank
  std::vector<int> pos_of_;   // per global rank
  int num_teams_ = 0;
  PlacementPolicy policy_ = PlacementPolicy::kContiguous;
};

/// The fabric's locality groups, each a list of worker ranks sharing cheap
/// links: fat-tree racks and torus rows; flat, star and ring fabrics have a
/// single group (their links are uniform, so rank-contiguity is already as
/// local as it gets). Exposed for tests and planners.
std::vector<std::vector<int>> LocalityGroups(const TopologySpec& spec,
                                             int num_workers);

/// Plans where each of `num_teams` teams sits on `spec`'s fabric.
/// InvalidArgument when `num_teams` does not divide `num_workers`, either
/// is non-positive, or the spec's own worker count (when set) disagrees
/// with `num_workers`.
Result<TeamPlacement> PlanPlacement(const TopologySpec& spec,
                                    int num_workers, int num_teams,
                                    PlacementPolicy policy);

}  // namespace spardl

#endif  // SPARDL_TOPO_PLACEMENT_H_
