#include "topo/placement.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "topo/topology_spec.h"

namespace spardl {

std::string_view PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kContiguous:
      return "contiguous";
    case PlacementPolicy::kRackLocal:
      return "rack-local";
    case PlacementPolicy::kInterleaved:
      return "interleaved";
  }
  return "?";
}

Result<PlacementPolicy> ParsePlacementPolicy(std::string_view text) {
  if (text == "contiguous") return PlacementPolicy::kContiguous;
  if (text == "rack" || text == "rack-local" || text == "racklocal") {
    return PlacementPolicy::kRackLocal;
  }
  if (text == "interleaved" || text == "interleave") {
    return PlacementPolicy::kInterleaved;
  }
  return Status::InvalidArgument(
      StrFormat("unknown placement policy '%.*s' (want "
                "contiguous|rack|interleaved)",
                static_cast<int>(text.size()), text.data()));
}

std::vector<PlacementPolicy> AllPlacementPolicies() {
  return {PlacementPolicy::kContiguous, PlacementPolicy::kRackLocal,
          PlacementPolicy::kInterleaved};
}

int TeamPlacement::GlobalRank(int team, int pos) const {
  SPARDL_CHECK_GE(team, 0);
  SPARDL_CHECK_LT(team, num_teams_);
  SPARDL_CHECK_GE(pos, 0);
  SPARDL_CHECK_LT(pos, team_size());
  return member_[static_cast<size_t>(team * team_size() + pos)];
}

int TeamPlacement::TeamOf(int rank) const {
  SPARDL_CHECK_GE(rank, 0);
  SPARDL_CHECK_LT(rank, num_workers());
  return team_of_[static_cast<size_t>(rank)];
}

int TeamPlacement::PositionOf(int rank) const {
  SPARDL_CHECK_GE(rank, 0);
  SPARDL_CHECK_LT(rank, num_workers());
  return pos_of_[static_cast<size_t>(rank)];
}

std::vector<int> TeamPlacement::TeamMembers(int team) const {
  SPARDL_CHECK_GE(team, 0);
  SPARDL_CHECK_LT(team, num_teams_);
  const int ts = team_size();
  return std::vector<int>(
      member_.begin() + static_cast<ptrdiff_t>(team) * ts,
      member_.begin() + static_cast<ptrdiff_t>(team + 1) * ts);
}

Status TeamPlacement::Validate(int expected_workers,
                               int expected_teams) const {
  if (empty()) return Status::OK();
  if (num_workers() != expected_workers) {
    return Status::InvalidArgument(StrFormat(
        "placement is laid out for %d workers, but the run has %d",
        num_workers(), expected_workers));
  }
  if (num_teams_ != expected_teams) {
    return Status::InvalidArgument(
        StrFormat("placement holds %d teams, but the run wants %d",
                  num_teams_, expected_teams));
  }
  return Status::OK();
}

std::string TeamPlacement::Describe() const {
  if (empty()) return "contiguous(default)";
  return StrFormat("%.*s(P=%d, d=%d)",
                   static_cast<int>(PlacementPolicyName(policy_).size()),
                   PlacementPolicyName(policy_).data(), num_workers(),
                   num_teams_);
}

TeamPlacement TeamPlacement::Contiguous(int num_workers, int num_teams) {
  SPARDL_CHECK_GT(num_teams, 0);
  SPARDL_CHECK_EQ(num_workers % num_teams, 0)
      << "team count must divide the worker count (d | P)";
  std::vector<int> member(static_cast<size_t>(num_workers));
  for (int r = 0; r < num_workers; ++r) member[static_cast<size_t>(r)] = r;
  auto placement = FromMembers(std::move(member), num_teams,
                               PlacementPolicy::kContiguous);
  SPARDL_CHECK(placement.ok()) << placement.status().ToString();
  return std::move(*placement);
}

Result<TeamPlacement> TeamPlacement::FromMembers(std::vector<int> member,
                                                 int num_teams,
                                                 PlacementPolicy policy) {
  const int num_workers = static_cast<int>(member.size());
  if (num_teams < 1 || num_workers < 1) {
    return Status::InvalidArgument(
        "placement needs at least one team and one worker");
  }
  if (num_workers % num_teams != 0) {
    return Status::InvalidArgument(StrFormat(
        "placement team count (%d) must divide the worker count (%d)",
        num_teams, num_workers));
  }
  TeamPlacement placement;
  placement.num_teams_ = num_teams;
  placement.policy_ = policy;
  placement.team_of_.assign(static_cast<size_t>(num_workers), -1);
  placement.pos_of_.assign(static_cast<size_t>(num_workers), -1);
  const int team_size = num_workers / num_teams;
  for (int slot = 0; slot < num_workers; ++slot) {
    const int rank = member[static_cast<size_t>(slot)];
    if (rank < 0 || rank >= num_workers) {
      return Status::InvalidArgument(StrFormat(
          "placement slot %d names rank %d, outside [0, %d)", slot, rank,
          num_workers));
    }
    if (placement.team_of_[static_cast<size_t>(rank)] != -1) {
      return Status::InvalidArgument(StrFormat(
          "placement assigns rank %d to two slots (not a permutation)",
          rank));
    }
    placement.team_of_[static_cast<size_t>(rank)] = slot / team_size;
    placement.pos_of_[static_cast<size_t>(rank)] = slot % team_size;
  }
  placement.member_ = std::move(member);
  return placement;
}

std::vector<std::vector<int>> LocalityGroups(const TopologySpec& spec,
                                             int num_workers) {
  // Group width: ranks sharing a cheap (non-trunk) neighbourhood. Flat,
  // star and ring links are uniform, so the whole cluster is one group.
  int width = num_workers;
  switch (spec.kind) {
    case TopologyKind::kFatTree:
      width = spec.rack_size;
      break;
    case TopologyKind::kTorus:
      width = spec.torus_width;
      break;
    default:
      break;
  }
  if (width < 1) width = num_workers;
  std::vector<std::vector<int>> groups;
  for (int start = 0; start < num_workers; start += width) {
    std::vector<int> group;
    for (int r = start; r < std::min(start + width, num_workers); ++r) {
      group.push_back(r);
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

namespace {

// Pack teams inside locality groups: every group carves as many whole
// teams as fit, then the leftovers (in group order, so racks stay adjacent)
// fill the remaining teams. When team_size divides every group size this
// is straddle-free; otherwise only the leftover teams cross groups.
std::vector<int> RackLocalMembers(const std::vector<std::vector<int>>& groups,
                                  int num_workers, int team_size) {
  std::vector<int> member;
  member.reserve(static_cast<size_t>(num_workers));
  std::vector<int> leftovers;
  for (const std::vector<int>& group : groups) {
    size_t whole = (group.size() / static_cast<size_t>(team_size)) *
                   static_cast<size_t>(team_size);
    member.insert(member.end(), group.begin(),
                  group.begin() + static_cast<ptrdiff_t>(whole));
    leftovers.insert(leftovers.end(),
                     group.begin() + static_cast<ptrdiff_t>(whole),
                     group.end());
  }
  member.insert(member.end(), leftovers.begin(), leftovers.end());
  return member;
}

// Deal consecutive ranks round-robin to teams: slot (team, pos) gets rank
// pos * d + team, so each team's members are spread d apart — maximally
// cross-group whenever teams could have been group-local.
std::vector<int> InterleavedMembers(int num_workers, int num_teams) {
  const int team_size = num_workers / num_teams;
  std::vector<int> member(static_cast<size_t>(num_workers));
  for (int t = 0; t < num_teams; ++t) {
    for (int i = 0; i < team_size; ++i) {
      member[static_cast<size_t>(t * team_size + i)] = i * num_teams + t;
    }
  }
  return member;
}

}  // namespace

Result<TeamPlacement> PlanPlacement(const TopologySpec& spec,
                                    int num_workers, int num_teams,
                                    PlacementPolicy policy) {
  if (num_workers < 1) {
    return Status::InvalidArgument("placement needs num_workers >= 1");
  }
  if (num_teams < 1) {
    return Status::InvalidArgument("placement needs num_teams >= 1");
  }
  if (num_workers % num_teams != 0) {
    return Status::InvalidArgument(StrFormat(
        "num_teams (%d) must divide num_workers (%d)", num_teams,
        num_workers));
  }
  if (spec.num_workers != 0 && spec.num_workers != num_workers) {
    return Status::InvalidArgument(StrFormat(
        "topology spec is for %d workers, but the placement is for %d",
        spec.num_workers, num_workers));
  }
  const int team_size = num_workers / num_teams;
  std::vector<int> member;
  switch (policy) {
    case PlacementPolicy::kContiguous:
      member.resize(static_cast<size_t>(num_workers));
      for (int r = 0; r < num_workers; ++r) {
        member[static_cast<size_t>(r)] = r;
      }
      break;
    case PlacementPolicy::kRackLocal:
      member = RackLocalMembers(LocalityGroups(spec, num_workers),
                                num_workers, team_size);
      break;
    case PlacementPolicy::kInterleaved:
      member = InterleavedMembers(num_workers, num_teams);
      break;
  }
  return TeamPlacement::FromMembers(std::move(member), num_teams, policy);
}

}  // namespace spardl
