#ifndef SPARDL_TOPO_TOPOLOGIES_H_
#define SPARDL_TOPO_TOPOLOGIES_H_

#include <string>
#include <string_view>
#include <vector>

#include "topo/topology.h"

namespace spardl {

/// Single crossbar: every ordered worker pair gets a dedicated link with
/// the full base alpha/beta. This is the paper's flat full-duplex
/// alpha-beta network (§II) and the historical `CostModel` charging —
/// `ChargeMessage` is overridden with the exact legacy arithmetic
/// (`ready + (alpha + beta*words) * node_scale(dst)`), so simulated times
/// are bit-for-bit identical to the pre-topology simulator. Dedicated
/// per-pair links can never contend beyond the receiver serialization the
/// `Comm` clock already models.
class FlatTopology : public Topology {
 public:
  FlatTopology(int num_workers, CostModel cost);

  std::string_view name() const override { return "flat"; }
  void Route(int src, int dst, std::vector<LinkId>* path) const override;
  double ChargeMessage(int src, int dst, size_t words, double sent_at,
                       double receiver_now) override;
  /// The legacy closed form never reads link state, so both charge
  /// engines produce bit-identical times and the event engine is skipped.
  bool closed_form_charge() const override { return true; }

 private:
  // pair_link_[src * P + dst]; the diagonal is unused (-1).
  std::vector<LinkId> pair_link_;
};

/// All workers behind one switch: each worker has an uplink and a downlink
/// to the central switch, each with alpha/2 latency and the full beta, so
/// an uncontended message costs exactly the flat alpha + beta*words — but
/// a worker's outgoing messages now serialize on its uplink (real
/// single-port NICs are not infinitely fast senders), and fan-in to one
/// worker serializes on its downlink.
class StarTopology : public Topology {
 public:
  StarTopology(int num_workers, CostModel cost);

  std::string_view name() const override { return "star"; }
  void Route(int src, int dst, std::vector<LinkId>* path) const override;

 private:
  std::vector<LinkId> up_;    // worker -> switch
  std::vector<LinkId> down_;  // switch -> worker
};

/// Two-level tree: workers in racks of `rack_size` behind a top-of-rack
/// switch, ToRs joined through `num_cores` core switches by trunk links
/// whose beta is `oversubscription` times the access beta (oversub > 1
/// models the usual under-provisioned rack uplinks). In-rack traffic costs
/// the flat alpha + beta*words; cross-rack traffic pays 2*alpha latency
/// and oversub*beta*words at the trunk bottleneck. With one core every
/// cross-rack flow of a rack contends on that rack's single trunk; with
/// `num_cores` > 1 each ToR has one trunk pair per core and flows are
/// spread across them by deterministic ECMP hashing of the (src, dst)
/// pair (`CoreFor`), so the rack trunk stops being a single serialization
/// point.
class FatTreeTopology : public Topology {
 public:
  FatTreeTopology(int num_workers, int rack_size, double oversubscription,
                  CostModel cost, int num_cores = 1);

  std::string_view name() const override { return "fattree"; }
  std::string Describe() const override;
  void Route(int src, int dst, std::vector<LinkId>* path) const override;

  int rack_size() const { return rack_size_; }
  int num_racks() const { return num_racks_; }
  int num_cores() const { return num_cores_; }
  double oversubscription() const { return oversubscription_; }
  int RackOf(int worker) const { return worker / rack_size_; }

  /// The one format both `Describe` and `TopologySpec::Describe` print,
  /// so the two surfaces cannot drift.
  static std::string DescribeSpec(int num_workers, int rack_size,
                                  double oversubscription, int num_cores);

  /// The core switch ECMP pins the (src, dst) flow to, in [0, num_cores).
  /// A deterministic hash of the pair — the simulated analogue of
  /// five-tuple ECMP hashing — so the same flow always takes the same
  /// core, run to run and engine to engine.
  int CoreFor(int src, int dst) const;

 private:
  int rack_size_;
  int num_racks_ = 0;  // set in the constructor body, after validation
  int num_cores_;
  double oversubscription_;
  std::vector<LinkId> up_;          // worker -> its ToR
  std::vector<LinkId> down_;        // ToR -> worker
  std::vector<LinkId> trunk_up_;    // [rack * num_cores + core]: ToR -> core
  std::vector<LinkId> trunk_down_;  // [rack * num_cores + core]: core -> ToR
};

/// Unidirectional-per-hop ring: worker w has a link to each neighbour
/// ((w+1) % P and (w-1+P) % P), each with the full alpha and beta. Routes
/// take the shorter direction (ties go clockwise), so a distance-h message
/// costs h*alpha + beta*words uncontended and crossing flows contend on
/// shared segments. Neighbour-pattern algorithms are ring-native; the
/// log-distance peers of recursive halving pay multi-hop latency.
class RingTopology : public Topology {
 public:
  RingTopology(int num_workers, CostModel cost);

  std::string_view name() const override { return "ring"; }
  void Route(int src, int dst, std::vector<LinkId>* path) const override;

 private:
  std::vector<LinkId> next_;  // w -> (w+1) % P
  std::vector<LinkId> prev_;  // w -> (w-1+P) % P; empty when P < 3
};

/// 2D torus: worker w sits at (w % width, w / width) on a width x height
/// grid whose rows and columns are rings with per-direction links, each
/// carrying the full alpha and beta (like `RingTopology`; a dimension of
/// size 2 gets a single cable per direction pair, and a dimension of size
/// 1 gets none). Routing is dimension-ordered — along the row to the
/// destination column, then along the column — taking the shorter way
/// around each ring (ties go the positive direction), so a message at
/// wrap-around distance (dx, dy) costs (dx + dy)*alpha + beta*words
/// uncontended. The HPC-style neighbour fabric of the netsim exemplars:
/// ring algorithms stay contention-free per row, while log-distance
/// exchanges pay Manhattan-distance latency and crossing flows contend on
/// shared ring segments.
class TorusTopology : public Topology {
 public:
  /// num_workers = width * height.
  TorusTopology(int width, int height, CostModel cost);

  std::string_view name() const override { return "torus"; }
  std::string Describe() const override;
  void Route(int src, int dst, std::vector<LinkId>* path) const override;

  int width() const { return width_; }
  int height() const { return height_; }

  /// The one format both `Describe` and `TopologySpec::Describe` print.
  static std::string DescribeSpec(int num_workers, int width, int height);

 private:
  int XOf(int worker) const { return worker % width_; }
  int YOf(int worker) const { return worker / width_; }
  int WorkerAt(int x, int y) const { return y * width_ + x; }

  /// Appends the ring walk from `from` to the node with coordinate `to`
  /// in dimension `dim` (0 = x, 1 = y); returns the node reached.
  int WalkDimension(int from, int to, int dim,
                    std::vector<LinkId>* path) const;

  int width_;
  int height_;
  // Per-direction neighbour links, indexed by worker; empty when the
  // dimension is too small to need them (see the class comment).
  std::vector<LinkId> x_next_;  // (x, y) -> (x+1 mod W, y)
  std::vector<LinkId> x_prev_;  // (x, y) -> (x-1 mod W, y); W >= 3 only
  std::vector<LinkId> y_next_;  // (x, y) -> (x, y+1 mod H)
  std::vector<LinkId> y_prev_;  // (x, y) -> (x, y-1 mod H); H >= 3 only
};

}  // namespace spardl

#endif  // SPARDL_TOPO_TOPOLOGIES_H_
