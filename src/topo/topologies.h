#ifndef SPARDL_TOPO_TOPOLOGIES_H_
#define SPARDL_TOPO_TOPOLOGIES_H_

#include <string>
#include <string_view>
#include <vector>

#include "topo/topology.h"

namespace spardl {

/// Single crossbar: every ordered worker pair gets a dedicated link with
/// the full base alpha/beta. This is the paper's flat full-duplex
/// alpha-beta network (§II) and the historical `CostModel` charging —
/// `ChargeMessage` is overridden with the exact legacy arithmetic
/// (`ready + (alpha + beta*words) * node_scale(dst)`), so simulated times
/// are bit-for-bit identical to the pre-topology simulator. Dedicated
/// per-pair links can never contend beyond the receiver serialization the
/// `Comm` clock already models.
class FlatTopology : public Topology {
 public:
  FlatTopology(int num_workers, CostModel cost);

  std::string_view name() const override { return "flat"; }
  void Route(int src, int dst, std::vector<LinkId>* path) const override;
  double ChargeMessage(int src, int dst, size_t words, double sent_at,
                       double receiver_now) override;

 private:
  // pair_link_[src * P + dst]; the diagonal is unused (-1).
  std::vector<LinkId> pair_link_;
};

/// All workers behind one switch: each worker has an uplink and a downlink
/// to the central switch, each with alpha/2 latency and the full beta, so
/// an uncontended message costs exactly the flat alpha + beta*words — but
/// a worker's outgoing messages now serialize on its uplink (real
/// single-port NICs are not infinitely fast senders), and fan-in to one
/// worker serializes on its downlink.
class StarTopology : public Topology {
 public:
  StarTopology(int num_workers, CostModel cost);

  std::string_view name() const override { return "star"; }
  void Route(int src, int dst, std::vector<LinkId>* path) const override;

 private:
  std::vector<LinkId> up_;    // worker -> switch
  std::vector<LinkId> down_;  // switch -> worker
};

/// Two-level tree: workers in racks of `rack_size` behind a top-of-rack
/// switch, ToRs joined through one core switch by trunk links whose beta
/// is `oversubscription` times the access beta (oversub > 1 models the
/// usual under-provisioned rack uplinks). In-rack traffic costs the flat
/// alpha + beta*words; cross-rack traffic pays 2*alpha latency and
/// oversub*beta*words at the trunk bottleneck, and all cross-rack flows of
/// one rack contend on that rack's single trunk.
class FatTreeTopology : public Topology {
 public:
  FatTreeTopology(int num_workers, int rack_size, double oversubscription,
                  CostModel cost);

  std::string_view name() const override { return "fattree"; }
  std::string Describe() const override;
  void Route(int src, int dst, std::vector<LinkId>* path) const override;

  int rack_size() const { return rack_size_; }
  int num_racks() const { return num_racks_; }
  double oversubscription() const { return oversubscription_; }
  int RackOf(int worker) const { return worker / rack_size_; }

 private:
  int rack_size_;
  int num_racks_ = 0;  // set in the constructor body, after validation
  double oversubscription_;
  std::vector<LinkId> up_;          // worker -> its ToR
  std::vector<LinkId> down_;        // ToR -> worker
  std::vector<LinkId> trunk_up_;    // ToR -> core, per rack
  std::vector<LinkId> trunk_down_;  // core -> ToR, per rack
};

/// Unidirectional-per-hop ring: worker w has a link to each neighbour
/// ((w+1) % P and (w-1+P) % P), each with the full alpha and beta. Routes
/// take the shorter direction (ties go clockwise), so a distance-h message
/// costs h*alpha + beta*words uncontended and crossing flows contend on
/// shared segments. Neighbour-pattern algorithms are ring-native; the
/// log-distance peers of recursive halving pay multi-hop latency.
class RingTopology : public Topology {
 public:
  RingTopology(int num_workers, CostModel cost);

  std::string_view name() const override { return "ring"; }
  void Route(int src, int dst, std::vector<LinkId>* path) const override;

 private:
  std::vector<LinkId> next_;  // w -> (w+1) % P
  std::vector<LinkId> prev_;  // w -> (w-1+P) % P; empty when P < 3
};

}  // namespace spardl

#endif  // SPARDL_TOPO_TOPOLOGIES_H_
