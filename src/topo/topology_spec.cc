#include "topo/topology_spec.h"

#include <cstdlib>

#include "common/strings.h"
#include "topo/topologies.h"

namespace spardl {

std::string_view TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFlat:
      return "flat";
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kFatTree:
      return "fattree";
    case TopologyKind::kRing:
      return "ring";
  }
  return "?";
}

TopologySpec TopologySpec::Flat(int num_workers, CostModel cost) {
  TopologySpec spec;
  spec.kind = TopologyKind::kFlat;
  spec.num_workers = num_workers;
  spec.cost = cost;
  return spec;
}

TopologySpec TopologySpec::Star(int num_workers, CostModel cost) {
  TopologySpec spec = Flat(num_workers, cost);
  spec.kind = TopologyKind::kStar;
  return spec;
}

TopologySpec TopologySpec::FatTree(int num_workers, int rack_size,
                                   double oversubscription, CostModel cost) {
  TopologySpec spec = Flat(num_workers, cost);
  spec.kind = TopologyKind::kFatTree;
  spec.rack_size = rack_size;
  spec.oversubscription = oversubscription;
  return spec;
}

TopologySpec TopologySpec::Ring(int num_workers, CostModel cost) {
  TopologySpec spec = Flat(num_workers, cost);
  spec.kind = TopologyKind::kRing;
  return spec;
}

Result<TopologySpec> TopologySpec::Parse(std::string_view text,
                                         int num_workers, CostModel cost) {
  if (text == "flat") return Flat(num_workers, cost);
  if (text == "star") return Star(num_workers, cost);
  if (text == "ring") return Ring(num_workers, cost);
  if (text == "fattree") return FatTree(num_workers, 4, 4.0, cost);
  constexpr std::string_view kFatTreePrefix = "fattree:";
  if (text.substr(0, kFatTreePrefix.size()) == kFatTreePrefix) {
    const std::string params(text.substr(kFatTreePrefix.size()));
    char* after_rack = nullptr;
    const long rack = std::strtol(params.c_str(), &after_rack, 10);
    if (after_rack == params.c_str() || *after_rack != 'x') {
      return Status::InvalidArgument(
          StrFormat("bad fat-tree params '%s' (want <rack_size>x<oversub>)",
                    params.c_str()));
    }
    char* after_oversub = nullptr;
    const double oversub = std::strtod(after_rack + 1, &after_oversub);
    if (after_oversub == after_rack + 1 || *after_oversub != '\0') {
      return Status::InvalidArgument(
          StrFormat("bad fat-tree oversub in '%s'", params.c_str()));
    }
    return FatTree(num_workers, static_cast<int>(rack), oversub, cost);
  }
  return Status::InvalidArgument(StrFormat(
      "unknown topology '%.*s' (want flat|star|ring|fattree[:RxO])",
      static_cast<int>(text.size()), text.data()));
}

Result<std::unique_ptr<Topology>> TopologySpec::Build() const {
  if (num_workers < 1) {
    return Status::InvalidArgument("topology needs num_workers >= 1");
  }
  switch (kind) {
    case TopologyKind::kFlat:
      return std::unique_ptr<Topology>(
          std::make_unique<FlatTopology>(num_workers, cost));
    case TopologyKind::kStar:
      return std::unique_ptr<Topology>(
          std::make_unique<StarTopology>(num_workers, cost));
    case TopologyKind::kFatTree:
      if (rack_size < 1) {
        return Status::InvalidArgument("fat-tree needs rack_size >= 1");
      }
      if (oversubscription <= 0.0) {
        return Status::InvalidArgument("fat-tree needs oversubscription > 0");
      }
      return std::unique_ptr<Topology>(std::make_unique<FatTreeTopology>(
          num_workers, rack_size, oversubscription, cost));
    case TopologyKind::kRing:
      return std::unique_ptr<Topology>(
          std::make_unique<RingTopology>(num_workers, cost));
  }
  return Status::Internal("unreachable topology kind");
}

std::string TopologySpec::Describe() const {
  if (kind == TopologyKind::kFatTree) {
    return StrFormat("fattree(P=%d, racks of %d, oversub %.1f)", num_workers,
                     rack_size, oversubscription);
  }
  return StrFormat("%.*s(P=%d)",
                   static_cast<int>(TopologyKindName(kind).size()),
                   TopologyKindName(kind).data(), num_workers);
}

}  // namespace spardl
