#include "topo/topology_spec.h"

#include <cstdlib>

#include "common/strings.h"
#include "topo/topologies.h"

namespace spardl {

std::string_view TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFlat:
      return "flat";
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kFatTree:
      return "fattree";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kTorus:
      return "torus";
  }
  return "?";
}

TopologySpec TopologySpec::Flat(int num_workers, CostModel cost) {
  TopologySpec spec;
  spec.kind = TopologyKind::kFlat;
  spec.num_workers = num_workers;
  spec.cost = cost;
  return spec;
}

TopologySpec TopologySpec::Star(int num_workers, CostModel cost) {
  TopologySpec spec = Flat(num_workers, cost);
  spec.kind = TopologyKind::kStar;
  return spec;
}

TopologySpec TopologySpec::FatTree(int num_workers, int rack_size,
                                   double oversubscription, CostModel cost,
                                   int num_cores) {
  TopologySpec spec = Flat(num_workers, cost);
  spec.kind = TopologyKind::kFatTree;
  spec.rack_size = rack_size;
  spec.oversubscription = oversubscription;
  spec.num_cores = num_cores;
  return spec;
}

TopologySpec TopologySpec::Ring(int num_workers, CostModel cost) {
  TopologySpec spec = Flat(num_workers, cost);
  spec.kind = TopologyKind::kRing;
  return spec;
}

TopologySpec TopologySpec::Torus(int width, int height, CostModel cost) {
  TopologySpec spec = Flat(width * height, cost);
  spec.kind = TopologyKind::kTorus;
  spec.torus_width = width;
  spec.torus_height = height;
  return spec;
}

Result<TopologySpec> TopologySpec::Parse(std::string_view text,
                                         int num_workers, CostModel cost) {
  // Optional engine suffix on any spec: "fattree:4x8x2+event". Only the
  // two literal suffixes are stripped — a '+' can also legitimately
  // appear inside a numeric parameter (e.g. "fattree:4x1e+1"), so
  // anything else is left for the kind parsers to accept or reject.
  ChargeEngine engine = ChargeEngine::kBusyUntil;
  const size_t plus = text.rfind('+');
  if (plus != std::string_view::npos) {
    const std::string_view suffix = text.substr(plus + 1);
    if (suffix == "event" || suffix == "busy") {
      if (suffix == "event") engine = ChargeEngine::kEventOrdered;
      text = text.substr(0, plus);
    }
  }

  Result<TopologySpec> parsed = [&]() -> Result<TopologySpec> {
    if (text == "flat") return Flat(num_workers, cost);
    if (text == "star") return Star(num_workers, cost);
    if (text == "ring") return Ring(num_workers, cost);
    if (text == "fattree") return FatTree(num_workers, 4, 4.0, cost);
    constexpr std::string_view kFatTreePrefix = "fattree:";
    if (text.substr(0, kFatTreePrefix.size()) == kFatTreePrefix) {
      const std::string params(text.substr(kFatTreePrefix.size()));
      char* after_rack = nullptr;
      const long rack = std::strtol(params.c_str(), &after_rack, 10);
      if (after_rack == params.c_str() || *after_rack != 'x') {
        return Status::InvalidArgument(StrFormat(
            "bad fat-tree params '%s' (want <rack_size>x<oversub>[x<cores>])",
            params.c_str()));
      }
      char* after_oversub = nullptr;
      const double oversub = std::strtod(after_rack + 1, &after_oversub);
      if (after_oversub == after_rack + 1 ||
          (*after_oversub != '\0' && *after_oversub != 'x')) {
        return Status::InvalidArgument(
            StrFormat("bad fat-tree oversub in '%s'", params.c_str()));
      }
      long cores = 1;
      if (*after_oversub == 'x') {
        char* after_cores = nullptr;
        cores = std::strtol(after_oversub + 1, &after_cores, 10);
        if (after_cores == after_oversub + 1 || *after_cores != '\0') {
          return Status::InvalidArgument(
              StrFormat("bad fat-tree core count in '%s'", params.c_str()));
        }
      }
      return FatTree(num_workers, static_cast<int>(rack), oversub, cost,
                     static_cast<int>(cores));
    }
    constexpr std::string_view kTorusPrefix = "torus:";
    if (text.substr(0, kTorusPrefix.size()) == kTorusPrefix) {
      const std::string params(text.substr(kTorusPrefix.size()));
      char* after_width = nullptr;
      const long width = std::strtol(params.c_str(), &after_width, 10);
      if (after_width == params.c_str() || *after_width != 'x') {
        return Status::InvalidArgument(StrFormat(
            "bad torus params '%s' (want <width>x<height>)", params.c_str()));
      }
      char* after_height = nullptr;
      const long height = std::strtol(after_width + 1, &after_height, 10);
      if (after_height == after_width + 1 || *after_height != '\0') {
        return Status::InvalidArgument(
            StrFormat("bad torus height in '%s'", params.c_str()));
      }
      TopologySpec spec =
          Torus(static_cast<int>(width), static_cast<int>(height), cost);
      // Keep the caller's worker count so Build can reject a mismatched
      // grid instead of silently resizing the cluster.
      spec.num_workers = num_workers;
      return spec;
    }
    return Status::InvalidArgument(StrFormat(
        "unknown topology '%.*s' (want flat|star|ring|fattree[:RxO[xC]]|"
        "torus:WxH)",
        static_cast<int>(text.size()), text.data()));
  }();
  if (!parsed.ok()) return parsed;
  (*parsed).engine = engine;
  return parsed;
}

Result<std::unique_ptr<Topology>> TopologySpec::Build() const {
  if (num_workers < 1) {
    return Status::InvalidArgument("topology needs num_workers >= 1");
  }
  Result<std::unique_ptr<Topology>> built = [&]() -> Result<
                                              std::unique_ptr<Topology>> {
    switch (kind) {
      case TopologyKind::kFlat:
        return std::unique_ptr<Topology>(
            std::make_unique<FlatTopology>(num_workers, cost));
      case TopologyKind::kStar:
        return std::unique_ptr<Topology>(
            std::make_unique<StarTopology>(num_workers, cost));
      case TopologyKind::kFatTree:
        if (rack_size < 1) {
          return Status::InvalidArgument("fat-tree needs rack_size >= 1");
        }
        if (oversubscription <= 0.0) {
          return Status::InvalidArgument(
              "fat-tree needs oversubscription > 0");
        }
        if (num_cores < 1) {
          return Status::InvalidArgument("fat-tree needs num_cores >= 1");
        }
        return std::unique_ptr<Topology>(std::make_unique<FatTreeTopology>(
            num_workers, rack_size, oversubscription, cost, num_cores));
      case TopologyKind::kRing:
        return std::unique_ptr<Topology>(
            std::make_unique<RingTopology>(num_workers, cost));
      case TopologyKind::kTorus:
        if (torus_width < 1 || torus_height < 1) {
          return Status::InvalidArgument(
              "torus needs torus_width and torus_height >= 1");
        }
        if (torus_width * torus_height != num_workers) {
          return Status::InvalidArgument(StrFormat(
              "torus %dx%d holds %d workers, but num_workers is %d",
              torus_width, torus_height, torus_width * torus_height,
              num_workers));
        }
        return std::unique_ptr<Topology>(
            std::make_unique<TorusTopology>(torus_width, torus_height, cost));
    }
    return Status::Internal("unreachable topology kind");
  }();
  if (built.ok()) (*built)->set_charge_engine(engine);
  return built;
}

std::string TopologySpec::Describe() const {
  std::string base;
  switch (kind) {
    case TopologyKind::kFatTree:
      base = FatTreeTopology::DescribeSpec(num_workers, rack_size,
                                           oversubscription, num_cores);
      break;
    case TopologyKind::kTorus:
      base = TorusTopology::DescribeSpec(num_workers, torus_width,
                                         torus_height);
      break;
    default:
      base = StrFormat("%.*s(P=%d)",
                       static_cast<int>(TopologyKindName(kind).size()),
                       TopologyKindName(kind).data(), num_workers);
      break;
  }
  if (engine == ChargeEngine::kEventOrdered) base += " [event-ordered]";
  return base;
}

}  // namespace spardl
