#ifndef SPARDL_BASELINES_TOPK_DSA_H_
#define SPARDL_BASELINES_TOPK_DSA_H_

#include <memory>

#include "baselines/baseline_common.h"
#include "sparse/block_partition.h"

namespace spardl {

/// TopkDSA (SparCML's split all-reduce; Renggli et al., SC'19).
///
/// Reduce-scatter by *direct send*: each worker splits its local top-k by
/// destination region and ships each split straight to the region owner
/// (P-1 messages -> Theta(P) latency, Table I row 2). Owners sum whatever
/// arrives without re-sparsifying, so the SGA dilemma is allowed to happen;
/// the closing all-gather switches a region to dense encoding once its COO
/// form would exceed the dense block (the `[4(P-1)/P k, (P-1)/P (2k+n)]`
/// bandwidth range of Table I).
class TopkDsa final : public BaselineBase {
 public:
  static Result<std::unique_ptr<TopkDsa>> Create(
      const BaselineConfig& config);

 private:
  explicit TopkDsa(const BaselineConfig& config)
      : BaselineBase(config, "TopkDSA"),
        partition_(config.n, config.num_workers) {}

  SparseVector Core(Comm& comm, SparseVector local) override;

  BlockPartition partition_;
};

}  // namespace spardl

#endif  // SPARDL_BASELINES_TOPK_DSA_H_
