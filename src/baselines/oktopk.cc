#include "baselines/oktopk.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "collectives/sparse_allgather.h"
#include "common/logging.h"

namespace spardl {

Result<std::unique_ptr<OkTopk>> OkTopk::Create(const BaselineConfig& config,
                                               int rebalance_period) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  if (rebalance_period <= 0) {
    return Status::InvalidArgument("rebalance_period must be positive");
  }
  return std::unique_ptr<OkTopk>(new OkTopk(config, rebalance_period));
}

OkTopk::OkTopk(const BaselineConfig& config, int rebalance_period)
    : BaselineBase(config, "Ok-Topk"), rebalance_period_(rebalance_period) {
  // Start from uniform region boundaries.
  const size_t p = static_cast<size_t>(config.num_workers);
  const size_t width = (config.n + p - 1) / p;
  boundaries_.resize(p + 1);
  for (size_t r = 0; r <= p; ++r) {
    boundaries_[r] =
        static_cast<GradIndex>(std::min(config.n, r * width));
  }
}

void OkTopk::AdjustThreshold(size_t count) {
  last_local_count_ = count;
  // Multiplicative steering toward a local count of k. sqrt damps the
  // correction so the threshold tracks the (slowly drifting) gradient
  // magnitude distribution without oscillating.
  if (count == 0) {
    threshold_ *= 0.5;
    return;
  }
  if (threshold_ <= 0.0 && count > config_.k) {
    // A zero threshold can never recover multiplicatively; force an exact
    // recalibration on the next iteration.
    threshold_initialized_ = false;
    return;
  }
  const double ratio =
      static_cast<double>(count) / static_cast<double>(config_.k);
  threshold_ *= std::sqrt(ratio);
}

SparseVector OkTopk::LocalSelectDense(std::span<const float> grad) {
  if (!threshold_initialized_) {
    threshold_ = KthLargestAbs(grad, config_.k, &abs_scratch_);
    threshold_initialized_ = true;
  }
  SparseVector kept;
  SparseVector discarded;
  const float tau = static_cast<float>(threshold_);
  for (size_t i = 0; i < grad.size(); ++i) {
    const float v = grad[i];
    if (v == 0.0f) continue;
    if (std::fabs(v) >= tau) {
      kept.PushBack(static_cast<GradIndex>(i), v);
    } else {
      discarded.PushBack(static_cast<GradIndex>(i), v);
    }
  }
  residuals_.AddLocalDiscard(discarded);
  AdjustThreshold(kept.size());
  return kept;
}

SparseVector OkTopk::LocalSelectSparse(const SparseVector& candidates) {
  if (!threshold_initialized_) {
    // Estimate the initial threshold from the candidates' k-th magnitude
    // (shared radix-select kernel; k at or beyond the candidate count
    // calibrates to 0, keeping everything, exactly as before).
    threshold_ = (config_.k < candidates.size())
                     ? KthLargestAbs(candidates, config_.k, &abs_scratch_)
                     : 0.0;
    threshold_initialized_ = true;
  }
  SparseVector kept;
  SparseVector discarded;
  ThresholdSelect(candidates, static_cast<float>(threshold_), &kept,
                  &discarded);
  residuals_.AddLocalDiscard(discarded);
  AdjustThreshold(kept.size());
  return kept;
}

SparseVector OkTopk::Core(Comm& comm, SparseVector local) {
  const int p = comm.size();
  const int rank = comm.rank();
  const CommGroup world = CommGroup::World(comm);

  // Phase A: direct-send reduce-scatter over the (possibly uneven)
  // regions, staged in two hops per destination as in Li & Hoefler's
  // implementation — this is where the paper's 2(P + log P) alpha latency
  // comes from.
  SparseVector my_region;
  local.ExtractRange(boundaries_[static_cast<size_t>(rank)],
                     boundaries_[static_cast<size_t>(rank) + 1], &my_region);
  for (int offset = 1; offset < p; ++offset) {
    const int dst = (rank + offset) % p;
    const GradIndex lo = boundaries_[static_cast<size_t>(dst)];
    const GradIndex hi = boundaries_[static_cast<size_t>(dst) + 1];
    const GradIndex mid = lo + (hi - lo) / 2;
    SparseVector first_half;
    SparseVector second_half;
    local.ExtractRange(lo, mid, &first_half);
    local.ExtractRange(mid, hi, &second_half);
    comm.Send(dst, Payload(std::move(first_half)), /*tag=*/0);
    comm.Send(dst, Payload(std::move(second_half)), /*tag=*/1);
  }
  SparseVector scratch;
  for (int stage = 0; stage < 2; ++stage) {
    for (int offset = 1; offset < p; ++offset) {
      const int src = (rank - offset + p) % p;
      SparseVector slice = comm.RecvAs<SparseVector>(src, /*tag=*/stage);
      MergeSumInPlace(&my_region, slice, &scratch);
    }
  }

  // Phase B: owner-side pruning to ~k/P, ties included (threshold pruning,
  // so the kept count can exceed the target).
  const size_t target = std::max<size_t>(
      1, (config_.k + static_cast<size_t>(p) - 1) / static_cast<size_t>(p));
  if (my_region.size() > target) {
    const float region_tau = KthLargestAbs(my_region, target, &abs_scratch_);
    SparseVector kept;
    SparseVector discarded;
    ThresholdSelect(my_region, region_tau, &kept, &discarded);
    residuals_.AddCommDiscard(discarded, 1.0f);
    my_region = std::move(kept);
  }

  // Phase C: chunk sizes, then the uneven-chunk all-gather.
  (void)BruckAllGatherCounts(comm, world,
                             static_cast<uint32_t>(my_region.size()));
  std::vector<SparseVector> parts =
      BruckAllGather(comm, world, std::move(my_region));
  SparseVector final_gradient = ConcatDisjoint(parts);

  // Phase D: periodic region rebalancing from the (replicated) support.
  ++iteration_;
  if (iteration_ % rebalance_period_ == 0) {
    RebalanceBoundaries(final_gradient);
  }
  return final_gradient;
}

void OkTopk::RebalanceBoundaries(const SparseVector& final_gradient) {
  const size_t p = static_cast<size_t>(config_.num_workers);
  if (final_gradient.size() < p) return;  // too sparse to matter
  // Equal-count cuts through the global support. Every worker holds the
  // same final gradient, so all replicas derive identical boundaries.
  boundaries_.front() = 0;
  boundaries_.back() = static_cast<GradIndex>(config_.n);
  for (size_t r = 1; r < p; ++r) {
    const size_t cut = r * final_gradient.size() / p;
    GradIndex boundary = final_gradient.index(cut);
    boundary = std::max(boundary, boundaries_[r - 1]);
    boundaries_[r] = boundary;
  }
}

}  // namespace spardl
