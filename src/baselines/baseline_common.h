#ifndef SPARDL_BASELINES_BASELINE_COMMON_H_
#define SPARDL_BASELINES_BASELINE_COMMON_H_

#include <string>
#include <utility>

#include "common/status.h"
#include "core/residual.h"
#include "core/sparse_allreduce.h"
#include "sparse/topk.h"

namespace spardl {

/// Shared configuration for the four baseline sparse All-Reduce methods.
struct BaselineConfig {
  /// Dense gradient length n.
  size_t n = 0;
  /// Global sparse budget k.
  size_t k = 0;
  /// Cluster size P.
  int num_workers = 0;
  /// Error-feedback policy. Pass the method's natural policy (see the
  /// registry) to match the paper's classification: TopkA/TopkDSA -> LRES,
  /// gTopk/Ok-Topk -> PRES.
  ResidualMode residual_mode = ResidualMode::kLocal;

  Status Validate() const;
};

/// Skeleton shared by the baselines: error feedback + a global local top-k
/// selection feeding a method-specific communication core.
///
/// Subclasses implement `Core`, which must return the same global gradient
/// on every worker.
class BaselineBase : public SparseAllReduce {
 public:
  SparseVector Run(Comm& comm, std::span<float> grad) final;
  SparseVector RunOnSparse(Comm& comm,
                           const SparseVector& candidates) final;
  std::string_view name() const final { return name_; }

  const BaselineConfig& config() const { return config_; }
  const ResidualStore& residuals() const { return residuals_; }
  ResidualStore& residuals() { return residuals_; }

 protected:
  BaselineBase(BaselineConfig config, std::string name);

  /// Method-specific local selection from the (residual-compensated) dense
  /// gradient. The default keeps the global top-k and records discards as
  /// local residuals; Ok-Topk overrides this with threshold pruning.
  virtual SparseVector LocalSelectDense(std::span<const float> grad);
  virtual SparseVector LocalSelectSparse(const SparseVector& candidates);

  /// The communication core; consumes this worker's selected gradient.
  virtual SparseVector Core(Comm& comm, SparseVector local) = 0;

  BaselineConfig config_;
  ResidualStore residuals_;
  TopKSelector selector_;

 private:
  std::string name_;
};

}  // namespace spardl

#endif  // SPARDL_BASELINES_BASELINE_COMMON_H_
