#include "baselines/baseline_common.h"

#include "common/logging.h"
#include "common/strings.h"

namespace spardl {

Status BaselineConfig::Validate() const {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (k == 0 || k > n) {
    return Status::InvalidArgument(
        StrFormat("k must be in [1, n]; got k=%zu n=%zu", k, n));
  }
  if (num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  return Status::OK();
}

BaselineBase::BaselineBase(BaselineConfig config, std::string name)
    : config_(config),
      residuals_(config.residual_mode == ResidualMode::kNone ? 0 : config.n,
                 config.residual_mode),
      name_(std::move(name)) {}

SparseVector BaselineBase::LocalSelectDense(std::span<const float> grad) {
  SparseVector kept;
  SparseVector discarded;
  selector_.SelectDense(grad, 0, config_.k, &kept, &discarded);
  residuals_.AddLocalDiscard(discarded);
  return kept;
}

SparseVector BaselineBase::LocalSelectSparse(const SparseVector& candidates) {
  SparseVector kept;
  SparseVector discarded;
  selector_.SelectSparse(candidates, config_.k, &kept, &discarded);
  residuals_.AddLocalDiscard(discarded);
  return kept;
}

SparseVector BaselineBase::Run(Comm& comm, std::span<float> grad) {
  SPARDL_CHECK_EQ(grad.size(), config_.n);
  SPARDL_CHECK_EQ(comm.size(), config_.num_workers);
  residuals_.ApplyAndReset(grad);
  SparseVector local;
  {
    TraceScope scope(comm, Phase::kSparsify, "local-select");
    local = LocalSelectDense(grad);
  }
  SparseVector final_gradient;
  {
    TraceScope scope(comm, Phase::kCollective, "baseline-core");
    final_gradient = Core(comm, std::move(local));
  }
  {
    TraceScope scope(comm, Phase::kResidual, "residual-update");
    residuals_.FinishIteration(final_gradient);
  }
  return final_gradient;
}

SparseVector BaselineBase::RunOnSparse(Comm& comm,
                                       const SparseVector& candidates) {
  SPARDL_CHECK_EQ(comm.size(), config_.num_workers);
  SparseVector local;
  {
    TraceScope scope(comm, Phase::kSparsify, "local-select");
    local = LocalSelectSparse(candidates);
  }
  SparseVector final_gradient;
  {
    TraceScope scope(comm, Phase::kCollective, "baseline-core");
    final_gradient = Core(comm, std::move(local));
  }
  {
    TraceScope scope(comm, Phase::kResidual, "residual-update");
    residuals_.FinishIteration(final_gradient);
  }
  return final_gradient;
}

}  // namespace spardl
