#include "baselines/topk_allgather.h"

#include <utility>
#include <vector>

#include "collectives/sparse_allgather.h"

namespace spardl {

Result<std::unique_ptr<TopkAllGather>> TopkAllGather::Create(
    const BaselineConfig& config) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  return std::unique_ptr<TopkAllGather>(new TopkAllGather(config));
}

SparseVector TopkAllGather::Core(Comm& comm, SparseVector local) {
  const CommGroup world = CommGroup::World(comm);
  const int p = comm.size();
  std::vector<SparseVector> parts;
  if ((p & (p - 1)) == 0) {
    parts = RecursiveDoublingAllGather(comm, world, std::move(local));
  } else {
    parts = BruckAllGather(comm, world, std::move(local));
  }
  // Fixed rank-order summation keeps every replica bit-identical.
  return SumAll(parts);
}

}  // namespace spardl
