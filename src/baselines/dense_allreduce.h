#ifndef SPARDL_BASELINES_DENSE_ALLREDUCE_H_
#define SPARDL_BASELINES_DENSE_ALLREDUCE_H_

#include <memory>

#include "common/status.h"
#include "core/sparse_allreduce.h"

namespace spardl {

/// The no-compression reference: a dense all-reduce (Rabenseifner for
/// power-of-two P, ring otherwise) wrapped in the SparseAllReduce
/// interface. Used as the S-SGD upper-bound baseline in convergence
/// experiments and as the bandwidth yardstick in cost tables.
class DenseAllReduce final : public SparseAllReduce {
 public:
  static Result<std::unique_ptr<DenseAllReduce>> Create(size_t n,
                                                        int num_workers);

  SparseVector Run(Comm& comm, std::span<float> grad) override;
  SparseVector RunOnSparse(Comm& comm,
                           const SparseVector& candidates) override;
  std::string_view name() const override { return "Dense"; }

 private:
  DenseAllReduce(size_t n, int num_workers)
      : n_(n), num_workers_(num_workers) {}

  size_t n_;
  int num_workers_;
};

}  // namespace spardl

#endif  // SPARDL_BASELINES_DENSE_ALLREDUCE_H_
