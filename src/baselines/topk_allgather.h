#ifndef SPARDL_BASELINES_TOPK_ALLGATHER_H_
#define SPARDL_BASELINES_TOPK_ALLGATHER_H_

#include <memory>

#include "baselines/baseline_common.h"

namespace spardl {

/// TopkA (SparCML's sparse all-gather all-reduce; Renggli et al., SC'19).
///
/// Every worker all-gathers its full local top-k and sums the P sparse
/// vectors locally. This sidesteps the SGA dilemma entirely — nothing is
/// ever re-sparsified in flight — at the price of bandwidth proportional to
/// P: each worker receives 2(P-1)k words (Table I row 1). Latency is
/// ceil(log2 P) (recursive doubling when P is a power of two, Bruck
/// otherwise).
class TopkAllGather final : public BaselineBase {
 public:
  static Result<std::unique_ptr<TopkAllGather>> Create(
      const BaselineConfig& config);

 private:
  explicit TopkAllGather(const BaselineConfig& config)
      : BaselineBase(config, "TopkA") {}

  SparseVector Core(Comm& comm, SparseVector local) override;
};

}  // namespace spardl

#endif  // SPARDL_BASELINES_TOPK_ALLGATHER_H_
