#include "baselines/registry.h"

#include <utility>

#include "baselines/dense_allreduce.h"
#include "baselines/gtopk.h"
#include "baselines/oktopk.h"
#include "baselines/topk_allgather.h"
#include "baselines/topk_dsa.h"
#include "common/strings.h"

namespace spardl {

namespace {

BaselineConfig ToBaselineConfig(const AlgorithmConfig& config,
                                ResidualMode natural_mode) {
  BaselineConfig out;
  out.n = config.n;
  out.k = config.k;
  out.num_workers = config.num_workers;
  out.residual_mode = config.residual_mode.value_or(natural_mode);
  return out;
}

template <typename T>
Result<std::unique_ptr<SparseAllReduce>> Upcast(
    Result<std::unique_ptr<T>> result) {
  if (!result.ok()) return result.status();
  return std::unique_ptr<SparseAllReduce>(std::move(result.value()));
}

}  // namespace

Result<std::unique_ptr<SparseAllReduce>> CreateAlgorithm(
    std::string_view name, const AlgorithmConfig& config) {
  // "spardl" honours config.sag_mode (kAuto by default); the -rsag/-bsag
  // aliases force one SAG family, which the d-sweep benches need.
  // Team-shape errors (bad d, mismatched placement) surface as
  // InvalidArgument through SparDLConfig::Validate inside Create — the
  // registry is the process boundary CLIs and benches funnel user input
  // through, so nothing here may die on a SPARDL_CHECK instead.
  if (name == "spardl" || name == "spardl-rsag" || name == "spardl-bsag") {
    SparDLConfig spardl_config;
    spardl_config.n = config.n;
    spardl_config.k = config.k;
    spardl_config.num_workers = config.num_workers;
    spardl_config.num_teams = config.num_teams;
    spardl_config.sag_mode = config.sag_mode;
    if (name == "spardl-rsag") spardl_config.sag_mode = SagMode::kRecursive;
    if (name == "spardl-bsag") spardl_config.sag_mode = SagMode::kBruck;
    spardl_config.residual_mode =
        config.residual_mode.value_or(ResidualMode::kGlobal);
    spardl_config.lazy_sparsify = config.lazy_sparsify;
    spardl_config.value_bits = config.value_bits;
    spardl_config.placement = config.placement;
    return Upcast(SparDL::Create(spardl_config));
  }
  if (name == "topka") {
    return Upcast(
        TopkAllGather::Create(ToBaselineConfig(config, ResidualMode::kLocal)));
  }
  if (name == "topkdsa") {
    return Upcast(
        TopkDsa::Create(ToBaselineConfig(config, ResidualMode::kLocal)));
  }
  if (name == "gtopk") {
    return Upcast(
        GTopk::Create(ToBaselineConfig(config, ResidualMode::kPartial)));
  }
  if (name == "oktopk") {
    return Upcast(
        OkTopk::Create(ToBaselineConfig(config, ResidualMode::kPartial),
                       config.oktopk_rebalance_period));
  }
  if (name == "dense") {
    return Upcast(DenseAllReduce::Create(config.n, config.num_workers));
  }
  return Status::NotFound(
      StrFormat("unknown algorithm '%.*s'", static_cast<int>(name.size()),
                name.data()));
}

std::vector<std::string> AlgorithmNames() {
  return {"topkdsa", "topka", "gtopk", "oktopk", "spardl", "dense"};
}

}  // namespace spardl
