#ifndef SPARDL_BASELINES_REGISTRY_H_
#define SPARDL_BASELINES_REGISTRY_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/sparse_allreduce.h"
#include "core/spardl.h"
#include "topo/placement.h"

namespace spardl {

/// One-stop configuration for building any sparse All-Reduce method by
/// name. Fields irrelevant to a method are ignored (e.g. num_teams for the
/// baselines).
struct AlgorithmConfig {
  size_t n = 0;
  size_t k = 0;
  int num_workers = 0;

  // SparDL-only knobs.
  int num_teams = 1;
  SagMode sag_mode = SagMode::kAuto;
  bool lazy_sparsify = true;
  /// Team layout over the fabric (empty = contiguous). Plan one with
  /// `PlanPlacement`; must match (num_workers, num_teams) when set.
  TeamPlacement placement;

  /// When unset, each method uses its natural policy from the literature:
  /// SparDL -> GRES, TopkA/TopkDSA -> LRES, gTopk/Ok-Topk -> PRES,
  /// Dense -> none.
  std::optional<ResidualMode> residual_mode;

  /// Ok-Topk's balancing period (64 in the paper).
  int oktopk_rebalance_period = 64;

  /// SparDL value quantization width (32 = off; see SparDLConfig).
  int value_bits = 32;
};

/// Builds the method registered under `name`. Known names (case-sensitive):
/// "spardl", "topka", "topkdsa", "gtopk", "oktopk", "dense".
///
/// Team-shape errors (a `num_teams` that does not divide `num_workers`, a
/// `placement` laid out for a different shape) are validated at this
/// boundary and surface as `InvalidArgument` — they never reach the
/// `SPARDL_CHECK`s inside the communicator-group machinery.
Result<std::unique_ptr<SparseAllReduce>> CreateAlgorithm(
    std::string_view name, const AlgorithmConfig& config);

/// All registered method names, in the paper's comparison order.
std::vector<std::string> AlgorithmNames();

}  // namespace spardl

#endif  // SPARDL_BASELINES_REGISTRY_H_
