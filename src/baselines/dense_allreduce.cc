#include "baselines/dense_allreduce.h"

#include <vector>

#include "collectives/dense_collectives.h"
#include "common/logging.h"

namespace spardl {

Result<std::unique_ptr<DenseAllReduce>> DenseAllReduce::Create(
    size_t n, int num_workers) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  return std::unique_ptr<DenseAllReduce>(
      new DenseAllReduce(n, num_workers));
}

SparseVector DenseAllReduce::Run(Comm& comm, std::span<float> grad) {
  SPARDL_CHECK_EQ(grad.size(), n_);
  SPARDL_CHECK_EQ(comm.size(), num_workers_);
  const CommGroup world = CommGroup::World(comm);
  DenseAllReduceAuto(comm, world, grad);
  return SparseVector::FromDense(grad);
}

SparseVector DenseAllReduce::RunOnSparse(Comm& comm,
                                         const SparseVector& candidates) {
  // Materialise the dense vector the candidates stand in for. Only
  // sensible for moderate n; paper-scale profiles never bench the dense
  // path this way (its cost is closed-form). Cold call site: out-of-range
  // candidate indices are caught in NDEBUG by AddToDense's O(1) boundary
  // CHECK.
  std::vector<float> dense(n_, 0.0f);
  candidates.AddToDense(dense);
  return Run(comm, dense);
}

}  // namespace spardl
