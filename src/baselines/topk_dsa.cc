#include "baselines/topk_dsa.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "collectives/sparse_allgather.h"
#include "common/logging.h"

namespace spardl {

Result<std::unique_ptr<TopkDsa>> TopkDsa::Create(
    const BaselineConfig& config) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  return std::unique_ptr<TopkDsa>(new TopkDsa(config));
}

SparseVector TopkDsa::Core(Comm& comm, SparseVector local) {
  const int p = comm.size();
  const int rank = comm.rank();
  const CommGroup world = CommGroup::World(comm);

  // Phase 1: direct-send reduce-scatter. Ship each region's slice straight
  // to its owner; empty slices are sent too (the real MPI implementation
  // posts the message regardless, and the paper charges P*alpha).
  SparseVector my_region;
  local.ExtractRange(partition_.BlockStart(rank), partition_.BlockEnd(rank),
                     &my_region);
  for (int offset = 1; offset < p; ++offset) {
    const int dst = (rank + offset) % p;
    SparseVector slice;
    local.ExtractRange(partition_.BlockStart(dst), partition_.BlockEnd(dst),
                       &slice);
    comm.Send(dst, Payload(std::move(slice)));
  }
  // Deterministic accumulation order: by source rank offset. No
  // re-sparsification — TopkDSA lets the region densify (SGA).
  SparseVector scratch;
  for (int offset = 1; offset < p; ++offset) {
    const int src = (rank - offset + p) % p;
    SparseVector slice = comm.RecvAs<SparseVector>(src);
    SPARDL_DCHECK(slice.IndicesWithin(partition_.BlockStart(rank),
                                      partition_.BlockEnd(rank)));
    MergeSumInPlace(&my_region, slice, &scratch);
  }

  // Phase 2: all-gather of the (possibly dense-ish) regions. A region
  // whose COO encoding exceeds its dense width ships as dense words.
  const BlockPartition& partition = partition_;
  const PartWireWords wire_cost =
      [&partition](const SparseVector& part, int position) -> size_t {
    return std::min(part.WireWords(), partition.BlockSize(position));
  };
  std::vector<SparseVector> parts =
      BruckAllGather(comm, world, std::move(my_region), &wire_cost);
  return ConcatDisjoint(parts);
}

}  // namespace spardl
