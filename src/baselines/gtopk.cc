#include "baselines/gtopk.h"

#include <utility>

#include "common/logging.h"

namespace spardl {

Result<std::unique_ptr<GTopk>> GTopk::Create(const BaselineConfig& config) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  return std::unique_ptr<GTopk>(new GTopk(config));
}

SparseVector GTopk::Core(Comm& comm, SparseVector local) {
  const int p = comm.size();
  const int rank = comm.rank();
  // Largest power of two <= p; the tree runs over ranks [0, p2).
  int p2 = 1;
  while (p2 * 2 <= p) p2 *= 2;
  const int rem = p - p2;
  SparseVector scratch;
  SparseVector kept;
  SparseVector discarded;

  const auto merge_and_reselect = [&](SparseVector incoming) {
    MergeSumInPlace(&local, incoming, &scratch);
    // Re-select top-k: the gTopk SGA fix. Merged supports come from
    // disjoint worker sets, so discards are credited at full weight.
    if (local.size() > config_.k) {
      selector_.SelectSparse(local, config_.k, &kept, &discarded);
      residuals_.AddCommDiscard(discarded, 1.0f);
      std::swap(local, kept);
    }
  };

  // Non-power-of-two fold: extras push their running top-k into the tree's
  // base before it starts.
  if (rank >= p2) {
    comm.Send(rank - p2, Payload(std::move(local)));
    local.Clear();
  } else if (rank < rem) {
    merge_and_reselect(comm.RecvAs<SparseVector>(rank + p2));
  }

  if (rank < p2) {
    // Reduction tree: at level `distance`, ranks that are odd multiples of
    // `distance` push their running top-k to the even multiple below them.
    for (int distance = 1; distance < p2; distance *= 2) {
      const int span = 2 * distance;
      if (rank % span == distance) {
        comm.Send(rank - distance, Payload(std::move(local)));
        local.Clear();
        break;  // inactive until the broadcast reaches this rank
      }
      if (rank % span == 0) {
        merge_and_reselect(comm.RecvAs<SparseVector>(rank + distance));
      }
    }

    // Broadcast tree: the root's global top-k flows back down.
    for (int distance = p2 / 2; distance >= 1; distance /= 2) {
      const int span = 2 * distance;
      if (rank % span == 0) {
        comm.Send(rank + distance, Payload(local));
      } else if (rank % span == distance) {
        local = comm.RecvAs<SparseVector>(rank - distance);
      }
    }
  }

  // Unfold: the folded extras get the global result from their partners.
  if (rank < rem) {
    comm.Send(rank + p2, Payload(local));
  } else if (rank >= p2) {
    local = comm.RecvAs<SparseVector>(rank - p2);
  }
  return local;
}

}  // namespace spardl
