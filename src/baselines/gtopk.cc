#include "baselines/gtopk.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace spardl {

Result<std::unique_ptr<GTopk>> GTopk::Create(const BaselineConfig& config) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  if ((config.num_workers & (config.num_workers - 1)) != 0) {
    return Status::InvalidArgument(
        StrFormat("gTopk requires a power-of-two worker count; got %d",
                  config.num_workers));
  }
  return std::unique_ptr<GTopk>(new GTopk(config));
}

SparseVector GTopk::Core(Comm& comm, SparseVector local) {
  const int p = comm.size();
  const int rank = comm.rank();
  SparseVector scratch;
  SparseVector kept;
  SparseVector discarded;

  // Reduction tree: at level `distance`, ranks that are odd multiples of
  // `distance` push their running top-k to the even multiple below them.
  for (int distance = 1; distance < p; distance *= 2) {
    const int span = 2 * distance;
    if (rank % span == distance) {
      comm.Send(rank - distance, Payload(std::move(local)));
      local.Clear();
      break;  // inactive until the broadcast reaches this rank
    }
    if (rank % span == 0) {
      SparseVector incoming = comm.RecvAs<SparseVector>(rank + distance);
      MergeSumInPlace(&local, incoming, &scratch);
      // Re-select top-k: the gTopk SGA fix. Subtree supports are disjoint
      // across mergers, so discards are credited at full weight.
      if (local.size() > config_.k) {
        selector_.SelectSparse(local, config_.k, &kept, &discarded);
        residuals_.AddCommDiscard(discarded, 1.0f);
        std::swap(local, kept);
      }
    }
  }

  // Broadcast tree: the root's global top-k flows back down.
  for (int distance = p / 2; distance >= 1; distance /= 2) {
    const int span = 2 * distance;
    if (rank % span == 0) {
      comm.Send(rank + distance, Payload(local));
    } else if (rank % span == distance) {
      local = comm.RecvAs<SparseVector>(rank - distance);
    }
  }
  return local;
}

}  // namespace spardl
