#ifndef SPARDL_BASELINES_GTOPK_H_
#define SPARDL_BASELINES_GTOPK_H_

#include <memory>

#include "baselines/baseline_common.h"

namespace spardl {

/// gTopk (Shi et al., ICDCS'19): global top-k via a binomial reduction tree
/// followed by a binomial broadcast tree.
///
/// At every reduction level the receiving worker merges its partner's
/// top-k, re-selects top-k (solving SGA) and stores the discards; the root
/// then broadcasts the global top-k back down. Both trees move k entries
/// per level, giving the 4 log2(P) k beta bandwidth of Table I row 3.
/// Only defined for power-of-two P (the paper evaluates it at P = 8 only
/// for this reason).
class GTopk final : public BaselineBase {
 public:
  /// Fails with InvalidArgument unless num_workers is a power of two.
  static Result<std::unique_ptr<GTopk>> Create(const BaselineConfig& config);

 private:
  explicit GTopk(const BaselineConfig& config)
      : BaselineBase(config, "gTopk") {}

  SparseVector Core(Comm& comm, SparseVector local) override;
};

}  // namespace spardl

#endif  // SPARDL_BASELINES_GTOPK_H_
