#ifndef SPARDL_BASELINES_GTOPK_H_
#define SPARDL_BASELINES_GTOPK_H_

#include <memory>

#include "baselines/baseline_common.h"

namespace spardl {

/// gTopk (Shi et al., ICDCS'19): global top-k via a binomial reduction
/// tree followed by a binomial broadcast tree.
///
/// At every reduction level the receiving worker merges its partner's
/// top-k, re-selects top-k (solving SGA) and stores the discards; the root
/// then broadcasts the global top-k back down. Both trees move k entries
/// per level, giving the ~4 ceil(log2 P) k beta bandwidth of Table I
/// row 3.
///
/// The paper's formulation (and its evaluation, P = 8 only) assumes a
/// power-of-two P. We generalise with the standard fold used by
/// non-power-of-two recursive collectives (the same family as
/// Spar-All-Gather's binary-blocks handling): the r = P - 2^floor(log2 P)
/// extra workers first fold their top-k into workers 0..r-1, the
/// power-of-two tree runs over workers 0..2^floor(log2 P)-1, and the fold
/// partners ship the result back out after the broadcast. One extra
/// exchange round; worker sets stay disjoint, so residual crediting is
/// unchanged.
class GTopk final : public BaselineBase {
 public:
  static Result<std::unique_ptr<GTopk>> Create(const BaselineConfig& config);

 private:
  explicit GTopk(const BaselineConfig& config)
      : BaselineBase(config, "gTopk") {}

  SparseVector Core(Comm& comm, SparseVector local) override;
};

}  // namespace spardl

#endif  // SPARDL_BASELINES_GTOPK_H_
