#ifndef SPARDL_BASELINES_OKTOPK_H_
#define SPARDL_BASELINES_OKTOPK_H_

#include <memory>
#include <vector>

#include "baselines/baseline_common.h"

namespace spardl {

/// Ok-Topk (Li & Hoefler, PPoPP'22) — the strongest baseline in the paper.
///
/// Per iteration:
///  1. *Threshold pruning* locally: keep |v| >= tau, where tau is a
///     per-worker estimate steered multiplicatively toward a count of k.
///     Unlike an exact top-k this can keep more (or fewer) than k entries —
///     the instability the paper calls out in §I(ii).
///  2. Direct-send reduce-scatter into P index *regions* (P-1 messages ->
///     Theta(P) latency, Table I row 4).
///  3. Region owners sum and prune to ~k/P with a ties-inclusive threshold.
///  4. A chunk-size all-gather plus an uneven-chunk Bruck all-gather (the
///     "extra transmission steps to balance the uneven distribution").
///  5. Every `rebalance_period` (64 in the paper) iterations the region
///     boundaries are recomputed from the global support so region loads
///     even out; between rebalances they drift apart, which is the paper's
///     criticism §I(i).
class OkTopk final : public BaselineBase {
 public:
  static Result<std::unique_ptr<OkTopk>> Create(const BaselineConfig& config,
                                                int rebalance_period = 64);

  /// Current region boundaries (size P+1); exposed for tests.
  const std::vector<GradIndex>& boundaries() const { return boundaries_; }

  /// Entries kept by the last local threshold pruning (>= or < k).
  size_t last_local_count() const { return last_local_count_; }

 private:
  OkTopk(const BaselineConfig& config, int rebalance_period);

  SparseVector LocalSelectDense(std::span<const float> grad) override;
  SparseVector LocalSelectSparse(const SparseVector& candidates) override;
  SparseVector Core(Comm& comm, SparseVector local) override;

  void AdjustThreshold(size_t count);
  void RebalanceBoundaries(const SparseVector& final_gradient);

  std::vector<GradIndex> boundaries_;  // region r = [b[r], b[r+1])
  std::vector<float> abs_scratch_;     // KthLargestAbs bucket, reused
  int rebalance_period_;
  double threshold_ = 0.0;
  bool threshold_initialized_ = false;
  int64_t iteration_ = 0;
  size_t last_local_count_ = 0;
};

}  // namespace spardl

#endif  // SPARDL_BASELINES_OKTOPK_H_
