#include "metrics/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace spardl {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  SPARDL_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

// RFC 4180 quoting: a field holding a comma, quote, or newline is wrapped
// in quotes with embedded quotes doubled (link/label names are caller
// data, e.g. "w0->s8", and must not be able to shift columns).
static std::string CsvField(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char ch : field) {
    if (ch == '"') quoted += "\"\"";
    else quoted.push_back(ch);
  }
  quoted.push_back('"');
  return quoted;
}

bool WriteCsv(const std::string& path,
              const std::vector<std::string>& column_names,
              const std::vector<std::vector<double>>& columns) {
  SPARDL_CHECK_EQ(column_names.size(), columns.size());
  std::ofstream file(path);
  if (!file) return false;
  for (size_t c = 0; c < column_names.size(); ++c) {
    file << (c ? "," : "") << CsvField(column_names[c]);
  }
  file << "\n";
  size_t rows = 0;
  for (const auto& col : columns) rows = std::max(rows, col.size());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c) file << ",";
      if (r < columns[c].size()) file << columns[c][r];
    }
    file << "\n";
  }
  return static_cast<bool>(file);
}

}  // namespace spardl
