#ifndef SPARDL_METRICS_TABLE_H_
#define SPARDL_METRICS_TABLE_H_

#include <string>
#include <vector>

namespace spardl {

/// Minimal ASCII table printer for bench output (paper-style rows).
///
/// ```
/// TablePrinter t({"method", "comm (s)", "speedup"});
/// t.AddRow({"SparDL", "0.031", "1.6x"});
/// std::cout << t.ToString();
/// ```
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with column alignment and a header separator.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes a CSV file of named series (one column per series, padded with
/// empty cells). Returns false on I/O failure.
bool WriteCsv(const std::string& path,
              const std::vector<std::string>& column_names,
              const std::vector<std::vector<double>>& columns);

}  // namespace spardl

#endif  // SPARDL_METRICS_TABLE_H_
