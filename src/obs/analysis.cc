#include "obs/analysis.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/strings.h"
#include "metrics/table.h"
#include "obs/exporters.h"
#include "obs/json.h"
#include "simnet/cluster.h"
#include "topo/topology.h"

namespace spardl {

namespace {

// %.17g round-trips doubles exactly — the byte-identity guarantee of the
// JSON fragments rides on this (same convention as the exporters).
std::string Num(double value) { return StrFormat("%.17g", value); }

// The four leaf names that advance a worker's kStreamMain clock. The
// positive ones tile [0, final] per worker (envelope scopes and "send"
// instants ride on top of them), which is the tiling the backward walk
// consumes.
enum class LeafKind : uint8_t { kRecv, kCompute, kIdle, kBarrier };

struct Leaf {
  double t0 = 0.0;
  double t1 = 0.0;
  LeafKind kind = LeafKind::kCompute;
  Phase phase = Phase::kUntagged;
  /// recv ordinal (index into `recv_records`) or barrier ordinal.
  int ordinal = -1;
};

}  // namespace

std::string_view SegmentKindName(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kCompute:
      return "compute";
    case SegmentKind::kOverlapIdle:
      return "overlap-idle";
    case SegmentKind::kLinkQueue:
      return "link-queue";
    case SegmentKind::kLinkAlpha:
      return "link-alpha";
    case SegmentKind::kLinkSerialize:
      return "link-serialize";
    case SegmentKind::kNetwork:
      return "network";
    case SegmentKind::kNumSegmentKinds:
      break;
  }
  return "?";
}

CriticalPathReport ExtractCriticalPath(const Cluster& cluster) {
  CriticalPathReport report;
  report.makespan = cluster.MaxSimSeconds();
  const TraceRecorder* tracer = cluster.tracer();
  const int p = cluster.size();
  if (tracer == nullptr || p == 0) {
    report.identity_ok = report.makespan == 0.0;
    return report;
  }

  // Per-worker clock-advancing leaves, in recorded (chronological) order,
  // plus the published-clock table for barrier ordinals.
  std::vector<std::vector<Leaf>> leaves(static_cast<size_t>(p));
  std::vector<std::vector<double>> barrier_t0(static_cast<size_t>(p));
  for (int w = 0; w < p; ++w) {
    int recv_ordinal = 0;
    int barrier_ordinal = 0;
    for (const TraceSpan& span : tracer->worker_spans(w)) {
      if (span.stream != kStreamMain) continue;
      Leaf leaf;
      leaf.t0 = span.t0;
      leaf.t1 = span.t1;
      leaf.phase = span.phase;
      if (std::strcmp(span.name, "recv") == 0) {
        leaf.kind = LeafKind::kRecv;
        leaf.ordinal = recv_ordinal++;
      } else if (std::strcmp(span.name, "compute") == 0) {
        leaf.kind = LeafKind::kCompute;
      } else if (std::strcmp(span.name, "idle") == 0) {
        leaf.kind = LeafKind::kIdle;
      } else if (std::strcmp(span.name, "barrier-sync") == 0) {
        leaf.kind = LeafKind::kBarrier;
        leaf.ordinal = barrier_ordinal++;
        barrier_t0[static_cast<size_t>(w)].push_back(span.t0);
      } else {
        continue;  // envelope scopes / "send" instants
      }
      leaves[static_cast<size_t>(w)].push_back(leaf);
    }
  }

  // Walk start: the worker whose final clock set the makespan.
  int w = 0;
  double best = -std::numeric_limits<double>::infinity();
  for (int r = 0; r < p; ++r) {
    const double clock = cluster.comm(r).sim_now();
    if (clock > best) {
      best = clock;
      w = r;
    }
  }
  report.end_worker = w;

  // Backward walk. `t` only ever decreases, so one reverse cursor per
  // worker suffices. Every boundary the walk crosses is a propagated
  // *copy* of the same double (send stamps, published barrier clocks,
  // hop hand-offs), so chain continuity is checked with exact equality —
  // any mismatch is a real attribution gap, not float noise.
  double t = report.makespan;
  std::vector<size_t> cursor(static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    cursor[static_cast<size_t>(r)] = leaves[static_cast<size_t>(r)].size();
  }
  std::vector<CriticalSegment> reversed;
  bool ok = true;
  // Attributes [s0, s1] (s1 must extend the chain exactly) and moves the
  // walk time down to s0. Zero-length intervals keep the chain intact
  // without emitting a segment.
  const auto attribute = [&](double s0, double s1, SegmentKind kind,
                             int worker, int link, Phase phase) {
    if (s1 != t || s0 > s1) {
      ok = false;
      return;
    }
    if (s1 > s0) {
      reversed.push_back(CriticalSegment{s0, s1, kind, worker, link, phase});
    }
    t = s0;
  };

  // Generous hard cap: every step either consumes a leaf or a barrier
  // ordinal, so a loop can only mean broken records.
  size_t budget = 16;
  for (int r = 0; r < p; ++r) {
    budget += 4 * leaves[static_cast<size_t>(r)].size();
  }
  for (const auto& [key, flow] : tracer->flow_records()) {
    (void)key;
    budget += flow.hops.size() + 1;
  }

  while (t > 0.0 && ok) {
    if (budget-- == 0) {
      ok = false;
      break;
    }
    const std::vector<Leaf>& ls = leaves[static_cast<size_t>(w)];
    size_t& cur = cursor[static_cast<size_t>(w)];
    while (cur > 0 && ls[cur - 1].t0 >= t) --cur;
    if (cur == 0) {
      // Nothing on this worker covers (0, t] — the tiling is broken.
      ok = false;
      break;
    }
    const Leaf& leaf = ls[cur - 1];
    switch (leaf.kind) {
      case LeafKind::kCompute:
        attribute(leaf.t0, t, SegmentKind::kCompute, w, -1, Phase::kCompute);
        break;
      case LeafKind::kIdle:
        attribute(leaf.t0, t, SegmentKind::kOverlapIdle, w, -1,
                  Phase::kOverlapIdle);
        break;
      case LeafKind::kBarrier: {
        // The released clock is the max over every worker's published
        // clock at this barrier ordinal; jump to the worker that set it
        // (smallest rank on ties). No time is attributed — the target's
        // own timeline explains (.., t] from here on.
        if (t != leaf.t1) {
          ok = false;
          break;
        }
        int target = -1;
        double target_t0 = -std::numeric_limits<double>::infinity();
        for (int u = 0; u < p; ++u) {
          const auto& published = barrier_t0[static_cast<size_t>(u)];
          if (leaf.ordinal >= static_cast<int>(published.size())) {
            ok = false;
            break;
          }
          const double t0 = published[static_cast<size_t>(leaf.ordinal)];
          if (t0 > target_t0) {
            target_t0 = t0;
            target = u;
          }
        }
        if (!ok || target < 0 || target_t0 != t) {
          ok = false;
          break;
        }
        w = target;
        break;
      }
      case LeafKind::kRecv: {
        const RecvRecord& rec =
            tracer->recv_records(w)[static_cast<size_t>(leaf.ordinal)];
        const FlowRecord* flow =
            rec.flow != 0 ? tracer->FindFlow(rec.flow) : nullptr;
        if (flow != nullptr && flow->arrival == t && !flow->hops.empty()) {
          // Event-engine decomposition. The body trails the last hop's
          // header by the bottleneck serialization; the hop hand-offs
          // are exact copies (enter[i+1] == head_out[i], enter[0] ==
          // sent_at), so the chain telescopes to the send instant.
          size_t bottleneck = 0;
          for (size_t i = 1; i < flow->hops.size(); ++i) {
            if (flow->hops[i].serialize >
                flow->hops[bottleneck].serialize) {
              bottleneck = i;
            }
          }
          attribute(flow->hops.back().head_out, t,
                    SegmentKind::kLinkSerialize, w,
                    flow->hops[bottleneck].link, leaf.phase);
          for (size_t i = flow->hops.size(); i-- > 0 && ok;) {
            const FlowHop& hop = flow->hops[i];
            attribute(hop.start, hop.head_out, SegmentKind::kLinkAlpha, w,
                      hop.link, leaf.phase);
            attribute(hop.enter, hop.start, SegmentKind::kLinkQueue, w,
                      hop.link, leaf.phase);
          }
          if (ok) {
            if (t != flow->sent_at) {
              ok = false;
              break;
            }
            w = flow->src;
          }
          break;
        }
        // No per-hop record: the closed-form flat fabric still yields an
        // exact alpha/serialize split; anything else (busy-until engine,
        // or a flow that resolved before tracing attached) becomes one
        // opaque network segment. Either way the chain continues at the
        // send instant when the sender gated delivery, else on this
        // worker's own earlier timeline.
        const double s0 = rec.sent_at > leaf.t0 ? rec.sent_at : leaf.t0;
        const Topology& topology = cluster.topology();
        if (rec.flow == 0 && topology.closed_form_charge() &&
            t == leaf.t1) {
          const double alpha =
              topology.base_cost().alpha * topology.NodeScale(w);
          double mid = s0 + alpha;
          if (mid > t) mid = t;
          attribute(mid, t, SegmentKind::kLinkSerialize, w, -1, leaf.phase);
          attribute(s0, mid, SegmentKind::kLinkAlpha, w, -1, leaf.phase);
        } else {
          attribute(s0, t, SegmentKind::kNetwork, w, -1, leaf.phase);
        }
        if (ok && rec.sent_at > leaf.t0) w = rec.src;
        break;
      }
    }
  }

  report.identity_ok = ok && t == 0.0;
  std::reverse(reversed.begin(), reversed.end());
  report.segments = std::move(reversed);

  double sum = 0.0;
  std::vector<LinkContribution> links;
  for (const CriticalSegment& segment : report.segments) {
    const double seconds = segment.seconds();
    sum += seconds;
    report.by_kind[static_cast<size_t>(segment.kind)] += seconds;
    report.by_phase[static_cast<size_t>(segment.phase)] += seconds;
    if (segment.link >= 0) {
      auto it = std::find_if(links.begin(), links.end(),
                             [&](const LinkContribution& c) {
                               return c.link == segment.link;
                             });
      if (it == links.end()) {
        LinkContribution contribution;
        contribution.link = segment.link;
        contribution.name =
            LinkDisplayName(cluster.topology(), segment.link);
        links.push_back(std::move(contribution));
        it = links.end() - 1;
      }
      switch (segment.kind) {
        case SegmentKind::kLinkQueue:
          it->queue_seconds += seconds;
          break;
        case SegmentKind::kLinkAlpha:
          it->alpha_seconds += seconds;
          break;
        default:
          it->serialize_seconds += seconds;
          break;
      }
    }
  }
  report.path_seconds = sum;
  std::sort(links.begin(), links.end(),
            [](const LinkContribution& a, const LinkContribution& b) {
              if (a.total() != b.total()) return a.total() > b.total();
              return a.link < b.link;
            });
  report.by_link = std::move(links);
  return report;
}

std::vector<WhatIfResult> EstimateWhatIfs(const CriticalPathReport& report,
                                          const Cluster& cluster) {
  const int p = cluster.size();
  const Topology& topology = cluster.topology();
  const auto is_trunk = [&](int link) {
    if (link < 0) return false;
    const LinkInfo info = topology.link_info(link);
    return info.tail >= p && info.head >= p;
  };
  // Each hypothetical maps a segment to its shrunk duration. kNetwork
  // segments (busy-until engine) are never shrunk — the bound stays
  // optimistic-but-safe on what was actually attributed.
  struct Scenario {
    const char* name;
    double (*price)(const CriticalSegment&, bool trunk);
  };
  static constexpr Scenario kScenarios[] = {
      {"compute-free",
       [](const CriticalSegment& s, bool) {
         return s.kind == SegmentKind::kCompute ||
                        s.kind == SegmentKind::kOverlapIdle
                    ? 0.0
                    : s.seconds();
       }},
      {"alpha-zero",
       [](const CriticalSegment& s, bool) {
         return s.kind == SegmentKind::kLinkAlpha ? 0.0 : s.seconds();
       }},
      {"trunk-beta-half",
       [](const CriticalSegment& s, bool trunk) {
         return s.kind == SegmentKind::kLinkSerialize && trunk
                    ? s.seconds() / 2.0
                    : s.seconds();
       }},
      {"all-beta-half",
       [](const CriticalSegment& s, bool) {
         return s.kind == SegmentKind::kLinkSerialize ? s.seconds() / 2.0
                                                      : s.seconds();
       }},
  };
  std::vector<WhatIfResult> results;
  for (const Scenario& scenario : kScenarios) {
    WhatIfResult result;
    result.name = scenario.name;
    double priced = 0.0;
    for (const CriticalSegment& segment : report.segments) {
      priced += scenario.price(segment, is_trunk(segment.link));
    }
    result.path_seconds = priced;
    result.speedup =
        priced > 0.0 && report.path_seconds > 0.0
            ? report.path_seconds / priced
            : 1.0;
    results.push_back(std::move(result));
  }
  return results;
}

std::string CriticalPathTable(const CriticalPathReport& report,
                              size_t top_links) {
  std::string out = StrFormat(
      "critical path: makespan %.9f s, path %.9f s, %zu segments, "
      "identity %s (ends on w%d)\n",
      report.makespan, report.path_seconds, report.segments.size(),
      report.identity_ok ? "OK" : "BROKEN", report.end_worker);
  TablePrinter kinds({"kind", "seconds", "share"});
  for (size_t i = 0; i < kNumSegmentKinds; ++i) {
    const double seconds = report.by_kind[i];
    if (seconds == 0.0) continue;
    kinds.AddRow({std::string(SegmentKindName(static_cast<SegmentKind>(i))),
                  StrFormat("%.9f", seconds),
                  report.path_seconds > 0.0
                      ? StrFormat("%.1f%%",
                                  seconds / report.path_seconds * 100.0)
                      : "-"});
  }
  kinds.AddRow({"total (path)", StrFormat("%.9f", report.path_seconds),
                "100.0%"});
  out += kinds.ToString();
  if (!report.by_link.empty()) {
    out += "links on the critical path:\n";
    TablePrinter links(
        {"link", "queue (s)", "alpha (s)", "serialize (s)", "total (s)"});
    const size_t n = std::min(top_links, report.by_link.size());
    for (size_t i = 0; i < n; ++i) {
      const LinkContribution& c = report.by_link[i];
      links.AddRow({c.name, StrFormat("%.9f", c.queue_seconds),
                    StrFormat("%.9f", c.alpha_seconds),
                    StrFormat("%.9f", c.serialize_seconds),
                    StrFormat("%.9f", c.total())});
    }
    out += links.ToString();
  }
  return out;
}

std::string WhatIfTable(const std::vector<WhatIfResult>& results) {
  TablePrinter table({"what-if", "path (s)", "speedup"});
  for (const WhatIfResult& result : results) {
    table.AddRow({result.name, StrFormat("%.9f", result.path_seconds),
                  StrFormat("%.3fx", result.speedup)});
  }
  return table.ToString();
}

std::string AnalysisJson(const CriticalPathReport& report,
                         const std::vector<WhatIfResult>& what_ifs) {
  std::string out = StrFormat(
      "{\"schema\":\"spardl-analysis/1\",\"makespan_seconds\":%s,"
      "\"path_seconds\":%s,\"identity_ok\":%s,\"end_worker\":%d,"
      "\"segments\":%zu,",
      Num(report.makespan).c_str(), Num(report.path_seconds).c_str(),
      report.identity_ok ? "true" : "false", report.end_worker,
      report.segments.size());
  out += "\"by_kind\":{";
  bool first = true;
  for (size_t i = 0; i < kNumSegmentKinds; ++i) {
    if (report.by_kind[i] == 0.0) continue;
    if (!first) out.push_back(',');
    first = false;
    out += StrFormat(
        "\"%s\":%s",
        std::string(SegmentKindName(static_cast<SegmentKind>(i))).c_str(),
        Num(report.by_kind[i]).c_str());
  }
  out += "},\"by_phase\":{";
  first = true;
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (report.by_phase[i] == 0.0) continue;
    if (!first) out.push_back(',');
    first = false;
    out += StrFormat("\"%s\":%s",
                     std::string(PhaseName(static_cast<Phase>(i))).c_str(),
                     Num(report.by_phase[i]).c_str());
  }
  out += "},\"by_link\":[";
  for (size_t i = 0; i < report.by_link.size(); ++i) {
    const LinkContribution& c = report.by_link[i];
    if (i > 0) out.push_back(',');
    out += StrFormat(
        "{\"link\":%d,\"name\":\"%s\",\"queue_seconds\":%s,"
        "\"alpha_seconds\":%s,\"serialize_seconds\":%s}",
        c.link, JsonEscape(c.name).c_str(), Num(c.queue_seconds).c_str(),
        Num(c.alpha_seconds).c_str(), Num(c.serialize_seconds).c_str());
  }
  out += "],\"what_if\":[";
  for (size_t i = 0; i < what_ifs.size(); ++i) {
    const WhatIfResult& result = what_ifs[i];
    if (i > 0) out.push_back(',');
    out += StrFormat("{\"name\":\"%s\",\"path_seconds\":%s,\"speedup\":%s}",
                     JsonEscape(result.name).c_str(),
                     Num(result.path_seconds).c_str(),
                     Num(result.speedup).c_str());
  }
  out += "]}";
  return out;
}

FixedBucketHistogram::FixedBucketHistogram(size_t buckets)
    : buckets_(buckets == 0 ? 1 : buckets) {}

void FixedBucketHistogram::Add(double value) { values_.push_back(value); }

double FixedBucketHistogram::Quantile(double q) const {
  if (values_.empty()) return 0.0;
  double lo = values_.front();
  double hi = values_.front();
  for (const double v : values_) {
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  if (q <= 0.0) return lo;
  if (q >= 1.0 || hi <= lo) return hi;
  // Fixed linear buckets over [lo, hi]; the quantile reports the lower
  // edge of the cell holding the q-th observation.
  std::vector<uint64_t> counts(buckets_, 0);
  const double width = (hi - lo) / static_cast<double>(buckets_);
  for (const double v : values_) {
    size_t cell = static_cast<size_t>((v - lo) / width);
    if (cell >= buckets_) cell = buckets_ - 1;
    ++counts[cell];
  }
  const double target = q * static_cast<double>(values_.size());
  uint64_t cumulative = 0;
  for (size_t cell = 0; cell < buckets_; ++cell) {
    cumulative += counts[cell];
    if (static_cast<double>(cumulative) >= target) {
      return lo + width * static_cast<double>(cell);
    }
  }
  return hi;
}

TimeSeriesReport BuildTimeSeries(const Cluster& cluster,
                                 double straggler_factor) {
  TimeSeriesReport report;
  report.workers = cluster.size();
  report.straggler_factor = straggler_factor;
  const TraceRecorder* tracer = cluster.tracer();
  const int p = cluster.size();
  if (tracer == nullptr || p == 0) return report;

  size_t iterations = std::numeric_limits<size_t>::max();
  for (int w = 0; w < p; ++w) {
    iterations = std::min(iterations, tracer->iteration_marks(w).size());
  }
  if (iterations == std::numeric_limits<size_t>::max() || iterations == 0) {
    return report;
  }
  report.iterations = static_cast<int>(iterations);

  for (size_t i = 0; i < iterations; ++i) {
    IterationStat stat;
    stat.iteration = static_cast<int>(i);
    std::vector<double> walls;
    walls.reserve(static_cast<size_t>(p));
    FixedBucketHistogram histogram;
    for (int w = 0; w < p; ++w) {
      const auto& marks = tracer->iteration_marks(w);
      const IterationMark& mark = marks[i];
      const IterationMark* prev = i > 0 ? &marks[i - 1] : nullptr;
      const double wall = mark.sim_now - (prev ? prev->sim_now : 0.0);
      walls.push_back(wall);
      histogram.Add(wall);
      stat.comm_mean +=
          mark.comm_seconds - (prev ? prev->comm_seconds : 0.0);
      stat.compute_mean +=
          mark.compute_seconds - (prev ? prev->compute_seconds : 0.0);
      for (size_t ph = 0; ph < kNumPhases; ++ph) {
        stat.phase_mean[ph] +=
            mark.phase_seconds[ph] - (prev ? prev->phase_seconds[ph] : 0.0);
      }
    }
    std::sort(walls.begin(), walls.end());
    stat.wall_min = walls.front();
    stat.wall_max = walls.back();
    stat.wall_median = walls[walls.size() / 2];
    stat.wall_p99 = histogram.Quantile(0.99);
    stat.comm_mean /= static_cast<double>(p);
    stat.compute_mean /= static_cast<double>(p);
    for (size_t ph = 0; ph < kNumPhases; ++ph) {
      stat.phase_mean[ph] /= static_cast<double>(p);
    }
    report.series.push_back(std::move(stat));
  }

  // Straggler report: a worker's mean iteration wall (telescoping: final
  // mark over the iteration count) against the cross-worker median.
  std::vector<double> means(static_cast<size_t>(p));
  for (int w = 0; w < p; ++w) {
    means[static_cast<size_t>(w)] =
        tracer->iteration_marks(w)[iterations - 1].sim_now /
        static_cast<double>(iterations);
  }
  std::vector<double> sorted = means;
  std::sort(sorted.begin(), sorted.end());
  report.median_worker_wall = sorted[sorted.size() / 2];
  if (report.median_worker_wall > 0.0) {
    for (int w = 0; w < p; ++w) {
      const double ratio =
          means[static_cast<size_t>(w)] / report.median_worker_wall;
      if (ratio > straggler_factor) {
        report.stragglers.push_back(
            StragglerEntry{w, means[static_cast<size_t>(w)], ratio});
      }
    }
    std::sort(report.stragglers.begin(), report.stragglers.end(),
              [](const StragglerEntry& a, const StragglerEntry& b) {
                if (a.ratio != b.ratio) return a.ratio > b.ratio;
                return a.worker < b.worker;
              });
  }
  return report;
}

std::string TimeSeriesJson(const TimeSeriesReport& report,
                           const std::string& label) {
  std::string out = StrFormat(
      "{\"schema\":\"spardl-timeseries/1\",\"label\":\"%s\","
      "\"workers\":%d,\"iterations\":%d,\"straggler_factor\":%s,"
      "\"median_worker_wall\":%s,\"series\":[",
      JsonEscape(label).c_str(), report.workers, report.iterations,
      Num(report.straggler_factor).c_str(),
      Num(report.median_worker_wall).c_str());
  for (size_t i = 0; i < report.series.size(); ++i) {
    const IterationStat& stat = report.series[i];
    if (i > 0) out.push_back(',');
    out += StrFormat(
        "\n{\"iteration\":%d,\"wall_min\":%s,\"wall_median\":%s,"
        "\"wall_max\":%s,\"wall_p99\":%s,\"comm_mean\":%s,"
        "\"compute_mean\":%s,\"phase_mean\":{",
        stat.iteration, Num(stat.wall_min).c_str(),
        Num(stat.wall_median).c_str(), Num(stat.wall_max).c_str(),
        Num(stat.wall_p99).c_str(), Num(stat.comm_mean).c_str(),
        Num(stat.compute_mean).c_str());
    bool first = true;
    for (size_t ph = 0; ph < kNumPhases; ++ph) {
      if (stat.phase_mean[ph] == 0.0) continue;
      if (!first) out.push_back(',');
      first = false;
      out += StrFormat(
          "\"%s\":%s",
          std::string(PhaseName(static_cast<Phase>(ph))).c_str(),
          Num(stat.phase_mean[ph]).c_str());
    }
    out += "}}";
  }
  out += "\n],\"stragglers\":[";
  for (size_t i = 0; i < report.stragglers.size(); ++i) {
    const StragglerEntry& entry = report.stragglers[i];
    if (i > 0) out.push_back(',');
    out += StrFormat(
        "{\"worker\":%d,\"mean_wall\":%s,\"ratio\":%s}", entry.worker,
        Num(entry.mean_wall).c_str(), Num(entry.ratio).c_str());
  }
  out += "]}\n";
  return out;
}

std::string TimeSeriesTable(const TimeSeriesReport& report) {
  TablePrinter table({"iter", "wall min (s)", "median (s)", "max (s)",
                      "p99 (s)", "comm mean (s)", "compute mean (s)"});
  for (const IterationStat& stat : report.series) {
    table.AddRow({StrFormat("%d", stat.iteration),
                  StrFormat("%.9f", stat.wall_min),
                  StrFormat("%.9f", stat.wall_median),
                  StrFormat("%.9f", stat.wall_max),
                  StrFormat("%.9f", stat.wall_p99),
                  StrFormat("%.9f", stat.comm_mean),
                  StrFormat("%.9f", stat.compute_mean)});
  }
  return table.ToString();
}

std::string StragglerTable(const TimeSeriesReport& report) {
  if (report.stragglers.empty()) {
    return StrFormat(
        "stragglers: none (no worker above %.2fx the median %.9f s)\n",
        report.straggler_factor, report.median_worker_wall);
  }
  std::string out =
      StrFormat("stragglers (above %.2fx the median %.9f s):\n",
                report.straggler_factor, report.median_worker_wall);
  TablePrinter table({"worker", "mean wall (s)", "vs median"});
  for (const StragglerEntry& entry : report.stragglers) {
    table.AddRow({StrFormat("w%d", entry.worker),
                  StrFormat("%.9f", entry.mean_wall),
                  StrFormat("%.3fx", entry.ratio)});
  }
  out += table.ToString();
  return out;
}

}  // namespace spardl
