#ifndef SPARDL_OBS_EXPORTERS_H_
#define SPARDL_OBS_EXPORTERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "simnet/comm_stats.h"

namespace spardl {

class Cluster;
class Topology;

/// Renders the cluster's recorded spans as Chrome trace-event JSON
/// (loadable in Perfetto / chrome://tracing): one track per worker, one
/// per overlapped-compute stream that carries spans, and one per hot link
/// (the `max_link_tracks` busiest traffic-carrying links). Returns an
/// empty-but-valid document when tracing is disabled.
///
/// Determinism: output is byte-identical across runs whenever the spans
/// are — which the event-ordered engine guarantees even on contended
/// fabrics (link spans are additionally sorted by `(t0, link, t1)` so the
/// busy-until engine's wall-clock charge order cannot leak into the
/// document layout).
std::string ChromeTraceJson(const Cluster& cluster,
                            size_t max_link_tracks = 8);

/// One run's structured metrics: the makespan, aggregated `CommStats`
/// (with the phase breakdown), and the traffic-carrying links
/// busiest-first.
struct RunMetrics {
  struct Link {
    int id = 0;  // LinkId
    std::string name;  // "w0->s8"
    double busy_seconds = 0.0;
    uint64_t bytes = 0;
    uint64_t messages = 0;
    double max_queue_seconds = 0.0;
    /// busy_seconds / makespan (0 when the makespan is 0).
    double utilization = 0.0;
  };

  std::string label;
  std::string topology;
  std::string engine;  // "event" or "busy"
  int workers = 0;
  double makespan_seconds = 0.0;
  CommStats total;
  std::vector<Link> links;  // busy_seconds desc, then id asc
  /// Optional embedded `spardl-analysis/1` object (see
  /// `obs/analysis.h`'s `AnalysisJson`); emitted as the run's
  /// `"analysis"` key when non-empty.
  std::string analysis_json;
};

/// Snapshots `cluster`'s counters (works with tracing disabled — the
/// phase breakdown and link counters are always maintained).
RunMetrics CollectRunMetrics(const Cluster& cluster,
                             const std::string& label);

/// Serializes runs as a `spardl-run-metrics/2` JSON document (/2 added
/// the optional per-run `"analysis"` object; consumers of /1 documents
/// keep working — no field was removed or renamed).
std::string RunMetricsJson(const std::vector<RunMetrics>& runs);

/// Graph-edge display name ("w0->s8": workers are "w<rank>", switches
/// "s<id>"), shared by the exporters and the critical-path tables.
std::string LinkDisplayName(const Topology& topology, int link);

/// ASCII table of the top `top_n` links by busy time, with utilization
/// against the run's makespan.
std::string LinkUtilizationTable(const RunMetrics& metrics,
                                 size_t top_n = 10);

/// ASCII table of the nonzero phase buckets (busiest first) plus the
/// comm/compute aggregates.
std::string TopPhasesTable(const RunMetrics& metrics);

/// Writes `contents` to `path`; returns false on any I/O failure.
bool WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace spardl

#endif  // SPARDL_OBS_EXPORTERS_H_
