#include "obs/trace.h"

#include <utility>

namespace spardl {

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kUntagged:
      return "untagged";
    case Phase::kSparsify:
      return "sparsify";
    case Phase::kSrs:
      return "srs";
    case Phase::kSag:
      return "sag";
    case Phase::kAllGather:
      return "allgather";
    case Phase::kResidual:
      return "residual";
    case Phase::kCollective:
      return "collective";
    case Phase::kBucket:
      return "bucket";
    case Phase::kCompute:
      return "compute";
    case Phase::kBarrier:
      return "barrier";
    case Phase::kOverlapIdle:
      return "overlap-idle";
    case Phase::kLink:
      return "link";
    case Phase::kNumPhases:
      break;
  }
  return "?";
}

TraceRecorder::TraceRecorder(int num_workers) {
  worker_spans_.resize(static_cast<size_t>(num_workers));
  recv_records_.resize(static_cast<size_t>(num_workers));
  iteration_marks_.resize(static_cast<size_t>(num_workers));
}

void TraceRecorder::RecordFlow(uint64_t key, FlowRecord rec) {
  flow_records_[key] = std::move(rec);
}

const FlowRecord* TraceRecorder::FindFlow(uint64_t key) const {
  const auto it = flow_records_.find(key);
  return it == flow_records_.end() ? nullptr : &it->second;
}

size_t TraceRecorder::TotalSpans() const {
  size_t total = link_spans_.size();
  for (const auto& spans : worker_spans_) total += spans.size();
  return total;
}

void TraceRecorder::Clear() {
  for (auto& spans : worker_spans_) spans.clear();
  link_spans_.clear();
  for (auto& recs : recv_records_) recs.clear();
  flow_records_.clear();
  for (auto& marks : iteration_marks_) marks.clear();
}

}  // namespace spardl
