#include "obs/trace.h"

namespace spardl {

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kUntagged:
      return "untagged";
    case Phase::kSparsify:
      return "sparsify";
    case Phase::kSrs:
      return "srs";
    case Phase::kSag:
      return "sag";
    case Phase::kAllGather:
      return "allgather";
    case Phase::kResidual:
      return "residual";
    case Phase::kCollective:
      return "collective";
    case Phase::kBucket:
      return "bucket";
    case Phase::kCompute:
      return "compute";
    case Phase::kBarrier:
      return "barrier";
    case Phase::kOverlapIdle:
      return "overlap-idle";
    case Phase::kLink:
      return "link";
    case Phase::kNumPhases:
      break;
  }
  return "?";
}

TraceRecorder::TraceRecorder(int num_workers) {
  worker_spans_.resize(static_cast<size_t>(num_workers));
}

size_t TraceRecorder::TotalSpans() const {
  size_t total = link_spans_.size();
  for (const auto& spans : worker_spans_) total += spans.size();
  return total;
}

void TraceRecorder::Clear() {
  for (auto& spans : worker_spans_) spans.clear();
  link_spans_.clear();
}

}  // namespace spardl
