#ifndef SPARDL_OBS_JSON_H_
#define SPARDL_OBS_JSON_H_

#include <string>
#include <string_view>

namespace spardl {

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view text);

/// Strict structural validation of one JSON document (objects, arrays,
/// strings, numbers, true/false/null; trailing garbage rejected). A
/// dependency-free checker so the exporters' output can be verified in
/// tests and tools without a JSON library in the image.
bool IsValidJson(std::string_view text);

}  // namespace spardl

#endif  // SPARDL_OBS_JSON_H_
