#ifndef SPARDL_OBS_JSON_H_
#define SPARDL_OBS_JSON_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spardl {

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view text);

/// Strict structural validation of one JSON document (objects, arrays,
/// strings, numbers, true/false/null; trailing garbage rejected). A
/// dependency-free checker so the exporters' output can be verified in
/// tests and tools without a JSON library in the image.
bool IsValidJson(std::string_view text);

/// A parsed JSON value — the minimal DOM `spardl-analyze` needs to read
/// the exporters' artifacts back. Object members keep document order
/// (duplicate keys: `Find` returns the first).
struct JsonValue {
  enum class Type : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array_items;
  std::vector<std::pair<std::string, JsonValue>> object_items;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Member lookup on an object; null for other types or missing keys.
  const JsonValue* Find(std::string_view key) const;

  /// `Find(key)->number_value` with a default for missing/non-number.
  double NumberOr(std::string_view key, double fallback) const;

  /// `Find(key)->string_value` with a default for missing/non-string.
  std::string StringOr(std::string_view key, std::string fallback) const;
};

/// Parses one complete JSON document (same grammar the checker accepts;
/// trailing garbage rejected). `\uXXXX` escapes decode to UTF-8;
/// surrogate pairs are combined. Returns nullopt on any syntax error.
std::optional<JsonValue> JsonParse(std::string_view text);

}  // namespace spardl

#endif  // SPARDL_OBS_JSON_H_
