#ifndef SPARDL_OBS_ANALYSIS_H_
#define SPARDL_OBS_ANALYSIS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace spardl {

class Cluster;

/// What a critical-path segment's time was spent on.
///
/// `kCompute`/`kOverlapIdle` lie on a worker's own timeline; the three
/// `kLink*` kinds decompose an event-engine flow into per-hop queueing,
/// header latency, and (bottleneck) body serialization; `kNetwork` is an
/// undecomposed network wait — the flat fabric's closed form contributes
/// alpha/serialize splits without a real LinkId, and the busy-until
/// engine (which keeps no per-hop records) contributes whole-flow waits.
enum class SegmentKind : uint8_t {
  kCompute = 0,
  kOverlapIdle,
  kLinkQueue,
  kLinkAlpha,
  kLinkSerialize,
  kNetwork,
  kNumSegmentKinds,
};

inline constexpr size_t kNumSegmentKinds =
    static_cast<size_t>(SegmentKind::kNumSegmentKinds);

std::string_view SegmentKindName(SegmentKind kind);

/// One interval of the critical path, on global simulated time. Segments
/// are reported in forward time order and tile `[0, makespan]` exactly:
/// each segment's `t1` is the *same double* as its successor's `t0`.
struct CriticalSegment {
  double t0 = 0.0;
  double t1 = 0.0;
  SegmentKind kind = SegmentKind::kNetwork;
  /// Worker whose wait/compute this interval explains (the receiver, for
  /// link segments).
  int worker = -1;
  /// LinkId for the kLink* kinds on a real fabric; -1 otherwise.
  int link = -1;
  /// The phase the explaining leaf ran under (kCompute / kOverlapIdle for
  /// the local kinds; the Recv's active phase for network kinds).
  Phase phase = Phase::kUntagged;

  double seconds() const { return t1 - t0; }
};

/// Per-link critical-path attribution (kLink* kinds only).
struct LinkContribution {
  int link = -1;
  std::string name;
  double queue_seconds = 0.0;
  double alpha_seconds = 0.0;
  double serialize_seconds = 0.0;

  double total() const {
    return queue_seconds + alpha_seconds + serialize_seconds;
  }
};

/// The extracted critical path plus its aggregates. `identity_ok` is the
/// enforced invariant: the backward walk produced an exactly-contiguous
/// chain from `makespan` down to 0 (every boundary matched bit-for-bit),
/// so the segments sum to the end-to-end simulated time.
struct CriticalPathReport {
  double makespan = 0.0;
  /// Sum of segment durations (equals `makespan` up to summation order
  /// when `identity_ok`).
  double path_seconds = 0.0;
  bool identity_ok = false;
  /// The worker whose final clock set the makespan (walk start).
  int end_worker = -1;
  std::vector<CriticalSegment> segments;  // forward time order
  std::array<double, kNumSegmentKinds> by_kind{};
  /// Seconds attributed per phase tag (every segment carries one).
  std::array<double, kNumPhases> by_phase{};
  /// Real-link attribution, total() desc then LinkId asc.
  std::vector<LinkContribution> by_link;
};

/// Walks the dependency chain backward from the cluster's last clock:
/// through compute and idle leaves on each worker's timeline, across
/// barriers to the worker that set the released clock, and through recv
/// waits into the event engine's per-hop flow records (falling back to
/// the closed-form alpha/beta split on flat fabrics and to opaque
/// `kNetwork` waits on the busy-until engine). Requires tracing to have
/// been enabled for the measured window; returns an empty non-ok report
/// otherwise. Deterministic: on the event engine the report (and its
/// JSON) is bit-identical across runs.
CriticalPathReport ExtractCriticalPath(const Cluster& cluster);

/// One hypothetical re-pricing of the extracted path.
struct WhatIfResult {
  std::string name;
  /// Path length after shrinking the targeted segments.
  double path_seconds = 0.0;
  /// makespan / path_seconds (1.0 when nothing shrank; >= 1 always —
  /// hypotheticals only shrink segment durations).
  double speedup = 1.0;
};

/// Re-prices the critical path under standard hypotheticals: compute
/// free (kCompute + kOverlapIdle zeroed), alpha zeroed, trunk links'
/// beta halved (links with both endpoints >= P, i.e. switch-to-switch),
/// and all serialization halved. Each is an *optimistic bound*: the
/// real optimum may shift the path onto a different chain, so actual
/// speedup can be lower, never higher. Monotone by construction.
std::vector<WhatIfResult> EstimateWhatIfs(const CriticalPathReport& report,
                                          const Cluster& cluster);

/// ASCII rendering: per-kind summary with the identity line, then the
/// top per-link contributors.
std::string CriticalPathTable(const CriticalPathReport& report,
                              size_t top_links = 8);

std::string WhatIfTable(const std::vector<WhatIfResult>& results);

/// The `"analysis"` JSON fragment embedded into run-metrics documents
/// (schema tag `spardl-analysis/1` inside the object): aggregates plus
/// the what-if table, no raw segments. `%.17g` numbers — bit-identical
/// whenever the report is.
std::string AnalysisJson(const CriticalPathReport& report,
                         const std::vector<WhatIfResult>& what_ifs);

/// Fixed-bucket histogram over a closed value range: `buckets` equal
/// cells between the observed min and max. Quantiles interpolate to the
/// lower edge of the covering bucket — coarse but allocation-bounded,
/// which is all the per-iteration skew summary needs.
class FixedBucketHistogram {
 public:
  explicit FixedBucketHistogram(size_t buckets = 64);

  void Add(double value);
  size_t count() const { return values_.size(); }

  /// q in [0, 1]; 0 when empty. Exact at q=0 and q=1 (observed min/max).
  double Quantile(double q) const;

 private:
  size_t buckets_;
  std::vector<double> values_;
};

/// One iteration row of the time series: cross-worker distribution of
/// the per-iteration wall clock plus mean comm/compute and phase deltas.
struct IterationStat {
  int iteration = 0;
  double wall_min = 0.0;
  double wall_median = 0.0;
  double wall_max = 0.0;
  double wall_p99 = 0.0;
  double comm_mean = 0.0;
  double compute_mean = 0.0;
  std::array<double, kNumPhases> phase_mean{};
};

/// A worker whose mean iteration wall exceeded the cross-worker median
/// by the configured factor.
struct StragglerEntry {
  int worker = -1;
  double mean_wall = 0.0;
  /// mean_wall / median of per-worker means.
  double ratio = 0.0;
};

struct TimeSeriesReport {
  int workers = 0;
  int iterations = 0;
  double straggler_factor = 0.0;
  /// Median over workers of the per-worker mean iteration wall.
  double median_worker_wall = 0.0;
  std::vector<IterationStat> series;
  std::vector<StragglerEntry> stragglers;  // ratio desc, worker asc
};

/// Default straggler threshold; `SPARDL_STRAGGLER_FACTOR` overrides it
/// in the bench harness.
inline constexpr double kDefaultStragglerFactor = 1.5;

/// Builds the series from the `Comm::MarkIteration` marks recorded for
/// the measured window (empty report when tracing was off or no marks
/// were recorded). Iterations with marks missing on some worker (the
/// marks past the shortest per-worker sequence) are dropped.
TimeSeriesReport BuildTimeSeries(const Cluster& cluster,
                                 double straggler_factor =
                                     kDefaultStragglerFactor);

/// Serializes the report as a standalone `spardl-timeseries/1` document.
/// `%.17g` numbers: byte-identical across runs whenever the marks are
/// (guaranteed on the event engine).
std::string TimeSeriesJson(const TimeSeriesReport& report,
                           const std::string& label);

/// ASCII table: one row per iteration (wall min/median/max/p99, mean
/// comm/compute).
std::string TimeSeriesTable(const TimeSeriesReport& report);

/// ASCII straggler summary ("none" line when no worker crossed the
/// threshold).
std::string StragglerTable(const TimeSeriesReport& report);

}  // namespace spardl

#endif  // SPARDL_OBS_ANALYSIS_H_
