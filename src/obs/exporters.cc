#include "obs/exporters.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <unordered_map>

#include "common/strings.h"
#include "metrics/table.h"
#include "obs/json.h"
#include "simnet/cluster.h"
#include "topo/topology.h"

namespace spardl {

namespace {

// Graph-node display name: workers are "w<rank>", switches "s<id>".
std::string NodeName(int node, int num_workers) {
  return node < num_workers ? StrFormat("w%d", node)
                            : StrFormat("s%d", node);
}

// Spans carry a static `name` plus small-int args; the human-facing label
// is composed here so recording stays allocation-free.
std::string SpanDisplayName(const TraceSpan& span) {
  if (span.stream == kStreamLink) {
    return StrFormat("w%d->w%d", span.a, span.b);
  }
  if (std::strcmp(span.name, "send") == 0) {
    return StrFormat("send->w%d", span.a);
  }
  if (std::strcmp(span.name, "recv") == 0) {
    return StrFormat("recv<-w%d", span.a);
  }
  if (span.a >= 0) return StrFormat("%s-%d", span.name, span.a);
  return span.name;
}

// %.17g round-trips doubles exactly, so identical spans render identical
// text — the byte-identity guarantee rides on this.
std::string Num(double value) { return StrFormat("%.17g", value); }

std::string Micros(double seconds) { return Num(seconds * 1e6); }

void AppendEvent(std::string* out, const std::string& event) {
  if (out->back() != '[') out->push_back(',');
  out->push_back('\n');
  out->append(event);
}

void AppendThreadName(std::string* out, int tid, const std::string& name,
                      int sort_index) {
  AppendEvent(
      out,
      StrFormat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                tid, JsonEscape(name).c_str()));
  AppendEvent(
      out,
      StrFormat("{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":%d,\"args\":{\"sort_index\":%d}}",
                tid, sort_index));
}

void AppendSpan(std::string* out, const TraceSpan& span, int tid) {
  const std::string name = JsonEscape(SpanDisplayName(span));
  const std::string cat(PhaseName(span.phase));
  std::string args;
  if (span.bytes > 0) {
    args = StrFormat(",\"args\":{\"bytes\":%llu}",
                     static_cast<unsigned long long>(span.bytes));
  }
  if (span.t1 <= span.t0) {
    // Zero-duration marks (sends) render as instant events.
    AppendEvent(out, StrFormat("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":"
                               "\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":0,"
                               "\"tid\":%d%s}",
                               name.c_str(), cat.c_str(),
                               Micros(span.t0).c_str(), tid, args.c_str()));
    return;
  }
  AppendEvent(out, StrFormat("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                             "\"ts\":%s,\"dur\":%s,\"pid\":0,\"tid\":%d%s}",
                             name.c_str(), cat.c_str(),
                             Micros(span.t0).c_str(),
                             Micros(span.t1 - span.t0).c_str(), tid,
                             args.c_str()));
}

}  // namespace

std::string LinkDisplayName(const Topology& topology, int link) {
  const LinkInfo info = topology.link_info(link);
  const int p = topology.num_workers();
  return StrFormat("%s->%s", NodeName(info.tail, p).c_str(),
                   NodeName(info.head, p).c_str());
}

std::string ChromeTraceJson(const Cluster& cluster, size_t max_link_tracks) {
  std::string out = "{\"traceEvents\":[";
  const TraceRecorder* tracer = cluster.tracer();
  const int p = cluster.size();
  AppendEvent(&out,
              "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
              "\"args\":{\"name\":\"spardl\"}}");
  if (tracer != nullptr) {
    // Worker tracks: tid = rank; overlapped-compute tracks: tid = P + rank
    // (only when that stream carries spans); link tracks: tid = 2P + slot.
    for (int w = 0; w < p; ++w) {
      AppendThreadName(&out, w, StrFormat("w%d", w), w);
      const auto& spans = tracer->worker_spans(w);
      const bool has_compute =
          std::any_of(spans.begin(), spans.end(), [](const TraceSpan& s) {
            return s.stream == kStreamCompute;
          });
      if (has_compute) {
        AppendThreadName(&out, p + w, StrFormat("w%d compute", w), p + w);
      }
      for (const TraceSpan& span : spans) {
        AppendSpan(&out, span,
                   span.stream == kStreamCompute ? p + w : w);
      }
    }
    // Hot links: busiest traffic-carrying links first (stable tie-break on
    // LinkId keeps the track set deterministic).
    std::vector<TraceSpan> link_spans = tracer->link_spans();
    std::stable_sort(link_spans.begin(), link_spans.end(),
                     [](const TraceSpan& a, const TraceSpan& b) {
                       if (a.t0 != b.t0) return a.t0 < b.t0;
                       if (a.track != b.track) return a.track < b.track;
                       return a.t1 < b.t1;
                     });
    std::unordered_map<int, double> busy;
    for (const TraceSpan& span : link_spans) {
      busy[span.track] += span.t1 - span.t0;
    }
    std::vector<std::pair<int, double>> hot(busy.begin(), busy.end());
    std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (hot.size() > max_link_tracks) hot.resize(max_link_tracks);
    std::unordered_map<int, int> link_tid;
    for (size_t i = 0; i < hot.size(); ++i) {
      const int tid = 2 * p + static_cast<int>(i);
      link_tid.emplace(hot[i].first, tid);
      AppendThreadName(
          &out, tid,
          StrFormat("link %s",
                    LinkDisplayName(cluster.topology(), hot[i].first).c_str()),
          tid);
    }
    for (const TraceSpan& span : link_spans) {
      const auto it = link_tid.find(span.track);
      if (it != link_tid.end()) AppendSpan(&out, span, it->second);
    }
  }
  out += "\n]}\n";
  return out;
}

RunMetrics CollectRunMetrics(const Cluster& cluster,
                             const std::string& label) {
  RunMetrics metrics;
  metrics.label = label;
  metrics.topology = cluster.topology().Describe();
  metrics.engine = cluster.network().event_ordered() ? "event" : "busy";
  metrics.workers = cluster.size();
  metrics.makespan_seconds = cluster.MaxSimSeconds();
  metrics.total = cluster.TotalStats();
  const Topology& topology = cluster.topology();
  for (LinkId id = 0; id < topology.num_links(); ++id) {
    const LinkUsage usage = cluster.network().link_usage(id);
    if (usage.messages == 0) continue;
    RunMetrics::Link link;
    link.id = id;
    link.name = LinkDisplayName(topology, id);
    link.busy_seconds = usage.busy_seconds;
    link.bytes = usage.bytes;
    link.messages = usage.messages;
    link.max_queue_seconds = usage.max_queue_seconds;
    link.utilization = metrics.makespan_seconds > 0.0
                           ? usage.busy_seconds / metrics.makespan_seconds
                           : 0.0;
    metrics.links.push_back(std::move(link));
  }
  std::sort(metrics.links.begin(), metrics.links.end(),
            [](const RunMetrics::Link& a, const RunMetrics::Link& b) {
              if (a.busy_seconds != b.busy_seconds) {
                return a.busy_seconds > b.busy_seconds;
              }
              return a.id < b.id;
            });
  return metrics;
}

std::string RunMetricsJson(const std::vector<RunMetrics>& runs) {
  std::string out = "{\"schema\":\"spardl-run-metrics/2\",\"runs\":[";
  for (size_t r = 0; r < runs.size(); ++r) {
    const RunMetrics& run = runs[r];
    if (r > 0) out.push_back(',');
    out += StrFormat(
        "\n{\"label\":\"%s\",\"topology\":\"%s\",\"engine\":\"%s\","
        "\"workers\":%d,\"makespan_seconds\":%s,",
        JsonEscape(run.label).c_str(), JsonEscape(run.topology).c_str(),
        JsonEscape(run.engine).c_str(), run.workers,
        Num(run.makespan_seconds).c_str());
    out += StrFormat(
        "\"comm_seconds\":%s,\"compute_seconds\":%s,"
        "\"messages_sent\":%llu,\"words_sent\":%llu,"
        "\"messages_received\":%llu,\"words_received\":%llu,",
        Num(run.total.comm_seconds).c_str(),
        Num(run.total.compute_seconds).c_str(),
        static_cast<unsigned long long>(run.total.messages_sent),
        static_cast<unsigned long long>(run.total.words_sent),
        static_cast<unsigned long long>(run.total.messages_received),
        static_cast<unsigned long long>(run.total.words_received));
    out += "\"phase_seconds\":{";
    bool first = true;
    for (size_t i = 0; i < kNumPhases; ++i) {
      if (run.total.phase_seconds[i] == 0.0) continue;
      if (!first) out.push_back(',');
      first = false;
      out += StrFormat("\"%s\":%s",
                       std::string(PhaseName(static_cast<Phase>(i))).c_str(),
                       Num(run.total.phase_seconds[i]).c_str());
    }
    out += "},\"links\":[";
    for (size_t i = 0; i < run.links.size(); ++i) {
      const RunMetrics::Link& link = run.links[i];
      if (i > 0) out.push_back(',');
      out += StrFormat(
          "\n{\"link\":%d,\"name\":\"%s\",\"busy_seconds\":%s,"
          "\"bytes\":%llu,\"messages\":%llu,\"max_queue_seconds\":%s,"
          "\"utilization\":%s}",
          link.id, JsonEscape(link.name).c_str(),
          Num(link.busy_seconds).c_str(),
          static_cast<unsigned long long>(link.bytes),
          static_cast<unsigned long long>(link.messages),
          Num(link.max_queue_seconds).c_str(),
          Num(link.utilization).c_str());
    }
    out += "]";
    if (!run.analysis_json.empty()) {
      out += ",\"analysis\":";
      out += run.analysis_json;
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string LinkUtilizationTable(const RunMetrics& metrics, size_t top_n) {
  TablePrinter table({"link", "busy (s)", "util", "bytes", "msgs",
                      "max queue (s)"});
  // Re-sort defensively: `CollectRunMetrics` emits the total order
  // (busy desc, id asc), but hand-built RunMetrics may not — equal-busy
  // links must not depend on input order.
  std::vector<RunMetrics::Link> links = metrics.links;
  std::sort(links.begin(), links.end(),
            [](const RunMetrics::Link& a, const RunMetrics::Link& b) {
              if (a.busy_seconds != b.busy_seconds) {
                return a.busy_seconds > b.busy_seconds;
              }
              return a.id < b.id;
            });
  const size_t n = std::min(top_n, links.size());
  for (size_t i = 0; i < n; ++i) {
    const RunMetrics::Link& link = links[i];
    table.AddRow({link.name, StrFormat("%.6f", link.busy_seconds),
                  StrFormat("%.1f%%", link.utilization * 100.0),
                  HumanBytes(static_cast<double>(link.bytes)),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(link.messages)),
                  StrFormat("%.6f", link.max_queue_seconds)});
  }
  return table.ToString();
}

std::string TopPhasesTable(const RunMetrics& metrics) {
  TablePrinter table({"phase", "seconds", "share"});
  // Phase buckets sum over all workers, so the honest denominator is
  // total worker-time, not the makespan.
  const double makespan =
      metrics.makespan_seconds * std::max(1, metrics.workers);
  std::vector<std::pair<double, Phase>> rows;
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (metrics.total.phase_seconds[i] == 0.0) continue;
    rows.emplace_back(metrics.total.phase_seconds[i],
                      static_cast<Phase>(i));
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (const auto& [seconds, phase] : rows) {
    table.AddRow({std::string(PhaseName(phase)),
                  StrFormat("%.6f", seconds),
                  makespan > 0.0 ? StrFormat("%.1f%%", seconds / makespan *
                                                           100.0)
                                 : "-"});
  }
  table.AddRow({"comm (total)", StrFormat("%.6f", metrics.total.comm_seconds),
                makespan > 0.0
                    ? StrFormat("%.1f%%",
                                metrics.total.comm_seconds / makespan * 100.0)
                    : "-"});
  table.AddRow(
      {"compute (total)", StrFormat("%.6f", metrics.total.compute_seconds),
       makespan > 0.0
           ? StrFormat("%.1f%%",
                       metrics.total.compute_seconds / makespan * 100.0)
           : "-"});
  return table.ToString();
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  out.flush();
  return out.good();
}

}  // namespace spardl
