#include "obs/json.h"

#include <cctype>
#include <cstdlib>
#include <utility>

#include "common/strings.h"

namespace spardl {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent JSON checker over a cursor into the document.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool CheckDocument() {
    SkipSpace();
    if (!CheckValue()) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool CheckValue() {
    if (++depth_ > 256) return false;  // bound recursion
    SkipSpace();
    if (AtEnd()) return false;
    bool ok = false;
    switch (Peek()) {
      case '{':
        ok = CheckObject();
        break;
      case '[':
        ok = CheckArray();
        break;
      case '"':
        ok = CheckString();
        break;
      case 't':
        ok = ConsumeLiteral("true");
        break;
      case 'f':
        ok = ConsumeLiteral("false");
        break;
      case 'n':
        ok = ConsumeLiteral("null");
        break;
      default:
        ok = CheckNumber();
    }
    --depth_;
    return ok;
  }

  bool CheckObject() {
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      SkipSpace();
      if (!CheckString()) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      if (!CheckValue()) return false;
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool CheckArray() {
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    for (;;) {
      if (!CheckValue()) return false;
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool CheckString() {
    if (!Consume('"')) return false;
    while (!AtEnd()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (AtEnd()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool CheckDigits() {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return false;
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    return true;
  }

  bool CheckNumber() {
    Consume('-');
    if (Consume('0')) {
      // leading zero must not be followed by more digits
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
    } else if (!CheckDigits()) {
      return false;
    }
    if (Consume('.')) {
      if (!CheckDigits()) return false;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!CheckDigits()) return false;
    }
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

/// Recursive-descent parser sharing the checker's grammar, building the
/// small DOM `spardl-analyze` consumes.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool ParseDocument(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (++depth_ > 256) return false;
    SkipSpace();
    if (AtEnd()) return false;
    bool ok = false;
    switch (Peek()) {
      case '{':
        ok = ParseObject(out);
        break;
      case '[':
        ok = ParseArray(out);
        break;
      case '"':
        out->type = JsonValue::Type::kString;
        ok = ParseString(&out->string_value);
        break;
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        ok = ConsumeLiteral("true");
        break;
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        ok = ConsumeLiteral("false");
        break;
      case 'n':
        out->type = JsonValue::Type::kNull;
        ok = ConsumeLiteral("null");
        break;
      default:
        ok = ParseNumber(out);
    }
    --depth_;
    return ok;
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object_items.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array_items.push_back(std::move(value));
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  static void AppendUtf8(std::string* out, unsigned code_point) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  bool ParseHex4(unsigned* out) {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) return false;
      const char c = text_[pos_];
      unsigned digit;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = 10u + static_cast<unsigned>(c - 'a');
      else if (c >= 'A' && c <= 'F') digit = 10u + static_cast<unsigned>(c - 'A');
      else return false;
      value = value * 16 + digit;
      ++pos_;
    }
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    out->clear();
    if (!Consume('"')) return false;
    while (!AtEnd()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code_point;
          if (!ParseHex4(&code_point)) return false;
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            unsigned low;
            if (!ConsumeLiteral("\\u") || !ParseHex4(&low) || low < 0xDC00 ||
                low > 0xDFFF) {
              return false;
            }
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            return false;  // unpaired low surrogate
          }
          AppendUtf8(out, code_point);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    Consume('-');
    if (Consume('0')) {
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
    } else {
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    out->type = JsonValue::Type::kNumber;
    // The slice is a valid JSON number — strtod accepts a superset.
    out->number_value =
        std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                    nullptr);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool IsValidJson(std::string_view text) {
  return JsonChecker(text).CheckDocument();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_items) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number_value
                                                : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string() ? value->string_value
                                                : std::move(fallback);
}

std::optional<JsonValue> JsonParse(std::string_view text) {
  JsonValue root;
  if (!JsonParser(text).ParseDocument(&root)) return std::nullopt;
  return root;
}

}  // namespace spardl
