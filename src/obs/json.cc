#include "obs/json.h"

#include <cctype>

#include "common/strings.h"

namespace spardl {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent JSON checker over a cursor into the document.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool CheckDocument() {
    SkipSpace();
    if (!CheckValue()) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool CheckValue() {
    if (++depth_ > 256) return false;  // bound recursion
    SkipSpace();
    if (AtEnd()) return false;
    bool ok = false;
    switch (Peek()) {
      case '{':
        ok = CheckObject();
        break;
      case '[':
        ok = CheckArray();
        break;
      case '"':
        ok = CheckString();
        break;
      case 't':
        ok = ConsumeLiteral("true");
        break;
      case 'f':
        ok = ConsumeLiteral("false");
        break;
      case 'n':
        ok = ConsumeLiteral("null");
        break;
      default:
        ok = CheckNumber();
    }
    --depth_;
    return ok;
  }

  bool CheckObject() {
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      SkipSpace();
      if (!CheckString()) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      if (!CheckValue()) return false;
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool CheckArray() {
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    for (;;) {
      if (!CheckValue()) return false;
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool CheckString() {
    if (!Consume('"')) return false;
    while (!AtEnd()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (AtEnd()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool CheckDigits() {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return false;
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    return true;
  }

  bool CheckNumber() {
    Consume('-');
    if (Consume('0')) {
      // leading zero must not be followed by more digits
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
    } else if (!CheckDigits()) {
      return false;
    }
    if (Consume('.')) {
      if (!CheckDigits()) return false;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!CheckDigits()) return false;
    }
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool IsValidJson(std::string_view text) {
  return JsonChecker(text).CheckDocument();
}

}  // namespace spardl
