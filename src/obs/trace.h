#ifndef SPARDL_OBS_TRACE_H_
#define SPARDL_OBS_TRACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace spardl {

/// Phase tag for simulated-time attribution. Every `Comm` carries a
/// current phase (maintained by `TraceScope`, zero-cost: one enum write);
/// `Recv` charges its wait into the matching `CommStats::phase_seconds`
/// bucket, so the breakdown survives even with tracing disabled.
///
/// The first block of tags (up to and including `kBucket`) partitions
/// `comm_seconds`; `kCompute` mirrors `compute_seconds`; `kBarrier` and
/// `kOverlapIdle` are waits charged to neither; `kLink` marks per-link
/// occupancy spans (fabric tracks, not worker time).
enum class Phase : uint8_t {
  kUntagged = 0,  // Recv outside any scope
  kSparsify,      // top-k selection / re-sparsification
  kSrs,           // Spar-Reduce-Scatter transmission steps
  kSag,           // inter-team R-SAG / B-SAG rounds
  kAllGather,     // final intra-team all-gather
  kResidual,      // residual-store update
  kCollective,    // whole-collective envelope (baseline core, allreduce)
  kBucket,        // one gradient bucket's collective (overlap trainer)
  kCompute,       // Comm::Compute (forward/backward slices)
  kBarrier,       // BarrierSyncClocks alignment wait
  kOverlapIdle,   // AdvanceClockTo stall (comm stream waiting on a bucket)
  kLink,          // per-link occupancy (fabric tracks)
  kNumPhases,
};

inline constexpr size_t kNumPhases = static_cast<size_t>(Phase::kNumPhases);

std::string_view PhaseName(Phase phase);

/// True for the tags that partition `CommStats::comm_seconds` (everything
/// a `Recv` can be charged under).
constexpr bool IsCommPhase(Phase phase) {
  return phase < Phase::kCompute;
}

/// Which virtual track of a worker a span belongs to. The nesting
/// invariant (spans nest, never partially overlap) holds per
/// (track, stream): the overlap trainer's compute slices legitimately run
/// concurrently with the communication stream.
inline constexpr uint8_t kStreamMain = 0;     // communication / algorithm
inline constexpr uint8_t kStreamCompute = 1;  // overlapped compute slices
inline constexpr uint8_t kStreamLink = 2;     // fabric link occupancy

/// One recorded interval in *simulated* time. `name` must be a string
/// literal (static storage) — recording never allocates; display names are
/// composed at export time from `name` and the small-int args `a`/`b`
/// (step index, bucket index, or peer/endpoint ranks, -1 = unused).
struct TraceSpan {
  int track = 0;  // worker rank, or LinkId for kStreamLink
  uint8_t stream = kStreamMain;
  Phase phase = Phase::kUntagged;
  const char* name = "";
  int a = -1;
  int b = -1;
  double t0 = 0.0;
  double t1 = 0.0;
  uint64_t bytes = 0;
};

/// One completed `Comm::Recv`, recorded in the same order as that
/// worker's "recv" spans on `kStreamMain` (zip the two sequences by
/// ordinal to pair a wait span with its delivery metadata). `flow` is
/// the event-engine flow key (0 on closed-form fabrics); `sent_at` is
/// the sender's simulated clock at `Send`.
struct RecvRecord {
  int src = -1;
  uint64_t flow = 0;
  double sent_at = 0.0;
  size_t words = 0;
};

/// One hop of an event-engine flow through a link's FIFO server:
/// the head enters the queue at `enter`, starts service at `start`
/// (`start - enter` is queueing), occupies the wire head for the link's
/// alpha until `head_out`, and the body takes `serialize` seconds to
/// drain behind it. Links are graph LinkIds (plain int here: topology.h
/// includes this header).
struct FlowHop {
  int link = -1;
  double enter = 0.0;
  double start = 0.0;
  double head_out = 0.0;
  double serialize = 0.0;
};

/// Full dependency record of one resolved event-engine flow: per-hop
/// service times plus the end-to-end `sent_at -> arrival` envelope
/// (arrival = last hop's head_out + the bottleneck serialize).
struct FlowRecord {
  int src = -1;
  int dst = -1;
  size_t words = 0;
  double sent_at = 0.0;
  double arrival = 0.0;
  std::vector<FlowHop> hops;
};

/// Snapshot of one worker's cumulative counters at an iteration
/// boundary (`Comm::MarkIteration`). Fields are copied out of CommStats
/// rather than embedding it (comm_stats.h includes this header).
struct IterationMark {
  double sim_now = 0.0;
  double comm_seconds = 0.0;
  double compute_seconds = 0.0;
  std::array<double, kNumPhases> phase_seconds{};
};

/// Per-cluster span storage. Off by default (`Cluster::EnableTracing`
/// creates one); every record site is gated on a null check, so the
/// disabled path costs one branch and zero allocations.
///
/// Thread safety: `RecordWorker(w, ...)` appends to worker `w`'s own
/// vector and must only be called from the thread running that worker
/// (the SPMD ownership the whole simulator is built on). `RecordLink` is
/// called from whichever thread is charging the fabric and must hold that
/// engine's mutex (the topology charge mutex or the event-engine mutex —
/// exactly one is active per network). `Clear` requires no workers
/// running.
class TraceRecorder {
 public:
  explicit TraceRecorder(int num_workers);

  int num_workers() const { return static_cast<int>(worker_spans_.size()); }

  void RecordWorker(int worker, const TraceSpan& span) {
    worker_spans_[static_cast<size_t>(worker)].push_back(span);
  }

  void RecordLink(const TraceSpan& span) { link_spans_.push_back(span); }

  const std::vector<TraceSpan>& worker_spans(int worker) const {
    return worker_spans_[static_cast<size_t>(worker)];
  }
  const std::vector<TraceSpan>& link_spans() const { return link_spans_; }

  /// Delivery metadata, same ownership rule as `RecordWorker`.
  void RecordRecv(int worker, const RecvRecord& rec) {
    recv_records_[static_cast<size_t>(worker)].push_back(rec);
  }
  const std::vector<RecvRecord>& recv_records(int worker) const {
    return recv_records_[static_cast<size_t>(worker)];
  }

  /// Flow dependency records, keyed by the engine's flow key. Called
  /// under the event-engine mutex (same rule as `RecordLink`).
  void RecordFlow(uint64_t key, FlowRecord rec);
  const FlowRecord* FindFlow(uint64_t key) const;
  const std::unordered_map<uint64_t, FlowRecord>& flow_records() const {
    return flow_records_;
  }

  /// Iteration boundaries, same ownership rule as `RecordWorker`.
  void MarkIteration(int worker, const IterationMark& mark) {
    iteration_marks_[static_cast<size_t>(worker)].push_back(mark);
  }
  const std::vector<IterationMark>& iteration_marks(int worker) const {
    return iteration_marks_[static_cast<size_t>(worker)];
  }

  size_t TotalSpans() const;

  /// Drops all recorded state (capacity retained). Call between measured
  /// phases, in lockstep with `Cluster::ResetClocksAndStats`.
  void Clear();

 private:
  std::vector<std::vector<TraceSpan>> worker_spans_;
  std::vector<TraceSpan> link_spans_;
  std::vector<std::vector<RecvRecord>> recv_records_;
  std::unordered_map<uint64_t, FlowRecord> flow_records_;
  std::vector<std::vector<IterationMark>> iteration_marks_;
};

}  // namespace spardl

#endif  // SPARDL_OBS_TRACE_H_
