#ifndef SPARDL_COLLECTIVES_SPARSE_ALLGATHER_H_
#define SPARDL_COLLECTIVES_SPARSE_ALLGATHER_H_

#include <functional>
#include <vector>

#include "simnet/comm.h"
#include "sparse/sparse_vector.h"

namespace spardl {

/// Custom wire-cost hook: words charged for shipping `part`, which belongs
/// to group position `position`. Lets TopkDSA charge a densified block as
/// `block_width` dense words when that is cheaper than 2 * nnz COO words.
using PartWireWords = std::function<size_t(const SparseVector& part,
                                           int position)>;

/// Bruck all-gather over a group (paper Fig. 3b; Bruck et al., TPDS'97).
///
/// Each group member contributes one sparse part; every member returns the
/// full list, `result[i]` being the contribution of group position i.
/// Works for *any* group size (this is why SparDL chooses it) in
/// ceil(log2 G) rounds with the bandwidth lower bound: each worker receives
/// exactly the G-1 other parts once.
std::vector<SparseVector> BruckAllGather(Comm& comm, const CommGroup& group,
                                         SparseVector mine,
                                         const PartWireWords* wire_cost =
                                             nullptr);

/// Recursive-doubling all-gather (paper Fig. 3a). Group size must be a
/// power of two; log2 G rounds, same bandwidth as Bruck.
std::vector<SparseVector> RecursiveDoublingAllGather(Comm& comm,
                                                     const CommGroup& group,
                                                     SparseVector mine);

/// Bruck all-gather of one 32-bit scalar per member (chunk-size exchange,
/// as real MPI sparse all-gathers need before posting uneven receives).
/// result[i] = value contributed by group position i.
std::vector<uint32_t> BruckAllGatherCounts(Comm& comm, const CommGroup& group,
                                           uint32_t mine);

}  // namespace spardl

#endif  // SPARDL_COLLECTIVES_SPARSE_ALLGATHER_H_
