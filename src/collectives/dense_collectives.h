#ifndef SPARDL_COLLECTIVES_DENSE_COLLECTIVES_H_
#define SPARDL_COLLECTIVES_DENSE_COLLECTIVES_H_

#include <span>

#include "simnet/comm.h"

namespace spardl {

/// Ring all-reduce over `data` (summation): the classic dense baseline.
/// 2(G-1) rounds, 2(G-1)/G * n words received per worker. Works for any
/// group size.
void RingAllReduce(Comm& comm, const CommGroup& group, std::span<float> data);

/// Rabenseifner's all-reduce (recursive-halving reduce-scatter followed by
/// recursive-doubling all-gather; Thakur et al., IJHPCA'05). This is the
/// "efficient All-Reduce" whose interaction with sparsified gradients
/// creates the SGA dilemma (paper §I). Group size must be a power of two.
/// 2 log2 G rounds, 2(G-1)/G * n words per worker.
void RabenseifnerAllReduce(Comm& comm, const CommGroup& group,
                           std::span<float> data);

/// Dense all-reduce picking Rabenseifner for power-of-two groups, ring
/// otherwise.
void DenseAllReduceAuto(Comm& comm, const CommGroup& group,
                        std::span<float> data);

}  // namespace spardl

#endif  // SPARDL_COLLECTIVES_DENSE_COLLECTIVES_H_
