#include "collectives/sparse_allgather.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/logging.h"

namespace spardl {

std::vector<SparseVector> BruckAllGather(Comm& comm, const CommGroup& group,
                                         SparseVector mine,
                                         const PartWireWords* wire_cost) {
  const int group_size = group.size();
  const int pos = group.my_pos;
  // local[j] holds the part of group position (pos + j) % G.
  std::vector<SparseVector> local;
  local.reserve(static_cast<size_t>(group_size));
  local.push_back(std::move(mine));
  for (int step = 0; (1 << step) < group_size; ++step) {
    // Keeps the ambient phase: Bruck runs under B-SAG (kSag) and under the
    // final intra-team gather (kAllGather); the span just marks the step.
    TraceScope scope(comm, comm.phase(), "bruck-step", step);
    const int distance = 1 << step;
    const int send_count =
        std::min(distance, group_size - distance);
    const int to = group.GlobalRank((pos - distance + group_size) % group_size);
    const int from = group.GlobalRank((pos + distance) % group_size);
    size_t words_override = 0;
    if (wire_cost != nullptr) {
      for (int j = 0; j < send_count; ++j) {
        words_override += (*wire_cost)(local[static_cast<size_t>(j)],
                                       (pos + j) % group_size);
      }
    }
    std::vector<SparseVector> outgoing(
        local.begin(), local.begin() + send_count);
    comm.Send(to, Payload(std::move(outgoing)), /*tag=*/0, words_override);
    std::vector<SparseVector> incoming =
        comm.RecvAs<std::vector<SparseVector>>(from);
    SPARDL_DCHECK_EQ(static_cast<int>(incoming.size()), send_count);
    for (auto& part : incoming) local.push_back(std::move(part));
  }
  SPARDL_CHECK_EQ(static_cast<int>(local.size()), group_size);
  // Undo the rotation: local[j] belongs to position (pos + j) % G.
  std::vector<SparseVector> result(static_cast<size_t>(group_size));
  for (int j = 0; j < group_size; ++j) {
    result[static_cast<size_t>((pos + j) % group_size)] =
        std::move(local[static_cast<size_t>(j)]);
  }
  return result;
}

std::vector<SparseVector> RecursiveDoublingAllGather(Comm& comm,
                                                     const CommGroup& group,
                                                     SparseVector mine) {
  const int group_size = group.size();
  SPARDL_CHECK_EQ(group_size & (group_size - 1), 0)
      << "recursive doubling requires a power-of-two group";
  const int pos = group.my_pos;
  // held covers the aligned run [base, base + run); run doubles each step.
  std::vector<SparseVector> held;
  held.reserve(static_cast<size_t>(group_size));
  held.push_back(std::move(mine));
  int run = 1;
  while (run < group_size) {
    const int peer_pos = pos ^ run;
    const int peer = group.GlobalRank(peer_pos);
    std::vector<SparseVector> outgoing = held;  // full exchange
    comm.Send(peer, Payload(std::move(outgoing)));
    std::vector<SparseVector> incoming =
        comm.RecvAs<std::vector<SparseVector>>(peer);
    SPARDL_DCHECK_EQ(incoming.size(), held.size());
    // Peer's run is the sibling half of the aligned window; splice so
    // `held` stays in position order.
    if ((pos & run) != 0) {
      // Peer's half precedes mine.
      incoming.insert(incoming.end(), std::make_move_iterator(held.begin()),
                      std::make_move_iterator(held.end()));
      held = std::move(incoming);
    } else {
      held.insert(held.end(), std::make_move_iterator(incoming.begin()),
                  std::make_move_iterator(incoming.end()));
    }
    run *= 2;
  }
  SPARDL_CHECK_EQ(static_cast<int>(held.size()), group_size);
  return held;
}

std::vector<uint32_t> BruckAllGatherCounts(Comm& comm,
                                           const CommGroup& group,
                                           uint32_t mine) {
  const int group_size = group.size();
  const int pos = group.my_pos;
  std::vector<uint32_t> local;  // local[j] = value of position (pos+j)%G
  local.reserve(static_cast<size_t>(group_size));
  local.push_back(mine);
  for (int step = 0; (1 << step) < group_size; ++step) {
    const int distance = 1 << step;
    const int send_count = std::min(distance, group_size - distance);
    const int to =
        group.GlobalRank((pos - distance + group_size) % group_size);
    const int from = group.GlobalRank((pos + distance) % group_size);
    std::vector<uint32_t> outgoing(local.begin(),
                                   local.begin() + send_count);
    comm.Send(to, Payload(std::move(outgoing)));
    std::vector<uint32_t> incoming =
        comm.RecvAs<std::vector<uint32_t>>(from);
    local.insert(local.end(), incoming.begin(), incoming.end());
  }
  std::vector<uint32_t> result(static_cast<size_t>(group_size));
  for (int j = 0; j < group_size; ++j) {
    result[static_cast<size_t>((pos + j) % group_size)] =
        local[static_cast<size_t>(j)];
  }
  return result;
}

}  // namespace spardl
