#include "collectives/dense_collectives.h"

#include <utility>
#include <vector>

#include "common/logging.h"
#include "sparse/block_partition.h"

namespace spardl {

namespace {

std::vector<float> CopyRange(std::span<const float> data, size_t lo,
                             size_t hi) {
  return std::vector<float>(data.begin() + static_cast<ptrdiff_t>(lo),
                            data.begin() + static_cast<ptrdiff_t>(hi));
}

}  // namespace

void RingAllReduce(Comm& comm, const CommGroup& group,
                   std::span<float> data) {
  const int group_size = group.size();
  if (group_size == 1) return;
  const int pos = group.my_pos;
  const int next = group.GlobalRank((pos + 1) % group_size);
  const int prev = group.GlobalRank((pos - 1 + group_size) % group_size);
  const BlockPartition blocks(data.size(), group_size);

  // Phase 1: reduce-scatter. After step s, this worker holds the running
  // sum of chunk (pos - s - 1 + G) % G.
  for (int s = 0; s < group_size - 1; ++s) {
    const int send_chunk = (pos - s + 2 * group_size) % group_size;
    const int recv_chunk = (pos - s - 1 + 2 * group_size) % group_size;
    comm.Send(next, Payload(CopyRange(data, blocks.BlockStart(send_chunk),
                                      blocks.BlockEnd(send_chunk))));
    std::vector<float> incoming = comm.RecvAs<std::vector<float>>(prev);
    const size_t lo = blocks.BlockStart(recv_chunk);
    SPARDL_DCHECK_EQ(incoming.size(), blocks.BlockSize(recv_chunk));
    for (size_t i = 0; i < incoming.size(); ++i) data[lo + i] += incoming[i];
  }

  // Phase 2: all-gather of the fully reduced chunks.
  for (int s = 0; s < group_size - 1; ++s) {
    const int send_chunk = (pos - s + 1 + 2 * group_size) % group_size;
    const int recv_chunk = (pos - s + 2 * group_size) % group_size;
    comm.Send(next, Payload(CopyRange(data, blocks.BlockStart(send_chunk),
                                      blocks.BlockEnd(send_chunk))));
    std::vector<float> incoming = comm.RecvAs<std::vector<float>>(prev);
    const size_t lo = blocks.BlockStart(recv_chunk);
    SPARDL_DCHECK_EQ(incoming.size(), blocks.BlockSize(recv_chunk));
    for (size_t i = 0; i < incoming.size(); ++i) data[lo + i] = incoming[i];
  }
}

void RabenseifnerAllReduce(Comm& comm, const CommGroup& group,
                           std::span<float> data) {
  const int group_size = group.size();
  SPARDL_CHECK_EQ(group_size & (group_size - 1), 0)
      << "Rabenseifner all-reduce requires a power-of-two group";
  if (group_size == 1) return;
  const int pos = group.my_pos;

  // Recursive halving reduce-scatter: the owned range [lo, hi) halves each
  // step; the discarded half is sent to the peer, the peer's matching half
  // is accumulated.
  size_t lo = 0;
  size_t hi = data.size();
  std::vector<std::pair<size_t, size_t>> range_history;
  for (int distance = group_size / 2; distance >= 1; distance /= 2) {
    range_history.emplace_back(lo, hi);
    const int peer = group.GlobalRank(pos ^ distance);
    const size_t mid = lo + (hi - lo) / 2;
    const bool keep_upper = (pos & distance) != 0;
    const size_t send_lo = keep_upper ? lo : mid;
    const size_t send_hi = keep_upper ? mid : hi;
    comm.Send(peer, Payload(CopyRange(data, send_lo, send_hi)));
    std::vector<float> incoming = comm.RecvAs<std::vector<float>>(peer);
    const size_t keep_lo = keep_upper ? mid : lo;
    SPARDL_DCHECK_EQ(incoming.size(),
                     (keep_upper ? hi - mid : mid - lo));
    for (size_t i = 0; i < incoming.size(); ++i) {
      data[keep_lo + i] += incoming[i];
    }
    lo = keep_lo;
    hi = keep_upper ? hi : mid;
  }

  // Recursive doubling all-gather: walk the halving history backwards,
  // exchanging the owned range with the same peers in reverse order.
  for (int step = static_cast<int>(range_history.size()) - 1; step >= 0;
       --step) {
    const int distance = (group_size / 2) >> step;
    const int peer = group.GlobalRank(pos ^ distance);
    comm.Send(peer, Payload(CopyRange(data, lo, hi)));
    std::vector<float> incoming = comm.RecvAs<std::vector<float>>(peer);
    const auto [outer_lo, outer_hi] = range_history[static_cast<size_t>(step)];
    const size_t mid = outer_lo + (outer_hi - outer_lo) / 2;
    const size_t fill_lo = (lo == outer_lo) ? mid : outer_lo;
    SPARDL_DCHECK_EQ(incoming.size(),
                     (lo == outer_lo ? outer_hi - mid : mid - outer_lo));
    for (size_t i = 0; i < incoming.size(); ++i) {
      data[fill_lo + i] = incoming[i];
    }
    lo = outer_lo;
    hi = outer_hi;
  }
}

void DenseAllReduceAuto(Comm& comm, const CommGroup& group,
                        std::span<float> data) {
  const int group_size = group.size();
  if ((group_size & (group_size - 1)) == 0) {
    RabenseifnerAllReduce(comm, group, data);
  } else {
    RingAllReduce(comm, group, data);
  }
}

}  // namespace spardl
