#include "dl/layers.h"

#include <algorithm>
#include <cmath>

namespace spardl {

namespace {

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Xavier/Glorot uniform in [-limit, limit].
void XavierInit(std::span<float> w, size_t fan_in, size_t fan_out,
                Rng* rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : w) {
    v = (2.0f * rng->NextFloat() - 1.0f) * limit;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// LinearLayer

void LinearLayer::Bind(std::span<float> params, std::span<float> grads) {
  SPARDL_CHECK_EQ(params.size(), num_params());
  params_ = params;
  grads_ = grads;
}

void LinearLayer::InitParams(Rng* rng) {
  XavierInit(params_.subspan(0, in_ * out_), in_, out_, rng);
  for (size_t j = 0; j < out_; ++j) params_[in_ * out_ + j] = 0.0f;
}

Matrix LinearLayer::Forward(const Matrix& x) {
  SPARDL_CHECK_EQ(x.cols(), in_);
  cached_input_ = x;
  Matrix y(x.rows(), out_);
  for (size_t r = 0; r < x.rows(); ++r) {
    const std::span<const float> x_row = x.Row(r);
    const std::span<float> y_row = y.Row(r);
    for (size_t j = 0; j < out_; ++j) y_row[j] = params_[in_ * out_ + j];
    for (size_t i = 0; i < in_; ++i) {
      const float x_ri = x_row[i];
      if (x_ri == 0.0f) continue;
      const std::span<const float> w_row = params_.subspan(i * out_, out_);
      for (size_t j = 0; j < out_; ++j) y_row[j] += x_ri * w_row[j];
    }
  }
  return y;
}

Matrix LinearLayer::Backward(const Matrix& grad_out) {
  SPARDL_CHECK_EQ(grad_out.cols(), out_);
  const Matrix& x = cached_input_;
  // dW += x^T g ; db += sum_rows(g)
  for (size_t r = 0; r < x.rows(); ++r) {
    const std::span<const float> x_row = x.Row(r);
    const std::span<const float> g_row = grad_out.Row(r);
    for (size_t i = 0; i < in_; ++i) {
      const float x_ri = x_row[i];
      if (x_ri == 0.0f) continue;
      const std::span<float> gw_row = grads_.subspan(i * out_, out_);
      for (size_t j = 0; j < out_; ++j) gw_row[j] += x_ri * g_row[j];
    }
    const std::span<float> gb = grads_.subspan(in_ * out_, out_);
    for (size_t j = 0; j < out_; ++j) gb[j] += g_row[j];
  }
  // dx = g W^T
  Matrix grad_in(grad_out.rows(), in_);
  for (size_t r = 0; r < grad_out.rows(); ++r) {
    const std::span<const float> g_row = grad_out.Row(r);
    const std::span<float> gi_row = grad_in.Row(r);
    for (size_t i = 0; i < in_; ++i) {
      const std::span<const float> w_row = params_.subspan(i * out_, out_);
      float acc = 0.0f;
      for (size_t j = 0; j < out_; ++j) acc += g_row[j] * w_row[j];
      gi_row[i] = acc;
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// ReluLayer / TanhLayer

Matrix ReluLayer::Forward(const Matrix& x) {
  cached_input_ = x;
  Matrix y = x;
  for (float& v : y.data()) {
    if (v < 0.0f) v = 0.0f;
  }
  return y;
}

Matrix ReluLayer::Backward(const Matrix& grad_out) {
  Matrix grad_in = grad_out;
  for (size_t i = 0; i < grad_in.data().size(); ++i) {
    if (cached_input_.data()[i] <= 0.0f) grad_in.data()[i] = 0.0f;
  }
  return grad_in;
}

Matrix TanhLayer::Forward(const Matrix& x) {
  Matrix y = x;
  for (float& v : y.data()) v = std::tanh(v);
  cached_output_ = y;
  return y;
}

Matrix TanhLayer::Backward(const Matrix& grad_out) {
  Matrix grad_in = grad_out;
  for (size_t i = 0; i < grad_in.data().size(); ++i) {
    const float y = cached_output_.data()[i];
    grad_in.data()[i] *= 1.0f - y * y;
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// EmbeddingLayer

void EmbeddingLayer::Bind(std::span<float> params, std::span<float> grads) {
  SPARDL_CHECK_EQ(params.size(), num_params());
  params_ = params;
  grads_ = grads;
}

void EmbeddingLayer::InitParams(Rng* rng) {
  for (float& v : params_) {
    v = static_cast<float>(rng->NextGaussian()) * 0.1f;
  }
}

Matrix EmbeddingLayer::Forward(const Matrix& x) {
  cached_input_ = x;
  const size_t seq_len = x.cols();
  Matrix y(x.rows(), seq_len * dim_);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t t = 0; t < seq_len; ++t) {
      const auto token = static_cast<size_t>(x.At(r, t));
      SPARDL_DCHECK_LT(token, vocab_);
      const std::span<const float> e = params_.subspan(token * dim_, dim_);
      std::span<float> out = y.Row(r).subspan(t * dim_, dim_);
      std::copy(e.begin(), e.end(), out.begin());
    }
  }
  return y;
}

Matrix EmbeddingLayer::Backward(const Matrix& grad_out) {
  const Matrix& x = cached_input_;
  const size_t seq_len = x.cols();
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t t = 0; t < seq_len; ++t) {
      const auto token = static_cast<size_t>(x.At(r, t));
      std::span<float> ge = grads_.subspan(token * dim_, dim_);
      const std::span<const float> g = grad_out.Row(r).subspan(t * dim_, dim_);
      for (size_t j = 0; j < dim_; ++j) ge[j] += g[j];
    }
  }
  // Token ids carry no gradient.
  return Matrix(x.rows(), x.cols());
}

// ---------------------------------------------------------------------------
// LstmLayer

void LstmLayer::Bind(std::span<float> params, std::span<float> grads) {
  SPARDL_CHECK_EQ(params.size(), num_params());
  params_ = params;
  grads_ = grads;
}

void LstmLayer::InitParams(Rng* rng) {
  const size_t g4 = 4 * hidden_;
  XavierInit(params_.subspan(0, input_dim_ * g4), input_dim_, g4, rng);
  XavierInit(params_.subspan(input_dim_ * g4, hidden_ * g4), hidden_, g4,
             rng);
  std::span<float> bias =
      params_.subspan((input_dim_ + hidden_) * g4, g4);
  // Forget-gate bias of 1: the standard trick for stable training.
  for (size_t j = 0; j < g4; ++j) {
    bias[j] = (j >= hidden_ && j < 2 * hidden_) ? 1.0f : 0.0f;
  }
}

Matrix LstmLayer::Forward(const Matrix& x) {
  SPARDL_CHECK_EQ(x.cols(), seq_len_ * input_dim_);
  const size_t batch = x.rows();
  const size_t g4 = 4 * hidden_;
  const std::span<const float> w_x = params_.subspan(0, input_dim_ * g4);
  const std::span<const float> w_h =
      params_.subspan(input_dim_ * g4, hidden_ * g4);
  const std::span<const float> bias =
      params_.subspan((input_dim_ + hidden_) * g4, g4);

  steps_.assign(seq_len_, StepCache{});
  Matrix h(batch, hidden_);
  Matrix c(batch, hidden_);
  for (size_t t = 0; t < seq_len_; ++t) {
    StepCache& step = steps_[t];
    step.h_prev = h;
    step.c_prev = c;
    step.x = Matrix(batch, input_dim_);
    for (size_t r = 0; r < batch; ++r) {
      const std::span<const float> xt =
          x.Row(r).subspan(t * input_dim_, input_dim_);
      std::copy(xt.begin(), xt.end(), step.x.Row(r).begin());
    }
    // Pre-activations: z = x W_x + h_prev W_h + b.
    Matrix z(batch, g4);
    for (size_t r = 0; r < batch; ++r) {
      std::span<float> z_row = z.Row(r);
      for (size_t j = 0; j < g4; ++j) z_row[j] = bias[j];
      const std::span<const float> x_row = step.x.Row(r);
      for (size_t i = 0; i < input_dim_; ++i) {
        const float v = x_row[i];
        if (v == 0.0f) continue;
        const std::span<const float> w_row = w_x.subspan(i * g4, g4);
        for (size_t j = 0; j < g4; ++j) z_row[j] += v * w_row[j];
      }
      const std::span<const float> h_row = step.h_prev.Row(r);
      for (size_t i = 0; i < hidden_; ++i) {
        const float v = h_row[i];
        if (v == 0.0f) continue;
        const std::span<const float> w_row = w_h.subspan(i * g4, g4);
        for (size_t j = 0; j < g4; ++j) z_row[j] += v * w_row[j];
      }
    }
    // Activations and state update.
    step.gates = Matrix(batch, g4);
    step.c = Matrix(batch, hidden_);
    for (size_t r = 0; r < batch; ++r) {
      const std::span<const float> z_row = z.Row(r);
      std::span<float> gate_row = step.gates.Row(r);
      for (size_t j = 0; j < hidden_; ++j) {
        const float i_g = Sigmoid(z_row[j]);
        const float f_g = Sigmoid(z_row[hidden_ + j]);
        const float g_g = std::tanh(z_row[2 * hidden_ + j]);
        const float o_g = Sigmoid(z_row[3 * hidden_ + j]);
        gate_row[j] = i_g;
        gate_row[hidden_ + j] = f_g;
        gate_row[2 * hidden_ + j] = g_g;
        gate_row[3 * hidden_ + j] = o_g;
        const float c_new = f_g * step.c_prev.At(r, j) + i_g * g_g;
        step.c.At(r, j) = c_new;
        h.At(r, j) = o_g * std::tanh(c_new);
      }
    }
    c = step.c;
  }
  return h;
}

Matrix LstmLayer::Backward(const Matrix& grad_out) {
  const size_t batch = grad_out.rows();
  const size_t g4 = 4 * hidden_;
  const std::span<const float> w_x = params_.subspan(0, input_dim_ * g4);
  const std::span<const float> w_h =
      params_.subspan(input_dim_ * g4, hidden_ * g4);
  std::span<float> gw_x = grads_.subspan(0, input_dim_ * g4);
  std::span<float> gw_h = grads_.subspan(input_dim_ * g4, hidden_ * g4);
  std::span<float> gbias = grads_.subspan((input_dim_ + hidden_) * g4, g4);

  Matrix grad_in(batch, seq_len_ * input_dim_);
  Matrix dh = grad_out;            // d(loss)/d(h_t)
  Matrix dc(batch, hidden_);       // d(loss)/d(c_t)
  for (size_t t = seq_len_; t-- > 0;) {
    const StepCache& step = steps_[t];
    Matrix dz(batch, g4);
    for (size_t r = 0; r < batch; ++r) {
      const std::span<const float> gate_row = step.gates.Row(r);
      std::span<float> dz_row = dz.Row(r);
      for (size_t j = 0; j < hidden_; ++j) {
        const float i_g = gate_row[j];
        const float f_g = gate_row[hidden_ + j];
        const float g_g = gate_row[2 * hidden_ + j];
        const float o_g = gate_row[3 * hidden_ + j];
        const float c_val = step.c.At(r, j);
        const float tanh_c = std::tanh(c_val);
        const float dh_rj = dh.At(r, j);
        float dc_rj = dc.At(r, j) + dh_rj * o_g * (1.0f - tanh_c * tanh_c);
        // Gate pre-activation gradients.
        dz_row[j] = dc_rj * g_g * i_g * (1.0f - i_g);
        dz_row[hidden_ + j] =
            dc_rj * step.c_prev.At(r, j) * f_g * (1.0f - f_g);
        dz_row[2 * hidden_ + j] = dc_rj * i_g * (1.0f - g_g * g_g);
        dz_row[3 * hidden_ + j] = dh_rj * tanh_c * o_g * (1.0f - o_g);
        // Carry cell gradient to t-1.
        dc.At(r, j) = dc_rj * f_g;
      }
    }
    // Parameter grads: gW_x += x^T dz ; gW_h += h_prev^T dz ; gb += sum(dz).
    for (size_t r = 0; r < batch; ++r) {
      const std::span<const float> dz_row = dz.Row(r);
      const std::span<const float> x_row = step.x.Row(r);
      for (size_t i = 0; i < input_dim_; ++i) {
        const float v = x_row[i];
        if (v == 0.0f) continue;
        std::span<float> g_row = gw_x.subspan(i * g4, g4);
        for (size_t j = 0; j < g4; ++j) g_row[j] += v * dz_row[j];
      }
      const std::span<const float> h_row = step.h_prev.Row(r);
      for (size_t i = 0; i < hidden_; ++i) {
        const float v = h_row[i];
        if (v == 0.0f) continue;
        std::span<float> g_row = gw_h.subspan(i * g4, g4);
        for (size_t j = 0; j < g4; ++j) g_row[j] += v * dz_row[j];
      }
      for (size_t j = 0; j < g4; ++j) gbias[j] += dz_row[j];
    }
    // Input grads and recurrent h gradient.
    Matrix dh_prev(batch, hidden_);
    for (size_t r = 0; r < batch; ++r) {
      const std::span<const float> dz_row = dz.Row(r);
      std::span<float> gi =
          grad_in.Row(r).subspan(t * input_dim_, input_dim_);
      for (size_t i = 0; i < input_dim_; ++i) {
        const std::span<const float> w_row = w_x.subspan(i * g4, g4);
        float acc = 0.0f;
        for (size_t j = 0; j < g4; ++j) acc += dz_row[j] * w_row[j];
        gi[i] = acc;
      }
      std::span<float> dh_row = dh_prev.Row(r);
      for (size_t i = 0; i < hidden_; ++i) {
        const std::span<const float> w_row = w_h.subspan(i * g4, g4);
        float acc = 0.0f;
        for (size_t j = 0; j < g4; ++j) acc += dz_row[j] * w_row[j];
        dh_row[i] = acc;
      }
    }
    dh = dh_prev;
  }
  return grad_in;
}

}  // namespace spardl
