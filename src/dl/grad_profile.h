#ifndef SPARDL_DL_GRAD_PROFILE_H_
#define SPARDL_DL_GRAD_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/sparse_vector.h"

namespace spardl {

/// One of the paper's seven deep-learning cases (Table II): parameter count
/// and a modelled per-iteration forward+backward time standing in for the
/// GPU compute that cannot be reproduced offline. The compute constants
/// are chosen to match the computation-cost bars of Fig. 8/10 in order of
/// magnitude; only their *stability across methods* matters for the
/// figures' shapes.
struct ModelProfile {
  std::string case_name;   // "Case 2"
  std::string model;       // "VGG-19"
  std::string dataset;     // "CIFAR-100"
  size_t num_params = 0;   // n
  double compute_seconds = 0.0;
};

/// All seven cases in Table II order.
const std::vector<ModelProfile>& PaperModelProfiles();

/// Looks up a profile by model name ("VGG-19", "BERT", ...). Aborts if
/// unknown.
const ModelProfile& ProfileByModel(const std::string& model);

/// Deterministic generator of per-worker *candidate* sparse gradients for
/// paper-scale models: the top entries a worker's dense gradient would
/// yield, without materialising the O(n) dense vector.
///
/// Structure mimics what top-k sparsification sees in real training:
///  * indices cluster into `num_clusters` hot windows (layers/embedding
///    rows with large gradients) shared across workers -> partial support
///    overlap, Zipf-skewed index density;
///  * the hot windows drift slowly over iterations (`drift_period`), the
///    property Ok-Topk's periodic rebalancing and B-SAG's h controller
///    both exploit (paper Fig. 7);
///  * magnitudes are heavy-tailed AND correlated across workers
///    (`shared_magnitude` is the shared variance fraction): workers'
///    largest coordinates largely coincide, as in real data-parallel
///    training — this is what makes inter-team unions shrink and B-SAG's
///    bandwidth grow with d (Fig. 13/14).
class ProfileGradientGenerator {
 public:
  /// `n` — gradient length; `overlap` in (0, 1] — larger means worker
  /// supports overlap more (windows shrink).
  ProfileGradientGenerator(size_t n, uint64_t seed, int num_clusters = 64,
                           int drift_period = 50, double overlap = 0.15,
                           double shared_magnitude = 0.75);

  /// About `count` entries (slightly fewer after in-window dedup), sorted.
  SparseVector Generate(int worker, int64_t iteration, size_t count) const;

  size_t n() const { return n_; }

  /// Heterogeneous-compute mode (the §VI straggler extension on the
  /// *compute* side): scales `worker`'s forward+backward time by
  /// `factor` (>= 1 models a slower accelerator; 1 is the homogeneous
  /// default). Set before running workers; CHECK-fails on factor <= 0
  /// or a negative worker.
  void SetComputeMultiplier(int worker, double factor);

  /// `base_seconds` scaled by `worker`'s multiplier — what a bench
  /// should pass to `Comm::Compute` for that worker's iteration.
  double ComputeSeconds(int worker, double base_seconds) const;

  /// True once `SetComputeMultiplier` has been called (lets harnesses
  /// charge compute only when heterogeneity was asked for).
  bool has_compute_skew() const { return !multipliers_.empty(); }

 private:
  size_t n_;
  uint64_t seed_;
  int num_clusters_;
  int drift_period_;
  double overlap_;
  double shared_magnitude_;
  /// Per-worker compute multipliers; empty = homogeneous (all 1.0).
  /// Sized on first `SetComputeMultiplier` (missing entries are 1.0).
  std::vector<double> multipliers_;
};

}  // namespace spardl

#endif  // SPARDL_DL_GRAD_PROFILE_H_
