#ifndef SPARDL_DL_MODEL_H_
#define SPARDL_DL_MODEL_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "dl/layers.h"

namespace spardl {

/// One parameter-owning layer's slice of the model's flat buffers: the
/// unit the bucketed gradient-sync modes schedule (see `GradSyncMode`).
/// Zero-parameter layers (activations) are skipped — they own no gradient
/// to synchronise. `layer` is the index into the model's full layer
/// stack, so schedulers can recover forward/backward order.
struct ParamSpan {
  size_t layer = 0;
  size_t offset = 0;
  size_t count = 0;
  std::string_view name;
};

/// A sequential model whose parameters and gradients live in single flat
/// float buffers — the layout the sparse All-Reduce methods synchronise.
///
/// ```
/// Model model;
/// model.Add(std::make_unique<LinearLayer>(64, 128));
/// model.Add(std::make_unique<ReluLayer>());
/// model.Add(std::make_unique<LinearLayer>(128, 10));
/// model.Finalize(/*seed=*/7);           // same seed on every replica
/// ```
class Model {
 public:
  Model() = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  void Add(std::unique_ptr<Layer> layer);

  /// Allocates the flat buffers, binds layers, and initialises parameters
  /// deterministically from `seed` (same seed => identical replicas).
  void Finalize(uint64_t seed);

  size_t num_params() const { return params_.size(); }
  std::span<float> params() { return params_; }
  std::span<const float> params() const { return params_; }
  std::span<float> grads() { return grads_; }

  /// Per-parameter-layer slices of the flat buffers, in forward (layer)
  /// order with strictly increasing, contiguous offsets. Only valid after
  /// `Finalize`.
  const std::vector<ParamSpan>& param_spans() const {
    SPARDL_CHECK(finalized_);
    return param_spans_;
  }

  void ZeroGrads() { std::fill(grads_.begin(), grads_.end(), 0.0f); }

  /// Forward through all layers.
  Matrix Forward(const Matrix& input);

  /// Backward through all layers (input: d(loss)/d(output)); accumulates
  /// into grads().
  void Backward(const Matrix& grad_out);

  /// Simple checksum of parameters — replicas must agree (tested).
  double ParamChecksum() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<float> params_;
  std::vector<float> grads_;
  std::vector<ParamSpan> param_spans_;
  bool finalized_ = false;
};

}  // namespace spardl

#endif  // SPARDL_DL_MODEL_H_
