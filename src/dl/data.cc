#include "dl/data.h"

#include <cmath>

#include "common/random.h"

namespace spardl {

namespace {

// Mixes worker/batch into a unique stream seed.
uint64_t BatchSeed(uint64_t base, int worker, int64_t batch_index) {
  uint64_t h = base;
  h ^= static_cast<uint64_t>(worker) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<uint64_t>(batch_index) * 0xbf58476d1ce4e5b9ULL;
  return h;
}

class SyntheticClassification final : public Dataset {
 public:
  SyntheticClassification(size_t input_dim, size_t num_classes, float noise,
                          uint64_t seed)
      : input_dim_(input_dim),
        num_classes_(num_classes),
        noise_(noise),
        seed_(seed),
        prototypes_(num_classes, input_dim) {
    Rng rng(seed ^ 0xabcdefULL);
    for (float& v : prototypes_.data()) {
      v = static_cast<float>(rng.NextGaussian());
    }
  }

  Batch Sample(uint64_t stream_seed, size_t batch_size) const {
    Rng rng(stream_seed);
    Batch batch;
    batch.inputs = Matrix(batch_size, input_dim_);
    batch.labels.resize(batch_size);
    for (size_t r = 0; r < batch_size; ++r) {
      const auto label = static_cast<int>(rng.NextBounded(num_classes_));
      batch.labels[r] = label;
      const std::span<const float> proto =
          prototypes_.Row(static_cast<size_t>(label));
      std::span<float> x = batch.inputs.Row(r);
      for (size_t i = 0; i < input_dim_; ++i) {
        x[i] = proto[i] +
               noise_ * static_cast<float>(rng.NextGaussian());
      }
    }
    return batch;
  }

  Batch TrainBatch(int worker, int64_t batch_index,
                   size_t batch_size) const override {
    return Sample(BatchSeed(seed_, worker, batch_index), batch_size);
  }
  Batch TestBatch(size_t batch_size) const override {
    return Sample(seed_ ^ 0x7e57ULL, batch_size);
  }
  TaskMetric metric() const override { return TaskMetric::kAccuracy; }
  bool is_classification() const override { return true; }

 private:
  size_t input_dim_;
  size_t num_classes_;
  float noise_;
  uint64_t seed_;
  Matrix prototypes_;
};

class SyntheticRegression final : public Dataset {
 public:
  SyntheticRegression(size_t input_dim, float noise, uint64_t seed)
      : input_dim_(input_dim),
        hidden_(16),
        noise_(noise),
        seed_(seed),
        w1_(input_dim, hidden_),
        w2_(hidden_, 1) {
    Rng rng(seed ^ 0x1234fULL);
    for (float& v : w1_.data()) {
      v = static_cast<float>(rng.NextGaussian()) /
          std::sqrt(static_cast<float>(input_dim_));
    }
    for (float& v : w2_.data()) {
      v = static_cast<float>(rng.NextGaussian()) /
          std::sqrt(static_cast<float>(hidden_));
    }
  }

  Batch Sample(uint64_t stream_seed, size_t batch_size) const {
    Rng rng(stream_seed);
    Batch batch;
    batch.inputs = Matrix(batch_size, input_dim_);
    batch.targets = Matrix(batch_size, 1);
    for (size_t r = 0; r < batch_size; ++r) {
      std::span<float> x = batch.inputs.Row(r);
      for (size_t i = 0; i < input_dim_; ++i) {
        x[i] = static_cast<float>(rng.NextGaussian());
      }
      // Teacher: y = tanh(x W1) W2 + noise.
      float y = 0.0f;
      for (size_t h = 0; h < hidden_; ++h) {
        float pre = 0.0f;
        for (size_t i = 0; i < input_dim_; ++i) pre += x[i] * w1_.At(i, h);
        y += std::tanh(pre) * w2_.At(h, 0);
      }
      batch.targets.At(r, 0) =
          y + noise_ * static_cast<float>(rng.NextGaussian());
    }
    return batch;
  }

  Batch TrainBatch(int worker, int64_t batch_index,
                   size_t batch_size) const override {
    return Sample(BatchSeed(seed_, worker, batch_index), batch_size);
  }
  Batch TestBatch(size_t batch_size) const override {
    return Sample(seed_ ^ 0x7e57ULL, batch_size);
  }
  TaskMetric metric() const override { return TaskMetric::kLoss; }
  bool is_classification() const override { return false; }

 private:
  size_t input_dim_;
  size_t hidden_;
  float noise_;
  uint64_t seed_;
  Matrix w1_;
  Matrix w2_;
};

class SyntheticSequenceClassification final : public Dataset {
 public:
  SyntheticSequenceClassification(size_t vocab, size_t seq_len,
                                  size_t num_classes, uint64_t seed)
      : vocab_(vocab),
        seq_len_(seq_len),
        num_classes_(num_classes),
        seed_(seed) {}

  Batch Sample(uint64_t stream_seed, size_t batch_size) const {
    Rng rng(stream_seed);
    Batch batch;
    batch.inputs = Matrix(batch_size, seq_len_);
    batch.labels.resize(batch_size);
    for (size_t r = 0; r < batch_size; ++r) {
      const auto label = static_cast<int>(rng.NextBounded(num_classes_));
      batch.labels[r] = label;
      // Class c prefers tokens congruent to c modulo num_classes.
      for (size_t t = 0; t < seq_len_; ++t) {
        uint64_t token;
        if (rng.NextDouble() < 0.6) {
          const uint64_t step = vocab_ / num_classes_;
          token = static_cast<uint64_t>(label) +
                  num_classes_ * rng.NextBounded(step);
        } else {
          token = rng.NextBounded(vocab_);
        }
        batch.inputs.At(r, t) = static_cast<float>(token);
      }
    }
    return batch;
  }

  Batch TrainBatch(int worker, int64_t batch_index,
                   size_t batch_size) const override {
    return Sample(BatchSeed(seed_, worker, batch_index), batch_size);
  }
  Batch TestBatch(size_t batch_size) const override {
    return Sample(seed_ ^ 0x7e57ULL, batch_size);
  }
  TaskMetric metric() const override { return TaskMetric::kAccuracy; }
  bool is_classification() const override { return true; }

 private:
  size_t vocab_;
  size_t seq_len_;
  size_t num_classes_;
  uint64_t seed_;
};

class SyntheticLanguageModel final : public Dataset {
 public:
  SyntheticLanguageModel(size_t vocab, size_t seq_len, uint64_t seed)
      : vocab_(vocab), seq_len_(seq_len), seed_(seed) {}

  Batch Sample(uint64_t stream_seed, size_t batch_size) const {
    Rng rng(stream_seed);
    Batch batch;
    batch.inputs = Matrix(batch_size, seq_len_);
    batch.labels.resize(batch_size);
    for (size_t r = 0; r < batch_size; ++r) {
      uint64_t token = rng.NextBounded(vocab_);
      for (size_t t = 0; t < seq_len_; ++t) {
        batch.inputs.At(r, t) = static_cast<float>(token);
        token = NextToken(token, &rng);
      }
      batch.labels[r] = static_cast<int>(token);
    }
    return batch;
  }

  Batch TrainBatch(int worker, int64_t batch_index,
                   size_t batch_size) const override {
    return Sample(BatchSeed(seed_, worker, batch_index), batch_size);
  }
  Batch TestBatch(size_t batch_size) const override {
    return Sample(seed_ ^ 0x7e57ULL, batch_size);
  }
  TaskMetric metric() const override { return TaskMetric::kLoss; }
  bool is_classification() const override { return true; }

 private:
  uint64_t NextToken(uint64_t token, Rng* rng) const {
    // A mostly-deterministic chain an LSTM can learn, with 30% noise so
    // the loss floor stays positive (as with natural language).
    if (rng->NextDouble() < 0.7) {
      return (token * 7 + 3) % vocab_;
    }
    return rng->NextBounded(vocab_);
  }

  size_t vocab_;
  size_t seq_len_;
  uint64_t seed_;
};

}  // namespace

std::unique_ptr<Dataset> MakeSyntheticClassification(size_t input_dim,
                                                     size_t num_classes,
                                                     float noise,
                                                     uint64_t seed) {
  return std::make_unique<SyntheticClassification>(input_dim, num_classes,
                                                   noise, seed);
}

std::unique_ptr<Dataset> MakeSyntheticRegression(size_t input_dim,
                                                 float noise,
                                                 uint64_t seed) {
  return std::make_unique<SyntheticRegression>(input_dim, noise, seed);
}

std::unique_ptr<Dataset> MakeSyntheticSequenceClassification(
    size_t vocab, size_t seq_len, size_t num_classes, uint64_t seed) {
  return std::make_unique<SyntheticSequenceClassification>(
      vocab, seq_len, num_classes, seed);
}

std::unique_ptr<Dataset> MakeSyntheticLanguageModel(size_t vocab,
                                                    size_t seq_len,
                                                    uint64_t seed) {
  return std::make_unique<SyntheticLanguageModel>(vocab, seq_len, seed);
}

}  // namespace spardl
