#ifndef SPARDL_DL_LOSS_H_
#define SPARDL_DL_LOSS_H_

#include <vector>

#include "dl/matrix.h"

namespace spardl {

/// A loss evaluation: mean loss over the batch plus d(loss)/d(logits),
/// already divided by the batch size.
struct LossResult {
  double loss = 0.0;
  Matrix grad;
};

/// Mean softmax cross-entropy against integer labels.
LossResult SoftmaxCrossEntropy(const Matrix& logits,
                               const std::vector<int>& labels);

/// Fraction of rows whose argmax matches the label.
double Accuracy(const Matrix& logits, const std::vector<int>& labels);

/// Mean squared error against dense targets of the same shape.
LossResult MeanSquaredError(const Matrix& predictions,
                            const Matrix& targets);

}  // namespace spardl

#endif  // SPARDL_DL_LOSS_H_
