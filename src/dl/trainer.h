#ifndef SPARDL_DL_TRAINER_H_
#define SPARDL_DL_TRAINER_H_

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/sparse_allreduce.h"
#include "dl/data.h"
#include "dl/model.h"
#include "dl/sgd.h"
#include "simnet/cluster.h"

namespace spardl {

/// How the trainer overlaps gradient synchronisation with backprop on the
/// simulated clock. Every mode computes bit-identical parameters — the
/// modes only reschedule *when* each layer's gradients travel, never what
/// is averaged (the synchronous-SGD invariant holds throughout).
enum class GradSyncMode {
  /// Today's behaviour, bit-for-bit: charge the whole iteration's compute,
  /// then run one whole-model sparse allreduce.
  kStepSynchronous,
  /// One gradient bucket per parameter layer, posted on the communication
  /// stream at the simulated instant its layer's backward slice finishes
  /// (reverse layer order — the bucketing order backprop produces).
  kBucketed,
  /// Like `kBucketed`, but bucket launches are reordered so front layers —
  /// the ones the next iteration's forward needs first — complete
  /// earliest (Parallax/EmbRace-style priority scheduling).
  kBucketedPriority,
};

std::string_view GradSyncModeName(GradSyncMode mode);

/// Distributed S-SGD training configuration.
struct TrainerConfig {
  size_t batch_size = 32;
  int iterations_per_epoch = 20;
  int epochs = 8;
  SgdConfig sgd;
  /// Simulated forward+backward seconds charged per iteration (the paper's
  /// "computation cost" bar; communication time comes from the simnet).
  double compute_seconds_per_iteration = 0.0;
  /// Seed for model initialisation — identical on all replicas.
  uint64_t model_seed = 7;
  size_t test_batch_size = 256;
  /// Gradient synchronisation schedule (see `GradSyncMode`).
  GradSyncMode sync_mode = GradSyncMode::kStepSynchronous;
  /// Fraction of `compute_seconds_per_iteration` spent in backward; the
  /// rest is the forward pass. Only the bucketed modes read the split:
  /// backward slices stamp bucket-ready times, forward slices gate the
  /// next iteration per layer (which is what priority scheduling speeds
  /// up). Must lie in (0, 1].
  double backward_fraction = 0.65;
  /// Optional per-parameter-layer share of forward/backward time, in
  /// forward layer order (`Model::param_spans()` order). Empty = split
  /// proportionally to each layer's parameter count. When set, the size
  /// must match the model's parameter-layer count; entries must be
  /// non-negative with a positive sum.
  std::vector<double> layer_compute_fractions;

  /// Validates the knobs above (model-independent checks; the
  /// `layer_compute_fractions` size is checked against the model inside
  /// `TrainDistributed`).
  Status Validate() const;
};

/// One epoch's scoreboard.
struct EpochRecord {
  int epoch = 0;
  double train_loss = 0.0;
  /// Test accuracy (classification) or test loss (regression/LM).
  double test_metric = 0.0;
  /// Cluster-wide simulated seconds elapsed since training started.
  double sim_seconds_cumulative = 0.0;
  /// Simulated seconds spent in communication this epoch (max over
  /// workers).
  double comm_seconds_epoch = 0.0;
  double compute_seconds_epoch = 0.0;
};

struct TrainResult {
  std::vector<EpochRecord> epochs;
  /// All replicas ended bit-identical (synchronous-SGD invariant).
  bool replicas_consistent = false;
  double final_param_checksum = 0.0;
};

/// Builds one model replica; called once per worker with
/// `TrainerConfig::model_seed`, so replicas start identical.
using ModelFactory = std::function<std::unique_ptr<Model>(uint64_t seed)>;

/// Builds one worker's sparse All-Reduce instance for a gradient of length
/// `n`.
using AlgorithmFactory =
    std::function<std::unique_ptr<SparseAllReduce>(size_t n)>;

/// Runs data-parallel synchronous SGD on `cluster`: every iteration each
/// worker computes gradients on its shard, synchronises via the method
/// from `algorithm_factory`, and applies the averaged update. Returns
/// per-epoch metrics measured on the simulated clock.
TrainResult TrainDistributed(Cluster& cluster, const Dataset& dataset,
                             const ModelFactory& model_factory,
                             const AlgorithmFactory& algorithm_factory,
                             const TrainerConfig& config);

}  // namespace spardl

#endif  // SPARDL_DL_TRAINER_H_
