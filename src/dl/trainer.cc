#include "dl/trainer.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "dl/loss.h"

namespace spardl {

namespace {

LossResult ComputeLoss(const Dataset& dataset, const Matrix& outputs,
                       const Batch& batch) {
  if (dataset.is_classification()) {
    return SoftmaxCrossEntropy(outputs, batch.labels);
  }
  return MeanSquaredError(outputs, batch.targets);
}

/// The bucketed modes' shared schedule, computed once on the main thread
/// and read by every worker. Blocking collectives deadlock unless all
/// replicas launch buckets in the same order, and local clocks diverge
/// mid-epoch, so the order must be a pure function of shared data (model
/// layout, config, cost model) — never of a worker's own simulated times.
struct BucketPlan {
  std::vector<ParamSpan> spans;        // forward (layer) order
  std::vector<double> forward_slice;   // seconds, per span
  std::vector<double> backward_slice;  // seconds, per span
  std::vector<size_t> run_order;       // launch order on the comm stream
};

/// Per-parameter-layer share of compute time, normalised to sum 1.
std::vector<double> LayerComputeWeights(const TrainerConfig& config,
                                        const std::vector<ParamSpan>& spans) {
  std::vector<double> weights;
  if (!config.layer_compute_fractions.empty()) {
    SPARDL_CHECK_EQ(config.layer_compute_fractions.size(), spans.size())
        << "layer_compute_fractions must have one entry per parameter "
           "layer";
    weights = config.layer_compute_fractions;
  } else {
    weights.reserve(spans.size());
    for (const ParamSpan& span : spans) {
      weights.push_back(static_cast<double>(span.count));
    }
  }
  double sum = 0.0;
  for (double w : weights) sum += w;
  SPARDL_CHECK_GT(sum, 0.0);
  for (double& w : weights) w /= sum;
  return weights;
}

BucketPlan BuildBucketPlan(const Model& model, const TrainerConfig& config,
                           const Topology& topo, int p) {
  BucketPlan plan;
  plan.spans = model.param_spans();
  const size_t num_buckets = plan.spans.size();
  SPARDL_CHECK_GT(num_buckets, 0u);

  const std::vector<double> weights = LayerComputeWeights(config, plan.spans);
  const double forward_total =
      config.compute_seconds_per_iteration * (1.0 - config.backward_fraction);
  const double backward_total =
      config.compute_seconds_per_iteration * config.backward_fraction;
  plan.forward_slice.resize(num_buckets);
  plan.backward_slice.resize(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    plan.forward_slice[b] = forward_total * weights[b];
    plan.backward_slice[b] = backward_total * weights[b];
  }

  // Bucket-ready offsets relative to the start of backward: backprop runs
  // back-to-front, so the rearmost bucket is ready first.
  std::vector<double> ready(num_buckets, 0.0);
  double t = 0.0;
  for (size_t b = num_buckets; b-- > 0;) {
    t += plan.backward_slice[b];
    ready[b] = t;
  }

  plan.run_order.reserve(num_buckets);
  if (config.sync_mode == GradSyncMode::kBucketed) {
    // FIFO: the order backward produces the buckets.
    for (size_t b = num_buckets; b-- > 0;) plan.run_order.push_back(b);
    return plan;
  }

  // Priority: greedy over estimated bucket durations — never idle the
  // stream while a bucket is ready, and among ready buckets launch the
  // front-most (the one the next forward needs first). The estimate only
  // has to rank overlaps, not predict wall times, but it must see the
  // fabric: on an oversubscribed fat-tree a bucket's transfer is paced by
  // the contended trunk, so each of the ~log2(p) exchange rounds charges
  // the worst route's summed latency plus bottleneck serialization of the
  // round's sparse payload (2 words per entry at a nominal 5% density).
  double path_alpha = topo.base_cost().alpha;
  double path_beta = topo.base_cost().beta;
  if (p >= 2) {
    std::vector<LinkId> path;
    topo.Route(0, p - 1, &path);
    if (!path.empty()) {
      path_alpha = 0.0;
      path_beta = 0.0;
      for (LinkId id : path) {
        const LinkInfo link = topo.link_info(id);
        path_alpha += link.alpha;
        path_beta = std::max(path_beta, link.beta);
      }
    }
  }
  const double log_rounds =
      std::max(1.0, std::ceil(std::log2(static_cast<double>(std::max(p, 2)))));
  constexpr double kNominalDensity = 0.05;
  std::vector<double> duration(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    duration[b] =
        log_rounds *
        (path_alpha * 3.0 + path_beta * 2.0 * kNominalDensity *
                                static_cast<double>(plan.spans[b].count));
  }
  std::vector<bool> scheduled(num_buckets, false);
  double stream = 0.0;
  for (size_t scheduled_count = 0; scheduled_count < num_buckets;
       ++scheduled_count) {
    double earliest = 0.0;
    bool have_earliest = false;
    for (size_t b = 0; b < num_buckets; ++b) {
      if (scheduled[b]) continue;
      if (!have_earliest || ready[b] < earliest) {
        earliest = ready[b];
        have_earliest = true;
      }
    }
    const double start = std::max(stream, earliest);
    size_t pick = num_buckets;
    for (size_t b = 0; b < num_buckets; ++b) {  // front-most ready bucket
      if (!scheduled[b] && ready[b] <= start + 1e-12) {
        pick = b;
        break;
      }
    }
    SPARDL_CHECK_LT(pick, num_buckets);
    scheduled[pick] = true;
    plan.run_order.push_back(pick);
    stream = start + duration[pick];
  }
  return plan;
}

}  // namespace

std::string_view GradSyncModeName(GradSyncMode mode) {
  switch (mode) {
    case GradSyncMode::kStepSynchronous:
      return "step-synchronous";
    case GradSyncMode::kBucketed:
      return "bucketed";
    case GradSyncMode::kBucketedPriority:
      return "bucketed-priority";
  }
  return "unknown";
}

Status TrainerConfig::Validate() const {
  if (epochs <= 0) return Status::InvalidArgument("epochs must be positive");
  if (iterations_per_epoch <= 0) {
    return Status::InvalidArgument("iterations_per_epoch must be positive");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (compute_seconds_per_iteration < 0.0) {
    return Status::InvalidArgument(
        "compute_seconds_per_iteration must be non-negative");
  }
  if (!(backward_fraction > 0.0) || backward_fraction > 1.0) {
    return Status::InvalidArgument("backward_fraction must be in (0, 1]");
  }
  double fraction_sum = 0.0;
  for (double f : layer_compute_fractions) {
    if (!std::isfinite(f) || f < 0.0) {
      return Status::InvalidArgument(
          "layer_compute_fractions entries must be finite and "
          "non-negative");
    }
    fraction_sum += f;
  }
  if (!layer_compute_fractions.empty() && fraction_sum <= 0.0) {
    return Status::InvalidArgument(
        "layer_compute_fractions must have a positive sum");
  }
  return Status::OK();
}

TrainResult TrainDistributed(Cluster& cluster, const Dataset& dataset,
                             const ModelFactory& model_factory,
                             const AlgorithmFactory& algorithm_factory,
                             const TrainerConfig& config) {
  const int p = cluster.size();
  cluster.ResetClocksAndStats();
  {
    const Status status = config.Validate();
    SPARDL_CHECK(status.ok()) << status.ToString();
  }

  const bool bucketed = config.sync_mode != GradSyncMode::kStepSynchronous;
  BucketPlan plan;
  if (bucketed) {
    // One probe replica pins the shared schedule; workers build their own
    // models from the same seed, so the layout is identical.
    const std::unique_ptr<Model> probe = model_factory(config.model_seed);
    plan = BuildBucketPlan(*probe, config, cluster.topology(), p);
  }

  TrainResult result;
  result.epochs.resize(static_cast<size_t>(config.epochs));

  // [epoch][rank] train-loss scratch, written SPMD, read after Run.
  std::vector<std::vector<double>> train_loss(
      static_cast<size_t>(config.epochs),
      std::vector<double>(static_cast<size_t>(p), 0.0));
  std::vector<double> checksums(static_cast<size_t>(p), 0.0);

  // With `Cluster::EnableProtocolCheck` on, a divergent collective
  // schedule surfaces here as the verifier's diagnosis instead of a hang.
  SPARDL_CHECK_OK(cluster.Run([&](Comm& comm) {
    const int rank = comm.rank();
    const auto rank_idx = static_cast<size_t>(rank);
    std::unique_ptr<Model> model = model_factory(config.model_seed);
    const size_t n = model->num_params();
    SPARDL_CHECK_GT(n, 0u);
    SgdOptimizer optimizer(n, config.sgd);

    // Synchronous mode runs one whole-model instance; the bucketed modes
    // run one per parameter layer over that layer's index sub-range.
    std::unique_ptr<SparseAllReduce> algorithm;
    std::vector<std::unique_ptr<SparseAllReduce>> bucket_algorithms;
    if (!bucketed) {
      algorithm = algorithm_factory(n);
    } else {
      bucket_algorithms.reserve(plan.spans.size());
      for (const ParamSpan& span : plan.spans) {
        bucket_algorithms.push_back(algorithm_factory(span.count));
      }
    }

    // Bucketed-pipeline state, all on the simulated timeline. The compute
    // unit's clock is tracked arithmetically (per-layer slices) and only
    // folded into `comm`'s clock via advance-only moves, so per-worker
    // send timestamps stay monotonic — the event engine's safety
    // assumption.
    double compute_free = comm.sim_now();
    std::vector<double> bucket_finish(plan.spans.size(), comm.sim_now());
    std::vector<double> bucket_ready(plan.spans.size(), 0.0);
    std::vector<SparseVector> bucket_out(plan.spans.size());

    for (int epoch = 0; epoch < config.epochs; ++epoch) {
      const double comm_before = comm.stats().comm_seconds;
      const double compute_before = comm.stats().compute_seconds;
      double loss_sum = 0.0;
      for (int iter = 0; iter < config.iterations_per_epoch; ++iter) {
        const int64_t batch_index =
            static_cast<int64_t>(epoch) * config.iterations_per_epoch + iter;
        const Batch batch =
            dataset.TrainBatch(rank, batch_index, config.batch_size);
        model->ZeroGrads();
        const Matrix outputs = model->Forward(batch.inputs);
        LossResult loss = ComputeLoss(dataset, outputs, batch);
        loss_sum += loss.loss;
        model->Backward(loss.grad);

        if (!bucketed) {
          comm.Compute(config.compute_seconds_per_iteration);
          const SparseVector global = algorithm->Run(comm, model->grads());
          optimizer.Step(global, p, epoch, model->params());
          comm.MarkIteration();
          continue;
        }

        // Forward pass, gated per layer on the previous iteration's
        // bucket arrivals — the stall priority scheduling shrinks. The
        // compute unit is its own stream, so its slices are recorded
        // directly (no `TraceScope`: `comm`'s clock is not involved).
        TraceRecorder* const tracer = comm.tracer();
        double t = compute_free;
        for (size_t b = 0; b < plan.spans.size(); ++b) {
          const double start = std::max(t, bucket_finish[b]);
          t = start + plan.forward_slice[b];
          if (tracer != nullptr) {
            tracer->RecordWorker(
                rank, TraceSpan{rank, kStreamCompute, Phase::kCompute,
                                "forward", static_cast<int>(b), -1, start, t,
                                0});
          }
        }
        // Backward back-to-front stamps each bucket's ready instant.
        for (size_t b = plan.spans.size(); b-- > 0;) {
          const double start = t;
          t += plan.backward_slice[b];
          bucket_ready[b] = t;
          if (tracer != nullptr) {
            tracer->RecordWorker(
                rank, TraceSpan{rank, kStreamCompute, Phase::kCompute,
                                "backward", static_cast<int>(b), -1, start,
                                t, 0});
          }
        }
        compute_free = t;
        comm.ChargeOverlappedCompute(config.compute_seconds_per_iteration);

        // Buckets run on the (single) communication stream in the shared
        // plan order; each launches no earlier than its ready instant.
        for (size_t b : plan.run_order) {
          comm.AdvanceClockTo(bucket_ready[b]);
          TraceScope scope(comm, Phase::kBucket, "bucket",
                           static_cast<int>(b));
          const ParamSpan& span = plan.spans[b];
          bucket_out[b] = bucket_algorithms[b]->Run(
              comm, model->grads().subspan(span.offset, span.count));
          bucket_finish[b] = comm.sim_now();
        }

        // Splice bucket-local indices back into model coordinates
        // (ascending offsets keep the COO invariant) and apply one
        // optimizer step for the whole iteration — stepping per bucket
        // would decay momentum once per bucket instead of once per step.
        size_t total_entries = 0;
        for (const SparseVector& part : bucket_out) {
          total_entries += part.size();
        }
        SparseVector global;
        global.Reserve(total_entries);
        for (size_t b = 0; b < plan.spans.size(); ++b) {
          const auto offset = static_cast<GradIndex>(plan.spans[b].offset);
          const SparseVector& part = bucket_out[b];
          for (size_t i = 0; i < part.size(); ++i) {
            global.PushBack(offset + part.index(i), part.value(i));
          }
        }
        optimizer.Step(global, p, epoch, model->params());
        comm.MarkIteration();
      }
      train_loss[static_cast<size_t>(epoch)][rank_idx] =
          loss_sum / config.iterations_per_epoch;

      // Epoch boundary: align simulated clocks (the S-SGD barrier), then
      // let rank 0 evaluate and record the scoreboard. Bucketed modes
      // first drain the compute tail (the last iteration's forward slot
      // has no successor to overlap with).
      if (bucketed) comm.AdvanceClockTo(compute_free);
      comm.BarrierSyncClocks();
      if (bucketed) {
        compute_free = comm.sim_now();
        std::fill(bucket_finish.begin(), bucket_finish.end(), comm.sim_now());
      }
      if (rank == 0) {
        EpochRecord& record = result.epochs[static_cast<size_t>(epoch)];
        record.epoch = epoch;
        record.sim_seconds_cumulative = comm.sim_now();
        record.comm_seconds_epoch =
            comm.stats().comm_seconds - comm_before;
        record.compute_seconds_epoch =
            comm.stats().compute_seconds - compute_before;
        const Batch test = dataset.TestBatch(config.test_batch_size);
        const Matrix outputs = model->Forward(test.inputs);
        if (dataset.metric() == TaskMetric::kAccuracy) {
          record.test_metric = Accuracy(outputs, test.labels);
        } else {
          record.test_metric = ComputeLoss(dataset, outputs, test).loss;
        }
      }
      comm.Barrier();  // everyone waits for the evaluation to finish
    }
    checksums[rank_idx] = model->ParamChecksum();
  }));

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double loss = 0.0;
    for (double l : train_loss[static_cast<size_t>(epoch)]) loss += l;
    result.epochs[static_cast<size_t>(epoch)].train_loss = loss / p;
  }

  result.replicas_consistent = true;
  for (int r = 1; r < p; ++r) {
    if (checksums[static_cast<size_t>(r)] != checksums[0]) {
      result.replicas_consistent = false;
    }
  }
  result.final_param_checksum = checksums[0];
  return result;
}

}  // namespace spardl
