#include "dl/trainer.h"

#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "dl/loss.h"

namespace spardl {

namespace {

LossResult ComputeLoss(const Dataset& dataset, const Matrix& outputs,
                       const Batch& batch) {
  if (dataset.is_classification()) {
    return SoftmaxCrossEntropy(outputs, batch.labels);
  }
  return MeanSquaredError(outputs, batch.targets);
}

}  // namespace

TrainResult TrainDistributed(Cluster& cluster, const Dataset& dataset,
                             const ModelFactory& model_factory,
                             const AlgorithmFactory& algorithm_factory,
                             const TrainerConfig& config) {
  const int p = cluster.size();
  cluster.ResetClocksAndStats();

  TrainResult result;
  result.epochs.resize(static_cast<size_t>(config.epochs));

  // [epoch][rank] train-loss scratch, written SPMD, read after Run.
  std::vector<std::vector<double>> train_loss(
      static_cast<size_t>(config.epochs),
      std::vector<double>(static_cast<size_t>(p), 0.0));
  std::vector<double> checksums(static_cast<size_t>(p), 0.0);

  cluster.Run([&](Comm& comm) {
    const int rank = comm.rank();
    const auto rank_idx = static_cast<size_t>(rank);
    std::unique_ptr<Model> model = model_factory(config.model_seed);
    const size_t n = model->num_params();
    SPARDL_CHECK_GT(n, 0u);
    std::unique_ptr<SparseAllReduce> algorithm = algorithm_factory(n);
    SgdOptimizer optimizer(n, config.sgd);

    for (int epoch = 0; epoch < config.epochs; ++epoch) {
      const double comm_before = comm.stats().comm_seconds;
      const double compute_before = comm.stats().compute_seconds;
      double loss_sum = 0.0;
      for (int iter = 0; iter < config.iterations_per_epoch; ++iter) {
        const int64_t batch_index =
            static_cast<int64_t>(epoch) * config.iterations_per_epoch + iter;
        const Batch batch =
            dataset.TrainBatch(rank, batch_index, config.batch_size);
        model->ZeroGrads();
        const Matrix outputs = model->Forward(batch.inputs);
        LossResult loss = ComputeLoss(dataset, outputs, batch);
        loss_sum += loss.loss;
        model->Backward(loss.grad);
        comm.Compute(config.compute_seconds_per_iteration);

        const SparseVector global = algorithm->Run(comm, model->grads());
        optimizer.Step(global, p, epoch, model->params());
      }
      train_loss[static_cast<size_t>(epoch)][rank_idx] =
          loss_sum / config.iterations_per_epoch;

      // Epoch boundary: align simulated clocks (the S-SGD barrier), then
      // let rank 0 evaluate and record the scoreboard.
      comm.BarrierSyncClocks();
      if (rank == 0) {
        EpochRecord& record = result.epochs[static_cast<size_t>(epoch)];
        record.epoch = epoch;
        record.sim_seconds_cumulative = comm.sim_now();
        record.comm_seconds_epoch =
            comm.stats().comm_seconds - comm_before;
        record.compute_seconds_epoch =
            comm.stats().compute_seconds - compute_before;
        const Batch test = dataset.TestBatch(config.test_batch_size);
        const Matrix outputs = model->Forward(test.inputs);
        if (dataset.metric() == TaskMetric::kAccuracy) {
          record.test_metric = Accuracy(outputs, test.labels);
        } else {
          record.test_metric = ComputeLoss(dataset, outputs, test).loss;
        }
      }
      comm.Barrier();  // everyone waits for the evaluation to finish
    }
    checksums[rank_idx] = model->ParamChecksum();
  });

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double loss = 0.0;
    for (double l : train_loss[static_cast<size_t>(epoch)]) loss += l;
    result.epochs[static_cast<size_t>(epoch)].train_loss = loss / p;
  }

  result.replicas_consistent = true;
  for (int r = 1; r < p; ++r) {
    if (checksums[static_cast<size_t>(r)] != checksums[0]) {
      result.replicas_consistent = false;
    }
  }
  result.final_param_checksum = checksums[0];
  return result;
}

}  // namespace spardl
