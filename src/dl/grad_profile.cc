#include "dl/grad_profile.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace spardl {

const std::vector<ModelProfile>& PaperModelProfiles() {
  static const std::vector<ModelProfile>& kProfiles =
      *new std::vector<ModelProfile>{
          {"Case 1", "VGG-16", "CIFAR-10", 14'700'000, 0.050},
          {"Case 2", "VGG-19", "CIFAR-100", 20'100'000, 0.060},
          {"Case 3", "ResNet-50", "ImageNet", 23'500'000, 0.120},
          {"Case 4", "VGG-11", "House", 9'200'000, 0.030},
          {"Case 5", "LSTM-IMDB", "IMDB", 35'200'000, 0.100},
          {"Case 6", "LSTM-PTB", "PTB", 66'000'000, 0.160},
          {"Case 7", "BERT", "Wikipedia", 133'500'000, 0.250},
      };
  return kProfiles;
}

const ModelProfile& ProfileByModel(const std::string& model) {
  for (const ModelProfile& profile : PaperModelProfiles()) {
    if (profile.model == model) return profile;
  }
  SPARDL_CHECK(false) << "unknown model profile: " << model;
  __builtin_unreachable();
}

ProfileGradientGenerator::ProfileGradientGenerator(
    size_t n, uint64_t seed, int num_clusters, int drift_period,
    double overlap, double shared_magnitude)
    : n_(n),
      seed_(seed),
      num_clusters_(num_clusters),
      drift_period_(drift_period),
      overlap_(overlap),
      shared_magnitude_(shared_magnitude) {
  SPARDL_CHECK_GT(n, 0u);
  SPARDL_CHECK_GT(num_clusters, 0);
  SPARDL_CHECK_GT(drift_period, 0);
  SPARDL_CHECK(overlap > 0.0 && overlap <= 1.0);
  SPARDL_CHECK(shared_magnitude >= 0.0 && shared_magnitude <= 1.0);
}

void ProfileGradientGenerator::SetComputeMultiplier(int worker,
                                                    double factor) {
  SPARDL_CHECK_GE(worker, 0);
  SPARDL_CHECK_GT(factor, 0.0);
  if (multipliers_.size() <= static_cast<size_t>(worker)) {
    multipliers_.resize(static_cast<size_t>(worker) + 1, 1.0);
  }
  multipliers_[static_cast<size_t>(worker)] = factor;
}

double ProfileGradientGenerator::ComputeSeconds(int worker,
                                                double base_seconds) const {
  SPARDL_CHECK_GE(worker, 0);
  if (static_cast<size_t>(worker) >= multipliers_.size()) {
    return base_seconds;
  }
  return base_seconds * multipliers_[static_cast<size_t>(worker)];
}

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double HashToUnit(uint64_t x) {
  return static_cast<double>(Mix64(x) >> 11) * 0x1.0p-53;
}

// Deterministic per-index standard normal (same on every worker).
double HashToGaussian(uint64_t x) {
  double u1 = HashToUnit(x);
  const double u2 = HashToUnit(x ^ 0x6a09e667f3bcc909ULL);
  if (u1 <= 1e-12) u1 = 1e-12;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

SparseVector ProfileGradientGenerator::Generate(int worker,
                                                int64_t iteration,
                                                size_t count) const {
  const auto clusters = static_cast<size_t>(num_clusters_);
  const size_t region = n_ / clusters;  // disjoint per-cluster regions
  SPARDL_CHECK_GT(region, 0u);
  const size_t per_cluster = std::max<size_t>(1, count / clusters);
  // Window width: per_cluster / overlap samples drawn from it => expected
  // pairwise support overlap ~= overlap.
  const size_t window = std::min(
      region, std::max<size_t>(
                  per_cluster,
                  static_cast<size_t>(static_cast<double>(per_cluster) /
                                      overlap_)));

  // Window placement drifts with the iteration epoch window; shared by all
  // workers (that is what makes supports overlap).
  const auto drift_phase = static_cast<uint64_t>(
      iteration / drift_period_);
  Rng placement_rng(seed_ ^ (drift_phase * 0x2545f4914f6cdd1dULL));
  Rng worker_rng(seed_ ^ (0x5851f42d4c957f2dULL *
                          (static_cast<uint64_t>(worker) + 1)) ^
                 static_cast<uint64_t>(iteration) * 0x9e3779b97f4a7c15ULL);

  SparseVector out;
  out.Reserve(count + clusters);
  std::vector<uint32_t> offsets;
  offsets.reserve(per_cluster);
  for (size_t j = 0; j < clusters; ++j) {
    const size_t region_start = j * region;
    const size_t max_offset = region - window;
    const size_t window_start =
        region_start +
        (max_offset == 0 ? 0 : placement_rng.NextBounded(max_offset + 1));
    offsets.clear();
    for (size_t i = 0; i < per_cluster; ++i) {
      offsets.push_back(
          static_cast<uint32_t>(worker_rng.NextBounded(window)));
    }
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()),
                  offsets.end());
    for (uint32_t off : offsets) {
      const uint64_t index_salt =
          static_cast<uint64_t>(window_start + off) ^ seed_ ^
          (drift_phase * 0x9e3779b97f4a7c15ULL);
      // Heavy-tailed magnitudes: whether a coordinate is "hot" is a
      // property of the coordinate (deterministic across workers), so
      // workers' top entries coincide as they do in real training.
      const double scale = HashToUnit(index_salt) < 0.05 ? 1.0 : 0.02;
      const double g_shared = HashToGaussian(index_salt);
      const double g_worker = worker_rng.NextGaussian();
      const double w_shared = std::sqrt(shared_magnitude_);
      const double w_worker = std::sqrt(1.0 - shared_magnitude_);
      const float value = static_cast<float>(
          scale * (w_shared * g_shared + w_worker * g_worker));
      out.PushBack(static_cast<GradIndex>(window_start + off),
                   value == 0.0f ? 1e-6f : value);
    }
  }
  return out;
}

}  // namespace spardl
