#include "dl/cases.h"

#include "common/logging.h"
#include "dl/layers.h"

namespace spardl {

namespace {

ModelFactory MlpFactory(size_t in, size_t hidden1, size_t hidden2,
                        size_t out) {
  return [=](uint64_t seed) {
    auto model = std::make_unique<Model>();
    model->Add(std::make_unique<LinearLayer>(in, hidden1));
    model->Add(std::make_unique<ReluLayer>());
    model->Add(std::make_unique<LinearLayer>(hidden1, hidden2));
    model->Add(std::make_unique<ReluLayer>());
    model->Add(std::make_unique<LinearLayer>(hidden2, out));
    model->Finalize(seed);
    return model;
  };
}

ModelFactory LstmFactory(size_t vocab, size_t embed_dim, size_t hidden,
                         size_t seq_len, size_t out) {
  return [=](uint64_t seed) {
    auto model = std::make_unique<Model>();
    model->Add(std::make_unique<EmbeddingLayer>(vocab, embed_dim));
    model->Add(std::make_unique<LstmLayer>(embed_dim, hidden, seq_len));
    model->Add(std::make_unique<LinearLayer>(hidden, out));
    model->Finalize(seed);
    return model;
  };
}

TrainerConfig DefaultConfig(double lr, double compute_seconds) {
  TrainerConfig config;
  config.batch_size = 32;
  config.iterations_per_epoch = 20;
  config.epochs = 8;
  config.sgd.learning_rate = lr;
  config.sgd.momentum = 0.9;
  config.compute_seconds_per_iteration = compute_seconds;
  return config;
}

}  // namespace

TrainingCaseSpec MakeTrainingCase(const std::string& key) {
  TrainingCaseSpec spec;
  spec.key = key;
  if (key == "vgg16") {
    spec.paper_model = "VGG-16";
    spec.name = "Case 1: VGG-16-like MLP / synthetic CIFAR-10";
    spec.metric = TaskMetric::kAccuracy;
    spec.dataset_factory = [] {
      return MakeSyntheticClassification(96, 10, 1.6f, 101);
    };
    spec.model_factory = MlpFactory(96, 256, 128, 10);
    spec.default_config = DefaultConfig(0.08, 2.0e-3);
    return spec;
  }
  if (key == "vgg19") {
    spec.paper_model = "VGG-19";
    spec.name = "Case 2: VGG-19-like MLP / synthetic CIFAR-100";
    spec.metric = TaskMetric::kAccuracy;
    spec.dataset_factory = [] {
      return MakeSyntheticClassification(128, 20, 1.6f, 102);
    };
    spec.model_factory = MlpFactory(128, 320, 160, 20);
    spec.default_config = DefaultConfig(0.08, 2.4e-3);
    return spec;
  }
  if (key == "resnet50") {
    spec.paper_model = "ResNet-50";
    spec.name = "Case 3: ResNet-50-like MLP / synthetic ImageNet";
    spec.metric = TaskMetric::kAccuracy;
    spec.dataset_factory = [] {
      return MakeSyntheticClassification(160, 30, 1.4f, 103);
    };
    spec.model_factory = MlpFactory(160, 384, 192, 30);
    spec.default_config = DefaultConfig(0.06, 4.0e-3);
    return spec;
  }
  if (key == "vgg11") {
    spec.paper_model = "VGG-11";
    spec.name = "Case 4: VGG-11-like MLP / synthetic House (regression)";
    spec.metric = TaskMetric::kLoss;
    spec.dataset_factory = [] {
      return MakeSyntheticRegression(64, 0.05f, 104);
    };
    spec.model_factory = MlpFactory(64, 160, 80, 1);
    spec.default_config = DefaultConfig(0.05, 1.2e-3);
    return spec;
  }
  if (key == "lstm-imdb") {
    spec.paper_model = "LSTM-IMDB";
    spec.name = "Case 5: LSTM / synthetic IMDB (text classification)";
    spec.metric = TaskMetric::kAccuracy;
    spec.dataset_factory = [] {
      return MakeSyntheticSequenceClassification(400, 16, 2, 105);
    };
    spec.model_factory = LstmFactory(400, 24, 48, 16, 2);
    spec.default_config = DefaultConfig(0.15, 4.0e-3);
    return spec;
  }
  if (key == "lstm-ptb") {
    spec.paper_model = "LSTM-PTB";
    spec.name = "Case 6: LSTM / synthetic PTB (language modelling)";
    spec.metric = TaskMetric::kLoss;
    spec.dataset_factory = [] {
      return MakeSyntheticLanguageModel(200, 12, 106);
    };
    spec.model_factory = LstmFactory(200, 24, 56, 12, 200);
    spec.default_config = DefaultConfig(0.25, 5.0e-3);
    return spec;
  }
  if (key == "bert") {
    spec.paper_model = "BERT";
    spec.name = "Case 7: BERT-like LSTM-LM / synthetic Wikipedia";
    spec.metric = TaskMetric::kLoss;
    spec.dataset_factory = [] {
      return MakeSyntheticLanguageModel(300, 16, 107);
    };
    spec.model_factory = LstmFactory(300, 32, 64, 16, 300);
    spec.default_config = DefaultConfig(0.2, 8.0e-3);
    return spec;
  }
  SPARDL_CHECK(false) << "unknown training case: " << key;
  __builtin_unreachable();
}

std::vector<std::string> TrainingCaseKeys() {
  return {"vgg16", "vgg19",     "resnet50", "vgg11",
          "lstm-imdb", "lstm-ptb", "bert"};
}

}  // namespace spardl
