#include "dl/loss.h"

#include <cmath>

#include "common/logging.h"

namespace spardl {

LossResult SoftmaxCrossEntropy(const Matrix& logits,
                               const std::vector<int>& labels) {
  SPARDL_CHECK_EQ(logits.rows(), labels.size());
  const size_t batch = logits.rows();
  const size_t classes = logits.cols();
  LossResult result;
  result.grad = Matrix(batch, classes);
  for (size_t r = 0; r < batch; ++r) {
    const std::span<const float> row = logits.Row(r);
    float max_logit = row[0];
    for (float v : row) max_logit = std::max(max_logit, v);
    double denom = 0.0;
    for (float v : row) denom += std::exp(static_cast<double>(v - max_logit));
    const auto label = static_cast<size_t>(labels[r]);
    SPARDL_DCHECK_LT(label, classes);
    const double log_prob =
        static_cast<double>(row[label] - max_logit) - std::log(denom);
    result.loss -= log_prob;
    std::span<float> g = result.grad.Row(r);
    for (size_t c = 0; c < classes; ++c) {
      const double p =
          std::exp(static_cast<double>(row[c] - max_logit)) / denom;
      g[c] = static_cast<float>((p - (c == label ? 1.0 : 0.0)) /
                                static_cast<double>(batch));
    }
  }
  result.loss /= static_cast<double>(batch);
  return result;
}

double Accuracy(const Matrix& logits, const std::vector<int>& labels) {
  SPARDL_CHECK_EQ(logits.rows(), labels.size());
  if (logits.rows() == 0) return 0.0;
  size_t correct = 0;
  for (size_t r = 0; r < logits.rows(); ++r) {
    const std::span<const float> row = logits.Row(r);
    size_t argmax = 0;
    for (size_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[argmax]) argmax = c;
    }
    if (static_cast<int>(argmax) == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(logits.rows());
}

LossResult MeanSquaredError(const Matrix& predictions,
                            const Matrix& targets) {
  SPARDL_CHECK_EQ(predictions.rows(), targets.rows());
  SPARDL_CHECK_EQ(predictions.cols(), targets.cols());
  const double count = static_cast<double>(predictions.rows()) *
                       static_cast<double>(predictions.cols());
  LossResult result;
  result.grad = Matrix(predictions.rows(), predictions.cols());
  for (size_t i = 0; i < predictions.data().size(); ++i) {
    const double diff = static_cast<double>(predictions.data()[i]) -
                        static_cast<double>(targets.data()[i]);
    result.loss += diff * diff;
    result.grad.data()[i] = static_cast<float>(2.0 * diff / count);
  }
  result.loss /= count;
  return result;
}

}  // namespace spardl
