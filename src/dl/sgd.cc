#include "dl/sgd.h"

#include <algorithm>

#include "common/logging.h"

namespace spardl {

SgdOptimizer::SgdOptimizer(size_t num_params, const SgdConfig& config)
    : config_(config),
      velocity_(num_params, 0.0f),
      dense_scratch_(num_params, 0.0f) {}

double SgdOptimizer::LearningRateAt(int epoch) const {
  double lr = config_.learning_rate;
  for (const auto& [milestone, multiplier] : config_.lr_milestones) {
    if (epoch >= milestone) lr *= multiplier;
  }
  return lr;
}

void SgdOptimizer::Step(const SparseVector& global_gradient_sum,
                        int num_workers, int epoch,
                        std::span<float> params) {
  SPARDL_CHECK_EQ(params.size(), velocity_.size());
  std::fill(dense_scratch_.begin(), dense_scratch_.end(), 0.0f);
  const float inv_p = 1.0f / static_cast<float>(num_workers);
  for (size_t i = 0; i < global_gradient_sum.size(); ++i) {
    dense_scratch_[global_gradient_sum.index(i)] =
        global_gradient_sum.value(i) * inv_p;
  }
  StepDense(dense_scratch_, epoch, params);
}

void SgdOptimizer::StepDense(std::span<const float> gradient_mean, int epoch,
                             std::span<float> params) {
  SPARDL_CHECK_EQ(gradient_mean.size(), velocity_.size());
  SPARDL_CHECK_EQ(params.size(), velocity_.size());
  const auto lr = static_cast<float>(LearningRateAt(epoch));
  const auto momentum = static_cast<float>(config_.momentum);
  const auto weight_decay = static_cast<float>(config_.weight_decay);
  for (size_t i = 0; i < params.size(); ++i) {
    const float g = gradient_mean[i] + weight_decay * params[i];
    velocity_[i] = momentum * velocity_[i] + g;
    params[i] -= lr * velocity_[i];
  }
}

}  // namespace spardl
