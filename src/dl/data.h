#ifndef SPARDL_DL_DATA_H_
#define SPARDL_DL_DATA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "dl/matrix.h"

namespace spardl {

/// One training batch. Classification/LM tasks fill `labels`; regression
/// fills `targets`.
struct Batch {
  Matrix inputs;
  std::vector<int> labels;
  Matrix targets;
};

/// How a task is scored.
enum class TaskMetric {
  kAccuracy,  // higher is better (classification)
  kLoss,      // lower is better (regression, language modelling)
};

/// A deterministic, infinitely-sampled synthetic dataset. Batches are pure
/// functions of (worker, batch_index), so runs are bit-reproducible and
/// workers see disjoint i.i.d. shards, mirroring data-parallel S-SGD.
///
/// These stand in for the paper's CIFAR/House/IMDB/PTB datasets (offline
/// reproduction): same task *types*, synthetic generators — see DESIGN.md.
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual Batch TrainBatch(int worker, int64_t batch_index,
                           size_t batch_size) const = 0;
  /// A fixed held-out batch, identical for all callers.
  virtual Batch TestBatch(size_t batch_size) const = 0;

  virtual TaskMetric metric() const = 0;
  /// True when outputs are class logits (cross-entropy training).
  virtual bool is_classification() const = 0;
};

/// Type 1 (image classification, CIFAR-like): Gaussian class clusters.
/// x = prototype[label] + noise. Input dim `input_dim`, `num_classes`
/// classes.
std::unique_ptr<Dataset> MakeSyntheticClassification(size_t input_dim,
                                                     size_t num_classes,
                                                     float noise,
                                                     uint64_t seed);

/// Type 2 (image regression, House-like): scalar target from a fixed
/// random two-layer tanh teacher network plus observation noise.
std::unique_ptr<Dataset> MakeSyntheticRegression(size_t input_dim,
                                                 float noise, uint64_t seed);

/// Type 3 (text classification, IMDB-like): token sequences whose unigram
/// distribution depends on the class; inputs are token ids [batch,
/// seq_len].
std::unique_ptr<Dataset> MakeSyntheticSequenceClassification(
    size_t vocab, size_t seq_len, size_t num_classes, uint64_t seed);

/// Type 4 (language modelling, PTB-like): sequences from a noisy
/// deterministic Markov chain over `vocab` tokens; the label is the token
/// following the sequence.
std::unique_ptr<Dataset> MakeSyntheticLanguageModel(size_t vocab,
                                                    size_t seq_len,
                                                    uint64_t seed);

}  // namespace spardl

#endif  // SPARDL_DL_DATA_H_
