#ifndef SPARDL_DL_MATRIX_H_
#define SPARDL_DL_MATRIX_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/logging.h"

namespace spardl {

/// Row-major dense float matrix — the activation/weight currency of the
/// training substrate. Deliberately minimal: the substrate needs exactly
/// the operations backprop through MLP/LSTM models requires, nothing more.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) {
    SPARDL_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    SPARDL_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<float> Row(size_t r) {
    return std::span<float>(data_).subspan(r * cols_, cols_);
  }
  std::span<const float> Row(size_t r) const {
    return std::span<const float>(data_).subspan(r * cols_, cols_);
  }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void SetZero() { std::fill(data_.begin(), data_.end(), 0.0f); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b. Shapes: [m,k] x [k,n] -> [m,n].
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T. Shapes: [m,k] x [n,k] -> [m,n].
void MatMulBt(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b. Shapes: [m,k] x [m,n] -> [k,n].
void MatMulAt(const Matrix& a, const Matrix& b, Matrix* out);

}  // namespace spardl

#endif  // SPARDL_DL_MATRIX_H_
