#ifndef SPARDL_DL_SGD_H_
#define SPARDL_DL_SGD_H_

#include <span>
#include <utility>
#include <vector>

#include "sparse/sparse_vector.h"

namespace spardl {

/// SGD with momentum and a step learning-rate schedule (the paper drops the
/// LR at epoch 80 in Fig. 17).
struct SgdConfig {
  double learning_rate = 0.1;
  double momentum = 0.9;
  double weight_decay = 0.0;
  /// (epoch, multiplier) milestones applied to learning_rate, e.g.
  /// {{80, 0.1}} divides the LR by 10 from epoch 80 on.
  std::vector<std::pair<int, double>> lr_milestones;
};

/// One optimizer instance per worker replica (velocity is worker-local but
/// stays identical across replicas because the synchronised gradient is).
class SgdOptimizer {
 public:
  SgdOptimizer(size_t num_params, const SgdConfig& config);

  /// Effective learning rate at `epoch`.
  double LearningRateAt(int epoch) const;

  /// Applies one update from the *summed* global sparse gradient of
  /// `num_workers` contributions (the all-reduce output): averages, applies
  /// momentum and weight decay, updates `params` in place.
  void Step(const SparseVector& global_gradient_sum, int num_workers,
            int epoch, std::span<float> params);

  /// Dense-gradient variant (the no-compression baseline path).
  void StepDense(std::span<const float> gradient_mean, int epoch,
                 std::span<float> params);

 private:
  SgdConfig config_;
  std::vector<float> velocity_;
  std::vector<float> dense_scratch_;
};

}  // namespace spardl

#endif  // SPARDL_DL_SGD_H_
