#include "dl/model.h"

#include <algorithm>

#include "common/logging.h"

namespace spardl {

void Model::Add(std::unique_ptr<Layer> layer) {
  SPARDL_CHECK(!finalized_) << "Add after Finalize";
  layers_.push_back(std::move(layer));
}

void Model::Finalize(uint64_t seed) {
  SPARDL_CHECK(!finalized_);
  size_t total = 0;
  for (const auto& layer : layers_) total += layer->num_params();
  params_.assign(total, 0.0f);
  grads_.assign(total, 0.0f);
  size_t offset = 0;
  Rng rng(seed);
  for (size_t i = 0; i < layers_.size(); ++i) {
    const auto& layer = layers_[i];
    const size_t count = layer->num_params();
    layer->Bind(std::span<float>(params_).subspan(offset, count),
                std::span<float>(grads_).subspan(offset, count));
    layer->InitParams(&rng);
    if (count > 0) {
      param_spans_.push_back(ParamSpan{i, offset, count, layer->name()});
    }
    offset += count;
  }
  finalized_ = true;
}

Matrix Model::Forward(const Matrix& input) {
  SPARDL_CHECK(finalized_);
  Matrix activation = input;
  for (const auto& layer : layers_) {
    activation = layer->Forward(activation);
  }
  return activation;
}

void Model::Backward(const Matrix& grad_out) {
  SPARDL_CHECK(finalized_);
  Matrix grad = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
}

double Model::ParamChecksum() const {
  double sum = 0.0;
  double weighted = 0.0;
  for (size_t i = 0; i < params_.size(); ++i) {
    sum += params_[i];
    weighted += params_[i] * static_cast<double>((i % 97) + 1);
  }
  return sum + weighted * 1e-3;
}

}  // namespace spardl
