#ifndef SPARDL_DL_CASES_H_
#define SPARDL_DL_CASES_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dl/data.h"
#include "dl/trainer.h"

namespace spardl {

/// A runnable, laptop-scale counterpart of one of the paper's seven deep
/// learning cases (Table II): same task type, synthetic data, a model that
/// trains for real in seconds. Used by the convergence benches
/// (Fig. 9/11/12b/13/16/17).
struct TrainingCaseSpec {
  std::string key;         // "vgg19"
  std::string name;        // "Case 2: VGG-19-like / synthetic CIFAR-100"
  /// The paper model this case stands in for ("VGG-19", ...). Convergence
  /// benches scale the network's beta by paper-n / this-n so the small
  /// model experiences the paper's bandwidth-to-latency balance (the
  /// alpha-beta model is linear, so this preserves method ratios).
  std::string paper_model;
  TaskMetric metric = TaskMetric::kAccuracy;
  std::function<std::unique_ptr<Dataset>()> dataset_factory;
  ModelFactory model_factory;
  /// Sensible defaults (batch size, SGD, modelled compute per iteration).
  TrainerConfig default_config;
};

/// Builds the case registered under `key`:
/// "vgg16", "vgg19", "resnet50", "vgg11", "lstm-imdb", "lstm-ptb", "bert".
/// Aborts on unknown keys.
TrainingCaseSpec MakeTrainingCase(const std::string& key);

/// All available case keys, Table II order.
std::vector<std::string> TrainingCaseKeys();

}  // namespace spardl

#endif  // SPARDL_DL_CASES_H_
