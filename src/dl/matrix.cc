#include "dl/matrix.h"

namespace spardl {

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  SPARDL_CHECK_EQ(a.cols(), b.rows());
  *out = Matrix(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const float a_ip = a.At(i, p);
      if (a_ip == 0.0f) continue;
      const std::span<const float> b_row = b.Row(p);
      const std::span<float> out_row = out->Row(i);
      for (size_t j = 0; j < n; ++j) out_row[j] += a_ip * b_row[j];
    }
  }
}

void MatMulBt(const Matrix& a, const Matrix& b, Matrix* out) {
  SPARDL_CHECK_EQ(a.cols(), b.cols());
  *out = Matrix(a.rows(), b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const std::span<const float> a_row = a.Row(i);
    for (size_t j = 0; j < n; ++j) {
      const std::span<const float> b_row = b.Row(j);
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out->At(i, j) = acc;
    }
  }
}

void MatMulAt(const Matrix& a, const Matrix& b, Matrix* out) {
  SPARDL_CHECK_EQ(a.rows(), b.rows());
  *out = Matrix(a.cols(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const std::span<const float> a_row = a.Row(i);
    const std::span<const float> b_row = b.Row(i);
    for (size_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      const std::span<float> out_row = out->Row(p);
      for (size_t j = 0; j < n; ++j) out_row[j] += a_ip * b_row[j];
    }
  }
}

}  // namespace spardl
