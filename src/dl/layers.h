#ifndef SPARDL_DL_LAYERS_H_
#define SPARDL_DL_LAYERS_H_

#include <memory>
#include <span>
#include <string_view>

#include "common/random.h"
#include "dl/matrix.h"

namespace spardl {

/// A differentiable layer with manual backprop.
///
/// Parameters live in the *model's* flat buffers (one contiguous float
/// vector each for params and grads) — the layout every sparse All-Reduce
/// method in this repo synchronises. `Bind` hands each layer its slice.
class Layer {
 public:
  virtual ~Layer() = default;

  /// x: [batch, fan_in] -> [batch, fan_out]. Must cache whatever Backward
  /// needs (layers are stateful between a Forward and its Backward).
  virtual Matrix Forward(const Matrix& x) = 0;

  /// grad_out: d(loss)/d(output) -> d(loss)/d(input); accumulates parameter
  /// gradients into the bound grad slice.
  virtual Matrix Backward(const Matrix& grad_out) = 0;

  /// Number of scalar parameters this layer owns.
  virtual size_t num_params() const { return 0; }

  /// Binds this layer's parameter/grad storage (called once by the model).
  virtual void Bind(std::span<float> params, std::span<float> grads) {
    (void)params;
    (void)grads;
  }

  /// Writes the initial parameter values (same rng state on every worker
  /// replica => identical initialisation).
  virtual void InitParams(Rng* rng) { (void)rng; }

  virtual std::string_view name() const = 0;
};

/// Fully connected: y = x W + b. W is [in, out] row-major, b is [out].
class LinearLayer final : public Layer {
 public:
  LinearLayer(size_t in, size_t out) : in_(in), out_(out) {}

  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  size_t num_params() const override { return in_ * out_ + out_; }
  void Bind(std::span<float> params, std::span<float> grads) override;
  void InitParams(Rng* rng) override;
  std::string_view name() const override { return "Linear"; }

 private:
  size_t in_;
  size_t out_;
  std::span<float> params_;
  std::span<float> grads_;
  Matrix cached_input_;
};

/// Element-wise ReLU.
class ReluLayer final : public Layer {
 public:
  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  std::string_view name() const override { return "ReLU"; }

 private:
  Matrix cached_input_;
};

/// Element-wise tanh.
class TanhLayer final : public Layer {
 public:
  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  std::string_view name() const override { return "Tanh"; }

 private:
  Matrix cached_output_;
};

/// Token embedding: input [batch, seq_len] of token ids (stored as floats),
/// output [batch, seq_len * dim] of concatenated embeddings.
class EmbeddingLayer final : public Layer {
 public:
  EmbeddingLayer(size_t vocab, size_t dim) : vocab_(vocab), dim_(dim) {}

  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  size_t num_params() const override { return vocab_ * dim_; }
  void Bind(std::span<float> params, std::span<float> grads) override;
  void InitParams(Rng* rng) override;
  std::string_view name() const override { return "Embedding"; }

 private:
  size_t vocab_;
  size_t dim_;
  std::span<float> params_;
  std::span<float> grads_;
  Matrix cached_input_;
};

/// Single-layer LSTM over a sequence, returning the final hidden state.
/// Input [batch, seq_len * input_dim]; output [batch, hidden]. Full BPTT.
/// Gate layout (per PyTorch convention): i, f, g, o; weights W_x
/// [input_dim, 4*hidden], W_h [hidden, 4*hidden], bias [4*hidden].
class LstmLayer final : public Layer {
 public:
  LstmLayer(size_t input_dim, size_t hidden, size_t seq_len)
      : input_dim_(input_dim), hidden_(hidden), seq_len_(seq_len) {}

  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  size_t num_params() const override {
    return 4 * hidden_ * (input_dim_ + hidden_ + 1);
  }
  void Bind(std::span<float> params, std::span<float> grads) override;
  void InitParams(Rng* rng) override;
  std::string_view name() const override { return "LSTM"; }

 private:
  struct StepCache {
    Matrix x;       // [batch, input_dim]
    Matrix gates;   // [batch, 4*hidden] post-activation (i, f, g, o)
    Matrix c_prev;  // [batch, hidden]
    Matrix c;       // [batch, hidden]
    Matrix h_prev;  // [batch, hidden]
  };

  size_t input_dim_;
  size_t hidden_;
  size_t seq_len_;
  std::span<float> params_;
  std::span<float> grads_;
  std::vector<StepCache> steps_;
};

}  // namespace spardl

#endif  // SPARDL_DL_LAYERS_H_
