#include "sparse/topk.h"

#include <algorithm>
#include <cmath>

namespace spardl {

namespace {

// Larger |value| wins; ties go to the lower position (deterministic).
bool CandidateGreater(float abs_a, uint32_t pos_a, float abs_b,
                      uint32_t pos_b) {
  if (abs_a != abs_b) return abs_a > abs_b;
  return pos_a < pos_b;
}

}  // namespace

void TopKSelector::RankCandidates(size_t k) {
  auto cmp = [](const Candidate& a, const Candidate& b) {
    return CandidateGreater(a.abs_value, a.position, b.abs_value, b.position);
  };
  SPARDL_DCHECK_LE(k, scratch_.size());
  std::nth_element(scratch_.begin(), scratch_.begin() + (k - 1),
                   scratch_.end(), cmp);
  positions_kept_.clear();
  positions_kept_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    positions_kept_.push_back(scratch_[i].position);
  }
  std::sort(positions_kept_.begin(), positions_kept_.end());
}

void TopKSelector::SelectSparse(const SparseVector& input, size_t k,
                                SparseVector* kept, SparseVector* discarded) {
  kept->Clear();
  if (discarded != nullptr) discarded->Clear();
  if (k >= input.size()) {
    *kept = input;
    return;
  }
  if (k == 0) {
    if (discarded != nullptr) *discarded = input;
    return;
  }
  scratch_.clear();
  scratch_.reserve(input.size());
  for (uint32_t i = 0; i < input.size(); ++i) {
    scratch_.push_back({std::fabs(input.value(i)), i});
  }
  RankCandidates(k);
  kept->Reserve(k);
  if (discarded != nullptr) discarded->Reserve(input.size() - k);
  size_t next_kept = 0;
  for (uint32_t i = 0; i < input.size(); ++i) {
    if (next_kept < positions_kept_.size() &&
        positions_kept_[next_kept] == i) {
      kept->PushBack(input.index(i), input.value(i));
      ++next_kept;
    } else if (discarded != nullptr) {
      discarded->PushBack(input.index(i), input.value(i));
    }
  }
}

void TopKSelector::SelectDense(std::span<const float> dense,
                               GradIndex base_index, size_t k,
                               SparseVector* kept, SparseVector* discarded) {
  kept->Clear();
  if (discarded != nullptr) discarded->Clear();
  scratch_.clear();
  scratch_.reserve(dense.size());
  for (uint32_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0f) {
      scratch_.push_back({std::fabs(dense[i]), i});
    }
  }
  const size_t nnz = scratch_.size();
  if (k >= nnz) {
    // Keep all non-zeros; nothing discarded.
    for (const Candidate& c : scratch_) {
      kept->PushBack(base_index + c.position, dense[c.position]);
    }
    return;
  }
  if (k == 0) {
    if (discarded != nullptr) {
      for (const Candidate& c : scratch_) {
        discarded->PushBack(base_index + c.position, dense[c.position]);
      }
    }
    return;
  }
  RankCandidates(k);
  kept->Reserve(k);
  if (discarded != nullptr) discarded->Reserve(nnz - k);
  // scratch_ was permuted by nth_element; walk the dense block again so the
  // discarded side comes out index-sorted without an extra sort.
  size_t next_kept = 0;
  for (uint32_t i = 0; i < dense.size(); ++i) {
    if (dense[i] == 0.0f) continue;
    if (next_kept < positions_kept_.size() &&
        positions_kept_[next_kept] == i) {
      kept->PushBack(base_index + i, dense[i]);
      ++next_kept;
    } else if (discarded != nullptr) {
      discarded->PushBack(base_index + i, dense[i]);
    }
  }
}

void TopKSparse(const SparseVector& input, size_t k, SparseVector* kept,
                SparseVector* discarded) {
  TopKSelector selector;
  selector.SelectSparse(input, k, kept, discarded);
}

void TopKDense(std::span<const float> dense, GradIndex base_index, size_t k,
               SparseVector* kept, SparseVector* discarded) {
  TopKSelector selector;
  selector.SelectDense(dense, base_index, k, kept, discarded);
}

size_t ThresholdSelect(const SparseVector& input, float threshold,
                       SparseVector* kept, SparseVector* discarded) {
  kept->Clear();
  if (discarded != nullptr) discarded->Clear();
  for (size_t i = 0; i < input.size(); ++i) {
    if (std::fabs(input.value(i)) >= threshold) {
      kept->PushBack(input.index(i), input.value(i));
    } else if (discarded != nullptr) {
      discarded->PushBack(input.index(i), input.value(i));
    }
  }
  return kept->size();
}

float KthLargestAbs(std::span<const float> dense, size_t k) {
  if (k == 0) return 0.0f;
  std::vector<float> abs_values;
  abs_values.reserve(dense.size());
  for (float v : dense) {
    if (v != 0.0f) abs_values.push_back(std::fabs(v));
  }
  if (k > abs_values.size()) return 0.0f;
  std::nth_element(abs_values.begin(), abs_values.begin() + (k - 1),
                   abs_values.end(), std::greater<float>());
  return abs_values[k - 1];
}

}  // namespace spardl
