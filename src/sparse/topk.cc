#include "sparse/topk.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>

namespace spardl {

namespace {

// Bit pattern of |v|. For non-negative IEEE-754 floats the unsigned bit
// pattern orders exactly like the float value — denormals included — so
// magnitude comparisons run as integer compares.
inline uint32_t AbsBits(float v) {
  return std::bit_cast<uint32_t>(v) & 0x7FFFFFFFu;
}

// The IEEE-754 exponent byte: the radix digit for the bucket histogram.
inline size_t ExponentBucket(uint32_t abs_bits) { return abs_bits >> 23; }

// Larger |value| wins; ties go to the lower position (deterministic).
inline bool CandidateGreater(uint32_t abs_a, uint32_t pos_a, uint32_t abs_b,
                             uint32_t pos_b) {
  if (abs_a != abs_b) return abs_a > abs_b;
  return pos_a < pos_b;
}

// Walks the exponent histogram from the largest bucket down to the one
// holding the k-th element. Returns that bucket; *above gets the count of
// elements in strictly larger buckets. Requires k <= sum(counts).
size_t BoundaryBucket(const size_t counts[256], size_t k, size_t* above) {
  *above = 0;
  size_t bucket = 256;
  while (bucket-- > 0) {
    if (*above + counts[bucket] >= k) break;
    *above += counts[bucket];
  }
  return bucket;
}

}  // namespace

TopKSelector::Pivot TopKSelector::PivotFromCandidates(size_t k) {
  SPARDL_DCHECK(k >= 1);
  SPARDL_DCHECK_LE(k, bucket_scratch_.size());
  auto cmp = [](const Candidate& a, const Candidate& b) {
    return CandidateGreater(a.abs_bits, a.position, b.abs_bits, b.position);
  };
  std::nth_element(bucket_scratch_.begin(), bucket_scratch_.begin() + (k - 1),
                   bucket_scratch_.end(), cmp);
  const Candidate& c = bucket_scratch_[k - 1];
  return {c.abs_bits, c.position};
}

TopKSelector::Pivot TopKSelector::SparsePivotRadix(
    std::span<const float> values, size_t k) {
  const float* val = values.data();
  const uint32_t n = static_cast<uint32_t>(values.size());
  std::fill(std::begin(counts_), std::end(counts_), 0);
  for (uint32_t i = 0; i < n; ++i) {
    ++counts_[ExponentBucket(AbsBits(val[i]))];
  }
  // Only the boundary bucket needs exact refinement.
  size_t above;
  const size_t bucket = BoundaryBucket(counts_, k, &above);
  bucket_scratch_.clear();
  bucket_scratch_.reserve(counts_[bucket]);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t ab = AbsBits(val[i]);
    if (ExponentBucket(ab) == bucket) bucket_scratch_.push_back({ab, i});
  }
  return PivotFromCandidates(k - above);
}

void TopKSelector::EmitSparse(const SparseVector& input, size_t k,
                              Pivot pivot, SparseVector* kept,
                              SparseVector* discarded) {
  const uint32_t n = static_cast<uint32_t>(input.size());
  const GradIndex* idx = input.indices().data();
  const float* val = input.values().data();
  kept->ResizeForOverwrite(k);
  GradIndex* ki = kept->MutableIndexData();
  float* kv = kept->MutableValueData();
  GradIndex* di = nullptr;
  float* dv = nullptr;
  if (discarded != nullptr) {
    discarded->ResizeForOverwrite(n - k);
    di = discarded->MutableIndexData();
    dv = discarded->MutableValueData();
  }
  size_t nk = 0;
  size_t nd = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t ab = AbsBits(val[i]);
    if (ab > pivot.abs_bits || (ab == pivot.abs_bits && i <= pivot.position)) {
      ki[nk] = idx[i];
      kv[nk] = val[i];
      ++nk;
    } else if (di != nullptr) {
      di[nd] = idx[i];
      dv[nd] = val[i];
      ++nd;
    }
  }
  SPARDL_DCHECK_EQ(nk, k);
}

void TopKSelector::SelectSparse(const SparseVector& input, size_t k,
                                SparseVector* kept, SparseVector* discarded) {
  kept->Clear();
  if (discarded != nullptr) discarded->Clear();
  if (k >= input.size()) {
    *kept = input;
    return;
  }
  if (k == 0) {
    if (discarded != nullptr) *discarded = input;
    return;
  }
  const Pivot pivot = SparsePivotRadix(input.values(), k);
  EmitSparse(input, k, pivot, kept, discarded);
}

void TopKSelector::SelectSparseWarm(const SparseVector& input, size_t k,
                                    SparseVector* kept,
                                    SparseVector* discarded,
                                    float* warm_threshold) {
  SPARDL_CHECK(warm_threshold != nullptr);
  kept->Clear();
  if (discarded != nullptr) discarded->Clear();
  if (k >= input.size()) {
    // No selection happened, so the threshold carries no new information.
    *kept = input;
    return;
  }
  if (k == 0) {
    if (discarded != nullptr) *discarded = input;
    return;
  }
  const float* val = input.values().data();
  const uint32_t n = static_cast<uint32_t>(input.size());
  const uint32_t tau_bits = AbsBits(*warm_threshold);
  Pivot pivot;
  bool have_pivot = false;
  if (tau_bits != 0) {
    // Threshold scan: everything >= tau strictly outranks everything below
    // it, so whenever at least k entries survive, the true top-k is a
    // subset of the survivors and the pivot search can run on them alone.
    size_t c = 0;
    for (uint32_t i = 0; i < n; ++i) {
      c += (AbsBits(val[i]) >= tau_bits) ? 1 : 0;
    }
    if (c >= k) {
      bucket_scratch_.clear();
      bucket_scratch_.reserve(c);
      for (uint32_t i = 0; i < n; ++i) {
        const uint32_t ab = AbsBits(val[i]);
        if (ab >= tau_bits) bucket_scratch_.push_back({ab, i});
      }
      pivot = PivotFromCandidates(k);
      have_pivot = true;
    }
  }
  if (!have_pivot) {
    // Cold start, or the data drifted below the old threshold: exact path.
    pivot = SparsePivotRadix(input.values(), k);
  }
  *warm_threshold = std::bit_cast<float>(pivot.abs_bits);
  EmitSparse(input, k, pivot, kept, discarded);
}

void TopKSelector::SelectDense(std::span<const float> dense,
                               GradIndex base_index, size_t k,
                               SparseVector* kept, SparseVector* discarded) {
  kept->Clear();
  if (discarded != nullptr) discarded->Clear();
  const float* val = dense.data();
  const uint32_t n = static_cast<uint32_t>(dense.size());
  std::fill(std::begin(counts_), std::end(counts_), 0);
  size_t nnz = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t ab = AbsBits(val[i]);
    if (ab == 0) continue;  // +-0 carries no information
    ++counts_[ExponentBucket(ab)];
    ++nnz;
  }
  if (k >= nnz || k == 0) {
    // Keep (or discard) every non-zero; no pivot needed.
    SparseVector* all = (k == 0) ? discarded : kept;
    if (all == nullptr) return;
    all->ResizeForOverwrite(nnz);
    GradIndex* oi = all->MutableIndexData();
    float* ov = all->MutableValueData();
    size_t m = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (val[i] != 0.0f) {
        oi[m] = base_index + i;
        ov[m] = val[i];
        ++m;
      }
    }
    return;
  }
  size_t above;
  const size_t bucket = BoundaryBucket(counts_, k, &above);
  bucket_scratch_.clear();
  bucket_scratch_.reserve(counts_[bucket]);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t ab = AbsBits(val[i]);
    if (ab != 0 && ExponentBucket(ab) == bucket) {
      bucket_scratch_.push_back({ab, i});
    }
  }
  const Pivot pivot = PivotFromCandidates(k - above);
  kept->ResizeForOverwrite(k);
  GradIndex* ki = kept->MutableIndexData();
  float* kv = kept->MutableValueData();
  GradIndex* di = nullptr;
  float* dv = nullptr;
  if (discarded != nullptr) {
    discarded->ResizeForOverwrite(nnz - k);
    di = discarded->MutableIndexData();
    dv = discarded->MutableValueData();
  }
  size_t nk = 0;
  size_t nd = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t ab = AbsBits(val[i]);
    if (ab == 0) continue;
    if (ab > pivot.abs_bits || (ab == pivot.abs_bits && i <= pivot.position)) {
      ki[nk] = base_index + i;
      kv[nk] = val[i];
      ++nk;
    } else if (di != nullptr) {
      di[nd] = base_index + i;
      dv[nd] = val[i];
      ++nd;
    }
  }
  SPARDL_DCHECK_EQ(nk, k);
}

void TopKSparse(const SparseVector& input, size_t k, SparseVector* kept,
                SparseVector* discarded) {
  TopKSelector selector;
  selector.SelectSparse(input, k, kept, discarded);
}

void TopKDense(std::span<const float> dense, GradIndex base_index, size_t k,
               SparseVector* kept, SparseVector* discarded) {
  TopKSelector selector;
  selector.SelectDense(dense, base_index, k, kept, discarded);
}

size_t ThresholdSelect(const SparseVector& input, float threshold,
                       SparseVector* kept, SparseVector* discarded) {
  kept->Clear();
  if (discarded != nullptr) discarded->Clear();
  for (size_t i = 0; i < input.size(); ++i) {
    if (std::fabs(input.value(i)) >= threshold) {
      kept->PushBack(input.index(i), input.value(i));
    } else if (discarded != nullptr) {
      discarded->PushBack(input.index(i), input.value(i));
    }
  }
  return kept->size();
}

namespace {

// Shared radix-select order statistic: histogram the exponent byte of the
// non-zero |values|, then refine only the boundary bucket. `scratch` holds
// that bucket (a vector<float>, so callers can reuse one buffer across
// calls without knowing the kernel's internals).
float KthLargestAbsImpl(const float* val, size_t n, size_t k,
                        std::vector<float>* scratch) {
  if (k == 0) return 0.0f;
  size_t counts[256] = {};
  size_t nnz = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t ab = AbsBits(val[i]);
    if (ab == 0) continue;
    ++counts[ExponentBucket(ab)];
    ++nnz;
  }
  if (k > nnz) return 0.0f;
  size_t above;
  const size_t bucket = BoundaryBucket(counts, k, &above);
  scratch->clear();
  scratch->reserve(counts[bucket]);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t ab = AbsBits(val[i]);
    if (ab != 0 && ExponentBucket(ab) == bucket) {
      scratch->push_back(std::bit_cast<float>(ab));
    }
  }
  const size_t need = k - above;
  std::nth_element(scratch->begin(),
                   scratch->begin() + static_cast<ptrdiff_t>(need - 1),
                   scratch->end(), std::greater<float>());
  return (*scratch)[need - 1];
}

}  // namespace

float KthLargestAbs(std::span<const float> dense, size_t k) {
  std::vector<float> scratch;
  return KthLargestAbsImpl(dense.data(), dense.size(), k, &scratch);
}

float KthLargestAbs(std::span<const float> dense, size_t k,
                    std::vector<float>* scratch) {
  return KthLargestAbsImpl(dense.data(), dense.size(), k, scratch);
}

float KthLargestAbs(const SparseVector& input, size_t k,
                    std::vector<float>* scratch) {
  return KthLargestAbsImpl(input.values().data(), input.size(), k, scratch);
}

}  // namespace spardl
