#ifndef SPARDL_SPARSE_SPARSE_VECTOR_H_
#define SPARDL_SPARSE_SPARSE_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace spardl {

class TopKSelector;

/// Index into a flattened gradient vector.
///
/// 32-bit: the largest model in the paper (BERT, 133.5M parameters) fits
/// comfortably, and a sparse entry packs to exactly 8 bytes = two 4-byte
/// "gradient words", matching the paper's bandwidth accounting where a
/// sparse gradient costs 2 words (index + value).
using GradIndex = uint32_t;

/// A sparse gradient in coordinate (COO) format.
///
/// Invariants: indices are strictly ascending (sorted, unique). All SparDL
/// and baseline communication operates on these; keeping them sorted makes
/// merge-summation a linear k-way merge and makes results independent
/// of message arrival order (required for synchronous-SGD consistency).
///
/// Storage is struct-of-arrays for cache-friendly scans.
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds from parallel arrays. CHECK-fails if not strictly ascending.
  SparseVector(std::vector<GradIndex> indices, std::vector<float> values);

  /// Extracts all non-zeros of `dense`, offset by `base_index`.
  static SparseVector FromDense(std::span<const float> dense,
                                GradIndex base_index = 0);

  size_t size() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }

  std::span<const GradIndex> indices() const { return indices_; }
  std::span<const float> values() const { return values_; }

  GradIndex index(size_t i) const { return indices_[i]; }
  float value(size_t i) const { return values_[i]; }

  void Clear() {
    indices_.clear();
    values_.clear();
  }
  void Reserve(size_t n) {
    indices_.reserve(n);
    values_.reserve(n);
  }

  /// Appends an entry; index must exceed the current last index.
  void PushBack(GradIndex index, float value) {
    SPARDL_DCHECK(indices_.empty() || index > indices_.back());
    indices_.push_back(index);
    values_.push_back(value);
  }

  /// Bulk append of parallel spans whose indices are strictly ascending and
  /// all above the current last index. One O(1) boundary CHECK covers the
  /// whole span (the span's internal order is DCHECK-verified in debug
  /// builds), so hot paths pay one comparison instead of a per-entry check.
  void AppendSpan(std::span<const GradIndex> indices,
                  std::span<const float> values);

  /// Number of 4-byte words this vector occupies on the wire (2 per entry).
  size_t WireWords() const { return 2 * size(); }

  /// Sum of raw (signed) values. Used by mass-conservation tests.
  double ValueSum() const;

  /// Sum of |value|.
  double AbsSum() const;

  /// True if every index lies in [lo, hi).
  bool IndicesWithin(GradIndex lo, GradIndex hi) const;

  /// Adds `value` at `index` into `dense` for every entry
  /// (dense[index] += value). Indices must be < dense.size().
  void AddToDense(std::span<float> dense) const;

  /// Writes values into `dense` (dense[index] = value), without clearing
  /// other positions.
  void ScatterToDense(std::span<float> dense) const;

  /// Entries with index in [lo, hi), appended to `out` (which must currently
  /// end below `lo` or be empty).
  void ExtractRange(GradIndex lo, GradIndex hi, SparseVector* out) const;

  bool operator==(const SparseVector& other) const {
    return indices_ == other.indices_ && values_ == other.values_;
  }

 private:
  // Kernel backdoor for the merge/selection kernels: size the arrays
  // without ordering enforcement, then fill entries through the raw data
  // pointers in strictly ascending index order. Private + friended so the
  // sorted-unique invariant stays encapsulated. Note vector::resize still
  // value-initializes grown elements (std::vector offers no uninitialized
  // resize), so growth costs one streaming zero-fill of the new tail; the
  // measured kernel speedups include that cost.
  void ResizeForOverwrite(size_t n) {
    indices_.resize(n);
    values_.resize(n);
  }
  GradIndex* MutableIndexData() { return indices_.data(); }
  float* MutableValueData() { return values_.data(); }

  friend class TopKSelector;
  friend void MergeSum(const SparseVector& a, const SparseVector& b,
                       SparseVector* out);
  friend SparseVector SumAll(std::span<const SparseVector> inputs);

  std::vector<GradIndex> indices_;
  std::vector<float> values_;
};

/// out = a + b (index-wise union; overlapping indices sum their values).
/// Deterministic: the result depends only on the operand *values*, not on
/// execution order. `out` may not alias `a` or `b`.
void MergeSum(const SparseVector& a, const SparseVector& b, SparseVector* out);

/// acc += x, via MergeSum into a scratch vector that is swapped back.
/// Reuses `scratch`'s capacity across calls.
void MergeSumInPlace(SparseVector* acc, const SparseVector& x,
                     SparseVector* scratch);

/// Sums a list of sparse vectors. Bit-identical to pairwise left-to-right
/// MergeSum accumulation (overlapping indices add their values in input
/// order), but runs as a single O(total * log P) loser-tree k-way merge —
/// or, when the index span is small relative to the total nnz, through a
/// dense accumulator with first-touch assignment.
SparseVector SumAll(std::span<const SparseVector> inputs);

/// Concatenates vectors whose index ranges are disjoint and ascending in
/// the given order. CHECK-fails if ranges interleave.
SparseVector ConcatDisjoint(std::span<const SparseVector> parts);

}  // namespace spardl

#endif  // SPARDL_SPARSE_SPARSE_VECTOR_H_
