#ifndef SPARDL_SPARSE_TOPK_H_
#define SPARDL_SPARSE_TOPK_H_

#include <cstddef>
#include <span>

#include "sparse/sparse_vector.h"

namespace spardl {

/// Top-k selection by absolute value, the primitive behind every
/// sparsification step in SparDL and the baselines.
///
/// Selection is deterministic: ties on |value| are broken toward the lower
/// index, so every worker running the same selection on identical data keeps
/// exactly the same entries (required for gradient consistency).
///
/// Uses quickselect (std::nth_element), matching the paper's
/// "Quicksort-based" O(m) selection cost analysis. The class holds scratch
/// buffers so repeated calls on the hot path do not allocate.
class TopKSelector {
 public:
  TopKSelector() = default;

  /// Keeps the k largest-|value| entries of `input` in `kept` (sorted by
  /// index). If `discarded` is non-null, the remaining entries land there
  /// (also sorted). If k >= input.size(), everything is kept.
  void SelectSparse(const SparseVector& input, size_t k, SparseVector* kept,
                    SparseVector* discarded);

  /// Same selection over a dense block; produced indices are offset by
  /// `base_index`. Zeros are never selected (they carry no information) but
  /// are also never reported as discarded.
  void SelectDense(std::span<const float> dense, GradIndex base_index,
                   size_t k, SparseVector* kept, SparseVector* discarded);

 private:
  struct Candidate {
    float abs_value;
    uint32_t position;  // within the input
  };

  // Fills scratch_ from abs values, runs quickselect for k, leaves the
  // winning positions in positions_kept_ (sorted ascending).
  void RankCandidates(size_t k);

  std::vector<Candidate> scratch_;
  std::vector<uint32_t> positions_kept_;
};

/// One-shot convenience wrappers (allocate internally).
void TopKSparse(const SparseVector& input, size_t k, SparseVector* kept,
                SparseVector* discarded = nullptr);
void TopKDense(std::span<const float> dense, GradIndex base_index, size_t k,
               SparseVector* kept, SparseVector* discarded = nullptr);

/// Selects every entry with |value| >= threshold (Ok-Topk style pruning).
/// Returns the number kept; discards go to `discarded` when non-null.
size_t ThresholdSelect(const SparseVector& input, float threshold,
                       SparseVector* kept, SparseVector* discarded = nullptr);

/// |value| of the k-th largest-|value| element of `dense` (1-based k).
/// Returns 0 when k exceeds the number of non-zeros.
float KthLargestAbs(std::span<const float> dense, size_t k);

}  // namespace spardl

#endif  // SPARDL_SPARSE_TOPK_H_
