#ifndef SPARDL_SPARSE_TOPK_H_
#define SPARDL_SPARSE_TOPK_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/sparse_vector.h"

namespace spardl {

/// Top-k selection by absolute value, the primitive behind every
/// sparsification step in SparDL and the baselines.
///
/// Selection is deterministic: ties on |value| are broken toward the lower
/// index, so every worker running the same selection on identical data keeps
/// exactly the same entries (required for gradient consistency).
///
/// Algorithm: radix-select. One pass histograms the IEEE-754 exponent byte
/// of |value| into 256 buckets; the cumulative count (from the largest
/// exponent down) locates the boundary bucket, and only that bucket's
/// elements (typically a small fraction of the input) are refined with
/// std::nth_element to find the exact k-th element — the *pivot* — under
/// the (|value| desc, position asc) total order. Because the order is
/// total, membership in the kept set is a single O(1) comparison against
/// the pivot, so kept and discarded are emitted in one index-ordered sweep:
/// no per-element candidate materialisation and no position re-sort. The
/// kept sets are bit-identical to the previous full-nth_element selector
/// (property-tested against it). Magnitudes are compared as the unsigned
/// abs bit patterns, which orders all finite floats — denormals included —
/// exactly like the float compare. NaNs are unsupported (as before: the
/// old comparator was not a valid ordering under NaN either).
///
/// The class holds scratch buffers so repeated calls do not allocate.
class TopKSelector {
 public:
  TopKSelector() = default;

  /// Keeps the k largest-|value| entries of `input` in `kept` (sorted by
  /// index). If `discarded` is non-null, the remaining entries land there
  /// (also sorted). If k >= input.size(), everything is kept.
  void SelectSparse(const SparseVector& input, size_t k, SparseVector* kept,
                    SparseVector* discarded);

  /// SelectSparse with a warm-started threshold, for call sites that
  /// repeatedly re-select from slowly drifting data (SRS re-sparsifies the
  /// same blocks every step with a slowly moving k-th magnitude).
  /// `*warm_threshold` (0 = cold start) prunes the candidate set to the
  /// entries with |value| >= threshold in one cheap counting scan; when the
  /// pruned count misses k the selector falls back to the exact radix path.
  /// The result is bit-identical to SelectSparse for ANY threshold value.
  /// When a selection actually happens (0 < k < input.size()),
  /// `*warm_threshold` holds this selection's k-th |value| on return; the
  /// keep-all / discard-all early-outs leave it untouched.
  void SelectSparseWarm(const SparseVector& input, size_t k,
                        SparseVector* kept, SparseVector* discarded,
                        float* warm_threshold);

  /// Same selection over a dense block; produced indices are offset by
  /// `base_index`. Zeros are never selected (they carry no information) but
  /// are also never reported as discarded.
  void SelectDense(std::span<const float> dense, GradIndex base_index,
                   size_t k, SparseVector* kept, SparseVector* discarded);

 private:
  // The k-th element under the (abs desc, position asc) total order, as
  // (abs bit pattern, input position). An element (a, p) is kept iff
  // a > abs_bits, or a == abs_bits and p <= position.
  struct Pivot {
    uint32_t abs_bits;
    uint32_t position;
  };
  struct Candidate {
    uint32_t abs_bits;
    uint32_t position;
  };

  // Exact pivot via exponent histogram + boundary-bucket refinement over a
  // sparse value array (zeros are candidates, matching SelectSparse).
  // Requires 0 < k < values.size().
  Pivot SparsePivotRadix(std::span<const float> values, size_t k);

  // Exact k-th candidate among bucket_scratch_, which must hold a superset
  // of the true top-k; requires 0 < k <= bucket_scratch_.size().
  Pivot PivotFromCandidates(size_t k);

  // One index-ordered sweep emitting kept (exactly k entries) and, when
  // non-null, discarded (the rest) by O(1) pivot comparison.
  void EmitSparse(const SparseVector& input, size_t k, Pivot pivot,
                  SparseVector* kept, SparseVector* discarded);

  size_t counts_[256];
  std::vector<Candidate> bucket_scratch_;
};

/// One-shot convenience wrappers (allocate internally).
void TopKSparse(const SparseVector& input, size_t k, SparseVector* kept,
                SparseVector* discarded = nullptr);
void TopKDense(std::span<const float> dense, GradIndex base_index, size_t k,
               SparseVector* kept, SparseVector* discarded = nullptr);

/// Selects every entry with |value| >= threshold (Ok-Topk style pruning).
/// Returns the number kept; discards go to `discarded` when non-null.
size_t ThresholdSelect(const SparseVector& input, float threshold,
                       SparseVector* kept, SparseVector* discarded = nullptr);

/// |value| of the k-th largest-|value| non-zero element of `dense`
/// (1-based k). Returns 0 when k exceeds the number of non-zeros. Uses the
/// same radix-select as TopKSelector (histogram + boundary-bucket refine).
float KthLargestAbs(std::span<const float> dense, size_t k);

/// Scratch-reusing overload: `scratch` holds the boundary bucket between
/// calls so the hot path does not reallocate.
float KthLargestAbs(std::span<const float> dense, size_t k,
                    std::vector<float>* scratch);

/// The same order statistic over a sparse vector's values (zero-valued
/// entries excluded, like the dense overload). Shared selection kernel for
/// the baselines' threshold calibration (Ok-Topk).
float KthLargestAbs(const SparseVector& input, size_t k,
                    std::vector<float>* scratch);

}  // namespace spardl

#endif  // SPARDL_SPARSE_TOPK_H_
