#include "sparse/block_partition.h"

#include <algorithm>

namespace spardl {

BlockPartition::BlockPartition(size_t n, int num_blocks)
    : n_(n), num_blocks_(num_blocks) {
  SPARDL_CHECK_GT(n, 0u);
  SPARDL_CHECK_GT(num_blocks, 0);
  width_ = (n + static_cast<size_t>(num_blocks) - 1) /
           static_cast<size_t>(num_blocks);
}

size_t BlockPartition::PerBlockBudget(size_t k) const {
  const size_t per_block =
      (k + static_cast<size_t>(num_blocks_) - 1) /
      static_cast<size_t>(num_blocks_);
  return std::max<size_t>(1, per_block);
}

int SrsBagLayout::NumSteps(int num_workers) {
  SPARDL_CHECK_GE(num_workers, 1);
  int steps = 0;
  while ((1 << steps) < num_workers) ++steps;
  return steps;
}

SrsBagLayout::SrsBagLayout(int num_workers, int rank)
    : num_workers_(num_workers),
      rank_(rank),
      num_steps_(NumSteps(num_workers)) {
  SPARDL_CHECK_GE(rank, 0);
  SPARDL_CHECK_LT(rank, num_workers);
  bags_.resize(static_cast<size_t>(num_steps_) + 1);
  bags_[0].push_back(rank_);
  // Walk the circle: offset j from the rank lands in bag floor(log2 j) + 1.
  int bag = 1;
  int bag_capacity = 1;  // 2^(bag-1)
  int in_bag = 0;
  for (int j = 1; j < num_workers_; ++j) {
    if (in_bag == bag_capacity) {
      ++bag;
      bag_capacity <<= 1;
      in_bag = 0;
    }
    bags_[static_cast<size_t>(bag)].push_back((rank_ + j) % num_workers_);
    ++in_bag;
  }
}

std::vector<int> SrsBagLayout::HeldBlocksBeforeStep(int step) const {
  SPARDL_CHECK_GE(step, 1);
  // Sent so far: bags l, l-1, ..., l-step+2  (steps 1..step-1).
  std::vector<bool> sent(static_cast<size_t>(num_workers_), false);
  for (int s = 1; s < step; ++s) {
    for (int block : bags_[static_cast<size_t>(BagForStep(s))]) {
      sent[static_cast<size_t>(block)] = true;
    }
  }
  std::vector<int> held;
  for (int b = 0; b < num_workers_; ++b) {
    if (!sent[static_cast<size_t>(b)]) held.push_back(b);
  }
  return held;
}

}  // namespace spardl
