#include "sparse/sparse_vector.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

namespace spardl {

SparseVector::SparseVector(std::vector<GradIndex> indices,
                           std::vector<float> values)
    : indices_(std::move(indices)), values_(std::move(values)) {
  SPARDL_CHECK_EQ(indices_.size(), values_.size());
  for (size_t i = 1; i < indices_.size(); ++i) {
    SPARDL_CHECK_LT(indices_[i - 1], indices_[i])
        << "SparseVector indices must be strictly ascending";
  }
}

SparseVector SparseVector::FromDense(std::span<const float> dense,
                                     GradIndex base_index) {
  // Count first so the arrays are sized exactly once (gradients are built
  // from dense blocks every iteration; growth reallocations were measurable
  // churn on the hot path).
  size_t nnz = 0;
  for (float v : dense) nnz += (v != 0.0f);
  SparseVector out;
  out.Reserve(nnz);
  for (size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0f) {
      out.PushBack(base_index + static_cast<GradIndex>(i), dense[i]);
    }
  }
  return out;
}

void SparseVector::AppendSpan(std::span<const GradIndex> indices,
                              std::span<const float> values) {
  SPARDL_CHECK_EQ(indices.size(), values.size());
  if (indices.empty()) return;
  SPARDL_CHECK(indices_.empty() || indices.front() > indices_.back())
      << "AppendSpan must start above the current last index";
  for (size_t i = 1; i < indices.size(); ++i) {
    SPARDL_DCHECK_LT(indices[i - 1], indices[i]);
  }
  indices_.insert(indices_.end(), indices.begin(), indices.end());
  values_.insert(values_.end(), values.begin(), values.end());
}

double SparseVector::ValueSum() const {
  double s = 0.0;
  for (float v : values_) s += v;
  return s;
}

double SparseVector::AbsSum() const {
  double s = 0.0;
  for (float v : values_) s += std::fabs(v);
  return s;
}

bool SparseVector::IndicesWithin(GradIndex lo, GradIndex hi) const {
  if (empty()) return true;
  return indices_.front() >= lo && indices_.back() < hi;
}

void SparseVector::AddToDense(std::span<float> dense) const {
  // Indices are strictly ascending (class invariant — enforced by a CHECK
  // in the constructor; PushBack enforces it with a DCHECK only, so the
  // guarantee is debug-verified on incrementally built vectors), so one
  // O(1) CHECK on the last index bounds-checks every write and survives
  // NDEBUG at every call site — residual absorption and dense
  // materialisation both scribble into caller-owned buffers, where a
  // silent overflow is far worse than one comparison per call. The
  // per-entry DCHECK stays for debug builds.
  if (!indices_.empty()) SPARDL_CHECK_LT(indices_.back(), dense.size());
  for (size_t i = 0; i < indices_.size(); ++i) {
    SPARDL_DCHECK_LT(indices_[i], dense.size());
    dense[indices_[i]] += values_[i];
  }
}

void SparseVector::ScatterToDense(std::span<float> dense) const {
  // Same O(1) boundary CHECK as AddToDense (see the rationale there).
  if (!indices_.empty()) SPARDL_CHECK_LT(indices_.back(), dense.size());
  for (size_t i = 0; i < indices_.size(); ++i) {
    SPARDL_DCHECK_LT(indices_[i], dense.size());
    dense[indices_[i]] = values_[i];
  }
}

void SparseVector::ExtractRange(GradIndex lo, GradIndex hi,
                                SparseVector* out) const {
  const auto begin =
      std::lower_bound(indices_.begin(), indices_.end(), lo);
  const auto end = std::lower_bound(begin, indices_.end(), hi);
  const size_t from = static_cast<size_t>(begin - indices_.begin());
  const size_t count = static_cast<size_t>(end - begin);
  out->AppendSpan(std::span<const GradIndex>(indices_.data() + from, count),
                  std::span<const float>(values_.data() + from, count));
}

void MergeSum(const SparseVector& a, const SparseVector& b,
              SparseVector* out) {
  SPARDL_DCHECK(out != &a && out != &b);
  const size_t na = a.size();
  const size_t nb = b.size();
  out->ResizeForOverwrite(na + nb);
  const GradIndex* ai = a.indices_.data();
  const float* av = a.values_.data();
  const GradIndex* bi = b.indices_.data();
  const float* bv = b.values_.data();
  GradIndex* oi = out->MutableIndexData();
  float* ov = out->MutableValueData();
  size_t i = 0;
  size_t j = 0;
  size_t n = 0;
  // Raw-pointer merge, sized up front so the inner loop is two stores per
  // emitted entry with no capacity checks. The overlap case keeps its
  // branch — it is rare and well-predicted on sparse-gradient supports —
  // but the "which side advances" decision is 50/50 on interleaved inputs,
  // where a branch mispredicts constantly; it is computed as a bit mask
  // instead, so the index/value selects and cursor bumps are pure ALU ops.
  while (i < na && j < nb) {
    const GradIndex ia = ai[i];
    const GradIndex ib = bi[j];
    if (ia == ib) [[unlikely]] {
      oi[n] = ia;
      ov[n] = av[i] + bv[j];
      ++n;
      ++i;
      ++j;
      continue;
    }
    const bool take_a = ia < ib;
    const uint32_t mask = -static_cast<uint32_t>(take_a);
    oi[n] = (ia & mask) | (ib & ~mask);
    uint32_t va_bits;
    uint32_t vb_bits;
    std::memcpy(&va_bits, &av[i], sizeof(va_bits));
    std::memcpy(&vb_bits, &bv[j], sizeof(vb_bits));
    const uint32_t v_bits = (va_bits & mask) | (vb_bits & ~mask);
    std::memcpy(&ov[n], &v_bits, sizeof(v_bits));
    ++n;
    i += static_cast<size_t>(take_a);
    j += static_cast<size_t>(!take_a);
  }
  out->ResizeForOverwrite(n);
  // At most one of the tails is non-empty; bulk-append it (one boundary
  // CHECK per span).
  out->AppendSpan(std::span<const GradIndex>(ai + i, na - i),
                  std::span<const float>(av + i, na - i));
  out->AppendSpan(std::span<const GradIndex>(bi + j, nb - j),
                  std::span<const float>(bv + j, nb - j));
}

void MergeSumInPlace(SparseVector* acc, const SparseVector& x,
                     SparseVector* scratch) {
  MergeSum(*acc, x, scratch);
  std::swap(*acc, *scratch);
}

namespace {

// A read cursor over one SumAll input. The merge key packs (current index,
// input ordinal) so equal indices pop in input order — exactly the
// left-to-right accumulation order of pairwise MergeSum, which keeps the
// float sums bit-identical. Exhausted cursors sort last.
struct MergeCursor {
  const GradIndex* idx;
  const float* val;
  size_t pos;
  size_t size;
};

constexpr uint64_t kCursorExhausted = std::numeric_limits<uint64_t>::max();

uint64_t CursorKey(const MergeCursor& c, uint32_t ordinal) {
  if (c.pos >= c.size) return kCursorExhausted;
  return (static_cast<uint64_t>(c.idx[c.pos]) << 32) | ordinal;
}

// Dense-accumulator path: when the union's index span is comparable to the
// total nnz, a first-touch dense sweep beats the comparison-based merge.
// First touch *assigns* (rather than adding to 0.0f) so -0.0f values and
// exact copies survive bit-identically; later touches accumulate in input
// order, matching pairwise MergeSum. Writes the (index-ordered) union
// through `oi`/`ov`, which must have room for min(span, total) entries;
// returns the emitted count.
size_t SumAllDense(std::span<const MergeCursor> cursors, GradIndex lo,
                   size_t span, GradIndex* oi, float* ov) {
  std::vector<float> acc(span, 0.0f);
  std::vector<uint8_t> present(span, 0);
  for (const MergeCursor& c : cursors) {
    for (size_t p = 0; p < c.size; ++p) {
      const size_t o = static_cast<size_t>(c.idx[p]) - lo;
      if (present[o]) {
        acc[o] += c.val[p];
      } else {
        present[o] = 1;
        acc[o] = c.val[p];
      }
    }
  }
  size_t n = 0;
  for (size_t o = 0; o < span; ++o) {
    if (present[o]) {
      oi[n] = lo + static_cast<GradIndex>(o);
      ov[n] = acc[o];
      ++n;
    }
  }
  return n;
}

// Loser-tree (tournament) k-way merge: O(log P) comparisons per emitted
// entry instead of the O(P^2 * k) copies of repeated two-way merging.
// Writes through `oi`/`ov` (room for `total` entries); returns the count.
size_t SumAllLoserTree(std::span<MergeCursor> cursors, GradIndex* oi,
                       float* ov) {
  const size_t num = cursors.size();
  constexpr uint32_t kNone = std::numeric_limits<uint32_t>::max();
  std::vector<uint64_t> keys(num);
  for (size_t s = 0; s < num; ++s) {
    keys[s] = CursorKey(cursors[s], static_cast<uint32_t>(s));
  }
  // tree[1..num-1] hold the losers of each internal match; leaf s enters at
  // node (s + num) / 2. Initialisation parks the loser of every match and
  // lets winners climb: exactly one contestant emerges past the root.
  std::vector<uint32_t> tree(num, kNone);
  uint32_t winner = 0;
  for (uint32_t s = 0; s < num; ++s) {
    uint32_t cur = s;
    for (size_t t = (s + num) / 2; t >= 1 && cur != kNone; t /= 2) {
      if (tree[t] == kNone) {
        tree[t] = cur;
        cur = kNone;
      } else if (keys[tree[t]] < keys[cur]) {
        std::swap(tree[t], cur);
      }
    }
    if (cur != kNone) winner = cur;
  }

  size_t n = 0;
  while (keys[winner] != kCursorExhausted) {
    MergeCursor& c = cursors[winner];
    const GradIndex idx = c.idx[c.pos];
    const float v = c.val[c.pos];
    if (n > 0 && oi[n - 1] == idx) {
      ov[n - 1] += v;
    } else {
      oi[n] = idx;
      ov[n] = v;
      ++n;
    }
    ++c.pos;
    keys[winner] = CursorKey(c, winner);
    // Replay the matches from this cursor's leaf up to the root.
    uint32_t cur = winner;
    for (size_t t = (static_cast<size_t>(winner) + num) / 2; t >= 1; t /= 2) {
      if (keys[tree[t]] < keys[cur]) std::swap(tree[t], cur);
    }
    winner = cur;
  }
  return n;
}

}  // namespace

SparseVector SumAll(std::span<const SparseVector> inputs) {
  // Collect cursors over the non-empty inputs (empties merge to a no-op);
  // relative order is preserved, which is all the tie-break needs.
  std::vector<MergeCursor> cursors;
  cursors.reserve(inputs.size());
  const SparseVector* first = nullptr;
  const SparseVector* second = nullptr;
  size_t total = 0;
  GradIndex lo = std::numeric_limits<GradIndex>::max();
  GradIndex hi = 0;
  for (const SparseVector& x : inputs) {
    if (x.empty()) continue;
    if (first == nullptr) {
      first = &x;
    } else if (second == nullptr) {
      second = &x;
    }
    cursors.push_back({x.indices().data(), x.values().data(), 0, x.size()});
    total += x.size();
    lo = std::min(lo, x.index(0));
    hi = std::max(hi, x.index(x.size() - 1));
  }
  if (cursors.empty()) return SparseVector();
  if (cursors.size() == 1) {
    SparseVector out;
    out.AppendSpan(first->indices(), first->values());
    return out;
  }
  if (cursors.size() == 2) {
    SparseVector out;
    MergeSum(*first, *second, &out);
    return out;
  }
  SparseVector out;
  const size_t span = static_cast<size_t>(hi) - lo + 1;
  size_t n;
  if (span <= 2 * total) {
    out.ResizeForOverwrite(std::min(span, total));
    n = SumAllDense(cursors, lo, span, out.MutableIndexData(),
                    out.MutableValueData());
  } else {
    out.ResizeForOverwrite(total);
    n = SumAllLoserTree(cursors, out.MutableIndexData(),
                        out.MutableValueData());
  }
  out.ResizeForOverwrite(n);
  return out;
}

SparseVector ConcatDisjoint(std::span<const SparseVector> parts) {
  size_t total = 0;
  for (const SparseVector& p : parts) total += p.size();
  SparseVector out;
  out.Reserve(total);
  for (const SparseVector& p : parts) {
    // AppendSpan's boundary CHECK is exactly the documented interleave
    // check (each part's internal order is already an invariant), and it
    // survives NDEBUG builds where a per-entry DCHECK compiles out.
    out.AppendSpan(p.indices(), p.values());
  }
  return out;
}

}  // namespace spardl
