#include "sparse/sparse_vector.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace spardl {

SparseVector::SparseVector(std::vector<GradIndex> indices,
                           std::vector<float> values)
    : indices_(std::move(indices)), values_(std::move(values)) {
  SPARDL_CHECK_EQ(indices_.size(), values_.size());
  for (size_t i = 1; i < indices_.size(); ++i) {
    SPARDL_CHECK_LT(indices_[i - 1], indices_[i])
        << "SparseVector indices must be strictly ascending";
  }
}

SparseVector SparseVector::FromDense(std::span<const float> dense,
                                     GradIndex base_index) {
  SparseVector out;
  for (size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0f) {
      out.PushBack(base_index + static_cast<GradIndex>(i), dense[i]);
    }
  }
  return out;
}

double SparseVector::ValueSum() const {
  double s = 0.0;
  for (float v : values_) s += v;
  return s;
}

double SparseVector::AbsSum() const {
  double s = 0.0;
  for (float v : values_) s += std::fabs(v);
  return s;
}

bool SparseVector::IndicesWithin(GradIndex lo, GradIndex hi) const {
  if (empty()) return true;
  return indices_.front() >= lo && indices_.back() < hi;
}

void SparseVector::AddToDense(std::span<float> dense) const {
  // Indices are strictly ascending (class invariant — enforced by a CHECK
  // in the constructor; PushBack enforces it with a DCHECK only, so the
  // guarantee is debug-verified on incrementally built vectors), so one
  // O(1) CHECK on the last index bounds-checks every write and survives
  // NDEBUG at every call site — residual absorption and dense
  // materialisation both scribble into caller-owned buffers, where a
  // silent overflow is far worse than one comparison per call. The
  // per-entry DCHECK stays for debug builds.
  if (!indices_.empty()) SPARDL_CHECK_LT(indices_.back(), dense.size());
  for (size_t i = 0; i < indices_.size(); ++i) {
    SPARDL_DCHECK_LT(indices_[i], dense.size());
    dense[indices_[i]] += values_[i];
  }
}

void SparseVector::ScatterToDense(std::span<float> dense) const {
  // Same O(1) boundary CHECK as AddToDense (see the rationale there).
  if (!indices_.empty()) SPARDL_CHECK_LT(indices_.back(), dense.size());
  for (size_t i = 0; i < indices_.size(); ++i) {
    SPARDL_DCHECK_LT(indices_[i], dense.size());
    dense[indices_[i]] = values_[i];
  }
}

void SparseVector::ExtractRange(GradIndex lo, GradIndex hi,
                                SparseVector* out) const {
  const auto begin =
      std::lower_bound(indices_.begin(), indices_.end(), lo);
  const auto end = std::lower_bound(begin, indices_.end(), hi);
  const size_t from = static_cast<size_t>(begin - indices_.begin());
  const size_t count = static_cast<size_t>(end - begin);
  for (size_t i = 0; i < count; ++i) {
    out->PushBack(indices_[from + i], values_[from + i]);
  }
}

void MergeSum(const SparseVector& a, const SparseVector& b,
              SparseVector* out) {
  SPARDL_DCHECK(out != &a && out != &b);
  out->Clear();
  out->Reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const GradIndex ia = a.index(i);
    const GradIndex ib = b.index(j);
    if (ia < ib) {
      out->PushBack(ia, a.value(i));
      ++i;
    } else if (ib < ia) {
      out->PushBack(ib, b.value(j));
      ++j;
    } else {
      out->PushBack(ia, a.value(i) + b.value(j));
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) out->PushBack(a.index(i), a.value(i));
  for (; j < b.size(); ++j) out->PushBack(b.index(j), b.value(j));
}

void MergeSumInPlace(SparseVector* acc, const SparseVector& x,
                     SparseVector* scratch) {
  MergeSum(*acc, x, scratch);
  std::swap(*acc, *scratch);
}

SparseVector SumAll(std::span<const SparseVector> inputs) {
  SparseVector acc;
  SparseVector scratch;
  for (const SparseVector& x : inputs) {
    MergeSumInPlace(&acc, x, &scratch);
  }
  return acc;
}

SparseVector ConcatDisjoint(std::span<const SparseVector> parts) {
  size_t total = 0;
  for (const SparseVector& p : parts) total += p.size();
  SparseVector out;
  out.Reserve(total);
  for (const SparseVector& p : parts) {
    if (p.empty()) continue;
    // One boundary CHECK per part (each part's internal order is already an
    // invariant), so the documented interleave check survives NDEBUG builds
    // where PushBack's per-entry DCHECK compiles out.
    SPARDL_CHECK(out.empty() || p.index(0) > out.index(out.size() - 1))
        << "ConcatDisjoint parts must cover ascending disjoint ranges";
    for (size_t i = 0; i < p.size(); ++i) {
      out.PushBack(p.index(i), p.value(i));
    }
  }
  return out;
}

}  // namespace spardl
