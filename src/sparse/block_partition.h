#ifndef SPARDL_SPARSE_BLOCK_PARTITION_H_
#define SPARDL_SPARSE_BLOCK_PARTITION_H_

#include <cstddef>
#include <vector>

#include "sparse/sparse_vector.h"

namespace spardl {

/// Partition of a flat gradient of `n` elements into `num_blocks` contiguous
/// blocks of equal width ceil(n / num_blocks); the final block may be short
/// (or empty when n < num_blocks). Uniform width keeps the index->block map
/// a single division, which every algorithm here uses on the hot path.
class BlockPartition {
 public:
  BlockPartition(size_t n, int num_blocks);

  size_t n() const { return n_; }
  int num_blocks() const { return num_blocks_; }
  size_t block_width() const { return width_; }

  GradIndex BlockStart(int block) const {
    const size_t start = static_cast<size_t>(block) * width_;
    return static_cast<GradIndex>(start < n_ ? start : n_);
  }
  GradIndex BlockEnd(int block) const { return BlockStart(block + 1); }
  size_t BlockSize(int block) const {
    return static_cast<size_t>(BlockEnd(block) - BlockStart(block));
  }

  int BlockOf(GradIndex index) const {
    SPARDL_DCHECK_LT(static_cast<size_t>(index), n_);
    return static_cast<int>(index / width_);
  }

  /// Per-block sparsification budget for a global budget of k entries:
  /// ceil(k / num_blocks), at least 1. The paper's "top-k/P per block".
  size_t PerBlockBudget(size_t k) const;

 private:
  size_t n_;
  int num_blocks_;
  size_t width_;
};

/// The Spar-Reduce-Scatter bag layout for one worker (paper §III-B).
///
/// Worker w's P blocks are arranged on a circle starting at block w. Block w
/// itself forms the preservation bag B0. Sending bag Bi (1 <= i <= l,
/// l = ceil(log2 P)) holds the next 2^(i-1) blocks — w+2^(i-1) .. w+2^i-1
/// (mod P) — except the last bag, which holds only the E = P - 2^(l-1)
/// remaining blocks. Transmission step s (1-based) sends bag B_{l-s+1} to
/// worker w + 2^(l-s) and receives the matching bag from worker w - 2^(l-s).
class SrsBagLayout {
 public:
  /// Builds the layout for `rank` in a group of `num_workers` (>= 1).
  SrsBagLayout(int num_workers, int rank);

  /// l = ceil(log2 P); the number of transmission steps (0 when P == 1).
  static int NumSteps(int num_workers);

  int num_workers() const { return num_workers_; }
  int rank() const { return rank_; }
  int num_steps() const { return num_steps_; }

  /// Block ranks in bag `bag` (0 = preservation). Circular order.
  const std::vector<int>& Bag(int bag) const {
    SPARDL_DCHECK_LE(static_cast<size_t>(bag), bags_.size() - 1);
    return bags_[bag];
  }

  /// The bag sent at transmission step `step` in [1, num_steps].
  int BagForStep(int step) const { return num_steps_ - step + 1; }

  /// Communication distance at `step`: 2^(l-step).
  int StepDistance(int step) const { return 1 << (num_steps_ - step); }

  /// Target worker at `step`: rank + distance (mod P).
  int SendPeer(int step) const {
    return (rank_ + StepDistance(step)) % num_workers_;
  }

  /// Source worker at `step`: rank - distance (mod P).
  int RecvPeer(int step) const {
    return (rank_ - StepDistance(step) % num_workers_ + num_workers_) %
           num_workers_;
  }

  /// Block ranks still held by this worker just before `step` (1-based;
  /// step = num_steps + 1 gives the final held set, i.e. {rank}).
  /// Held = all blocks minus bags already sent at steps < step.
  std::vector<int> HeldBlocksBeforeStep(int step) const;

 private:
  int num_workers_;
  int rank_;
  int num_steps_;
  std::vector<std::vector<int>> bags_;
};

}  // namespace spardl

#endif  // SPARDL_SPARSE_BLOCK_PARTITION_H_
