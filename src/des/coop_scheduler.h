#ifndef SPARDL_DES_COOP_SCHEDULER_H_
#define SPARDL_DES_COOP_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "des/fiber.h"

namespace spardl {

class EventEngine;

/// The cooperative execution backend: P SPMD workers as stackful fibers
/// multiplexed on the *calling* OS thread, replacing thread-per-worker
/// execution for large clusters (P = 1024–4096 on one machine).
///
/// Scheduling model. Workers run in rank order; a worker keeps the
/// carrier thread until it blocks (`Wait`) or finishes. When no worker
/// is runnable the scheduler (1) wakes every waiter whose predicate now
/// holds, in rank order, and otherwise (2) pumps the event engine until
/// a resolution readies some waiter. If neither helps, the SPMD program
/// is deadlocked and the scheduler aborts immediately with every
/// waiter's diagnostic — the cooperative analogue of the thread
/// backend's wall-clock watchdog, minus the 120 s wait.
///
/// Determinism. The carrier is one OS thread, so the interleaving is a
/// pure function of the SPMD program: no wall-clock or scheduler
/// dependence anywhere. Simulated results are identical to the thread
/// backend's because blocking points and the engine's `(time, key)`
/// event order are unchanged — only who runs between them differs.
///
/// Locking contract. Fibers share the carrier thread, so a mutex
/// acquired by one fiber and held across a `Wait` would self-deadlock
/// the next fiber: callers must release every lock before waiting
/// (`Network`'s wait sites unlock, `Wait`, relock). That same
/// single-thread property is what lets the scheduler evaluate wake
/// predicates without taking the locks that guard their state.
class CoopScheduler {
 public:
  CoopScheduler();
  ~CoopScheduler();

  CoopScheduler(const CoopScheduler&) = delete;
  CoopScheduler& operator=(const CoopScheduler&) = delete;

  /// Runs `body(rank)` for every rank in [0, num_workers) to
  /// completion on fibers. `engine` is the fabric's event engine, or
  /// null on busy-until fabrics (nothing to pump; waiters are only
  /// released by other workers' actions). Not reentrant.
  void Run(int num_workers, EventEngine* engine,
           const std::function<void(int)>& body);

  /// From inside a worker fiber: cooperatively blocks until `pred()`
  /// returns true. `describe` is only invoked for the deadlock
  /// diagnostic. The caller must hold no locks (see the class comment);
  /// both references must stay valid across the wait (they live in the
  /// caller's suspended frame).
  void Wait(const std::function<bool()>& pred,
            const std::function<std::string()>& describe);

  /// The scheduler driving the calling thread's current fiber, or null
  /// on a plain OS thread — the branch every blocking site takes
  /// between cooperative yield and condition-variable wait.
  static CoopScheduler* Current();

 private:
  enum class State : uint8_t { kRunnable, kWaiting, kDone };

  struct WorkerSlot {
    std::unique_ptr<Fiber> fiber;
    State state = State::kRunnable;
    /// Valid while kWaiting; they point into the fiber's suspended
    /// `Wait` frame.
    const std::function<bool()>* pred = nullptr;
    const std::function<std::string()>* describe = nullptr;
  };

  /// Moves every waiter whose predicate holds to runnable (rank order).
  /// Returns true if any worker woke.
  bool WakeReadyWaiters();

  /// Pumps engine events until some waiter's predicate holds (or the
  /// queue drains). Returns true if a waiter is now runnable.
  bool PumpEngine();

  [[noreturn]] void DiagnoseDeadlock();

  std::vector<WorkerSlot> slots_;
  EventEngine* engine_ = nullptr;
  int current_ = -1;  // rank of the running fiber, -1 in the scheduler
};

}  // namespace spardl

#endif  // SPARDL_DES_COOP_SCHEDULER_H_
