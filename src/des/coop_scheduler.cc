#include "des/coop_scheduler.h"

#include <mutex>

#include "common/logging.h"
#include "des/event_engine.h"

namespace spardl {

namespace {

/// The scheduler whose fiber is running on this OS thread (null on a
/// plain thread). One level only: schedulers do not nest.
thread_local CoopScheduler* g_current_scheduler = nullptr;

}  // namespace

CoopScheduler::CoopScheduler() = default;
CoopScheduler::~CoopScheduler() = default;

CoopScheduler* CoopScheduler::Current() { return g_current_scheduler; }

void CoopScheduler::Run(int num_workers, EventEngine* engine,
                        const std::function<void(int)>& body) {
  SPARDL_CHECK(g_current_scheduler == nullptr)
      << "nested CoopScheduler::Run";
  SPARDL_CHECK_GE(num_workers, 1);
  engine_ = engine;
  slots_.clear();
  slots_.resize(static_cast<size_t>(num_workers));
  const size_t stack_bytes = FiberStackBytes();
  for (int rank = 0; rank < num_workers; ++rank) {
    slots_[static_cast<size_t>(rank)].fiber = std::make_unique<Fiber>(
        [rank, &body] { body(rank); }, stack_bytes);
  }
  g_current_scheduler = this;
  int done = 0;
  while (done < num_workers) {
    // Run every runnable worker once, in rank order. A worker returns
    // control only by blocking (state -> kWaiting) or finishing.
    bool progressed = false;
    for (int rank = 0; rank < num_workers; ++rank) {
      WorkerSlot& slot = slots_[static_cast<size_t>(rank)];
      if (slot.state != State::kRunnable) continue;
      progressed = true;
      current_ = rank;
      slot.fiber->Resume();
      current_ = -1;
      if (slot.fiber->finished()) {
        slot.state = State::kDone;
        ++done;
      }
    }
    if (done >= num_workers) break;
    if (WakeReadyWaiters()) continue;
    if (progressed) continue;  // fresh blocks may have changed state
    if (engine_ != nullptr && PumpEngine()) continue;
    DiagnoseDeadlock();
  }
  g_current_scheduler = nullptr;
  engine_ = nullptr;
  slots_.clear();
}

void CoopScheduler::Wait(const std::function<bool()>& pred,
                         const std::function<std::string()>& describe) {
  SPARDL_CHECK(g_current_scheduler == this && current_ >= 0)
      << "CoopScheduler::Wait outside a worker fiber";
  WorkerSlot& slot = slots_[static_cast<size_t>(current_)];
  while (!pred()) {
    slot.state = State::kWaiting;
    slot.pred = &pred;
    slot.describe = &describe;
    slot.fiber->Yield();
    // Woken by the scheduler (state already back to kRunnable); re-check
    // the predicate like any condition wait.
    slot.pred = nullptr;
    slot.describe = nullptr;
  }
  slot.state = State::kRunnable;
}

bool CoopScheduler::WakeReadyWaiters() {
  // Predicates are evaluated lock-free: every fiber shares this OS
  // thread, so nothing mutates predicate state concurrently.
  bool woke = false;
  for (WorkerSlot& slot : slots_) {
    if (slot.state != State::kWaiting) continue;
    if ((*slot.pred)()) {
      slot.state = State::kRunnable;
      woke = true;
    }
  }
  return woke;
}

bool CoopScheduler::PumpEngine() {
  // Every worker is blocked, so this is exactly the engine's quiescent
  // cut — the same point the thread backend pumps at, hence the same
  // deterministic (time, key) event order. Pumping pauses as soon as a
  // resolution makes some waiter runnable: that worker may inject new,
  // earlier-keyed flows that must precede later queue entries.
  std::lock_guard<lockcheck::OrderedMutex> lock(engine_->mu());
  while (!engine_->QueueEmptyLocked()) {
    const uint64_t resolved = engine_->PumpOneLocked();
    if (resolved != 0 && WakeReadyWaiters()) return true;
  }
  return false;
}

void CoopScheduler::DiagnoseDeadlock() {
  std::string detail;
  int shown = 0;
  for (size_t rank = 0; rank < slots_.size(); ++rank) {
    const WorkerSlot& slot = slots_[rank];
    if (slot.state != State::kWaiting) continue;
    if (++shown > 16) {
      detail += "\n  ...";
      break;
    }
    detail += "\n  worker " + std::to_string(rank) + ": " +
              (*slot.describe)();
  }
  SPARDL_CHECK(false)
      << "cooperative scheduler stalled: no runnable worker, no ready "
         "predicate, no pumpable event — collective deadlock?"
      << detail;
  std::abort();  // unreachable; keeps [[noreturn]] honest for the compiler
}

}  // namespace spardl
