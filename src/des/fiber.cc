#include "des/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "common/logging.h"

// ASan needs to be told about stack switches or it poisons/flags frames
// on the inactive stack. TSan has no ucontext support at all — the
// cluster layer pins the thread backend there (see Cluster) — so only
// the ASan annotations are wired here.
#if defined(__SANITIZE_ADDRESS__)
#define SPARDL_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SPARDL_FIBER_ASAN 1
#endif
#endif

#ifdef SPARDL_FIBER_ASAN
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* bottom, size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     size_t* size_old);
}
#endif

namespace spardl {

namespace {

/// The fiber running on this OS thread (null = the thread's own stack).
/// Also how `Trampoline` learns which fiber it belongs to: `makecontext`
/// cannot portably smuggle a pointer argument, but `Resume` always sets
/// this before switching in.
thread_local Fiber* g_current_fiber = nullptr;

size_t PageBytes() {
  static const auto bytes =
      static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return bytes;
}

}  // namespace

size_t FiberStackBytes() {
  static const size_t bytes = [] {
    size_t kb = 256;
    if (const char* env = std::getenv("SPARDL_FIBER_STACK_KB")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && parsed >= 64) {
        kb = static_cast<size_t>(parsed);
      }
    }
    return kb * 1024;
  }();
  return bytes;
}

Fiber::Fiber(std::function<void()> fn, size_t stack_bytes)
    : fn_(std::move(fn)) {
  const size_t page = PageBytes();
  // Round the stack up to whole pages and prepend one guard page.
  stack_bytes_ = (stack_bytes + page - 1) / page * page;
  map_bytes_ = stack_bytes_ + page;
  void* map = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  SPARDL_CHECK(map != MAP_FAILED)
      << "fiber stack mmap(" << map_bytes_ << ") failed";
  map_ = static_cast<char*>(map);
  SPARDL_CHECK(::mprotect(map_, page, PROT_NONE) == 0)
      << "fiber guard page mprotect failed";
}

Fiber::~Fiber() {
  SPARDL_CHECK(!started_ || finished_)
      << "fiber destroyed while suspended mid-run";
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

Fiber* Fiber::Current() { return g_current_fiber; }

void Fiber::StartSwitchInto() {
#ifdef SPARDL_FIBER_ASAN
  __sanitizer_start_switch_fiber(&caller_fake_stack_, map_ + PageBytes(),
                                 stack_bytes_);
#endif
}

void Fiber::StartSwitchOutOf() {
#ifdef SPARDL_FIBER_ASAN
  // A finishing fiber passes null so ASan releases its fake stack.
  __sanitizer_start_switch_fiber(
      finished_ ? nullptr : &fiber_fake_stack_, caller_stack_bottom_,
      caller_stack_size_);
#endif
}

void Fiber::FinishSwitch(void* restored_fake_stack, bool record_caller) {
#ifdef SPARDL_FIBER_ASAN
  // On the first switch in, ASan reports the stack we came from — the
  // carrier thread's — whose bounds we could not know otherwise; they
  // are what every switch back out must announce.
  __sanitizer_finish_switch_fiber(
      restored_fake_stack, record_caller ? &caller_stack_bottom_ : nullptr,
      record_caller ? &caller_stack_size_ : nullptr);
#else
  (void)restored_fake_stack;
  (void)record_caller;
#endif
}

void Fiber::Trampoline() {
  Fiber* self = g_current_fiber;
  self->FinishSwitch(nullptr, /*record_caller=*/true);
  self->fn_();
  self->finished_ = true;
  self->StartSwitchOutOf();
  ::swapcontext(&self->context_, &self->caller_);
  // Unreachable: a finished fiber is never resumed.
  SPARDL_CHECK(false) << "finished fiber resumed";
}

void Fiber::Resume() {
  SPARDL_CHECK(!finished_) << "Resume on a finished fiber";
  SPARDL_CHECK(g_current_fiber == nullptr)
      << "nested fiber resume (fibers do not nest)";
  if (!started_) {
    started_ = true;
    SPARDL_CHECK(::getcontext(&context_) == 0);
    context_.uc_stack.ss_sp = map_ + PageBytes();
    context_.uc_stack.ss_size = stack_bytes_;
    context_.uc_link = nullptr;
    ::makecontext(&context_, &Fiber::Trampoline, 0);
  }
  g_current_fiber = this;
  StartSwitchInto();
  SPARDL_CHECK(::swapcontext(&caller_, &context_) == 0);
  // Back on the carrier stack: the fiber yielded or finished.
  FinishSwitch(caller_fake_stack_, /*record_caller=*/false);
  g_current_fiber = nullptr;
}

void Fiber::Yield() {
  SPARDL_CHECK(g_current_fiber == this)
      << "Yield outside the running fiber";
  StartSwitchOutOf();
  SPARDL_CHECK(::swapcontext(&context_, &caller_) == 0);
  // Resumed: re-establish the fiber's sanitizer stack context.
  FinishSwitch(fiber_fake_stack_, /*record_caller=*/false);
}

}  // namespace spardl
