#include "des/event_engine.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "des/coop_scheduler.h"

namespace spardl {

EventEngine::EventEngine(const Topology& topology)
    : topology_(topology),
      clocks_(static_cast<size_t>(topology.num_workers())) {
  links_.resize(static_cast<size_t>(topology.num_links()));
  const size_t p = static_cast<size_t>(topology.num_workers());
  pair_seq_.assign(p * p, 0);
}

void EventEngine::WorkerEnter() {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  ++active_;
}

void EventEngine::WorkerExit() {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  --active_;
  SPARDL_DCHECK(active_ >= 0);
  // One fewer runnable thread may make the remaining sleepers quiescent;
  // wake one so it re-evaluates the pump condition.
  cv_.notify_all();
}

uint64_t EventEngine::InjectFlowLocked(int src, int dst, size_t words,
                                       double sent_at) {
  const int p = topology_.num_workers();
  SPARDL_DCHECK(src >= 0 && src < p);
  SPARDL_DCHECK(dst >= 0 && dst < p);
  const size_t pair = static_cast<size_t>(src) * static_cast<size_t>(p) +
                      static_cast<size_t>(dst);
  const uint64_t key = (static_cast<uint64_t>(pair) << 32) | pair_seq_[pair];
  ++pair_seq_[pair];

  Flow flow;
  flow.words = words;
  flow.src = src;
  flow.dst = dst;
  flow.sent_at = sent_at;
  topology_.Route(src, dst, &flow.path);
  SPARDL_DCHECK(!flow.path.empty()) << "empty route " << src << "->" << dst;
  flows_.emplace(key, std::move(flow));
  queue_.Push(sent_at, key);
  return key;
}

double EventEngine::TakeArrivalLocked(uint64_t flow) {
  auto it = resolved_.find(flow);
  SPARDL_CHECK(it != resolved_.end()) << "unresolved flow consumed";
  const double arrival = it->second;
  resolved_.erase(it);
  return arrival;
}

bool EventEngine::AnySleeperReadyLocked() const {
  for (const Sleeper& sleeper : sleepers_) {
    if ((*sleeper.pred)()) return true;
  }
  return false;
}

double EventEngine::HorizonLocked() const {
  double horizon = std::numeric_limits<double>::infinity();
  for (const PublishedClock& clock : clocks_) {
    horizon =
        std::min(horizon, clock.value.load(std::memory_order_relaxed));
  }
  return horizon;
}

uint64_t EventEngine::PumpOneLocked() {
  const EventQueue::Event event = queue_.PopEarliest();
  auto it = flows_.find(event.flow);
  SPARDL_DCHECK(it != flows_.end());
  Flow& flow = it->second;

  const LinkId id = flow.path[static_cast<size_t>(flow.hop)];
  // link_info folds SetNodeScale into alpha/beta, exactly like the
  // busy-until engine's per-hop loop.
  const LinkInfo link = topology_.link_info(id);
  const double serialize = link.beta * static_cast<double>(flow.words);
  const uint64_t bytes = static_cast<uint64_t>(flow.words) * 4;
  LinkServer& server = links_[static_cast<size_t>(id)];
  const double start = std::max(event.time, server.busy_until());
  const double head_out = server.Serve(event.time, link.alpha, serialize,
                                       bytes);
  if (trace_recorder_ != nullptr) {
    // The flow key embeds (src*P + dst) in its upper half.
    const int p = topology_.num_workers();
    const auto pair = static_cast<int>(event.flow >> 32);
    trace_recorder_->RecordLink(TraceSpan{id, kStreamLink, Phase::kLink,
                                          "flow", pair / p, pair % p, start,
                                          head_out + serialize, bytes});
    flow.hops.push_back(FlowHop{id, event.time, start, head_out, serialize});
  }
  flow.bottleneck = std::max(flow.bottleneck, serialize);
  ++flow.hop;
  if (flow.hop < static_cast<int>(flow.path.size())) {
    queue_.Push(head_out, event.flow);
    return 0;
  }
  // Final hop: the body trails the header by the bottleneck serialization.
  const double arrival = head_out + flow.bottleneck;
  resolved_.emplace(event.flow, arrival);
  if (trace_recorder_ != nullptr) {
    FlowRecord record;
    record.src = flow.src;
    record.dst = flow.dst;
    record.words = flow.words;
    record.sent_at = flow.sent_at;
    record.arrival = arrival;
    record.hops = std::move(flow.hops);
    trace_recorder_->RecordFlow(event.flow, std::move(record));
  }
  flows_.erase(it);
  return event.flow;
}

void EventEngine::BlockUntil(std::unique_lock<lockcheck::OrderedMutex>& lock,
                             const std::function<bool()>& pred,
                             double timeout_seconds,
                             const std::function<std::string()>& describe) {
  if (CoopScheduler* scheduler = CoopScheduler::Current();
      scheduler != nullptr) {
    // Cooperative backend: blocking is the scheduler's job. The engine
    // lock must drop before the fiber switch — the next fiber runs on
    // this same OS thread and would self-deadlock re-acquiring it. The
    // scheduler evaluates `pred` lock-free (sound: one carrier thread)
    // and pumps through `PumpOneLocked` at its own quiescent cuts.
    lock.unlock();
    scheduler->Wait(pred, describe);
    lock.lock();
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  ++blocked_;
  while (!pred()) {
    // Pump when it is provably safe. Quiescent cut: every registered
    // worker is blocked (this thread included) and no sleeper could make
    // progress if it held the lock, so the pending flow set is
    // scheduling-independent and the earliest event is safe to process.
    // Safe horizon: even with workers still running, an event strictly
    // below the min published clock precedes every flow any worker can
    // still inject, so pumping it now cannot disturb the (time, key)
    // order (see HorizonLocked). The sleeper check pauses pumping the
    // moment a resolution releases someone: that worker must consume its
    // arrival and run — possibly injecting earlier-keyed flows — before
    // later events are touched.
    if (!queue_.Empty() && !AnySleeperReadyLocked() &&
        (blocked_ >= active_ || queue_.NextTime() < HorizonLocked())) {
      const uint64_t resolved = PumpOneLocked();
      if (resolved != 0 && AnySleeperReadyLocked()) {
        // Hand the arrival over to the released sleeper and park.
        cv_.notify_all();
      } else {
        // Mid-path hop, or a resolution whose receiver has not asked yet —
        // keep pumping (after letting our own predicate notice it).
        continue;
      }
    }
    const auto me = sleepers_.insert(sleepers_.end(), Sleeper{&pred});
    const bool timed_out =
        cv_.wait_until(lock, deadline) == std::cv_status::timeout;
    sleepers_.erase(me);
    SPARDL_CHECK(!timed_out)
        << describe() << " timed out after " << timeout_seconds
        << "s of wall time — collective deadlock?";
  }
  --blocked_;
}

void EventEngine::Reset() {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  // resolved_ must drain too: a pre-reset arrival silently applied to
  // post-reset clocks would be a far worse bug than this abort.
  SPARDL_CHECK(flows_.empty() && queue_.Empty() && resolved_.empty())
      << "event engine reset with flows in flight or unconsumed arrivals";
  for (LinkServer& link : links_) link.Reset();
}

bool EventEngine::Idle() const {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  return flows_.empty() && queue_.Empty() && resolved_.empty();
}

LinkUsage EventEngine::link_usage(LinkId id) const {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  SPARDL_CHECK(id >= 0 && id < static_cast<int>(links_.size()));
  return links_[static_cast<size_t>(id)].usage();
}

void EventEngine::set_trace_recorder(TraceRecorder* recorder) {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  trace_recorder_ = recorder;
}

}  // namespace spardl
