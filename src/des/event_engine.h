#ifndef SPARDL_DES_EVENT_ENGINE_H_
#define SPARDL_DES_EVENT_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/lockcheck.h"
#include "topo/topology.h"

namespace spardl {

/// A message in flight through the event engine, identified by a
/// deterministic key (see `EventEngine::InjectFlowLocked`). One flow has at
/// most one pending event: the arrival of its header at `path[hop]`.
struct Flow {
  std::vector<LinkId> path;
  size_t words = 0;
  int hop = 0;
  /// Max serialization time over the hops crossed so far (cut-through: the
  /// body is serialized once, at the bottleneck link).
  double bottleneck = 0.0;
  /// Endpoints and send time, kept for the flow dependency record handed
  /// to the trace recorder when the flow resolves.
  int src = -1;
  int dst = -1;
  double sent_at = 0.0;
  /// Per-hop service record, filled only while a trace recorder is
  /// attached (analysis needs the full dependency chain; the plain
  /// charge path should not pay for it).
  std::vector<FlowHop> hops;
};

/// Min-heap of per-hop transmission events, ordered by `(time, flow key)`.
///
/// The flow key embeds `(src, dst, per-pair sequence)` in that
/// significance order, so ties at equal simulated time break by sender
/// rank, then receiver rank, then the sender's own (deterministic) send
/// order — never by wall-clock arrival or thread interleaving.
class EventQueue {
 public:
  struct Event {
    double time;
    uint64_t flow;
  };

  void Push(double time, uint64_t flow) { heap_.push(Event{time, flow}); }
  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  /// Removes and returns the earliest event. Undefined when empty.
  Event PopEarliest() {
    Event event = heap_.top();
    heap_.pop();
    return event;
  }

  /// Simulated time of the earliest event. Undefined when empty.
  double NextTime() const { return heap_.top().time; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.flow > b.flow;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

/// Per-link transmission server: owns the link's busy-until clock and
/// applies the cut-through hop arithmetic (identical to the busy-until
/// engine's `Topology::ChargeMessage` inner loop, so the two engines agree
/// exactly whenever they see the same per-link event order).
class LinkServer {
 public:
  /// Serves one header arriving at `head_in`: the header leaves at
  /// `max(head_in, busy_until) + alpha` and the link stays occupied until
  /// the whole body (serialization `serialize`) has crossed. Returns the
  /// header's departure time. `bytes` only feeds the usage counters.
  double Serve(double head_in, double alpha, double serialize,
               uint64_t bytes = 0) {
    const double wait = busy_until_ > head_in ? busy_until_ - head_in : 0.0;
    const double start = head_in + wait;
    const double head_out = start + alpha;
    busy_until_ = head_out + serialize;
    usage_.busy_seconds += alpha + serialize;
    usage_.bytes += bytes;
    usage_.messages += 1;
    if (wait > usage_.max_queue_seconds) usage_.max_queue_seconds = wait;
    return head_out;
  }

  double busy_until() const { return busy_until_; }
  const LinkUsage& usage() const { return usage_; }
  void Reset() {
    busy_until_ = 0.0;
    usage_ = LinkUsage{};
  }

 private:
  double busy_until_ = 0.0;
  LinkUsage usage_;
};

/// The simnet v3 deterministic discrete-event engine.
///
/// Motivation: the busy-until engine charges a flow's whole route when its
/// *receiver* executes `Recv`, so two flows contending for a link queue in
/// whatever wall-clock order the receiving threads ran — contended times
/// shift run to run. This engine instead injects a flow when its *sender*
/// posts it (link occupancy was already anchored at logical send times, so
/// no receiver-side information is needed) and processes per-hop
/// transmission events in `(time, flow key)` order from a global
/// `EventQueue`.
///
/// Conservative processing: worker threads run freely between blocking
/// points; the queue is pumped at *quiescent cuts* — every registered
/// worker is blocked AND no sleeping worker's wake predicate currently
/// holds. At such a cut the injected flow set is a pure function of the
/// SPMD program, not of thread scheduling, and any flow a blocked worker
/// can inject after being released carries a send time no earlier than the
/// arrival that released it, which is itself no earlier than the earliest
/// pending event — so consuming events in `(time, key)` order is safe.
/// Pumping pauses the moment a resolution makes some sleeper's predicate
/// true (the released worker may inject new, earlier-keyed flows that must
/// precede later queue entries). Which thread pumps depends on
/// scheduling; the event order does not.
///
/// Safe-horizon pumping: waiting for *full* quiescence serializes
/// contended phases behind the last runnable thread, so a blocked thread
/// may additionally pump any event strictly earlier than the min over
/// all workers' published clocks (`PublishClock` / `HorizonLocked`):
/// per-worker clocks are monotone, so every future injection sorts at or
/// after that horizon and the global `(time, key)` pump order — and with
/// it every simulated result — is bit-identical to quiescence-only
/// pumping; events are simply processed earlier in wall time.
///
/// Cooperative backend: when the calling thread runs fibers
/// (`CoopScheduler::Current() != null`), `BlockUntil` delegates the wait
/// to the scheduler, which pumps via the public `PumpOneLocked` hook at
/// its own all-workers-blocked cuts. The quiescence/sleeper machinery
/// below then sits idle — fibers never park in `cv_`.
///
/// Locking: one engine mutex guards everything — flows, links, queue,
/// sleeper registry, and (via `mu()`) the `Network` state that must change
/// atomically with them in event mode (mailboxes, barrier, clock sync).
/// All waits go through `BlockUntil`, so the last runnable thread always
/// pumps instead of sleeping and the queue can never be starved by
/// sleepers.
class EventEngine {
 public:
  /// `topology` must outlive the engine; link parameters (including
  /// `SetNodeScale` scaling) are read through it at serve time.
  explicit EventEngine(const Topology& topology);

  EventEngine(const EventEngine&) = delete;
  EventEngine& operator=(const EventEngine&) = delete;

  /// The engine mutex. `Network` holds it (via `std::unique_lock`) across
  /// every event-mode mailbox/barrier/sync operation. Lock-order checked
  /// in debug builds (family "simnet.engine").
  lockcheck::OrderedMutex& mu() { return mu_; }

  /// Worker-thread registration (from `Cluster::Run`): `BlockUntil` pumps
  /// only when all registered workers are blocked. With no registrations
  /// (single-threaded use), every blocking wait pumps immediately.
  void WorkerEnter();
  void WorkerExit();

  /// Injects a `words`-word flow from `src` to `dst` at simulated time
  /// `sent_at` and returns its deterministic key: `(src*P + dst) << 32 |
  /// per-pair sequence`. Caller holds `mu()`. Key 0 is never returned
  /// (the self-pair (0, 0) cannot send).
  uint64_t InjectFlowLocked(int src, int dst, size_t words, double sent_at);

  /// True once `flow`'s arrival time has been computed. Caller holds
  /// `mu()`.
  bool ResolvedLocked(uint64_t flow) const {
    return resolved_.count(flow) != 0;
  }

  /// Consumes and returns `flow`'s arrival time; CHECK-fails unless
  /// resolved. Caller holds `mu()`.
  double TakeArrivalLocked(uint64_t flow);

  /// Blocks until `pred()` holds, pumping the event queue at quiescent
  /// cuts. `pred` is evaluated only under `mu()` — by this thread, and by
  /// whichever thread is deciding whether pumping may proceed — so it must
  /// be a pure function of engine/network state guarded by `mu()`. Aborts
  /// after `timeout_seconds` of wall time (a hung collective is always a
  /// bug); `describe` is invoked only then, so callers can defer
  /// diagnostic formatting off the per-message hot path. Caller holds
  /// `mu()` via `lock`.
  void BlockUntil(std::unique_lock<lockcheck::OrderedMutex>& lock,
                  const std::function<bool()>& pred, double timeout_seconds,
                  const std::function<std::string()>& describe);

  /// Wakes every blocked thread (after posting a packet, releasing a
  /// barrier, ...). Caller holds `mu()`.
  void NotifyAllLocked() { cv_.notify_all(); }

  /// Publishes `rank`'s simulated clock for the safe-horizon pump rule
  /// (called from `Comm` on every clock change, without `mu()`). Relaxed
  /// atomics are sound here because per-worker clocks are *monotone
  /// within a run*: any flow `rank` injects later carries
  /// `sent_at >= now`, so a stale (lower) read only makes the horizon
  /// more conservative, never wrong. `Comm::ResetClock` is the one
  /// rewind, and it happens between runs while no worker executes.
  void PublishClock(int rank, double now) {
    clocks_[static_cast<size_t>(rank)].value.store(
        now, std::memory_order_relaxed);
  }

  /// True when no per-hop event is pending. Caller holds `mu()`.
  bool QueueEmptyLocked() const { return queue_.Empty(); }

  /// Processes the earliest event: serves one hop, schedules the next,
  /// and on the final hop records the flow's arrival. Returns the
  /// resolved flow key, or 0 for a mid-path hop. Caller holds `mu()`.
  /// Public for the cooperative scheduler, which pumps at its own
  /// all-workers-blocked cuts (`CoopScheduler::PumpEngine`).
  uint64_t PumpOneLocked();

  /// Clears per-link busy clocks between measured phases; CHECK-fails if
  /// flows are still in flight (reset mid-collective is a bug).
  void Reset();

  /// True when no flow is in flight or awaiting consumption (end-of-run
  /// invariant, checked by `Cluster::Run`).
  bool Idle() const;

  /// Cumulative charge counters for one link. Thread-safe.
  LinkUsage link_usage(LinkId id) const;

  /// Attaches a span recorder: every pumped hop records one `kLink`
  /// occupancy span, in the engine's deterministic `(time, flow key)`
  /// order. Set while no worker threads run.
  void set_trace_recorder(TraceRecorder* recorder);

 private:
  struct Sleeper {
    const std::function<bool()>* pred;
  };

  /// One worker's published clock, cache-line padded: every clock change
  /// stores here, and false sharing across 4096 workers would put the
  /// stores on the simulation's hot path.
  struct alignas(64) PublishedClock {
    std::atomic<double> value{0.0};
  };

  /// True when some sleeping thread's predicate already holds — it must
  /// wake and run before any further event is processed.
  bool AnySleeperReadyLocked() const;

  /// The safe horizon: min over all workers' published clocks. Every
  /// *future* injection carries `sent_at >=` its sender's clock, so any
  /// pending event strictly below this min is already globally earliest
  /// and safe to pump before full quiescence (strict `<` so an event
  /// tied at the horizon still waits — a runnable worker could inject an
  /// equal-time, smaller-keyed flow).
  double HorizonLocked() const;

  const Topology& topology_;
  mutable lockcheck::OrderedMutex mu_{"simnet.engine"};
  /// `_any` so waits release/re-acquire through the checked mutex (the
  /// held-lock stack stays exact across the wait).
  std::condition_variable_any cv_;

  int active_ = 0;   // registered worker threads
  int blocked_ = 0;  // threads currently inside BlockUntil

  EventQueue queue_;
  std::vector<PublishedClock> clocks_;  // by rank, written lock-free
  TraceRecorder* trace_recorder_ = nullptr;
  std::vector<LinkServer> links_;                  // by LinkId
  std::vector<uint32_t> pair_seq_;                 // per (src, dst) pair
  std::unordered_map<uint64_t, Flow> flows_;       // in flight
  std::unordered_map<uint64_t, double> resolved_;  // arrival times
  std::list<Sleeper> sleepers_;                    // threads in cv_.wait
};

}  // namespace spardl

#endif  // SPARDL_DES_EVENT_ENGINE_H_
