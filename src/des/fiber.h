#ifndef SPARDL_DES_FIBER_H_
#define SPARDL_DES_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <functional>

namespace spardl {

/// Fiber stack size in bytes: `SPARDL_FIBER_STACK_KB` (clamped to >= 64)
/// or a 256 KiB default. Worker functions keep their bulk data on the
/// heap (SparseVector and friends), so a quarter-megabyte covers the
/// deepest algorithm call chains with generous margin; at P = 4096 the
/// total is 1 GiB of *virtual* address space, of which only the pages a
/// worker actually touches become resident.
size_t FiberStackBytes();

/// A stackful coroutine over `ucontext`: the execution primitive of the
/// cooperative cluster backend (see `CoopScheduler`).
///
/// One fiber runs `fn` on its own guard-paged stack. `Resume` switches
/// the calling OS thread into the fiber and returns when the fiber calls
/// `Yield` or when `fn` returns; all resumes of one fiber must come from
/// the same OS thread (the scheduler's carrier thread). Under ASan every
/// switch is bracketed with the sanitizer fiber annotations, so stack
/// poisoning follows the active stack instead of flagging cross-stack
/// reads.
class Fiber {
 public:
  /// Creates a suspended fiber; `fn` starts on the first `Resume`. The
  /// stack is `mmap`ed with an inaccessible low guard page, so overflow
  /// faults loudly instead of corrupting a neighbouring fiber's stack.
  explicit Fiber(std::function<void()> fn,
                 size_t stack_bytes = FiberStackBytes());

  /// The fiber must be finished (or never started) when destroyed:
  /// unwinding a suspended stack is not supported.
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches into the fiber until it yields or finishes. Must not be
  /// called from inside any fiber (no nesting) or after `finished()`.
  void Resume();

  /// From inside the fiber: suspends and returns control to `Resume`'s
  /// caller. The next `Resume` continues right after this call.
  void Yield();

  /// True once `fn` has returned. A finished fiber cannot be resumed.
  bool finished() const { return finished_; }

  /// The fiber currently running on this OS thread, or null when the
  /// thread is on its own stack.
  static Fiber* Current();

 private:
  static void Trampoline();

  /// Sanitizer bookkeeping around a context switch; no-ops outside ASan.
  void StartSwitchInto();   // caller stack -> this fiber's stack
  void StartSwitchOutOf();  // this fiber's stack -> caller stack
  void FinishSwitch(void* restored_fake_stack, bool record_caller);

  std::function<void()> fn_;
  size_t stack_bytes_;
  char* map_ = nullptr;  // guard page + stack
  size_t map_bytes_ = 0;
  ucontext_t context_{};
  ucontext_t caller_{};
  bool started_ = false;
  bool finished_ = false;

  // ASan fiber-switch state: each side's fake-stack handle, plus the
  // caller stack's bounds (reported by the first switch in, reused when
  // switching back out).
  void* caller_fake_stack_ = nullptr;
  void* fiber_fake_stack_ = nullptr;
  const void* caller_stack_bottom_ = nullptr;
  size_t caller_stack_size_ = 0;
};

}  // namespace spardl

#endif  // SPARDL_DES_FIBER_H_
