#ifndef SPARDL_COMMON_STATUS_H_
#define SPARDL_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace spardl {

/// Error categories used across the SparDL library.
///
/// SparDL follows the RocksDB/Arrow convention of returning `Status` (or
/// `Result<T>`) from fallible setup-time operations instead of throwing
/// exceptions. Hot-path invariant violations use `SPARDL_CHECK` instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kNotFound,
  kUnimplemented,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value.
///
/// Cheap to copy in the success case (no allocation); error carries a
/// message. Typical use:
///
/// ```
/// Status s = config.Validate();
/// if (!s.ok()) return s;
/// ```
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper, analogous to `arrow::Result<T>`.
///
/// Accessing the value of an errored `Result` aborts the process (this is a
/// programming error, mirroring `SPARDL_CHECK` semantics).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `Result<int> r = 3;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : value_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// The error status; `Status::OK()` if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(value_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(value_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> value_;
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieBadResultAccess(std::get<Status>(value_));
}

/// Propagates a non-OK status out of the current function.
#define SPARDL_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::spardl::Status _spardl_status = (expr);      \
    if (!_spardl_status.ok()) return _spardl_status; \
  } while (false)

}  // namespace spardl

#endif  // SPARDL_COMMON_STATUS_H_
