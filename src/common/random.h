#ifndef SPARDL_COMMON_RANDOM_H_
#define SPARDL_COMMON_RANDOM_H_

#include <cstdint>
#include <limits>

namespace spardl {

/// Deterministic 64-bit PRNG (SplitMix64 seeded xoshiro256**).
///
/// The standard `<random>` engines are not guaranteed to produce identical
/// streams across standard-library implementations; experiments in this repo
/// must be bit-reproducible everywhere, so we ship our own small generator.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Re-seeds the generator; identical seeds give identical streams.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  result_type operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (mean 0, stddev 1).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = r * __builtin_sin(theta);
    has_cached_gaussian_ = true;
    return r * __builtin_cos(theta);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace spardl

#endif  // SPARDL_COMMON_RANDOM_H_
