#ifndef SPARDL_COMMON_STRINGS_H_
#define SPARDL_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace spardl {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Formats a byte count with binary units ("1.5 MiB").
std::string HumanBytes(double bytes);

/// Formats a duration in seconds with an adaptive unit ("12.3 ms").
std::string HumanSeconds(double seconds);

}  // namespace spardl

#endif  // SPARDL_COMMON_STRINGS_H_
