#ifndef SPARDL_COMMON_LOGGING_H_
#define SPARDL_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace spardl {
namespace internal {

/// Accumulates a fatal-error message and aborts on destruction.
///
/// Used by the SPARDL_CHECK family below; not part of the public API.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "[" << file << ":" << line << "] Check failed: " << condition
            << " ";
  }

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  [[noreturn]] ~FatalLogMessage() {
    // '\n' + explicit flush rather than std::endl: the flush must still
    // happen (we abort next), but keeping endl out of the idiom stops it
    // spreading to hot paths via copy-paste.
    std::cerr << stream_.str() << '\n' << std::flush;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace spardl

/// Aborts with a message when `condition` is false. Enabled in all builds:
/// these guard invariants whose violation would silently corrupt gradient
/// synchronisation, which is never acceptable.
#define SPARDL_CHECK(condition)                                        \
  if (!(condition))                                                    \
  ::spardl::internal::FatalLogMessage(__FILE__, __LINE__, #condition) \
      .stream()

#define SPARDL_CHECK_OP(a, b, op)                                 \
  SPARDL_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define SPARDL_CHECK_EQ(a, b) SPARDL_CHECK_OP(a, b, ==)
#define SPARDL_CHECK_NE(a, b) SPARDL_CHECK_OP(a, b, !=)
#define SPARDL_CHECK_LT(a, b) SPARDL_CHECK_OP(a, b, <)
#define SPARDL_CHECK_LE(a, b) SPARDL_CHECK_OP(a, b, <=)
#define SPARDL_CHECK_GT(a, b) SPARDL_CHECK_OP(a, b, >)
#define SPARDL_CHECK_GE(a, b) SPARDL_CHECK_OP(a, b, >=)

/// Aborts when a Status-returning expression fails. Setup-time helper for
/// examples and benches where errors are programming mistakes.
#define SPARDL_CHECK_OK(expr)                                         \
  do {                                                                \
    ::spardl::Status _spardl_st = (expr);                             \
    SPARDL_CHECK(_spardl_st.ok()) << _spardl_st.ToString();           \
  } while (false)

/// Debug-only checks for hot paths (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define SPARDL_DCHECK(condition) \
  while (false) SPARDL_CHECK(condition)
#define SPARDL_DCHECK_EQ(a, b) SPARDL_DCHECK((a) == (b))
#define SPARDL_DCHECK_LT(a, b) SPARDL_DCHECK((a) < (b))
#define SPARDL_DCHECK_LE(a, b) SPARDL_DCHECK((a) <= (b))
#else
#define SPARDL_DCHECK(condition) SPARDL_CHECK(condition)
#define SPARDL_DCHECK_EQ(a, b) SPARDL_CHECK_EQ(a, b)
#define SPARDL_DCHECK_LT(a, b) SPARDL_CHECK_LT(a, b)
#define SPARDL_DCHECK_LE(a, b) SPARDL_CHECK_LE(a, b)
#endif

#endif  // SPARDL_COMMON_LOGGING_H_
