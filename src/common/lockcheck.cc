#include "common/lockcheck.h"

#include <algorithm>

#include "common/logging.h"

namespace spardl {
namespace lockcheck {

namespace {

/// One thread's held-lock stack entries, across all graphs (entries tag
/// which graph they belong to, so test-double graphs never mix with the
/// global one).
struct HeldEntry {
  const Graph* graph;
  int family;
};

thread_local std::vector<HeldEntry> tls_held;

}  // namespace

int Graph::RegisterFamily(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < families_.size(); ++i) {
    if (families_[i] == name) return static_cast<int>(i);
  }
  families_.push_back(name);
  for (auto& row : edges_) row.push_back(false);
  edges_.emplace_back(families_.size(), false);
  return static_cast<int>(families_.size()) - 1;
}

bool Graph::ReachableLocked(int from, int to) const {
  if (from == to) return true;
  // Iterative DFS; the graph is tiny (a handful of mutex families).
  std::vector<bool> visited(families_.size(), false);
  std::vector<int> stack = {from};
  visited[static_cast<size_t>(from)] = true;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    const auto& row = edges_[static_cast<size_t>(node)];
    for (size_t next = 0; next < row.size(); ++next) {
      if (!row[next] || visited[next]) continue;
      if (static_cast<int>(next) == to) return true;
      visited[next] = true;
      stack.push_back(static_cast<int>(next));
    }
  }
  return false;
}

void Graph::OnAcquire(int family) {
  // Collect the families of this graph the thread already holds (usually
  // zero or one) before taking the graph mutex.
  int held[8];
  int num_held = 0;
  for (const HeldEntry& entry : tls_held) {
    if (entry.graph != this || num_held == 8) continue;
    held[num_held++] = entry.family;
  }
  if (num_held > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < num_held; ++i) {
      const int from = held[i];
      SPARDL_CHECK(from != family)
          << "lock-order: mutex family '"
          << families_[static_cast<size_t>(family)]
          << "' acquired while a mutex of the same family is already "
             "held (self-deadlock under contention)";
      if (edges_[static_cast<size_t>(from)][static_cast<size_t>(family)]) {
        continue;  // established order, nothing new to prove
      }
      SPARDL_CHECK(!ReachableLocked(family, from))
          << "lock-order inversion: acquiring '"
          << families_[static_cast<size_t>(family)] << "' while holding '"
          << families_[static_cast<size_t>(from)] << "', but the "
          << "established acquisition order already requires '"
          << families_[static_cast<size_t>(family)] << "' -> '"
          << families_[static_cast<size_t>(from)] << "' — the edge pair ('"
          << families_[static_cast<size_t>(from)] << "' -> '"
          << families_[static_cast<size_t>(family)] << "') closes a cycle "
          << "(potential deadlock)";
      edges_[static_cast<size_t>(from)][static_cast<size_t>(family)] = true;
    }
  }
  tls_held.push_back(HeldEntry{this, family});
}

void Graph::OnRelease(int family) {
  // Out-of-order release is legal; pop the newest matching entry.
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (it->graph == this && it->family == family) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
  SPARDL_CHECK(false) << "lock-order: released a mutex of family id "
                      << family << " that this thread does not hold";
}

Graph& Graph::Global() {
  static Graph* graph = new Graph();  // leaked: outlives static dtors
  return *graph;
}

OrderedMutex::OrderedMutex(const char* family) {
#if !defined(NDEBUG) || defined(SPARDL_LOCKCHECK)
  graph_ = &Graph::Global();
  family_ = graph_->RegisterFamily(family);
#else
  (void)family;  // release builds: plain std::mutex passthrough
#endif
}

OrderedMutex::OrderedMutex(Graph& graph, const char* family)
    : graph_(&graph), family_(graph.RegisterFamily(family)) {}

}  // namespace lockcheck
}  // namespace spardl
