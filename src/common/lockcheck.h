#ifndef SPARDL_COMMON_LOCKCHECK_H_
#define SPARDL_COMMON_LOCKCHECK_H_

#include <mutex>
#include <string>
#include <vector>

namespace spardl {
namespace lockcheck {

/// Debug-build lock-order ("deadlock potential") detection.
///
/// The simulator holds real OS mutexes across its hot synchronisation
/// paths — the event-engine mutex, the per-mailbox/barrier/sync mutexes
/// of `Network`, and the topology charge mutex. A lock-order inversion
/// between any two of those families would be a *potential* deadlock that
/// only manifests under a losing thread interleaving, i.e. exactly the
/// kind of bug that ships silently. `OrderedMutex` instruments each
/// acquisition against a global lock-acquisition-order graph: the first
/// time family A is held while family B is acquired, the directed edge
/// A -> B is recorded; an acquisition that would close a cycle
/// CHECK-fails immediately — on the *first* run that exhibits the order,
/// not the first run that loses the race.
///
/// Cost model: tracking is compiled in when `SPARDL_LOCKCHECK` is defined
/// or `NDEBUG` is not (debug and sanitizer builds); release builds keep
/// only an untaken null-pointer branch per lock/unlock. A `Graph` can
/// also be instantiated directly — with mutexes constructed against it,
/// tracking is unconditional. That is the test seam: the inversion unit
/// test provokes a cycle through a private graph in every build type
/// without touching the global registry.

/// Lock-acquisition-order graph over mutex *families* (all mutexes
/// registered under one name share a node — e.g. every per-mailbox mutex
/// is one family). Thread-safe; acquisition stacks are tracked
/// per-thread, per-graph.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Returns the id for `name`, registering it on first use. Ids are
  /// stable for the graph's lifetime.
  int RegisterFamily(const std::string& name);

  /// Records that the calling thread is about to acquire a mutex of
  /// `family` while holding whatever this graph's per-thread stack says
  /// it holds. Adds held -> family edges; CHECK-fails (aborts) when an
  /// edge would close a cycle — the message names the offending edge
  /// pair — or when `family` is already held (self-nesting within a
  /// family is an inversion against itself).
  void OnAcquire(int family);

  /// Pops the most recent acquisition of `family` from the calling
  /// thread's stack (out-of-order release is allowed).
  void OnRelease(int family);

  /// The process-wide graph used by globally-registered mutexes.
  static Graph& Global();

 private:
  /// True when `to` can already reach `from` through recorded edges
  /// (adding from -> to would close a cycle). Caller holds `mu_`.
  bool ReachableLocked(int from, int to) const;

  mutable std::mutex mu_;
  std::vector<std::string> families_;
  std::vector<std::vector<bool>> edges_;  // edges_[from][to]
};

/// A `std::mutex` whose acquisitions are checked against a lock-order
/// `Graph`. Satisfies BasicLockable, so `std::lock_guard`,
/// `std::unique_lock` and `std::condition_variable_any` all work on it
/// (a cv wait releases and re-acquires through `unlock`/`lock`, keeping
/// the held-stack exact across the wait).
class OrderedMutex {
 public:
  /// Globally-registered mutex: tracked against `Graph::Global()` in
  /// debug/`SPARDL_LOCKCHECK` builds, a plain mutex otherwise.
  explicit OrderedMutex(const char* family);

  /// Explicit-graph mutex: always tracked, whatever the build type. This
  /// is the constructor the lock-order unit tests drive.
  OrderedMutex(Graph& graph, const char* family);

  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() {
    // Order edges are recorded for the *attempt*, before blocking: an
    // inversion aborts with its diagnostic even on the interleaving
    // where the two threads have already deadlocked each other.
    if (graph_ != nullptr) graph_->OnAcquire(family_);
    mu_.lock();
  }

  void unlock() {
    mu_.unlock();
    if (graph_ != nullptr) graph_->OnRelease(family_);
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    // A successful try_lock cannot block, but the order it witnesses is
    // still an order the code relies on — record it.
    if (graph_ != nullptr) graph_->OnAcquire(family_);
    return true;
  }

 private:
  std::mutex mu_;
  Graph* graph_ = nullptr;
  int family_ = -1;
};

}  // namespace lockcheck
}  // namespace spardl

#endif  // SPARDL_COMMON_LOCKCHECK_H_
