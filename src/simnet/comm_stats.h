#ifndef SPARDL_SIMNET_COMM_STATS_H_
#define SPARDL_SIMNET_COMM_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "obs/trace.h"

namespace spardl {

/// Per-worker communication counters, accumulated by `Comm`.
///
/// `messages_received` counts latency units (each receive costs one alpha on
/// the receiving worker's critical path); `words_received` counts bandwidth
/// units (the paper's y in x*alpha + y*beta). Table I validation compares
/// these directly against the closed-form expressions.
struct CommStats {
  uint64_t messages_sent = 0;
  uint64_t words_sent = 0;
  uint64_t messages_received = 0;
  uint64_t words_received = 0;

  /// Simulated seconds spent in Recv (waiting + transfer).
  double comm_seconds = 0.0;
  /// Simulated seconds charged via Comm::Compute.
  double compute_seconds = 0.0;

  /// Phase-bucketed breakdown, maintained whether or not tracing is on.
  /// The comm tags (`IsCommPhase`) partition `comm_seconds` by the phase
  /// active at each Recv; `kCompute` mirrors `compute_seconds`; `kBarrier`
  /// and `kOverlapIdle` account waits charged to neither aggregate.
  std::array<double, kNumPhases> phase_seconds{};

  /// Sum of the comm-tagged buckets — equals `comm_seconds` up to
  /// floating-point summation order.
  double CommPhaseSum() const {
    double sum = 0.0;
    for (size_t i = 0; i < kNumPhases; ++i) {
      if (IsCommPhase(static_cast<Phase>(i))) sum += phase_seconds[i];
    }
    return sum;
  }

  void Reset() { *this = CommStats{}; }

  CommStats& operator+=(const CommStats& other) {
    messages_sent += other.messages_sent;
    words_sent += other.words_sent;
    messages_received += other.messages_received;
    words_received += other.words_received;
    comm_seconds += other.comm_seconds;
    compute_seconds += other.compute_seconds;
    for (size_t i = 0; i < kNumPhases; ++i) {
      phase_seconds[i] += other.phase_seconds[i];
    }
    return *this;
  }
};

}  // namespace spardl

#endif  // SPARDL_SIMNET_COMM_STATS_H_
