#ifndef SPARDL_SIMNET_COMM_STATS_H_
#define SPARDL_SIMNET_COMM_STATS_H_

#include <cstddef>
#include <cstdint>

namespace spardl {

/// Per-worker communication counters, accumulated by `Comm`.
///
/// `messages_received` counts latency units (each receive costs one alpha on
/// the receiving worker's critical path); `words_received` counts bandwidth
/// units (the paper's y in x*alpha + y*beta). Table I validation compares
/// these directly against the closed-form expressions.
struct CommStats {
  uint64_t messages_sent = 0;
  uint64_t words_sent = 0;
  uint64_t messages_received = 0;
  uint64_t words_received = 0;

  /// Simulated seconds spent in Recv (waiting + transfer).
  double comm_seconds = 0.0;
  /// Simulated seconds charged via Comm::Compute.
  double compute_seconds = 0.0;

  void Reset() { *this = CommStats{}; }

  CommStats& operator+=(const CommStats& other) {
    messages_sent += other.messages_sent;
    words_sent += other.words_sent;
    messages_received += other.messages_received;
    words_received += other.words_received;
    comm_seconds += other.comm_seconds;
    compute_seconds += other.compute_seconds;
    return *this;
  }
};

}  // namespace spardl

#endif  // SPARDL_SIMNET_COMM_STATS_H_
