#ifndef SPARDL_SIMNET_COST_MODEL_H_
#define SPARDL_SIMNET_COST_MODEL_H_

#include <cstddef>

namespace spardl {

/// The latency (alpha) - bandwidth (beta) communication cost model the paper
/// uses for all of its analysis (§II, Table I).
///
/// A message transfer costs `alpha + beta * words`, where a "word" is one
/// 4-byte gradient value; a sparse COO entry (index + value) costs 2 words.
/// The simulated network charges exactly this, so measured simulated time
/// reproduces the paper's complexity terms by construction.
struct CostModel {
  /// Per-message fixed cost, seconds.
  double alpha = 100e-6;
  /// Per-word (4 bytes) transfer cost, seconds.
  double beta = 32e-9;

  /// Total cost of transferring one message of `words` 4-byte words.
  double MessageSeconds(size_t words) const {
    return alpha + beta * static_cast<double>(words);
  }

  /// 1 Gbps TCP Ethernet with typical kernel-stack latency — the paper's
  /// main 14-machine cluster ("connected to an Ethernet with default
  /// setting").
  static CostModel Ethernet() { return CostModel{100e-6, 32e-9}; }

  /// 100 Gbps InfiniBand with RDMA — the paper's 5-machine A800 cluster
  /// (§IV-J). Two orders of magnitude lower latency, ~100x bandwidth.
  static CostModel InfiniBandRdma() { return CostModel{2e-6, 0.32e-9}; }

  /// Zero-cost model; useful in unit tests that only check data movement.
  static CostModel Free() { return CostModel{0.0, 0.0}; }
};

}  // namespace spardl

#endif  // SPARDL_SIMNET_COST_MODEL_H_
