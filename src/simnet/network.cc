#include "simnet/network.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "des/coop_scheduler.h"
#include "simnet/protocol_check.h"
#include "topo/topologies.h"

namespace spardl {

size_t PayloadWords(const Payload& payload) {
  struct Visitor {
    size_t operator()(const SparseVector& v) const { return v.WireWords(); }
    size_t operator()(const std::vector<SparseVector>& parts) const {
      size_t words = 0;
      for (const SparseVector& p : parts) words += p.WireWords();
      return words;
    }
    size_t operator()(const std::vector<float>& v) const { return v.size(); }
    size_t operator()(const std::vector<uint32_t>& v) const {
      return v.size();
    }
    size_t operator()(double) const { return 1; }
    size_t operator()(int64_t) const { return 1; }
  };
  return std::visit(Visitor{}, payload);
}

Network::Network(int size, CostModel cost_model)
    : Network(std::make_unique<FlatTopology>(size, cost_model)) {}

Network::Network(std::unique_ptr<Topology> topology)
    : topology_(std::move(topology)), size_(topology_->num_workers()) {
  SPARDL_CHECK_GE(size_, 1);
  // Closed-form fabrics (flat) have no link state to order, so both
  // engines charge them identically at Recv time — no event engine.
  if (topology_->charge_engine() == ChargeEngine::kEventOrdered &&
      !topology_->closed_form_charge()) {
    engine_ = std::make_unique<EventEngine>(*topology_);
  }
  // Value-initialized: every slot starts null; boxes appear on first
  // touch (see BoxFor). The slot table itself is P^2 * 8 bytes — 134MB
  // at P = 4096 — versus gigabytes for eager Mailbox construction.
  mailboxes_ = std::make_unique<std::atomic<Mailbox*>[]>(MailboxCount());
}

Network::~Network() {
  const size_t count = MailboxCount();
  for (size_t i = 0; i < count; ++i) {
    delete mailboxes_[i].load(std::memory_order_acquire);
  }
}

Network::Mailbox& Network::BoxFor(int src, int dst) {
  std::atomic<Mailbox*>& slot =
      mailboxes_[static_cast<size_t>(src) * static_cast<size_t>(size_) +
                 static_cast<size_t>(dst)];
  Mailbox* box = slot.load(std::memory_order_acquire);
  if (box == nullptr) {
    auto fresh = std::make_unique<Mailbox>();
    if (slot.compare_exchange_strong(box, fresh.get(),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      box = fresh.release();
    }
    // On CAS failure `box` already holds the winner's pointer and
    // `fresh` frees the loser.
  }
  return *box;
}

void Network::AttachTraceRecorder(TraceRecorder* recorder) {
  if (engine_) {
    // Event mode charges links in PumpOneLocked; the topology's charge
    // loop never runs, so the engine is the one recording surface.
    engine_->set_trace_recorder(recorder);
    return;
  }
  topology_->set_trace_recorder(recorder);
}

LinkUsage Network::link_usage(LinkId id) const {
  return engine_ ? engine_->link_usage(id) : topology_->link_usage(id);
}

void Network::SetWorkerSlowdown(int rank, double factor) {
  SPARDL_CHECK(rank >= 0 && rank < size_);
  SPARDL_CHECK_GT(factor, 0.0);
  topology_->SetNodeScale(rank, factor);
}

bool Network::interrupted() const {
  return protocol_ != nullptr && protocol_->failed();
}

void Network::ThrowIfInterrupted() const {
  if (interrupted()) throw ProtocolViolation(protocol_->status());
}

void Network::InterruptWaiters() {
  if (engine_) {
    std::lock_guard<lockcheck::OrderedMutex> lock(engine_->mu());
    engine_->NotifyAllLocked();
    return;
  }
  // Take each mutex briefly before notifying: the failure flag is already
  // visible (it is set before this call), so holding the lock closes the
  // window where a waiter checked its predicate before the flag flipped
  // but has not gone to sleep yet. Null slots never had a waiter.
  const size_t count = MailboxCount();
  for (size_t i = 0; i < count; ++i) {
    Mailbox* box = mailboxes_[i].load(std::memory_order_acquire);
    if (box == nullptr) continue;
    std::lock_guard<lockcheck::OrderedMutex> lock(box->mutex);
    box->cv.notify_all();
  }
  {
    std::lock_guard<lockcheck::OrderedMutex> lock(barrier_mutex_);
    barrier_cv_.notify_all();
  }
  {
    std::lock_guard<lockcheck::OrderedMutex> lock(sync_mutex_);
    sync_cv_.notify_all();
  }
}

void Network::Post(int src, int dst, Packet packet) {
  SPARDL_DCHECK(src >= 0 && src < size_);
  SPARDL_DCHECK(dst >= 0 && dst < size_);
  Mailbox& box = BoxFor(src, dst);
  if (engine_) {
    // Inject the flow at *send* time: its route and logical injection time
    // are fully known here, and charging from the sender side is what
    // frees the engine from receiver-thread ordering.
    std::unique_lock<lockcheck::OrderedMutex> lock(engine_->mu());
    packet.flow =
        engine_->InjectFlowLocked(src, dst, packet.words, packet.sent_at);
    box.queue.push_back(std::move(packet));
    engine_->NotifyAllLocked();
    return;
  }
  {
    std::lock_guard<lockcheck::OrderedMutex> lock(box.mutex);
    box.queue.push_back(std::move(packet));
  }
  box.cv.notify_all();
}

Network::Delivered Network::RecvPacket(int src, int dst, int tag,
                                       double receiver_now) {
  if (engine_) {
    Mailbox& box = BoxFor(src, dst);
    const auto find_tag = [&box, tag] {
      auto it = box.queue.begin();
      while (it != box.queue.end() && it->tag != tag) ++it;
      return it;
    };
    std::unique_lock<lockcheck::OrderedMutex> lock(engine_->mu());
    engine_->BlockUntil(
        lock,
        [&] {
          if (interrupted()) return true;  // monotonic, pred stays pure
          const auto it = find_tag();
          return it != box.queue.end() && engine_->ResolvedLocked(it->flow);
        },
        recv_timeout_seconds_, [&] {
          return StrFormat("Recv dst=%d src=%d tag=%d (event engine)", dst,
                           src, tag);
        });
    ThrowIfInterrupted();
    const auto it = find_tag();
    Delivered delivered{std::move(*it), 0.0};
    box.queue.erase(it);
    const double arrival =
        engine_->TakeArrivalLocked(delivered.packet.flow);
    // Traversal overlaps receiver compute; consumption waits for whichever
    // finishes last (same rule as the busy-until engine).
    delivered.delivery_time = std::max(receiver_now, arrival);
    return delivered;
  }
  Delivered delivered{Take(src, dst, tag), 0.0};
  delivered.delivery_time =
      topology_->ChargeMessage(src, dst, delivered.packet.words,
                               delivered.packet.sent_at, receiver_now);
  return delivered;
}

// GCC 12's -Wmaybe-uninitialized misfires on the NRVO'd move-out of the
// queue entry below: after inlining Packet's move constructor it reasons
// about the moved-from std::variant alternative's internal vector
// pointers, which are never read again (the std::variant + inlining
// false-positive family, gcc PR 105593 et al.). Narrow, documented
// suppression; the code is a plain move-then-erase.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
Packet Network::Take(int src, int dst, int tag) {
  // Event-mode mailboxes are guarded by the engine mutex and never signal
  // box.cv — a raw Take there would race and hang. Fail loudly instead.
  SPARDL_CHECK(engine_ == nullptr)
      << "Take() bypasses the event engine; use RecvPacket on "
         "event-ordered fabrics";
  Mailbox& box = BoxFor(src, dst);
  const auto has_tag = [&box, tag] {
    for (const Packet& packet : box.queue) {
      if (packet.tag == tag) return true;
    }
    return false;
  };
  std::unique_lock<lockcheck::OrderedMutex> lock(box.mutex);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(recv_timeout_seconds_));
  for (;;) {
    ThrowIfInterrupted();
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->tag == tag) {
        Packet packet = std::move(*it);
        box.queue.erase(it);
        return packet;
      }
    }
    if (CoopScheduler* scheduler = CoopScheduler::Current();
        scheduler != nullptr) {
      // Fibers share one OS thread: drop the lock across the switch
      // (see CoopScheduler's locking contract) and let the scheduler
      // poll — the sender fiber posts under this same thread, so the
      // lock-free predicate read is race-free.
      lock.unlock();
      scheduler->Wait([&] { return interrupted() || has_tag(); }, [&] {
        return StrFormat("Recv dst=%d src=%d tag=%d (busy-until)", dst, src,
                         tag);
      });
      lock.lock();
      continue;
    }
    SPARDL_CHECK(box.cv.wait_until(lock, deadline) !=
                 std::cv_status::timeout)
        << "Recv timed out: dst=" << dst << " waiting on src=" << src
        << " tag=" << tag << " — collective deadlock?";
  }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

void Network::BarrierWait() {
  // One state machine for both engines; only the mutex/wait primitive
  // differs (barrier waiters must count as blocked for the event engine's
  // quiescence detection, so its wait routes through BlockUntil).
  const auto arrive = [&]() -> bool {
    if (++barrier_waiting_ < size_) return false;
    barrier_waiting_ = 0;
    ++barrier_generation_;
    return true;  // last arriver releases everyone
  };
  if (engine_) {
    std::unique_lock<lockcheck::OrderedMutex> lock(engine_->mu());
    const uint64_t my_generation = barrier_generation_;
    if (arrive()) {
      engine_->NotifyAllLocked();
      return;
    }
    engine_->BlockUntil(
        lock,
        [&] {
          return barrier_generation_ != my_generation || interrupted();
        },
        recv_timeout_seconds_,
        [] { return std::string("BarrierWait (event engine)"); });
    ThrowIfInterrupted();
    return;
  }
  std::unique_lock<lockcheck::OrderedMutex> lock(barrier_mutex_);
  const uint64_t my_generation = barrier_generation_;
  if (arrive()) {
    barrier_cv_.notify_all();
    return;
  }
  const auto released = [&] {
    return barrier_generation_ != my_generation || interrupted();
  };
  if (CoopScheduler* scheduler = CoopScheduler::Current();
      scheduler != nullptr) {
    lock.unlock();
    scheduler->Wait(released,
                    [] { return std::string("BarrierWait (busy-until)"); });
    lock.lock();
  } else {
    barrier_cv_.wait(lock, released);
  }
  ThrowIfInterrupted();
}

double Network::MaxClockSync(int rank, double value) {
  (void)rank;
  // Shared fold/latch state machine, same split as BarrierWait.
  const auto publish = [&]() -> bool {
    if (value > sync_max_) sync_max_ = value;
    if (++sync_count_ < size_) return false;
    sync_result_ = sync_max_;
    sync_max_ = 0.0;
    sync_count_ = 0;
    ++sync_generation_;
    return true;  // last publisher latches the max
  };
  if (engine_) {
    std::unique_lock<lockcheck::OrderedMutex> lock(engine_->mu());
    const uint64_t my_generation = sync_generation_;
    if (publish()) {
      engine_->NotifyAllLocked();
      return sync_result_;
    }
    engine_->BlockUntil(
        lock,
        [&] { return sync_generation_ != my_generation || interrupted(); },
        recv_timeout_seconds_,
        [] { return std::string("MaxClockSync (event engine)"); });
    ThrowIfInterrupted();
    return sync_result_;
  }
  std::unique_lock<lockcheck::OrderedMutex> lock(sync_mutex_);
  const uint64_t my_generation = sync_generation_;
  if (publish()) {
    sync_cv_.notify_all();
    return sync_result_;
  }
  const auto latched = [&] {
    return sync_generation_ != my_generation || interrupted();
  };
  if (CoopScheduler* scheduler = CoopScheduler::Current();
      scheduler != nullptr) {
    lock.unlock();
    scheduler->Wait(latched,
                    [] { return std::string("MaxClockSync (busy-until)"); });
    lock.lock();
  } else {
    sync_cv_.wait(lock, latched);
  }
  ThrowIfInterrupted();
  return sync_result_;
}

bool Network::AllMailboxesEmpty() const {
  const size_t count = MailboxCount();
  if (engine_) {
    std::lock_guard<lockcheck::OrderedMutex> lock(engine_->mu());
    for (size_t i = 0; i < count; ++i) {
      const Mailbox* box = mailboxes_[i].load(std::memory_order_acquire);
      if (box != nullptr && !box->queue.empty()) return false;
    }
    return true;
  }
  for (size_t i = 0; i < count; ++i) {
    Mailbox* box = mailboxes_[i].load(std::memory_order_acquire);
    if (box == nullptr) continue;
    std::lock_guard<lockcheck::OrderedMutex> lock(box->mutex);
    if (!box->queue.empty()) return false;
  }
  return true;
}

void Network::ResetSimState() {
  // Link busy clocks must rewind with the worker clocks, or leftover
  // warm-up occupancy would delay post-reset flows.
  topology_->ResetLinkClocks();
  if (engine_) engine_->Reset();
}

}  // namespace spardl
