#include "simnet/network.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "topo/topologies.h"

namespace spardl {

size_t PayloadWords(const Payload& payload) {
  struct Visitor {
    size_t operator()(const SparseVector& v) const { return v.WireWords(); }
    size_t operator()(const std::vector<SparseVector>& parts) const {
      size_t words = 0;
      for (const SparseVector& p : parts) words += p.WireWords();
      return words;
    }
    size_t operator()(const std::vector<float>& v) const { return v.size(); }
    size_t operator()(const std::vector<uint32_t>& v) const {
      return v.size();
    }
    size_t operator()(double) const { return 1; }
    size_t operator()(int64_t) const { return 1; }
  };
  return std::visit(Visitor{}, payload);
}

Network::Network(int size, CostModel cost_model)
    : Network(std::make_unique<FlatTopology>(size, cost_model)) {}

Network::Network(std::unique_ptr<Topology> topology)
    : topology_(std::move(topology)), size_(topology_->num_workers()) {
  SPARDL_CHECK_GE(size_, 1);
  mailboxes_.resize(static_cast<size_t>(size_) * static_cast<size_t>(size_));
  for (auto& box : mailboxes_) box = std::make_unique<Mailbox>();
}

void Network::SetWorkerSlowdown(int rank, double factor) {
  SPARDL_CHECK(rank >= 0 && rank < size_);
  SPARDL_CHECK_GT(factor, 0.0);
  topology_->SetNodeScale(rank, factor);
}

void Network::Post(int src, int dst, Packet packet) {
  SPARDL_DCHECK(src >= 0 && src < size_);
  SPARDL_DCHECK(dst >= 0 && dst < size_);
  Mailbox& box = BoxFor(src, dst);
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(std::move(packet));
  }
  box.cv.notify_all();
}

Packet Network::Take(int src, int dst, int tag) {
  Mailbox& box = BoxFor(src, dst);
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(recv_timeout_seconds_));
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->tag == tag) {
        Packet packet = std::move(*it);
        box.queue.erase(it);
        return packet;
      }
    }
    SPARDL_CHECK(box.cv.wait_until(lock, deadline) !=
                 std::cv_status::timeout)
        << "Recv timed out: dst=" << dst << " waiting on src=" << src
        << " tag=" << tag << " — collective deadlock?";
  }
}

void Network::BarrierWait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const uint64_t my_generation = barrier_generation_;
  if (++barrier_waiting_ == size_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_generation_ != my_generation; });
}

double Network::MaxClockSync(int rank, double value) {
  (void)rank;
  std::unique_lock<std::mutex> lock(sync_mutex_);
  const uint64_t my_generation = sync_generation_;
  if (value > sync_max_) sync_max_ = value;
  if (++sync_count_ == size_) {
    sync_result_ = sync_max_;
    sync_max_ = 0.0;
    sync_count_ = 0;
    ++sync_generation_;
    sync_cv_.notify_all();
    return sync_result_;
  }
  sync_cv_.wait(lock, [&] { return sync_generation_ != my_generation; });
  return sync_result_;
}

bool Network::AllMailboxesEmpty() const {
  for (const auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    if (!box->queue.empty()) return false;
  }
  return true;
}

}  // namespace spardl
