#ifndef SPARDL_SIMNET_NETWORK_H_
#define SPARDL_SIMNET_NETWORK_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <variant>
#include <vector>

#include "simnet/cost_model.h"
#include "sparse/sparse_vector.h"
#include "topo/topology.h"

namespace spardl {

/// Message payloads the simulated network can carry.
///
/// A closed variant (rather than opaque bytes) keeps the simulator type-safe
/// and avoids serialisation costs that would pollute wall-clock timing; the
/// wire size is still charged from the logical encoding (COO entry = 2
/// words, dense float = 1 word).
using Payload =
    std::variant<SparseVector, std::vector<SparseVector>, std::vector<float>,
                 std::vector<uint32_t>, double, int64_t>;

/// Number of 4-byte wire words `payload` occupies.
size_t PayloadWords(const Payload& payload);

/// A message in flight.
struct Packet {
  Payload payload;
  size_t words = 0;
  /// Sender's simulated clock when the send was issued.
  double sent_at = 0.0;
  int tag = 0;
};

/// The in-process interconnect: one FIFO mailbox per (src, dst) pair.
///
/// Thread-safe; each of the P worker threads owns one endpoint (see `Comm`).
/// Blocking receives time out after `recv_timeout_seconds` of *wall* time
/// and abort the process — a hung collective is always a bug, and a loud
/// failure beats a silent deadlock in CI.
class Network {
 public:
  /// Flat crossbar shorthand: the paper's alpha-beta model.
  Network(int size, CostModel cost_model);

  /// Any fabric: message costs are delegated to `topology` (which fixes the
  /// worker count).
  explicit Network(std::unique_ptr<Topology> topology);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int size() const { return size_; }

  /// The topology's reference alpha-beta model (exact per-message cost on
  /// flat; the per-hop budget elsewhere).
  const CostModel& cost_model() const { return topology_->base_cost(); }

  Topology& topology() { return *topology_; }
  const Topology& topology() const { return *topology_; }

  void set_recv_timeout_seconds(double seconds) {
    recv_timeout_seconds_ = seconds;
  }

  /// Heterogeneous-cluster support (the paper's §VI extension): scales the
  /// cost of `rank`'s receive path by `factor` (>= 1 models a straggler
  /// with a slower NIC/placement). Set before running workers. Folds into
  /// the topology's per-node link scaling; on the default flat fabric this
  /// is exactly the historical whole-message scaling.
  void SetWorkerSlowdown(int rank, double factor);
  double WorkerSlowdown(int rank) const { return topology_->NodeScale(rank); }

  /// Delivery time at `dst` of a `words`-word message injected at `src`
  /// at simulated time `sent_at`, consumed by a receiver whose clock reads
  /// `receiver_now`; advances the fabric's link clocks.
  double DeliverTime(int src, int dst, size_t words, double sent_at,
                     double receiver_now) {
    return topology_->ChargeMessage(src, dst, words, sent_at, receiver_now);
  }

  /// Deposits a packet into the (src, dst) mailbox.
  void Post(int src, int dst, Packet packet);

  /// Blocks until a packet with `tag` from `src` to `dst` is available and
  /// removes it. Packets with the same tag are delivered FIFO.
  Packet Take(int src, int dst, int tag);

  /// Reusable rendezvous for all `size` workers. `slot` lets callers use
  /// the two-phase max-clock sync without races.
  void BarrierWait();

  /// Publishes `value` to a per-rank slot and returns the max over all
  /// ranks once everyone has published (used to align simulated clocks).
  double MaxClockSync(int rank, double value);

  /// True if every mailbox is empty (test hook: no stray messages).
  bool AllMailboxesEmpty() const;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Packet> queue;
  };

  Mailbox& BoxFor(int src, int dst) {
    return *mailboxes_[static_cast<size_t>(src) * static_cast<size_t>(size_) +
                       static_cast<size_t>(dst)];
  }
  const Mailbox& BoxFor(int src, int dst) const {
    return *mailboxes_[static_cast<size_t>(src) * static_cast<size_t>(size_) +
                       static_cast<size_t>(dst)];
  }

  std::unique_ptr<Topology> topology_;
  int size_;
  double recv_timeout_seconds_ = 120.0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Reusable barrier (generation-counted; std::barrier needs a fixed
  // completion type, a hand-rolled one is simpler to reuse).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  uint64_t barrier_generation_ = 0;

  // Max-clock sync state.
  std::mutex sync_mutex_;
  std::condition_variable sync_cv_;
  int sync_count_ = 0;
  double sync_max_ = 0.0;
  double sync_result_ = 0.0;
  uint64_t sync_generation_ = 0;
};

}  // namespace spardl

#endif  // SPARDL_SIMNET_NETWORK_H_
