#ifndef SPARDL_SIMNET_NETWORK_H_
#define SPARDL_SIMNET_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <variant>
#include <vector>

#include "common/lockcheck.h"
#include "des/event_engine.h"
#include "simnet/cost_model.h"
#include "sparse/sparse_vector.h"
#include "topo/topology.h"

namespace spardl {

class ProtocolChecker;

/// Message payloads the simulated network can carry.
///
/// A closed variant (rather than opaque bytes) keeps the simulator type-safe
/// and avoids serialisation costs that would pollute wall-clock timing; the
/// wire size is still charged from the logical encoding (COO entry = 2
/// words, dense float = 1 word).
using Payload =
    std::variant<SparseVector, std::vector<SparseVector>, std::vector<float>,
                 std::vector<uint32_t>, double, int64_t>;

/// Number of 4-byte wire words `payload` occupies.
size_t PayloadWords(const Payload& payload);

/// A message in flight.
struct Packet {
  Payload payload;
  size_t words = 0;
  /// Sender's simulated clock when the send was issued.
  double sent_at = 0.0;
  int tag = 0;
  /// Event-ordered engine only: the flow key assigned at `Post` time
  /// (0 on the busy-until engine, where charging happens at `Recv`).
  uint64_t flow = 0;
};

/// The in-process interconnect: one FIFO mailbox per (src, dst) pair.
///
/// Thread-safe; each of the P worker threads owns one endpoint (see `Comm`).
/// Blocking receives time out after `recv_timeout_seconds` of *wall* time
/// and abort the process — a hung collective is always a bug, and a loud
/// failure beats a silent deadlock in CI.
///
/// Charging engines: when the topology selects
/// `ChargeEngine::kEventOrdered` (and is not a closed-form fabric like
/// `FlatTopology`), the network runs a `des::`-style `EventEngine` — flows
/// are injected at `Post` time, per-hop events are processed in
/// `(time, flow key)` order, and every blocking operation (receive,
/// barrier, clock sync) routes through the engine's single mutex so the
/// last runnable thread pumps the queue. Otherwise the legacy busy-until
/// engine charges each message inside `Recv` via
/// `Topology::ChargeMessage`.
class Network {
 public:
  /// Flat crossbar shorthand: the paper's alpha-beta model.
  Network(int size, CostModel cost_model);

  /// Any fabric: message costs are delegated to `topology` (which fixes the
  /// worker count).
  explicit Network(std::unique_ptr<Topology> topology);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  ~Network();

  int size() const { return size_; }

  /// The topology's reference alpha-beta model (exact per-message cost on
  /// flat; the per-hop budget elsewhere).
  const CostModel& cost_model() const { return topology_->base_cost(); }

  Topology& topology() { return *topology_; }
  const Topology& topology() const { return *topology_; }

  void set_recv_timeout_seconds(double seconds) {
    recv_timeout_seconds_ = seconds;
  }

  /// Heterogeneous-cluster support (the paper's §VI extension): scales the
  /// cost of `rank`'s receive path by `factor` (>= 1 models a straggler
  /// with a slower NIC/placement). Set before running workers. Folds into
  /// the topology's per-node link scaling; on the default flat fabric this
  /// is exactly the historical whole-message scaling.
  void SetWorkerSlowdown(int rank, double factor);
  double WorkerSlowdown(int rank) const { return topology_->NodeScale(rank); }

  /// True when the event-ordered engine is charging this fabric.
  bool event_ordered() const { return engine_ != nullptr; }

  /// The event engine charging this fabric, or null (busy-until or
  /// closed-form fabrics). The cooperative scheduler pumps through it
  /// (`CoopScheduler::Run` takes it by pointer).
  EventEngine* event_engine() { return engine_.get(); }

  /// Attaches a span recorder to whichever engine charges this fabric
  /// (per-link occupancy spans). Call while no worker threads run; the
  /// recorder must outlive them. `Cluster::EnableTracing` does this.
  void AttachTraceRecorder(TraceRecorder* recorder);

  /// Cumulative charge counters for one link, from whichever engine is
  /// active. Zero on closed-form fabrics (flat never touches link state).
  LinkUsage link_usage(LinkId id) const;

  /// Deposits a packet into the (src, dst) mailbox. On the event-ordered
  /// engine this also injects the packet's flow into the event queue.
  void Post(int src, int dst, Packet packet);

  /// A received packet plus the receiver's advanced clock.
  struct Delivered {
    Packet packet;
    double delivery_time = 0.0;
  };

  /// Blocks until a packet with `tag` from `src` to `dst` is available
  /// (and, on the event engine, until its arrival time is resolved),
  /// removes it and returns it with its delivery time at a receiver whose
  /// clock reads `receiver_now`. Packets with the same tag are delivered
  /// FIFO. This is the one receive path both charging engines share.
  Delivered RecvPacket(int src, int dst, int tag, double receiver_now);

  /// Blocks until a packet with `tag` from `src` to `dst` is available and
  /// removes it. Packets with the same tag are delivered FIFO. Busy-until
  /// engine only — `RecvPacket` is the engine-agnostic path.
  Packet Take(int src, int dst, int tag);

  /// Worker-thread registration for the event engine's quiescence
  /// detection (no-ops on the busy-until engine). `Cluster::Run` enters
  /// every worker before spawning any thread — registration must not
  /// race with pump eligibility — and each worker exits as its function
  /// returns.
  void WorkerEnter() {
    if (engine_) engine_->WorkerEnter();
  }
  void WorkerExit() {
    if (engine_) engine_->WorkerExit();
  }

  /// Publishes `rank`'s simulated clock for the event engine's
  /// safe-horizon pump rule (no-op on the busy-until engine). Called by
  /// `Comm` on every clock change, without any network lock held.
  void PublishClock(int rank, double now) {
    if (engine_) engine_->PublishClock(rank, now);
  }

  /// Rewinds all fabric accounting state (per-link busy clocks on either
  /// engine) between measured phases; worker clocks rewind separately.
  void ResetSimState();

  /// True when no flow is in flight or awaiting consumption (end-of-run
  /// invariant; trivially true on the busy-until engine).
  bool SimIdle() const { return engine_ == nullptr || engine_->Idle(); }

  /// Reusable rendezvous for all `size` workers. `slot` lets callers use
  /// the two-phase max-clock sync without races.
  void BarrierWait();

  /// Publishes `value` to a per-rank slot and returns the max over all
  /// ranks once everyone has published (used to align simulated clocks).
  double MaxClockSync(int rank, double value);

  /// True if every mailbox is empty (test hook: no stray messages).
  bool AllMailboxesEmpty() const;

  /// Attaches the SPMD protocol verifier (see `simnet/protocol_check.h`).
  /// Once attached, every blocking wait also watches `checker->failed()`
  /// and throws `ProtocolViolation` instead of waiting out a diagnosed
  /// divergence. Call while no worker threads run
  /// (`Cluster::EnableProtocolCheck` does).
  void set_protocol_checker(ProtocolChecker* checker) {
    protocol_ = checker;
  }

  /// Wakes every thread blocked in a receive, barrier, or clock sync so it
  /// can observe a diagnosed protocol violation and unwind. Called by the
  /// detecting thread (which holds no network locks).
  void InterruptWaiters();

 private:
  struct Mailbox {
    /// Busy-until engine only (event mode guards mailboxes with the
    /// engine mutex). All P^2 mailbox mutexes are one lock-order family.
    lockcheck::OrderedMutex mutex{"simnet.mailbox"};
    std::condition_variable_any cv;
    std::deque<Packet> queue;
  };

  /// Throws `ProtocolViolation` when the attached checker has diagnosed a
  /// divergence (no-op otherwise). Called at every wait site.
  void ThrowIfInterrupted() const;

  /// Lock-free poll for wait predicates.
  bool interrupted() const;

  /// The (src, dst) mailbox, created on first touch. Mailboxes are lazy
  /// because the pair table is P^2: at P = 4096 eager construction is
  /// ~16.7M boxes (gigabytes, and most pairs never talk — SparDL's
  /// dense collectives are ring/doubling-shaped). Creation races resolve
  /// by CAS; the loser frees its box and adopts the winner's.
  Mailbox& BoxFor(int src, int dst);

  size_t MailboxCount() const {
    return static_cast<size_t>(size_) * static_cast<size_t>(size_);
  }

  std::unique_ptr<Topology> topology_;
  /// Non-null when the topology selects the event-ordered engine. In that
  /// mode the engine's mutex guards the mailboxes and the barrier/sync
  /// state below; the per-mailbox mutexes and `barrier_mutex_`/`sync_mutex_`
  /// go unused.
  std::unique_ptr<EventEngine> engine_;
  ProtocolChecker* protocol_ = nullptr;
  int size_;
  double recv_timeout_seconds_ = 120.0;
  /// P^2 lazily-populated slots (see `BoxFor`); null until first touch.
  /// Owned: the destructor deletes every created box.
  std::unique_ptr<std::atomic<Mailbox*>[]> mailboxes_;

  // Reusable barrier (generation-counted; std::barrier needs a fixed
  // completion type, a hand-rolled one is simpler to reuse).
  lockcheck::OrderedMutex barrier_mutex_{"simnet.barrier"};
  std::condition_variable_any barrier_cv_;
  int barrier_waiting_ = 0;
  uint64_t barrier_generation_ = 0;

  // Max-clock sync state.
  lockcheck::OrderedMutex sync_mutex_{"simnet.sync"};
  std::condition_variable_any sync_cv_;
  int sync_count_ = 0;
  double sync_max_ = 0.0;
  double sync_result_ = 0.0;
  uint64_t sync_generation_ = 0;
};

}  // namespace spardl

#endif  // SPARDL_SIMNET_NETWORK_H_
