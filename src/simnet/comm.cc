#include "simnet/comm.h"

namespace spardl {

CommGroup CommGroup::World(const Comm& comm) {
  CommGroup group;
  group.ranks.resize(static_cast<size_t>(comm.size()));
  for (int i = 0; i < comm.size(); ++i) {
    group.ranks[static_cast<size_t>(i)] = i;
  }
  group.my_pos = comm.rank();
  return group;
}

CommGroup CommGroup::ContiguousTeam(const Comm& comm, int num_teams,
                                    int team) {
  SPARDL_CHECK_GT(num_teams, 0);
  SPARDL_CHECK_EQ(comm.size() % num_teams, 0)
      << "team count must divide the worker count (d | P)";
  const int team_size = comm.size() / num_teams;
  SPARDL_CHECK_GE(team, 0);
  SPARDL_CHECK_LT(team, num_teams);
  CommGroup group;
  group.ranks.resize(static_cast<size_t>(team_size));
  for (int i = 0; i < team_size; ++i) {
    group.ranks[static_cast<size_t>(i)] = team * team_size + i;
  }
  group.my_pos = comm.rank() - team * team_size;
  return group;
}

CommGroup CommGroup::SamePositionAcrossTeams(const Comm& comm,
                                             int num_teams) {
  SPARDL_CHECK_GT(num_teams, 0);
  SPARDL_CHECK_EQ(comm.size() % num_teams, 0)
      << "team count must divide the worker count (d | P)";
  const int team_size = comm.size() / num_teams;
  const int my_team = comm.rank() / team_size;
  const int my_position = comm.rank() % team_size;
  CommGroup group;
  group.ranks.resize(static_cast<size_t>(num_teams));
  for (int t = 0; t < num_teams; ++t) {
    group.ranks[static_cast<size_t>(t)] = t * team_size + my_position;
  }
  group.my_pos = my_team;
  return group;
}

}  // namespace spardl
