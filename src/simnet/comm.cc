#include "simnet/comm.h"

namespace spardl {

CommGroup CommGroup::World(const Comm& comm) {
  CommGroup group;
  group.ranks.resize(static_cast<size_t>(comm.size()));
  for (int i = 0; i < comm.size(); ++i) {
    group.ranks[static_cast<size_t>(i)] = i;
  }
  group.my_pos = comm.rank();
  return group;
}

CommGroup CommGroup::Team(const Comm& comm,
                          const TeamPlacement& placement) {
  SPARDL_CHECK(!placement.empty());
  SPARDL_CHECK_EQ(placement.num_workers(), comm.size())
      << "placement is laid out for a different cluster size";
  CommGroup group;
  group.ranks = placement.TeamMembers(placement.TeamOf(comm.rank()));
  group.my_pos = placement.PositionOf(comm.rank());
  return group;
}

CommGroup CommGroup::CrossTeam(const Comm& comm,
                               const TeamPlacement& placement) {
  SPARDL_CHECK(!placement.empty());
  SPARDL_CHECK_EQ(placement.num_workers(), comm.size())
      << "placement is laid out for a different cluster size";
  const int position = placement.PositionOf(comm.rank());
  CommGroup group;
  group.ranks.resize(static_cast<size_t>(placement.num_teams()));
  for (int t = 0; t < placement.num_teams(); ++t) {
    group.ranks[static_cast<size_t>(t)] = placement.GlobalRank(t, position);
  }
  group.my_pos = placement.TeamOf(comm.rank());
  return group;
}

CommGroup CommGroup::ContiguousTeam(const Comm& comm, int num_teams,
                                    int team) {
  SPARDL_CHECK_GT(num_teams, 0);
  SPARDL_CHECK_EQ(comm.size() % num_teams, 0)
      << "team count must divide the worker count (d | P)";
  const int team_size = comm.size() / num_teams;
  SPARDL_CHECK_GE(team, 0);
  SPARDL_CHECK_LT(team, num_teams);
  // The contiguous layout is the kContiguous placement; keep the legacy
  // my_pos arithmetic (relative to the *requested* team) so callers
  // addressing a team other than their own see unchanged behaviour.
  const TeamPlacement placement =
      TeamPlacement::Contiguous(comm.size(), num_teams);
  CommGroup group;
  group.ranks = placement.TeamMembers(team);
  group.my_pos = comm.rank() - team * team_size;
  return group;
}

CommGroup CommGroup::SamePositionAcrossTeams(const Comm& comm,
                                             int num_teams) {
  SPARDL_CHECK_GT(num_teams, 0);
  SPARDL_CHECK_EQ(comm.size() % num_teams, 0)
      << "team count must divide the worker count (d | P)";
  return CrossTeam(comm,
                   TeamPlacement::Contiguous(comm.size(), num_teams));
}

}  // namespace spardl
