#ifndef SPARDL_SIMNET_COMM_H_
#define SPARDL_SIMNET_COMM_H_

#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/trace.h"
#include "simnet/comm_stats.h"
#include "simnet/network.h"
#include "simnet/protocol_check.h"
#include "topo/placement.h"

namespace spardl {

/// One worker's endpoint into the simulated cluster: point-to-point
/// messaging plus the worker's simulated clock.
///
/// Clock semantics (the α-β model, §II of the paper):
///  * `Send` is free for the sender (full-duplex single-port: injecting a
///    message overlaps with whatever the sender does next) and stamps the
///    packet with the sender's current clock.
///  * `Recv` advances the receiver to
///    `max(local_clock, sent_at) + alpha + beta * words` — a message cannot
///    be consumed before it was produced, and every receive pays one alpha
///    plus beta per word. Receives therefore serialise on the receiver,
///    which reproduces the paper's `P*alpha` charge for direct-send phases
///    and the `log P * alpha` charge for exchange-round algorithms.
///  * `Compute` charges local (non-communication) simulated time.
///
/// The `alpha + beta * words` charge above is the default flat fabric; a
/// `Network` built over a non-flat `Topology` instead charges per-hop
/// latencies plus bottleneck serialization with shared-link queueing (see
/// `topo/topology.h`). The "cannot consume before produced" and
/// receiver-serialisation rules hold on every fabric.
///
/// All SparDL algorithms and baselines are written SPMD against this class,
/// exactly as they would be against an MPI communicator.
class Comm {
 public:
  Comm(Network* network, int rank)
      : network_(network), rank_(rank), size_(network->size()) {}

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const { return rank_; }
  int size() const { return size_; }

  double sim_now() const { return sim_now_; }
  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

  /// The span recorder attached by `Cluster::EnableTracing` (null = off,
  /// the default; every record site is gated on this pointer).
  TraceRecorder* tracer() const { return tracer_; }
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }

  /// The SPMD protocol verifier attached by
  /// `Cluster::EnableProtocolCheck` (null = off, the default). Every
  /// collective op is reported to it *before* the network operation, so
  /// divergences are diagnosed instead of deadlocking.
  ProtocolChecker* protocol_checker() const { return protocol_; }
  void set_protocol_checker(ProtocolChecker* checker) {
    protocol_ = checker;
  }

  /// The phase tag `Recv` charges its wait under right now (maintained by
  /// `TraceScope`, always — the breakdown survives with tracing off).
  Phase phase() const { return phase_; }

  /// Sends `payload` to `dst`. Never blocks. `words_override`, when
  /// non-zero, replaces the payload's natural wire size — used to model
  /// alternative encodings (e.g. TopkDSA shipping a densified block as
  /// `width` dense words instead of `2 * nnz` COO words).
  void Send(int dst, Payload payload, int tag = 0,
            size_t words_override = 0) {
    SPARDL_DCHECK(dst != rank_) << "self-send";
    const size_t words =
        words_override != 0 ? words_override : PayloadWords(payload);
    stats_.messages_sent += 1;
    stats_.words_sent += words;
    if (tracer_ != nullptr) {
      tracer_->RecordWorker(
          rank_, TraceSpan{rank_, kStreamMain, phase_, "send", dst, -1,
                           sim_now_, sim_now_, words * sizeof(float)});
    }
    if (protocol_ != nullptr) {
      protocol_->OnSend(rank_, dst, tag, words);
      ThrowIfProtocolFailed();
    }
    network_->Post(rank_, dst,
                   Packet{std::move(payload), words, sim_now_, tag});
  }

  /// Blocks until a message with `tag` arrives from `src`; advances the
  /// clock per the network's topology cost model and returns the payload.
  /// On the default flat fabric this is exactly the legacy α-β charge;
  /// other topologies add per-hop latency and shared-link queueing,
  /// accounted by whichever `ChargeEngine` the topology selected.
  Payload Recv(int src, int tag = 0) {
    SPARDL_DCHECK(src != rank_) << "self-recv";
    if (protocol_ != nullptr) {
      protocol_->OnRecvPosted(rank_, src, tag);
      ThrowIfProtocolFailed();
    }
    Network::Delivered delivered =
        network_->RecvPacket(src, rank_, tag, sim_now_);
    if (protocol_ != nullptr) {
      protocol_->OnRecvMatched(rank_, src, tag, delivered.packet.words);
    }
    const double before = sim_now_;
    SetSimNow(delivered.delivery_time);
    stats_.messages_received += 1;
    stats_.words_received += delivered.packet.words;
    stats_.comm_seconds += sim_now_ - before;
    stats_.phase_seconds[static_cast<size_t>(phase_)] += sim_now_ - before;
    if (tracer_ != nullptr) {
      tracer_->RecordWorker(
          rank_, TraceSpan{rank_, kStreamMain, phase_, "recv", src, -1,
                           before, sim_now_,
                           delivered.packet.words * sizeof(float)});
      // Delivery metadata in the same order as the "recv" spans above:
      // the analysis layer zips the two sequences by ordinal to pair a
      // wait with its flow's dependency record.
      tracer_->RecordRecv(
          rank_, RecvRecord{src, delivered.packet.flow,
                            delivered.packet.sent_at,
                            delivered.packet.words});
    }
    return std::move(delivered.packet.payload);
  }

  /// Typed receive; CHECK-fails if the payload holds a different type.
  template <typename T>
  T RecvAs(int src, int tag = 0) {
    Payload payload = Recv(src, tag);
    T* value = std::get_if<T>(&payload);
    SPARDL_CHECK(value != nullptr)
        << "rank " << rank_ << ": payload type mismatch from " << src;
    return std::move(*value);
  }

  /// Send to `send_peer` and receive from `recv_peer` in one round.
  template <typename T>
  T ExchangeAs(int send_peer, int recv_peer, Payload payload, int tag = 0) {
    Send(send_peer, std::move(payload), tag);
    return RecvAs<T>(recv_peer, tag);
  }

  /// Charges `seconds` of local computation to the simulated clock.
  void Compute(double seconds) {
    SPARDL_DCHECK(seconds >= 0.0);
    const double before = sim_now_;
    SetSimNow(sim_now_ + seconds);
    stats_.compute_seconds += seconds;
    stats_.phase_seconds[static_cast<size_t>(Phase::kCompute)] += seconds;
    if (tracer_ != nullptr) {
      tracer_->RecordWorker(
          rank_, TraceSpan{rank_, kStreamMain, Phase::kCompute, "compute",
                           -1, -1, before, sim_now_, 0});
    }
  }

  /// Advance-only clock move: waits (idle) until simulated time `t`,
  /// no-op when the clock is already past it. Charged to neither comm nor
  /// compute — it models the communication stream sitting idle until a
  /// gradient bucket becomes ready. Never moves the clock backwards, so
  /// send timestamps stay monotonic per worker (the event engine's safety
  /// assumption).
  void AdvanceClockTo(double t) {
    if (t <= sim_now_) return;
    const double before = sim_now_;
    SetSimNow(t);
    stats_.phase_seconds[static_cast<size_t>(Phase::kOverlapIdle)] +=
        sim_now_ - before;
    if (tracer_ != nullptr) {
      tracer_->RecordWorker(
          rank_, TraceSpan{rank_, kStreamMain, Phase::kOverlapIdle, "idle",
                           -1, -1, before, sim_now_, 0});
    }
  }

  /// Accounts `seconds` of computation that overlaps communication: the
  /// stats line is charged but the clock does not move. The bucketed
  /// trainer tracks the compute timeline arithmetically (per-layer slices)
  /// and folds it into the clock via `AdvanceClockTo`, so charging the
  /// clock here as well would double-count.
  void ChargeOverlappedCompute(double seconds) {
    SPARDL_DCHECK(seconds >= 0.0);
    stats_.compute_seconds += seconds;
    stats_.phase_seconds[static_cast<size_t>(Phase::kCompute)] += seconds;
  }

  /// Rendezvous with all workers (no simulated-time effect).
  void Barrier() {
    if (protocol_ != nullptr) {
      protocol_->OnBarrierEnter(rank_, /*clock_sync=*/false);
      ThrowIfProtocolFailed();
    }
    network_->BarrierWait();
  }

  /// Rendezvous and align every worker's clock to the cluster-wide max —
  /// the synchronisation point at the end of an S-SGD iteration.
  void BarrierSyncClocks() {
    if (protocol_ != nullptr) {
      protocol_->OnBarrierEnter(rank_, /*clock_sync=*/true);
      ThrowIfProtocolFailed();
    }
    const double before = sim_now_;
    SetSimNow(network_->MaxClockSync(rank_, sim_now_));
    stats_.phase_seconds[static_cast<size_t>(Phase::kBarrier)] +=
        sim_now_ - before;
    if (tracer_ != nullptr) {
      tracer_->RecordWorker(
          rank_, TraceSpan{rank_, kStreamMain, Phase::kBarrier,
                           "barrier-sync", -1, -1, before, sim_now_, 0});
    }
  }

  /// Marks an iteration boundary for the time-series recorder: snapshots
  /// this worker's clock and cumulative counters. No-op with tracing off
  /// (the boundary carries no simulated-time cost either way). Call from
  /// the training/measurement loop once per iteration, before the final
  /// clock-sync barrier so cross-worker skew is still visible.
  void MarkIteration() {
    if (protocol_ != nullptr) protocol_->OnIteration(rank_);
    if (tracer_ == nullptr) return;
    IterationMark mark;
    mark.sim_now = sim_now_;
    mark.comm_seconds = stats_.comm_seconds;
    mark.compute_seconds = stats_.compute_seconds;
    mark.phase_seconds = stats_.phase_seconds;
    tracer_->MarkIteration(rank_, mark);
  }

  /// Test/bench hook: reset the clock (call on all ranks between runs).
  /// Publishes the rewind too — a stale *high* published clock after a
  /// reset would overstate the event engine's safe horizon, which is the
  /// one direction that breaks its soundness argument.
  void ResetClock(double value = 0.0) { SetSimNow(value); }

 private:
  friend class TraceScope;

  /// The one place the clock moves: keeps the engine's published copy
  /// (safe-horizon pump rule) in lockstep with `sim_now_`.
  void SetSimNow(double now) {
    sim_now_ = now;
    network_->PublishClock(rank_, now);
  }

  /// Unwinds this worker once the checker has a diagnosis, waking every
  /// peer still blocked in the network so they unwind too. The exception
  /// is caught by `Cluster::Run`, which returns the diagnosis as a
  /// `Status`.
  void ThrowIfProtocolFailed() {
    if (protocol_->failed()) {
      network_->InterruptWaiters();
      throw ProtocolViolation(protocol_->status());
    }
  }

  Network* network_;
  int rank_;
  int size_;
  double sim_now_ = 0.0;
  CommStats stats_;
  TraceRecorder* tracer_ = nullptr;
  ProtocolChecker* protocol_ = nullptr;
  Phase phase_ = Phase::kUntagged;
};

/// RAII phase scope: swaps the `Comm`'s current phase for its lifetime and
/// — when tracing is enabled — records one span covering the scoped
/// simulated-time interval on destruction. Always-on cost is two enum
/// writes and a clock read; no allocation either way (`name` must be a
/// string literal, `a`/`b` carry step/bucket indices for display).
///
/// Scopes follow the call stack over a per-worker monotonic clock, so
/// recorded spans nest and never partially overlap within a worker's
/// stream — the invariant the trace tests pin.
class TraceScope {
 public:
  TraceScope(Comm& comm, Phase phase, const char* name, int a = -1,
             int b = -1)
      : comm_(comm),
        prev_(comm.phase_),
        phase_(phase),
        name_(name),
        a_(a),
        b_(b),
        t0_(comm.sim_now()) {
    comm_.phase_ = phase;
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    comm_.phase_ = prev_;
    if (comm_.tracer_ != nullptr) {
      comm_.tracer_->RecordWorker(
          comm_.rank_, TraceSpan{comm_.rank_, kStreamMain, phase_, name_, a_,
                                 b_, t0_, comm_.sim_now(), bytes_});
    }
  }

  /// Optional payload accounting shown in the exported span.
  void AddBytes(uint64_t bytes) { bytes_ += bytes; }

 private:
  Comm& comm_;
  Phase prev_;
  Phase phase_;
  const char* name_;
  int a_;
  int b_;
  double t0_;
  uint64_t bytes_ = 0;
};

/// A team view over a communicator: `ranks[i]` is the global rank of group
/// position i. SparDL's team-based algorithms (SRS within a team, SAG
/// across teams) run on groups.
struct CommGroup {
  std::vector<int> ranks;
  int my_pos = 0;

  int size() const { return static_cast<int>(ranks.size()); }
  int GlobalRank(int pos) const { return ranks[static_cast<size_t>(pos)]; }

  /// The whole cluster as one group.
  static CommGroup World(const Comm& comm);

  /// This worker's team under `placement` (members in position order).
  /// CHECK-fails unless the placement matches comm.size() — validate at
  /// the config boundary (`TeamPlacement::Validate`) for a recoverable
  /// error.
  static CommGroup Team(const Comm& comm, const TeamPlacement& placement);

  /// The cross-team group of the workers sharing this worker's in-team
  /// position under `placement` (one worker per team, ordered by team id;
  /// my_pos is this worker's team) — the SAG companion of `Team`.
  static CommGroup CrossTeam(const Comm& comm,
                             const TeamPlacement& placement);

  /// Team `team` of `num_teams` equal contiguous teams; workers
  /// t*(P/d) .. (t+1)*(P/d)-1. CHECK-fails unless num_teams divides P.
  /// The `TeamPlacement::Contiguous` special case of `Team`, kept for
  /// callers that address an explicit team id.
  static CommGroup ContiguousTeam(const Comm& comm, int num_teams, int team);

  /// The contiguous special case of `CrossTeam`.
  static CommGroup SamePositionAcrossTeams(const Comm& comm, int num_teams);
};

}  // namespace spardl

#endif  // SPARDL_SIMNET_COMM_H_
