#include "simnet/protocol_check.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace spardl {

namespace {

/// How many trailing ops each worker's log retains / a diagnosis prints.
/// Enough to show the full divergent round; bounded so an instrumented
/// multi-thousand-iteration bench stays O(1) memory per worker.
constexpr size_t kLogCapacity = 64;
constexpr size_t kLogPrinted = 12;

}  // namespace

std::string_view ProtocolOpName(ProtocolOp op) {
  switch (op) {
    case ProtocolOp::kSend:
      return "send";
    case ProtocolOp::kRecv:
      return "recv";
    case ProtocolOp::kBarrier:
      return "barrier";
    case ProtocolOp::kClockSync:
      return "barrier-sync";
  }
  return "?";
}

ProtocolChecker::ProtocolChecker(int num_workers)
    : num_workers_(num_workers) {
  SPARDL_CHECK_GE(num_workers_, 1);
  workers_.resize(static_cast<size_t>(num_workers_));
  channels_.resize(static_cast<size_t>(num_workers_) *
                   static_cast<size_t>(num_workers_));
}

void ProtocolChecker::BeginRun() {
  SPARDL_CHECK(!failed())
      << "ProtocolChecker reused after a violation; the cluster's "
         "simulated state is inconsistent past the first diagnosis";
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  for (Worker& worker : workers_) worker = Worker{};
  for (auto& channel : channels_) channel.clear();
}

void ProtocolChecker::RecordLocked(int rank, ProtocolRecord record) {
  Worker& worker = WorkerFor(rank);
  record.iteration = worker.iteration;
  ++worker.num_ops;
  worker.log.push_back(record);
  if (worker.log.size() > kLogCapacity) worker.log.pop_front();
}

void ProtocolChecker::OnSend(int src, int dst, int tag, size_t words) {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  if (failed()) return;
  RecordLocked(src, ProtocolRecord{ProtocolOp::kSend, dst, tag, words, 0});
  ChannelLocked(src, dst).push_back(PendingSend{tag, words});
}

void ProtocolChecker::OnRecvPosted(int rank, int src, int tag) {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  if (failed()) return;
  RecordLocked(rank, ProtocolRecord{ProtocolOp::kRecv, src, tag, 0, 0});
  Worker& worker = WorkerFor(rank);
  worker.state = WorkerState::kRecvWait;
  worker.wait_peer = src;
  worker.wait_tag = tag;
  CheckStuckLocked();
}

void ProtocolChecker::OnRecvMatched(int rank, int src, int tag,
                                    size_t words) {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  if (failed()) return;
  Worker& worker = WorkerFor(rank);
  worker.state = WorkerState::kRunning;
  // Backfill the element count onto the recv record made at post time.
  if (!worker.log.empty() && worker.log.back().op == ProtocolOp::kRecv) {
    worker.log.back().words = words;
  }
  // Consume the matched send, mirroring the mailbox's semantics exactly:
  // first queued send with this tag, skipping other tags (FIFO per tag).
  auto& channel = ChannelLocked(src, rank);
  const auto it =
      std::find_if(channel.begin(), channel.end(),
                   [tag](const PendingSend& s) { return s.tag == tag; });
  SPARDL_CHECK(it != channel.end())
      << "protocol checker out of sync: worker " << rank
      << " received tag " << tag << " from " << src
      << " with no recorded unmatched send";
  channel.erase(it);
}

void ProtocolChecker::OnBarrierEnter(int rank, bool clock_sync) {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  if (failed()) return;
  RecordLocked(rank, ProtocolRecord{clock_sync ? ProtocolOp::kClockSync
                                               : ProtocolOp::kBarrier,
                                    -1, 0, 0, 0});
  // A peer already waiting at the *other* barrier kind can never
  // rendezvous with us: Barrier and BarrierSyncClocks use separate
  // counters, so the divergence would deadlock. Diagnose immediately.
  for (int peer = 0; peer < num_workers_; ++peer) {
    const Worker& other = WorkerFor(peer);
    if (peer == rank || other.state != WorkerState::kBarrierWait ||
        other.wait_clock_sync == clock_sync) {
      continue;
    }
    FailLocked("collective mismatch: worker " + std::to_string(rank) +
               " entered " + std::string(clock_sync ? "BarrierSyncClocks"
                                                    : "Barrier") +
               " while worker " + std::to_string(peer) + " waits in " +
               std::string(other.wait_clock_sync ? "BarrierSyncClocks"
                                                 : "Barrier") +
               " — divergent barrier kinds can never rendezvous\n" +
               DescribeWorkerLocked(rank) + DescribeWorkerLocked(peer));
    return;
  }
  Worker& worker = WorkerFor(rank);
  worker.state = WorkerState::kBarrierWait;
  worker.wait_clock_sync = clock_sync;

  const bool all_waiting =
      std::all_of(workers_.begin(), workers_.end(), [](const Worker& w) {
        return w.state == WorkerState::kBarrierWait;
      });
  if (!all_waiting) {
    // Some peer is done (the barrier can then never complete) or still
    // blocked elsewhere — let the global progress check decide.
    CheckStuckLocked();
    return;
  }
  // Logical completion (we are the last arriver; the network barrier we
  // are about to enter will release everyone). A clock-sync barrier is an
  // iteration boundary: every send must have found its receive by now, so
  // surviving unmatched sends are a peer asymmetry — diagnose them here
  // rather than as a confusing tag mismatch an iteration later.
  if (clock_sync) {
    for (int src = 0; src < num_workers_; ++src) {
      for (int dst = 0; dst < num_workers_; ++dst) {
        const auto& channel = ChannelLocked(src, dst);
        if (channel.empty()) continue;
        FailLocked(
            "peer asymmetry: " + std::to_string(channel.size()) +
            " unmatched send(s) from worker " + std::to_string(src) +
            " to worker " + std::to_string(dst) + " (first: tag=" +
            std::to_string(channel.front().tag) + ", words=" +
            std::to_string(channel.front().words) +
            ") at a clock-sync barrier — the receiver never posted a "
            "matching recv this iteration\n" +
            DescribeWorkerLocked(src) + DescribeWorkerLocked(dst));
        return;
      }
    }
  }
  for (Worker& w : workers_) w.state = WorkerState::kRunning;
}

void ProtocolChecker::OnIteration(int rank) {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  ++WorkerFor(rank).iteration;
}

void ProtocolChecker::OnWorkerDone(int rank) {
  std::lock_guard<lockcheck::OrderedMutex> lock(mu_);
  if (failed()) return;
  WorkerFor(rank).state = WorkerState::kDone;
  CheckStuckLocked();
}

bool ProtocolChecker::RecvSatisfiableLocked(int rank) const {
  const Worker& worker = workers_[static_cast<size_t>(rank)];
  const auto& channel =
      channels_[static_cast<size_t>(worker.wait_peer) *
                    static_cast<size_t>(num_workers_) +
                static_cast<size_t>(rank)];
  return std::any_of(channel.begin(), channel.end(),
                     [&worker](const PendingSend& s) {
                       return s.tag == worker.wait_tag;
                     });
}

void ProtocolChecker::CheckStuckLocked() {
  if (failed()) return;
  bool all_done = true;
  for (const Worker& worker : workers_) {
    if (worker.state == WorkerState::kRunning) return;  // progress possible
    if (worker.state != WorkerState::kDone) all_done = false;
  }
  if (all_done) return;
  for (int rank = 0; rank < num_workers_; ++rank) {
    if (WorkerFor(rank).state == WorkerState::kRecvWait &&
        RecvSatisfiableLocked(rank)) {
      return;  // that receive will complete and its worker will run
    }
  }
  // Stuck: every worker is blocked or done, no wait is satisfiable, and
  // at least one worker is not done. Pick the most specific diagnosis.
  int victim = -1;
  int peer = -1;
  std::string reason;
  for (int rank = 0; rank < num_workers_ && victim < 0; ++rank) {
    const Worker& worker = WorkerFor(rank);
    if (worker.state != WorkerState::kRecvWait) continue;
    const auto& channel = ChannelLocked(worker.wait_peer, rank);
    if (!channel.empty()) {
      // Sends exist on the waited-on channel but none carries the awaited
      // tag: the classic mismatched-tag divergence.
      std::string tags;
      for (const PendingSend& s : channel) {
        if (!tags.empty()) tags += ", ";
        tags += std::to_string(s.tag);
      }
      reason = "tag mismatch: worker " + std::to_string(rank) +
               " waits for tag " + std::to_string(worker.wait_tag) +
               " from worker " + std::to_string(worker.wait_peer) +
               ", but that channel only holds unmatched send(s) with "
               "tag(s) [" +
               tags + "]";
      victim = rank;
      peer = worker.wait_peer;
    }
  }
  for (int rank = 0; rank < num_workers_ && victim < 0; ++rank) {
    const Worker& worker = WorkerFor(rank);
    if (worker.state == WorkerState::kRecvWait &&
        WorkerFor(worker.wait_peer).state == WorkerState::kDone) {
      reason = "peer finished early: worker " + std::to_string(rank) +
               " waits for tag " + std::to_string(worker.wait_tag) +
               " from worker " + std::to_string(worker.wait_peer) +
               ", which already returned — divergent op counts "
               "(e.g. unequal round/team sizes)";
      victim = rank;
      peer = worker.wait_peer;
    }
  }
  for (int rank = 0; rank < num_workers_ && victim < 0; ++rank) {
    const Worker& worker = WorkerFor(rank);
    if (worker.state == WorkerState::kBarrierWait) {
      // A barrier needs every worker; someone is done or recv-stuck.
      victim = rank;
      for (int other = 0; other < num_workers_; ++other) {
        if (WorkerFor(other).state != WorkerState::kBarrierWait) {
          peer = other;
          break;
        }
      }
      reason = "incomplete barrier: worker " + std::to_string(rank) +
               " waits at " +
               std::string(worker.wait_clock_sync ? "BarrierSyncClocks"
                                                  : "Barrier") +
               " but worker " + std::to_string(peer) +
               " can never arrive";
    }
  }
  if (victim < 0) {
    // All remaining blocked workers are recv-waiting on empty channels.
    for (int rank = 0; rank < num_workers_; ++rank) {
      if (WorkerFor(rank).state == WorkerState::kRecvWait) {
        victim = rank;
        peer = WorkerFor(rank).wait_peer;
        break;
      }
    }
    reason = "collective deadlock: every worker is blocked and no recorded "
             "send satisfies any pending recv (divergent schedules)";
  }
  std::string message = reason + "\n";
  message += DescribeWorkerLocked(victim);
  if (peer >= 0 && peer != victim) message += DescribeWorkerLocked(peer);
  std::ostringstream summary;
  summary << "worker states:";
  for (int rank = 0; rank < num_workers_; ++rank) {
    const Worker& worker = WorkerFor(rank);
    summary << " " << rank << "=";
    switch (worker.state) {
      case WorkerState::kRunning:
        summary << "running";
        break;
      case WorkerState::kRecvWait:
        summary << "recv-wait(src=" << worker.wait_peer
                << ",tag=" << worker.wait_tag << ")";
        break;
      case WorkerState::kBarrierWait:
        summary << (worker.wait_clock_sync ? "barrier-sync-wait"
                                           : "barrier-wait");
        break;
      case WorkerState::kDone:
        summary << "done";
        break;
    }
  }
  FailLocked(message + summary.str());
}

void ProtocolChecker::FailLocked(std::string message) {
  if (failed()) return;  // first diagnosis wins
  status_ = Status::FailedPrecondition("protocol violation: " +
                                       std::move(message));
  failed_.store(true, std::memory_order_release);
}

std::string ProtocolChecker::DescribeWorkerLocked(int rank) const {
  const Worker& worker = workers_[static_cast<size_t>(rank)];
  std::ostringstream out;
  out << "-- worker " << rank << " op trace (iter " << worker.iteration
      << ", " << worker.num_ops << " ops total, last "
      << std::min(worker.log.size(), kLogPrinted) << " shown):\n";
  const size_t start =
      worker.log.size() > kLogPrinted ? worker.log.size() - kLogPrinted : 0;
  for (size_t i = start; i < worker.log.size(); ++i) {
    const ProtocolRecord& record = worker.log[i];
    const uint64_t ordinal = worker.num_ops - worker.log.size() + i + 1;
    out << "   #" << ordinal << " " << ProtocolOpName(record.op);
    if (record.op == ProtocolOp::kSend) {
      out << "(dst=" << record.peer << ", tag=" << record.tag
          << ", words=" << record.words << ")";
    } else if (record.op == ProtocolOp::kRecv) {
      out << "(src=" << record.peer << ", tag=" << record.tag
          << ", words=" << record.words << ")";
    } else {
      out << "()";
    }
    out << " @iter" << record.iteration << "\n";
  }
  return out.str();
}

}  // namespace spardl
