#ifndef SPARDL_SIMNET_CLUSTER_H_
#define SPARDL_SIMNET_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "simnet/comm.h"
#include "simnet/network.h"
#include "simnet/protocol_check.h"
#include "topo/topology_spec.h"

namespace spardl {

/// How `Cluster::Run` executes the P SPMD workers (see `Cluster`).
enum class ExecBackend {
  /// One OS thread per worker — the legacy backend. The only backend
  /// ThreadSanitizer can observe (ucontext switches are invisible to
  /// it), so TSan builds force this choice.
  kThread,
  /// All workers as stackful fibers cooperatively scheduled on the
  /// calling thread (`CoopScheduler`). Deterministic interleaving, no
  /// per-worker OS thread — the backend that scales one machine to
  /// P = 1024–4096 workers.
  kFiber,
};

/// Owns a simulated cluster: the network plus one `Comm` endpoint per
/// worker, and runs SPMD worker functions on an execution backend —
/// thread-per-worker or cooperative fibers (`ExecBackend`).
///
/// ```
/// Cluster cluster(14, CostModel::Ethernet());                  // flat
/// Cluster racks(TopologySpec::FatTree(16, 4, 8.0));            // any fabric
/// cluster.Run([&](Comm& comm) { ... SPMD code ... });
/// double t = cluster.MaxSimSeconds();
/// ```
///
/// Workers block on `Comm::Recv` (parking the thread or yielding the
/// fiber), so the cluster works — slowly but correctly — even on a
/// single hardware core.
class Cluster {
 public:
  /// Flat crossbar (the paper's model) shorthand.
  Cluster(int size, CostModel cost_model);

  /// Any fabric; CHECK-fails on an invalid spec (use `spec.Build()` first
  /// for recoverable validation).
  explicit Cluster(const TopologySpec& spec);

  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const { return static_cast<int>(comms_.size()); }
  Network& network() { return *network_; }
  const Network& network() const { return *network_; }
  Topology& topology() { return network_->topology(); }
  const Topology& topology() const { return network_->topology(); }

  Comm& comm(int rank) { return *comms_[static_cast<size_t>(rank)]; }
  const Comm& comm(int rank) const {
    return *comms_[static_cast<size_t>(rank)];
  }

  /// One worker's counters (the per-worker view of `TotalStats`).
  const CommStats& WorkerStats(int rank) const { return comm(rank).stats(); }

  /// Turns on span recording for this cluster (idempotent; off by
  /// default). Call between runs, not while workers execute. Spans
  /// accumulate across `Run` calls until `ResetClocksAndStats`.
  TraceRecorder& EnableTracing();

  /// The attached recorder, or null when tracing is off.
  TraceRecorder* tracer() const { return trace_recorder_.get(); }

  /// Turns on SPMD protocol verification for this cluster (idempotent;
  /// off by default — the hooks cost one virtualless branch each when
  /// off). Call between runs, not while workers execute. With checking
  /// on, a divergent collective schedule (mismatched tag, unequal round
  /// counts, wrong team size, mixed barrier kinds) makes `Run` return a
  /// diagnostic `Status` naming both workers' op traces instead of
  /// deadlocking until the wall-clock timeout.
  ProtocolChecker& EnableProtocolCheck();

  /// The attached verifier, or null when checking is off.
  ProtocolChecker* protocol_checker() const {
    return protocol_checker_.get();
  }

  /// The process-wide default backend: `SPARDL_EXEC_BACKEND` env
  /// ("thread" | "fiber"; CHECK-fails on anything else), else
  /// `kThread`. TSan builds always resolve to `kThread`.
  static ExecBackend DefaultExecBackend();

  /// Overrides this cluster's backend (constructed with the process
  /// default). Call between runs. Simulated results are identical on
  /// both backends — see `CoopScheduler` — so this only trades wall
  /// clock (fibers win at large P) against TSan observability.
  /// TSan builds ignore `kFiber` and keep running threads.
  void set_exec_backend(ExecBackend backend) { backend_ = backend; }
  ExecBackend exec_backend() const { return backend_; }

  /// Runs `worker_fn(comm)` on every rank concurrently; returns when all
  /// workers finish. CHECK failures inside workers abort the process.
  ///
  /// Returns OK unless protocol checking (`EnableProtocolCheck`) is on
  /// and diagnosed a divergence — then every worker is unwound and the
  /// diagnosis is returned. After a non-OK return the cluster's simulated
  /// state is inconsistent (the run never completed); calling `Run` again
  /// CHECK-fails.
  Status Run(const std::function<void(Comm&)>& worker_fn);

  /// Max simulated clock across workers (the cluster's makespan).
  double MaxSimSeconds() const;

  /// Aggregated stats across all workers.
  CommStats TotalStats() const;

  /// Max per-worker received-words (the paper's per-worker bandwidth y).
  uint64_t MaxWordsReceived() const;

  /// Max per-worker received-messages (the paper's per-worker latency x).
  uint64_t MaxMessagesReceived() const;

  /// Zeroes all clocks and stats — the topology's per-link busy clocks
  /// and usage counters, and any recorded trace spans (between measured
  /// phases).
  void ResetClocksAndStats();

 private:
  explicit Cluster(std::unique_ptr<Network> network);

  /// The thread-per-worker `Run` body (also the TSan fallback).
  Status RunOnThreads(const std::function<void(Comm&)>& worker_fn,
                      ProtocolChecker* checker);

  /// The cooperative-fiber `Run` body.
  Status RunOnFibers(const std::function<void(Comm&)>& worker_fn,
                     ProtocolChecker* checker);

  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<Comm>> comms_;
  std::unique_ptr<TraceRecorder> trace_recorder_;
  std::unique_ptr<ProtocolChecker> protocol_checker_;
  ExecBackend backend_ = ExecBackend::kThread;
  /// Set once a run returned non-OK: workers were unwound mid-collective,
  /// so mailboxes/clocks are garbage and further runs must not start.
  bool poisoned_ = false;
};

}  // namespace spardl

#endif  // SPARDL_SIMNET_CLUSTER_H_
