#ifndef SPARDL_SIMNET_PROTOCOL_CHECK_H_
#define SPARDL_SIMNET_PROTOCOL_CHECK_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <string>
#include <vector>

#include "common/lockcheck.h"
#include "common/status.h"

namespace spardl {

/// SPMD collective-protocol verification.
///
/// Every SparDL algorithm is SPMD code against `Comm`: all workers must
/// execute *matching* sequences of collective operations (a send has a
/// receive with the same (peer, tag); all workers reach the same kind of
/// barrier; nobody returns while a peer still waits). A divergence — a
/// mismatched tag, an unequal SRS round count across replicas, a wrong
/// team size — does not crash: it deadlocks, and the only diagnostic is a
/// 120-second wall-clock timeout abort with one worker's view.
///
/// `ProtocolChecker` is an always-compiled, flag-enabled
/// (`Cluster::EnableProtocolCheck` / `--protocol-check`) verifier that
/// mirrors the network's matching rules on cheap logical state: each
/// worker's sequence of collective ops (kind, peer, tag, element count,
/// iteration) is recorded into a bounded per-worker log, per-channel
/// unmatched sends are tracked with the mailbox's own tag-filtered FIFO
/// semantics, and the cross-checks run at each blocking transition:
///
///  * a worker entering `Barrier` while a peer waits in
///    `BarrierSyncClocks` (or vice versa) fails immediately — mismatched
///    barrier kinds can never rendezvous;
///  * a completed *clock-sync* barrier (an iteration boundary) with
///    unmatched sends still queued fails — a peer asymmetry that plain
///    FIFO matching would surface one iteration too late;
///  * whenever every worker is blocked (or done) and no blocked worker's
///    wait can be satisfied by the recorded unmatched sends, the run is
///    diagnosed as stuck — with specialised messages for tag mismatches
///    (wrong-tag sends queued on the waited-on channel) and for peers
///    that finished early.
///
/// Soundness: hooks run *before* the corresponding network operation, so
/// the checker's view of sends is never behind the mailboxes'; a wait the
/// checker deems satisfiable really can complete, so there are no false
/// stuck reports — at worst a transiently missed one, caught at the next
/// blocking transition.
///
/// On detection the first diagnosis wins (later ones are dropped), the
/// failure flag flips, and the detecting `Comm` interrupts every blocked
/// waiter via `Network::InterruptWaiters`; all workers unwind with
/// `ProtocolViolation` and `Cluster::Run` returns the diagnosis as a
/// `Status` naming both workers' op traces — instead of hanging.

/// One recorded collective operation in a worker's log.
enum class ProtocolOp : uint8_t {
  kSend,
  kRecv,
  kBarrier,
  kClockSync,
};

std::string_view ProtocolOpName(ProtocolOp op);

struct ProtocolRecord {
  ProtocolOp op = ProtocolOp::kSend;
  /// Peer rank for send/recv; -1 for barriers.
  int peer = -1;
  int tag = 0;
  /// Wire words for send/recv; 0 for barriers.
  size_t words = 0;
  /// The worker's iteration counter (`Comm::MarkIteration`) when the op
  /// was issued.
  int64_t iteration = 0;
};

/// Thrown by `Comm`/`Network` blocking paths once a violation has been
/// diagnosed, to unwind every worker thread back to `Cluster::Run` (which
/// converts it into the returned `Status`). Never escapes `Cluster::Run`.
class ProtocolViolation : public std::exception {
 public:
  explicit ProtocolViolation(Status status) : status_(std::move(status)) {}

  const Status& status() const { return status_; }
  const char* what() const noexcept override {
    return status_.message().c_str();
  }

 private:
  Status status_;
};

/// The verifier. One instance per `Cluster`; hooks are thread-safe (worker
/// threads call them concurrently) and `failed()` is a lock-free flag safe
/// to poll from wait predicates.
class ProtocolChecker {
 public:
  explicit ProtocolChecker(int num_workers);

  ProtocolChecker(const ProtocolChecker&) = delete;
  ProtocolChecker& operator=(const ProtocolChecker&) = delete;

  /// Resets per-run state (worker states, channels, logs) at the top of
  /// `Cluster::Run`. Call while no worker threads run. CHECK-fails if a
  /// previous run's diagnosis was never consumed — a failed cluster is
  /// poisoned.
  void BeginRun();

  // --- Hooks, called by `Comm` *before* the corresponding network
  // operation (and `OnRecvMatched` right after the receive completes).

  void OnSend(int src, int dst, int tag, size_t words);
  void OnRecvPosted(int rank, int src, int tag);
  void OnRecvMatched(int rank, int src, int tag, size_t words);
  void OnBarrierEnter(int rank, bool clock_sync);
  /// `Comm::MarkIteration` — advances the worker's iteration counter used
  /// to label log entries.
  void OnIteration(int rank);
  /// The worker's function returned (called by `Cluster::Run`'s wrapper).
  void OnWorkerDone(int rank);

  /// True once a violation has been diagnosed. Lock-free; safe in wait
  /// predicates (monotonic false -> true).
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// The first diagnosis, or OK. Lock-free: the status is written once,
  /// before `failed_` is published.
  Status status() const {
    if (!failed()) return Status::OK();
    return status_;
  }

 private:
  enum class WorkerState : uint8_t {
    kRunning,
    kRecvWait,
    kBarrierWait,
    kDone,
  };

  struct Worker {
    WorkerState state = WorkerState::kRunning;
    /// Valid in kRecvWait: the awaited (src, tag).
    int wait_peer = -1;
    int wait_tag = 0;
    /// Valid in kBarrierWait: which barrier kind.
    bool wait_clock_sync = false;
    int64_t iteration = 0;
    /// Ordinal of the next op (log entries may have been evicted).
    uint64_t num_ops = 0;
    /// Bounded trailing window of this worker's ops.
    std::deque<ProtocolRecord> log;
  };

  /// One unmatched send on a (src, dst) channel.
  struct PendingSend {
    int tag = 0;
    size_t words = 0;
  };

  Worker& WorkerFor(int rank) {
    return workers_[static_cast<size_t>(rank)];
  }
  std::deque<PendingSend>& ChannelLocked(int src, int dst) {
    return channels_[static_cast<size_t>(src) *
                         static_cast<size_t>(num_workers_) +
                     static_cast<size_t>(dst)];
  }

  void RecordLocked(int rank, ProtocolRecord record);

  /// True when `rank`'s pending receive has a matching unmatched send.
  bool RecvSatisfiableLocked(int rank) const;

  /// Global progress check, run at every blocking transition (recv posted,
  /// barrier entered, worker done): if no worker can make progress and not
  /// everyone is done, diagnoses the stuck state and fails the run.
  void CheckStuckLocked();

  /// Latches the first diagnosis and publishes `failed_`.
  void FailLocked(std::string message);

  /// "worker 2: recv-wait(src=0, tag=7) at iter 3 after 41 ops" plus the
  /// trailing op log, one op per line.
  std::string DescribeWorkerLocked(int rank) const;

  const int num_workers_;
  /// Guards all checker state below. A leaf in the lock order: held only
  /// inside hook calls, never while taking an engine/network mutex.
  mutable lockcheck::OrderedMutex mu_{"simnet.protocol"};
  std::vector<Worker> workers_;
  std::vector<std::deque<PendingSend>> channels_;  // [src * P + dst]

  /// Written once (under `mu_`) before `failed_` is published with release
  /// order; immutable afterwards, so readers need no lock.
  Status status_;
  std::atomic<bool> failed_{false};
};

}  // namespace spardl

#endif  // SPARDL_SIMNET_PROTOCOL_CHECK_H_
