#include "simnet/cluster.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace spardl {

Cluster::Cluster(int size, CostModel cost_model)
    : Cluster(std::make_unique<Network>(size, cost_model)) {}

Cluster::Cluster(const TopologySpec& spec)
    : Cluster(std::make_unique<Network>([&spec] {
        auto built = spec.Build();
        SPARDL_CHECK(built.ok()) << built.status().ToString();
        return std::move(*built);
      }())) {}

Cluster::Cluster(std::unique_ptr<Network> network)
    : network_(std::move(network)) {
  const int size = network_->size();
  comms_.reserve(static_cast<size_t>(size));
  for (int r = 0; r < size; ++r) {
    comms_.push_back(std::make_unique<Comm>(network_.get(), r));
  }
}

Cluster::~Cluster() = default;

void Cluster::Run(const std::function<void(Comm&)>& worker_fn) {
  std::vector<std::thread> threads;
  threads.reserve(comms_.size());
  for (auto& comm : comms_) {
    threads.emplace_back([&worker_fn, &comm] { worker_fn(*comm); });
  }
  for (auto& t : threads) t.join();
  SPARDL_CHECK(network_->AllMailboxesEmpty())
      << "worker function left unconsumed messages in the network";
}

double Cluster::MaxSimSeconds() const {
  double max_t = 0.0;
  for (const auto& comm : comms_) {
    max_t = std::max(max_t, comm->sim_now());
  }
  return max_t;
}

CommStats Cluster::TotalStats() const {
  CommStats total;
  for (const auto& comm : comms_) total += comm->stats();
  return total;
}

uint64_t Cluster::MaxWordsReceived() const {
  uint64_t max_words = 0;
  for (const auto& comm : comms_) {
    max_words = std::max(max_words, comm->stats().words_received);
  }
  return max_words;
}

uint64_t Cluster::MaxMessagesReceived() const {
  uint64_t max_messages = 0;
  for (const auto& comm : comms_) {
    max_messages = std::max(max_messages, comm->stats().messages_received);
  }
  return max_messages;
}

void Cluster::ResetClocksAndStats() {
  for (auto& comm : comms_) {
    comm->ResetClock();
    comm->stats().Reset();
  }
  // Link busy clocks must rewind with the worker clocks, or leftover
  // warm-up occupancy would delay post-reset flows.
  network_->topology().ResetLinkClocks();
}

}  // namespace spardl
