#include "simnet/cluster.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/logging.h"
#include "des/coop_scheduler.h"

// TSan cannot follow ucontext stack switches (unlike ASan there is no
// fiber annotation API for it), so fiber execution under TSan would
// produce nothing but false positives. Detect it and pin the thread
// backend; the TSan CI job exists precisely to watch real threads.
#if defined(__SANITIZE_THREAD__)
#define SPARDL_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPARDL_TSAN 1
#endif
#endif

namespace spardl {

Cluster::Cluster(int size, CostModel cost_model)
    : Cluster(std::make_unique<Network>(size, cost_model)) {}

Cluster::Cluster(const TopologySpec& spec)
    : Cluster(std::make_unique<Network>([&spec] {
        auto built = spec.Build();
        SPARDL_CHECK(built.ok()) << built.status().ToString();
        return std::move(*built);
      }())) {}

Cluster::Cluster(std::unique_ptr<Network> network)
    : network_(std::move(network)), backend_(DefaultExecBackend()) {
  const int size = network_->size();
  comms_.reserve(static_cast<size_t>(size));
  for (int r = 0; r < size; ++r) {
    comms_.push_back(std::make_unique<Comm>(network_.get(), r));
  }
}

Cluster::~Cluster() = default;

ExecBackend Cluster::DefaultExecBackend() {
#ifdef SPARDL_TSAN
  return ExecBackend::kThread;
#else
  static const ExecBackend backend = [] {
    const char* env = std::getenv("SPARDL_EXEC_BACKEND");
    if (env == nullptr || *env == '\0') return ExecBackend::kThread;
    const std::string value(env);
    if (value == "thread") return ExecBackend::kThread;
    if (value == "fiber") return ExecBackend::kFiber;
    SPARDL_CHECK(false) << "SPARDL_EXEC_BACKEND must be \"thread\" or "
                           "\"fiber\", got \""
                        << value << "\"";
    __builtin_unreachable();
  }();
  return backend;
#endif
}

Status Cluster::Run(const std::function<void(Comm&)>& worker_fn) {
  SPARDL_CHECK(!poisoned_)
      << "Cluster::Run after a protocol violation: workers were unwound "
         "mid-collective, so the simulated state is inconsistent";
  ProtocolChecker* checker = protocol_checker_.get();
  if (checker != nullptr) checker->BeginRun();
#ifndef SPARDL_TSAN
  if (backend_ == ExecBackend::kFiber) {
    return RunOnFibers(worker_fn, checker);
  }
#endif
  return RunOnThreads(worker_fn, checker);
}

Status Cluster::RunOnFibers(const std::function<void(Comm&)>& worker_fn,
                            ProtocolChecker* checker) {
  Network* network = network_.get();
  // No WorkerEnter/Exit: the engine's quiescence counters exist to tell
  // pump-eligible threads apart, and here there is exactly one OS
  // thread — the scheduler pumps at its own all-workers-blocked cuts.
  CoopScheduler scheduler;
  scheduler.Run(
      static_cast<int>(comms_.size()), network->event_engine(),
      [this, &worker_fn, network, checker](int rank) {
        Comm& comm = *comms_[static_cast<size_t>(rank)];
        try {
          worker_fn(comm);
          // A worker that returns while a peer still waits on it is
          // itself a divergence; the checker diagnoses the transition.
          if (checker != nullptr) checker->OnWorkerDone(comm.rank());
        } catch (const ProtocolViolation&) {
          // Diagnosis latched in the checker; unwind this worker.
        }
        if (checker != nullptr && checker->failed()) {
          // Peers still waiting carry `interrupted()` in their wake
          // predicates; this makes the scheduler release them to
          // observe the failure and unwind.
          network->InterruptWaiters();
        }
      });
  if (checker != nullptr && checker->failed()) {
    poisoned_ = true;
    return checker->status();
  }
  SPARDL_CHECK(network_->AllMailboxesEmpty())
      << "worker function left unconsumed messages in the network";
  SPARDL_CHECK(network_->SimIdle())
      << "worker function left unresolved flows in the event engine";
  return Status::OK();
}

Status Cluster::RunOnThreads(const std::function<void(Comm&)>& worker_fn,
                             ProtocolChecker* checker) {
  std::vector<std::thread> threads;
  threads.reserve(comms_.size());
  Network* network = network_.get();
  // Register every worker with the event engine's quiescence detection
  // (no-op on the busy-until engine) BEFORE any thread starts: if the
  // engine only learned about workers as their threads got scheduled, the
  // already-started ones could look quiescent and pump contended events
  // ahead of a not-yet-registered worker's earlier-keyed flows — exactly
  // the startup-timing dependence the engine exists to eliminate.
  for (size_t i = 0; i < comms_.size(); ++i) network->WorkerEnter();
  for (auto& comm : comms_) {
    threads.emplace_back([&worker_fn, &comm, network, checker] {
      try {
        worker_fn(*comm);
        // A worker that returns while a peer still waits on it is itself
        // a divergence; the checker diagnoses it from this transition.
        if (checker != nullptr) checker->OnWorkerDone(comm->rank());
      } catch (const ProtocolViolation&) {
        // The diagnosis is latched in the checker; just unwind this
        // worker. (Only thrown when a checker is attached.)
      }
      if (checker != nullptr && checker->failed()) {
        // Wake any peers still blocked so they observe the failure and
        // unwind too — whoever detected first may have been this thread.
        network->InterruptWaiters();
      }
      // A worker that returns must deregister, or the remaining workers
      // could never all be "blocked".
      network->WorkerExit();
    });
  }
  for (auto& t : threads) t.join();
  if (checker != nullptr && checker->failed()) {
    // Unwound mid-collective: mailboxes may hold orphaned messages and
    // the engine unresolved flows — by design. Poison instead of
    // CHECKing the end-of-run invariants.
    poisoned_ = true;
    return checker->status();
  }
  SPARDL_CHECK(network_->AllMailboxesEmpty())
      << "worker function left unconsumed messages in the network";
  SPARDL_CHECK(network_->SimIdle())
      << "worker function left unresolved flows in the event engine";
  return Status::OK();
}

TraceRecorder& Cluster::EnableTracing() {
  if (!trace_recorder_) {
    trace_recorder_ = std::make_unique<TraceRecorder>(size());
    for (auto& comm : comms_) comm->set_tracer(trace_recorder_.get());
    network_->AttachTraceRecorder(trace_recorder_.get());
  }
  return *trace_recorder_;
}

ProtocolChecker& Cluster::EnableProtocolCheck() {
  if (!protocol_checker_) {
    protocol_checker_ = std::make_unique<ProtocolChecker>(size());
    for (auto& comm : comms_) {
      comm->set_protocol_checker(protocol_checker_.get());
    }
    network_->set_protocol_checker(protocol_checker_.get());
  }
  return *protocol_checker_;
}

double Cluster::MaxSimSeconds() const {
  double max_t = 0.0;
  for (const auto& comm : comms_) {
    max_t = std::max(max_t, comm->sim_now());
  }
  return max_t;
}

CommStats Cluster::TotalStats() const {
  CommStats total;
  for (const auto& comm : comms_) total += comm->stats();
  return total;
}

uint64_t Cluster::MaxWordsReceived() const {
  uint64_t max_words = 0;
  for (const auto& comm : comms_) {
    max_words = std::max(max_words, comm->stats().words_received);
  }
  return max_words;
}

uint64_t Cluster::MaxMessagesReceived() const {
  uint64_t max_messages = 0;
  for (const auto& comm : comms_) {
    max_messages = std::max(max_messages, comm->stats().messages_received);
  }
  return max_messages;
}

void Cluster::ResetClocksAndStats() {
  for (auto& comm : comms_) {
    comm->ResetClock();
    comm->stats().Reset();
  }
  // Link busy clocks (on either charging engine) must rewind with the
  // worker clocks, or leftover warm-up occupancy would delay post-reset
  // flows.
  network_->ResetSimState();
  // Warm-up spans would otherwise leak into the measured trace.
  if (trace_recorder_) trace_recorder_->Clear();
}

}  // namespace spardl
