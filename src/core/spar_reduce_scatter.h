#ifndef SPARDL_CORE_SPAR_REDUCE_SCATTER_H_
#define SPARDL_CORE_SPAR_REDUCE_SCATTER_H_

#include <span>

#include "core/residual.h"
#include "simnet/comm.h"
#include "sparse/block_partition.h"
#include "sparse/sparse_vector.h"

namespace spardl {

/// Options for Spar-Reduce-Scatter.
struct SrsOptions {
  /// Global sparse budget k over the full gradient; each of the group's G
  /// blocks keeps ceil(k / G) entries.
  size_t k = 0;

  /// The paper's "Optimization for SRS" (§III-B): when true (the SparDL
  /// default), blocks are re-sparsified only right before they are sent (or
  /// kept, at the very end) rather than after every summation, saving top-k
  /// passes without changing the wire volume.
  bool lazy_sparsify = true;

  /// When true, CHECK Theorem 1 (every received block rank is still held by
  /// the receiver) at every step. Cheap; on by default.
  bool check_theorem1 = true;

  /// Value quantization width for transmitted blocks (32 = off; 4/8/16
  /// supported). Quantization error is collected into the residual store
  /// at full weight, so error feedback covers it. The paper's §VI
  /// "combining with quantization" extension.
  int value_bits = 32;
};

/// Spar-Reduce-Scatter (paper §III-B, Fig. 5).
///
/// Runs over `group` (a whole cluster or one SAG team). The gradient of
/// length n is split into G = group.size() blocks; after l = ceil(log2 G)
/// transmission steps with block-wise re-sparsification, position p of the
/// group holds the *sum over the group* of block p, sparsified to
/// ceil(k / G) entries — the reduce-scatter result — while never letting
/// any message grow beyond its sparse budget (the SGA fix).
///
/// Two entry points share the engine:
///  * `SparReduceScatter` starts from this worker's dense gradient and
///    performs the initial block-wise local top-(k/G) selection (discards
///    go to residuals->AddLocalDiscard).
///  * `SparReduceScatterOnSparse` starts from an already-sparse candidate
///    vector (the per-update benches' O(k) path).
///
/// Both collect every in-transmission discard via
/// residuals->AddCommDiscard(..., 1.0f). `residuals` may be null.
SparseVector SparReduceScatter(Comm& comm, const CommGroup& group,
                               std::span<const float> grad,
                               const SrsOptions& options,
                               ResidualStore* residuals);

SparseVector SparReduceScatterOnSparse(Comm& comm, const CommGroup& group,
                                       const SparseVector& candidates,
                                       size_t n, const SrsOptions& options,
                                       ResidualStore* residuals);

}  // namespace spardl

#endif  // SPARDL_CORE_SPAR_REDUCE_SCATTER_H_
