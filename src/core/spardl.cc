#include "core/spardl.h"

#include <algorithm>
#include <utility>

#include "collectives/sparse_allgather.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/quantize.h"
#include "core/spar_all_gather.h"
#include "core/spar_reduce_scatter.h"

namespace spardl {

namespace {

bool IsPowerOfTwo(int x) { return x > 0 && (x & (x - 1)) == 0; }

size_t TargetL(const SparDLConfig& config) {
  // L(k, d, P) = d*k/P: the per-block budget of the team-level partition.
  const size_t team_size =
      static_cast<size_t>(config.num_workers / config.num_teams);
  return std::max<size_t>(1, (config.k + team_size - 1) / team_size);
}

}  // namespace

Status SparDLConfig::Validate() const {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (k == 0 || k > n) {
    return Status::InvalidArgument(
        StrFormat("k must be in [1, n]; got k=%zu n=%zu", k, n));
  }
  if (num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (num_teams <= 0) {
    return Status::InvalidArgument("num_teams must be positive");
  }
  if (num_workers % num_teams != 0) {
    return Status::InvalidArgument(
        StrFormat("num_teams (%d) must divide num_workers (%d)", num_teams,
                  num_workers));
  }
  if (sag_mode == SagMode::kRecursive && num_teams > 1 &&
      !IsPowerOfTwo(num_teams)) {
    return Status::InvalidArgument(
        StrFormat("R-SAG requires a power-of-two team count; got %d",
                  num_teams));
  }
  if (!IsSupportedQuantization(value_bits)) {
    return Status::InvalidArgument(
        StrFormat("value_bits must be 4, 8, 16 or 32; got %d", value_bits));
  }
  SPARDL_RETURN_NOT_OK(placement.Validate(num_workers, num_teams));
  return Status::OK();
}

Result<std::unique_ptr<SparDL>> SparDL::Create(const SparDLConfig& config) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  std::optional<SagMode> resolved;
  if (config.num_teams > 1) {
    switch (config.sag_mode) {
      case SagMode::kAuto:
        resolved = IsPowerOfTwo(config.num_teams) ? SagMode::kRecursive
                                                  : SagMode::kBruck;
        break;
      case SagMode::kRecursive:
      case SagMode::kBruck:
        resolved = config.sag_mode;
        break;
    }
  }
  return std::unique_ptr<SparDL>(new SparDL(config, resolved));
}

SparDL::SparDL(const SparDLConfig& config, std::optional<SagMode> resolved)
    : config_(config),
      placement_(config.placement.empty()
                     ? TeamPlacement::Contiguous(config.num_workers,
                                                 config.num_teams)
                     : config.placement),
      resolved_sag_(resolved),
      residuals_(config.residual_mode == ResidualMode::kNone ? 0 : config.n,
                 config.residual_mode) {
  if (resolved_sag_ == SagMode::kBruck) {
    adjuster_.emplace(config_.k, config_.num_workers, config_.num_teams);
  }
  if (!resolved_sag_.has_value()) {
    name_ = "SparDL";
  } else {
    name_ = StrFormat(
        "SparDL(%s, d=%d)",
        *resolved_sag_ == SagMode::kRecursive ? "R-SAG" : "B-SAG",
        config_.num_teams);
  }
  // d = 1 has one team under any policy (the identity layout); tagging
  // the name would suggest a placement effect that cannot exist.
  if (config_.num_teams > 1 &&
      placement_.policy() != PlacementPolicy::kContiguous) {
    name_ += StrFormat(
        "+%.*s",
        static_cast<int>(PlacementPolicyName(placement_.policy()).size()),
        PlacementPolicyName(placement_.policy()).data());
  }
  if (config_.value_bits != 32) {
    name_ += StrFormat("+q%d", config_.value_bits);
  }
}

SparseVector SparDL::Synchronize(Comm& comm, SparseVector block) {
  const CommGroup team_group = CommGroup::Team(comm, placement_);

  if (resolved_sag_.has_value()) {
    const CommGroup cross = CommGroup::CrossTeam(comm, placement_);
    const size_t target_l = TargetL(config_);
    if (*resolved_sag_ == SagMode::kRecursive) {
      TraceScope scope(comm, Phase::kSag, "rsag");
      block = RSag(comm, cross, std::move(block), target_l, &residuals_);
    } else {
      TraceScope scope(comm, Phase::kSag, "bsag");
      block = BSag(comm, cross, std::move(block), target_l, &*adjuster_,
                   &residuals_, &last_bsag_union_);
    }
  }

  // Optional value quantization of the block every other worker will
  // receive. Deterministic, so replicas stay identical; the error is
  // credited to residuals (1/d weight when SAG replicated the block).
  std::optional<PartWireWords> wire_cost;
  if (config_.value_bits != 32) {
    SparseVector quantization_error;
    QuantizeDequantize(&block, config_.value_bits, &quantization_error);
    const float scale =
        1.0f / static_cast<float>(resolved_sag_ ? config_.num_teams : 1);
    residuals_.AddCommDiscard(quantization_error, scale);
    const int bits = config_.value_bits;
    wire_cost = [bits](const SparseVector& part, int) {
      return QuantizedWireWords(part.size(), bits);
    };
  }

  // Final intra-team Bruck all-gather; blocks have disjoint ascending
  // ranges, so concatenation yields the global gradient.
  std::vector<SparseVector> parts;
  {
    TraceScope scope(comm, Phase::kAllGather, "allgather");
    parts = BruckAllGather(comm, team_group, std::move(block),
                           wire_cost.has_value() ? &*wire_cost : nullptr);
  }
  SparseVector final_gradient = ConcatDisjoint(parts);
  {
    TraceScope scope(comm, Phase::kResidual, "residual-update");
    residuals_.FinishIteration(final_gradient);
  }
  return final_gradient;
}

SparseVector SparDL::Run(Comm& comm, std::span<float> grad) {
  SPARDL_CHECK_EQ(grad.size(), config_.n);
  SPARDL_CHECK_EQ(comm.size(), config_.num_workers);
  TraceScope envelope(comm, Phase::kCollective, "spardl-allreduce");
  residuals_.ApplyAndReset(grad);

  const CommGroup team_group = CommGroup::Team(comm, placement_);
  SrsOptions options;
  options.k = config_.k;
  options.lazy_sparsify = config_.lazy_sparsify;
  options.value_bits = config_.value_bits;
  SparseVector block =
      SparReduceScatter(comm, team_group, grad, options, &residuals_);
  return Synchronize(comm, std::move(block));
}

SparseVector SparDL::RunOnSparse(Comm& comm, const SparseVector& candidates) {
  SPARDL_CHECK_EQ(comm.size(), config_.num_workers);
  TraceScope envelope(comm, Phase::kCollective, "spardl-allreduce");
  const CommGroup team_group = CommGroup::Team(comm, placement_);
  SrsOptions options;
  options.k = config_.k;
  options.lazy_sparsify = config_.lazy_sparsify;
  options.value_bits = config_.value_bits;
  SparseVector block = SparReduceScatterOnSparse(
      comm, team_group, candidates, config_.n, options, &residuals_);
  return Synchronize(comm, std::move(block));
}

}  // namespace spardl
