#ifndef SPARDL_CORE_SPARDL_H_
#define SPARDL_CORE_SPARDL_H_

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "core/chunk_adjuster.h"
#include "core/residual.h"
#include "core/sparse_allreduce.h"
#include "topo/placement.h"

namespace spardl {

/// Which Spar-All-Gather variant synchronises the d teams.
enum class SagMode {
  /// R-SAG when d is a power of two, B-SAG otherwise (the paper's rule).
  kAuto,
  /// Recursive-doubling SAG; requires d to be a power of two.
  kRecursive,
  /// Bruck-based SAG with the Algorithm-2 h controller; any d.
  kBruck,
};

/// Configuration for one SparDL communicator instance.
struct SparDLConfig {
  /// Dense gradient length n.
  size_t n = 0;
  /// Global sparse budget k (number of entries). Typical: 0.01 * n.
  size_t k = 0;
  /// Cluster size P.
  int num_workers = 0;
  /// Team count d; must divide P. d = 1 disables SAG (plain SparDL).
  int num_teams = 1;
  SagMode sag_mode = SagMode::kAuto;
  /// Residual collection policy (GRES is the paper's default).
  ResidualMode residual_mode = ResidualMode::kGlobal;
  /// The §III-B "Optimization for SRS": sparsify only the next outgoing
  /// bag instead of every block after every summation.
  bool lazy_sparsify = true;
  /// Wire width of gradient values (32 = fp32, no quantization; 4/8/16
  /// enable QSGD-style quantization with residual feedback of the
  /// quantization error — the paper's §VI extension).
  int value_bits = 32;
  /// Which worker sits in which team. Empty (the default) means the
  /// contiguous layout — bit-for-bit the historical behaviour. Plan a
  /// topology-aware one with `PlanPlacement` so SRS traffic stays
  /// rack-local on hierarchical fabrics; must match (num_workers,
  /// num_teams) when set.
  TeamPlacement placement;

  /// Checks all invariants (k in [1, n], d | P, R-SAG power-of-two, ...).
  Status Validate() const;
};

/// The SparDL sparse All-Reduce framework (paper Algorithm 1):
/// Spar-Reduce-Scatter within each team, Spar-All-Gather across teams,
/// Bruck all-gather within each team, with global residual collection
/// throughout.
///
/// One instance per worker; holds the worker's residual store and (for
/// B-SAG) the persistent compression-ratio controller.
class SparDL : public SparseAllReduce {
 public:
  /// Validates `config` and builds an instance.
  static Result<std::unique_ptr<SparDL>> Create(const SparDLConfig& config);

  SparseVector Run(Comm& comm, std::span<float> grad) override;
  SparseVector RunOnSparse(Comm& comm,
                           const SparseVector& candidates) override;
  std::string_view name() const override { return name_; }

  const SparDLConfig& config() const { return config_; }
  const ResidualStore& residuals() const { return residuals_; }
  ResidualStore& residuals() { return residuals_; }

  /// Union size observed by the last B-SAG round (Fig. 7 series); 0 when
  /// SAG is disabled or R-SAG is active.
  size_t last_bsag_union() const { return last_bsag_union_; }

  /// The resolved SAG variant after kAuto resolution (nullopt when d = 1).
  std::optional<SagMode> resolved_sag() const { return resolved_sag_; }

 private:
  SparDL(const SparDLConfig& config, std::optional<SagMode> resolved_sag);

  /// The communication pipeline shared by Run and RunOnSparse; `block` is
  /// this worker's SRS output.
  SparseVector Synchronize(Comm& comm, SparseVector block);

  SparDLConfig config_;
  /// Resolved layout: config.placement, or the contiguous layout when the
  /// config left it empty. Never empty after construction.
  TeamPlacement placement_;
  std::optional<SagMode> resolved_sag_;
  ResidualStore residuals_;
  std::optional<ChunkAdjuster> adjuster_;
  std::string name_;
  size_t last_bsag_union_ = 0;
};

}  // namespace spardl

#endif  // SPARDL_CORE_SPARDL_H_
