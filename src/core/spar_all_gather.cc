#include "core/spar_all_gather.h"

#include <utility>
#include <vector>

#include "collectives/sparse_allgather.h"
#include "common/logging.h"
#include "sparse/topk.h"

namespace spardl {

SparseVector RSag(Comm& comm, const CommGroup& cross_team_group,
                  SparseVector block, size_t target_l,
                  ResidualStore* residuals) {
  const int d = cross_team_group.size();
  SPARDL_CHECK_EQ(d & (d - 1), 0) << "R-SAG requires a power-of-two d";
  const int pos = cross_team_group.my_pos;
  TopKSelector selector;
  SparseVector kept;
  SparseVector discarded;
  SparseVector scratch;
  int step_index = 0;
  for (int distance = 1; distance < d; distance *= 2) {
    TraceScope scope(comm, Phase::kSag, "rsag-round", step_index);
    const int peer = cross_team_group.GlobalRank(pos ^ distance);
    SparseVector incoming =
        comm.ExchangeAs<SparseVector>(peer, peer, Payload(block));
    MergeSumInPlace(&block, incoming, &scratch);
    ++step_index;
    if (block.size() > target_l) {
      selector.SelectSparse(block, target_l, &kept, &discarded);
      if (residuals != nullptr) {
        // 2^step identical copies of this block now exist cluster-wide;
        // credit each copy's discard proportionally so the total counts
        // each dropped gradient exactly once.
        residuals->AddCommDiscard(
            discarded, 1.0f / static_cast<float>(1 << step_index));
      }
      std::swap(block, kept);
    }
  }
  return block;
}

SparseVector BSag(Comm& comm, const CommGroup& cross_team_group,
                  SparseVector block, size_t target_l,
                  ChunkAdjuster* adjuster, ResidualStore* residuals,
                  size_t* observed_union) {
  const int d = cross_team_group.size();
  SPARDL_CHECK_GT(d, 1);
  SPARDL_CHECK(adjuster != nullptr);
  const size_t h = adjuster->CurrentH();

  // Pre-communication top-h: each worker trims its own chunk, so this
  // discard is worker-unique (scale 1).
  TopKSelector selector;
  SparseVector to_send;
  SparseVector discarded;
  if (block.size() > h) {
    selector.SelectSparse(block, h, &to_send, &discarded);
    if (residuals != nullptr) residuals->AddCommDiscard(discarded, 1.0f);
  } else {
    to_send = std::move(block);
  }

  // Inter-team Bruck all-gather of the (overlapping-index) chunks. No
  // per-step selection: Bruck peers see different merge orders, so pruning
  // mid-flight would desynchronise the replicas (paper Fig. 3b argument).
  std::vector<SparseVector> chunks =
      BruckAllGather(comm, cross_team_group, std::move(to_send));

  // Deterministic team-order summation -> identical union on all replicas.
  SparseVector summed = SumAll(chunks);
  const size_t union_size = summed.size();
  adjuster->Observe(union_size);
  if (observed_union != nullptr) *observed_union = union_size;

  // Final selection to L; d identical replicas each credit 1/d.
  if (summed.size() > target_l) {
    SparseVector kept;
    selector.SelectSparse(summed, target_l, &kept, &discarded);
    if (residuals != nullptr) {
      residuals->AddCommDiscard(discarded, 1.0f / static_cast<float>(d));
    }
    return kept;
  }
  return summed;
}

}  // namespace spardl
