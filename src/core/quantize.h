#ifndef SPARDL_CORE_QUANTIZE_H_
#define SPARDL_CORE_QUANTIZE_H_

#include <cstddef>

#include "sparse/sparse_vector.h"

namespace spardl {

/// Value quantization for sparse gradients — the paper's §VI future-work
/// item "combining with quantization methods", implemented as an optional
/// SparDL stage.
///
/// Values are quantized to `bits`-bit signed integers with a per-message
/// max-|v| scale (QSGD-style deterministic rounding), shrinking a COO entry
/// from 2 words (index + fp32) to 1 + bits/32 words on the wire. The
/// quantization error can be fed back through the residual store, so the
/// error-feedback convergence guarantees carry over.

/// Quantizes `vec`'s values in place to `bits` in {4, 8, 16} (32 = no-op)
/// and immediately dequantizes them — exactly what the receiver would
/// decode. If `error` is non-null it receives (original - dequantized) on
/// the same support, for residual feedback.
void QuantizeDequantize(SparseVector* vec, int bits,
                        SparseVector* error = nullptr);

/// Wire words for `entries` COO entries at `bits`-bit values: a 4-byte
/// index per entry, `ceil(entries * bits / 8)` bytes of packed values
/// across the message (sub-byte widths pack pairs of nibbles; the odd
/// trailing nibble pads to a byte), plus one word for the scale, all
/// rounded up to whole words. `bits == 32` is the unquantized 2-word COO
/// entry with no scale.
size_t QuantizedWireWords(size_t entries, int bits);

/// True for the supported widths {4, 8, 16, 32}.
bool IsSupportedQuantization(int bits);

}  // namespace spardl

#endif  // SPARDL_CORE_QUANTIZE_H_
