#include "core/chunk_adjuster.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace spardl {

ChunkAdjuster::ChunkAdjuster(size_t k, int num_workers, int num_teams) {
  SPARDL_CHECK_GT(k, 0u);
  SPARDL_CHECK_GT(num_workers, 0);
  SPARDL_CHECK_GT(num_teams, 1);
  const double kd = static_cast<double>(k);
  const double p = static_cast<double>(num_workers);
  const double d = static_cast<double>(num_teams);
  h_min_ = kd / p;
  h_max_ = d * kd / p;
  target_ = d * kd / p;
  h_ = h_min_;  // initial h = k/P (Algorithm 2 line 1)
  step_ = 0.01 * kd * (d - 1.0) / p;  // initial step, positive direction
}

size_t ChunkAdjuster::CurrentH() const {
  const double clamped = std::clamp(h_, h_min_, h_max_);
  const long long rounded = std::llround(clamped);
  return static_cast<size_t>(rounded < 1 ? 1 : rounded);
}

size_t ChunkAdjuster::TargetL() const {
  const long long rounded = std::llround(target_);
  return static_cast<size_t>(rounded < 1 ? 1 : rounded);
}

void ChunkAdjuster::Observe(size_t union_size) {
  const bool too_many = static_cast<double>(union_size) > target_;
  const bool direction_positive = step_ > 0.0;
  // XOR true (Algorithm 2 line 3): still moving toward the target — keep
  // the direction, doubling after two consecutive confirmations.
  if (too_many != direction_positive) {
    if (flag_) {
      step_ *= 2.0;
      flag_ = false;
    } else {
      flag_ = true;
    }
  } else {
    // Overshot: reverse and halve.
    step_ = -step_ * 0.5;
    flag_ = false;
  }
  h_ = std::clamp(h_ + step_, h_min_, h_max_);
}

}  // namespace spardl
