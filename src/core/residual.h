#ifndef SPARDL_CORE_RESIDUAL_H_
#define SPARDL_CORE_RESIDUAL_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "sparse/sparse_vector.h"

namespace spardl {

/// Which discarded gradients a worker accumulates for error feedback
/// (paper §III-C and the Fig. 17 ablation).
enum class ResidualMode {
  /// GRES — the paper's contribution: local + end-procedure +
  /// *in-procedure* residuals (every entry dropped by any top-k anywhere).
  kGlobal,
  /// PRES — Ok-Topk/gTopk style: local + end-procedure residuals only
  /// (communication discards whose index still appears in the final global
  /// gradient are lost).
  kPartial,
  /// LRES — DGC style: only the local pre-communication discards.
  kLocal,
  /// No collection at all; skips the O(n) accumulator entirely. For
  /// communication-cost benches on paper-scale models.
  kNone,
};

const char* ResidualModeName(ResidualMode mode);

/// Per-worker residual accumulator implementing all three collection
/// policies behind one interface, so SparDL's communication code is policy-
/// agnostic.
///
/// Usage per iteration:
///   1. ApplyAndReset(grad)  — error feedback: grad += residual, clear.
///   2. AddLocalDiscard(...) for the pre-communication sparsification.
///   3. AddCommDiscard(..., scale) for every mid-communication top-k drop.
///      `scale` de-duplicates symmetric discards: 1 for worker-unique data,
///      1/2^step inside R-SAG's doubling exchange, 1/d after B-SAG's final
///      shared selection.
///   4. FinishIteration(final_global) — PRES filters its buffer to
///      end-procedure entries (index absent from the final gradient).
class ResidualStore {
 public:
  /// `n` may be 0 only for kNone.
  ResidualStore(size_t n, ResidualMode mode);

  ResidualMode mode() const { return mode_; }

  /// grad += residual; residual = 0. Call first in every iteration.
  void ApplyAndReset(std::span<float> grad);

  /// Entries dropped by the worker's own pre-communication sparsification.
  void AddLocalDiscard(const SparseVector& discarded);

  /// Entries dropped by a sparsification during communication.
  void AddCommDiscard(const SparseVector& discarded, float scale);

  /// End-of-iteration hook; `final_global` is the synchronised gradient.
  void FinishIteration(const SparseVector& final_global);

  /// Signed sum of everything currently stored (mass-conservation tests).
  double MassSum() const;

  /// The dense accumulator (empty for kNone).
  std::span<const float> dense() const { return dense_; }

 private:
  ResidualMode mode_;
  std::vector<float> dense_;
  // PRES: communication discards buffered until FinishIteration.
  std::vector<std::pair<SparseVector, float>> pending_;
};

}  // namespace spardl

#endif  // SPARDL_CORE_RESIDUAL_H_
