#include "core/residual.h"

#include <algorithm>

#include "common/logging.h"

namespace spardl {

const char* ResidualModeName(ResidualMode mode) {
  switch (mode) {
    case ResidualMode::kGlobal:
      return "GRES";
    case ResidualMode::kPartial:
      return "PRES";
    case ResidualMode::kLocal:
      return "LRES";
    case ResidualMode::kNone:
      return "none";
  }
  return "?";
}

ResidualStore::ResidualStore(size_t n, ResidualMode mode) : mode_(mode) {
  if (mode != ResidualMode::kNone) {
    SPARDL_CHECK_GT(n, 0u);
    dense_.assign(n, 0.0f);
  }
}

void ResidualStore::ApplyAndReset(std::span<float> grad) {
  if (mode_ == ResidualMode::kNone) return;
  SPARDL_CHECK_EQ(grad.size(), dense_.size());
  for (size_t i = 0; i < dense_.size(); ++i) {
    if (dense_[i] != 0.0f) {
      grad[i] += dense_[i];
      dense_[i] = 0.0f;
    }
  }
  pending_.clear();
}

void ResidualStore::AddLocalDiscard(const SparseVector& discarded) {
  if (mode_ == ResidualMode::kNone) return;
  // Once-per-iteration call: AddToDense's O(1) boundary CHECK (not the
  // per-entry DCHECK) is the NDEBUG guard here, and its cost is noise next
  // to the O(k) scatter.
  discarded.AddToDense(dense_);
}

void ResidualStore::AddCommDiscard(const SparseVector& discarded,
                                   float scale) {
  switch (mode_) {
    case ResidualMode::kNone:
    case ResidualMode::kLocal:
      return;  // dropped
    case ResidualMode::kPartial:
      pending_.emplace_back(discarded, scale);
      return;
    case ResidualMode::kGlobal:
      for (size_t i = 0; i < discarded.size(); ++i) {
        dense_[discarded.index(i)] += scale * discarded.value(i);
      }
      return;
  }
}

void ResidualStore::FinishIteration(const SparseVector& final_global) {
  if (mode_ != ResidualMode::kPartial) return;
  // Keep only end-procedure residuals: discards whose index never made it
  // into the final global gradient. Both sides are index-sorted, so one
  // two-pointer sweep per pending vector replaces a binary search per
  // entry (the adds happen in the same order, bit-identically).
  const auto final_indices = final_global.indices();
  for (const auto& [discarded, scale] : pending_) {
    size_t f = 0;
    for (size_t i = 0; i < discarded.size(); ++i) {
      const GradIndex idx = discarded.index(i);
      while (f < final_indices.size() && final_indices[f] < idx) ++f;
      if (f >= final_indices.size() || final_indices[f] != idx) {
        dense_[idx] += scale * discarded.value(i);
      }
    }
  }
  pending_.clear();
}

double ResidualStore::MassSum() const {
  double s = 0.0;
  for (float v : dense_) s += v;
  for (const auto& [vec, scale] : pending_) {
    s += scale * vec.ValueSum();
  }
  return s;
}

}  // namespace spardl
