#ifndef SPARDL_CORE_SPARSE_ALLREDUCE_H_
#define SPARDL_CORE_SPARSE_ALLREDUCE_H_

#include <memory>
#include <span>
#include <string_view>

#include "simnet/comm.h"
#include "sparse/sparse_vector.h"

namespace spardl {

/// The contract every sparse All-Reduce method in this repo implements
/// (SparDL and all four baselines).
///
/// One instance lives on each worker and holds that worker's persistent
/// state (residual store, threshold estimates, team layout, ...). Calls are
/// SPMD: every worker of the cluster must call the same method in the same
/// iteration.
///
/// Post-condition of both entry points: the returned global gradient — the
/// element-wise sum of what all P workers contributed, sparsified by the
/// method's policy — is *identical on every worker*. This is the
/// synchronous-SGD consistency requirement; tests enforce it for every
/// method, worker count and team count.
class SparseAllReduce {
 public:
  virtual ~SparseAllReduce() = default;

  /// Full training-loop entry point. `grad` is this worker's dense local
  /// gradient of length n; the method adds its stored residuals into `grad`
  /// (error feedback), selects, communicates, and collects new residuals.
  virtual SparseVector Run(Comm& comm, std::span<float> grad) = 0;

  /// Communication-only entry point used by the per-update-time benches:
  /// `candidates` plays the role of the dense gradient (all other positions
  /// are zero). No dense residual buffer is touched, so this path works for
  /// paper-scale models (up to 133.5M parameters) without allocating O(n)
  /// memory. Residual collection should be disabled
  /// (ResidualMode::kNone) when using this path.
  virtual SparseVector RunOnSparse(Comm& comm,
                                   const SparseVector& candidates) = 0;

  /// Human-readable method name ("SparDL", "Ok-Topk", ...).
  virtual std::string_view name() const = 0;
};

}  // namespace spardl

#endif  // SPARDL_CORE_SPARSE_ALLREDUCE_H_
