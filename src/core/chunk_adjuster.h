#ifndef SPARDL_CORE_CHUNK_ADJUSTER_H_
#define SPARDL_CORE_CHUNK_ADJUSTER_H_

#include <cstddef>

namespace spardl {

/// The compression-ratio adjustment algorithm for B-SAG (paper Algorithm 2).
///
/// B-SAG sends each worker's top-h entries into the inter-team Bruck
/// all-gather; the union of the d received chunks should land near
/// L(k, d, P) = d*k/P. This controller — modelled on TCP's congestion
/// window — nudges h after every iteration: keep moving while the observed
/// union is on the far side of L, double the step after two consecutive
/// same-direction moves, halve and reverse on overshoot. h is clamped to
/// the analytical range [k/P, d*k/P] (fully-disjoint vs fully-overlapping
/// worker supports).
class ChunkAdjuster {
 public:
  /// `k` is the global budget, `num_workers` = P, `num_teams` = d (> 1).
  ChunkAdjuster(size_t k, int num_workers, int num_teams);

  /// Current per-worker send budget h (entries), rounded and clamped.
  size_t CurrentH() const;

  /// Feed the union size observed after this iteration's B-SAG; updates h
  /// for the next iteration (Algorithm 2 lines 3-12).
  void Observe(size_t union_size);

  /// Analytical target L(k, d, P) = d*k/P (at least 1).
  size_t TargetL() const;

  double step() const { return step_; }

 private:
  double h_min_;
  double h_max_;
  double target_;
  double h_;
  double step_;
  bool flag_ = false;
};

}  // namespace spardl

#endif  // SPARDL_CORE_CHUNK_ADJUSTER_H_
