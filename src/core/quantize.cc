#include "core/quantize.h"

#include <cmath>

#include "common/logging.h"

namespace spardl {

bool IsSupportedQuantization(int bits) {
  return bits == 4 || bits == 8 || bits == 16 || bits == 32;
}

size_t QuantizedWireWords(size_t entries, int bits) {
  SPARDL_DCHECK(IsSupportedQuantization(bits));
  if (bits == 32) return 2 * entries;
  // 4 index bytes per entry + the value bits packed and rounded up to
  // whole bytes across the message + 4 scale bytes. The value bytes must
  // round up, not truncate: `entries * (bits / 8)` would charge 0 bytes
  // for every sub-byte width.
  const size_t value_bytes = (entries * static_cast<size_t>(bits) + 7) / 8;
  const size_t bytes = entries * 4 + value_bytes + 4;
  return (bytes + 3) / 4;
}

void QuantizeDequantize(SparseVector* vec, int bits, SparseVector* error) {
  SPARDL_CHECK(IsSupportedQuantization(bits));
  if (error != nullptr) error->Clear();
  if (bits == 32 || vec->empty()) return;

  float max_abs = 0.0f;
  for (size_t i = 0; i < vec->size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(vec->value(i)));
  }
  if (max_abs == 0.0f) return;

  // Symmetric levels in [-max_abs, max_abs]; deterministic
  // round-to-nearest keeps replicas bit-identical.
  const int levels = (1 << (bits - 1)) - 1;
  const float scale = max_abs / static_cast<float>(levels);

  SparseVector quantized;
  quantized.Reserve(vec->size());
  if (error != nullptr) error->Reserve(vec->size());
  for (size_t i = 0; i < vec->size(); ++i) {
    const float original = vec->value(i);
    const float q = std::round(original / scale);
    const float dequantized = q * scale;
    quantized.PushBack(vec->index(i), dequantized);
    if (error != nullptr && original != dequantized) {
      error->PushBack(vec->index(i), original - dequantized);
    }
  }
  *vec = std::move(quantized);
}

}  // namespace spardl
