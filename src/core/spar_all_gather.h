#ifndef SPARDL_CORE_SPAR_ALL_GATHER_H_
#define SPARDL_CORE_SPAR_ALL_GATHER_H_

#include <cstddef>

#include "core/chunk_adjuster.h"
#include "core/residual.h"
#include "simnet/comm.h"
#include "sparse/sparse_vector.h"

namespace spardl {

/// Spar-All-Gather (paper §III-D): synchronises the reduce-scattered block
/// across the d teams so that all workers sharing a team position hold the
/// same L(k, d, P) = d*k/P sparse gradients.
///
/// `cross_team_group` is the group of the d workers at this worker's team
/// position (CommGroup::SamePositionAcrossTeams); `block` is this worker's
/// SRS output; `target_l` is L(k, d, P).

/// R-SAG — recursive-doubling variant, for d a power of two. Each of the
/// log2 d steps exchanges the full block with the partner team's worker,
/// merges, and re-selects top-L. Both exchange sides discard identical
/// sets, and after step s there are 2^s identical copies cluster-wide, so
/// discards are credited at scale 2^-s (the paper states 1/2, which is this
/// rule at its only evaluated depth, d = 2).
SparseVector RSag(Comm& comm, const CommGroup& cross_team_group,
                  SparseVector block, size_t target_l,
                  ResidualStore* residuals);

/// B-SAG — Bruck-based variant for arbitrary d. Selects top-h before the
/// inter-team Bruck all-gather (h driven by `adjuster`, Algorithm 2), sums
/// the d gathered chunks in team order (identical on every participant, so
/// consistency is preserved — the reason per-step selection cannot be used
/// with Bruck, §III-D2), then applies the final top-L selection whose
/// discards are credited at scale 1/d. Feeds the observed union size back
/// into `adjuster`. When `observed_union` is non-null it receives the
/// union size after summation (the Fig. 7 series).
SparseVector BSag(Comm& comm, const CommGroup& cross_team_group,
                  SparseVector block, size_t target_l,
                  ChunkAdjuster* adjuster, ResidualStore* residuals,
                  size_t* observed_union = nullptr);

}  // namespace spardl

#endif  // SPARDL_CORE_SPAR_ALL_GATHER_H_
