#include "core/spar_reduce_scatter.h"

#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/quantize.h"
#include "sparse/topk.h"

namespace spardl {

namespace {

// Shared SRS engine: starts from per-block sparse states (already within
// budget) and runs the l transmission steps.
class SrsEngine {
 public:
  SrsEngine(Comm& comm, const CommGroup& group, size_t n,
            const SrsOptions& options, ResidualStore* residuals)
      : comm_(comm),
        group_(group),
        options_(options),
        residuals_(residuals),
        partition_(n, group.size()),
        layout_(group.size(), group.my_pos),
        budget_(partition_.PerBlockBudget(options.k)),
        block_state_(static_cast<size_t>(group.size())),
        held_(static_cast<size_t>(group.size()), true),
        warm_threshold_(static_cast<size_t>(group.size()), 0.0f) {}

  const BlockPartition& partition() const { return partition_; }
  size_t budget() const { return budget_; }
  std::vector<SparseVector>& block_state() { return block_state_; }

  // Runs the transmission-with-sparsification phase and returns the block
  // owned by this group position.
  SparseVector Run() {
    const int steps = layout_.num_steps();
    for (int step = 1; step <= steps; ++step) {
      TraceScope step_scope(comm_, Phase::kSrs, "srs-step", step);
      const int bag = layout_.BagForStep(step);
      const std::vector<int>& outgoing_blocks = layout_.Bag(bag);
      if (options_.lazy_sparsify) {
        // Only the blocks about to leave get re-sparsified.
        TraceScope scope(comm_, Phase::kSparsify, "resparsify", step);
        for (int b : outgoing_blocks) SparsifyBlock(b);
      }
      // Ship the bag (one message per step, blocks in bag order),
      // optionally quantizing values on the wire.
      std::vector<SparseVector> outgoing;
      outgoing.reserve(outgoing_blocks.size());
      size_t words_override = 0;
      for (int b : outgoing_blocks) {
        SparseVector block = std::move(block_state_[static_cast<size_t>(b)]);
        block_state_[static_cast<size_t>(b)].Clear();
        held_[static_cast<size_t>(b)] = false;
        if (options_.value_bits != 32) {
          QuantizeDequantize(&block, options_.value_bits, &discarded_);
          if (residuals_ != nullptr) {
            residuals_->AddCommDiscard(discarded_, 1.0f);
          }
          words_override +=
              QuantizedWireWords(block.size(), options_.value_bits);
        }
        outgoing.push_back(std::move(block));
      }
      comm_.Send(group_.GlobalRank(layout_.SendPeer(step)),
                 Payload(std::move(outgoing)), /*tag=*/0, words_override);

      // Receive the matching bag from the source worker; its block ranks
      // follow from the source's (deterministic) bag layout.
      const int src_pos = layout_.RecvPeer(step);
      std::vector<SparseVector> incoming =
          comm_.RecvAs<std::vector<SparseVector>>(
              group_.GlobalRank(src_pos));
      const SrsBagLayout src_layout(group_.size(), src_pos);
      const std::vector<int>& incoming_blocks = src_layout.Bag(bag);
      SPARDL_CHECK_EQ(incoming.size(), incoming_blocks.size());
      for (size_t i = 0; i < incoming.size(); ++i) {
        const int b = incoming_blocks[i];
        if (options_.check_theorem1) {
          SPARDL_CHECK(held_[static_cast<size_t>(b)])
              << "Theorem 1 violated: received block " << b
              << " is no longer held by group position " << group_.my_pos;
          SPARDL_CHECK(incoming[i].IndicesWithin(partition_.BlockStart(b),
                                                 partition_.BlockEnd(b)))
              << "received block " << b << " has out-of-range indices";
        }
        MergeSumInPlace(&block_state_[static_cast<size_t>(b)], incoming[i],
                        &scratch_);
      }
      if (!options_.lazy_sparsify) {
        // Eager variant: re-sparsify every remaining block after summation.
        TraceScope scope(comm_, Phase::kSparsify, "resparsify", step);
        for (int b = 0; b < group_.size(); ++b) {
          if (held_[static_cast<size_t>(b)]) SparsifyBlock(b);
        }
      }
    }
    // Only the preservation block remains; give it its final selection.
    SparsifyBlock(group_.my_pos);
    for (int b = 0; b < group_.size(); ++b) {
      SPARDL_DCHECK(held_[static_cast<size_t>(b)] == (b == group_.my_pos));
    }
    return std::move(block_state_[static_cast<size_t>(group_.my_pos)]);
  }

 private:
  void SparsifyBlock(int b) {
    SparseVector& state = block_state_[static_cast<size_t>(b)];
    if (state.size() <= budget_) return;
    // Warm-started selection: each block is re-sparsified every step with a
    // slowly moving k-th magnitude, so the previous step's threshold prunes
    // most candidates before the exact (bit-identical) pivot search.
    selector_.SelectSparseWarm(state, budget_, &kept_, &discarded_,
                               &warm_threshold_[static_cast<size_t>(b)]);
    if (residuals_ != nullptr) {
      residuals_->AddCommDiscard(discarded_, 1.0f);
    }
    std::swap(state, kept_);
  }

  Comm& comm_;
  const CommGroup& group_;
  const SrsOptions& options_;
  ResidualStore* residuals_;
  BlockPartition partition_;
  SrsBagLayout layout_;
  size_t budget_;
  std::vector<SparseVector> block_state_;
  std::vector<bool> held_;
  std::vector<float> warm_threshold_;  // per block; 0 = cold
  TopKSelector selector_;
  SparseVector kept_;
  SparseVector discarded_;
  SparseVector scratch_;
};

}  // namespace

SparseVector SparReduceScatter(Comm& comm, const CommGroup& group,
                               std::span<const float> grad,
                               const SrsOptions& options,
                               ResidualStore* residuals) {
  SPARDL_CHECK_GT(options.k, 0u);
  SrsEngine engine(comm, group, grad.size(), options, residuals);
  // Initial block-wise local sparsification (partitioning phase).
  const BlockPartition& partition = engine.partition();
  TopKSelector selector;
  SparseVector discarded;
  {
    TraceScope scope(comm, Phase::kSparsify, "select-blocks");
    for (int b = 0; b < group.size(); ++b) {
      const GradIndex lo = partition.BlockStart(b);
      const GradIndex hi = partition.BlockEnd(b);
      selector.SelectDense(grad.subspan(lo, hi - lo), lo, engine.budget(),
                           &engine.block_state()[static_cast<size_t>(b)],
                           &discarded);
      if (residuals != nullptr) residuals->AddLocalDiscard(discarded);
    }
  }
  return engine.Run();
}

SparseVector SparReduceScatterOnSparse(Comm& comm, const CommGroup& group,
                                       const SparseVector& candidates,
                                       size_t n, const SrsOptions& options,
                                       ResidualStore* residuals) {
  SPARDL_CHECK_GT(options.k, 0u);
  SrsEngine engine(comm, group, n, options, residuals);
  const BlockPartition& partition = engine.partition();
  TopKSelector selector;
  SparseVector block_candidates;
  SparseVector discarded;
  {
    TraceScope scope(comm, Phase::kSparsify, "select-blocks");
    for (int b = 0; b < group.size(); ++b) {
      block_candidates.Clear();
      candidates.ExtractRange(partition.BlockStart(b), partition.BlockEnd(b),
                              &block_candidates);
      selector.SelectSparse(block_candidates, engine.budget(),
                            &engine.block_state()[static_cast<size_t>(b)],
                            &discarded);
      if (residuals != nullptr) residuals->AddLocalDiscard(discarded);
    }
  }
  return engine.Run();
}

}  // namespace spardl
