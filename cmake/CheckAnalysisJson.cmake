# Validates the analysis-bearing observability artifacts the smoke tier
# produces: a `spardl-run-metrics/2` document whose every run embeds a
# critical-path analysis with an intact identity (the extracted segments
# sum exactly to the end-to-end simulated time), and a
# `spardl-timeseries/1` document whose series matches its iteration
# count. Inputs: -DMETRICS_JSON=<path> -DTIMESERIES_JSON=<path>.

foreach(var METRICS_JSON TIMESERIES_JSON)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "CheckAnalysisJson.cmake needs -D${var}=...")
  endif()
  if(NOT EXISTS "${${var}}")
    message(FATAL_ERROR "${${var}} does not exist")
  endif()
endforeach()

# --- run-metrics: every run must carry an identity-OK analysis ---------

file(READ "${METRICS_JSON}" metrics)
string(JSON schema ERROR_VARIABLE err GET "${metrics}" schema)
if(err OR NOT schema STREQUAL "spardl-run-metrics/2")
  message(FATAL_ERROR
    "${METRICS_JSON} malformed: bad schema '${schema}' (${err})")
endif()

string(JSON n_runs ERROR_VARIABLE err LENGTH "${metrics}" runs)
if(err OR n_runs EQUAL 0)
  message(FATAL_ERROR "${METRICS_JSON} has no runs (${err})")
endif()

math(EXPR last_run "${n_runs} - 1")
foreach(i RANGE 0 ${last_run})
  string(JSON identity ERROR_VARIABLE err
    GET "${metrics}" runs ${i} analysis identity_ok)
  if(err)
    message(FATAL_ERROR
      "${METRICS_JSON} runs[${i}] has no analysis.identity_ok (${err})")
  endif()
  if(NOT identity STREQUAL "ON")
    message(FATAL_ERROR
      "${METRICS_JSON} runs[${i}]: critical-path identity BROKEN — the "
      "extracted segments no longer sum to the end-to-end simulated time")
  endif()
  string(JSON segments ERROR_VARIABLE err
    GET "${metrics}" runs ${i} analysis segments)
  if(err OR segments LESS 1)
    message(FATAL_ERROR
      "${METRICS_JSON} runs[${i}] analysis has no segments (${err})")
  endif()
  string(JSON n_what_if ERROR_VARIABLE err
    LENGTH "${metrics}" runs ${i} analysis what_if)
  if(err OR n_what_if EQUAL 0)
    message(FATAL_ERROR
      "${METRICS_JSON} runs[${i}] analysis has no what_if entries (${err})")
  endif()
endforeach()

# --- time series: schema + per-iteration rows --------------------------

file(READ "${TIMESERIES_JSON}" series_doc)
string(JSON schema ERROR_VARIABLE err GET "${series_doc}" schema)
if(err OR NOT schema STREQUAL "spardl-timeseries/1")
  message(FATAL_ERROR
    "${TIMESERIES_JSON} malformed: bad schema '${schema}' (${err})")
endif()

string(JSON iterations ERROR_VARIABLE err GET "${series_doc}" iterations)
if(err OR iterations LESS 1)
  message(FATAL_ERROR
    "${TIMESERIES_JSON} has no recorded iterations (${err})")
endif()
string(JSON n_series ERROR_VARIABLE err LENGTH "${series_doc}" series)
if(err OR NOT n_series EQUAL iterations)
  message(FATAL_ERROR
    "${TIMESERIES_JSON} series length ${n_series} != iterations "
    "${iterations} (${err})")
endif()
string(JSON n_stragglers ERROR_VARIABLE err
  LENGTH "${series_doc}" stragglers)
if(err)
  message(FATAL_ERROR "${TIMESERIES_JSON} has no stragglers array (${err})")
endif()

message(STATUS "${METRICS_JSON}: ${n_runs} run(s) with identity-OK "
  "analysis; ${TIMESERIES_JSON}: ${iterations} iteration(s), "
  "${n_stragglers} straggler(s) OK")
