# Macro perf-regression gate over a `spardl-run-metrics/2` artifact from
# a *deterministic* (event-engine) smoke run: every run's simulated
# per-update time — makespan_seconds / UPDATES — must stay under a pinned
# bound. Because the bound is on simulated time, it is machine-independent;
# tripping it means the cost model, the collective schedule, or the
# topology charging genuinely got slower.
#
# Inputs: -DMETRICS_JSON=<path> -DUPDATES=<count>
#         -DMAX_UPDATE_MICROS=<bound, simulated microseconds>
# Env:    SPARDL_MACRO_GATE_MAX_US overrides MAX_UPDATE_MICROS.

foreach(var METRICS_JSON UPDATES MAX_UPDATE_MICROS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "CheckMacroRegression.cmake needs -D${var}=...")
  endif()
endforeach()
if(NOT EXISTS "${METRICS_JSON}")
  message(FATAL_ERROR "${METRICS_JSON} does not exist")
endif()

set(max_micros "$ENV{SPARDL_MACRO_GATE_MAX_US}")
if(max_micros STREQUAL "")
  set(max_micros "${MAX_UPDATE_MICROS}")
endif()
if(NOT max_micros MATCHES "^[0-9]+$" OR max_micros EQUAL 0)
  message(FATAL_ERROR
    "macro gate bound '${max_micros}' must be a positive integer "
    "(simulated microseconds per update)")
endif()
if(NOT UPDATES MATCHES "^[0-9]+$" OR UPDATES EQUAL 0)
  message(FATAL_ERROR "-DUPDATES='${UPDATES}' must be a positive integer")
endif()

# Converts a positive decimal/scientific seconds value into integer
# simulated microseconds (truncated). CMake's math(EXPR) cannot parse
# exponents or fractions, so this works on the digit string directly.
function(seconds_to_micros value out_micros)
  set(base "${value}")
  set(exp 0)
  if(base MATCHES "^([0-9.]+)[eE]([-+]?)0*([0-9]+)$")
    set(base "${CMAKE_MATCH_1}")
    set(sign "${CMAKE_MATCH_2}")
    set(exp "${CMAKE_MATCH_3}")
    if(sign STREQUAL "-" AND NOT exp EQUAL 0)
      math(EXPR exp "0 - ${exp}")
    endif()
  endif()
  if(base MATCHES "^([0-9]*)\\.([0-9]*)$")
    set(digits "${CMAKE_MATCH_1}${CMAKE_MATCH_2}")
    string(LENGTH "${CMAKE_MATCH_2}" frac_len)
    math(EXPR exp "${exp} - ${frac_len}")
  else()
    set(digits "${base}")
  endif()
  string(REGEX REPLACE "^0+" "" digits "${digits}")
  if(digits STREQUAL "")
    set(${out_micros} 0 PARENT_SCOPE)
    return()
  endif()
  math(EXPR shift "${exp} + 6")
  if(shift GREATER_EQUAL 0)
    string(REPEAT "0" ${shift} zeros)
    set(digits "${digits}${zeros}")
  else()
    math(EXPR drop "0 - ${shift}")
    string(LENGTH "${digits}" len)
    if(drop GREATER_EQUAL len)
      set(digits 0)
    else()
      math(EXPR keep "${len} - ${drop}")
      string(SUBSTRING "${digits}" 0 ${keep} digits)
    endif()
  endif()
  string(LENGTH "${digits}" len)
  if(len GREATER 15)
    message(FATAL_ERROR
      "macro gate: '${value}' seconds is absurdly large (>1e9 s)")
  endif()
  set(${out_micros} "${digits}" PARENT_SCOPE)
endfunction()

file(READ "${METRICS_JSON}" metrics)
string(JSON schema ERROR_VARIABLE err GET "${metrics}" schema)
if(err OR NOT schema STREQUAL "spardl-run-metrics/2")
  message(FATAL_ERROR
    "${METRICS_JSON} malformed: bad schema '${schema}' (${err})")
endif()
string(JSON n_runs ERROR_VARIABLE err LENGTH "${metrics}" runs)
if(err OR n_runs EQUAL 0)
  message(FATAL_ERROR "${METRICS_JSON} has no runs (${err})")
endif()

math(EXPR last_run "${n_runs} - 1")
foreach(i RANGE 0 ${last_run})
  string(JSON label ERROR_VARIABLE err GET "${metrics}" runs ${i} label)
  string(JSON makespan ERROR_VARIABLE err
    GET "${metrics}" runs ${i} makespan_seconds)
  if(err OR NOT makespan MATCHES "^[0-9.]+([eE][-+]?[0-9]+)?$")
    message(FATAL_ERROR
      "${METRICS_JSON} runs[${i}] makespan_seconds '${makespan}' "
      "unreadable (${err})")
  endif()
  seconds_to_micros("${makespan}" total_micros)
  math(EXPR per_update "${total_micros} / ${UPDATES}")
  if(per_update GREATER max_micros)
    message(FATAL_ERROR
      "macro gate: run '${label}' takes ${per_update} simulated "
      "microseconds per update (> bound ${max_micros}); the contended "
      "fat-tree path got slower — re-pin SPARDL_MACRO_MAX_UPDATE_MICROS "
      "only for a deliberate model change")
  endif()
  message(STATUS "macro gate: '${label}' ${per_update} us/update "
    "<= ${max_micros}")
endforeach()
