# Trace-artifact checker for the smoke tier: fails if the Chrome trace
# written by --trace-out is missing, empty, not valid JSON, or carries no
# events — and, when a metrics sink was also requested, if that JSON has
# no recorded runs. Keeps "the bench silently wrote an empty trace" from
# passing CI.
#
# Inputs: -DTRACE_JSON=<path> [-DMETRICS_JSON=<path>]

if(NOT DEFINED TRACE_JSON)
  message(FATAL_ERROR "CheckTraceJson.cmake needs -DTRACE_JSON=...")
endif()
if(NOT EXISTS "${TRACE_JSON}")
  message(FATAL_ERROR "${TRACE_JSON} does not exist")
endif()

file(READ "${TRACE_JSON}" trace)
if(trace STREQUAL "")
  message(FATAL_ERROR "${TRACE_JSON} is empty")
endif()

string(JSON n_events ERROR_VARIABLE err LENGTH "${trace}" traceEvents)
if(err)
  message(FATAL_ERROR "${TRACE_JSON} malformed: ${err}")
endif()
if(n_events EQUAL 0)
  message(FATAL_ERROR "${TRACE_JSON} has no traceEvents")
endif()

# Spot-check event shape on the first and last events: every Chrome trace
# event needs a "ph" type tag.
math(EXPR last "${n_events} - 1")
foreach(i 0 ${last})
  string(JSON ph ERROR_VARIABLE err GET "${trace}" traceEvents ${i} ph)
  if(err OR ph STREQUAL "")
    message(FATAL_ERROR
      "${TRACE_JSON} traceEvents[${i}] has no 'ph' tag (${err})")
  endif()
endforeach()

set(metrics_note "")
if(DEFINED METRICS_JSON)
  if(NOT EXISTS "${METRICS_JSON}")
    message(FATAL_ERROR "${METRICS_JSON} does not exist")
  endif()
  file(READ "${METRICS_JSON}" metrics)
  string(JSON n_runs ERROR_VARIABLE err LENGTH "${metrics}" runs)
  if(err)
    message(FATAL_ERROR "${METRICS_JSON} malformed: ${err}")
  endif()
  if(n_runs EQUAL 0)
    message(FATAL_ERROR "${METRICS_JSON} recorded no runs")
  endif()
  set(metrics_note ", ${n_runs} metric runs")
endif()

message(STATUS
  "${TRACE_JSON}: ${n_events} trace events OK${metrics_note}")
