# Runs bench_micro_primitives in JSON mode and refreshes BENCH_micro.json
# at the repo root — the committed perf trajectory. The "baseline" section
# (the pre-optimisation numbers) is preserved verbatim, "latest" always
# mirrors this run, and every run is appended to a "history" array keyed
# by {commit, host} (replacing the last entry when HEAD hasn't moved AND
# the hostname matches, so re-runs of one commit on one machine don't
# spam the trajectory, while runs from different machines coexist). The
# checker gates only same-host entry pairs, so the strict default
# threshold is meaningful: wall-clock numbers from different machines are
# never compared. A v1 artifact's "latest" is migrated into the first
# history entry (no host — never gated against).
#
# Inputs: -DBENCH_BIN=<path> -DOUT_JSON=<path> -DWORK_DIR=<dir>
# Env:    SPARDL_BENCH_MIN_TIME (seconds per benchmark, default 0.05 —
#         keeps the smoke tier fast; sanitizer CI can shrink it further).

foreach(var BENCH_BIN OUT_JSON WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "RunBenchMicroJson.cmake needs -D${var}=...")
  endif()
endforeach()

set(min_time "$ENV{SPARDL_BENCH_MIN_TIME}")
if(NOT min_time)
  set(min_time "0.05")
endif()

set(raw_json "${WORK_DIR}/bench_micro_raw.json")
execute_process(
  COMMAND "${BENCH_BIN}"
    "--benchmark_filter=BM_TopKDense|BM_TopKSparse|BM_MergeSum|BM_SumAll"
    "--benchmark_min_time=${min_time}"
    --benchmark_format=json
    "--benchmark_out=${raw_json}"
  RESULT_VARIABLE run_result
  OUTPUT_QUIET)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "bench_micro_primitives failed (exit ${run_result})")
endif()

file(READ "${raw_json}" raw)
string(JSON n_benchmarks ERROR_VARIABLE json_err LENGTH "${raw}" benchmarks)
if(json_err OR n_benchmarks EQUAL 0)
  message(FATAL_ERROR
    "bench_micro_primitives produced no benchmark entries: ${json_err}")
endif()

# Distil {name: items_per_second} out of the raw run.
set(latest "{}")
math(EXPR last "${n_benchmarks} - 1")
foreach(i RANGE 0 ${last})
  string(JSON name GET "${raw}" benchmarks ${i} name)
  string(JSON ips ERROR_VARIABLE ips_err
    GET "${raw}" benchmarks ${i} items_per_second)
  if(NOT ips_err)
    string(JSON latest SET "${latest}" "${name}" "${ips}")
  endif()
endforeach()

# The history key: HEAD's short hash of the repo holding OUT_JSON
# (detached CI checkouts still resolve; "unknown" outside any repo).
get_filename_component(repo_dir "${OUT_JSON}" DIRECTORY)
execute_process(
  COMMAND git -C "${repo_dir}" rev-parse --short HEAD
  RESULT_VARIABLE git_result
  OUTPUT_VARIABLE commit
  OUTPUT_STRIP_TRAILING_WHITESPACE
  ERROR_QUIET)
if(NOT git_result EQUAL 0 OR commit STREQUAL "")
  set(commit "unknown")
endif()

# The other half of the history key: this machine's hostname (the
# checker's ratio gate only pairs entries whose hosts match).
cmake_host_system_information(RESULT host QUERY HOSTNAME)
if(host STREQUAL "")
  set(host "unknown-host")
endif()

# Merge into the committed artifact, preserving the baseline section.
set(out "{}")
if(EXISTS "${OUT_JSON}")
  file(READ "${OUT_JSON}" out)
  string(JSON schema ERROR_VARIABLE schema_err GET "${out}" schema)
  if(schema_err)
    set(out "{}")
  endif()
endif()
string(JSON baseline ERROR_VARIABLE baseline_err GET "${out}" baseline)
if(baseline_err)
  string(JSON out SET "${out}" baseline "null")
endif()

# History: migrate a v1 artifact's "latest" into the first entry, then
# append this run (or replace the last entry when HEAD hasn't moved and
# the entry came from this machine — a different host's entry for the
# same commit is kept and this run appends after it).
string(JSON history ERROR_VARIABLE history_err GET "${out}" history)
if(history_err)
  set(history "[]")
  string(JSON old_latest ERROR_VARIABLE old_latest_err GET "${out}" latest)
  string(JSON old_schema ERROR_VARIABLE old_schema_err GET "${out}" schema)
  if(NOT old_latest_err AND NOT old_schema_err
     AND old_schema STREQUAL "spardl-bench-micro/1")
    string(JSON history SET "${history}" 0
      "{\"commit\":\"pre-v2\",\"benchmarks\":${old_latest}}")
  endif()
endif()
string(JSON entry SET "{}" commit "\"${commit}\"")
string(JSON entry SET "${entry}" host "\"${host}\"")
string(JSON entry SET "${entry}" benchmarks "${latest}")
string(JSON n_history LENGTH "${history}")
set(slot ${n_history})
if(n_history GREATER 0)
  math(EXPR last_entry "${n_history} - 1")
  string(JSON last_commit ERROR_VARIABLE last_commit_err
    GET "${history}" ${last_entry} commit)
  # Legacy entries carry no host; they never match, so a re-run appends
  # rather than overwriting another machine's (or era's) numbers.
  string(JSON last_host ERROR_VARIABLE last_host_err
    GET "${history}" ${last_entry} host)
  if(NOT last_commit_err AND last_commit STREQUAL "${commit}"
     AND NOT last_host_err AND last_host STREQUAL "${host}")
    set(slot ${last_entry})
  endif()
endif()
string(JSON history SET "${history}" ${slot} "${entry}")

string(JSON out SET "${out}" schema "\"spardl-bench-micro/2\"")
string(JSON out SET "${out}" unit "\"items_per_second\"")
string(JSON out SET "${out}" latest "${latest}")
string(JSON out SET "${out}" history "${history}")
file(WRITE "${OUT_JSON}" "${out}\n")
string(JSON n_history LENGTH "${history}")
message(STATUS "Wrote ${n_benchmarks} benchmark entries to ${OUT_JSON} "
  "(history: ${n_history} entries, HEAD ${commit}, host ${host})")
