# Runs bench_micro_primitives in JSON mode and refreshes the "latest"
# section of BENCH_micro.json at the repo root — the committed perf
# trajectory. The "baseline" section (the pre-optimisation numbers) is
# preserved verbatim so before/after stays in one artifact.
#
# Inputs: -DBENCH_BIN=<path> -DOUT_JSON=<path> -DWORK_DIR=<dir>
# Env:    SPARDL_BENCH_MIN_TIME (seconds per benchmark, default 0.05 —
#         keeps the smoke tier fast; sanitizer CI can shrink it further).

foreach(var BENCH_BIN OUT_JSON WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "RunBenchMicroJson.cmake needs -D${var}=...")
  endif()
endforeach()

set(min_time "$ENV{SPARDL_BENCH_MIN_TIME}")
if(NOT min_time)
  set(min_time "0.05")
endif()

set(raw_json "${WORK_DIR}/bench_micro_raw.json")
execute_process(
  COMMAND "${BENCH_BIN}"
    "--benchmark_filter=BM_TopKDense|BM_TopKSparse|BM_MergeSum|BM_SumAll"
    "--benchmark_min_time=${min_time}"
    --benchmark_format=json
    "--benchmark_out=${raw_json}"
  RESULT_VARIABLE run_result
  OUTPUT_QUIET)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "bench_micro_primitives failed (exit ${run_result})")
endif()

file(READ "${raw_json}" raw)
string(JSON n_benchmarks ERROR_VARIABLE json_err LENGTH "${raw}" benchmarks)
if(json_err OR n_benchmarks EQUAL 0)
  message(FATAL_ERROR
    "bench_micro_primitives produced no benchmark entries: ${json_err}")
endif()

# Distil {name: items_per_second} out of the raw run.
set(latest "{}")
math(EXPR last "${n_benchmarks} - 1")
foreach(i RANGE 0 ${last})
  string(JSON name GET "${raw}" benchmarks ${i} name)
  string(JSON ips ERROR_VARIABLE ips_err
    GET "${raw}" benchmarks ${i} items_per_second)
  if(NOT ips_err)
    string(JSON latest SET "${latest}" "${name}" "${ips}")
  endif()
endforeach()

# Merge into the committed artifact, preserving the baseline section.
set(out "{}")
if(EXISTS "${OUT_JSON}")
  file(READ "${OUT_JSON}" out)
  string(JSON schema ERROR_VARIABLE schema_err GET "${out}" schema)
  if(schema_err)
    set(out "{}")
  endif()
endif()
string(JSON out SET "${out}" schema "\"spardl-bench-micro/1\"")
string(JSON out SET "${out}" unit "\"items_per_second\"")
string(JSON baseline ERROR_VARIABLE baseline_err GET "${out}" baseline)
if(baseline_err)
  string(JSON out SET "${out}" baseline "null")
endif()
string(JSON out SET "${out}" latest "${latest}")
file(WRITE "${OUT_JSON}" "${out}\n")
message(STATUS "Wrote ${n_benchmarks} benchmark entries to ${OUT_JSON}")
