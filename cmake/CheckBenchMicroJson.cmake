# Tiny perf-artifact checker: fails if BENCH_micro.json is missing, not
# valid JSON, carries the wrong schema, has an empty/non-positive
# "latest" section, or has a malformed "history" array — and then gates
# on the perf trajectory itself: the newest history entry must not
# regress more than SPARDL_BENCH_GATE_PCT percent (default 20) in
# items/second against the most recent earlier entry *from the same
# host* on any benchmark both entries carry. Host keying is what lets
# the default stay strict: wall-clock numbers from different machines
# are never compared, so a laptop entry cannot "regress" against a CI
# runner's. When the newest entry has no same-host predecessor (first
# run on a machine, fresh CI runner, legacy host-less entries) the ratio
# gate is skipped with an explicit STATUS line.
# Input: -DJSON_FILE=<path>.

if(NOT DEFINED JSON_FILE)
  message(FATAL_ERROR "CheckBenchMicroJson.cmake needs -DJSON_FILE=...")
endif()
if(NOT EXISTS "${JSON_FILE}")
  message(FATAL_ERROR "${JSON_FILE} does not exist")
endif()

file(READ "${JSON_FILE}" content)
if(content STREQUAL "")
  message(FATAL_ERROR "${JSON_FILE} is empty")
endif()

string(JSON schema ERROR_VARIABLE err GET "${content}" schema)
if(err OR NOT schema STREQUAL "spardl-bench-micro/2")
  message(FATAL_ERROR
    "${JSON_FILE} malformed: bad schema '${schema}' (${err})")
endif()

# Positive decimal or scientific-notation number (CMake's numeric
# comparisons don't parse exponents, so validate the shape by regex).
function(check_benchmarks_positive path_label)
  string(JSON n ERROR_VARIABLE err LENGTH "${content}" ${ARGN})
  if(err OR n EQUAL 0)
    message(FATAL_ERROR
      "${JSON_FILE} has no '${path_label}' benchmarks (${err})")
  endif()
  math(EXPR last "${n} - 1")
  foreach(i RANGE 0 ${last})
    string(JSON name ERROR_VARIABLE err MEMBER "${content}" ${ARGN} ${i})
    if(err)
      message(FATAL_ERROR
        "${JSON_FILE} ${path_label}[${i}] unreadable: ${err}")
    endif()
    string(JSON ips ERROR_VARIABLE err GET "${content}" ${ARGN} "${name}")
    if(err OR NOT ips MATCHES "^[0-9.]+([eE][-+]?[0-9]+)?$"
       OR ips MATCHES "^0+(\\.0*)?$")
      message(FATAL_ERROR
        "${JSON_FILE} ${path_label}['${name}'] = '${ips}' is not positive "
        "(${err})")
    endif()
  endforeach()
  set(checked_count ${n} PARENT_SCOPE)
endfunction()

check_benchmarks_positive("latest" latest)
set(n_latest ${checked_count})

string(JSON n_history ERROR_VARIABLE err LENGTH "${content}" history)
if(err OR n_history EQUAL 0)
  message(FATAL_ERROR "${JSON_FILE} has no 'history' entries (${err})")
endif()
math(EXPR last_entry "${n_history} - 1")
foreach(i RANGE 0 ${last_entry})
  string(JSON commit ERROR_VARIABLE err GET "${content}" history ${i} commit)
  if(err OR commit STREQUAL "")
    message(FATAL_ERROR
      "${JSON_FILE} history[${i}] has no commit key (${err})")
  endif()
  check_benchmarks_positive("history[${i}].benchmarks"
    history ${i} benchmarks)
endforeach()

message(STATUS "${JSON_FILE}: ${n_latest} benchmark entries, "
  "${n_history} history commits OK")

# ---------------------------------------------------------------------------
# Ratio gate: newest history entry vs the one before it.
#
# CMake's math(EXPR) is 64-bit integer only and its comparisons don't
# parse exponents, so each items/second value is normalised to a
# 9-significant-digit integer mantissa plus a base-10 exponent, and the
# 'new >= prev * (100-pct)/100' test runs on exponent-aligned integers.

# value ~= mantissa * 10^exp, mantissa in [10^8, 10^9) (exactly 9
# digits). Caller guarantees value is positive (validated above).
function(parse_scaled value out_mant out_exp)
  set(base "${value}")
  set(exp 0)
  if(base MATCHES "^([0-9.]+)[eE]([-+]?)0*([0-9]+)$")
    set(base "${CMAKE_MATCH_1}")
    set(sign "${CMAKE_MATCH_2}")
    set(exp "${CMAKE_MATCH_3}")
    if(sign STREQUAL "-" AND NOT exp EQUAL 0)
      math(EXPR exp "0 - ${exp}")
    endif()
  endif()
  if(base MATCHES "^([0-9]*)\\.([0-9]*)$")
    set(digits "${CMAKE_MATCH_1}${CMAKE_MATCH_2}")
    string(LENGTH "${CMAKE_MATCH_2}" frac_len)
    math(EXPR exp "${exp} - ${frac_len}")
  else()
    set(digits "${base}")
  endif()
  string(REGEX REPLACE "^0+" "" digits "${digits}")
  string(LENGTH "${digits}" len)
  if(len GREATER 9)
    math(EXPR extra "${len} - 9")
    string(SUBSTRING "${digits}" 0 9 digits)
    math(EXPR exp "${exp} + ${extra}")
  elseif(len LESS 9)
    math(EXPR pad "9 - ${len}")
    string(REPEAT "0" ${pad} zeros)
    set(digits "${digits}${zeros}")
    math(EXPR exp "${exp} - ${pad}")
  endif()
  set(${out_mant} "${digits}" PARENT_SCOPE)
  set(${out_exp} "${exp}" PARENT_SCOPE)
endfunction()

# Fails when `new` < `prev` * (100 - pct) / 100 (items/second: lower is
# worse).
function(check_ratio name new prev pct)
  parse_scaled("${new}" new_mant new_exp)
  parse_scaled("${prev}" prev_mant prev_exp)
  math(EXPR diff "${new_exp} - ${prev_exp}")
  if(diff GREATER 1)
    return()  # new is at least ~10x prev: no regression possible
  endif()
  if(diff LESS -1)
    message(FATAL_ERROR
      "${JSON_FILE} perf gate: '${name}' collapsed from ${prev} to ${new} "
      "items/s (more than 10x below the previous history entry)")
  endif()
  # |diff| <= 1: align exponents, then compare new*100 vs prev*(100-pct).
  # Mantissas are < 1e9, so the largest product is < 1e12 — well inside
  # 64-bit math(EXPR).
  math(EXPR lhs "${new_mant} * 100")
  math(EXPR rhs "${prev_mant} * (100 - ${pct})")
  if(diff EQUAL 1)
    math(EXPR lhs "${lhs} * 10")
  elseif(diff EQUAL -1)
    math(EXPR rhs "${rhs} * 10")
  endif()
  if(lhs LESS rhs)
    message(FATAL_ERROR
      "${JSON_FILE} perf gate: '${name}' regressed more than ${pct}% "
      "(${prev} -> ${new} items/s vs the previous history entry; set "
      "SPARDL_BENCH_GATE_PCT to tune the threshold)")
  endif()
endfunction()

set(gate_pct "$ENV{SPARDL_BENCH_GATE_PCT}")
if(gate_pct STREQUAL "")
  set(gate_pct 20)
endif()
if(NOT gate_pct MATCHES "^[0-9]+$" OR gate_pct GREATER 99)
  message(FATAL_ERROR
    "SPARDL_BENCH_GATE_PCT='${gate_pct}' must be an integer in [0, 99]")
endif()

# The comparison pair: the newest entry vs the most recent earlier entry
# recorded on the same host. Entries without a host key (pre-host-keying
# artifacts, the migrated "pre-v2" entry) are unmatchable by design.
math(EXPR newest "${n_history} - 1")
string(JSON new_host ERROR_VARIABLE new_host_err
  GET "${content}" history ${newest} host)
set(previous -1)
if(NOT new_host_err AND NOT new_host STREQUAL "")
  math(EXPR last_prior "${n_history} - 2")
  if(last_prior GREATER_EQUAL 0)
    # Forward scan keeping the last match = the most recent same-host
    # entry (foreach(RANGE) has no portable downward form).
    foreach(i RANGE 0 ${last_prior})
      string(JSON prev_host ERROR_VARIABLE prev_host_err
        GET "${content}" history ${i} host)
      if(NOT prev_host_err AND prev_host STREQUAL "${new_host}")
        set(previous ${i})
      endif()
    endforeach()
  endif()
endif()

if(new_host_err OR new_host STREQUAL "")
  message(STATUS "${JSON_FILE}: ratio gate skipped — newest history "
    "entry carries no host key")
elseif(previous EQUAL -1)
  message(STATUS "${JSON_FILE}: ratio gate skipped — no earlier history "
    "entry from host '${new_host}'")
else()
  string(JSON n_new LENGTH "${content}" history ${newest} benchmarks)
  math(EXPR last_bench "${n_new} - 1")
  set(gated 0)
  foreach(i RANGE 0 ${last_bench})
    string(JSON name MEMBER "${content}" history ${newest} benchmarks ${i})
    string(JSON new_ips GET "${content}" history ${newest} benchmarks
      "${name}")
    string(JSON prev_ips ERROR_VARIABLE prev_err
      GET "${content}" history ${previous} benchmarks "${name}")
    if(prev_err)
      message(STATUS "${JSON_FILE}: '${name}' is new in history[${newest}] "
        "— no previous entry to gate against")
      continue()
    endif()
    check_ratio("${name}" "${new_ips}" "${prev_ips}" "${gate_pct}")
    math(EXPR gated "${gated} + 1")
  endforeach()
  message(STATUS "${JSON_FILE}: ratio gate OK — ${gated} benchmark(s) "
    "within ${gate_pct}% of history[${previous}] (host '${new_host}')")
endif()
