# Tiny perf-artifact checker: fails if BENCH_micro.json is missing, not
# valid JSON, carries the wrong schema, has an empty/non-positive
# "latest" section, or has a malformed per-commit "history" array.
# Input: -DJSON_FILE=<path>.

if(NOT DEFINED JSON_FILE)
  message(FATAL_ERROR "CheckBenchMicroJson.cmake needs -DJSON_FILE=...")
endif()
if(NOT EXISTS "${JSON_FILE}")
  message(FATAL_ERROR "${JSON_FILE} does not exist")
endif()

file(READ "${JSON_FILE}" content)
if(content STREQUAL "")
  message(FATAL_ERROR "${JSON_FILE} is empty")
endif()

string(JSON schema ERROR_VARIABLE err GET "${content}" schema)
if(err OR NOT schema STREQUAL "spardl-bench-micro/2")
  message(FATAL_ERROR
    "${JSON_FILE} malformed: bad schema '${schema}' (${err})")
endif()

# Positive decimal or scientific-notation number (CMake's numeric
# comparisons don't parse exponents, so validate the shape by regex).
function(check_benchmarks_positive path_label)
  string(JSON n ERROR_VARIABLE err LENGTH "${content}" ${ARGN})
  if(err OR n EQUAL 0)
    message(FATAL_ERROR
      "${JSON_FILE} has no '${path_label}' benchmarks (${err})")
  endif()
  math(EXPR last "${n} - 1")
  foreach(i RANGE 0 ${last})
    string(JSON name ERROR_VARIABLE err MEMBER "${content}" ${ARGN} ${i})
    if(err)
      message(FATAL_ERROR
        "${JSON_FILE} ${path_label}[${i}] unreadable: ${err}")
    endif()
    string(JSON ips ERROR_VARIABLE err GET "${content}" ${ARGN} "${name}")
    if(err OR NOT ips MATCHES "^[0-9.]+([eE][-+]?[0-9]+)?$"
       OR ips MATCHES "^0+(\\.0*)?$")
      message(FATAL_ERROR
        "${JSON_FILE} ${path_label}['${name}'] = '${ips}' is not positive "
        "(${err})")
    endif()
  endforeach()
  set(checked_count ${n} PARENT_SCOPE)
endfunction()

check_benchmarks_positive("latest" latest)
set(n_latest ${checked_count})

string(JSON n_history ERROR_VARIABLE err LENGTH "${content}" history)
if(err OR n_history EQUAL 0)
  message(FATAL_ERROR "${JSON_FILE} has no 'history' entries (${err})")
endif()
math(EXPR last_entry "${n_history} - 1")
foreach(i RANGE 0 ${last_entry})
  string(JSON commit ERROR_VARIABLE err GET "${content}" history ${i} commit)
  if(err OR commit STREQUAL "")
    message(FATAL_ERROR
      "${JSON_FILE} history[${i}] has no commit key (${err})")
  endif()
  check_benchmarks_positive("history[${i}].benchmarks"
    history ${i} benchmarks)
endforeach()

message(STATUS "${JSON_FILE}: ${n_latest} benchmark entries, "
  "${n_history} history commits OK")
