# Tiny perf-artifact checker: fails if BENCH_micro.json is missing, not
# valid JSON, carries the wrong schema, or has an empty/non-positive
# "latest" section. Input: -DJSON_FILE=<path>.

if(NOT DEFINED JSON_FILE)
  message(FATAL_ERROR "CheckBenchMicroJson.cmake needs -DJSON_FILE=...")
endif()
if(NOT EXISTS "${JSON_FILE}")
  message(FATAL_ERROR "${JSON_FILE} does not exist")
endif()

file(READ "${JSON_FILE}" content)
if(content STREQUAL "")
  message(FATAL_ERROR "${JSON_FILE} is empty")
endif()

string(JSON schema ERROR_VARIABLE err GET "${content}" schema)
if(err OR NOT schema STREQUAL "spardl-bench-micro/1")
  message(FATAL_ERROR
    "${JSON_FILE} malformed: bad schema '${schema}' (${err})")
endif()

string(JSON n ERROR_VARIABLE err LENGTH "${content}" latest)
if(err OR n EQUAL 0)
  message(FATAL_ERROR "${JSON_FILE} has no 'latest' benchmarks (${err})")
endif()

math(EXPR last "${n} - 1")
foreach(i RANGE 0 ${last})
  string(JSON name ERROR_VARIABLE err MEMBER "${content}" latest ${i})
  if(err)
    message(FATAL_ERROR "${JSON_FILE} latest[${i}] unreadable: ${err}")
  endif()
  string(JSON ips ERROR_VARIABLE err GET "${content}" latest "${name}")
  # Positive decimal or scientific-notation number (CMake's numeric
  # comparisons don't parse exponents, so validate the shape by regex).
  if(err OR NOT ips MATCHES "^[0-9.]+([eE][-+]?[0-9]+)?$" OR ips MATCHES "^0+(\\.0*)?$")
    message(FATAL_ERROR
      "${JSON_FILE} latest['${name}'] = '${ips}' is not positive (${err})")
  endif()
endforeach()
message(STATUS "${JSON_FILE}: ${n} benchmark entries OK")
