// Compare every sparse All-Reduce method on one paper-scale workload
// (VGG-19 profile, 20.1M parameters, 14 workers, k/n = 1%), printing the
// paper's headline table: per-update communication time, bandwidth and
// latency per worker.
//
//   $ ./build/examples/compare_algorithms

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"

int main() {
  using namespace spardl;  // NOLINT
  const ModelProfile& profile = ProfileByModel("VGG-19");
  std::printf(
      "comparing sparse All-Reduce methods on %s (%zu params), P=14, "
      "k/n=1%%\n\n",
      profile.model.c_str(), profile.num_params);

  bench::PerUpdateOptions options;
  options.num_workers = 14;
  options.k_ratio = 0.01;
  options.measured_iterations = 1;

  TablePrinter table({"method", "comm (s)", "latency (msgs)",
                      "bandwidth (MWords)", "vs SparDL"});
  const std::vector<std::string> algos = {"topkdsa", "topka", "oktopk",
                                          "spardl"};
  std::vector<bench::PerUpdateResult> results =
      bench::MeasurePerUpdateAll(algos, profile, options);
  const double spardl_comm = results.back().comm_seconds;
  for (const auto& r : results) {
    table.AddRow({r.algo_label, StrFormat("%.4f", r.comm_seconds),
                  StrFormat("%.0f", r.messages_per_update),
                  StrFormat("%.2f", r.words_per_update / 1e6),
                  StrFormat("%.2fx", r.comm_seconds / spardl_comm)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("with teams (Spar-All-Gather):\n");
  TablePrinter sag_table({"config", "comm (s)", "latency (msgs)"});
  for (int d : {1, 2, 7, 14}) {
    options.num_teams = d;
    const bench::PerUpdateResult r =
        bench::MeasurePerUpdate("spardl", profile, options);
    sag_table.AddRow({std::string(r.algo_label),
                      StrFormat("%.4f", r.comm_seconds),
                      StrFormat("%.0f", r.messages_per_update)});
  }
  std::printf("%s", sag_table.ToString().c_str());
  return 0;
}
