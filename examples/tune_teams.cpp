// The paper's recommended procedure for picking the team count d
// (§III-D, §IV-G), generalised to the fabric you actually run on: a
// (d, placement) grid search that simulates one epoch of SparDL per
// divisor of P per team-placement policy on the *selected* topology and
// keeps the fastest cell. On the flat default every placement costs the
// same and this degenerates to the paper's d sweep; on a hierarchical
// fabric (e.g. an oversubscribed fat-tree) both the optimal d and the
// optimal layout can differ from the flat answer — which is the point.
//
//   $ ./build/examples/tune_teams [P] [--topology SPEC] [--engine busy|event]
//         [--placement contiguous|rack|interleaved] [--workers N]
//         [--iterations N]
//
// P defaults to 12; --workers (or SPARDL_BENCH_WORKERS) overrides it.
// --placement narrows the grid to one policy.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  int p = 12;
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    p = std::atoi(argv[1]);
  }
  p = args.workers_or(p);
  if (p < 2) {
    std::fprintf(stderr, "P must be >= 2\n");
    return 1;
  }
  const ModelProfile& profile = ProfileByModel("VGG-16");

  // The historical bug this rebuild fixes: the tuner used to ignore
  // --topology / SPARDL_BENCH_TOPOLOGY and always tuned d on the flat
  // closed-form fabric. The grid now runs on the resolved spec.
  const TopologySpec fabric =
      args.TopologyOr(std::nullopt, p).value_or(TopologySpec::Flat(p));

  bench::TeamTuneOptions tune;
  tune.iterations_per_epoch = 30;
  tune.measured_iterations = args.iterations_or(2);
  if (args.placement.has_value()) tune.policies = {*args.placement};

  std::printf(
      "selecting the optimal (d, placement) for P=%d on %s (%zu params)\n"
      "fabric: %s\n"
      "one simulated epoch (%d iterations) per candidate...\n\n",
      p, profile.model.c_str(), profile.num_params, fabric.Describe().c_str(),
      tune.iterations_per_epoch);

  const bench::TeamTuneResult result =
      bench::TuneTeamPlacement(profile, fabric, tune);

  TablePrinter table(
      {"d", "placement", "SAG variant", "per-epoch comm+comp (s)"});
  for (const bench::TeamTuneCandidate& c : result.candidates) {
    table.AddRow({StrFormat("%d", c.num_teams),
                  std::string(PlacementPolicyName(c.placement)),
                  c.algo_label, StrFormat("%.2f", c.epoch_seconds)});
  }
  std::printf("%s\n", table.ToString().c_str());
  const bench::TeamTuneCandidate& best = result.best();
  std::printf("optimal: d=%d, %.*s placement (%s), %.2f s per epoch\n",
              best.num_teams,
              static_cast<int>(PlacementPolicyName(best.placement).size()),
              PlacementPolicyName(best.placement).data(),
              best.algo_label.c_str(), best.epoch_seconds);
  return 0;
}
