// The paper's recommended procedure for picking the team count d
// (§III-D, §IV-G): run one epoch per divisor of P and keep the fastest.
// This example automates it on a paper-scale profile.
//
//   $ ./build/examples/tune_teams [P]   (default: 12)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const int p = argc > 1 ? std::atoi(argv[1]) : 12;
  if (p < 2) {
    std::fprintf(stderr, "P must be >= 2\n");
    return 1;
  }
  const ModelProfile& profile = ProfileByModel("VGG-16");
  const int iterations_per_epoch = 30;

  std::printf(
      "selecting the optimal team count d for P=%d on %s (%zu params)\n"
      "one simulated epoch (%d iterations) per candidate d...\n\n",
      p, profile.model.c_str(), profile.num_params, iterations_per_epoch);

  TablePrinter table({"d", "SAG variant", "per-epoch comm+comp (s)"});
  double best_time = -1.0;
  int best_d = 1;
  std::string best_label;
  for (int d = 1; d <= p; ++d) {
    if (p % d != 0) continue;  // d must divide P
    bench::PerUpdateOptions options;
    options.num_workers = p;
    options.k_ratio = 0.01;
    options.num_teams = d;
    options.measured_iterations = 2;
    const bench::PerUpdateResult r =
        bench::MeasurePerUpdate("spardl", profile, options);
    const double epoch_seconds =
        (r.comm_seconds + r.compute_seconds) * iterations_per_epoch;
    table.AddRow({StrFormat("%d", d), std::string(r.algo_label),
                  StrFormat("%.2f", epoch_seconds)});
    if (best_time < 0.0 || epoch_seconds < best_time) {
      best_time = epoch_seconds;
      best_d = d;
      best_label = r.algo_label;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("optimal: d=%d (%s), %.2f s per epoch\n", best_d,
              best_label.c_str(), best_time);
  return 0;
}
