// Explore how the choice of network fabric changes which sparse All-Reduce
// method wins, before deploying on a real cluster: runs SparDL (with and
// without teams) and the strongest baselines on a chosen topology and
// prints measured per-update costs next to the flat-model baseline.
//
//   $ ./build/examples/topology_explorer [topology] [P] [n] [k_ratio]
//         [engine]
//
// `topology` is flat | star | ring | fattree |
// fattree:<rack>x<oversub>[x<cores>] | torus:<w>x<h> (e.g. "fattree:4x8"
// or the 2-core ECMP "fattree:4x8x2"), or "all" (default) to sweep every
// fabric. Any spec takes a "+event" suffix, and `engine` (busy | event)
// applies to the whole sweep — event is the simnet v3 deterministic
// discrete-event engine.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"
#include "topo/topology_spec.h"

namespace spardl {
namespace {

void ExploreOne(const TopologySpec& spec, size_t n, double k_ratio) {
  const ModelProfile profile = {"-", "synthetic", "-", n, 0.0};
  std::vector<std::pair<std::string, int>> methods = {
      {"topka", 1}, {"oktopk", 1}, {"gtopk", 1}, {"spardl", 1}};
  if (spec.num_workers % 2 == 0) methods.push_back({"spardl", 2});

  TablePrinter table({"method", "comm/update", "words/update", "msgs"});
  for (const auto& [algo, teams] : methods) {
    bench::PerUpdateOptions options;
    options.num_workers = spec.num_workers;
    options.k_ratio = k_ratio;
    options.num_teams = teams;
    options.topology = spec;
    options.measured_iterations = 2;
    const bench::PerUpdateResult r =
        bench::MeasurePerUpdate(algo, profile, options);
    table.AddRow({r.algo_label, HumanSeconds(r.comm_seconds),
                  StrFormat("%.0f", r.words_per_update),
                  StrFormat("%.0f", r.messages_per_update)});
  }
  std::printf("--- %s ---\n%s\n", spec.Describe().c_str(),
              table.ToString().c_str());
}

}  // namespace
}  // namespace spardl

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const std::string topology = argc > 1 ? argv[1] : "all";
  const int p = argc > 2 ? std::atoi(argv[2]) : 8;
  const size_t n =
      argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 2'000'000;
  const double k_ratio = argc > 4 ? std::atof(argv[4]) : 0.01;
  const std::string engine_arg = argc > 5 ? argv[5] : "";
  ChargeEngine engine = ChargeEngine::kBusyUntil;
  if (engine_arg == "event") {
    engine = ChargeEngine::kEventOrdered;
  } else if (!engine_arg.empty() && engine_arg != "busy") {
    std::fprintf(stderr, "unknown engine '%s' (want busy|event)\n",
                 engine_arg.c_str());
    return 2;
  }

  const std::string engine_note =
      engine_arg.empty() ? std::string("per-spec charge (default busy-until)")
                         : std::string(ChargeEngineName(engine));
  std::printf(
      "Topology explorer: measured per-update costs on simulated fabrics\n"
      "(P=%d, n=%zu, k/n=%g, Ethernet alpha-beta budget per hop, "
      "%s engine)\n\n",
      p, n, k_ratio, engine_note.c_str());

  std::vector<TopologySpec> specs;
  if (topology == "all") {
    specs = bench::DefaultFabricSweep(p);
  } else {
    auto parsed = TopologySpec::Parse(topology, p);
    // Build-validate too (e.g. a torus grid that does not hold P
    // workers), so a bad spec is a usage error, not a CHECK abort
    // mid-run.
    if (parsed.ok()) {
      if (auto built = (*parsed).Build(); !built.ok()) {
        parsed = built.status();
      }
    }
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    specs.push_back(*parsed);
  }
  for (TopologySpec& spec : specs) {
    // An explicit positional engine overrides the whole sweep (either
    // direction); otherwise any per-spec "+event"/"+busy" suffix (already
    // folded into the parsed spec) stands.
    if (!engine_arg.empty()) spec.engine = engine;
    ExploreOne(spec, n, k_ratio);
  }

  std::printf(
      "Reading: pick the method whose traffic shape matches your fabric — "
      "on oversubscribed racks, prefer team counts that keep SRS traffic "
      "rack-local; on high-latency multi-hop fabrics, fewer rounds beat "
      "lower volume.\n");
  return 0;
}
