// Explore how the choice of network fabric changes which sparse All-Reduce
// method wins, before deploying on a real cluster: runs SparDL (with and
// without teams) and the strongest baselines on a chosen topology and
// prints measured per-update costs next to the flat-model baseline.
//
//   $ ./build/examples/topology_explorer [topology] [P] [n] [k_ratio]
//
// `topology` is flat | star | ring | fattree | fattree:<rack>x<oversub>
// (e.g. "fattree:4x8"), or "all" (default) to sweep every fabric.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"
#include "topo/topology_spec.h"

namespace spardl {
namespace {

void ExploreOne(const TopologySpec& spec, size_t n, double k_ratio) {
  const ModelProfile profile = {"-", "synthetic", "-", n, 0.0};
  std::vector<std::pair<std::string, int>> methods = {
      {"topka", 1}, {"oktopk", 1}, {"spardl", 1}};
  if (spec.num_workers % 2 == 0) methods.push_back({"spardl", 2});
  if ((spec.num_workers & (spec.num_workers - 1)) == 0) {
    methods.insert(methods.begin() + 2, {"gtopk", 1});
  }

  TablePrinter table({"method", "comm/update", "words/update", "msgs"});
  for (const auto& [algo, teams] : methods) {
    bench::PerUpdateOptions options;
    options.num_workers = spec.num_workers;
    options.k_ratio = k_ratio;
    options.num_teams = teams;
    options.topology = spec;
    options.measured_iterations = 2;
    const bench::PerUpdateResult r =
        bench::MeasurePerUpdate(algo, profile, options);
    table.AddRow({r.algo_label, HumanSeconds(r.comm_seconds),
                  StrFormat("%.0f", r.words_per_update),
                  StrFormat("%.0f", r.messages_per_update)});
  }
  std::printf("--- %s ---\n%s\n", spec.Describe().c_str(),
              table.ToString().c_str());
}

}  // namespace
}  // namespace spardl

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const std::string topology = argc > 1 ? argv[1] : "all";
  const int p = argc > 2 ? std::atoi(argv[2]) : 8;
  const size_t n =
      argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 2'000'000;
  const double k_ratio = argc > 4 ? std::atof(argv[4]) : 0.01;

  std::printf(
      "Topology explorer: measured per-update costs on simulated fabrics\n"
      "(P=%d, n=%zu, k/n=%g, Ethernet alpha-beta budget per hop)\n\n",
      p, n, k_ratio);

  std::vector<TopologySpec> specs;
  if (topology == "all") {
    specs = {TopologySpec::Flat(p), TopologySpec::Star(p),
             TopologySpec::FatTree(p, (p + 1) / 2, 4.0),
             TopologySpec::Ring(p)};
  } else {
    auto parsed = TopologySpec::Parse(topology, p);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    specs.push_back(*parsed);
  }
  for (const TopologySpec& spec : specs) ExploreOne(spec, n, k_ratio);

  std::printf(
      "Reading: pick the method whose traffic shape matches your fabric — "
      "on oversubscribed racks, prefer team counts that keep SRS traffic "
      "rack-local; on high-latency multi-hop fabrics, fewer rounds beat "
      "lower volume.\n");
  return 0;
}
