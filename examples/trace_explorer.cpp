// See where a sparse All-Reduce spends its simulated time: runs SparDL
// with span recording on, prints the phase breakdown and per-link
// utilization tables, and (with --trace-out) writes a Perfetto-loadable
// Chrome trace of every worker and the hottest links.
//
//   $ ./build/examples/trace_explorer [--workers P] [--iterations N]
//         [--topology SPEC] [--engine busy|event]
//         [--trace-out trace.json] [--metrics-out metrics.json]
//
// Defaults to an oversubscribed two-rack fat-tree on the event-ordered
// engine — a fabric where the rack-to-core trunk links are the
// bottleneck, which the link table should surface as the busiest rows.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench_util.h"
#include "common/logging.h"
#include "dl/grad_profile.h"
#include "obs/exporters.h"
#include "simnet/cluster.h"
#include "topo/topology_spec.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const int p = args.workers_or(8);
  const int iterations = args.iterations_or(2);

  // Two racks, heavily oversubscribed trunks, event engine — unless the
  // harness flags say otherwise.
  TopologySpec fallback =
      TopologySpec::FatTree(p, /*rack_size=*/(p + 1) / 2,
                            /*oversubscription=*/8.0);
  fallback.engine = ChargeEngine::kEventOrdered;
  const TopologySpec fabric = *args.TopologyOr(fallback, p);

  const size_t n = 1 << 16;
  const size_t k = n / 100;
  AlgorithmConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = p;
  config.num_teams = p % 2 == 0 ? 2 : 1;
  config.residual_mode = ResidualMode::kNone;

  Cluster cluster(fabric);
  cluster.EnableTracing();  // always on here — tracing is the point
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto created = CreateAlgorithm("spardl", config);
    SPARDL_CHECK(created.ok()) << created.status().ToString();
    algos[static_cast<size_t>(r)] = std::move(*created);
  }

  const ProfileGradientGenerator generator(n, /*seed=*/2024);
  const size_t candidates_per_worker = k * 3 / 2;
  for (int iter = 0; iter < iterations; ++iter) {
    cluster.Run([&](Comm& comm) {
      const SparseVector candidates =
          generator.Generate(comm.rank(), iter, candidates_per_worker);
      algos[static_cast<size_t>(comm.rank())]->RunOnSparse(comm,
                                                           candidates);
      comm.MarkIteration();  // before the barrier: keep cross-worker skew
      comm.BarrierSyncClocks();
    });
  }

  const std::string label(algos[0]->name());
  const RunMetrics metrics = CollectRunMetrics(cluster, label);
  std::printf("%s on %s (%s engine): %d iterations, makespan %.6fs, "
              "%zu spans recorded\n\n",
              label.c_str(), metrics.topology.c_str(),
              metrics.engine.c_str(), iterations, metrics.makespan_seconds,
              cluster.tracer()->TotalSpans());
  std::printf("Top phases (seconds summed over %d workers):\n%s\n", p,
              TopPhasesTable(metrics).c_str());
  std::printf("Busiest links:\n%s\n",
              LinkUtilizationTable(metrics).c_str());

  // Persist artifacts when --trace-out / --metrics-out were given.
  bench::ObserveRun(cluster, label);
  return 0;
}
