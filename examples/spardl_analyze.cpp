// Offline viewer for the observability artifacts the bench harness
// writes: loads a `spardl-run-metrics` JSON (whose runs embed their
// critical-path analysis since schema /2) and/or a standalone
// `spardl-timeseries` JSON, and renders the critical-path, what-if,
// per-iteration, and straggler tables without re-running the simulation.
//
//   $ ./build/examples/spardl-analyze --metrics metrics.json
//         [--timeseries timeseries.json]
//
// Positional arguments work too: the first is the metrics file, the
// second the time-series file. Exits non-zero when an artifact is
// missing/malformed or a run's critical-path identity is broken (the
// segments no longer sum to the end-to-end simulated time), so CI can
// gate on it directly.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "metrics/table.h"
#include "obs/analysis.h"
#include "obs/json.h"

namespace spardl {
namespace {

constexpr const char* kUsage =
    "usage: spardl-analyze [--metrics FILE] [--timeseries FILE]\n"
    "       spardl-analyze METRICS_FILE [TIMESERIES_FILE]\n";

JsonValue LoadJsonOrDie(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "spardl-analyze: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::optional<JsonValue> parsed = JsonParse(buffer.str());
  if (!parsed.has_value()) {
    std::fprintf(stderr, "spardl-analyze: '%s' is not valid JSON\n",
                 path.c_str());
    std::exit(1);
  }
  return std::move(*parsed);
}

// Renders one run's embedded `spardl-analysis/1` object in the same shape
// `CriticalPathTable`/`WhatIfTable` print at record time. Returns the
// identity verdict so main can turn a broken chain into a non-zero exit.
bool PrintAnalysis(const JsonValue& analysis) {
  const JsonValue* identity = analysis.Find("identity_ok");
  const bool identity_ok =
      identity != nullptr && identity->type == JsonValue::Type::kBool &&
      identity->bool_value;
  const double makespan = analysis.NumberOr("makespan_seconds", 0.0);
  const double path = analysis.NumberOr("path_seconds", 0.0);
  std::printf(
      "critical path: makespan %.9f s, path %.9f s, %d segments, "
      "identity %s (ends on w%d)\n",
      makespan, path, static_cast<int>(analysis.NumberOr("segments", 0.0)),
      identity_ok ? "OK" : "BROKEN",
      static_cast<int>(analysis.NumberOr("end_worker", -1.0)));

  TablePrinter kinds({"kind", "seconds", "share"});
  if (const JsonValue* by_kind = analysis.Find("by_kind");
      by_kind != nullptr && by_kind->is_object()) {
    for (const auto& [kind, seconds] : by_kind->object_items) {
      if (!seconds.is_number()) continue;
      kinds.AddRow({kind, StrFormat("%.9f", seconds.number_value),
                    path > 0.0
                        ? StrFormat("%.1f%%",
                                    seconds.number_value / path * 100.0)
                        : "-"});
    }
  }
  kinds.AddRow({"total (path)", StrFormat("%.9f", path), "100.0%"});
  std::printf("%s", kinds.ToString().c_str());

  if (const JsonValue* by_link = analysis.Find("by_link");
      by_link != nullptr && by_link->is_array() &&
      !by_link->array_items.empty()) {
    std::printf("links on the critical path:\n");
    TablePrinter links(
        {"link", "queue (s)", "alpha (s)", "serialize (s)", "total (s)"});
    size_t shown = 0;
    for (const JsonValue& c : by_link->array_items) {
      if (shown++ >= 8) break;
      const double queue = c.NumberOr("queue_seconds", 0.0);
      const double alpha = c.NumberOr("alpha_seconds", 0.0);
      const double serialize = c.NumberOr("serialize_seconds", 0.0);
      links.AddRow({c.StringOr("name", "?"), StrFormat("%.9f", queue),
                    StrFormat("%.9f", alpha), StrFormat("%.9f", serialize),
                    StrFormat("%.9f", queue + alpha + serialize)});
    }
    std::printf("%s", links.ToString().c_str());
  }

  if (const JsonValue* what_if = analysis.Find("what_if");
      what_if != nullptr && what_if->is_array()) {
    std::vector<WhatIfResult> results;
    for (const JsonValue& entry : what_if->array_items) {
      WhatIfResult result;
      result.name = entry.StringOr("name", "?");
      result.path_seconds = entry.NumberOr("path_seconds", 0.0);
      result.speedup = entry.NumberOr("speedup", 1.0);
      results.push_back(std::move(result));
    }
    std::printf("%s", WhatIfTable(results).c_str());
  }
  return identity_ok;
}

// Returns the number of runs whose critical-path identity is broken.
int PrintMetricsDoc(const std::string& path) {
  const JsonValue doc = LoadJsonOrDie(path);
  const std::string schema = doc.StringOr("schema", "");
  if (schema != "spardl-run-metrics/1" &&
      schema != "spardl-run-metrics/2") {
    std::fprintf(stderr,
                 "spardl-analyze: '%s' has schema '%s', want "
                 "spardl-run-metrics/1|2\n",
                 path.c_str(), schema.c_str());
    std::exit(1);
  }
  const JsonValue* runs = doc.Find("runs");
  if (runs == nullptr || !runs->is_array()) {
    std::fprintf(stderr, "spardl-analyze: '%s' has no runs array\n",
                 path.c_str());
    std::exit(1);
  }
  int broken = 0;
  size_t index = 0;
  for (const JsonValue& run : runs->array_items) {
    std::printf("run %zu '%s' on %s (%s): makespan %.6fs\n", ++index,
                run.StringOr("label", "?").c_str(),
                run.StringOr("topology", "?").c_str(),
                run.StringOr("engine", "?").c_str(),
                run.NumberOr("makespan_seconds", 0.0));
    const JsonValue* analysis = run.Find("analysis");
    if (analysis == nullptr || !analysis->is_object()) {
      std::printf("(no embedded analysis — schema /1 artifact)\n");
      continue;
    }
    if (!PrintAnalysis(*analysis)) ++broken;
  }
  return broken;
}

void PrintTimeSeriesDoc(const std::string& path) {
  const JsonValue doc = LoadJsonOrDie(path);
  const std::string schema = doc.StringOr("schema", "");
  if (schema != "spardl-timeseries/1") {
    std::fprintf(stderr,
                 "spardl-analyze: '%s' has schema '%s', want "
                 "spardl-timeseries/1\n",
                 path.c_str(), schema.c_str());
    std::exit(1);
  }
  TimeSeriesReport report;
  report.workers = static_cast<int>(doc.NumberOr("workers", 0.0));
  report.iterations = static_cast<int>(doc.NumberOr("iterations", 0.0));
  report.straggler_factor = doc.NumberOr("straggler_factor", 0.0);
  report.median_worker_wall = doc.NumberOr("median_worker_wall", 0.0);
  if (const JsonValue* series = doc.Find("series");
      series != nullptr && series->is_array()) {
    for (const JsonValue& row : series->array_items) {
      IterationStat stat;
      stat.iteration = static_cast<int>(row.NumberOr("iteration", 0.0));
      stat.wall_min = row.NumberOr("wall_min", 0.0);
      stat.wall_median = row.NumberOr("wall_median", 0.0);
      stat.wall_max = row.NumberOr("wall_max", 0.0);
      stat.wall_p99 = row.NumberOr("wall_p99", 0.0);
      stat.comm_mean = row.NumberOr("comm_mean", 0.0);
      stat.compute_mean = row.NumberOr("compute_mean", 0.0);
      report.series.push_back(std::move(stat));
    }
  }
  if (const JsonValue* stragglers = doc.Find("stragglers");
      stragglers != nullptr && stragglers->is_array()) {
    for (const JsonValue& row : stragglers->array_items) {
      StragglerEntry entry;
      entry.worker = static_cast<int>(row.NumberOr("worker", -1.0));
      entry.mean_wall = row.NumberOr("mean_wall", 0.0);
      entry.ratio = row.NumberOr("ratio", 0.0);
      report.stragglers.push_back(entry);
    }
  }
  std::printf("time series '%s': %d workers, %d iterations\n",
              doc.StringOr("label", "?").c_str(), report.workers,
              report.iterations);
  std::printf("%s", TimeSeriesTable(report).c_str());
  std::printf("%s", StragglerTable(report).c_str());
}

int Main(int argc, char** argv) {
  std::optional<std::string> metrics_path;
  std::optional<std::string> timeseries_path;
  std::vector<std::string> positionals;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto take_value = [&](const char* flag) -> std::optional<std::string> {
      const size_t len = std::strlen(flag);
      if (std::strncmp(arg, flag, len) != 0) return std::nullopt;
      if (arg[len] == '=') return std::string(arg + len + 1);
      if (arg[len] != '\0') return std::nullopt;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n%s", flag, kUsage);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (auto v = take_value("--metrics")) {
      metrics_path = *v;
    } else if (auto ts = take_value("--timeseries")) {
      timeseries_path = *ts;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n%s", arg, kUsage);
      std::exit(2);
    } else {
      positionals.emplace_back(arg);
    }
  }
  for (const std::string& positional : positionals) {
    if (!metrics_path.has_value()) {
      metrics_path = positional;
    } else if (!timeseries_path.has_value()) {
      timeseries_path = positional;
    } else {
      std::fprintf(stderr, "too many positional arguments\n%s", kUsage);
      std::exit(2);
    }
  }
  if (!metrics_path.has_value() && !timeseries_path.has_value()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  int broken = 0;
  if (metrics_path.has_value()) broken = PrintMetricsDoc(*metrics_path);
  if (timeseries_path.has_value()) PrintTimeSeriesDoc(*timeseries_path);
  if (broken > 0) {
    std::fprintf(stderr,
                 "spardl-analyze: %d run(s) with a broken critical-path "
                 "identity\n",
                 broken);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace spardl

int main(int argc, char** argv) { return spardl::Main(argc, argv); }
