// Quickstart: synchronise sparse gradients across 8 simulated workers with
// SparDL and check the synchronous-SGD consistency guarantee.
//
//   $ ./build/examples/quickstart
//
// What it shows:
//  1. build a simulated cluster (the MPI stand-in),
//  2. configure SparDL (k = 1% of n, no teams),
//  3. each worker contributes its own dense gradient,
//  4. every worker gets back the same global sparse gradient, and the
//     discarded remainder is retained as residual for the next iteration.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/spardl.h"
#include "simnet/cluster.h"

int main() {
  using namespace spardl;  // NOLINT

  const int num_workers = 8;
  const size_t n = 100'000;  // flattened model size
  const size_t k = n / 100;  // paper default: 1% density

  // 1. The simulated cluster. CostModel::Ethernet() charges the paper's
  //    alpha-beta costs; swap in InfiniBandRdma() to model the RDMA
  //    cluster of §IV-J.
  Cluster cluster(num_workers, CostModel::Ethernet());

  // 2. One SparDL instance per worker (it owns that worker's residuals).
  SparDLConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = num_workers;
  config.num_teams = 1;  // plain SparDL: SRS + Bruck all-gather

  std::vector<std::unique_ptr<SparDL>> spardl(num_workers);
  for (int r = 0; r < num_workers; ++r) {
    auto created = SparDL::Create(config);
    if (!created.ok()) {
      std::fprintf(stderr, "config error: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    spardl[static_cast<size_t>(r)] = std::move(*created);
  }

  // 3+4. One training iteration: local gradients in, identical global
  //      sparse gradient out.
  std::vector<SparseVector> global(num_workers);
  cluster.Run([&](Comm& comm) {
    Rng rng(42 + static_cast<uint64_t>(comm.rank()));
    std::vector<float> grad(n);
    for (float& v : grad) v = static_cast<float>(rng.NextGaussian());

    global[static_cast<size_t>(comm.rank())] =
        spardl[static_cast<size_t>(comm.rank())]->Run(comm, grad);
  });

  bool consistent = true;
  for (int r = 1; r < num_workers; ++r) {
    if (!(global[static_cast<size_t>(r)] == global[0])) consistent = false;
  }
  std::printf("global gradient nnz : %zu (k = %zu)\n", global[0].size(), k);
  std::printf("replicas consistent : %s\n", consistent ? "yes" : "NO");
  std::printf("simulated time      : %.3f ms\n",
              cluster.MaxSimSeconds() * 1e3);
  std::printf("per-worker bandwidth: %lu words received\n",
              static_cast<unsigned long>(cluster.MaxWordsReceived()));
  std::printf("latency rounds      : %lu messages\n",
              static_cast<unsigned long>(cluster.MaxMessagesReceived()));
  return consistent ? 0 : 1;
}
