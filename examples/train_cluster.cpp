// Train a classifier across a simulated 8-worker cluster with SparDL and
// watch accuracy climb — the full S-SGD loop from the paper's Fig. 4:
// forward/backward -> residual feedback -> Spar-Reduce-Scatter ->
// (Spar-All-Gather) -> Bruck all-gather -> SGD update.
//
//   $ ./build/examples/train_cluster [algorithm]   (default: spardl)

#include <cstdio>
#include <string>

#include "baselines/registry.h"
#include "dl/cases.h"
#include "simnet/cluster.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const std::string algo = argc > 1 ? argv[1] : "spardl";
  const int num_workers = 8;

  const TrainingCaseSpec spec = MakeTrainingCase("vgg16");
  auto dataset = spec.dataset_factory();

  TrainerConfig config = spec.default_config;
  config.epochs = 6;
  config.iterations_per_epoch = 15;

  AlgorithmFactory algorithm_factory = [&](size_t n) {
    AlgorithmConfig algo_config;
    algo_config.n = n;
    algo_config.k = n / 100;
    algo_config.num_workers = num_workers;
    auto created = CreateAlgorithm(algo, algo_config);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(*created);
  };

  std::printf("training %s with %s on %d simulated workers...\n",
              spec.name.c_str(), algo.c_str(), num_workers);
  Cluster cluster(num_workers, CostModel::Ethernet());
  const TrainResult result = TrainDistributed(
      cluster, *dataset, spec.model_factory, algorithm_factory, config);

  for (const EpochRecord& epoch : result.epochs) {
    std::printf(
        "epoch %d | train loss %.4f | test accuracy %5.1f%% | sim time "
        "%.3f s (comm %.3f s)\n",
        epoch.epoch + 1, epoch.train_loss, 100.0 * epoch.test_metric,
        epoch.sim_seconds_cumulative, epoch.comm_seconds_epoch);
  }
  std::printf("replicas consistent: %s\n",
              result.replicas_consistent ? "yes" : "NO");
  return result.replicas_consistent ? 0 : 1;
}
