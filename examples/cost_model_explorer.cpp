// Explore the analytical alpha-beta cost model of Table I without running
// anything: prints predicted communication seconds per method over a range
// of worker counts and network settings, so users can pick a method (and a
// team count) for their own cluster before deploying.
//
//   $ ./build/examples/cost_model_explorer [n] [k_ratio]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"
#include "metrics/table.h"
#include "simnet/cost_model.h"

namespace spardl {
namespace {

int CeilLog2(int x) {
  int l = 0;
  while ((1 << l) < x) ++l;
  return l;
}

// Predicted comm seconds from the Table-I closed forms (upper bounds where
// the paper gives ranges).
double Predict(const std::string& algo, int p, double k,
               const CostModel& cm, int d = 1) {
  const double a = cm.alpha;
  const double b = cm.beta;
  const double log_p = CeilLog2(p);
  const double pd = p;
  if (algo == "TopkA") return log_p * a + 2 * (pd - 1) * k * b;
  if (algo == "TopkDSA") return (pd + 2 * log_p) * a + 4 * (pd - 1) / pd * k * b;
  if (algo == "gTopk") return 2 * log_p * a + 4 * log_p * k * b;
  if (algo == "Ok-Topk") {
    return 2 * (pd + log_p) * a + 6 * (pd - 1) / pd * k * b;
  }
  if (algo == "SparDL") return 2 * log_p * a + 4 * (pd - 1) / pd * k * b;
  if (algo == "SparDL(R-SAG)") {
    const double dd = d;
    const double log_d = CeilLog2(d);
    return (2 * CeilLog2(p / d) + log_d) * a +
           2 * ((2 * pd - 2 * dd) / pd + dd / pd * log_d) * k * b;
  }
  if (algo == "SparDL(B-SAG)") {
    const double dd = d;
    return (2 * CeilLog2(p / d) + CeilLog2(d)) * a +
           2 * (dd * dd + 2 * pd - 3 * dd) / pd * k * b;
  }
  return 0.0;
}

void Explore(const std::string& net_name, const CostModel& cm, size_t n,
             double k_ratio) {
  const double k = k_ratio * static_cast<double>(n);
  std::printf("--- %s (alpha=%.1f us, beta=%.3f ns/word), n=%zu, k/n=%g ---\n",
              net_name.c_str(), cm.alpha * 1e6, cm.beta * 1e9, n, k_ratio);
  TablePrinter table({"P", "TopkA", "TopkDSA", "gTopk", "Ok-Topk", "SparDL",
                      "SparDL(B-SAG d~sqrtP)"});
  for (int p : {4, 8, 16, 32, 64, 128}) {
    int d = 1;
    while (d * d < p) ++d;  // d ~ sqrt(P); clamp to a divisor-ish value
    table.AddRow(
        {StrFormat("%d", p),
         StrFormat("%.2f ms", Predict("TopkA", p, k, cm) * 1e3),
         StrFormat("%.2f ms", Predict("TopkDSA", p, k, cm) * 1e3),
         StrFormat("%.2f ms", Predict("gTopk", p, k, cm) * 1e3),
         StrFormat("%.2f ms", Predict("Ok-Topk", p, k, cm) * 1e3),
         StrFormat("%.2f ms", Predict("SparDL", p, k, cm) * 1e3),
         StrFormat("%.2f ms",
                   Predict("SparDL(B-SAG)", p, k, cm, d) * 1e3)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace spardl

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const size_t n =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 20'100'000;
  const double k_ratio = argc > 2 ? std::atof(argv[2]) : 0.01;
  std::printf("Table-I cost model explorer\n\n");
  Explore("1 Gbps Ethernet", CostModel::Ethernet(), n, k_ratio);
  Explore("100 Gbps InfiniBand RDMA", CostModel::InfiniBandRdma(), n,
          k_ratio);
  std::printf(
      "Reading: on high-latency networks SparDL(B-SAG) gains most (it "
      "trades bandwidth for fewer rounds); on RDMA the latency terms are "
      "small and plain SparDL's bandwidth optimality dominates.\n");
  return 0;
}
