// Regression for the historical tune_teams bug: the tuner ignored
// --topology / SPARDL_BENCH_TOPOLOGY and always swept d on the flat
// closed-form fabric, so its "optimal d" was wrong for exactly the
// clusters where d matters. `TuneTeamPlacement` (the engine behind
// examples/tune_teams) now grids over the *given* TopologySpec — proven
// here by the oversubscribed `fattree:2x6` picking a different optimal d
// than flat for the same workload.

#include <gtest/gtest.h>

#include <string>

#include "bench_util.h"
#include "topo/placement.h"
#include "topo/topology_spec.h"

namespace spardl {
namespace {

// Laptop-sized paper-shaped workload: the profile only sets the gradient
// length and the (zero) compute constant, so epoch time is pure comm.
const ModelProfile kProfile = {"-", "synthetic", "-", 2'000'000, 0.0};

bench::TeamTuneResult Tune(const TopologySpec& fabric,
                           const bench::TeamTuneOptions& options) {
  return bench::TuneTeamPlacement(kProfile, fabric, options);
}

bench::TeamTuneOptions FastOptions() {
  bench::TeamTuneOptions options;
  options.measured_iterations = 1;
  // The d-vs-d comparison is the point here; one layout keeps it quick.
  options.policies = {PlacementPolicy::kContiguous};
  return options;
}

TEST(TuneTeamsTest, GridCoversEveryDivisorOfP) {
  const bench::TeamTuneResult result =
      Tune(TopologySpec::Flat(12), FastOptions());
  // Flat has one locality group, so the grid is one row per divisor.
  ASSERT_EQ(result.candidates.size(), 6u);  // d in {1, 2, 3, 4, 6, 12}
  int previous = 0;
  for (const bench::TeamTuneCandidate& c : result.candidates) {
    EXPECT_GT(c.num_teams, previous);
    EXPECT_EQ(12 % c.num_teams, 0);
    EXPECT_EQ(c.placement, PlacementPolicy::kContiguous);
    EXPECT_GT(c.epoch_seconds, 0.0);
    previous = c.num_teams;
  }
  EXPECT_LT(result.best_index, result.candidates.size());
}

// The bugfix acceptance: tuning on fattree:2x6 must be able to pick a
// different d than flat. With the old flat-only tuner both sides of this
// comparison were the same sweep and the EXPECT_NE below could never hold.
TEST(TuneTeamsTest, FatTreeTunesDifferentTeamCountThanFlat) {
  const bench::TeamTuneOptions options = FastOptions();
  const bench::TeamTuneResult flat =
      Tune(TopologySpec::Flat(8), options);
  // The event engine makes the contended fat-tree times bit-identical
  // across runs, so the argmin cannot flip on thread scheduling.
  TopologySpec tree =
      TopologySpec::FatTree(8, /*rack_size=*/2, /*oversub=*/6.0);
  tree.engine = ChargeEngine::kEventOrdered;
  const bench::TeamTuneResult fat_tree = Tune(tree, options);
  ASSERT_FALSE(flat.candidates.empty());
  ASSERT_FALSE(fat_tree.candidates.empty());
  EXPECT_NE(flat.best().num_teams, fat_tree.best().num_teams)
      << "flat picked d=" << flat.best().num_teams << " ("
      << flat.best().epoch_seconds << " s), fattree:2x6 picked d="
      << fat_tree.best().num_teams << " ("
      << fat_tree.best().epoch_seconds
      << " s) — the tuner is ignoring the fabric again";

  // And the fabric genuinely changed the numbers, not just the argmin:
  // every candidate is strictly slower on the oversubscribed tree.
  for (size_t i = 0; i < flat.candidates.size(); ++i) {
    EXPECT_GT(fat_tree.candidates[i].epoch_seconds,
              flat.candidates[i].epoch_seconds)
        << "d=" << flat.candidates[i].num_teams;
  }
}

// On a multi-rack fabric the grid carries one row per placement policy for
// every d > 1 (d = 1 has no teams to lay out).
TEST(TuneTeamsTest, MultiRackGridIncludesPlacementAxis) {
  bench::TeamTuneOptions options;
  options.measured_iterations = 1;
  const bench::TeamTuneResult result =
      Tune(TopologySpec::FatTree(8, /*rack_size=*/2, /*oversub=*/4.0),
           options);
  // d=1: one row; d in {2, 4, 8}: three rows each.
  ASSERT_EQ(result.candidates.size(), 10u);
  EXPECT_EQ(result.candidates[0].num_teams, 1);
  EXPECT_EQ(result.candidates[0].placement, PlacementPolicy::kContiguous);
  for (size_t i = 1; i < result.candidates.size(); i += 3) {
    EXPECT_EQ(result.candidates[i].placement,
              PlacementPolicy::kContiguous);
    EXPECT_EQ(result.candidates[i + 1].placement,
              PlacementPolicy::kRackLocal);
    EXPECT_EQ(result.candidates[i + 2].placement,
              PlacementPolicy::kInterleaved);
  }
}

}  // namespace
}  // namespace spardl
