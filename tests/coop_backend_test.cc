// Cooperative (fiber) execution backend: the scheduler must be a drop-in
// replacement for thread-per-worker — bit-identical simulated results at
// P >= 1024 on a contended event-engine fabric, exact equality with the
// thread backend on the same workload, protocol diagnosis intact, and a
// bounded deadlock diagnosis (the scheduler aborts with a waiter dump the
// moment no fiber can run and no event can be pumped, instead of hanging
// on parked threads).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/logging.h"
#include "dl/grad_profile.h"
#include "simnet/cluster.h"
#include "sparse/sparse_vector.h"
#include "topo/topology_spec.h"

// TSan has no ucontext support, so the cluster compiles the fiber branch
// out and always runs threads there (mirrors SPARDL_TSAN in cluster.cc).
#if defined(__SANITIZE_THREAD__)
#define SPARDL_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPARDL_TEST_TSAN 1
#endif
#endif

namespace spardl {
namespace {

bool FiberBackendAvailable() {
#ifdef SPARDL_TEST_TSAN
  return false;
#else
  return true;
#endif
}

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

uint64_t HashSparse(uint64_t h, const SparseVector& v) {
  for (size_t i = 0; i < v.size(); ++i) {
    h = HashCombine(h, v.index(i));
    uint32_t bits;
    const float value = v.value(i);
    std::memcpy(&bits, &value, sizeof(bits));
    h = HashCombine(h, bits);
  }
  return h;
}

struct RunOutcome {
  /// Worker 0's per-iteration reduced gradients (the synchronous methods
  /// replicate them, so one worker pins the math for all).
  std::vector<SparseVector> outputs;
  /// Every worker's final simulated clock (pins the timing model).
  std::vector<double> clocks;
  /// Hash over *all* workers' outputs — catches a replica diverging on a
  /// worker other than 0.
  uint64_t all_workers_hash = 0;
};

/// One measured run of a log-round method on an oversubscribed fat-tree
/// (racks of 8, oversub 4.0, 2 ECMP cores — the repo's standard contended
/// fabric) under the chosen backend and engine.
RunOutcome ContendedRun(ExecBackend backend, ChargeEngine engine,
                        const std::string& algo, int p, size_t n, size_t k,
                        int iterations) {
  TopologySpec spec = TopologySpec::FatTree(p, /*rack_size=*/8,
                                            /*oversubscription=*/4.0,
                                            CostModel::Ethernet(),
                                            /*num_cores=*/2);
  spec.engine = engine;
  Cluster cluster(spec);
  cluster.set_exec_backend(backend);

  AlgorithmConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = p;
  config.residual_mode = ResidualMode::kNone;
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] = std::move(*CreateAlgorithm(algo, config));
  }

  const ProfileGradientGenerator generator(n, /*seed=*/11);
  RunOutcome outcome;
  std::vector<std::vector<SparseVector>> per_worker(
      static_cast<size_t>(p));
  for (int iter = 0; iter < iterations; ++iter) {
    const Status status = cluster.Run([&](Comm& comm) {
      const SparseVector candidates =
          generator.Generate(comm.rank(), iter, k + k / 2);
      per_worker[static_cast<size_t>(comm.rank())].push_back(
          algos[static_cast<size_t>(comm.rank())]->RunOnSparse(comm,
                                                               candidates));
      comm.BarrierSyncClocks();
    });
    SPARDL_CHECK_OK(status);
  }
  outcome.outputs = std::move(per_worker[0]);
  uint64_t h = 0;
  for (int r = 0; r < p; ++r) {
    outcome.clocks.push_back(cluster.comm(r).sim_now());
    for (const SparseVector& v : per_worker[static_cast<size_t>(r)]) {
      h = HashSparse(h, v);
    }
  }
  outcome.all_workers_hash = h;
  return outcome;
}

// The scale criterion: five fresh fiber-backend runs of a contended
// event-engine workload at P = 1024 must agree bit for bit (outputs and
// clocks). One OS thread is carrying 1024 workers here — any
// scheduler-order leak into the simulation would show up as a hash or
// clock mismatch.
TEST(CoopBackendTest, BitIdenticalAcrossRunsAtP1024) {
  if (!FiberBackendAvailable()) {
    GTEST_SKIP() << "fiber backend compiled out under TSan";
  }
  constexpr int kWorkers = 1024;
  constexpr size_t kN = 100'000;
  constexpr size_t kK = 100;
  RunOutcome first;
  for (int run = 0; run < 5; ++run) {
    RunOutcome outcome =
        ContendedRun(ExecBackend::kFiber, ChargeEngine::kEventOrdered,
                     "gtopk", kWorkers, kN, kK, /*iterations=*/1);
    ASSERT_EQ(outcome.outputs.size(), 1u);
    EXPECT_GT(outcome.outputs[0].size(), 0u);
    if (run == 0) {
      first = std::move(outcome);
      continue;
    }
    EXPECT_EQ(outcome.all_workers_hash, first.all_workers_hash)
        << "run " << run;
    ASSERT_EQ(outcome.clocks.size(), first.clocks.size());
    for (int r = 0; r < kWorkers; ++r) {
      ASSERT_EQ(outcome.clocks[static_cast<size_t>(r)],
                first.clocks[static_cast<size_t>(r)])
          << "worker " << r << " clock diverged on run " << run;
    }
  }
}

/// Thread-vs-fiber equivalence on both charging engines: same workload,
/// same fabric, exact equality of every worker's reduced gradients. The
/// *clocks* are additionally compared on the event engine only — the
/// busy-until engine reserves contended link windows in execution order,
/// which real threads scramble run-to-run (measured: the thread
/// backend's own busy-engine makespan varies across invocations), so
/// only the event-ordered engine pins timing across backends.
class BackendEquivalenceTest
    : public ::testing::TestWithParam<ChargeEngine> {};

TEST_P(BackendEquivalenceTest, FiberMatchesThreadExactly) {
  constexpr int kWorkers = 16;
  constexpr size_t kN = 20'000;
  constexpr size_t kK = 200;
  const RunOutcome threads =
      ContendedRun(ExecBackend::kThread, GetParam(), "spardl", kWorkers,
                   kN, kK, /*iterations=*/2);
  const RunOutcome fibers =
      ContendedRun(ExecBackend::kFiber, GetParam(), "spardl", kWorkers,
                   kN, kK, /*iterations=*/2);
  EXPECT_EQ(fibers.all_workers_hash, threads.all_workers_hash);
  ASSERT_EQ(fibers.outputs.size(), threads.outputs.size());
  for (size_t i = 0; i < fibers.outputs.size(); ++i) {
    EXPECT_EQ(fibers.outputs[i], threads.outputs[i]) << "iteration " << i;
  }
  if (GetParam() == ChargeEngine::kEventOrdered) {
    ASSERT_EQ(fibers.clocks.size(), threads.clocks.size());
    for (int r = 0; r < kWorkers; ++r) {
      EXPECT_EQ(fibers.clocks[static_cast<size_t>(r)],
                threads.clocks[static_cast<size_t>(r)])
          << "worker " << r;
    }
  }
}

// Where the thread backend's busy-until timing wobbles with the OS
// schedule, the cooperative backend's rank-ordered schedule makes even
// the busy engine's contended clocks reproducible run-to-run.
TEST(CoopBackendTest, BusyEngineClocksReproducibleOnFibers) {
  if (!FiberBackendAvailable()) {
    GTEST_SKIP() << "fiber backend compiled out under TSan";
  }
  const RunOutcome first =
      ContendedRun(ExecBackend::kFiber, ChargeEngine::kBusyUntil, "spardl",
                   /*p=*/16, /*n=*/20'000, /*k=*/200, /*iterations=*/2);
  const RunOutcome second =
      ContendedRun(ExecBackend::kFiber, ChargeEngine::kBusyUntil, "spardl",
                   /*p=*/16, /*n=*/20'000, /*k=*/200, /*iterations=*/2);
  EXPECT_EQ(first.all_workers_hash, second.all_workers_hash);
  ASSERT_EQ(first.clocks.size(), second.clocks.size());
  for (size_t r = 0; r < first.clocks.size(); ++r) {
    EXPECT_EQ(first.clocks[r], second.clocks[r]) << "worker " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, BackendEquivalenceTest,
                         ::testing::Values(ChargeEngine::kBusyUntil,
                                           ChargeEngine::kEventOrdered),
                         [](const auto& param_info) {
                           return param_info.param == ChargeEngine::kEventOrdered
                                      ? "Event"
                                      : "Busy";
                         });

/// The protocol verifier's negative path must diagnose divergence on both
/// backends (the fiber path funnels the violation out of the scheduler
/// loop, not out of a dying thread).
class BackendProtocolTest : public ::testing::TestWithParam<ExecBackend> {};

TEST_P(BackendProtocolTest, TagMismatchIsDiagnosed) {
  Cluster cluster(TopologySpec::Flat(2, CostModel{1e-3, 1e-6}));
  cluster.set_exec_backend(GetParam());
  cluster.EnableProtocolCheck();
  cluster.network().set_recv_timeout_seconds(20.0);
  const Status status = cluster.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(std::vector<float>{1.0f}), /*tag=*/7);
      (void)comm.Recv(1, /*tag=*/7);
    } else {
      comm.Send(0, Payload(std::vector<float>{1.0f}), /*tag=*/7);
      (void)comm.Recv(0, /*tag=*/9);  // bug under test: expects tag 9
    }
    comm.BarrierSyncClocks();
  });
  ASSERT_FALSE(status.ok());
  const std::string message = status.ToString();
  EXPECT_NE(message.find("tag"), std::string::npos) << message;
  EXPECT_NE(message.find("op trace"), std::string::npos) << message;
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendProtocolTest,
                         ::testing::Values(ExecBackend::kThread,
                                           ExecBackend::kFiber),
                         [](const auto& param_info) {
                           return param_info.param == ExecBackend::kFiber
                                      ? "fiber"
                                      : "thread";
                         });

// Without the verifier, a collective deadlock on the fiber backend must
// die *immediately* with the scheduler's waiter dump — every fiber
// suspended, nothing pumpable — rather than waiting out a watchdog on
// parked threads.
TEST(CoopBackendDeathTest, DeadlockDiagnosedWithWaiterDump) {
  if (!FiberBackendAvailable()) {
    GTEST_SKIP() << "fiber backend compiled out under TSan";
  }
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto spec = TopologySpec::Parse("fattree:2x2+event", 2);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DEATH(
      {
        Cluster cluster(*spec);
        cluster.set_exec_backend(ExecBackend::kFiber);
        (void)cluster.Run([](Comm& comm) {
          // Both workers receive, nobody sends.
          (void)comm.Recv(1 - comm.rank(), /*tag=*/0);
        });
      },
      "collective deadlock");
}

// The busy-until engine's cross-mailbox wait has its own cooperative
// branch; it must reach the same diagnosis.
TEST(CoopBackendDeathTest, DeadlockDiagnosedOnBusyEngine) {
  if (!FiberBackendAvailable()) {
    GTEST_SKIP() << "fiber backend compiled out under TSan";
  }
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Cluster cluster(TopologySpec::Flat(2, CostModel{1e-3, 1e-6}));
        cluster.set_exec_backend(ExecBackend::kFiber);
        (void)cluster.Run([](Comm& comm) {
          (void)comm.Recv(1 - comm.rank(), /*tag=*/0);
        });
      },
      "collective deadlock");
}

}  // namespace
}  // namespace spardl
