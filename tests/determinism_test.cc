// Bit-reproducibility: two runs of the same configuration on fresh
// clusters must produce byte-identical global gradients for every method.
// This is what makes the repo's experiments and regressions trustworthy.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "test_util.h"

namespace spardl {
namespace {

std::vector<SparseVector> OneRun(const std::string& name, int p, size_t n,
                                 size_t k, int iterations) {
  AlgorithmConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = p;
  if (name == "spardl") config.num_teams = 2;
  std::vector<std::vector<SparseVector>> outputs;
  testing::RunAlgorithm(
      p, n, iterations,
      [&](int) { return std::move(*CreateAlgorithm(name, config)); },
      nullptr, &outputs, /*seed_base=*/777);
  std::vector<SparseVector> flattened;
  for (const auto& iter_outputs : outputs) {
    flattened.push_back(iter_outputs[0]);
  }
  return flattened;
}

class DeterminismSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismSweep, IdenticalAcrossRuns) {
  const std::string name = GetParam();
  const int p = 4;
  const size_t n = 400;
  const size_t k = 40;
  const auto first = OneRun(name, p, n, k, 3);
  const auto second = OneRun(name, p, n, k, 3);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << name << " iter " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, DeterminismSweep,
                         ::testing::Values("spardl", "topka", "topkdsa",
                                           "gtopk", "oktopk", "dense"));

}  // namespace
}  // namespace spardl
