// Bit-reproducibility: two runs of the same configuration on fresh
// clusters must produce byte-identical global gradients for every method.
// This is what makes the repo's experiments and regressions trustworthy.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "dl/grad_profile.h"
#include "obs/exporters.h"
#include "test_util.h"
#include "topo/topology_spec.h"

namespace spardl {
namespace {

std::vector<SparseVector> OneRun(const std::string& name, int p, size_t n,
                                 size_t k, int iterations) {
  AlgorithmConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = p;
  if (name == "spardl") config.num_teams = 2;
  std::vector<std::vector<SparseVector>> outputs;
  testing::RunAlgorithm(
      p, n, iterations,
      [&](int) { return std::move(*CreateAlgorithm(name, config)); },
      nullptr, &outputs, /*seed_base=*/777);
  std::vector<SparseVector> flattened;
  for (const auto& iter_outputs : outputs) {
    flattened.push_back(iter_outputs[0]);
  }
  return flattened;
}

class DeterminismSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismSweep, IdenticalAcrossRuns) {
  const std::string name = GetParam();
  const int p = 4;
  const size_t n = 400;
  const size_t k = 40;
  const auto first = OneRun(name, p, n, k, 3);
  const auto second = OneRun(name, p, n, k, 3);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << name << " iter " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, DeterminismSweep,
                         ::testing::Values("spardl", "topka", "topkdsa",
                                           "gtopk", "oktopk", "dense"));

// One traced SparDL run on a contended oversubscribed fat-tree under the
// event-ordered engine, exported as Chrome trace JSON.
std::string OneTracedRun() {
  const int p = 8;
  auto spec = TopologySpec::Parse("fattree:4x8x2+event", p);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  Cluster cluster(*spec);
  cluster.EnableTracing();

  AlgorithmConfig config;
  config.n = 1 << 12;
  config.k = config.n / 50;
  config.num_workers = p;
  config.num_teams = 2;
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] = std::move(*CreateAlgorithm("spardl", config));
  }
  const ProfileGradientGenerator generator(config.n, /*seed=*/99);
  for (int iter = 0; iter < 2; ++iter) {
    cluster.Run([&](Comm& comm) {
      algos[static_cast<size_t>(comm.rank())]->RunOnSparse(
          comm, generator.Generate(comm.rank(), iter, config.k * 3 / 2));
      comm.BarrierSyncClocks();
    });
  }
  return ChromeTraceJson(cluster);
}

// The observability acceptance bar: the exported trace — including the
// contended per-link occupancy spans — is byte-identical across runs on
// the event-ordered engine, regardless of thread scheduling.
TEST(TraceDeterminism, ChromeTraceByteIdenticalAcrossRuns) {
  const std::string first = OneTracedRun();
  const std::string second = OneTracedRun();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace spardl
