// Table-I invariants checked programmatically: each method's measured
// per-worker latency (message rounds) and bandwidth (received words) on the
// simulated cluster must satisfy the paper's closed forms / bounds.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/registry.h"
#include "dl/grad_profile.h"
#include "simnet/cluster.h"

namespace spardl {
namespace {

int CeilLog2(int x) {
  int l = 0;
  while ((1 << l) < x) ++l;
  return l;
}

struct Measured {
  uint64_t max_messages = 0;
  uint64_t max_words = 0;
};

Measured Measure(const std::string& algo, int p, size_t n, size_t k,
                 int num_teams = 1, int iterations = 2) {
  AlgorithmConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = p;
  config.num_teams = num_teams;
  config.residual_mode = ResidualMode::kNone;

  Cluster cluster(p, CostModel::Ethernet());
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] = std::move(*CreateAlgorithm(algo, config));
  }
  const ProfileGradientGenerator generator(n, 4242);
  for (int iter = 0; iter < iterations; ++iter) {
    if (iter == iterations - 1) cluster.ResetClocksAndStats();
    cluster.Run([&](Comm& comm) {
      const SparseVector candidates =
          generator.Generate(comm.rank(), iter, 2 * k);
      algos[static_cast<size_t>(comm.rank())]->RunOnSparse(comm, candidates);
    });
  }
  return {cluster.MaxMessagesReceived(), cluster.MaxWordsReceived()};
}

constexpr size_t kN = 500'000;
constexpr size_t kK = 5'000;

class CostSweep : public ::testing::TestWithParam<int> {};

TEST_P(CostSweep, SparDLMatchesTableOneExactly) {
  const int p = GetParam();
  const Measured m = Measure("spardl", p, kN, kK);
  EXPECT_EQ(m.max_messages, static_cast<uint64_t>(2 * CeilLog2(p)));
  // 4 (P-1)/P k words, ceil-rounded per block: allow the rounding slack.
  const uint64_t bound =
      4 * ((kK + p - 1) / p) * static_cast<uint64_t>(p - 1);
  EXPECT_LE(m.max_words, bound);
  EXPECT_GE(m.max_words, bound * 8 / 10);
}

TEST_P(CostSweep, TopkAMatchesTableOneExactly) {
  const int p = GetParam();
  const Measured m = Measure("topka", p, kN, kK);
  EXPECT_EQ(m.max_messages, static_cast<uint64_t>(CeilLog2(p)));
  EXPECT_EQ(m.max_words, static_cast<uint64_t>(2 * kK * (p - 1)));
}

TEST_P(CostSweep, TopkDsaWithinTableOneRange) {
  const int p = GetParam();
  if (p == 1) return;
  const Measured m = Measure("topkdsa", p, kN, kK);
  // P-1 direct receives + ceil(log2 P) all-gather receives.
  EXPECT_EQ(m.max_messages,
            static_cast<uint64_t>(p - 1 + CeilLog2(p)));
  // Upper bound: (P-1)/P (2k + n) words (dense switch).
  const double upper =
      static_cast<double>(p - 1) / p * (2.0 * kK + kN) + 2.0 * kK;
  EXPECT_LE(static_cast<double>(m.max_words), upper);
}

TEST_P(CostSweep, OkTopkWithinTableOneRange) {
  const int p = GetParam();
  if (p == 1) return;
  const Measured m = Measure("oktopk", p, kN, kK);
  // Direct sends + counts all-gather + data all-gather.
  EXPECT_LE(m.max_messages,
            static_cast<uint64_t>(2 * (p + CeilLog2(p))));
  EXPECT_GE(m.max_messages, static_cast<uint64_t>(p - 1));
  // Bandwidth upper bound 6 (P-1)/P k beta; threshold pruning may onesided
  // overshoot, so allow 25% slack plus the counts words.
  const double upper = 6.0 * (p - 1) / p * kK * 1.25 + 2.0 * p;
  EXPECT_LE(static_cast<double>(m.max_words), upper);
}

TEST_P(CostSweep, RSagLatencyFormula) {
  const int p = GetParam();
  for (int d : {2, 4}) {
    if (p % d != 0) continue;
    const Measured m = Measure("spardl-rsag", p, kN, kK, d);
    EXPECT_EQ(m.max_messages,
              static_cast<uint64_t>(2 * CeilLog2(p / d) + CeilLog2(d)))
        << "P=" << p << " d=" << d;
  }
}

TEST_P(CostSweep, BSagLatencyAndBandwidthBounds) {
  const int p = GetParam();
  for (int d : {2, 7}) {
    if (p % d != 0 || d >= p) continue;
    const Measured m = Measure("spardl-bsag", p, kN, kK, d);
    EXPECT_EQ(m.max_messages,
              static_cast<uint64_t>(2 * CeilLog2(p / d) + CeilLog2(d)))
        << "P=" << p << " d=" << d;
    // Upper bound 2 (d^2 + 2P - 3d)/P k, with per-block ceil slack.
    const double upper =
        2.0 * (static_cast<double>(d) * d + 2.0 * p - 3.0 * d) / p *
            static_cast<double>(kK) +
        4.0 * p;
    EXPECT_LE(static_cast<double>(m.max_words), upper)
        << "P=" << p << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, CostSweep,
                         ::testing::Values(4, 8, 14, 16));

TEST(CostInvariantsTest, GTopkWithinBound) {
  for (int p : {4, 8, 16}) {
    const Measured m = Measure("gtopk", p, kN, kK);
    // No worker receives more than 2 log2 P messages or 4 log2 P k words.
    EXPECT_LE(m.max_messages, static_cast<uint64_t>(2 * CeilLog2(p)));
    EXPECT_LE(m.max_words, static_cast<uint64_t>(4 * CeilLog2(p) * kK));
  }
}

TEST(CostInvariantsTest, SparDLCheaperThanTopkAForLargeP) {
  // The headline: SparDL's bandwidth is ~constant in P, TopkA's grows
  // linearly, so the gap widens with the cluster (paper Fig. 12 logic).
  const Measured spardl_small = Measure("spardl", 4, kN, kK);
  const Measured spardl_large = Measure("spardl", 16, kN, kK);
  const Measured topka_large = Measure("topka", 16, kN, kK);
  EXPECT_LT(static_cast<double>(spardl_large.max_words),
            1.5 * static_cast<double>(spardl_small.max_words));
  EXPECT_GT(topka_large.max_words, 5 * spardl_large.max_words);
}

}  // namespace
}  // namespace spardl
