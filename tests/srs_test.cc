#include "core/spar_reduce_scatter.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "sparse/topk.h"
#include "test_util.h"

namespace spardl {
namespace {

using ::spardl::testing::RandomGradient;
using ::spardl::testing::ReferenceSum;
using ::spardl::testing::RunOnCluster;

struct SrsRun {
  std::vector<SparseVector> blocks;       // per rank
  std::vector<double> residual_mass;      // per rank
};

SrsRun RunSrs(int p, size_t n, size_t k, bool lazy,
              ResidualMode mode = ResidualMode::kGlobal,
              uint64_t seed = 42) {
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    grads.push_back(RandomGradient(n, seed + static_cast<uint64_t>(r)));
  }
  SrsRun run;
  run.blocks.resize(static_cast<size_t>(p));
  run.residual_mass.resize(static_cast<size_t>(p));
  Cluster cluster(p, CostModel::Free());
  cluster.Run([&](Comm& comm) {
    const auto rank = static_cast<size_t>(comm.rank());
    ResidualStore residuals(n, mode);
    SrsOptions options;
    options.k = k;
    options.lazy_sparsify = lazy;
    run.blocks[rank] = SparReduceScatter(
        comm, CommGroup::World(comm), grads[rank], options, &residuals);
    residuals.FinishIteration(run.blocks[rank]);
    run.residual_mass[rank] = residuals.MassSum();
  });
  return run;
}

class SrsSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SrsSweep, BlocksLandInOwnRangeWithinBudget) {
  const auto [p, lazy] = GetParam();
  const size_t n = 640;
  const size_t k = 64;
  const BlockPartition partition(n, p);
  const size_t budget = partition.PerBlockBudget(k);
  SrsRun run = RunSrs(p, n, k, lazy);
  for (int r = 0; r < p; ++r) {
    const SparseVector& block = run.blocks[static_cast<size_t>(r)];
    EXPECT_LE(block.size(), budget);
    EXPECT_TRUE(block.IndicesWithin(partition.BlockStart(r),
                                    partition.BlockEnd(r)))
        << "P=" << p << " rank=" << r;
  }
}

// Mass conservation with GRES: sum of inputs == sum of final blocks + sum
// of all residuals. This is the load-bearing invariant of global residual
// collection — nothing a worker contributed ever vanishes.
TEST_P(SrsSweep, GlobalResidualsConserveMass) {
  const auto [p, lazy] = GetParam();
  const size_t n = 640;
  const size_t k = 48;
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    grads.push_back(RandomGradient(n, 7 + static_cast<uint64_t>(r)));
  }
  double input_mass = 0.0;
  for (const auto& g : grads) {
    for (float v : g) input_mass += v;
  }
  SrsRun run = RunSrs(p, n, k, lazy, ResidualMode::kGlobal, 7);
  double output_mass = 0.0;
  for (const auto& block : run.blocks) output_mass += block.ValueSum();
  for (double m : run.residual_mass) output_mass += m;
  EXPECT_NEAR(output_mass, input_mass, 1e-2)
      << "P=" << p << " lazy=" << lazy;
}

// k = n makes every per-block budget equal to the block width, so nothing
// is ever discarded and SRS must equal the exact dense reduce-scatter.
TEST_P(SrsSweep, ExactWhenKEqualsN) {
  const auto [p, lazy] = GetParam();
  const size_t n = 320;
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    grads.push_back(RandomGradient(n, 19 + static_cast<uint64_t>(r)));
  }
  const std::vector<float> expected = ReferenceSum(grads);
  SrsRun run = RunSrs(p, n, /*k=*/n, lazy, ResidualMode::kGlobal, 19);
  const BlockPartition partition(n, p);
  for (int r = 0; r < p; ++r) {
    std::vector<float> dense(n, 0.0f);
    run.blocks[static_cast<size_t>(r)].ScatterToDense(dense);
    for (GradIndex i = partition.BlockStart(r); i < partition.BlockEnd(r);
         ++i) {
      EXPECT_NEAR(dense[i], expected[i], 1e-4f)
          << "P=" << p << " rank=" << r << " i=" << i;
    }
    EXPECT_NEAR(run.residual_mass[static_cast<size_t>(r)], 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndModes, SrsSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 14),
                       ::testing::Bool()));

TEST(SrsTest, LatencyIsCeilLog2Rounds) {
  for (int p : {2, 3, 6, 8, 14}) {
    Cluster cluster(p, CostModel::Ethernet());
    std::vector<std::vector<float>> grads;
    for (int r = 0; r < p; ++r) {
      grads.push_back(RandomGradient(512, static_cast<uint64_t>(r)));
    }
    cluster.Run([&](Comm& comm) {
      SrsOptions options;
      options.k = 64;
      SparReduceScatter(comm, CommGroup::World(comm),
                        grads[static_cast<size_t>(comm.rank())], options,
                        nullptr);
    });
    EXPECT_EQ(cluster.MaxMessagesReceived(),
              static_cast<uint64_t>(SrsBagLayout::NumSteps(p)))
        << "P=" << p;
  }
}

// Each worker sends P-1 blocks of <= 2*budget words: the Table-I SRS
// bandwidth term 2k(P-1)/P.
TEST(SrsTest, BandwidthMatchesTableOne) {
  const int p = 8;
  const size_t n = 4096;
  const size_t k = 512;  // budget = 64 per block
  Cluster cluster(p, CostModel::Ethernet());
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    grads.push_back(RandomGradient(n, 100 + static_cast<uint64_t>(r)));
  }
  cluster.Run([&](Comm& comm) {
    SrsOptions options;
    options.k = k;
    SparReduceScatter(comm, CommGroup::World(comm),
                      grads[static_cast<size_t>(comm.rank())], options,
                      nullptr);
  });
  const uint64_t bound = 2 * (k / p) * (p - 1);  // words
  for (int r = 0; r < p; ++r) {
    EXPECT_LE(cluster.comm(r).stats().words_received, bound);
    // Dense random gradients fill every block, so the bound is tight.
    EXPECT_GE(cluster.comm(r).stats().words_received, bound * 9 / 10);
  }
}

TEST(SrsTest, SparseEntryPointMatchesDense) {
  const int p = 6;
  const size_t n = 600;
  const size_t k = 60;
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    grads.push_back(RandomGradient(n, 55 + static_cast<uint64_t>(r)));
  }
  auto dense_run = RunOnCluster<SparseVector>(p, [&](Comm& comm) {
    SrsOptions options;
    options.k = k;
    return SparReduceScatter(comm, CommGroup::World(comm),
                             grads[static_cast<size_t>(comm.rank())],
                             options, nullptr);
  });
  auto sparse_run = RunOnCluster<SparseVector>(p, [&](Comm& comm) {
    SrsOptions options;
    options.k = k;
    const SparseVector candidates = SparseVector::FromDense(
        grads[static_cast<size_t>(comm.rank())]);
    return SparReduceScatterOnSparse(comm, CommGroup::World(comm),
                                     candidates, n, options, nullptr);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(dense_run[static_cast<size_t>(r)],
              sparse_run[static_cast<size_t>(r)])
        << "rank " << r;
  }
}

// The lazy "Optimization for SRS" must not change message sizes (wire
// volume), only the number of top-k passes.
TEST(SrsTest, LazyAndEagerShipSameVolume) {
  const int p = 7;
  const size_t n = 700;
  const size_t k = 70;
  uint64_t words[2];
  for (bool lazy : {false, true}) {
    Cluster cluster(p, CostModel::Ethernet());
    std::vector<std::vector<float>> grads;
    for (int r = 0; r < p; ++r) {
      grads.push_back(RandomGradient(n, 21 + static_cast<uint64_t>(r)));
    }
    cluster.Run([&](Comm& comm) {
      SrsOptions options;
      options.k = k;
      options.lazy_sparsify = lazy;
      SparReduceScatter(comm, CommGroup::World(comm),
                        grads[static_cast<size_t>(comm.rank())], options,
                        nullptr);
    });
    words[lazy ? 1 : 0] = cluster.TotalStats().words_received;
  }
  EXPECT_EQ(words[0], words[1]);
}

}  // namespace
}  // namespace spardl
