#include "dl/trainer.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/registry.h"
#include "dl/cases.h"
#include "dl/sgd.h"

namespace spardl {
namespace {

AlgorithmFactory SparseFactory(const std::string& name, int p,
                               double k_ratio, int num_teams = 1) {
  return [=](size_t n) {
    AlgorithmConfig config;
    config.n = n;
    config.k = std::max<size_t>(1, static_cast<size_t>(
                                       k_ratio * static_cast<double>(n)));
    config.num_workers = p;
    config.num_teams = num_teams;
    return std::move(*CreateAlgorithm(name, config));
  };
}

TEST(SgdOptimizerTest, LearningRateSchedule) {
  SgdConfig config;
  config.learning_rate = 0.1;
  config.lr_milestones = {{80, 0.1}, {120, 0.1}};
  SgdOptimizer optimizer(4, config);
  EXPECT_DOUBLE_EQ(optimizer.LearningRateAt(0), 0.1);
  EXPECT_DOUBLE_EQ(optimizer.LearningRateAt(79), 0.1);
  EXPECT_NEAR(optimizer.LearningRateAt(80), 0.01, 1e-12);
  EXPECT_NEAR(optimizer.LearningRateAt(120), 0.001, 1e-12);
}

TEST(SgdOptimizerTest, SparseStepAveragesAndAppliesMomentum) {
  SgdConfig config;
  config.learning_rate = 1.0;
  config.momentum = 0.5;
  SgdOptimizer optimizer(3, config);
  std::vector<float> params = {0.0f, 0.0f, 0.0f};
  // Global sum 4.0 at index 1 over 4 workers -> mean 1.0.
  SparseVector global({1}, {4.0f});
  optimizer.Step(global, 4, 0, params);
  EXPECT_FLOAT_EQ(params[1], -1.0f);
  // Momentum carries: v = 0.5*1 + 1 = 1.5 -> param -2.5.
  optimizer.Step(global, 4, 0, params);
  EXPECT_FLOAT_EQ(params[1], -2.5f);
  EXPECT_FLOAT_EQ(params[0], 0.0f);
}

TEST(SgdOptimizerTest, WeightDecayPullsTowardZero) {
  SgdConfig config;
  config.learning_rate = 0.1;
  config.momentum = 0.0;
  config.weight_decay = 1.0;
  SgdOptimizer optimizer(1, config);
  std::vector<float> params = {1.0f};
  std::vector<float> zero_grad = {0.0f};
  optimizer.StepDense(zero_grad, 0, params);
  EXPECT_FLOAT_EQ(params[0], 0.9f);
}

// End-to-end S-SGD: training must actually learn (loss falls, accuracy
// rises) and all replicas must stay identical — with SparDL and with the
// dense baseline.
class TrainerLearningSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(TrainerLearningSweep, LossFallsAndReplicasAgree) {
  const std::string algo = GetParam();
  const int p = 4;
  const TrainingCaseSpec spec = MakeTrainingCase("vgg16");
  auto dataset = spec.dataset_factory();
  TrainerConfig config = spec.default_config;
  config.epochs = 5;
  config.iterations_per_epoch = 12;
  config.compute_seconds_per_iteration = 0.0;

  Cluster cluster(p, CostModel::Free());
  const TrainResult result =
      TrainDistributed(cluster, *dataset, spec.model_factory,
                       SparseFactory(algo, p, 0.05), config);
  ASSERT_EQ(result.epochs.size(), 5u);
  EXPECT_TRUE(result.replicas_consistent);
  EXPECT_LT(result.epochs.back().train_loss,
            result.epochs.front().train_loss * 0.9);
  EXPECT_GT(result.epochs.back().test_metric, 0.5);  // >> 10% chance level
}

INSTANTIATE_TEST_SUITE_P(Methods, TrainerLearningSweep,
                         ::testing::Values("spardl", "topka", "oktopk",
                                           "gtopk", "topkdsa", "dense"));

TEST(TrainerTest, SparDLWithTeamsLearns) {
  const int p = 6;
  const TrainingCaseSpec spec = MakeTrainingCase("vgg16");
  auto dataset = spec.dataset_factory();
  TrainerConfig config = spec.default_config;
  config.epochs = 4;
  config.iterations_per_epoch = 12;
  config.compute_seconds_per_iteration = 0.0;

  Cluster cluster(p, CostModel::Free());
  const TrainResult result =
      TrainDistributed(cluster, *dataset, spec.model_factory,
                       SparseFactory("spardl", p, 0.05, /*num_teams=*/3),
                       config);
  EXPECT_TRUE(result.replicas_consistent);
  EXPECT_LT(result.epochs.back().train_loss,
            result.epochs.front().train_loss);
}

TEST(TrainerTest, RegressionCaseLossDecreases) {
  const int p = 4;
  const TrainingCaseSpec spec = MakeTrainingCase("vgg11");
  auto dataset = spec.dataset_factory();
  TrainerConfig config = spec.default_config;
  config.epochs = 4;
  config.iterations_per_epoch = 12;

  Cluster cluster(p, CostModel::Free());
  const TrainResult result =
      TrainDistributed(cluster, *dataset, spec.model_factory,
                       SparseFactory("spardl", p, 0.05), config);
  EXPECT_TRUE(result.replicas_consistent);
  EXPECT_LT(result.epochs.back().test_metric,
            result.epochs.front().test_metric);
}

TEST(TrainerTest, LstmCaseLearns) {
  const int p = 2;
  const TrainingCaseSpec spec = MakeTrainingCase("lstm-imdb");
  auto dataset = spec.dataset_factory();
  TrainerConfig config = spec.default_config;
  config.epochs = 4;
  config.iterations_per_epoch = 10;
  config.batch_size = 24;

  Cluster cluster(p, CostModel::Free());
  const TrainResult result =
      TrainDistributed(cluster, *dataset, spec.model_factory,
                       SparseFactory("spardl", p, 0.05), config);
  EXPECT_TRUE(result.replicas_consistent);
  EXPECT_LT(result.epochs.back().train_loss,
            result.epochs.front().train_loss);
}

TEST(TrainerTest, SimulatedTimeReflectsComputeCharge) {
  const int p = 2;
  const TrainingCaseSpec spec = MakeTrainingCase("vgg11");
  auto dataset = spec.dataset_factory();
  TrainerConfig config = spec.default_config;
  config.epochs = 2;
  config.iterations_per_epoch = 5;
  config.compute_seconds_per_iteration = 1.0;

  Cluster cluster(p, CostModel::Free());
  const TrainResult result =
      TrainDistributed(cluster, *dataset, spec.model_factory,
                       SparseFactory("spardl", p, 0.05), config);
  // 2 epochs * 5 iterations * 1s = 10 simulated seconds of compute.
  EXPECT_NEAR(result.epochs.back().sim_seconds_cumulative, 10.0, 1e-6);
}

// Layer-bucketed overlap modes: still synchronous SGD — every replica
// applies the same averaged update — so replicas must stay bit-identical,
// training must still learn, and the two bucketed modes (which only
// reorder *when* buckets travel, never what they carry) must end with
// bit-identical parameters.
TEST(TrainerOverlapTest, BucketedModesLearnAndMatchEachOther) {
  const int p = 4;
  const TrainingCaseSpec spec = MakeTrainingCase("vgg16");
  auto dataset = spec.dataset_factory();
  TrainerConfig config = spec.default_config;
  config.epochs = 4;
  config.iterations_per_epoch = 12;
  config.compute_seconds_per_iteration = 1.0e-3;

  TrainResult results[2];
  const GradSyncMode modes[2] = {GradSyncMode::kBucketed,
                                 GradSyncMode::kBucketedPriority};
  for (int i = 0; i < 2; ++i) {
    config.sync_mode = modes[i];
    Cluster cluster(p, CostModel::Ethernet());
    results[i] = TrainDistributed(cluster, *dataset, spec.model_factory,
                                  SparseFactory("spardl", p, 0.05), config);
    EXPECT_TRUE(results[i].replicas_consistent)
        << GradSyncModeName(modes[i]);
    EXPECT_LT(results[i].epochs.back().train_loss,
              results[i].epochs.front().train_loss * 0.9);
    EXPECT_GT(results[i].epochs.back().test_metric, 0.5);
  }
  EXPECT_EQ(results[0].final_param_checksum, results[1].final_param_checksum);
  EXPECT_EQ(results[0].epochs.back().train_loss,
            results[1].epochs.back().train_loss);
}

// With free communication, the bucketed schedule's simulated clock is
// pure compute: the per-layer slices must add back up to the configured
// per-iteration constant (coherent comm/compute accounting).
TEST(TrainerOverlapTest, BucketedAccountingReflectsComputeCharge) {
  const int p = 2;
  const TrainingCaseSpec spec = MakeTrainingCase("vgg11");
  auto dataset = spec.dataset_factory();
  TrainerConfig config = spec.default_config;
  config.epochs = 2;
  config.iterations_per_epoch = 5;
  config.compute_seconds_per_iteration = 1.0;
  config.sync_mode = GradSyncMode::kBucketed;

  Cluster cluster(p, CostModel::Free());
  const TrainResult result =
      TrainDistributed(cluster, *dataset, spec.model_factory,
                       SparseFactory("spardl", p, 0.05), config);
  EXPECT_TRUE(result.replicas_consistent);
  EXPECT_NEAR(result.epochs.back().compute_seconds_epoch, 5.0, 1e-6);
  EXPECT_NEAR(result.epochs.back().sim_seconds_cumulative, 10.0, 1e-6);
}

TEST(TrainerOverlapTest, ConfigValidateRejectsBadSettings) {
  TrainerConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.sync_mode = GradSyncMode::kBucketedPriority;
  EXPECT_TRUE(config.Validate().ok());

  TrainerConfig bad = config;
  bad.epochs = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = config;
  bad.iterations_per_epoch = -1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = config;
  bad.compute_seconds_per_iteration = -0.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = config;
  bad.backward_fraction = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = config;
  bad.backward_fraction = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = config;
  bad.layer_compute_fractions = {0.5, -0.1};
  EXPECT_FALSE(bad.Validate().ok());
  bad = config;
  bad.layer_compute_fractions = {0.0, 0.0};
  EXPECT_FALSE(bad.Validate().ok());
  bad = config;
  bad.layer_compute_fractions = {0.6, 0.4};
  EXPECT_TRUE(bad.Validate().ok());
}

TEST(TrainerTest, SparsityHurtsNothingAtKEqualsN) {
  // k = n: sparse methods degenerate to exact dense sync, so the learning
  // curve must match the dense baseline's exactly (same seeds).
  const int p = 4;
  const TrainingCaseSpec spec = MakeTrainingCase("vgg16");
  auto dataset = spec.dataset_factory();
  TrainerConfig config = spec.default_config;
  config.epochs = 3;
  config.iterations_per_epoch = 8;

  Cluster cluster_a(p, CostModel::Free());
  const TrainResult spardl_result =
      TrainDistributed(cluster_a, *dataset, spec.model_factory,
                       SparseFactory("spardl", p, 1.0), config);
  Cluster cluster_b(p, CostModel::Free());
  const TrainResult dense_result =
      TrainDistributed(cluster_b, *dataset, spec.model_factory,
                       SparseFactory("dense", p, 1.0), config);
  EXPECT_NEAR(spardl_result.epochs.back().train_loss,
              dense_result.epochs.back().train_loss, 1e-3);
}

}  // namespace
}  // namespace spardl
