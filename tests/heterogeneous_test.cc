// Heterogeneous-cluster support (paper §VI extension): per-worker receive
// slowdown factors on the simulated network.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/registry.h"
#include "dl/grad_profile.h"
#include "obs/analysis.h"
#include "simnet/cluster.h"
#include "test_util.h"

namespace spardl {
namespace {

TEST(HeterogeneousTest, SlowdownScalesRecvCost) {
  const CostModel cm{1.0, 0.0};
  Cluster cluster(2, cm);
  cluster.network().SetWorkerSlowdown(1, 3.0);
  cluster.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(int64_t{1}));
    } else {
      comm.RecvAs<int64_t>(0);
      EXPECT_DOUBLE_EQ(comm.sim_now(), 3.0);  // 3x the 1s alpha
    }
  });
}

TEST(HeterogeneousTest, DefaultIsHomogeneous) {
  Cluster cluster(3, CostModel::Ethernet());
  EXPECT_DOUBLE_EQ(cluster.network().WorkerSlowdown(0), 1.0);
  EXPECT_DOUBLE_EQ(cluster.network().WorkerSlowdown(2), 1.0);
}

TEST(HeterogeneousTest, RejectsBadArguments) {
  Network network(2, CostModel::Free());
  EXPECT_DEATH(network.SetWorkerSlowdown(5, 2.0), "");
  EXPECT_DEATH(network.SetWorkerSlowdown(0, 0.0), "");
}

// A straggler must not break correctness: the synchronous algorithms
// still produce identical replicas, just later.
TEST(HeterogeneousTest, StragglerPreservesConsistency) {
  const int p = 6;
  const size_t n = 600;
  AlgorithmConfig config;
  config.n = n;
  config.k = 60;
  config.num_workers = p;

  Cluster cluster(p, CostModel::Ethernet());
  cluster.network().SetWorkerSlowdown(3, 8.0);
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] =
        std::move(*CreateAlgorithm("spardl", config));
  }
  std::vector<SparseVector> outs(static_cast<size_t>(p));
  cluster.Run([&](Comm& comm) {
    std::vector<float> grad = testing::RandomGradient(
        n, 3 + static_cast<uint64_t>(comm.rank()));
    outs[static_cast<size_t>(comm.rank())] =
        algos[static_cast<size_t>(comm.rank())]->Run(comm, grad);
  });
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(outs[static_cast<size_t>(r)], outs[0]);
  }
}

// The straggler's delay propagates into the cluster makespan: with one
// 8x-slow worker, the slowest clock is strictly above the homogeneous run.
TEST(HeterogeneousTest, StragglerRaisesMakespan) {
  const int p = 6;
  const size_t n = 2000;
  AlgorithmConfig config;
  config.n = n;
  config.k = 200;
  config.num_workers = p;
  config.residual_mode = ResidualMode::kNone;

  double makespan[2];
  int slot = 0;
  for (bool straggler : {false, true}) {
    Cluster cluster(p, CostModel::Ethernet());
    if (straggler) cluster.network().SetWorkerSlowdown(2, 8.0);
    std::vector<std::unique_ptr<SparseAllReduce>> algos(
        static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      algos[static_cast<size_t>(r)] =
          std::move(*CreateAlgorithm("spardl", config));
    }
    cluster.Run([&](Comm& comm) {
      std::vector<float> grad = testing::RandomGradient(
          n, 3 + static_cast<uint64_t>(comm.rank()));
      algos[static_cast<size_t>(comm.rank())]->Run(comm, grad);
      comm.BarrierSyncClocks();
    });
    makespan[slot++] = cluster.MaxSimSeconds();
  }
  EXPECT_GT(makespan[1], 2.0 * makespan[0]);
}

// Compute-side heterogeneity: the generator's per-worker multipliers
// scale the modelled forward+backward time, with out-of-range workers
// staying at the homogeneous 1.0.
TEST(HeterogeneousTest, ComputeMultiplierScalesComputeSeconds) {
  ProfileGradientGenerator generator(2000, 11);
  EXPECT_FALSE(generator.has_compute_skew());
  EXPECT_DOUBLE_EQ(generator.ComputeSeconds(3, 0.1), 0.1);

  generator.SetComputeMultiplier(2, 8.0);
  EXPECT_TRUE(generator.has_compute_skew());
  EXPECT_DOUBLE_EQ(generator.ComputeSeconds(2, 0.1), 0.8);
  EXPECT_DOUBLE_EQ(generator.ComputeSeconds(0, 0.1), 0.1);
  // Workers past the configured vector are homogeneous.
  EXPECT_DOUBLE_EQ(generator.ComputeSeconds(7, 0.1), 0.1);
}

TEST(HeterogeneousTest, ComputeMultiplierRejectsBadArguments) {
  ProfileGradientGenerator generator(2000, 11);
  EXPECT_DEATH(generator.SetComputeMultiplier(-1, 2.0), "");
  EXPECT_DEATH(generator.SetComputeMultiplier(0, 0.0), "");
}

// The regression the compute multipliers exist for: an injected
// slow-compute worker must be flagged by the per-iteration straggler
// report. Same decoupled shape as the report's own test (no barrier, so
// nothing drags the other clocks up to the straggler's).
TEST(HeterogeneousTest, SlowComputeWorkerFlaggedAsStraggler) {
  ProfileGradientGenerator generator(2000, 11);
  generator.SetComputeMultiplier(2, 8.0);

  Cluster cluster(TopologySpec::Flat(4));
  cluster.EnableTracing();
  for (int iter = 0; iter < 3; ++iter) {
    cluster.Run([&](Comm& comm) {
      comm.Compute(generator.ComputeSeconds(comm.rank(), 0.1));
      comm.MarkIteration();
    });
  }
  const TimeSeriesReport report =
      BuildTimeSeries(cluster, kDefaultStragglerFactor);
  EXPECT_EQ(report.iterations, 3);
  ASSERT_EQ(report.stragglers.size(), 1u);
  EXPECT_EQ(report.stragglers[0].worker, 2);
  EXPECT_DOUBLE_EQ(report.stragglers[0].mean_wall, 0.8);
  EXPECT_DOUBLE_EQ(report.stragglers[0].ratio, 8.0);
}

}  // namespace
}  // namespace spardl
