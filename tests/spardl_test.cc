#include "core/spardl.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "test_util.h"

namespace spardl {
namespace {

using ::spardl::testing::RandomGradient;
using ::spardl::testing::ReferenceSum;

SparDLConfig BaseConfig(int p, size_t n, size_t k, int d) {
  SparDLConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = p;
  config.num_teams = d;
  return config;
}

TEST(SparDLConfigTest, ValidatesInputs) {
  EXPECT_FALSE(BaseConfig(4, 0, 1, 1).Validate().ok());
  EXPECT_FALSE(BaseConfig(4, 100, 0, 1).Validate().ok());
  EXPECT_FALSE(BaseConfig(4, 100, 101, 1).Validate().ok());
  EXPECT_FALSE(BaseConfig(0, 100, 10, 1).Validate().ok());
  EXPECT_FALSE(BaseConfig(4, 100, 10, 3).Validate().ok());  // 3 does not divide 4
  EXPECT_TRUE(BaseConfig(4, 100, 10, 2).Validate().ok());

  SparDLConfig bad_rsag = BaseConfig(12, 100, 10, 3);
  bad_rsag.sag_mode = SagMode::kRecursive;
  EXPECT_FALSE(bad_rsag.Validate().ok());
}

TEST(SparDLTest, CreateResolvesAutoSagMode) {
  auto no_sag = SparDL::Create(BaseConfig(8, 100, 10, 1));
  ASSERT_TRUE(no_sag.ok());
  EXPECT_FALSE((*no_sag)->resolved_sag().has_value());
  EXPECT_EQ((*no_sag)->name(), "SparDL");

  auto rsag = SparDL::Create(BaseConfig(8, 100, 10, 2));
  ASSERT_TRUE(rsag.ok());
  EXPECT_EQ(*(*rsag)->resolved_sag(), SagMode::kRecursive);
  EXPECT_EQ((*rsag)->name(), "SparDL(R-SAG, d=2)");

  auto bsag = SparDL::Create(BaseConfig(12, 100, 10, 3));
  ASSERT_TRUE(bsag.ok());
  EXPECT_EQ(*(*bsag)->resolved_sag(), SagMode::kBruck);
  EXPECT_EQ((*bsag)->name(), "SparDL(B-SAG, d=3)");

  SparDLConfig forced = BaseConfig(8, 100, 10, 2);
  forced.sag_mode = SagMode::kBruck;
  auto forced_bsag = SparDL::Create(forced);
  ASSERT_TRUE(forced_bsag.ok());
  EXPECT_EQ(*(*forced_bsag)->resolved_sag(), SagMode::kBruck);
}

// The core synchronous-SGD invariant: every worker ends each iteration
// with the bit-identical global gradient — for every P, every d, both SAG
// variants, several iterations deep (residual feedback included).
class SparDLConsistencySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SparDLConsistencySweep, AllWorkersIdenticalAcrossIterations) {
  const auto [p, d] = GetParam();
  const size_t n = 60u * static_cast<size_t>(p);
  const size_t k = 4u * static_cast<size_t>(p);
  std::vector<std::vector<SparseVector>> outputs;
  testing::RunAlgorithm(
      p, n, /*iterations=*/4,
      [&](int) {
        auto algo = SparDL::Create(BaseConfig(p, n, k, d));
        return std::unique_ptr<SparseAllReduce>(std::move(*algo));
      },
      nullptr, &outputs);
  for (size_t iter = 0; iter < outputs.size(); ++iter) {
    for (int r = 1; r < p; ++r) {
      ASSERT_EQ(outputs[iter][static_cast<size_t>(r)], outputs[iter][0])
          << "P=" << p << " d=" << d << " iter=" << iter << " rank=" << r;
    }
    EXPECT_GT(outputs[iter][0].size(), 0u);
    // Global gradient can never exceed team_size * L entries (= about k).
    EXPECT_LE(outputs[iter][0].size(), k + static_cast<size_t>(p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndTeams, SparDLConsistencySweep,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 1),
                      std::make_tuple(3, 1), std::make_tuple(4, 2),
                      std::make_tuple(6, 2), std::make_tuple(6, 3),
                      std::make_tuple(8, 2), std::make_tuple(8, 4),
                      std::make_tuple(12, 3), std::make_tuple(12, 6),
                      std::make_tuple(14, 7), std::make_tuple(14, 14),
                      std::make_tuple(14, 1), std::make_tuple(16, 8)));

// Cluster-wide mass conservation across iterations with GRES:
// sum over iterations of fresh-gradient mass ==
// sum over iterations of synchronised-gradient mass + residuals in store.
class SparDLConservationSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SparDLConservationSweep, GresNeverLosesMass) {
  const auto [p, d] = GetParam();
  const size_t n = 50u * static_cast<size_t>(p);
  const size_t k = 5u * static_cast<size_t>(p);
  const int iterations = 3;

  Cluster cluster(p, CostModel::Free());
  std::vector<std::unique_ptr<SparDL>> algos(static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] =
        std::move(*SparDL::Create(BaseConfig(p, n, k, d)));
  }
  double fresh_mass = 0.0;
  double synced_mass = 0.0;
  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<std::vector<float>> grads(static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      grads[static_cast<size_t>(r)] = RandomGradient(
          n, 500 + static_cast<uint64_t>(iter * 100 + r));
      for (float v : grads[static_cast<size_t>(r)]) fresh_mass += v;
    }
    std::vector<SparseVector> outs(static_cast<size_t>(p));
    cluster.Run([&](Comm& comm) {
      const auto rank = static_cast<size_t>(comm.rank());
      outs[rank] = algos[rank]->Run(comm, grads[rank]);
    });
    synced_mass += outs[0].ValueSum();
  }
  double residual_mass = 0.0;
  for (const auto& algo : algos) {
    residual_mass += algo->residuals().MassSum();
  }
  EXPECT_NEAR(fresh_mass, synced_mass + residual_mass,
              1e-2 * (1.0 + std::abs(fresh_mass)))
      << "P=" << p << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndTeams, SparDLConservationSweep,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(4, 2),
                      std::make_tuple(6, 3), std::make_tuple(8, 4),
                      std::make_tuple(12, 6), std::make_tuple(14, 7)));

// With k = n and d = 1 (or R-SAG), no selection ever discards anything, so
// SparDL must equal the exact dense all-reduce.
class SparDLExactSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SparDLExactSweep, MatchesDenseAllReduceWhenKEqualsN) {
  const auto [p, d] = GetParam();
  const size_t n = 48u * static_cast<size_t>(p);
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    grads.push_back(RandomGradient(n, 900 + static_cast<uint64_t>(r)));
  }
  const std::vector<float> expected = ReferenceSum(grads);

  Cluster cluster(p, CostModel::Free());
  std::vector<SparseVector> outs(static_cast<size_t>(p));
  cluster.Run([&](Comm& comm) {
    const auto rank = static_cast<size_t>(comm.rank());
    auto algo = std::move(*SparDL::Create(BaseConfig(p, n, n, d)));
    std::vector<float> grad = grads[rank];
    outs[rank] = algo->Run(comm, grad);
  });
  std::vector<float> dense(n, 0.0f);
  outs[0].ScatterToDense(dense);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(dense[i], expected[i], 1e-3f) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(WorkersAndTeams, SparDLExactSweep,
                         ::testing::Values(std::make_tuple(4, 1),
                                           std::make_tuple(6, 1),
                                           std::make_tuple(8, 2),
                                           std::make_tuple(8, 4),
                                           std::make_tuple(14, 1)));

TEST(SparDLTest, RunOnSparseMatchesDensePathWithoutResiduals) {
  const int p = 6;
  const size_t n = 300;
  const size_t k = 30;
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    grads.push_back(RandomGradient(n, 321 + static_cast<uint64_t>(r)));
  }
  SparDLConfig config = BaseConfig(p, n, k, 3);
  config.residual_mode = ResidualMode::kNone;

  std::vector<SparseVector> dense_out(static_cast<size_t>(p));
  std::vector<SparseVector> sparse_out(static_cast<size_t>(p));
  {
    Cluster cluster(p, CostModel::Free());
    cluster.Run([&](Comm& comm) {
      const auto rank = static_cast<size_t>(comm.rank());
      auto algo = std::move(*SparDL::Create(config));
      std::vector<float> grad = grads[rank];
      dense_out[rank] = algo->Run(comm, grad);
    });
  }
  {
    Cluster cluster(p, CostModel::Free());
    cluster.Run([&](Comm& comm) {
      const auto rank = static_cast<size_t>(comm.rank());
      auto algo = std::move(*SparDL::Create(config));
      sparse_out[rank] =
          algo->RunOnSparse(comm, SparseVector::FromDense(grads[rank]));
    });
  }
  EXPECT_EQ(dense_out[0], sparse_out[0]);
}

TEST(SparDLTest, BsagUnionObservable) {
  const int p = 6;
  const size_t n = 300;
  const size_t k = 60;
  std::vector<size_t> unions(static_cast<size_t>(p));
  Cluster cluster(p, CostModel::Free());
  cluster.Run([&](Comm& comm) {
    const auto rank = static_cast<size_t>(comm.rank());
    auto algo = std::move(*SparDL::Create(BaseConfig(p, n, k, 3)));
    std::vector<float> grad = RandomGradient(n, 42 + rank);
    algo->Run(comm, grad);
    unions[rank] = algo->last_bsag_union();
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_GT(unions[static_cast<size_t>(r)], 0u) << "rank " << r;
  }
}

// The lazy-sparsification optimisation changes selection timing but must
// preserve consistency and the output-size contract.
TEST(SparDLTest, EagerSparsifyAlsoConsistent) {
  const int p = 6;
  const size_t n = 300;
  const size_t k = 30;
  SparDLConfig config = BaseConfig(p, n, k, 2);
  config.sag_mode = SagMode::kBruck;
  config.lazy_sparsify = false;
  std::vector<std::vector<SparseVector>> outputs;
  testing::RunAlgorithm(
      p, n, 3,
      [&](int) {
        return std::unique_ptr<SparseAllReduce>(
            std::move(*SparDL::Create(config)));
      },
      nullptr, &outputs);
  for (const auto& iter_outputs : outputs) {
    for (int r = 1; r < p; ++r) {
      EXPECT_EQ(iter_outputs[static_cast<size_t>(r)], iter_outputs[0]);
    }
  }
}

}  // namespace
}  // namespace spardl
