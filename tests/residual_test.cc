#include "core/residual.h"

#include <gtest/gtest.h>

#include <vector>

namespace spardl {
namespace {

SparseVector Make(std::vector<GradIndex> idx, std::vector<float> val) {
  return SparseVector(std::move(idx), std::move(val));
}

TEST(ResidualStoreTest, ModeNames) {
  EXPECT_STREQ(ResidualModeName(ResidualMode::kGlobal), "GRES");
  EXPECT_STREQ(ResidualModeName(ResidualMode::kPartial), "PRES");
  EXPECT_STREQ(ResidualModeName(ResidualMode::kLocal), "LRES");
  EXPECT_STREQ(ResidualModeName(ResidualMode::kNone), "none");
}

TEST(ResidualStoreTest, ApplyAndResetMovesMassIntoGradient) {
  ResidualStore store(4, ResidualMode::kGlobal);
  store.AddLocalDiscard(Make({1, 3}, {0.5f, -1.0f}));
  std::vector<float> grad = {1.0f, 1.0f, 1.0f, 1.0f};
  store.ApplyAndReset(grad);
  EXPECT_FLOAT_EQ(grad[1], 1.5f);
  EXPECT_FLOAT_EQ(grad[3], 0.0f);
  EXPECT_DOUBLE_EQ(store.MassSum(), 0.0);
  // Second apply is a no-op: the store was cleared.
  store.ApplyAndReset(grad);
  EXPECT_FLOAT_EQ(grad[1], 1.5f);
}

TEST(ResidualStoreTest, GlobalCollectsCommDiscardsImmediately) {
  ResidualStore store(4, ResidualMode::kGlobal);
  store.AddCommDiscard(Make({0}, {2.0f}), 1.0f);
  store.AddCommDiscard(Make({0}, {2.0f}), 0.5f);  // scaled crediting
  EXPECT_DOUBLE_EQ(store.MassSum(), 3.0);
  // Comm discards survive even if their index is in the final gradient
  // (in-procedure residuals — the GRES novelty).
  store.FinishIteration(Make({0}, {9.0f}));
  EXPECT_DOUBLE_EQ(store.MassSum(), 3.0);
}

TEST(ResidualStoreTest, PartialKeepsOnlyEndProcedureResiduals) {
  ResidualStore store(8, ResidualMode::kPartial);
  store.AddCommDiscard(Make({2, 5}, {1.0f, 4.0f}), 1.0f);
  // Buffered, not yet applied.
  EXPECT_DOUBLE_EQ(store.MassSum(), 5.0);
  // Index 2 survives into the final gradient -> in-procedure -> dropped.
  // Index 5 is absent -> end-procedure -> kept.
  store.FinishIteration(Make({2}, {3.0f}));
  EXPECT_DOUBLE_EQ(store.MassSum(), 4.0);
  std::vector<float> grad(8, 0.0f);
  store.ApplyAndReset(grad);
  EXPECT_FLOAT_EQ(grad[5], 4.0f);
  EXPECT_FLOAT_EQ(grad[2], 0.0f);
}

TEST(ResidualStoreTest, PartialAppliesScaleAtFilterTime) {
  ResidualStore store(8, ResidualMode::kPartial);
  store.AddCommDiscard(Make({5}, {4.0f}), 0.25f);
  store.FinishIteration(SparseVector());
  EXPECT_DOUBLE_EQ(store.MassSum(), 1.0);
}

TEST(ResidualStoreTest, LocalDropsCommDiscards) {
  ResidualStore store(4, ResidualMode::kLocal);
  store.AddLocalDiscard(Make({1}, {1.0f}));
  store.AddCommDiscard(Make({2}, {7.0f}), 1.0f);
  store.FinishIteration(SparseVector());
  EXPECT_DOUBLE_EQ(store.MassSum(), 1.0);
}

TEST(ResidualStoreTest, NoneModeIsInertWithZeroLengthBuffer) {
  ResidualStore store(0, ResidualMode::kNone);
  store.AddLocalDiscard(Make({1}, {1.0f}));
  store.AddCommDiscard(Make({2}, {1.0f}), 1.0f);
  store.FinishIteration(SparseVector());
  EXPECT_DOUBLE_EQ(store.MassSum(), 0.0);
  EXPECT_TRUE(store.dense().empty());
  std::vector<float> grad = {1.0f};
  store.ApplyAndReset(grad);  // must not touch grad nor crash
  EXPECT_FLOAT_EQ(grad[0], 1.0f);
}

TEST(ResidualStoreTest, AccumulatesOverlappingDiscards) {
  ResidualStore store(4, ResidualMode::kGlobal);
  store.AddLocalDiscard(Make({1}, {1.0f}));
  store.AddLocalDiscard(Make({1}, {2.0f}));
  std::vector<float> grad(4, 0.0f);
  store.ApplyAndReset(grad);
  EXPECT_FLOAT_EQ(grad[1], 3.0f);
}

TEST(ResidualStoreTest, PendingClearedByApplyAndReset) {
  // An aborted iteration (apply without finish) must not leak stale
  // pending discards into the next one.
  ResidualStore store(4, ResidualMode::kPartial);
  store.AddCommDiscard(Make({2}, {5.0f}), 1.0f);
  std::vector<float> grad(4, 0.0f);
  store.ApplyAndReset(grad);
  store.FinishIteration(SparseVector());
  EXPECT_DOUBLE_EQ(store.MassSum(), 0.0);
}

TEST(ResidualStoreTest, DiesOnSizeMismatch) {
  ResidualStore store(4, ResidualMode::kGlobal);
  std::vector<float> grad(3, 0.0f);
  EXPECT_DEATH(store.ApplyAndReset(grad), "");
}

}  // namespace
}  // namespace spardl
