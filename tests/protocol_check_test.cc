// SPMD protocol-verifier tests: deliberately divergent worker programs
// (mismatched tag, unequal round counts, wrong team size, mixed barrier
// kinds) must come back from `Cluster::Run` as a diagnostic `Status`
// naming both workers' op traces — within one barrier, never by hanging
// until the 120 s mailbox watchdog. Each run keeps a short recv watchdog
// anyway, so a detector regression fails the test loudly instead of
// stalling the suite.

#include "simnet/protocol_check.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "simnet/cluster.h"
#include "topo/topology.h"
#include "topo/topology_spec.h"

namespace spardl {
namespace {

/// Every divergence case runs on both charging engines: the busy-until
/// flat crossbar and the event-ordered fat-tree exercise entirely
/// different wait paths (per-mailbox cv vs. engine BlockUntil).
class ProtocolCheckTest : public ::testing::TestWithParam<ChargeEngine> {
 protected:
  static constexpr int kWorkers = 4;

  TopologySpec Fabric() const {
    if (GetParam() == ChargeEngine::kBusyUntil) {
      return TopologySpec::Flat(kWorkers, CostModel{1e-3, 1e-6});
    }
    auto spec = TopologySpec::Parse("fattree:2x2x2+event", kWorkers);
    SPARDL_CHECK(spec.ok()) << spec.status().ToString();
    return *spec;
  }

  /// A cluster with checking on and a short wall-clock watchdog, so a
  /// missed detection aborts in seconds, not minutes.
  std::unique_ptr<Cluster> MakeCluster() {
    auto cluster = std::make_unique<Cluster>(Fabric());
    cluster->EnableProtocolCheck();
    cluster->network().set_recv_timeout_seconds(20.0);
    return cluster;
  }
};

Payload OneWord() { return Payload(std::vector<float>{1.0f}); }

TEST_P(ProtocolCheckTest, MatchingProgramPasses) {
  auto cluster = MakeCluster();
  // Two iterations of a ring shift plus both barrier kinds: everything a
  // conforming SPMD program does, to pin zero false positives.
  const Status status = cluster->Run([](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    for (int iter = 0; iter < 2; ++iter) {
      comm.Send(next, Payload(std::vector<float>{1.0f, 2.0f}), /*tag=*/iter);
      (void)comm.Recv(prev, /*tag=*/iter);
      comm.Barrier();
      comm.MarkIteration();
      comm.BarrierSyncClocks();
    }
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST_P(ProtocolCheckTest, MismatchedTagIsDiagnosed) {
  auto cluster = MakeCluster();
  const Status status = cluster->Run([](Comm& comm) {
    if (comm.rank() == 0) {
      // Bug under test: sender stamps tag 7, receiver expects tag 9.
      comm.Send(1, OneWord(), /*tag=*/7);
      (void)comm.Recv(1, /*tag=*/7);
    } else if (comm.rank() == 1) {
      comm.Send(0, OneWord(), /*tag=*/7);
      (void)comm.Recv(0, /*tag=*/9);
    }
    comm.BarrierSyncClocks();
  });
  ASSERT_FALSE(status.ok());
  const std::string message = status.ToString();
  // The diagnosis names the tag mismatch and prints both involved
  // workers' op traces.
  EXPECT_NE(message.find("tag"), std::string::npos) << message;
  EXPECT_NE(message.find("worker 0 op trace"), std::string::npos) << message;
  EXPECT_NE(message.find("worker 1 op trace"), std::string::npos) << message;
}

TEST_P(ProtocolCheckTest, UnequalRoundCountsAreDiagnosed) {
  auto cluster = MakeCluster();
  // Rank 0 believes the exchange runs 3 rounds; everyone else stops after
  // 2 — the "unequal SRS round count" divergence. Rank 0's third recv can
  // never be satisfied once its peer finished.
  const Status status = cluster->Run([](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    const int rounds = comm.rank() == 0 ? 3 : 2;
    for (int r = 0; r < rounds; ++r) {
      comm.Send(next, OneWord(), /*tag=*/r);
      (void)comm.Recv(prev, /*tag=*/r);
    }
  });
  ASSERT_FALSE(status.ok());
  const std::string message = status.ToString();
  EXPECT_NE(message.find("op trace"), std::string::npos) << message;
}

TEST_P(ProtocolCheckTest, WrongTeamSizeIsDiagnosed) {
  auto cluster = MakeCluster();
  // Rank 0 plans teams of 4 (partner = rank 2); everyone else plans teams
  // of 2 (partner = neighbour) — the "wrong team size" divergence: rank 3
  // waits on a partner that is sending elsewhere.
  const Status status = cluster->Run([](Comm& comm) {
    const int team = comm.rank() == 0 ? 4 : 2;
    const int partner = comm.rank() ^ (team / 2);
    comm.Send(partner, OneWord());
    (void)comm.Recv(partner);
  });
  ASSERT_FALSE(status.ok());
  const std::string message = status.ToString();
  EXPECT_NE(message.find("op trace"), std::string::npos) << message;
}

TEST_P(ProtocolCheckTest, MixedBarrierKindsFailImmediately) {
  auto cluster = MakeCluster();
  const Status status = cluster->Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Barrier();
    } else {
      comm.BarrierSyncClocks();
    }
  });
  ASSERT_FALSE(status.ok());
  const std::string message = status.ToString();
  EXPECT_NE(message.find("barrier"), std::string::npos) << message;
  EXPECT_NE(message.find("op trace"), std::string::npos) << message;
}

TEST_P(ProtocolCheckTest, UnconsumedSendAtClockSyncIsDiagnosed) {
  auto cluster = MakeCluster();
  // A peer asymmetry that never blocks anyone: rank 0 sends a message
  // nobody receives, then all ranks reach the iteration boundary. Plain
  // FIFO matching would only surface this one iteration later (or as a
  // leaked mailbox CHECK at teardown); the checker flags it at the
  // completed clock-sync barrier.
  const Status status = cluster->Run([](Comm& comm) {
    if (comm.rank() == 0) comm.Send(1, OneWord(), /*tag=*/3);
    comm.BarrierSyncClocks();
  });
  ASSERT_FALSE(status.ok());
  const std::string message = status.ToString();
  EXPECT_NE(message.find("unmatched"), std::string::npos) << message;
}

TEST_P(ProtocolCheckTest, FailedRunPoisonsTheCluster) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto cluster = MakeCluster();
  const Status status = cluster->Run([](Comm& comm) {
    if (comm.rank() == 0) comm.Send(1, OneWord(), /*tag=*/3);
    comm.BarrierSyncClocks();
  });
  ASSERT_FALSE(status.ok());
  // The divergent run was unwound mid-collective; the cluster's simulated
  // state is garbage and reuse must refuse loudly.
  ASSERT_DEATH((void)cluster->Run([](Comm&) {}),
               "Run after a protocol violation");
}

INSTANTIATE_TEST_SUITE_P(Engines, ProtocolCheckTest,
                         ::testing::Values(ChargeEngine::kBusyUntil,
                                           ChargeEngine::kEventOrdered),
                         [](const auto& suite_info) {
                           return suite_info.param == ChargeEngine::kBusyUntil
                                      ? std::string("BusyUntil")
                                      : std::string("EventOrdered");
                         });

/// Non-cluster unit coverage of the checker's bookkeeping.
TEST(ProtocolCheckerUnitTest, StatusIsOkUntilDiagnosis) {
  ProtocolChecker checker(2);
  checker.BeginRun();
  checker.OnSend(0, 1, /*tag=*/0, /*words=*/4);
  checker.OnRecvPosted(1, 0, /*tag=*/0);
  checker.OnRecvMatched(1, 0, /*tag=*/0, /*words=*/4);
  checker.OnWorkerDone(0);
  checker.OnWorkerDone(1);
  EXPECT_FALSE(checker.failed());
  EXPECT_TRUE(checker.status().ok());
}

TEST(ProtocolCheckerUnitTest, FirstDiagnosisWins) {
  ProtocolChecker checker(2);
  checker.BeginRun();
  // Worker 1 waits on tag 9 while tag 7 sits on the channel; worker 0 is
  // done -> stuck, diagnosed as a tag mismatch.
  checker.OnSend(0, 1, /*tag=*/7, /*words=*/1);
  checker.OnWorkerDone(0);
  checker.OnRecvPosted(1, 0, /*tag=*/9);
  ASSERT_TRUE(checker.failed());
  const std::string first = checker.status().ToString();
  EXPECT_NE(first.find("tag"), std::string::npos) << first;
  // Later events must not replace the latched diagnosis.
  checker.OnWorkerDone(1);
  EXPECT_EQ(checker.status().ToString(), first);
}

TEST(ProtocolCheckerUnitTest, BeginRunAfterFailureDies) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  ProtocolChecker checker(2);
  checker.BeginRun();
  checker.OnWorkerDone(0);
  checker.OnRecvPosted(1, 0, /*tag=*/0);  // peer done, recv unsatisfiable
  ASSERT_TRUE(checker.failed());
  ASSERT_DEATH(checker.BeginRun(), "");
}

}  // namespace
}  // namespace spardl
