#include "dl/data.h"

#include <gtest/gtest.h>

#include <set>

#include "dl/cases.h"
#include "dl/grad_profile.h"

namespace spardl {
namespace {

TEST(SyntheticClassificationTest, DeterministicBatches) {
  auto dataset = MakeSyntheticClassification(16, 4, 0.5f, 9);
  const Batch a = dataset->TrainBatch(2, 7, 8);
  const Batch b = dataset->TrainBatch(2, 7, 8);
  EXPECT_EQ(a.inputs.data(), b.inputs.data());
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SyntheticClassificationTest, DifferentWorkersDifferentShards) {
  auto dataset = MakeSyntheticClassification(16, 4, 0.5f, 9);
  const Batch a = dataset->TrainBatch(0, 7, 8);
  const Batch b = dataset->TrainBatch(1, 7, 8);
  EXPECT_NE(a.inputs.data(), b.inputs.data());
}

TEST(SyntheticClassificationTest, LabelsInRange) {
  auto dataset = MakeSyntheticClassification(8, 5, 0.5f, 9);
  const Batch batch = dataset->TrainBatch(0, 0, 64);
  for (int label : batch.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 5);
  }
}

TEST(SyntheticRegressionTest, TargetsFilledLabelsEmpty) {
  auto dataset = MakeSyntheticRegression(8, 0.1f, 3);
  const Batch batch = dataset->TrainBatch(0, 0, 16);
  EXPECT_EQ(batch.targets.rows(), 16u);
  EXPECT_EQ(batch.targets.cols(), 1u);
  EXPECT_TRUE(batch.labels.empty());
  EXPECT_FALSE(dataset->is_classification());
  EXPECT_EQ(dataset->metric(), TaskMetric::kLoss);
}

TEST(SyntheticSequenceClassificationTest, TokensWithinVocab) {
  auto dataset = MakeSyntheticSequenceClassification(50, 10, 2, 4);
  const Batch batch = dataset->TrainBatch(1, 3, 32);
  EXPECT_EQ(batch.inputs.cols(), 10u);
  for (float v : batch.inputs.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 50.0f);
    EXPECT_EQ(v, static_cast<float>(static_cast<int>(v)));  // integral
  }
}

TEST(SyntheticLanguageModelTest, LabelIsNextToken) {
  auto dataset = MakeSyntheticLanguageModel(30, 6, 5);
  const Batch batch = dataset->TrainBatch(0, 0, 64);
  EXPECT_EQ(batch.labels.size(), 64u);
  for (int label : batch.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 30);
  }
  // The chain is mostly deterministic: the plurality of rows ending in the
  // same token must share their label.
  EXPECT_TRUE(dataset->is_classification());
}

TEST(TrainingCasesTest, AllSevenCasesConstruct) {
  for (const std::string& key : TrainingCaseKeys()) {
    const TrainingCaseSpec spec = MakeTrainingCase(key);
    EXPECT_EQ(spec.key, key);
    auto dataset = spec.dataset_factory();
    ASSERT_NE(dataset, nullptr) << key;
    auto model = spec.model_factory(1);
    ASSERT_NE(model, nullptr) << key;
    EXPECT_GT(model->num_params(), 1000u) << key;
    // Model accepts a batch from its dataset end to end.
    const Batch batch = dataset->TrainBatch(0, 0, 4);
    const Matrix out = model->Forward(batch.inputs);
    EXPECT_EQ(out.rows(), 4u);
  }
}

TEST(TrainingCasesTest, UnknownCaseDies) {
  EXPECT_DEATH(MakeTrainingCase("alexnet"), "unknown training case");
}

TEST(ModelProfilesTest, TableTwoParameterCounts) {
  ASSERT_EQ(PaperModelProfiles().size(), 7u);
  EXPECT_EQ(ProfileByModel("VGG-16").num_params, 14'700'000u);
  EXPECT_EQ(ProfileByModel("VGG-19").num_params, 20'100'000u);
  EXPECT_EQ(ProfileByModel("ResNet-50").num_params, 23'500'000u);
  EXPECT_EQ(ProfileByModel("VGG-11").num_params, 9'200'000u);
  EXPECT_EQ(ProfileByModel("LSTM-IMDB").num_params, 35'200'000u);
  EXPECT_EQ(ProfileByModel("LSTM-PTB").num_params, 66'000'000u);
  EXPECT_EQ(ProfileByModel("BERT").num_params, 133'500'000u);
}

TEST(ProfileGradientGeneratorTest, DeterministicAndSorted) {
  ProfileGradientGenerator gen(1'000'000, 77);
  const SparseVector a = gen.Generate(3, 10, 5000);
  const SparseVector b = gen.Generate(3, 10, 5000);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 4000u);  // mild dedup shrinkage only
  EXPECT_TRUE(a.IndicesWithin(0, 1'000'000));
}

TEST(ProfileGradientGeneratorTest, WorkersOverlapPartially) {
  ProfileGradientGenerator gen(1'000'000, 77);
  const SparseVector a = gen.Generate(0, 5, 4000);
  const SparseVector b = gen.Generate(1, 5, 4000);
  std::set<GradIndex> sa(a.indices().begin(), a.indices().end());
  size_t shared = 0;
  for (GradIndex idx : b.indices()) shared += sa.count(idx);
  // Same hot windows -> some overlap; different streams -> far from total.
  EXPECT_GT(shared, b.size() / 50);
  EXPECT_LT(shared, b.size() / 2);
}

TEST(ProfileGradientGeneratorTest, SupportDriftsAcrossWindows) {
  ProfileGradientGenerator gen(1'000'000, 77, 32, /*drift_period=*/10);
  const SparseVector early = gen.Generate(0, 0, 3000);
  const SparseVector late = gen.Generate(0, 500, 3000);
  std::set<GradIndex> se(early.indices().begin(), early.indices().end());
  size_t shared = 0;
  for (GradIndex idx : late.indices()) shared += se.count(idx);
  EXPECT_LT(shared, late.size() / 4);  // windows moved
}

TEST(ProfileGradientGeneratorTest, SupportStableWithinWindow) {
  ProfileGradientGenerator gen(1'000'000, 77, 32, /*drift_period=*/100);
  const SparseVector a = gen.Generate(0, 10, 3000);
  const SparseVector b = gen.Generate(0, 11, 3000);
  std::set<GradIndex> sa(a.indices().begin(), a.indices().end());
  size_t shared = 0;
  for (GradIndex idx : b.indices()) shared += sa.count(idx);
  // Same windows, fresh per-iteration samples: moderate but real overlap.
  EXPECT_GT(shared, b.size() / 50);
}

}  // namespace
}  // namespace spardl
