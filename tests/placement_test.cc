// The team-placement planner: planned layouts are valid permutations,
// kContiguous reproduces the legacy CommGroup layouts bit-for-bit, the
// registry surfaces bad team shapes as InvalidArgument instead of dying on
// a CHECK, and — the headline regression — rack-local teams beat
// interleaved ones on a contended oversubscribed fat-tree under both
// charge engines, bit-identically across runs under the event engine.

#include "topo/placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "baselines/registry.h"
#include "core/spar_reduce_scatter.h"
#include "simnet/cluster.h"
#include "test_util.h"
#include "topo/topologies.h"
#include "topo/topology_spec.h"

namespace spardl {
namespace {

using ::spardl::testing::RandomGradient;

TEST(PlacementPolicyTest, NamesRoundTripThroughParse) {
  for (PlacementPolicy policy : AllPlacementPolicies()) {
    auto parsed = ParsePlacementPolicy(PlacementPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  auto rack = ParsePlacementPolicy("rack");
  ASSERT_TRUE(rack.ok());
  EXPECT_EQ(*rack, PlacementPolicy::kRackLocal);
  auto bad = ParsePlacementPolicy("diagonal");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

std::vector<TopologySpec> PlannableSpecs(int p) {
  const CostModel cm = CostModel::Ethernet();
  std::vector<TopologySpec> specs = {
      TopologySpec::Flat(p, cm), TopologySpec::Star(p, cm),
      TopologySpec::Ring(p, cm),
      TopologySpec::FatTree(p, /*rack_size=*/3, /*oversub=*/4.0, cm),
      TopologySpec::FatTree(p, /*rack_size=*/2, /*oversub=*/4.0, cm)};
  if (p % 2 == 0) specs.push_back(TopologySpec::Torus(p / 2, 2, cm));
  return specs;
}

// Every planned placement must be a bijection rank <-> (team, position)
// with every team exactly P/d strong, on every fabric and policy.
TEST(PlanPlacementTest, PlannedLayoutsArePermutations) {
  for (int p : {8, 12}) {
    for (const TopologySpec& spec : PlannableSpecs(p)) {
      for (int d = 1; d <= p; ++d) {
        if (p % d != 0) continue;
        for (PlacementPolicy policy : AllPlacementPolicies()) {
          auto planned = PlanPlacement(spec, p, d, policy);
          ASSERT_TRUE(planned.ok())
              << spec.Describe() << " d=" << d << " "
              << PlacementPolicyName(policy) << ": "
              << planned.status().ToString();
          const TeamPlacement& placement = *planned;
          EXPECT_EQ(placement.num_workers(), p);
          EXPECT_EQ(placement.num_teams(), d);
          EXPECT_EQ(placement.team_size(), p / d);
          std::set<int> seen;
          for (int t = 0; t < d; ++t) {
            const std::vector<int> members = placement.TeamMembers(t);
            ASSERT_EQ(static_cast<int>(members.size()), p / d);
            for (int pos = 0; pos < p / d; ++pos) {
              const int rank = members[static_cast<size_t>(pos)];
              ASSERT_GE(rank, 0);
              ASSERT_LT(rank, p);
              EXPECT_TRUE(seen.insert(rank).second)
                  << "rank " << rank << " placed twice";
              EXPECT_EQ(placement.GlobalRank(t, pos), rank);
              EXPECT_EQ(placement.TeamOf(rank), t);
              EXPECT_EQ(placement.PositionOf(rank), pos);
            }
          }
          EXPECT_EQ(static_cast<int>(seen.size()), p);
        }
      }
    }
  }
}

// The tentpole's backward-compatibility contract: the kContiguous planner
// output drives CommGroup::Team/CrossTeam to *exactly* the groups the
// legacy ContiguousTeam/SamePositionAcrossTeams factories build.
TEST(PlacementCommGroupTest, ContiguousMatchesLegacyFactoriesExactly) {
  const int p = 12;
  for (int d : {1, 2, 3, 4, 6, 12}) {
    auto planned =
        PlanPlacement(TopologySpec::Flat(p), p, d, PlacementPolicy::kContiguous);
    ASSERT_TRUE(planned.ok());
    const TeamPlacement placement = *planned;
    Cluster cluster(p, CostModel::Free());
    cluster.Run([&](Comm& comm) {
      const int team = comm.rank() / (p / d);
      const CommGroup legacy_team =
          CommGroup::ContiguousTeam(comm, d, team);
      const CommGroup placed_team = CommGroup::Team(comm, placement);
      EXPECT_EQ(placed_team.ranks, legacy_team.ranks);
      EXPECT_EQ(placed_team.my_pos, legacy_team.my_pos);

      const CommGroup legacy_cross =
          CommGroup::SamePositionAcrossTeams(comm, d);
      const CommGroup placed_cross = CommGroup::CrossTeam(comm, placement);
      EXPECT_EQ(placed_cross.ranks, legacy_cross.ranks);
      EXPECT_EQ(placed_cross.my_pos, legacy_cross.my_pos);
    });
  }
}

// A SparDL instance given an explicit kContiguous placement must charge
// exactly (bit-for-bit) what the placement-free default charges.
TEST(PlacementCommGroupTest, ExplicitContiguousPlacementIsBitForBit) {
  const int p = 8;
  const size_t n = 4000;
  AlgorithmConfig config;
  config.n = n;
  config.k = 400;
  config.num_workers = p;
  config.num_teams = 2;

  std::vector<double> makespans;
  for (bool explicit_placement : {false, true}) {
    AlgorithmConfig run_config = config;
    if (explicit_placement) {
      auto planned = PlanPlacement(TopologySpec::Flat(p), p, 2,
                                   PlacementPolicy::kContiguous);
      ASSERT_TRUE(planned.ok());
      run_config.placement = *planned;
    }
    Cluster cluster(p, CostModel::Ethernet());
    std::vector<std::unique_ptr<SparseAllReduce>> algos(
        static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      auto created = CreateAlgorithm("spardl", run_config);
      ASSERT_TRUE(created.ok());
      algos[static_cast<size_t>(r)] = std::move(*created);
    }
    for (int iter = 0; iter < 3; ++iter) {
      cluster.Run([&](Comm& comm) {
        std::vector<float> grad = RandomGradient(
            n, 99 + static_cast<uint64_t>(comm.rank()) +
                   1000 * static_cast<uint64_t>(iter));
        algos[static_cast<size_t>(comm.rank())]->Run(comm, grad);
      });
    }
    makespans.push_back(cluster.MaxSimSeconds());
  }
  EXPECT_EQ(makespans[0], makespans[1]);  // exact, not EXPECT_DOUBLE_EQ
}

TEST(PlanPlacementTest, RackLocalNeverStraddlesWhenTeamSizeDivides) {
  const int p = 16;
  const TopologySpec spec =
      TopologySpec::FatTree(p, /*rack_size=*/4, /*oversub=*/8.0);
  for (int d : {4, 8}) {  // team sizes 4 and 2 both divide the rack size
    auto planned = PlanPlacement(spec, p, d, PlacementPolicy::kRackLocal);
    ASSERT_TRUE(planned.ok());
    for (int t = 0; t < d; ++t) {
      const std::vector<int> members = (*planned).TeamMembers(t);
      for (int rank : members) {
        EXPECT_EQ(rank / spec.rack_size, members[0] / spec.rack_size)
            << "team " << t << " straddles racks";
      }
    }
  }
}

// Misaligned racks (rank 2 shares a rack with 0..2, not with 3): the
// planner keeps whole teams inside racks where they fit and only the
// leftover team crosses.
TEST(PlanPlacementTest, RackLocalPacksMisalignedRacks) {
  const TopologySpec spec =
      TopologySpec::FatTree(8, /*rack_size=*/3, /*oversub=*/4.0);
  auto planned = PlanPlacement(spec, 8, 4, PlacementPolicy::kRackLocal);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ((*planned).TeamMembers(0), (std::vector<int>{0, 1}));
  EXPECT_EQ((*planned).TeamMembers(1), (std::vector<int>{3, 4}));
  EXPECT_EQ((*planned).TeamMembers(2), (std::vector<int>{6, 7}));
  EXPECT_EQ((*planned).TeamMembers(3), (std::vector<int>{2, 5}));
}

TEST(PlanPlacementTest, InterleavedDealsConsecutiveRanksAcrossTeams) {
  auto planned = PlanPlacement(TopologySpec::Flat(8), 8, 2,
                               PlacementPolicy::kInterleaved);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ((*planned).TeamMembers(0), (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ((*planned).TeamMembers(1), (std::vector<int>{1, 3, 5, 7}));
}

TEST(PlanPlacementTest, RejectsBadShapes) {
  const TopologySpec flat8 = TopologySpec::Flat(8);
  EXPECT_EQ(PlanPlacement(flat8, 8, 0, PlacementPolicy::kContiguous)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PlanPlacement(flat8, 8, 3, PlacementPolicy::kRackLocal)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // The spec's own worker count must agree with the placement's.
  EXPECT_EQ(PlanPlacement(flat8, 4, 2, PlacementPolicy::kContiguous)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  auto duplicate = TeamPlacement::FromMembers({0, 1, 1, 3}, 2,
                                              PlacementPolicy::kContiguous);
  EXPECT_EQ(duplicate.status().code(), StatusCode::kInvalidArgument);
  auto out_of_range = TeamPlacement::FromMembers({0, 1, 2, 7}, 2,
                                                 PlacementPolicy::kContiguous);
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);
}

// The registry boundary (satellite bugfix): a team shape that cannot run —
// a d that does not divide P, or a placement planned for a different
// cluster — must surface as InvalidArgument from CreateAlgorithm, not die
// on a SPARDL_CHECK inside the CommGroup machinery mid-run.
TEST(RegistryTeamShapeTest, InvalidTeamCountReturnsStatusNotDeath) {
  AlgorithmConfig config;
  config.n = 1000;
  config.k = 10;
  config.num_workers = 8;
  for (int bad_d : {0, -2, 5, 7}) {
    config.num_teams = bad_d;
    auto created = CreateAlgorithm("spardl", config);
    ASSERT_FALSE(created.ok()) << "d=" << bad_d;
    EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument)
        << "d=" << bad_d;
  }
}

TEST(RegistryTeamShapeTest, MismatchedPlacementReturnsStatusNotDeath) {
  AlgorithmConfig config;
  config.n = 1000;
  config.k = 10;
  config.num_workers = 8;
  config.num_teams = 2;

  // Placement planned for a 4-worker cluster, run asks for 8.
  auto wrong_workers = PlanPlacement(TopologySpec::Flat(4), 4, 2,
                                     PlacementPolicy::kContiguous);
  ASSERT_TRUE(wrong_workers.ok());
  config.placement = *wrong_workers;
  auto created = CreateAlgorithm("spardl", config);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);

  // Placement holds 4 teams, run asks for 2.
  auto wrong_teams = PlanPlacement(TopologySpec::Flat(8), 8, 4,
                                   PlacementPolicy::kContiguous);
  ASSERT_TRUE(wrong_teams.ok());
  config.placement = *wrong_teams;
  created = CreateAlgorithm("spardl", config);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);

  // A matching placement builds fine.
  auto good = PlanPlacement(TopologySpec::Flat(8), 8, 2,
                            PlacementPolicy::kRackLocal);
  ASSERT_TRUE(good.ok());
  config.placement = *good;
  created = CreateAlgorithm("spardl", config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
}

// The synchronous-SGD invariant must survive any layout: every worker ends
// each iteration with the bit-identical global gradient even when teams
// are scattered across racks.
TEST(PlacementConsistencyTest, AllWorkersIdenticalUnderAnyPlacement) {
  const int p = 8;
  const size_t n = 480;
  const size_t k = 48;
  const TopologySpec spec =
      TopologySpec::FatTree(p, /*rack_size=*/2, /*oversub=*/4.0);
  for (PlacementPolicy policy :
       {PlacementPolicy::kRackLocal, PlacementPolicy::kInterleaved}) {
    auto planned = PlanPlacement(spec, p, 2, policy);
    ASSERT_TRUE(planned.ok());
    AlgorithmConfig config;
    config.n = n;
    config.k = k;
    config.num_workers = p;
    config.num_teams = 2;
    config.placement = *planned;

    Cluster cluster(spec);
    std::vector<std::unique_ptr<SparseAllReduce>> algos(
        static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      auto created = CreateAlgorithm("spardl", config);
      ASSERT_TRUE(created.ok());
      algos[static_cast<size_t>(r)] = std::move(*created);
    }
    std::vector<SparseVector> outputs(static_cast<size_t>(p));
    for (int iter = 0; iter < 3; ++iter) {
      cluster.Run([&](Comm& comm) {
        std::vector<float> grad = RandomGradient(
            n, 7 + static_cast<uint64_t>(comm.rank()) +
                   100 * static_cast<uint64_t>(iter));
        outputs[static_cast<size_t>(comm.rank())] =
            algos[static_cast<size_t>(comm.rank())]->Run(comm, grad);
      });
      for (int r = 1; r < p; ++r) {
        EXPECT_EQ(outputs[static_cast<size_t>(r)], outputs[0])
            << PlacementPolicyName(policy) << " iter " << iter << " rank "
            << r;
      }
    }
  }
}

// Measures the max per-worker comm seconds of one SRS round per team on
// `spec`, with teams laid out by `policy`. Pure SRS — the phase whose
// traffic the placement is supposed to keep rack-local.
double SrsCommSeconds(const TopologySpec& spec, int num_teams,
                      PlacementPolicy policy) {
  const int p = spec.num_workers;
  const size_t n = 4000;
  auto planned = PlanPlacement(spec, p, num_teams, policy);
  SPARDL_CHECK(planned.ok()) << planned.status().ToString();
  const TeamPlacement placement = *planned;
  Cluster cluster(spec);
  cluster.Run([&](Comm& comm) {
    const std::vector<float> grad = RandomGradient(
        n, 31 + static_cast<uint64_t>(comm.rank()));
    const CommGroup team = CommGroup::Team(comm, placement);
    SrsOptions options;
    options.k = 400;
    SparReduceScatter(comm, team, grad, options, nullptr);
    comm.BarrierSyncClocks();
  });
  double comm_seconds = 0.0;
  for (int r = 0; r < p; ++r) {
    comm_seconds =
        std::max(comm_seconds, cluster.comm(r).stats().comm_seconds);
  }
  return comm_seconds;
}

// Max per-worker comm seconds of two full SparDL updates (SRS + SAG +
// intra-team all-gather) on `spec` under `policy` — the per-update metric
// the acceptance criterion is stated in.
double PerUpdateCommSeconds(const TopologySpec& spec, int num_teams,
                            PlacementPolicy policy) {
  const int p = spec.num_workers;
  const size_t n = 4000;
  auto planned = PlanPlacement(spec, p, num_teams, policy);
  SPARDL_CHECK(planned.ok()) << planned.status().ToString();
  AlgorithmConfig config;
  config.n = n;
  config.k = 400;
  config.num_workers = p;
  config.num_teams = num_teams;
  config.placement = *planned;
  Cluster cluster(spec);
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto created = CreateAlgorithm("spardl", config);
    SPARDL_CHECK(created.ok()) << created.status().ToString();
    algos[static_cast<size_t>(r)] = std::move(*created);
  }
  for (int iter = 0; iter < 2; ++iter) {
    cluster.Run([&](Comm& comm) {
      std::vector<float> grad = RandomGradient(
          n, 31 + static_cast<uint64_t>(comm.rank()) +
                 1000 * static_cast<uint64_t>(iter));
      algos[static_cast<size_t>(comm.rank())]->Run(comm, grad);
      comm.BarrierSyncClocks();
    });
  }
  double comm_seconds = 0.0;
  for (int r = 0; r < p; ++r) {
    comm_seconds =
        std::max(comm_seconds, cluster.comm(r).stats().comm_seconds);
  }
  return comm_seconds;
}

// The acceptance regression: on a contended oversubscribed fat-tree where
// teams fit inside racks — `fattree:2x4` with d = 2 (P = 4, teams of
// two), and the larger `fattree:4x4` with d = 2 (P = 8, teams of four) —
// rack-local teams yield strictly lower SRS *and* per-update comm time
// than interleaved ones, under both charge engines. (When a team is
// forced to straddle racks, e.g. teams of four over racks of two, the
// layouts converge: some worker crosses the trunk every SRS round no
// matter the placement — which is exactly why the planner packs teams
// into racks whenever team_size divides the rack size.)
TEST(PlacementContentionTest, RackLocalBeatsInterleavedOnBothEngines) {
  for (ChargeEngine engine :
       {ChargeEngine::kBusyUntil, ChargeEngine::kEventOrdered}) {
    for (TopologySpec spec :
         {TopologySpec::FatTree(4, /*rack_size=*/2, /*oversub=*/4.0),
          TopologySpec::FatTree(8, /*rack_size=*/4, /*oversub=*/4.0)}) {
      spec.engine = engine;
      const double rack_srs =
          SrsCommSeconds(spec, 2, PlacementPolicy::kRackLocal);
      const double interleaved_srs =
          SrsCommSeconds(spec, 2, PlacementPolicy::kInterleaved);
      EXPECT_LT(rack_srs, interleaved_srs)
          << spec.Describe() << " engine " << ChargeEngineName(engine);
      const double rack_update =
          PerUpdateCommSeconds(spec, 2, PlacementPolicy::kRackLocal);
      const double interleaved_update =
          PerUpdateCommSeconds(spec, 2, PlacementPolicy::kInterleaved);
      EXPECT_LT(rack_update, interleaved_update)
          << spec.Describe() << " engine " << ChargeEngineName(engine);
    }
  }
}

TEST(PlacementContentionTest, EventEngineTimesBitIdenticalAcrossRuns) {
  TopologySpec spec =
      TopologySpec::FatTree(8, /*rack_size=*/4, /*oversub=*/4.0);
  spec.engine = ChargeEngine::kEventOrdered;
  for (PlacementPolicy policy :
       {PlacementPolicy::kRackLocal, PlacementPolicy::kInterleaved}) {
    const double srs_first = SrsCommSeconds(spec, 2, policy);
    const double update_first = PerUpdateCommSeconds(spec, 2, policy);
    for (int run = 0; run < 3; ++run) {
      EXPECT_EQ(SrsCommSeconds(spec, 2, policy), srs_first)  // exact
          << PlacementPolicyName(policy) << " run " << run;
      EXPECT_EQ(PerUpdateCommSeconds(spec, 2, policy), update_first)
          << PlacementPolicyName(policy) << " run " << run;
    }
  }
}

}  // namespace
}  // namespace spardl
