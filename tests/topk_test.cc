#include "sparse/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"

namespace spardl {
namespace {

SparseVector Make(std::vector<GradIndex> idx, std::vector<float> val) {
  return SparseVector(std::move(idx), std::move(val));
}

TEST(TopKSparseTest, SelectsLargestAbsoluteValues) {
  SparseVector in = Make({0, 1, 2, 3}, {0.1f, -5.0f, 3.0f, -0.2f});
  SparseVector kept;
  SparseVector discarded;
  TopKSparse(in, 2, &kept, &discarded);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept.index(0), 1u);  // -5.0
  EXPECT_EQ(kept.index(1), 2u);  // 3.0
  ASSERT_EQ(discarded.size(), 2u);
  EXPECT_EQ(discarded.index(0), 0u);
  EXPECT_EQ(discarded.index(1), 3u);
}

TEST(TopKSparseTest, TiesBreakTowardLowerIndex) {
  SparseVector in = Make({10, 20, 30}, {1.0f, -1.0f, 1.0f});
  SparseVector kept;
  TopKSparse(in, 2, &kept);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept.index(0), 10u);
  EXPECT_EQ(kept.index(1), 20u);
}

TEST(TopKSparseTest, KBeyondSizeKeepsEverything) {
  SparseVector in = Make({1, 2}, {1.0f, 2.0f});
  SparseVector kept;
  SparseVector discarded;
  TopKSparse(in, 10, &kept, &discarded);
  EXPECT_EQ(kept.size(), 2u);
  EXPECT_TRUE(discarded.empty());
}

TEST(TopKSparseTest, KZeroDiscardsEverything) {
  SparseVector in = Make({1, 2}, {1.0f, 2.0f});
  SparseVector kept;
  SparseVector discarded;
  TopKSparse(in, 0, &kept, &discarded);
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(discarded.size(), 2u);
}

TEST(TopKDenseTest, AppliesBaseIndexAndIgnoresZeros) {
  const std::vector<float> dense = {0.0f, 4.0f, 0.0f, -1.0f, 2.0f};
  SparseVector kept;
  SparseVector discarded;
  TopKDense(dense, 50, 2, &kept, &discarded);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept.index(0), 51u);
  EXPECT_EQ(kept.index(1), 54u);
  // The zero entries are neither kept nor discarded.
  ASSERT_EQ(discarded.size(), 1u);
  EXPECT_EQ(discarded.index(0), 53u);
}

TEST(TopKDenseTest, AllZerosYieldsNothing) {
  const std::vector<float> dense(8, 0.0f);
  SparseVector kept;
  SparseVector discarded;
  TopKDense(dense, 0, 3, &kept, &discarded);
  EXPECT_TRUE(kept.empty());
  EXPECT_TRUE(discarded.empty());
}

TEST(TopKDenseTest, KeepAllNonZerosWhenKLarge) {
  const std::vector<float> dense = {1.0f, 0.0f, -2.0f};
  SparseVector kept;
  TopKDense(dense, 0, 5, &kept);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(ThresholdSelectTest, InclusiveBoundary) {
  SparseVector in = Make({0, 1, 2}, {0.5f, -1.0f, 1.5f});
  SparseVector kept;
  SparseVector discarded;
  const size_t n = ThresholdSelect(in, 1.0f, &kept, &discarded);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(kept.index(0), 1u);  // |-1.0| >= 1.0 inclusive
  EXPECT_EQ(discarded.size(), 1u);
}

TEST(KthLargestAbsTest, MatchesSortedOrder) {
  const std::vector<float> dense = {0.5f, -3.0f, 1.0f, 0.0f, 2.0f};
  EXPECT_FLOAT_EQ(KthLargestAbs(dense, 1), 3.0f);
  EXPECT_FLOAT_EQ(KthLargestAbs(dense, 2), 2.0f);
  EXPECT_FLOAT_EQ(KthLargestAbs(dense, 4), 0.5f);
}

TEST(KthLargestAbsTest, KBeyondNonZerosReturnsZero) {
  const std::vector<float> dense = {1.0f, 0.0f};
  EXPECT_FLOAT_EQ(KthLargestAbs(dense, 2), 0.0f);
  EXPECT_FLOAT_EQ(KthLargestAbs(dense, 0), 0.0f);
}

// Property sweep: kept/discarded partition the input; the kept set
// dominates the discarded set in magnitude.
class TopKPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKPropertyTest, PartitionAndDominance) {
  const size_t k = GetParam();
  Rng rng(k * 977 + 13);
  SparseVector in;
  GradIndex idx = 0;
  for (int i = 0; i < 200; ++i) {
    idx += 1 + static_cast<GradIndex>(rng.NextBounded(5));
    in.PushBack(idx, static_cast<float>(rng.NextGaussian()));
  }
  SparseVector kept;
  SparseVector discarded;
  TopKSparse(in, k, &kept, &discarded);

  EXPECT_EQ(kept.size(), std::min(k, in.size()));
  EXPECT_EQ(kept.size() + discarded.size(), in.size());

  // Union of supports reproduces the input exactly.
  SparseVector merged;
  MergeSum(kept, discarded, &merged);
  EXPECT_EQ(merged, in);

  // Dominance: min |kept| >= max |discarded|.
  float min_kept = 1e30f;
  for (size_t i = 0; i < kept.size(); ++i) {
    min_kept = std::min(min_kept, std::fabs(kept.value(i)));
  }
  float max_discarded = 0.0f;
  for (size_t i = 0; i < discarded.size(); ++i) {
    max_discarded = std::max(max_discarded, std::fabs(discarded.value(i)));
  }
  if (!kept.empty() && !discarded.empty()) {
    EXPECT_GE(min_kept, max_discarded);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopKPropertyTest,
                         ::testing::Values(0, 1, 5, 50, 199, 200, 500));

TEST(TopKSelectorTest, ReusableAcrossCalls) {
  TopKSelector selector;
  SparseVector kept;
  for (int round = 0; round < 3; ++round) {
    SparseVector in = Make({0, 1, 2}, {1.0f, 2.0f, 3.0f});
    selector.SelectSparse(in, 1, &kept, nullptr);
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept.index(0), 2u);
  }
}

}  // namespace
}  // namespace spardl
