// Shared gtest main for every suite. The simulated cluster runs one real
// thread per worker, and gtest's default "fast" death-test style forks
// straight out of a (potentially) multi-threaded process, which is
// undefined behaviour; "threadsafe" re-executes the test binary instead.
// Set before InitGoogleTest so --gtest_death_test_style on the command
// line still wins.

#include <gtest/gtest.h>

int main(int argc, char** argv) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
