#include "sparse/sparse_vector.h"

#include <gtest/gtest.h>

#include <vector>

namespace spardl {
namespace {

SparseVector Make(std::vector<GradIndex> idx, std::vector<float> val) {
  return SparseVector(std::move(idx), std::move(val));
}

TEST(SparseVectorTest, DefaultIsEmpty) {
  SparseVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.WireWords(), 0u);
}

TEST(SparseVectorTest, FromDenseSkipsZeros) {
  const std::vector<float> dense = {0.0f, 1.5f, 0.0f, -2.0f, 0.0f};
  SparseVector v = SparseVector::FromDense(dense);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.index(0), 1u);
  EXPECT_FLOAT_EQ(v.value(0), 1.5f);
  EXPECT_EQ(v.index(1), 3u);
  EXPECT_FLOAT_EQ(v.value(1), -2.0f);
}

TEST(SparseVectorTest, FromDenseAppliesBaseIndex) {
  const std::vector<float> dense = {1.0f, 0.0f, 2.0f};
  SparseVector v = SparseVector::FromDense(dense, 100);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.index(0), 100u);
  EXPECT_EQ(v.index(1), 102u);
}

TEST(SparseVectorTest, ConstructorRejectsUnsortedIndices) {
  EXPECT_DEATH(Make({3, 1}, {1.0f, 2.0f}), "ascending");
}

TEST(SparseVectorTest, ConstructorRejectsDuplicateIndices) {
  EXPECT_DEATH(Make({2, 2}, {1.0f, 2.0f}), "ascending");
}

TEST(SparseVectorTest, ConstructorRejectsLengthMismatch) {
  EXPECT_DEATH(SparseVector({1, 2}, {1.0f}), "");
}

// The boundary CHECK is a plain CHECK (not DCHECK), so these fire in
// NDEBUG/RelWithDebInfo builds too.
TEST(SparseVectorTest, AddToDenseRejectsOutOfRangeIndices) {
  SparseVector v = Make({1, 5}, {1.0f, 2.0f});
  std::vector<float> dense(5, 0.0f);
  EXPECT_DEATH(v.AddToDense(dense), "");
}

TEST(SparseVectorTest, ScatterToDenseRejectsOutOfRangeIndices) {
  SparseVector v = Make({1, 5}, {1.0f, 2.0f});
  std::vector<float> dense(5, 0.0f);
  EXPECT_DEATH(v.ScatterToDense(dense), "");
}

TEST(SparseVectorTest, WireWordsIsTwoPerEntry) {
  SparseVector v = Make({1, 5, 9}, {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(v.WireWords(), 6u);
}

TEST(SparseVectorTest, ValueSumAndAbsSum) {
  SparseVector v = Make({0, 1, 2}, {1.0f, -2.5f, 3.0f});
  EXPECT_DOUBLE_EQ(v.ValueSum(), 1.5);
  EXPECT_DOUBLE_EQ(v.AbsSum(), 6.5);
}

TEST(SparseVectorTest, IndicesWithin) {
  SparseVector v = Make({5, 9}, {1.0f, 2.0f});
  EXPECT_TRUE(v.IndicesWithin(5, 10));
  EXPECT_FALSE(v.IndicesWithin(6, 10));
  EXPECT_FALSE(v.IndicesWithin(5, 9));
  EXPECT_TRUE(SparseVector().IndicesWithin(0, 0));
}

TEST(SparseVectorTest, AddToDenseAccumulates) {
  std::vector<float> dense = {1.0f, 1.0f, 1.0f};
  Make({0, 2}, {0.5f, -1.0f}).AddToDense(dense);
  EXPECT_FLOAT_EQ(dense[0], 1.5f);
  EXPECT_FLOAT_EQ(dense[1], 1.0f);
  EXPECT_FLOAT_EQ(dense[2], 0.0f);
}

TEST(SparseVectorTest, ScatterToDenseOverwrites) {
  std::vector<float> dense = {1.0f, 1.0f, 1.0f};
  Make({0, 2}, {0.5f, -1.0f}).ScatterToDense(dense);
  EXPECT_FLOAT_EQ(dense[0], 0.5f);
  EXPECT_FLOAT_EQ(dense[1], 1.0f);
  EXPECT_FLOAT_EQ(dense[2], -1.0f);
}

TEST(SparseVectorTest, ExtractRangeSelectsHalfOpenInterval) {
  SparseVector v = Make({2, 4, 6, 8}, {1.0f, 2.0f, 3.0f, 4.0f});
  SparseVector out;
  v.ExtractRange(4, 8, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.index(0), 4u);
  EXPECT_EQ(out.index(1), 6u);
}

TEST(SparseVectorTest, ExtractRangeEmptyAndFull) {
  SparseVector v = Make({2, 4}, {1.0f, 2.0f});
  SparseVector out;
  v.ExtractRange(5, 5, &out);
  EXPECT_TRUE(out.empty());
  v.ExtractRange(0, 100, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(SparseVectorTest, AppendSpanAppendsAboveCurrentLast) {
  SparseVector v = Make({1, 4}, {1.0f, 2.0f});
  const std::vector<GradIndex> idx = {7, 9};
  const std::vector<float> val = {3.0f, 4.0f};
  v.AppendSpan(idx, val);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v.index(2), 7u);
  EXPECT_FLOAT_EQ(v.value(3), 4.0f);
}

TEST(SparseVectorTest, AppendSpanEmptyIsNoOp) {
  SparseVector v = Make({1}, {1.0f});
  v.AppendSpan({}, {});
  EXPECT_EQ(v.size(), 1u);
  SparseVector empty;
  empty.AppendSpan({}, {});
  EXPECT_TRUE(empty.empty());
}

TEST(SparseVectorTest, AppendSpanOntoEmptyVector) {
  SparseVector v;
  const std::vector<GradIndex> idx = {0, 2};
  const std::vector<float> val = {1.0f, 2.0f};
  v.AppendSpan(idx, val);
  EXPECT_EQ(v.size(), 2u);
}

// The boundary CHECK survives NDEBUG: a span starting at or below the
// current last index dies in every build type.
TEST(SparseVectorTest, AppendSpanRejectsOverlappingBoundary) {
  SparseVector v = Make({5}, {1.0f});
  const std::vector<GradIndex> idx = {5};
  const std::vector<float> val = {2.0f};
  EXPECT_DEATH(v.AppendSpan(idx, val), "");
}

TEST(SparseVectorTest, AppendSpanRejectsMismatchedLengths) {
  SparseVector v;
  const std::vector<GradIndex> idx = {1, 2};
  const std::vector<float> val = {1.0f};
  EXPECT_DEATH(v.AppendSpan(idx, val), "");
}

// ExtractRange appends through AppendSpan, so its documented "out must end
// below lo" contract is now boundary-CHECKed in release builds too.
TEST(SparseVectorTest, ExtractRangeRejectsOutEndingAboveLo) {
  SparseVector v = Make({2, 4}, {1.0f, 2.0f});
  SparseVector out = Make({3}, {9.0f});
  EXPECT_DEATH(v.ExtractRange(2, 5, &out), "");
}

TEST(MergeSumTest, DisjointUnion) {
  SparseVector out;
  MergeSum(Make({1, 3}, {1.0f, 3.0f}), Make({2, 4}, {2.0f, 4.0f}), &out);
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out.index(i), i + 1);
    EXPECT_FLOAT_EQ(out.value(i), static_cast<float>(i + 1));
  }
}

TEST(MergeSumTest, OverlappingIndicesSum) {
  SparseVector out;
  MergeSum(Make({1, 2}, {1.0f, 1.0f}), Make({2, 3}, {2.0f, 2.0f}), &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FLOAT_EQ(out.value(1), 3.0f);  // index 2 overlapped
}

TEST(MergeSumTest, EmptyOperands) {
  SparseVector out;
  MergeSum(SparseVector(), Make({1}, {1.0f}), &out);
  EXPECT_EQ(out.size(), 1u);
  MergeSum(Make({1}, {1.0f}), SparseVector(), &out);
  EXPECT_EQ(out.size(), 1u);
  MergeSum(SparseVector(), SparseVector(), &out);
  EXPECT_TRUE(out.empty());
}

TEST(MergeSumTest, InPlaceAccumulation) {
  SparseVector acc = Make({1}, {1.0f});
  SparseVector scratch;
  MergeSumInPlace(&acc, Make({1, 2}, {1.0f, 2.0f}), &scratch);
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_FLOAT_EQ(acc.value(0), 2.0f);
}

TEST(MergeSumTest, SumAllIsLeftToRight) {
  std::vector<SparseVector> inputs = {Make({1}, {1.0f}), Make({1}, {2.0f}),
                                      Make({2}, {4.0f})};
  SparseVector sum = SumAll(inputs);
  ASSERT_EQ(sum.size(), 2u);
  EXPECT_FLOAT_EQ(sum.value(0), 3.0f);
  EXPECT_FLOAT_EQ(sum.value(1), 4.0f);
}

TEST(ConcatDisjointTest, PreservesOrder) {
  std::vector<SparseVector> parts = {Make({0, 1}, {1.0f, 2.0f}),
                                     Make({5, 6}, {3.0f, 4.0f})};
  SparseVector out = ConcatDisjoint(parts);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.index(3), 6u);
}

TEST(ConcatDisjointTest, SkipsEmptyParts) {
  std::vector<SparseVector> parts = {SparseVector(), Make({3}, {1.0f}),
                                     SparseVector()};
  EXPECT_EQ(ConcatDisjoint(parts).size(), 1u);
}

TEST(ConcatDisjointTest, DiesOnInterleavedRanges) {
  std::vector<SparseVector> parts = {Make({5}, {1.0f}), Make({3}, {1.0f})};
  EXPECT_DEATH(ConcatDisjoint(parts), "");
}

}  // namespace
}  // namespace spardl
