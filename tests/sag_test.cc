#include "core/spar_all_gather.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sparse/block_partition.h"
#include "test_util.h"

namespace spardl {
namespace {

using ::spardl::testing::RunOnCluster;

// A per-rank block over a shared index range [0, 200) with partial overlap
// across ranks — the situation R-SAG/B-SAG face after team-level SRS.
SparseVector RankBlock(int rank, int entries) {
  Rng rng(1000 + static_cast<uint64_t>(rank));
  std::vector<float> dense(200, 0.0f);
  for (int i = 0; i < entries; ++i) {
    const size_t idx = rng.NextBounded(200);
    dense[idx] += static_cast<float>(rng.NextGaussian());
  }
  return SparseVector::FromDense(dense);
}

class RSagSweep : public ::testing::TestWithParam<int> {};

TEST_P(RSagSweep, AllReplicasIdenticalAndWithinBudget) {
  const int d = GetParam();
  const size_t target_l = 20;
  auto results = RunOnCluster<SparseVector>(d, [&](Comm& comm) {
    return RSag(comm, CommGroup::World(comm), RankBlock(comm.rank(), 30),
                target_l, nullptr);
  });
  for (int r = 1; r < d; ++r) {
    EXPECT_EQ(results[static_cast<size_t>(r)], results[0]) << "rank " << r;
  }
  if (d > 1) {
    EXPECT_LE(results[0].size(), target_l);
  }
}

TEST_P(RSagSweep, ExactSumWhenTargetLarge) {
  const int d = GetParam();
  std::vector<SparseVector> blocks;
  for (int r = 0; r < d; ++r) blocks.push_back(RankBlock(r, 30));
  const SparseVector expected = SumAll(blocks);
  auto results = RunOnCluster<SparseVector>(d, [&](Comm& comm) {
    return RSag(comm, CommGroup::World(comm),
                RankBlock(comm.rank(), 30), /*target_l=*/10000, nullptr);
  });
  for (int r = 0; r < d; ++r) {
    const SparseVector& got = results[static_cast<size_t>(r)];
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got.index(i), expected.index(i));
      EXPECT_NEAR(got.value(i), expected.value(i), 1e-4f);
    }
  }
}

// Scaled residual crediting must make the cluster-wide books balance:
// sum(inputs) == result + sum over workers of collected residuals.
TEST_P(RSagSweep, ScaledResidualsConserveMass) {
  const int d = GetParam();
  const size_t target_l = 15;
  double input_mass = 0.0;
  for (int r = 0; r < d; ++r) input_mass += RankBlock(r, 40).ValueSum();

  std::vector<double> residual_mass(static_cast<size_t>(d));
  auto results = RunOnCluster<SparseVector>(d, [&](Comm& comm) {
    ResidualStore residuals(200, ResidualMode::kGlobal);
    SparseVector out = RSag(comm, CommGroup::World(comm),
                            RankBlock(comm.rank(), 40), target_l, &residuals);
    residual_mass[static_cast<size_t>(comm.rank())] = residuals.MassSum();
    return out;
  });
  double total = results[0].ValueSum();
  for (double m : residual_mass) total += m;
  EXPECT_NEAR(total, input_mass, 1e-3) << "d=" << d;
}

TEST_P(RSagSweep, LatencyIsLog2dRounds) {
  const int d = GetParam();
  Cluster cluster(d, CostModel::Ethernet());
  cluster.Run([&](Comm& comm) {
    RSag(comm, CommGroup::World(comm), RankBlock(comm.rank(), 30), 20,
         nullptr);
  });
  int log2d = 0;
  while ((1 << log2d) < d) ++log2d;
  EXPECT_EQ(cluster.MaxMessagesReceived(), static_cast<uint64_t>(log2d));
}

INSTANTIATE_TEST_SUITE_P(TeamCounts, RSagSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(RSagTest, RejectsNonPowerOfTwo) {
  Cluster cluster(3, CostModel::Free());
  EXPECT_DEATH(cluster.Run([](Comm& comm) {
    RSag(comm, CommGroup::World(comm), RankBlock(comm.rank(), 10), 5,
         nullptr);
  }),
               "power-of-two");
}

class BSagSweep : public ::testing::TestWithParam<int> {};

TEST_P(BSagSweep, AllReplicasIdenticalAndWithinBudget) {
  const int d = GetParam();
  const size_t k = 60;
  const int p = d;  // one-worker teams: cross-team group is the world
  const size_t target_l = std::max<size_t>(1, k * d / p);
  auto results = RunOnCluster<SparseVector>(d, [&](Comm& comm) {
    ChunkAdjuster adjuster(k, p, d);
    return BSag(comm, CommGroup::World(comm), RankBlock(comm.rank(), 50),
                target_l, &adjuster, nullptr);
  });
  for (int r = 1; r < d; ++r) {
    EXPECT_EQ(results[static_cast<size_t>(r)], results[0]) << "rank " << r;
  }
  EXPECT_LE(results[0].size(), target_l);
}

TEST_P(BSagSweep, ResidualsConserveMass) {
  const int d = GetParam();
  const size_t k = 60;
  const size_t target_l = 30;
  double input_mass = 0.0;
  for (int r = 0; r < d; ++r) input_mass += RankBlock(r, 50).ValueSum();

  std::vector<double> residual_mass(static_cast<size_t>(d));
  auto results = RunOnCluster<SparseVector>(d, [&](Comm& comm) {
    ChunkAdjuster adjuster(k, d, d);
    ResidualStore residuals(200, ResidualMode::kGlobal);
    SparseVector out =
        BSag(comm, CommGroup::World(comm), RankBlock(comm.rank(), 50),
             target_l, &adjuster, &residuals);
    residual_mass[static_cast<size_t>(comm.rank())] = residuals.MassSum();
    return out;
  });
  double total = results[0].ValueSum();
  for (double m : residual_mass) total += m;
  EXPECT_NEAR(total, input_mass, 1e-3) << "d=" << d;
}

TEST_P(BSagSweep, ReportsObservedUnionAndLatency) {
  const int d = GetParam();
  Cluster cluster(d, CostModel::Ethernet());
  std::vector<size_t> unions(static_cast<size_t>(d));
  cluster.Run([&](Comm& comm) {
    ChunkAdjuster adjuster(60, d, d);
    size_t observed = 0;
    BSag(comm, CommGroup::World(comm), RankBlock(comm.rank(), 50), 30,
         &adjuster, nullptr, &observed);
    unions[static_cast<size_t>(comm.rank())] = observed;
  });
  for (int r = 0; r < d; ++r) {
    EXPECT_GT(unions[static_cast<size_t>(r)], 0u);
    EXPECT_EQ(unions[static_cast<size_t>(r)], unions[0]);
  }
  EXPECT_EQ(cluster.MaxMessagesReceived(),
            static_cast<uint64_t>(SrsBagLayout::NumSteps(d)));
}

INSTANTIATE_TEST_SUITE_P(TeamCounts, BSagSweep,
                         ::testing::Values(2, 3, 5, 6, 7, 12));

}  // namespace
}  // namespace spardl
