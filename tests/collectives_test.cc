#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "collectives/dense_collectives.h"
#include "collectives/sparse_allgather.h"
#include "sparse/block_partition.h"
#include "test_util.h"

namespace spardl {
namespace {

using ::spardl::testing::RunOnCluster;

SparseVector RankVector(int rank) {
  // Distinct, overlapping supports across ranks.
  SparseVector v;
  v.PushBack(static_cast<GradIndex>(rank), 1.0f + static_cast<float>(rank));
  v.PushBack(static_cast<GradIndex>(100 + 2 * rank), -1.0f);
  return v;
}

class AllGatherSweep : public ::testing::TestWithParam<int> {};

TEST_P(AllGatherSweep, BruckGathersAllPartsInOrder) {
  const int p = GetParam();
  auto results = RunOnCluster<std::vector<SparseVector>>(
      p, [](Comm& comm) {
        return BruckAllGather(comm, CommGroup::World(comm),
                              RankVector(comm.rank()));
      });
  for (int rank = 0; rank < p; ++rank) {
    ASSERT_EQ(results[static_cast<size_t>(rank)].size(),
              static_cast<size_t>(p));
    for (int j = 0; j < p; ++j) {
      EXPECT_EQ(results[static_cast<size_t>(rank)][static_cast<size_t>(j)],
                RankVector(j))
          << "P=" << p << " rank=" << rank << " part=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, AllGatherSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 14,
                                           16));

class RecursiveDoublingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RecursiveDoublingSweep, MatchesBruckSemantics) {
  const int p = GetParam();
  auto results = RunOnCluster<std::vector<SparseVector>>(
      p, [](Comm& comm) {
        return RecursiveDoublingAllGather(comm, CommGroup::World(comm),
                                          RankVector(comm.rank()));
      });
  for (int rank = 0; rank < p; ++rank) {
    for (int j = 0; j < p; ++j) {
      EXPECT_EQ(results[static_cast<size_t>(rank)][static_cast<size_t>(j)],
                RankVector(j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwo, RecursiveDoublingSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(BruckAllGatherTest, LatencyIsCeilLog2Rounds) {
  for (int p : {2, 3, 5, 8, 14}) {
    Cluster cluster(p, CostModel::Ethernet());
    cluster.Run([](Comm& comm) {
      BruckAllGather(comm, CommGroup::World(comm), RankVector(comm.rank()));
    });
    const int expected_rounds = SrsBagLayout::NumSteps(p);
    EXPECT_EQ(cluster.MaxMessagesReceived(),
              static_cast<uint64_t>(expected_rounds))
        << "P=" << p;
  }
}

TEST(BruckAllGatherTest, BandwidthIsOtherPartsOnce) {
  // Equal 2-entry parts: every worker must receive exactly (P-1) parts
  // => (P-1) * 4 words, the all-gather bandwidth lower bound.
  for (int p : {2, 3, 5, 8, 14}) {
    Cluster cluster(p, CostModel::Ethernet());
    cluster.Run([](Comm& comm) {
      BruckAllGather(comm, CommGroup::World(comm), RankVector(comm.rank()));
    });
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(cluster.comm(r).stats().words_received,
                static_cast<uint64_t>(4 * (p - 1)))
          << "P=" << p << " rank=" << r;
    }
  }
}

TEST(BruckAllGatherCountsTest, GathersScalars) {
  const int p = 6;
  auto results = RunOnCluster<std::vector<uint32_t>>(p, [](Comm& comm) {
    return BruckAllGatherCounts(comm, CommGroup::World(comm),
                                static_cast<uint32_t>(comm.rank() * 10));
  });
  for (int rank = 0; rank < p; ++rank) {
    for (int j = 0; j < p; ++j) {
      EXPECT_EQ(results[static_cast<size_t>(rank)][static_cast<size_t>(j)],
                static_cast<uint32_t>(j * 10));
    }
  }
}

class DenseAllReduceSweep
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(DenseAllReduceSweep, RingMatchesReference) {
  const auto [p, n] = GetParam();
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    grads.push_back(testing::RandomGradient(n, 77 + static_cast<uint64_t>(r)));
  }
  const std::vector<float> expected = testing::ReferenceSum(grads);
  auto results = RunOnCluster<std::vector<float>>(p, [&](Comm& comm) {
    std::vector<float> data = grads[static_cast<size_t>(comm.rank())];
    RingAllReduce(comm, CommGroup::World(comm), data);
    return data;
  });
  for (int r = 0; r < p; ++r) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(results[static_cast<size_t>(r)][i], expected[i], 1e-4f)
          << "P=" << p << " n=" << n << " rank=" << r << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DenseAllReduceSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(size_t{1}, size_t{7}, size_t{64},
                                         size_t{1000})));

class RabenseifnerSweep
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(RabenseifnerSweep, MatchesReference) {
  const auto [p, n] = GetParam();
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    grads.push_back(testing::RandomGradient(n, 31 + static_cast<uint64_t>(r)));
  }
  const std::vector<float> expected = testing::ReferenceSum(grads);
  auto results = RunOnCluster<std::vector<float>>(p, [&](Comm& comm) {
    std::vector<float> data = grads[static_cast<size_t>(comm.rank())];
    RabenseifnerAllReduce(comm, CommGroup::World(comm), data);
    return data;
  });
  for (int r = 0; r < p; ++r) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(results[static_cast<size_t>(r)][i], expected[i], 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RabenseifnerSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(size_t{8}, size_t{37}, size_t{129},
                                         size_t{1000})));

TEST(RabenseifnerTest, RejectsNonPowerOfTwo) {
  Cluster cluster(3, CostModel::Free());
  EXPECT_DEATH(
      cluster.Run([](Comm& comm) {
        std::vector<float> data(16, 1.0f);
        RabenseifnerAllReduce(comm, CommGroup::World(comm), data);
      }),
      "power-of-two");
}

TEST(DenseCollectivesTest, RoundCounts) {
  // Ring: 2(P-1) receives; Rabenseifner: 2 log2 P receives.
  {
    Cluster cluster(5, CostModel::Ethernet());
    cluster.Run([](Comm& comm) {
      std::vector<float> data(100, 1.0f);
      RingAllReduce(comm, CommGroup::World(comm), data);
    });
    EXPECT_EQ(cluster.MaxMessagesReceived(), 8u);
  }
  {
    Cluster cluster(8, CostModel::Ethernet());
    cluster.Run([](Comm& comm) {
      std::vector<float> data(128, 1.0f);
      RabenseifnerAllReduce(comm, CommGroup::World(comm), data);
    });
    EXPECT_EQ(cluster.MaxMessagesReceived(), 6u);
  }
}

TEST(DenseCollectivesTest, AutoPicksByGroupSize) {
  // Just exercises both dispatch paths for correctness.
  for (int p : {4, 6}) {
    std::vector<std::vector<float>> grads;
    for (int r = 0; r < p; ++r) {
      grads.push_back(
          testing::RandomGradient(50, 900 + static_cast<uint64_t>(r)));
    }
    const std::vector<float> expected = testing::ReferenceSum(grads);
    auto results = RunOnCluster<std::vector<float>>(p, [&](Comm& comm) {
      std::vector<float> data = grads[static_cast<size_t>(comm.rank())];
      DenseAllReduceAuto(comm, CommGroup::World(comm), data);
      return data;
    });
    for (size_t i = 0; i < 50; ++i) {
      EXPECT_NEAR(results[0][i], expected[i], 1e-4f);
    }
  }
}

TEST(CommGroupTest, ContiguousTeamsAndPositions) {
  Cluster cluster(6, CostModel::Free());
  cluster.Run([](Comm& comm) {
    const int team = comm.rank() / 3;
    CommGroup group = CommGroup::ContiguousTeam(comm, 2, team);
    EXPECT_EQ(group.size(), 3);
    EXPECT_EQ(group.my_pos, comm.rank() % 3);
    EXPECT_EQ(group.GlobalRank(group.my_pos), comm.rank());

    CommGroup cross = CommGroup::SamePositionAcrossTeams(comm, 2);
    EXPECT_EQ(cross.size(), 2);
    EXPECT_EQ(cross.my_pos, team);
    EXPECT_EQ(cross.GlobalRank(cross.my_pos), comm.rank());
  });
}

}  // namespace
}  // namespace spardl
