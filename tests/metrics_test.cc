#include "metrics/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace spardl {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "long header"});
  table.AddRow({"wide cell", "x"});
  const std::string out = table.ToString();
  // Three lines: header, separator, row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  // Every line has the same width.
  std::stringstream ss(out);
  std::string line;
  size_t width = 0;
  while (std::getline(ss, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
  EXPECT_NE(out.find("| wide cell |"), std::string::npos);
}

TEST(TablePrinterTest, RejectsMismatchedRow) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "");
}

TEST(WriteCsvTest, WritesColumnsWithPadding) {
  const std::string path = ::testing::TempDir() + "/spardl_test.csv";
  ASSERT_TRUE(WriteCsv(path, {"x", "y"}, {{1.0, 2.0, 3.0}, {10.0}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,10");
  std::getline(in, line);
  EXPECT_EQ(line, "2,");
  std::getline(in, line);
  EXPECT_EQ(line, "3,");
  std::remove(path.c_str());
}

TEST(WriteCsvTest, FailsOnBadPath) {
  EXPECT_FALSE(WriteCsv("/nonexistent-dir/x.csv", {"a"}, {{1.0}}));
}

}  // namespace
}  // namespace spardl
