// Property suite for PR 5's compute-kernel overhaul: the radix-select /
// warm-threshold selectors and the loser-tree / dense-accumulator SumAll
// must be BIT-IDENTICAL to the previous reference implementations
// (candidate-materialising nth_element selection; pairwise left-to-right
// MergeSum accumulation) on every input, including adversarial ones —
// heavy magnitude ties, all-equal values, denormals, +-0.0, and every k
// edge case. The references below are verbatim ports of the pre-PR code.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

#include "common/random.h"
#include "sparse/topk.h"

namespace spardl {
namespace {

// ---------------------------------------------------------------------------
// Reference implementations (the pre-radix-select kernels).

struct RefCandidate {
  float abs_value;
  uint32_t position;
};

bool RefGreater(const RefCandidate& a, const RefCandidate& b) {
  if (a.abs_value != b.abs_value) return a.abs_value > b.abs_value;
  return a.position < b.position;
}

std::vector<uint32_t> RefRank(std::vector<RefCandidate> candidates,
                              size_t k) {
  std::nth_element(candidates.begin(), candidates.begin() + (k - 1),
                   candidates.end(), RefGreater);
  std::vector<uint32_t> kept_positions;
  kept_positions.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    kept_positions.push_back(candidates[i].position);
  }
  std::sort(kept_positions.begin(), kept_positions.end());
  return kept_positions;
}

void RefSelectSparse(const SparseVector& input, size_t k, SparseVector* kept,
                     SparseVector* discarded) {
  kept->Clear();
  if (discarded != nullptr) discarded->Clear();
  if (k >= input.size()) {
    *kept = input;
    return;
  }
  if (k == 0) {
    if (discarded != nullptr) *discarded = input;
    return;
  }
  std::vector<RefCandidate> candidates;
  candidates.reserve(input.size());
  for (uint32_t i = 0; i < input.size(); ++i) {
    candidates.push_back({std::fabs(input.value(i)), i});
  }
  const std::vector<uint32_t> positions = RefRank(std::move(candidates), k);
  size_t next = 0;
  for (uint32_t i = 0; i < input.size(); ++i) {
    if (next < positions.size() && positions[next] == i) {
      kept->PushBack(input.index(i), input.value(i));
      ++next;
    } else if (discarded != nullptr) {
      discarded->PushBack(input.index(i), input.value(i));
    }
  }
}

void RefSelectDense(std::span<const float> dense, GradIndex base_index,
                    size_t k, SparseVector* kept, SparseVector* discarded) {
  kept->Clear();
  if (discarded != nullptr) discarded->Clear();
  std::vector<RefCandidate> candidates;
  for (uint32_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0f) candidates.push_back({std::fabs(dense[i]), i});
  }
  const size_t nnz = candidates.size();
  if (k >= nnz) {
    for (const RefCandidate& c : candidates) {
      kept->PushBack(base_index + c.position, dense[c.position]);
    }
    return;
  }
  if (k == 0) {
    if (discarded != nullptr) {
      for (const RefCandidate& c : candidates) {
        discarded->PushBack(base_index + c.position, dense[c.position]);
      }
    }
    return;
  }
  const std::vector<uint32_t> positions = RefRank(std::move(candidates), k);
  size_t next = 0;
  for (uint32_t i = 0; i < dense.size(); ++i) {
    if (dense[i] == 0.0f) continue;
    if (next < positions.size() && positions[next] == i) {
      kept->PushBack(base_index + i, dense[i]);
      ++next;
    } else if (discarded != nullptr) {
      discarded->PushBack(base_index + i, dense[i]);
    }
  }
}

void RefMergeSum(const SparseVector& a, const SparseVector& b,
                 SparseVector* out) {
  out->Clear();
  out->Reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const GradIndex ia = a.index(i);
    const GradIndex ib = b.index(j);
    if (ia < ib) {
      out->PushBack(ia, a.value(i));
      ++i;
    } else if (ib < ia) {
      out->PushBack(ib, b.value(j));
      ++j;
    } else {
      out->PushBack(ia, a.value(i) + b.value(j));
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) out->PushBack(a.index(i), a.value(i));
  for (; j < b.size(); ++j) out->PushBack(b.index(j), b.value(j));
}

SparseVector RefSumAll(std::span<const SparseVector> inputs) {
  SparseVector acc;
  SparseVector scratch;
  for (const SparseVector& x : inputs) {
    RefMergeSum(acc, x, &scratch);
    std::swap(acc, scratch);
  }
  return acc;
}

float RefKthLargestAbs(std::span<const float> dense, size_t k) {
  if (k == 0) return 0.0f;
  std::vector<float> abs_values;
  abs_values.reserve(dense.size());
  for (float v : dense) {
    if (v != 0.0f) abs_values.push_back(std::fabs(v));
  }
  if (k > abs_values.size()) return 0.0f;
  std::nth_element(abs_values.begin(), abs_values.begin() + (k - 1),
                   abs_values.end(), std::greater<float>());
  return abs_values[k - 1];
}

// ---------------------------------------------------------------------------
// Bit-level equality: operator== would treat -0.0f == +0.0f as equal, so
// the value arrays are compared as raw bytes.

bool BitIdentical(const SparseVector& a, const SparseVector& b) {
  if (a.size() != b.size()) return false;
  if (!std::equal(a.indices().begin(), a.indices().end(),
                  b.indices().begin())) {
    return false;
  }
  return a.empty() || std::memcmp(a.values().data(), b.values().data(),
                                  a.size() * sizeof(float)) == 0;
}

#define EXPECT_BIT_IDENTICAL(a, b) EXPECT_TRUE(BitIdentical((a), (b)))

// ---------------------------------------------------------------------------
// Adversarial value generators.

std::vector<float> GaussianValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(rng.NextGaussian());
  return out;
}

// Heavy magnitude ties: every value drawn from a tiny magnitude alphabet,
// signs mixed, exact zeros (and -0.0f) included.
std::vector<float> TiedValues(size_t n, uint64_t seed) {
  static constexpr float kAlphabet[] = {0.0f,  -0.0f, 1.0f,  -1.0f,
                                        2.0f,  -2.0f, 0.5f,  -0.5f};
  Rng rng(seed);
  std::vector<float> out(n);
  for (float& v : out) v = kAlphabet[rng.NextBounded(8)];
  return out;
}

// Denormals, the smallest normals, huge magnitudes, and infinities: the
// exponent-byte histogram must rank all of these exactly like the float
// comparison does.
std::vector<float> ExtremeValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n);
  for (float& v : out) {
    switch (rng.NextBounded(5)) {
      case 0: {  // denormal: bit patterns 1..0x7fffff
        uint32_t bits = static_cast<uint32_t>(rng.NextBounded(0x7fffff)) + 1;
        float f;
        std::memcpy(&f, &bits, sizeof(f));
        v = (rng.NextBounded(2) != 0u) ? -f : f;
        break;
      }
      case 1:
        v = std::numeric_limits<float>::min();  // smallest normal
        break;
      case 2:
        v = 3.4e38f * (rng.NextBounded(2) != 0u ? -1.0f : 1.0f);
        break;
      case 3:
        v = std::numeric_limits<float>::infinity() *
            (rng.NextBounded(2) != 0u ? -1.0f : 1.0f);
        break;
      default:
        v = static_cast<float>(rng.NextGaussian()) * 1e-20f;
        break;
    }
  }
  return out;
}

SparseVector ToSparse(const std::vector<float>& values, uint64_t seed) {
  Rng rng(seed);
  std::vector<GradIndex> indices(values.size());
  GradIndex idx = 0;
  for (GradIndex& out : indices) {
    idx += 1 + static_cast<GradIndex>(rng.NextBounded(9));
    out = idx;
  }
  return SparseVector(std::move(indices), std::vector<float>(values));
}

std::vector<size_t> KSweep(size_t nnz) {
  return {0, 1, nnz / 2, nnz > 0 ? nnz - 1 : 0, nnz, nnz + 7};
}

void ExpectSparseSelectionMatchesReference(const SparseVector& input,
                                           size_t k) {
  SparseVector ref_kept, ref_disc, new_kept, new_disc;
  RefSelectSparse(input, k, &ref_kept, &ref_disc);
  TopKSelector selector;
  selector.SelectSparse(input, k, &new_kept, &new_disc);
  EXPECT_BIT_IDENTICAL(new_kept, ref_kept) << "nnz=" << input.size()
                                           << " k=" << k;
  EXPECT_BIT_IDENTICAL(new_disc, ref_disc) << "nnz=" << input.size()
                                           << " k=" << k;
  // Null-discard overload agrees too.
  SparseVector kept_only;
  selector.SelectSparse(input, k, &kept_only, nullptr);
  EXPECT_BIT_IDENTICAL(kept_only, ref_kept);
}

// ---------------------------------------------------------------------------
// Radix SelectSparse vs reference.

TEST(RadixSelectPropertyTest, GaussianSparseMatchesReference) {
  for (size_t n : {1u, 2u, 7u, 100u, 1000u}) {
    const SparseVector input = ToSparse(GaussianValues(n, n), 11 * n);
    for (size_t k : KSweep(n)) {
      ExpectSparseSelectionMatchesReference(input, k);
    }
  }
}

TEST(RadixSelectPropertyTest, HeavyTiesMatchReference) {
  for (size_t n : {3u, 64u, 500u}) {
    const SparseVector input = ToSparse(TiedValues(n, 7 * n), 13 * n);
    for (size_t k : KSweep(n)) {
      ExpectSparseSelectionMatchesReference(input, k);
    }
  }
}

TEST(RadixSelectPropertyTest, AllEqualValuesBreakTiesByPosition) {
  const SparseVector input = ToSparse(std::vector<float>(200, 1.0f), 5);
  for (size_t k : KSweep(200)) {
    ExpectSparseSelectionMatchesReference(input, k);
  }
  // Spot-check the documented tie-break: the kept set is the k lowest
  // indices.
  SparseVector kept;
  TopKSparse(input, 3, &kept);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept.index(0), input.index(0));
  EXPECT_EQ(kept.index(2), input.index(2));
}

TEST(RadixSelectPropertyTest, DenormalsAndExtremesMatchReference) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const SparseVector input = ToSparse(ExtremeValues(300, seed), seed);
    for (size_t k : KSweep(300)) {
      ExpectSparseSelectionMatchesReference(input, k);
    }
  }
}

TEST(RadixSelectPropertyTest, EmptyInput) {
  const SparseVector input;
  for (size_t k : {0u, 3u}) {
    ExpectSparseSelectionMatchesReference(input, k);
  }
}

// ---------------------------------------------------------------------------
// Radix SelectDense vs reference (zeros skipped, base index applied).

TEST(RadixSelectPropertyTest, DenseMatchesReference) {
  for (uint64_t seed : {1u, 2u}) {
    for (size_t n : {1u, 8u, 300u, 2000u}) {
      std::vector<float> dense = GaussianValues(n, seed * 100 + n);
      // Sprinkle exact zeros (and a -0.0f) to exercise the skip path.
      Rng rng(seed);
      for (float& v : dense) {
        if (rng.NextBounded(4) == 0) v = 0.0f;
      }
      if (n >= 8) dense[3] = -0.0f;
      const size_t nnz = static_cast<size_t>(
          std::count_if(dense.begin(), dense.end(),
                        [](float v) { return v != 0.0f; }));
      for (size_t k : KSweep(nnz)) {
        SparseVector ref_kept, ref_disc, new_kept, new_disc;
        RefSelectDense(dense, 1000, k, &ref_kept, &ref_disc);
        TopKSelector selector;
        selector.SelectDense(dense, 1000, k, &new_kept, &new_disc);
        EXPECT_BIT_IDENTICAL(new_kept, ref_kept) << "n=" << n << " k=" << k;
        EXPECT_BIT_IDENTICAL(new_disc, ref_disc) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(RadixSelectPropertyTest, DenseAdversarialBlocks) {
  // All zeros, all equal, all denormal, and an empty block.
  const std::vector<std::vector<float>> blocks = {
      {},
      std::vector<float>(64, 0.0f),
      std::vector<float>(64, -2.5f),
      ExtremeValues(64, 9),
  };
  for (const auto& dense : blocks) {
    for (size_t k : {0u, 1u, 32u, 64u, 100u}) {
      SparseVector ref_kept, ref_disc, new_kept, new_disc;
      RefSelectDense(dense, 0, k, &ref_kept, &ref_disc);
      TopKSelector selector;
      selector.SelectDense(dense, 0, k, &new_kept, &new_disc);
      EXPECT_BIT_IDENTICAL(new_kept, ref_kept);
      EXPECT_BIT_IDENTICAL(new_disc, ref_disc);
    }
  }
}

// ---------------------------------------------------------------------------
// Warm-start selection: bit-identical to the cold path for ANY threshold.

TEST(WarmSelectPropertyTest, DriftingDataMatchesReferenceEveryRound) {
  // The SRS pattern: the same selector re-selects from slowly drifting
  // data, carrying the threshold across rounds.
  TopKSelector selector;
  float tau = 0.0f;  // cold start
  Rng rng(42);
  std::vector<float> values = GaussianValues(400, 17);
  const size_t k = 100;
  for (int round = 0; round < 12; ++round) {
    for (float& v : values) {
      v = v * 0.97f + 0.05f * static_cast<float>(rng.NextGaussian());
    }
    const SparseVector input = ToSparse(values, 23);
    SparseVector ref_kept, ref_disc, warm_kept, warm_disc;
    RefSelectSparse(input, k, &ref_kept, &ref_disc);
    selector.SelectSparseWarm(input, k, &warm_kept, &warm_disc, &tau);
    EXPECT_BIT_IDENTICAL(warm_kept, ref_kept) << "round " << round;
    EXPECT_BIT_IDENTICAL(warm_disc, ref_disc) << "round " << round;
    // The reported threshold is the k-th |value| of this round's data.
    EXPECT_EQ(tau, RefKthLargestAbs(values, k)) << "round " << round;
  }
}

TEST(WarmSelectPropertyTest, ArbitraryThresholdsStayExact) {
  const SparseVector input = ToSparse(TiedValues(300, 3), 31);
  const size_t k = 70;
  SparseVector ref_kept, ref_disc;
  RefSelectSparse(input, k, &ref_kept, &ref_disc);
  // Stale-high (prunes below k -> exact fallback), stale-low (prunes
  // nothing), exact, denormal, and infinite thresholds all agree.
  for (float start_tau : {0.0f, 1e-40f, 0.5f, 1.0f, 100.0f,
                          std::numeric_limits<float>::infinity()}) {
    TopKSelector selector;
    float tau = start_tau;
    SparseVector warm_kept, warm_disc;
    selector.SelectSparseWarm(input, k, &warm_kept, &warm_disc, &tau);
    EXPECT_BIT_IDENTICAL(warm_kept, ref_kept) << "start tau " << start_tau;
    EXPECT_BIT_IDENTICAL(warm_disc, ref_disc) << "start tau " << start_tau;
  }
}

TEST(WarmSelectPropertyTest, EdgeKsLeaveThresholdUntouched) {
  const SparseVector input = ToSparse(GaussianValues(10, 1), 1);
  TopKSelector selector;
  float tau = 0.25f;
  SparseVector kept, disc;
  selector.SelectSparseWarm(input, 20, &kept, &disc, &tau);  // k >= nnz
  EXPECT_EQ(kept.size(), 10u);
  EXPECT_EQ(tau, 0.25f);
  selector.SelectSparseWarm(input, 0, &kept, &disc, &tau);  // k == 0
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(disc.size(), 10u);
  EXPECT_EQ(tau, 0.25f);
}

// ---------------------------------------------------------------------------
// SumAll: loser tree and dense accumulator vs pairwise reference.

std::vector<SparseVector> OverlappingInputs(size_t p, size_t nnz,
                                            size_t index_range,
                                            uint64_t seed) {
  std::vector<SparseVector> inputs;
  for (size_t r = 0; r < p; ++r) {
    Rng rng(seed + r);
    std::vector<GradIndex> indices;
    std::vector<float> values;
    GradIndex idx = 0;
    const size_t max_gap = std::max<size_t>(2, index_range / (nnz + 1));
    for (size_t i = 0; i < nnz; ++i) {
      idx += 1 + static_cast<GradIndex>(rng.NextBounded(max_gap));
      indices.push_back(idx);
      values.push_back(static_cast<float>(rng.NextGaussian()));
    }
    inputs.emplace_back(std::move(indices), std::move(values));
  }
  return inputs;
}

TEST(SumAllPropertyTest, MatchesPairwiseForEveryP) {
  for (size_t p : {2u, 3u, 8u, 17u}) {
    // Wide index range -> loser-tree path.
    const auto sparse_inputs = OverlappingInputs(p, 200, 100000, 7 * p);
    EXPECT_BIT_IDENTICAL(SumAll(sparse_inputs), RefSumAll(sparse_inputs))
        << "loser tree, P=" << p;
    // Tight index range -> dense-accumulator path (span <= 2 * total).
    const auto dense_inputs = OverlappingInputs(p, 200, 250, 9 * p);
    EXPECT_BIT_IDENTICAL(SumAll(dense_inputs), RefSumAll(dense_inputs))
        << "dense accumulator, P=" << p;
  }
}

TEST(SumAllPropertyTest, SignedZerosAndCancellationsSurviveBitwise) {
  // -0.0f copies, +x + -x cancellations (the union keeps a 0.0f entry),
  // and ties of zeros: both paths must reproduce the pairwise bits.
  const std::vector<SparseVector> inputs = {
      SparseVector({1, 5, 9}, {-0.0f, 2.0f, 1.0f}),
      SparseVector({2, 5, 9}, {-0.0f, -2.0f, 1.0f}),
      SparseVector({1, 9}, {0.0f, -2.0f}),
  };
  const SparseVector ref = RefSumAll(inputs);
  EXPECT_BIT_IDENTICAL(SumAll(inputs), ref);  // span 9 <= 2 * 8: dense path
  // Force the loser tree with a far-away outrigger entry.
  std::vector<SparseVector> spread = inputs;
  spread.push_back(SparseVector({1000000}, {4.0f}));
  EXPECT_BIT_IDENTICAL(SumAll(spread), RefSumAll(spread));
}

TEST(SumAllPropertyTest, EmptyInputsAreNoOps) {
  const SparseVector a({1, 3}, {1.0f, 2.0f});
  const SparseVector b({2, 3}, {4.0f, 8.0f});
  const std::vector<SparseVector> with_empties = {SparseVector(), a,
                                                  SparseVector(), b,
                                                  SparseVector()};
  EXPECT_BIT_IDENTICAL(SumAll(with_empties),
                       RefSumAll(std::vector<SparseVector>{a, b}));
  EXPECT_TRUE(SumAll(std::vector<SparseVector>{}).empty());
  EXPECT_TRUE(
      SumAll(std::vector<SparseVector>{SparseVector(), SparseVector()})
          .empty());
  EXPECT_BIT_IDENTICAL(SumAll(std::vector<SparseVector>{a}), a);
}

// ---------------------------------------------------------------------------
// KthLargestAbs (radix order statistic) vs reference.

TEST(KthLargestAbsPropertyTest, MatchesReferenceAcrossGenerators) {
  std::vector<float> scratch;  // reused across every call below
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (const auto& values :
         {GaussianValues(500, seed), TiedValues(500, seed),
          ExtremeValues(500, seed)}) {
      std::vector<float> with_zeros = values;
      with_zeros[7] = 0.0f;
      with_zeros[8] = -0.0f;
      for (size_t k : {0u, 1u, 250u, 499u, 500u, 501u}) {
        EXPECT_EQ(KthLargestAbs(with_zeros, k),
                  RefKthLargestAbs(with_zeros, k))
            << "seed=" << seed << " k=" << k;
        EXPECT_EQ(KthLargestAbs(with_zeros, k, &scratch),
                  RefKthLargestAbs(with_zeros, k))
            << "seed=" << seed << " k=" << k << " (scratch)";
        const SparseVector sparse = ToSparse(with_zeros, seed);
        EXPECT_EQ(KthLargestAbs(sparse, k, &scratch),
                  RefKthLargestAbs(with_zeros, k))
            << "seed=" << seed << " k=" << k << " (sparse)";
      }
    }
  }
}

}  // namespace
}  // namespace spardl
