#ifndef SPARDL_TESTS_TEST_UTIL_H_
#define SPARDL_TESTS_TEST_UTIL_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/sparse_allreduce.h"
#include "simnet/cluster.h"
#include "sparse/sparse_vector.h"

namespace spardl {
namespace testing {

/// Deterministic dense gradient with a heavy-tailed magnitude profile
/// (a few large entries, many small ones) — the shape real DL gradients
/// have and the reason top-k sparsification works.
inline std::vector<float> RandomGradient(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> grad(n);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    const double magnitude = (u < 0.05) ? rng.NextGaussian() * 1.0
                                        : rng.NextGaussian() * 0.01;
    grad[i] = static_cast<float>(magnitude);
  }
  return grad;
}

/// Element-wise sum of all workers' gradients (the exact all-reduce).
inline std::vector<float> ReferenceSum(
    const std::vector<std::vector<float>>& grads) {
  std::vector<float> sum(grads[0].size(), 0.0f);
  for (const auto& g : grads) {
    for (size_t i = 0; i < g.size(); ++i) sum[i] += g[i];
  }
  return sum;
}

/// Runs `fn(comm, rank)` on a fresh cluster of `p` workers with a free cost
/// model and returns per-rank results.
template <typename T>
std::vector<T> RunOnCluster(int p, const std::function<T(Comm&)>& fn,
                            CostModel cost_model = CostModel::Free()) {
  Cluster cluster(p, cost_model);
  std::vector<T> results(static_cast<size_t>(p));
  cluster.Run([&](Comm& comm) {
    results[static_cast<size_t>(comm.rank())] = fn(comm);
  });
  return results;
}

/// Per-worker algorithm instances built by `factory(rank)`, run for
/// `iterations` iterations on fresh random gradients each iteration.
/// Returns the final-iteration outputs per rank. Gradients are written to
/// `grad_history[iter][rank]` when non-null.
inline std::vector<SparseVector> RunAlgorithm(
    int p, size_t n, int iterations,
    const std::function<std::unique_ptr<SparseAllReduce>(int)>& factory,
    std::vector<std::vector<std::vector<float>>>* grad_history = nullptr,
    std::vector<std::vector<SparseVector>>* all_outputs = nullptr,
    uint64_t seed_base = 1234) {
  Cluster cluster(p, CostModel::Free());
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) algos[static_cast<size_t>(r)] = factory(r);

  std::vector<SparseVector> last(static_cast<size_t>(p));
  if (grad_history != nullptr) grad_history->clear();
  if (all_outputs != nullptr) all_outputs->clear();
  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<std::vector<float>> grads(static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      grads[static_cast<size_t>(r)] = RandomGradient(
          n, seed_base + static_cast<uint64_t>(iter) * 1000 +
                 static_cast<uint64_t>(r));
    }
    if (grad_history != nullptr) grad_history->push_back(grads);
    cluster.Run([&](Comm& comm) {
      const auto rank = static_cast<size_t>(comm.rank());
      last[rank] = algos[rank]->Run(comm, grads[rank]);
    });
    if (all_outputs != nullptr) all_outputs->push_back(last);
  }
  return last;
}

}  // namespace testing
}  // namespace spardl

#endif  // SPARDL_TESTS_TEST_UTIL_H_
