// Exhaustive coverage of SparDLConfig::Validate error paths: every
// rejection branch, the exact status code, and a message that names the
// offending field, plus the accepting boundary cases next to each branch.

#include "core/spardl.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace spardl {
namespace {

SparDLConfig GoodConfig() {
  SparDLConfig config;
  config.n = 1000;
  config.k = 10;
  config.num_workers = 8;
  config.num_teams = 2;
  return config;
}

void ExpectInvalid(const SparDLConfig& config, const std::string& fragment) {
  const Status status = config.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(fragment), std::string::npos)
      << "message was: " << status.message();
}

TEST(ConfigValidateTest, GoodConfigPasses) {
  EXPECT_TRUE(GoodConfig().Validate().ok());
}

TEST(ConfigValidateTest, RejectsZeroN) {
  SparDLConfig config = GoodConfig();
  config.n = 0;
  ExpectInvalid(config, "n must be positive");
}

TEST(ConfigValidateTest, RejectsZeroK) {
  SparDLConfig config = GoodConfig();
  config.k = 0;
  ExpectInvalid(config, "k must be in [1, n]");
}

TEST(ConfigValidateTest, RejectsKAboveN) {
  SparDLConfig config = GoodConfig();
  config.k = config.n + 1;
  ExpectInvalid(config, "k must be in [1, n]");
}

TEST(ConfigValidateTest, KBoundariesAccepted) {
  SparDLConfig config = GoodConfig();
  config.k = 1;
  EXPECT_TRUE(config.Validate().ok());
  config.k = config.n;  // k = n degrades to a dense all-reduce but is legal
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigValidateTest, RejectsNonPositiveWorkers) {
  SparDLConfig config = GoodConfig();
  config.num_workers = 0;
  config.num_teams = 1;
  ExpectInvalid(config, "num_workers must be positive");
  config.num_workers = -4;
  ExpectInvalid(config, "num_workers must be positive");
}

TEST(ConfigValidateTest, RejectsNonPositiveTeams) {
  SparDLConfig config = GoodConfig();
  config.num_teams = 0;
  ExpectInvalid(config, "num_teams must be positive");
  config.num_teams = -2;
  ExpectInvalid(config, "num_teams must be positive");
}

TEST(ConfigValidateTest, RejectsTeamsNotDividingWorkers) {
  SparDLConfig config = GoodConfig();
  config.num_workers = 8;
  config.num_teams = 3;
  ExpectInvalid(config, "must divide num_workers");
  // Every divisor of 8 is accepted, including d = P (teams of one).
  for (int d : {1, 2, 4, 8}) {
    config.num_teams = d;
    EXPECT_TRUE(config.Validate().ok()) << "d=" << d;
  }
}

TEST(ConfigValidateTest, RecursiveSagNeedsPowerOfTwoTeams) {
  SparDLConfig config = GoodConfig();
  config.num_workers = 12;
  config.num_teams = 6;
  config.sag_mode = SagMode::kRecursive;
  ExpectInvalid(config, "power-of-two");
  // Power-of-two team counts are fine, as is d = 1 (SAG disabled, so the
  // R-SAG restriction does not apply).
  config.num_teams = 4;
  EXPECT_TRUE(config.Validate().ok());
  config.num_teams = 1;
  EXPECT_TRUE(config.Validate().ok());
  // B-SAG and kAuto accept any divisor.
  config.num_teams = 6;
  config.sag_mode = SagMode::kBruck;
  EXPECT_TRUE(config.Validate().ok());
  config.sag_mode = SagMode::kAuto;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigValidateTest, RejectsUnsupportedValueBits) {
  SparDLConfig config = GoodConfig();
  for (int bits : {0, -8, 1, 2, 12, 24, 64}) {
    config.value_bits = bits;
    ExpectInvalid(config, "value_bits");
  }
  for (int bits : {4, 8, 16, 32}) {
    config.value_bits = bits;
    EXPECT_TRUE(config.Validate().ok()) << "bits=" << bits;
  }
}

TEST(ConfigValidateTest, CreatePropagatesValidationError) {
  SparDLConfig config = GoodConfig();
  config.k = 0;
  auto result = SparDL::Create(config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigValidateTest, CreateSucceedsOnValidConfig) {
  auto result = SparDL::Create(GoodConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.value(), nullptr);
}

}  // namespace
}  // namespace spardl
