#include <gtest/gtest.h>

#include <vector>

#include "simnet/cluster.h"
#include "simnet/comm.h"
#include "simnet/network.h"

namespace spardl {
namespace {

TEST(PayloadWordsTest, CountsEveryVariant) {
  EXPECT_EQ(PayloadWords(Payload(SparseVector({1, 2}, {1.0f, 2.0f}))), 4u);
  EXPECT_EQ(PayloadWords(Payload(std::vector<float>{1, 2, 3})), 3u);
  EXPECT_EQ(PayloadWords(Payload(std::vector<uint32_t>{7})), 1u);
  EXPECT_EQ(PayloadWords(Payload(3.5)), 1u);
  EXPECT_EQ(PayloadWords(Payload(int64_t{9})), 1u);
  std::vector<SparseVector> parts;
  parts.push_back(SparseVector({1}, {1.0f}));
  parts.push_back(SparseVector({2, 3}, {1.0f, 2.0f}));
  EXPECT_EQ(PayloadWords(Payload(parts)), 6u);
}

TEST(CommTest, SendRecvDeliversPayload) {
  Cluster cluster(2, CostModel::Free());
  cluster.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(int64_t{42}));
    } else {
      EXPECT_EQ(comm.RecvAs<int64_t>(0), 42);
    }
  });
}

TEST(CommTest, FifoOrderPerChannel) {
  Cluster cluster(2, CostModel::Free());
  cluster.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int64_t i = 0; i < 5; ++i) comm.Send(1, Payload(i));
    } else {
      for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(comm.RecvAs<int64_t>(0), i);
    }
  });
}

TEST(CommTest, TagsMatchOutOfOrder) {
  Cluster cluster(2, CostModel::Free());
  cluster.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(int64_t{1}), /*tag=*/7);
      comm.Send(1, Payload(int64_t{2}), /*tag=*/9);
    } else {
      EXPECT_EQ(comm.RecvAs<int64_t>(0, /*tag=*/9), 2);
      EXPECT_EQ(comm.RecvAs<int64_t>(0, /*tag=*/7), 1);
    }
  });
}

TEST(CommTest, RecvChargesAlphaPlusBetaPerWord) {
  const CostModel cm{1e-3, 1e-6};
  Cluster cluster(2, cm);
  cluster.Run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(std::vector<float>(100, 1.0f)));
    } else {
      comm.RecvAs<std::vector<float>>(0);
      EXPECT_DOUBLE_EQ(comm.sim_now(), 1e-3 + 100 * 1e-6);
      EXPECT_EQ(comm.stats().messages_received, 1u);
      EXPECT_EQ(comm.stats().words_received, 100u);
    }
  });
}

TEST(CommTest, RecvWaitsForSenderClock) {
  const CostModel cm{1.0, 0.0};
  Cluster cluster(2, cm);
  cluster.Run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Compute(10.0);  // sender is busy until t = 10
      comm.Send(1, Payload(int64_t{1}));
    } else {
      comm.RecvAs<int64_t>(0);
      // max(0, 10) + alpha = 11.
      EXPECT_DOUBLE_EQ(comm.sim_now(), 11.0);
    }
  });
}

TEST(CommTest, SerializedReceivesAccumulateLatency) {
  const CostModel cm{1.0, 0.0};
  Cluster cluster(4, cm);
  cluster.Run([&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int src = 1; src < 4; ++src) comm.RecvAs<int64_t>(src);
      EXPECT_DOUBLE_EQ(comm.sim_now(), 3.0);  // three alphas, serialised
    } else {
      comm.Send(0, Payload(int64_t{comm.rank()}));
    }
  });
}

TEST(CommTest, SendIsFreeForSender) {
  Cluster cluster(2, CostModel::Ethernet());
  cluster.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(std::vector<float>(1000, 1.0f)));
      EXPECT_DOUBLE_EQ(comm.sim_now(), 0.0);
    } else {
      comm.RecvAs<std::vector<float>>(0);
    }
  });
}

TEST(CommTest, WordsOverrideReplacesNaturalSize) {
  const CostModel cm{0.0, 1.0};
  Cluster cluster(2, cm);
  cluster.Run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(SparseVector({1}, {1.0f})), /*tag=*/0,
                /*words_override=*/500);
    } else {
      comm.RecvAs<SparseVector>(0);
      EXPECT_EQ(comm.stats().words_received, 500u);
      EXPECT_DOUBLE_EQ(comm.sim_now(), 500.0);
    }
  });
}

TEST(CommTest, ComputeAdvancesClockAndStats) {
  Cluster cluster(1, CostModel::Free());
  cluster.Run([](Comm& comm) {
    comm.Compute(2.5);
    EXPECT_DOUBLE_EQ(comm.sim_now(), 2.5);
    EXPECT_DOUBLE_EQ(comm.stats().compute_seconds, 2.5);
  });
}

TEST(CommTest, BarrierSyncClocksAlignsToMax) {
  Cluster cluster(3, CostModel::Free());
  cluster.Run([](Comm& comm) {
    comm.Compute(static_cast<double>(comm.rank()));
    comm.BarrierSyncClocks();
    EXPECT_DOUBLE_EQ(comm.sim_now(), 2.0);
  });
}

TEST(ClusterTest, StatsAggregation) {
  Cluster cluster(2, CostModel::Free());
  cluster.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(std::vector<float>(10, 0.0f)));
    } else {
      comm.RecvAs<std::vector<float>>(0);
    }
  });
  const CommStats total = cluster.TotalStats();
  EXPECT_EQ(total.messages_sent, 1u);
  EXPECT_EQ(total.messages_received, 1u);
  EXPECT_EQ(total.words_sent, 10u);
  EXPECT_EQ(total.words_received, 10u);
  EXPECT_EQ(cluster.MaxWordsReceived(), 10u);
  EXPECT_EQ(cluster.MaxMessagesReceived(), 1u);
}

TEST(ClusterTest, ResetClearsClocksAndStats) {
  Cluster cluster(2, CostModel::Ethernet());
  cluster.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(int64_t{1}));
    } else {
      comm.RecvAs<int64_t>(0);
    }
  });
  EXPECT_GT(cluster.MaxSimSeconds(), 0.0);
  cluster.ResetClocksAndStats();
  EXPECT_DOUBLE_EQ(cluster.MaxSimSeconds(), 0.0);
  EXPECT_EQ(cluster.TotalStats().messages_sent, 0u);
}

TEST(ClusterTest, RunReusableAcrossPhases) {
  Cluster cluster(3, CostModel::Free());
  for (int phase = 0; phase < 3; ++phase) {
    cluster.Run([&](Comm& comm) {
      const int next = (comm.rank() + 1) % comm.size();
      const int prev = (comm.rank() + comm.size() - 1) % comm.size();
      comm.Send(next, Payload(int64_t{phase}));
      EXPECT_EQ(comm.RecvAs<int64_t>(prev), phase);
    });
  }
}

TEST(NetworkTest, MailboxesEmptyAfterBalancedTraffic) {
  Cluster cluster(2, CostModel::Free());
  cluster.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(int64_t{1}));
    } else {
      comm.RecvAs<int64_t>(0);
    }
  });
  EXPECT_TRUE(cluster.network().AllMailboxesEmpty());
}

}  // namespace
}  // namespace spardl
