#include "core/chunk_adjuster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

namespace spardl {
namespace {

// k = 1400, P = 14, d = 7: h_min = 100, h_max = L = 700.
constexpr size_t kK = 1400;
constexpr int kP = 14;
constexpr int kD = 7;

TEST(ChunkAdjusterTest, InitialHIsKOverP) {
  ChunkAdjuster adjuster(kK, kP, kD);
  EXPECT_EQ(adjuster.CurrentH(), 100u);
  EXPECT_EQ(adjuster.TargetL(), 700u);
  // Initial step: 0.01 * k (d-1) / P = 0.01 * 1400 * 6 / 14 = 6.
  EXPECT_DOUBLE_EQ(adjuster.step(), 6.0);
}

TEST(ChunkAdjusterTest, UnionBelowTargetKeepsClimbing) {
  ChunkAdjuster adjuster(kK, kP, kD);
  adjuster.Observe(100);  // far below 700: keep going up
  EXPECT_EQ(adjuster.CurrentH(), 106u);
  EXPECT_DOUBLE_EQ(adjuster.step(), 6.0);  // first confirmation only flags
  adjuster.Observe(150);  // second confirmation doubles
  EXPECT_DOUBLE_EQ(adjuster.step(), 12.0);
  EXPECT_EQ(adjuster.CurrentH(), 118u);
}

TEST(ChunkAdjusterTest, OvershootReversesAndHalves) {
  ChunkAdjuster adjuster(kK, kP, kD);
  adjuster.Observe(100);   // climb to 106
  adjuster.Observe(9999);  // overshot: step = -3
  EXPECT_DOUBLE_EQ(adjuster.step(), -3.0);
  EXPECT_EQ(adjuster.CurrentH(), 103u);
}

TEST(ChunkAdjusterTest, ReversalResetsDoublingFlag) {
  ChunkAdjuster adjuster(kK, kP, kD);
  adjuster.Observe(100);   // flag set
  adjuster.Observe(9999);  // reversal clears flag, step = -3
  adjuster.Observe(9999);  // toward target again (union high, step neg): flag
  EXPECT_DOUBLE_EQ(adjuster.step(), -3.0);
  adjuster.Observe(9999);  // second confirmation doubles
  EXPECT_DOUBLE_EQ(adjuster.step(), -6.0);
}

TEST(ChunkAdjusterTest, ClampsToAnalyticalRange) {
  ChunkAdjuster adjuster(kK, kP, kD);
  for (int i = 0; i < 200; ++i) adjuster.Observe(1);  // push up hard
  EXPECT_LE(adjuster.CurrentH(), 700u);
  for (int i = 0; i < 400; ++i) adjuster.Observe(100000);  // push down hard
  EXPECT_GE(adjuster.CurrentH(), 100u);
}

TEST(ChunkAdjusterTest, MinimumHIsOne) {
  ChunkAdjuster adjuster(/*k=*/2, /*num_workers=*/4, /*num_teams=*/2);
  for (int i = 0; i < 50; ++i) adjuster.Observe(100000);
  EXPECT_GE(adjuster.CurrentH(), 1u);
}

TEST(ChunkAdjusterTest, DiesOnDegenerateInputs) {
  EXPECT_DEATH(ChunkAdjuster(0, 4, 2), "");
  EXPECT_DEATH(ChunkAdjuster(10, 0, 2), "");
  EXPECT_DEATH(ChunkAdjuster(10, 4, 1), "");
}

// Closed-loop property: with a synthetic union model
// union(h) = min(d * h, cap), h converges so the union tracks L.
class ChunkAdjusterConvergence : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkAdjusterConvergence, TracksTargetUnderOverlapModel) {
  const size_t cap = GetParam();  // max distinct indices available
  ChunkAdjuster adjuster(kK, kP, kD);
  size_t union_size = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const size_t h = adjuster.CurrentH();
    union_size = std::min<size_t>(static_cast<size_t>(kD) * h, cap);
    adjuster.Observe(union_size);
  }
  const size_t target = adjuster.TargetL();
  if (cap <= target) {
    // Can never reach L: h should sit at (or near) the top clamp.
    EXPECT_GE(adjuster.CurrentH(), 650u);
  } else {
    // Union should settle within ~15% of L.
    const double err = std::abs(static_cast<double>(union_size) -
                                static_cast<double>(target)) /
                       static_cast<double>(target);
    EXPECT_LT(err, 0.15) << "cap=" << cap << " union=" << union_size;
  }
}

INSTANTIATE_TEST_SUITE_P(OverlapCaps, ChunkAdjusterConvergence,
                         ::testing::Values(300, 700, 1200, 5000, 100000));

}  // namespace
}  // namespace spardl
