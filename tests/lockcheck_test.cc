// Lock-order ("deadlock potential") detector tests.
//
// The inversion tests drive `OrderedMutex` through its explicit-`Graph`
// constructor — the test-only double whose tracking is unconditional — so
// they pin the detector's behaviour in every build type, including the
// NDEBUG tier-1 configuration where globally-registered mutexes compile
// to plain `std::mutex` passthrough. Provoked cycles abort (CHECK), so
// they run as death tests.

#include "common/lockcheck.h"

#include <condition_variable>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

namespace spardl {
namespace lockcheck {
namespace {

// Non-death tests keep their mutexes in static storage: glibc std::mutex
// has a trivial destructor (no pthread_mutex_destroy), so under TSan a
// destroyed stack mutex's address can be reused by the next test's mutex
// and the two get aliased into one lock-order graph node — manufacturing
// false cross-test cycles for TSan's own deadlock detector. Static
// storage gives every mutex a distinct, never-reused address. (The death
// tests are immune: the provoked inversion CHECK-aborts in OnAcquire
// *before* the closing pthread lock is attempted, so TSan never sees the
// cycle — and they run in forked children anyway.)

TEST(LockCheckTest, ConsistentOrderPasses) {
  static Graph graph;
  static OrderedMutex a(graph, "order.a");
  static OrderedMutex b(graph, "order.b");
  // a -> b, twice: the second acquisition re-walks an established edge.
  for (int i = 0; i < 2; ++i) {
    std::lock_guard<OrderedMutex> hold_a(a);
    std::lock_guard<OrderedMutex> hold_b(b);
  }
}

TEST(LockCheckTest, IndependentMutexesOfOneFamilyShareTheNode) {
  static Graph graph;
  // Two distinct mutexes registered under one name (the per-mailbox
  // pattern: all P^2 mailbox mutexes are one lock-order family).
  static OrderedMutex box1(graph, "family.box");
  static OrderedMutex box2(graph, "family.box");
  static OrderedMutex engine(graph, "family.engine");
  {
    std::lock_guard<OrderedMutex> hold_engine(engine);
    std::lock_guard<OrderedMutex> hold_box(box1);
  }
  // engine -> box is established; box2 belongs to the same family as
  // box1, so taking engine under it must now be rejected — which the
  // death test below pins. Here: the same order through the other
  // instance stays legal.
  {
    std::lock_guard<OrderedMutex> hold_engine(engine);
    std::lock_guard<OrderedMutex> hold_box(box2);
  }
}

TEST(LockCheckDeathTest, InversionAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  ASSERT_DEATH(
      {
        Graph graph;
        OrderedMutex a(graph, "inv.a");
        OrderedMutex b(graph, "inv.b");
        {
          std::lock_guard<OrderedMutex> hold_a(a);
          std::lock_guard<OrderedMutex> hold_b(b);  // a -> b recorded
        }
        {
          std::lock_guard<OrderedMutex> hold_b(b);
          std::lock_guard<OrderedMutex> hold_a(a);  // closes the cycle
        }
      },
      "lock-order inversion.*'inv\\.b' -> 'inv\\.a'");
}

TEST(LockCheckDeathTest, InversionThroughSharedFamilyAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  // The family (not the instance) is the graph node: an inversion built
  // out of two different mutexes of one family must still abort.
  ASSERT_DEATH(
      {
        Graph graph;
        OrderedMutex box1(graph, "shared.box");
        OrderedMutex box2(graph, "shared.box");
        OrderedMutex engine(graph, "shared.engine");
        {
          std::lock_guard<OrderedMutex> hold_engine(engine);
          std::lock_guard<OrderedMutex> hold_box(box1);
        }
        {
          std::lock_guard<OrderedMutex> hold_box(box2);
          std::lock_guard<OrderedMutex> hold_engine(engine);
        }
      },
      "lock-order inversion");
}

TEST(LockCheckDeathTest, TransitiveCycleAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  // a -> b and b -> c are fine; c -> a closes a 3-cycle that no single
  // edge pair exhibits — the detector must chase reachability, not just
  // direct edges.
  ASSERT_DEATH(
      {
        Graph graph;
        OrderedMutex a(graph, "tri.a");
        OrderedMutex b(graph, "tri.b");
        OrderedMutex c(graph, "tri.c");
        {
          std::lock_guard<OrderedMutex> hold_a(a);
          std::lock_guard<OrderedMutex> hold_b(b);
        }
        {
          std::lock_guard<OrderedMutex> hold_b(b);
          std::lock_guard<OrderedMutex> hold_c(c);
        }
        {
          std::lock_guard<OrderedMutex> hold_c(c);
          std::lock_guard<OrderedMutex> hold_a(a);
        }
      },
      "lock-order inversion.*'tri\\.c' -> 'tri\\.a'");
}

TEST(LockCheckDeathTest, SameFamilyNestingAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  // Holding two mutexes of one family concurrently is a self-deadlock
  // under contention (another thread can take them in the other order).
  ASSERT_DEATH(
      {
        Graph graph;
        OrderedMutex box1(graph, "nest.box");
        OrderedMutex box2(graph, "nest.box");
        std::lock_guard<OrderedMutex> hold1(box1);
        std::lock_guard<OrderedMutex> hold2(box2);
      },
      "same family");
}

TEST(LockCheckTest, ConditionVariableWaitKeepsHeldStackExact) {
  // `condition_variable_any::wait` releases through `unlock()` and
  // re-acquires through `lock()`; if the held-stack did not follow, the
  // b-acquisition below would falsely look nested inside a.
  static Graph graph;
  static OrderedMutex a(graph, "cv.a");
  static OrderedMutex b(graph, "cv.b");
  std::condition_variable_any cv;
  bool ready = false;

  // Establish b -> a so that an a-acquisition while holding b would trip
  // the detector.
  {
    std::lock_guard<OrderedMutex> hold_b(b);
    std::lock_guard<OrderedMutex> hold_a(a);
  }

  std::thread waiter([&] {
    std::unique_lock<OrderedMutex> lock(a);
    cv.wait(lock, [&] { return ready; });
  });
  {
    // While the waiter sleeps inside its a-wait (a released), taking
    // b then a here is the established order and must pass — proof the
    // sleeping thread does not appear to hold a.
    std::lock_guard<OrderedMutex> hold_b(b);
    std::lock_guard<OrderedMutex> hold_a(a);
  }
  {
    std::lock_guard<OrderedMutex> hold_a(a);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
}

TEST(LockCheckTest, TryLockRecordsOrderOnSuccessOnly) {
  static Graph graph;
  static OrderedMutex a(graph, "try.a");
  static OrderedMutex b(graph, "try.b");
  {
    std::lock_guard<OrderedMutex> hold_a(a);
    ASSERT_TRUE(b.try_lock());  // records a -> b
    b.unlock();
  }
  std::thread holder([&] {
    std::lock_guard<OrderedMutex> hold_b(b);
    // A failed try_lock must record nothing: holding b while *failing*
    // to get... (we cannot contend a here deterministically, so this
    // thread just exercises the success path in the reverse direction
    // being absent).
  });
  holder.join();
}

TEST(LockCheckTest, GlobalRegistrationIsIdempotentByName) {
  // Two globally-registered mutexes under one name must share a family
  // id (this is the only global-graph touch in the suite: registration
  // only, no edges, so it cannot interfere with the library's own
  // families).
  Graph& global = Graph::Global();
  const int first = global.RegisterFamily("test.idempotent");
  const int second = global.RegisterFamily("test.idempotent");
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace lockcheck
}  // namespace spardl
