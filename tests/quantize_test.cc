#include "core/quantize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/spardl.h"
#include "test_util.h"

namespace spardl {
namespace {

SparseVector Make(std::vector<GradIndex> idx, std::vector<float> val) {
  return SparseVector(std::move(idx), std::move(val));
}

TEST(QuantizeTest, SupportedWidths) {
  EXPECT_TRUE(IsSupportedQuantization(4));
  EXPECT_TRUE(IsSupportedQuantization(8));
  EXPECT_TRUE(IsSupportedQuantization(16));
  EXPECT_TRUE(IsSupportedQuantization(32));
  EXPECT_FALSE(IsSupportedQuantization(2));
  EXPECT_FALSE(IsSupportedQuantization(12));
}

TEST(QuantizeTest, WireWordsShrinkWithBits) {
  EXPECT_EQ(QuantizedWireWords(100, 32), 200u);
  // 8-bit: 100 * (4 + 1) + 4 bytes = 504 -> 126 words.
  EXPECT_EQ(QuantizedWireWords(100, 8), 126u);
  // 4-bit: 100 * 4 index bytes + 50 packed value bytes + 4 = 454 -> 114
  // words. (A regression here once charged `bits / 8 == 0` value bytes,
  // shipping 4-bit values for free.)
  EXPECT_EQ(QuantizedWireWords(100, 4), 114u);
  EXPECT_LT(QuantizedWireWords(100, 4), QuantizedWireWords(100, 8));
  EXPECT_LT(QuantizedWireWords(100, 8), QuantizedWireWords(100, 16));
}

TEST(QuantizeTest, WireWordsWidthSweep) {
  // words = ceil((4*entries + ceil(entries*bits/8) + 4) / 4) for bits < 32;
  // bits == 32 ships raw 2-word COO entries with no scale word.
  struct Case {
    size_t entries;
    int bits;
    size_t words;
  };
  constexpr Case kCases[] = {
      {0, 4, 1},      {0, 8, 1},      {0, 16, 1},      {0, 32, 0},
      {1, 4, 3},      {1, 8, 3},      {1, 16, 3},      {1, 32, 2},
      {3, 4, 5},      {3, 8, 5},      {3, 16, 6},      {3, 32, 6},
      {7, 4, 9},      {7, 8, 10},     {7, 16, 12},     {7, 32, 14},
      {100, 4, 114},  {100, 8, 126},  {100, 16, 151},  {100, 32, 200},
      {101, 4, 115},  {101, 8, 128},  {101, 16, 153},  {101, 32, 202},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(QuantizedWireWords(c.entries, c.bits), c.words)
        << "entries=" << c.entries << " bits=" << c.bits;
  }
  // Sub-byte widths must still charge for their values: strictly more
  // than an index-plus-scale-only message.
  for (size_t entries : {1u, 7u, 101u}) {
    EXPECT_GT(QuantizedWireWords(entries, 4), (entries * 4 + 4 + 3) / 4)
        << "entries=" << entries;
  }
}

TEST(QuantizeTest, ThirtyTwoBitsIsIdentity) {
  SparseVector v = Make({1, 5}, {0.123f, -4.567f});
  const SparseVector original = v;
  SparseVector error;
  QuantizeDequantize(&v, 32, &error);
  EXPECT_EQ(v, original);
  EXPECT_TRUE(error.empty());
}

TEST(QuantizeTest, ErrorBoundedByHalfStep) {
  Rng rng(9);
  SparseVector v;
  float max_abs = 0.0f;
  for (GradIndex i = 0; i < 500; ++i) {
    const float value = static_cast<float>(rng.NextGaussian());
    v.PushBack(i * 3, value);
    max_abs = std::max(max_abs, std::fabs(value));
  }
  const SparseVector original = v;
  for (int bits : {4, 8, 16}) {
    SparseVector copy = original;
    SparseVector error;
    QuantizeDequantize(&copy, bits, &error);
    const float step =
        max_abs / static_cast<float>((1 << (bits - 1)) - 1);
    for (size_t i = 0; i < copy.size(); ++i) {
      EXPECT_NEAR(copy.value(i), original.value(i), step * 0.5f + 1e-6f)
          << "bits=" << bits;
    }
  }
}

TEST(QuantizeTest, ErrorPlusQuantizedReconstructsOriginal) {
  SparseVector v = Make({0, 1, 2, 3}, {1.0f, 0.30f, -0.72f, 0.049f});
  const SparseVector original = v;
  SparseVector error;
  QuantizeDequantize(&v, 4, &error);
  SparseVector reconstructed;
  MergeSum(v, error, &reconstructed);
  ASSERT_EQ(reconstructed.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(reconstructed.value(i), original.value(i), 1e-6f);
  }
}

TEST(QuantizeTest, EmptyAndAllZeroInputs) {
  SparseVector empty;
  QuantizeDequantize(&empty, 8);
  EXPECT_TRUE(empty.empty());
}

TEST(QuantizeTest, DeterministicAcrossCalls) {
  SparseVector a = Make({0, 1, 2}, {0.5f, -0.3f, 0.9f});
  SparseVector b = a;
  QuantizeDequantize(&a, 8);
  QuantizeDequantize(&b, 8);
  EXPECT_EQ(a, b);
}

TEST(QuantizedSparDLTest, ConfigValidation) {
  SparDLConfig config;
  config.n = 1000;
  config.k = 100;
  config.num_workers = 4;
  config.value_bits = 12;
  EXPECT_FALSE(SparDL::Create(config).ok());
  config.value_bits = 8;
  auto created = SparDL::Create(config);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ((*created)->name(), "SparDL+q8");
}

// Quantized SparDL must preserve the synchronous-SGD consistency invariant
// and (thanks to error feedback) cluster-wide mass conservation.
class QuantizedSparDLSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizedSparDLSweep, ConsistentAndConservative) {
  const int bits = GetParam();
  const int p = 6;
  const size_t n = 600;
  const size_t k = 60;
  SparDLConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = p;
  config.num_teams = 3;
  config.value_bits = bits;

  Cluster cluster(p, CostModel::Free());
  std::vector<std::unique_ptr<SparDL>> algos(static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] = std::move(*SparDL::Create(config));
  }
  double fresh_mass = 0.0;
  double synced_mass = 0.0;
  for (int iter = 0; iter < 3; ++iter) {
    std::vector<std::vector<float>> grads(static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      grads[static_cast<size_t>(r)] = testing::RandomGradient(
          n, 40 + static_cast<uint64_t>(iter * 10 + r));
      for (float v : grads[static_cast<size_t>(r)]) fresh_mass += v;
    }
    std::vector<SparseVector> outs(static_cast<size_t>(p));
    cluster.Run([&](Comm& comm) {
      const auto rank = static_cast<size_t>(comm.rank());
      outs[rank] = algos[rank]->Run(comm, grads[rank]);
    });
    for (int r = 1; r < p; ++r) {
      ASSERT_EQ(outs[static_cast<size_t>(r)], outs[0])
          << "bits=" << bits << " iter=" << iter;
    }
    synced_mass += outs[0].ValueSum();
  }
  double residual_mass = 0.0;
  for (const auto& algo : algos) {
    residual_mass += algo->residuals().MassSum();
  }
  EXPECT_NEAR(fresh_mass, synced_mass + residual_mass,
              2e-2 * (1.0 + std::abs(fresh_mass)))
      << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantizedSparDLSweep,
                         ::testing::Values(4, 8, 16, 32));

TEST(QuantizedSparDLTest, ReducesWireWords) {
  const int p = 8;
  const size_t n = 8000;
  const size_t k = 800;
  uint64_t words[2];
  int slot = 0;
  for (int bits : {32, 8}) {
    SparDLConfig config;
    config.n = n;
    config.k = k;
    config.num_workers = p;
    config.value_bits = bits;
    config.residual_mode = ResidualMode::kNone;
    Cluster cluster(p, CostModel::Ethernet());
    std::vector<std::unique_ptr<SparDL>> algos(static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      algos[static_cast<size_t>(r)] = std::move(*SparDL::Create(config));
    }
    cluster.Run([&](Comm& comm) {
      std::vector<float> grad = testing::RandomGradient(
          n, 7 + static_cast<uint64_t>(comm.rank()));
      algos[static_cast<size_t>(comm.rank())]->Run(comm, grad);
    });
    words[slot++] = cluster.MaxWordsReceived();
  }
  // 8-bit entries are 1.25 words instead of 2: expect a ~1.6x drop.
  EXPECT_LT(words[1], words[0] * 3 / 4);
}

}  // namespace
}  // namespace spardl
