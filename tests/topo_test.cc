// The topology subsystem: routing-path invariants on every fabric,
// bit-for-bit flat-topology equivalence with the legacy CostModel
// charging, and the contention regressions (two flows through a shared
// link must serialize instead of magically overlapping).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "baselines/registry.h"
#include "simnet/cluster.h"
#include "test_util.h"
#include "topo/topologies.h"
#include "topo/topology_spec.h"

namespace spardl {
namespace {

std::vector<TopologySpec> AllSpecs(int p, CostModel cm) {
  // A P x 1 torus degenerates to a ring but exercises the torus plumbing
  // at every worker count; 2D grids get dedicated tests below.
  return {TopologySpec::Flat(p, cm), TopologySpec::Star(p, cm),
          TopologySpec::FatTree(p, /*rack_size=*/3, /*oversub=*/4.0, cm),
          TopologySpec::FatTree(p, /*rack_size=*/3, /*oversub=*/4.0, cm,
                                /*num_cores=*/2),
          TopologySpec::Ring(p, cm), TopologySpec::Torus(p, 1, cm)};
}

// Every route must be a contiguous walk from src's terminal to dst's
// terminal over valid, non-repeating links.
TEST(TopologyRoutingTest, PathsAreContiguousWalks) {
  for (int p : {2, 3, 7, 8}) {
    for (const TopologySpec& spec : AllSpecs(p, CostModel::Ethernet())) {
      auto built = spec.Build();
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      const std::unique_ptr<Topology>& topo = *built;
      std::vector<LinkId> path;
      for (int src = 0; src < p; ++src) {
        for (int dst = 0; dst < p; ++dst) {
          if (src == dst) continue;
          topo->Route(src, dst, &path);
          ASSERT_FALSE(path.empty()) << spec.Describe();
          std::set<LinkId> seen;
          int at = src;
          for (LinkId id : path) {
            ASSERT_GE(id, 0) << spec.Describe();
            ASSERT_LT(id, topo->num_links()) << spec.Describe();
            EXPECT_TRUE(seen.insert(id).second)
                << spec.Describe() << ": link repeated on " << src << "->"
                << dst;
            const LinkInfo link = topo->link_info(id);
            EXPECT_EQ(link.tail, at)
                << spec.Describe() << ": discontinuous path " << src << "->"
                << dst;
            at = link.head;
          }
          EXPECT_EQ(at, dst) << spec.Describe();
        }
      }
    }
  }
}

TEST(TopologyRoutingTest, RingTakesShorterDirection) {
  RingTopology ring(8, CostModel::Ethernet());
  std::vector<LinkId> path;
  ring.Route(0, 1, &path);
  EXPECT_EQ(path.size(), 1u);
  ring.Route(0, 7, &path);
  EXPECT_EQ(path.size(), 1u);  // counter-clockwise, not 7 hops around
  ring.Route(0, 4, &path);
  EXPECT_EQ(path.size(), 4u);
  ring.Route(2, 6, &path);
  EXPECT_EQ(path.size(), 4u);
}

TEST(TopologyRoutingTest, FatTreeCrossRackUsesTrunks) {
  FatTreeTopology tree(8, /*rack_size=*/4, /*oversub=*/4.0,
                       CostModel::Ethernet());
  std::vector<LinkId> path;
  tree.Route(0, 3, &path);  // same rack
  EXPECT_EQ(path.size(), 2u);
  tree.Route(0, 4, &path);  // cross rack
  EXPECT_EQ(path.size(), 4u);
  // The trunk hop carries the oversubscribed beta.
  double max_beta = 0.0;
  for (LinkId id : path) {
    max_beta = std::max(max_beta, tree.link_info(id).beta);
  }
  EXPECT_DOUBLE_EQ(max_beta, CostModel::Ethernet().beta * 4.0);
}

TEST(TopologySpecTest, ParseRoundTrips) {
  for (const char* text :
       {"flat", "star", "ring", "fattree", "fattree:4x8", "fattree:4x8x2",
        "torus:4x2", "torus:2x4", "flat+event", "fattree:4x8x2+event",
        "torus:4x2+busy"}) {
    auto spec = TopologySpec::Parse(text, 8);
    ASSERT_TRUE(spec.ok()) << text;
    EXPECT_TRUE((*spec).Build().ok()) << text;
  }
  auto spec = TopologySpec::Parse("fattree:2x16", 8);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec).rack_size, 2);
  EXPECT_DOUBLE_EQ((*spec).oversubscription, 16.0);
  EXPECT_EQ((*spec).num_cores, 1);
  EXPECT_EQ((*spec).engine, ChargeEngine::kBusyUntil);

  spec = TopologySpec::Parse("fattree:4x8x2+event", 16);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec).rack_size, 4);
  EXPECT_DOUBLE_EQ((*spec).oversubscription, 8.0);
  EXPECT_EQ((*spec).num_cores, 2);
  EXPECT_EQ((*spec).engine, ChargeEngine::kEventOrdered);
  {
    auto built = (*spec).Build();
    ASSERT_TRUE(built.ok());
    EXPECT_EQ((*built)->charge_engine(), ChargeEngine::kEventOrdered);
  }

  spec = TopologySpec::Parse("torus:4x2", 8);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec).torus_width, 4);
  EXPECT_EQ((*spec).torus_height, 2);

  // A '+' inside a numeric parameter is not an engine suffix: scientific
  // notation keeps parsing (regression for the "+event" stripping).
  spec = TopologySpec::Parse("fattree:4x1e+1", 8);
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ((*spec).oversubscription, 10.0);
  EXPECT_EQ((*spec).engine, ChargeEngine::kBusyUntil);

  EXPECT_FALSE(TopologySpec::Parse("torus", 8).ok());
  EXPECT_FALSE(TopologySpec::Parse("torus:4", 8).ok());
  EXPECT_FALSE(TopologySpec::Parse("torus:4xtwo", 8).ok());
  EXPECT_FALSE(TopologySpec::Parse("fattree:x", 8).ok());
  EXPECT_FALSE(TopologySpec::Parse("fattree:4xgarbage", 8).ok());
  EXPECT_FALSE(TopologySpec::Parse("fattree:4x8xgarbage", 8).ok());
  EXPECT_FALSE(TopologySpec::Parse("flat+warp", 8).ok());
  EXPECT_FALSE(TopologySpec::Flat(0).Build().ok());
  EXPECT_FALSE(TopologySpec::FatTree(8, 0, 4.0).Build().ok());
  EXPECT_FALSE(TopologySpec::FatTree(8, 4, 0.0).Build().ok());
  EXPECT_FALSE(TopologySpec::FatTree(8, 4, 4.0, CostModel::Ethernet(),
                                     /*num_cores=*/0)
                   .Build()
                   .ok());
  // The grid must hold exactly num_workers workers.
  EXPECT_FALSE((*TopologySpec::Parse("torus:3x3", 8)).Build().ok());
}

// Constructing the fabric directly (bypassing Build's validation) must die
// on the CHECK, not divide by zero computing the rack count.
TEST(TopologySpecTest, FatTreeCtorRejectsZeroRackSize) {
  EXPECT_DEATH(FatTreeTopology(8, 0, 4.0, CostModel::Ethernet()), "");
}

// Torus routing: dimension order (x then y), shorter way around each
// ring, Manhattan wrap distance hop counts, contiguous walks (the generic
// walk test covers P x 1; this covers real 2D grids).
TEST(TorusRoutingTest, DimensionOrderShortestPaths) {
  for (const auto& [w, h] : std::vector<std::pair<int, int>>{
           {2, 2}, {3, 2}, {4, 2}, {3, 3}, {4, 4}, {1, 4}}) {
    TorusTopology torus(w, h, CostModel::Ethernet());
    const int p = w * h;
    std::vector<LinkId> path;
    for (int src = 0; src < p; ++src) {
      for (int dst = 0; dst < p; ++dst) {
        if (src == dst) continue;
        torus.Route(src, dst, &path);
        const int dx_raw = ((dst % w) - (src % w) + w) % w;
        const int dy_raw = ((dst / w) - (src / w) + h) % h;
        const int dx = std::min(dx_raw, w - dx_raw);
        const int dy = std::min(dy_raw, h - dy_raw);
        ASSERT_EQ(path.size(), static_cast<size_t>(dx + dy))
            << w << "x" << h << " " << src << "->" << dst;
        // Contiguous walk ending at dst.
        int at = src;
        for (LinkId id : path) {
          const LinkInfo link = torus.link_info(id);
          ASSERT_EQ(link.tail, at);
          at = link.head;
        }
        EXPECT_EQ(at, dst);
      }
    }
  }
}

TEST(TorusChargeTest, UncontendedFlowPaysManhattanLatency) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 50;
  Cluster cluster(TopologySpec::Torus(4, 2, cm));
  cluster.Run([&](Comm& comm) {
    if (comm.rank() == 0) {
      // (0,0) -> (2,1): 2 x-hops + 1 y-hop.
      comm.Send(6, Payload(std::vector<float>(words, 1.0f)));
    } else if (comm.rank() == 6) {
      comm.RecvAs<std::vector<float>>(0);
      EXPECT_DOUBLE_EQ(comm.sim_now(),
                       3.0 * cm.alpha +
                           cm.beta * static_cast<double>(words));
    }
  });
}

// Crossing row flows share a ring segment and must serialize; flows in
// different rows never touch.
TEST(TorusChargeTest, RowFlowsContendColumnsDoNot) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 10'000;
  const double serialize = cm.beta * static_cast<double>(words);
  // 4x2: ranks 0..3 are row 0, ranks 4..7 are row 1. Flow A is 0 -> 2
  // (eastbound through 1). Flow B is 1 -> 3 (shares the 1 -> 2 segment
  // with A) or its row-1 twin 5 -> 7 (disjoint).
  double makespan[2];
  int slot = 0;
  for (bool same_row : {true, false}) {
    const int b_src = same_row ? 1 : 5;
    const int b_dst = same_row ? 3 : 7;
    Cluster cluster(TopologySpec::Torus(4, 2, cm));
    cluster.Run([&](Comm& comm) {
      if (comm.rank() == 0) {
        comm.Send(2, Payload(std::vector<float>(words, 1.0f)));
      } else if (comm.rank() == 2) {
        comm.RecvAs<std::vector<float>>(0);
      }
      if (comm.rank() == b_src) {
        comm.Send(b_dst, Payload(std::vector<float>(words, 1.0f)));
      } else if (comm.rank() == b_dst) {
        comm.RecvAs<std::vector<float>>(b_src);
      }
    });
    makespan[slot++] = cluster.MaxSimSeconds();
  }
  // Disjoint rows overlap fully: two 2-hop flows, uncontended.
  EXPECT_DOUBLE_EQ(makespan[1], 2.0 * cm.alpha + serialize);
  // The shared 1 -> 2 segment serializes the same-row pair.
  EXPECT_GT(makespan[0], makespan[1] + 0.9 * serialize);
}

TEST(FatTreeEcmpTest, CoreSelectionIsDeterministicAndUsed) {
  FatTreeTopology tree(8, /*rack_size=*/4, /*oversub=*/4.0,
                       CostModel::Ethernet(), /*num_cores=*/3);
  EXPECT_EQ(tree.num_cores(), 3);
  // 2 racks x 3 cores x 2 directions of trunks + 8 up + 8 down.
  EXPECT_EQ(tree.num_links(), 16 + 12);
  std::vector<LinkId> path;
  bool multiple_cores_used = false;
  int first_core = -1;
  for (int src = 0; src < 4; ++src) {
    for (int dst = 4; dst < 8; ++dst) {
      const int core = tree.CoreFor(src, dst);
      ASSERT_GE(core, 0);
      ASSERT_LT(core, 3);
      EXPECT_EQ(core, tree.CoreFor(src, dst));  // stable
      if (first_core < 0) first_core = core;
      if (core != first_core) multiple_cores_used = true;
      // The routed path's middle node must be that core's graph id.
      tree.Route(src, dst, &path);
      ASSERT_EQ(path.size(), 4u);
      const int core_node = tree.link_info(path[1]).head;
      EXPECT_EQ(core_node, 8 + 2 + core);  // P + num_racks + core
    }
  }
  EXPECT_TRUE(multiple_cores_used)
      << "ECMP hash degenerated to a single core";
}

// Two cross-rack flows that hash to different cores overlap fully — the
// rack trunk is no longer a single serialization point (the PR 2
// limitation this subsystem removes).
TEST(FatTreeEcmpTest, DistinctCoresRemoveTrunkSerialization) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 10'000;
  const double trunk_serialize =
      4.0 * cm.beta * static_cast<double>(words);

  // Find two sender/receiver pairs (rack 0 -> rack 1, all four workers
  // distinct) that ECMP pins to different cores.
  FatTreeTopology probe(8, /*rack_size=*/4, /*oversub=*/4.0, cm,
                        /*num_cores=*/2);
  int s1 = -1, d1 = -1, s2 = -1, d2 = -1;
  for (int a = 0; a < 4 && s2 < 0; ++a) {
    for (int b = 4; b < 8 && s2 < 0; ++b) {
      for (int c = 0; c < 4 && s2 < 0; ++c) {
        for (int d = 4; d < 8 && s2 < 0; ++d) {
          if (a == c || b == d) continue;
          if (probe.CoreFor(a, b) != probe.CoreFor(c, d)) {
            s1 = a;
            d1 = b;
            s2 = c;
            d2 = d;
          }
        }
      }
    }
  }
  ASSERT_GE(s2, 0) << "no core-disjoint pair found";

  double makespan[2];
  int slot = 0;
  for (int cores : {1, 2}) {
    Cluster cluster(TopologySpec::FatTree(8, /*rack_size=*/4,
                                          /*oversub=*/4.0, cm, cores));
    cluster.Run([&](Comm& comm) {
      if (comm.rank() == s1) {
        comm.Send(d1, Payload(std::vector<float>(words, 1.0f)));
      } else if (comm.rank() == s2) {
        comm.Send(d2, Payload(std::vector<float>(words, 1.0f)));
      } else if (comm.rank() == d1) {
        comm.RecvAs<std::vector<float>>(s1);
      } else if (comm.rank() == d2) {
        comm.RecvAs<std::vector<float>>(s2);
      }
    });
    makespan[slot++] = cluster.MaxSimSeconds();
  }
  const double uncontended = 2.0 * cm.alpha + trunk_serialize;
  // One core: the two flows serialize on the shared trunks.
  EXPECT_GT(makespan[0], uncontended + 0.9 * trunk_serialize);
  // Two cores with core-disjoint hashes: full overlap, uncontended time.
  EXPECT_DOUBLE_EQ(makespan[1], uncontended);
}

// The tentpole equivalence: a Cluster over TopologySpec::Flat must charge
// *exactly* (bit-for-bit, not approximately) what the legacy
// Cluster(size, CostModel) charged, on a full SparDL run.
TEST(FlatEquivalenceTest, SparDLSimTimesMatchLegacyExactly) {
  const int p = 8;
  const size_t n = 4000;
  AlgorithmConfig config;
  config.n = n;
  config.k = 400;
  config.num_workers = p;
  config.num_teams = 2;

  std::vector<double> makespans;
  std::vector<double> per_rank[2];
  int slot = 0;
  for (bool via_topology : {false, true}) {
    auto cluster =
        via_topology
            ? std::make_unique<Cluster>(
                  TopologySpec::Flat(p, CostModel::Ethernet()))
            : std::make_unique<Cluster>(p, CostModel::Ethernet());
    std::vector<std::unique_ptr<SparseAllReduce>> algos(
        static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      algos[static_cast<size_t>(r)] =
          std::move(*CreateAlgorithm("spardl", config));
    }
    for (int iter = 0; iter < 3; ++iter) {
      cluster->Run([&](Comm& comm) {
        std::vector<float> grad = testing::RandomGradient(
            n, 17 + static_cast<uint64_t>(comm.rank()) +
                   1000 * static_cast<uint64_t>(iter));
        algos[static_cast<size_t>(comm.rank())]->Run(comm, grad);
      });
    }
    makespans.push_back(cluster->MaxSimSeconds());
    for (int r = 0; r < p; ++r) {
      per_rank[slot].push_back(cluster->comm(r).sim_now());
    }
    ++slot;
  }
  EXPECT_EQ(makespans[0], makespans[1]);  // exact, not EXPECT_DOUBLE_EQ
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(per_rank[0][static_cast<size_t>(r)],
              per_rank[1][static_cast<size_t>(r)])
        << "rank " << r;
  }
}

// An uncontended single flow costs the flat alpha + beta*words on star and
// in-rack fat-tree too (the per-hop split preserves the end-to-end budget).
TEST(TopologyChargeTest, UncontendedSingleFlowMatchesFlatBudget) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 100;
  const double expected = cm.alpha + static_cast<double>(words) * cm.beta;
  for (TopologySpec spec :
       {TopologySpec::Star(4, cm),
        TopologySpec::FatTree(4, /*rack_size=*/4, /*oversub=*/8.0, cm)}) {
    Cluster cluster(spec);
    cluster.Run([&](Comm& comm) {
      if (comm.rank() == 0) {
        comm.Send(1, Payload(std::vector<float>(words, 1.0f)));
      } else if (comm.rank() == 1) {
        comm.RecvAs<std::vector<float>>(0);
        EXPECT_DOUBLE_EQ(comm.sim_now(), expected) << spec.Describe();
      }
    });
  }
}

TEST(TopologyChargeTest, FatTreeCrossRackPaysLatencyAndOversub) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 100;
  Cluster cluster(TopologySpec::FatTree(4, /*rack_size=*/2,
                                        /*oversub=*/8.0, cm));
  cluster.Run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(2, Payload(std::vector<float>(words, 1.0f)));
    } else if (comm.rank() == 2) {
      comm.RecvAs<std::vector<float>>(0);
      // 4 hops x alpha/2 + oversub * beta * words at the trunk bottleneck.
      EXPECT_DOUBLE_EQ(comm.sim_now(),
                       2.0 * cm.alpha +
                           8.0 * cm.beta * static_cast<double>(words));
    }
  });
}

TEST(TopologyChargeTest, RingChargesPerHopLatency) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 50;
  Cluster cluster(TopologySpec::Ring(6, cm));
  cluster.Run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(3, Payload(std::vector<float>(words, 1.0f)));
    } else if (comm.rank() == 3) {
      comm.RecvAs<std::vector<float>>(0);
      // Three hops of alpha, one bottleneck serialization.
      EXPECT_DOUBLE_EQ(comm.sim_now(),
                       3.0 * cm.alpha +
                           cm.beta * static_cast<double>(words));
    }
  });
}

// The contention regression: one sender fanning out to two receivers
// overlaps fully on the flat crossbar, but must serialize on its single
// star uplink. Symmetric flows make the bound robust to the (wall-clock)
// order in which the receivers charge the link.
TEST(TopologyContentionTest, SharedStarUplinkSerializesTwoFlows) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 10'000;
  const double serialize = cm.beta * static_cast<double>(words);

  double makespan[2];
  int slot = 0;
  for (TopologySpec spec :
       {TopologySpec::Flat(3, cm), TopologySpec::Star(3, cm)}) {
    Cluster cluster(spec);
    cluster.Run([&](Comm& comm) {
      if (comm.rank() == 0) {
        comm.Send(1, Payload(std::vector<float>(words, 1.0f)));
        comm.Send(2, Payload(std::vector<float>(words, 1.0f)));
      } else {
        comm.RecvAs<std::vector<float>>(0);
      }
    });
    makespan[slot++] = cluster.MaxSimSeconds();
  }
  // Flat: both receivers finish at alpha + serialize.
  EXPECT_DOUBLE_EQ(makespan[0], cm.alpha + serialize);
  // Star: whichever flow queues second leaves the uplink one full
  // serialization later, so the makespan grows by ~serialize.
  EXPECT_GT(makespan[1], makespan[0] + 0.9 * serialize);
  // And an upper bound: queueing, not double charging everywhere.
  EXPECT_LT(makespan[1], makespan[0] + 1.5 * serialize);
}

// Link occupancy anchors at the *send* time: a receiver that sits in
// local compute before ingesting must not retroactively occupy the shared
// uplink and delay the other receiver by its compute time. Whichever
// wall-clock order the two charges happen in, the prompt receiver is
// delayed by at most the other flow's queueing window (alpha +
// serialization), never by the 100 s compute.
TEST(TopologyContentionTest, LateReceiverDoesNotInflateSharedLink) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 10'000;
  const double serialize = cm.beta * static_cast<double>(words);
  Cluster cluster(TopologySpec::Star(3, cm));
  cluster.Run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(std::vector<float>(words, 1.0f)));
      comm.Send(2, Payload(std::vector<float>(words, 1.0f)));
    } else if (comm.rank() == 1) {
      comm.Compute(100.0);  // late ingest: traversal overlaps compute
      comm.RecvAs<std::vector<float>>(0);
      EXPECT_DOUBLE_EQ(comm.sim_now(), 100.0);
    } else {
      comm.RecvAs<std::vector<float>>(0);
      EXPECT_LE(comm.sim_now(), 2.0 * cm.alpha + 3.0 * serialize);
    }
  });
}

// Same regression through a rack trunk: two cross-rack flows with
// distinct senders and receivers share only the rack-0 uplink.
TEST(TopologyContentionTest, SharedRackTrunkSerializesCrossRackFlows) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 10'000;
  const double oversub = 4.0;
  const double trunk_serialize =
      oversub * cm.beta * static_cast<double>(words);

  Cluster cluster(TopologySpec::FatTree(4, /*rack_size=*/2, oversub, cm));
  cluster.Run([&](Comm& comm) {
    // rank 0 -> rank 2 and rank 1 -> rank 3, both rack 0 -> rack 1.
    if (comm.rank() == 0) {
      comm.Send(2, Payload(std::vector<float>(words, 1.0f)));
    } else if (comm.rank() == 1) {
      comm.Send(3, Payload(std::vector<float>(words, 1.0f)));
    } else {
      comm.RecvAs<std::vector<float>>(comm.rank() - 2);
    }
  });
  const double uncontended = 2.0 * cm.alpha + trunk_serialize;
  EXPECT_GT(cluster.MaxSimSeconds(), uncontended + 0.9 * trunk_serialize);
}

// WorkerSlowdown folds into ingress-link scaling on every fabric and keeps
// its exact legacy semantics on flat.
TEST(TopologyNodeScaleTest, SlowdownScalesIngress) {
  const CostModel cm{1.0, 0.0};
  {
    Cluster cluster(TopologySpec::Flat(2, cm));
    cluster.network().SetWorkerSlowdown(1, 3.0);
    cluster.Run([](Comm& comm) {
      if (comm.rank() == 0) {
        comm.Send(1, Payload(int64_t{1}));
      } else {
        comm.RecvAs<int64_t>(0);
        EXPECT_DOUBLE_EQ(comm.sim_now(), 3.0);  // legacy: 3x the full alpha
      }
    });
  }
  {
    Cluster cluster(TopologySpec::Star(2, cm));
    cluster.network().SetWorkerSlowdown(1, 3.0);
    cluster.Run([](Comm& comm) {
      if (comm.rank() == 0) {
        comm.Send(1, Payload(int64_t{1}));
      } else {
        comm.RecvAs<int64_t>(0);
        // Only the downlink half of the alpha scales: 0.5 + 3 * 0.5.
        EXPECT_DOUBLE_EQ(comm.sim_now(), 2.0);
      }
    });
  }
}

// Reset must rewind link busy clocks along with worker clocks, or warm-up
// occupancy would leak into the measured phase.
TEST(TopologyResetTest, ResetClearsLinkClocks) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 10'000;
  Cluster cluster(TopologySpec::Star(3, cm));
  double first = 0.0;
  for (int phase = 0; phase < 2; ++phase) {
    cluster.Run([&](Comm& comm) {
      if (comm.rank() == 0) {
        comm.Send(1, Payload(std::vector<float>(words, 1.0f)));
        comm.Send(2, Payload(std::vector<float>(words, 1.0f)));
      } else {
        comm.RecvAs<std::vector<float>>(0);
      }
    });
    if (phase == 0) {
      first = cluster.MaxSimSeconds();
      cluster.ResetClocksAndStats();
    }
  }
  EXPECT_DOUBLE_EQ(cluster.MaxSimSeconds(), first);
}

// Every algorithm still produces consistent replicas on a contended,
// multi-hop fabric — topology changes timing, never data.
TEST(TopologyConsistencyTest, AlgorithmsConsistentOnEveryFabric) {
  const int p = 6;
  const size_t n = 600;
  AlgorithmConfig config;
  config.n = n;
  config.k = 60;
  config.num_workers = p;

  for (const TopologySpec& spec : AllSpecs(p, CostModel::Ethernet())) {
    for (const char* algo : {"spardl", "topka", "oktopk"}) {
      Cluster cluster(spec);
      std::vector<std::unique_ptr<SparseAllReduce>> algos(
          static_cast<size_t>(p));
      for (int r = 0; r < p; ++r) {
        algos[static_cast<size_t>(r)] =
            std::move(*CreateAlgorithm(algo, config));
      }
      std::vector<SparseVector> outs(static_cast<size_t>(p));
      cluster.Run([&](Comm& comm) {
        std::vector<float> grad = testing::RandomGradient(
            n, 11 + static_cast<uint64_t>(comm.rank()));
        outs[static_cast<size_t>(comm.rank())] =
            algos[static_cast<size_t>(comm.rank())]->Run(comm, grad);
      });
      for (int r = 1; r < p; ++r) {
        EXPECT_EQ(outs[static_cast<size_t>(r)], outs[0])
            << spec.Describe() << " " << algo;
      }
    }
  }
}

}  // namespace
}  // namespace spardl
