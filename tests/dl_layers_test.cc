#include "dl/layers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "dl/loss.h"
#include "dl/model.h"

namespace spardl {
namespace {

// Finite-difference gradient check of an entire model against a scalar
// loss: the analytic parameter gradient from Backward must match
// (loss(p+eps) - loss(p-eps)) / 2eps for every parameter. This validates
// each layer's backprop exactly once wired end-to-end.
double EvalLoss(Model* model, const Matrix& input,
                const std::vector<int>& labels) {
  const Matrix out = model->Forward(input);
  return SoftmaxCrossEntropy(out, labels).loss;
}

void CheckModelGradients(Model* model, const Matrix& input,
                         const std::vector<int>& labels, double tolerance) {
  model->ZeroGrads();
  const Matrix out = model->Forward(input);
  const LossResult loss = SoftmaxCrossEntropy(out, labels);
  model->Backward(loss.grad);

  std::span<float> params = model->params();
  std::span<float> grads = model->grads();
  const float eps = 1e-2f;
  // Check a deterministic subset of parameters (every stride-th).
  const size_t stride = std::max<size_t>(1, params.size() / 60);
  for (size_t i = 0; i < params.size(); i += stride) {
    const float original = params[i];
    params[i] = original + eps;
    const double loss_plus = EvalLoss(model, input, labels);
    params[i] = original - eps;
    const double loss_minus = EvalLoss(model, input, labels);
    params[i] = original;
    const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
    EXPECT_NEAR(grads[i], numeric,
                tolerance * (1.0 + std::abs(numeric)))
        << "param " << i;
  }
}

Matrix RandomInput(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (float& v : m.data()) v = static_cast<float>(rng.NextGaussian());
  return m;
}

TEST(GradCheckTest, LinearRelu) {
  Model model;
  model.Add(std::make_unique<LinearLayer>(6, 8));
  model.Add(std::make_unique<ReluLayer>());
  model.Add(std::make_unique<LinearLayer>(8, 4));
  model.Finalize(11);
  const Matrix input = RandomInput(5, 6, 21);
  CheckModelGradients(&model, input, {0, 1, 2, 3, 1}, 2e-2);
}

TEST(GradCheckTest, Tanh) {
  Model model;
  model.Add(std::make_unique<LinearLayer>(5, 7));
  model.Add(std::make_unique<TanhLayer>());
  model.Add(std::make_unique<LinearLayer>(7, 3));
  model.Finalize(12);
  const Matrix input = RandomInput(4, 5, 22);
  CheckModelGradients(&model, input, {0, 2, 1, 0}, 2e-2);
}

TEST(GradCheckTest, EmbeddingLstm) {
  Model model;
  model.Add(std::make_unique<EmbeddingLayer>(12, 5));
  model.Add(std::make_unique<LstmLayer>(5, 6, /*seq_len=*/4));
  model.Add(std::make_unique<LinearLayer>(6, 3));
  model.Finalize(13);
  // Token-id input.
  Matrix input(3, 4);
  Rng rng(23);
  for (float& v : input.data()) {
    v = static_cast<float>(rng.NextBounded(12));
  }
  CheckModelGradients(&model, input, {0, 1, 2}, 4e-2);
}

TEST(LinearLayerTest, ForwardShapeAndBias) {
  Model model;
  model.Add(std::make_unique<LinearLayer>(3, 2));
  model.Finalize(1);
  // Set known params: W = [[1,0],[0,1],[1,1]], b = [0.5, -0.5].
  std::span<float> p = model.params();
  const float w[] = {1, 0, 0, 1, 1, 1, 0.5f, -0.5f};
  std::copy(std::begin(w), std::end(w), p.begin());
  Matrix x(1, 3);
  x.At(0, 0) = 2.0f;
  x.At(0, 1) = 3.0f;
  x.At(0, 2) = 4.0f;
  const Matrix y = model.Forward(x);
  ASSERT_EQ(y.rows(), 1u);
  ASSERT_EQ(y.cols(), 2u);
  EXPECT_FLOAT_EQ(y.At(0, 0), 2.0f + 4.0f + 0.5f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 3.0f + 4.0f - 0.5f);
}

TEST(ReluLayerTest, ClampsNegativesForwardAndBackward) {
  ReluLayer relu;
  Matrix x(1, 3);
  x.At(0, 0) = -1.0f;
  x.At(0, 1) = 0.0f;
  x.At(0, 2) = 2.0f;
  const Matrix y = relu.Forward(x);
  EXPECT_FLOAT_EQ(y.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.At(0, 2), 2.0f);
  Matrix g(1, 3);
  g.At(0, 0) = 1.0f;
  g.At(0, 1) = 1.0f;
  g.At(0, 2) = 1.0f;
  const Matrix gi = relu.Backward(g);
  EXPECT_FLOAT_EQ(gi.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gi.At(0, 1), 0.0f);  // boundary counts as inactive
  EXPECT_FLOAT_EQ(gi.At(0, 2), 1.0f);
}

TEST(EmbeddingLayerTest, LooksUpRows) {
  Model model;
  model.Add(std::make_unique<EmbeddingLayer>(4, 2));
  model.Finalize(3);
  std::span<float> p = model.params();
  for (size_t i = 0; i < p.size(); ++i) p[i] = static_cast<float>(i);
  Matrix tokens(1, 3);
  tokens.At(0, 0) = 2.0f;
  tokens.At(0, 1) = 0.0f;
  tokens.At(0, 2) = 3.0f;
  const Matrix y = model.Forward(tokens);
  ASSERT_EQ(y.cols(), 6u);
  EXPECT_FLOAT_EQ(y.At(0, 0), 4.0f);  // row 2 = {4,5}
  EXPECT_FLOAT_EQ(y.At(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(y.At(0, 2), 0.0f);  // row 0 = {0,1}
  EXPECT_FLOAT_EQ(y.At(0, 4), 6.0f);  // row 3 = {6,7}
}

TEST(LstmLayerTest, ParamCountMatchesFormula) {
  LstmLayer lstm(10, 20, 5);
  EXPECT_EQ(lstm.num_params(), 4u * 20u * (10u + 20u + 1u));
}

TEST(LstmLayerTest, OutputBoundedByTanh) {
  Model model;
  model.Add(std::make_unique<LstmLayer>(3, 4, 6));
  model.Finalize(9);
  const Matrix input = RandomInput(2, 18, 33);
  const Matrix h = model.Forward(input);
  ASSERT_EQ(h.rows(), 2u);
  ASSERT_EQ(h.cols(), 4u);
  for (float v : h.data()) {
    EXPECT_LT(std::fabs(v), 1.0f);  // |h| = |o * tanh(c)| < 1
  }
}

TEST(ModelTest, FinalizeBindsAllParams) {
  Model model;
  model.Add(std::make_unique<LinearLayer>(4, 8));
  model.Add(std::make_unique<ReluLayer>());
  model.Add(std::make_unique<LinearLayer>(8, 2));
  model.Finalize(5);
  EXPECT_EQ(model.num_params(), 4u * 8 + 8 + 8 * 2 + 2);
}

TEST(ModelTest, SameSeedSameInit) {
  auto build = [](uint64_t seed) {
    auto model = std::make_unique<Model>();
    model->Add(std::make_unique<LinearLayer>(6, 6));
    model->Finalize(seed);
    return model;
  };
  auto a = build(42);
  auto b = build(42);
  auto c = build(43);
  EXPECT_EQ(a->ParamChecksum(), b->ParamChecksum());
  EXPECT_NE(a->ParamChecksum(), c->ParamChecksum());
}

TEST(ModelTest, ZeroGradsClears) {
  Model model;
  model.Add(std::make_unique<LinearLayer>(3, 3));
  model.Finalize(4);
  const Matrix input = RandomInput(2, 3, 44);
  const Matrix out = model.Forward(input);
  model.Backward(out);  // arbitrary upstream grad
  double sum = 0.0;
  for (float g : model.grads()) sum += std::fabs(g);
  EXPECT_GT(sum, 0.0);
  model.ZeroGrads();
  for (float g : model.grads()) EXPECT_FLOAT_EQ(g, 0.0f);
}

}  // namespace
}  // namespace spardl
