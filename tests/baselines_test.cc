#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/gtopk.h"
#include "baselines/oktopk.h"
#include "baselines/registry.h"
#include "baselines/topk_allgather.h"
#include "baselines/topk_dsa.h"
#include "test_util.h"

namespace spardl {
namespace {

using ::spardl::testing::RandomGradient;
using ::spardl::testing::ReferenceSum;

AlgorithmConfig MakeConfig(int p, size_t n, size_t k) {
  AlgorithmConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = p;
  return config;
}

// Consistency: every method must leave all workers with the identical
// global gradient, across several residual-carrying iterations.
class BaselineConsistencySweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(BaselineConsistencySweep, AllWorkersIdentical) {
  const auto [name, p] = GetParam();
  const size_t n = 64u * static_cast<size_t>(p);
  const size_t k = 6u * static_cast<size_t>(p);
  std::vector<std::vector<SparseVector>> outputs;
  testing::RunAlgorithm(
      p, n, /*iterations=*/4,
      [&](int) {
        return std::move(*CreateAlgorithm(name, MakeConfig(p, n, k)));
      },
      nullptr, &outputs);
  for (size_t iter = 0; iter < outputs.size(); ++iter) {
    for (int r = 1; r < p; ++r) {
      ASSERT_EQ(outputs[iter][static_cast<size_t>(r)], outputs[iter][0])
          << name << " P=" << p << " iter=" << iter << " rank=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndWorkers, BaselineConsistencySweep,
    ::testing::Combine(::testing::Values(std::string("topka"),
                                         std::string("topkdsa"),
                                         std::string("gtopk"),
                                         std::string("oktopk"),
                                         std::string("dense")),
                       ::testing::Values(1, 2, 3, 4, 6, 8, 14)));

// With k = n nothing is ever dropped and every method must reproduce the
// exact dense sum.
class BaselineExactSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(BaselineExactSweep, MatchesDenseSumWhenKEqualsN) {
  const auto [name, p] = GetParam();
  const size_t n = 40u * static_cast<size_t>(p);
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    grads.push_back(RandomGradient(n, 77 + static_cast<uint64_t>(r)));
  }
  const std::vector<float> expected = ReferenceSum(grads);

  Cluster cluster(p, CostModel::Free());
  std::vector<SparseVector> outs(static_cast<size_t>(p));
  cluster.Run([&](Comm& comm) {
    const auto rank = static_cast<size_t>(comm.rank());
    auto algo = std::move(*CreateAlgorithm(name, MakeConfig(p, n, n)));
    std::vector<float> grad = grads[rank];
    outs[rank] = algo->Run(comm, grad);
  });
  std::vector<float> dense(n, 0.0f);
  outs[0].ScatterToDense(dense);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(dense[i], expected[i], 1e-3f) << name << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndWorkers, BaselineExactSweep,
    ::testing::Combine(::testing::Values(std::string("topka"),
                                         std::string("topkdsa"),
                                         std::string("gtopk"),
                                         std::string("oktopk"),
                                         std::string("dense")),
                       ::testing::Values(2, 4, 7, 8)));

TEST(TopkATest, BandwidthGrowsLinearlyInP) {
  // Table I: TopkA receives 2(P-1)k words per worker.
  const size_t n = 1024;
  const size_t k = 32;
  for (int p : {4, 8}) {
    Cluster cluster(p, CostModel::Ethernet());
    cluster.Run([&](Comm& comm) {
      auto algo =
          std::move(*CreateAlgorithm("topka", MakeConfig(p, n, k)));
      std::vector<float> grad =
          RandomGradient(n, static_cast<uint64_t>(comm.rank()));
      algo->Run(comm, grad);
    });
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(cluster.comm(r).stats().words_received,
                static_cast<uint64_t>(2 * k * (static_cast<size_t>(p) - 1)))
          << "P=" << p;
    }
  }
}

TEST(TopkDsaTest, DirectSendPhaseCostsLinearLatency) {
  const int p = 8;
  const size_t n = 1024;
  Cluster cluster(p, CostModel::Ethernet());
  cluster.Run([&](Comm& comm) {
    auto algo =
        std::move(*CreateAlgorithm("topkdsa", MakeConfig(p, n, 64)));
    std::vector<float> grad =
        RandomGradient(n, static_cast<uint64_t>(comm.rank()));
    algo->Run(comm, grad);
  });
  // P-1 direct receives + ceil(log2 P) all-gather receives.
  EXPECT_EQ(cluster.MaxMessagesReceived(), static_cast<uint64_t>(p - 1 + 3));
}

TEST(TopkDsaTest, DenseSwitchCapsAllGatherWords) {
  // Force heavy accumulation: k = n/2 on few workers makes region unions
  // denser than their width, so the dense encoding must cap the cost.
  const int p = 4;
  const size_t n = 256;
  const size_t k = 128;
  Cluster cluster(p, CostModel::Ethernet());
  cluster.Run([&](Comm& comm) {
    auto algo = std::move(*CreateAlgorithm("topkdsa", MakeConfig(p, n, k)));
    std::vector<float> grad =
        RandomGradient(n, 5 + static_cast<uint64_t>(comm.rank()));
    algo->Run(comm, grad);
  });
  // All-gather words are capped at (P-1)/P * n dense words by the dense
  // switch; the direct-send phase adds at most 2k COO words per sender.
  for (int r = 0; r < p; ++r) {
    EXPECT_LE(cluster.comm(r).stats().words_received,
              static_cast<uint64_t>((p - 1) * (n / p) +
                                    2 * k * static_cast<size_t>(p - 1)));
  }
}

TEST(GTopkTest, GlobalGradientHasAtMostKEntries) {
  // Power-of-two and folded non-power-of-two worker counts alike.
  for (int p : {8, 6}) {
    const size_t n = 512;
    const size_t k = 32;
    auto outs = testing::RunAlgorithm(p, n, 2, [&](int) {
      return std::move(*CreateAlgorithm("gtopk", MakeConfig(p, n, k)));
    });
    EXPECT_LE(outs[0].size(), k) << "P=" << p;
    EXPECT_GT(outs[0].size(), 0u) << "P=" << p;
  }
}

TEST(GTopkTest, FoldAddsOneExchangeForExtras) {
  // P = 6 folds ranks 4 and 5 into ranks 0 and 1: the tree base is 4, so
  // rank 5 sends once into the fold and receives the result once back.
  const int p = 6;
  const size_t n = 256;
  Cluster cluster(p, CostModel::Ethernet());
  cluster.Run([&](Comm& comm) {
    auto algo = std::move(*CreateAlgorithm("gtopk", MakeConfig(p, n, 16)));
    std::vector<float> grad =
        RandomGradient(n, static_cast<uint64_t>(comm.rank()));
    algo->Run(comm, grad);
  });
  for (int r = 4; r < 6; ++r) {
    EXPECT_EQ(cluster.comm(r).stats().messages_sent, 1u) << "rank " << r;
    EXPECT_EQ(cluster.comm(r).stats().messages_received, 1u) << "rank " << r;
  }
}

TEST(OkTopkTest, ThresholdPruningCountVaries) {
  const int p = 4;
  const size_t n = 2048;
  const size_t k = 64;
  Cluster cluster(p, CostModel::Free());
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] =
        std::move(*CreateAlgorithm("oktopk", MakeConfig(p, n, k)));
  }
  bool saw_non_exact_count = false;
  for (int iter = 0; iter < 6; ++iter) {
    std::vector<std::vector<float>> grads(static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      grads[static_cast<size_t>(r)] = RandomGradient(
          n, 1000 + static_cast<uint64_t>(iter * 10 + r));
    }
    cluster.Run([&](Comm& comm) {
      const auto rank = static_cast<size_t>(comm.rank());
      algos[rank]->Run(comm, grads[rank]);
    });
    for (int r = 0; r < p; ++r) {
      auto* oktopk = dynamic_cast<OkTopk*>(algos[static_cast<size_t>(r)].get());
      ASSERT_NE(oktopk, nullptr);
      if (iter > 0 && oktopk->last_local_count() != k) {
        saw_non_exact_count = true;
      }
    }
  }
  // Threshold pruning is inexact by design — that is the paper's point.
  EXPECT_TRUE(saw_non_exact_count);
}

TEST(OkTopkTest, RebalanceMovesBoundariesUnderSkew) {
  const int p = 4;
  const size_t n = 4000;
  const size_t k = 80;
  AlgorithmConfig config = MakeConfig(p, n, k);
  config.oktopk_rebalance_period = 4;

  Cluster cluster(p, CostModel::Free());
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] =
        std::move(*CreateAlgorithm("oktopk", config));
  }
  // Heavily skewed gradients: all the big magnitudes live in the first 10%
  // of the index space.
  for (int iter = 0; iter < 5; ++iter) {
    std::vector<std::vector<float>> grads(
        static_cast<size_t>(p), std::vector<float>(n, 0.0f));
    Rng rng(3000 + static_cast<uint64_t>(iter));
    for (int r = 0; r < p; ++r) {
      for (size_t i = 0; i < n; ++i) {
        const float scale = i < n / 10 ? 1.0f : 1e-4f;
        grads[static_cast<size_t>(r)][i] =
            scale * static_cast<float>(rng.NextGaussian());
      }
    }
    cluster.Run([&](Comm& comm) {
      const auto rank = static_cast<size_t>(comm.rank());
      algos[rank]->Run(comm, grads[rank]);
    });
  }
  auto* oktopk = dynamic_cast<OkTopk*>(algos[0].get());
  ASSERT_NE(oktopk, nullptr);
  // After rebalancing, the first cut must have moved into the hot 10%.
  EXPECT_LT(oktopk->boundaries()[1], static_cast<GradIndex>(n / 4));
}

TEST(RegistryTest, CreatesEveryRegisteredName) {
  for (const std::string& name : AlgorithmNames()) {
    const int p = 6;  // non-power-of-two: every method must construct
    auto result = CreateAlgorithm(name, MakeConfig(p, 256, 16));
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_FALSE((*result)->name().empty());
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto result = CreateAlgorithm("nccl", MakeConfig(4, 256, 16));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, NaturalResidualModes) {
  const AlgorithmConfig config = MakeConfig(4, 256, 16);
  auto topka = std::move(*CreateAlgorithm("topka", config));
  EXPECT_EQ(dynamic_cast<TopkAllGather*>(topka.get())->residuals().mode(),
            ResidualMode::kLocal);
  auto gtopk = std::move(*CreateAlgorithm("gtopk", config));
  EXPECT_EQ(dynamic_cast<GTopk*>(gtopk.get())->residuals().mode(),
            ResidualMode::kPartial);
  auto oktopk = std::move(*CreateAlgorithm("oktopk", config));
  EXPECT_EQ(dynamic_cast<OkTopk*>(oktopk.get())->residuals().mode(),
            ResidualMode::kPartial);
}

TEST(RegistryTest, ResidualModeOverride) {
  AlgorithmConfig config = MakeConfig(4, 256, 16);
  config.residual_mode = ResidualMode::kGlobal;
  auto topka = std::move(*CreateAlgorithm("topka", config));
  EXPECT_EQ(dynamic_cast<TopkAllGather*>(topka.get())->residuals().mode(),
            ResidualMode::kGlobal);
}

}  // namespace
}  // namespace spardl
