// The observability subsystem: phase accounting that survives with
// tracing disabled, span recording invariants (nesting, zero-alloc
// disabled path), the JSON exporters, and the per-link fabric counters
// on both charge engines.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "baselines/registry.h"
#include "dl/grad_profile.h"
#include "obs/exporters.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "simnet/cluster.h"
#include "test_util.h"
#include "topo/topology_spec.h"

// Allocation counter for the zero-cost-disabled-path test: the replaced
// global operator new counts only while a thread opts in, so gtest's own
// bookkeeping outside the measured region stays invisible.
namespace {
thread_local bool g_count_allocations = false;
thread_local size_t g_allocation_count = 0;
}  // namespace

// noinline keeps the compiler from pairing the inlined malloc/free
// bodies at call sites and warning about a new/free mismatch (the
// replacement pair is malloc-based on both sides, so it is consistent).
#if defined(__GNUC__)
#define SPARDL_TEST_NOINLINE __attribute__((noinline))
#else
#define SPARDL_TEST_NOINLINE
#endif

SPARDL_TEST_NOINLINE void* operator new(size_t size) {
  if (g_count_allocations) ++g_allocation_count;
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}
SPARDL_TEST_NOINLINE void* operator new[](size_t size) {
  return ::operator new(size);
}
SPARDL_TEST_NOINLINE void operator delete(void* ptr) noexcept {
  std::free(ptr);
}
SPARDL_TEST_NOINLINE void operator delete(void* ptr, size_t) noexcept {
  std::free(ptr);
}
SPARDL_TEST_NOINLINE void operator delete[](void* ptr) noexcept {
  std::free(ptr);
}
SPARDL_TEST_NOINLINE void operator delete[](void* ptr, size_t) noexcept {
  std::free(ptr);
}

namespace spardl {
namespace {

// Runs SparDL end-to-end on the given cluster (same shape as the
// trace_explorer example, scaled down for test time).
void RunSparDl(Cluster& cluster, int iterations) {
  const int p = cluster.size();
  AlgorithmConfig config;
  config.n = 1 << 12;
  config.k = config.n / 50;
  config.num_workers = p;
  config.num_teams = p % 2 == 0 ? 2 : 1;
  config.residual_mode = ResidualMode::kNone;
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto created = CreateAlgorithm("spardl", config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    algos[static_cast<size_t>(r)] = std::move(*created);
  }
  const ProfileGradientGenerator generator(config.n, /*seed=*/2024);
  for (int iter = 0; iter < iterations; ++iter) {
    cluster.Run([&](Comm& comm) {
      const SparseVector candidates =
          generator.Generate(comm.rank(), iter, config.k * 3 / 2);
      algos[static_cast<size_t>(comm.rank())]->RunOnSparse(comm, candidates);
      comm.BarrierSyncClocks();
    });
  }
}

TopologySpec SmallFatTree(ChargeEngine engine) {
  TopologySpec spec = TopologySpec::FatTree(/*num_workers=*/4,
                                            /*rack_size=*/2,
                                            /*oversubscription=*/4.0);
  spec.engine = engine;
  return spec;
}

TEST(PhaseTest, NamesUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (size_t i = 0; i < kNumPhases; ++i) {
    const std::string_view name = PhaseName(static_cast<Phase>(i));
    EXPECT_FALSE(name.empty()) << "phase " << i;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(PhaseTest, CommPhasesPrecedeComputePhases) {
  EXPECT_TRUE(IsCommPhase(Phase::kUntagged));
  EXPECT_TRUE(IsCommPhase(Phase::kSparsify));
  EXPECT_TRUE(IsCommPhase(Phase::kBucket));
  EXPECT_FALSE(IsCommPhase(Phase::kCompute));
  EXPECT_FALSE(IsCommPhase(Phase::kBarrier));
  EXPECT_FALSE(IsCommPhase(Phase::kOverlapIdle));
  EXPECT_FALSE(IsCommPhase(Phase::kLink));
}

// Satellite (b): the phase breakdown is maintained with tracing OFF and
// the comm-tagged buckets partition comm_seconds exactly (same additions,
// same order), while kCompute mirrors compute_seconds.
TEST(PhaseBreakdownTest, PartitionsCommSecondsWithTracingDisabled) {
  Cluster cluster(SmallFatTree(ChargeEngine::kEventOrdered));
  ASSERT_EQ(cluster.tracer(), nullptr);
  RunSparDl(cluster, /*iterations=*/2);
  ASSERT_EQ(cluster.tracer(), nullptr);
  for (int r = 0; r < cluster.size(); ++r) {
    const CommStats& stats = cluster.WorkerStats(r);
    ASSERT_GT(stats.comm_seconds, 0.0) << "rank " << r;
    EXPECT_NEAR(stats.CommPhaseSum(), stats.comm_seconds,
                1e-12 * stats.comm_seconds)
        << "rank " << r;
    EXPECT_DOUBLE_EQ(
        stats.phase_seconds[static_cast<size_t>(Phase::kCompute)],
        stats.compute_seconds)
        << "rank " << r;
    // SparDL's whole collective runs under tagged scopes, so nothing may
    // land in the untagged bucket.
    EXPECT_EQ(stats.phase_seconds[static_cast<size_t>(Phase::kUntagged)],
              0.0)
        << "rank " << r;
  }
}

// Scopes follow the call stack over a monotonic per-worker clock, so two
// spans on the same (track, stream) either nest or are disjoint — never
// partially overlap. Zero-length spans (instants) are always fine.
TEST(TraceRecorderTest, SpansNestPerTrackAndStream) {
  Cluster cluster(SmallFatTree(ChargeEngine::kEventOrdered));
  cluster.EnableTracing();
  RunSparDl(cluster, /*iterations=*/1);
  const TraceRecorder* tracer = cluster.tracer();
  ASSERT_NE(tracer, nullptr);
  ASSERT_GT(tracer->TotalSpans(), 0u);
  for (int w = 0; w < cluster.size(); ++w) {
    const std::vector<TraceSpan>& spans = tracer->worker_spans(w);
    EXPECT_FALSE(spans.empty()) << "worker " << w;
    for (const TraceSpan& span : spans) {
      EXPECT_LE(span.t0, span.t1) << span.name;
    }
    for (size_t i = 0; i < spans.size(); ++i) {
      for (size_t j = i + 1; j < spans.size(); ++j) {
        const TraceSpan& a = spans[i];
        const TraceSpan& b = spans[j];
        if (a.stream != b.stream) continue;
        const bool disjoint = a.t1 <= b.t0 || b.t1 <= a.t0;
        const bool a_in_b = b.t0 <= a.t0 && a.t1 <= b.t1;
        const bool b_in_a = a.t0 <= b.t0 && b.t1 <= a.t1;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "worker " << w << ": " << a.name << " [" << a.t0 << ", "
            << a.t1 << ") partially overlaps " << b.name << " [" << b.t0
            << ", " << b.t1 << ")";
      }
    }
  }
}

TEST(TraceRecorderTest, DisabledByDefaultEnableIdempotentClearOnReset) {
  Cluster cluster(SmallFatTree(ChargeEngine::kBusyUntil));
  EXPECT_EQ(cluster.tracer(), nullptr);
  TraceRecorder& first = cluster.EnableTracing();
  TraceRecorder& second = cluster.EnableTracing();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(cluster.tracer(), &first);

  RunSparDl(cluster, /*iterations=*/1);
  EXPECT_GT(first.TotalSpans(), 0u);
  EXPECT_FALSE(first.link_spans().empty());

  cluster.ResetClocksAndStats();
  EXPECT_EQ(first.TotalSpans(), 0u);
  EXPECT_TRUE(first.link_spans().empty());
}

// The disabled path must be free: with no tracer attached, clock charges
// and TraceScope perform zero heap allocations.
TEST(TraceRecorderTest, DisabledPathAllocatesNothing) {
  Network network(/*size=*/1, CostModel::Free());
  Comm comm(&network, /*rank=*/0);
  ASSERT_EQ(comm.tracer(), nullptr);

  g_allocation_count = 0;
  g_count_allocations = true;
  {
    TraceScope outer(comm, Phase::kCollective, "outer");
    comm.Compute(1e-3);
    {
      TraceScope inner(comm, Phase::kSparsify, "inner", /*a=*/3);
      inner.AddBytes(128);
      comm.ChargeOverlappedCompute(1e-4);
    }
    comm.AdvanceClockTo(1.0);
  }
  g_count_allocations = false;
  EXPECT_EQ(g_allocation_count, 0u);
  EXPECT_GT(comm.stats().compute_seconds, 0.0);
}

TEST(ExportersTest, ChromeTraceAndMetricsAreValidJson) {
  Cluster cluster(SmallFatTree(ChargeEngine::kEventOrdered));
  cluster.EnableTracing();
  RunSparDl(cluster, /*iterations=*/1);

  const std::string trace = ChromeTraceJson(cluster);
  EXPECT_TRUE(IsValidJson(trace)) << trace.substr(0, 200);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
  EXPECT_NE(trace.find("sparsify"), std::string::npos);

  const RunMetrics metrics = CollectRunMetrics(cluster, "spardl");
  EXPECT_EQ(metrics.workers, cluster.size());
  EXPECT_GT(metrics.makespan_seconds, 0.0);
  EXPECT_FALSE(metrics.links.empty());
  const std::string json = RunMetricsJson({metrics});
  EXPECT_TRUE(IsValidJson(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("spardl-run-metrics/2"), std::string::npos);
  EXPECT_FALSE(LinkUtilizationTable(metrics).empty());
  EXPECT_FALSE(TopPhasesTable(metrics).empty());
}

TEST(ExportersTest, DisabledTracingStillExportsValidDocuments) {
  Cluster cluster(4, CostModel::Ethernet());
  const std::string trace = ChromeTraceJson(cluster);
  EXPECT_TRUE(IsValidJson(trace));
  const RunMetrics metrics = CollectRunMetrics(cluster, "idle");
  EXPECT_EQ(metrics.makespan_seconds, 0.0);
  EXPECT_TRUE(metrics.links.empty());  // flat fabric: closed-form charge
  EXPECT_TRUE(IsValidJson(RunMetricsJson({metrics})));
}

TEST(ExportersTest, WriteTextFileReportsFailures) {
  const std::string path = "obs_test_write_check.tmp";
  EXPECT_TRUE(WriteTextFile(path, "hello\n"));
  std::remove(path.c_str());
  EXPECT_FALSE(
      WriteTextFile("/nonexistent-dir-zz/obs_test.tmp", "hello\n"));
}

// One uncontended message through a star fabric: both route links carry
// exactly its bytes, their busy time is bounded by the receiver's
// comm_seconds, the end-to-end charge preserves the alpha-beta budget,
// and the two charge engines account identically.
class StarLinkCounters : public ::testing::TestWithParam<ChargeEngine> {};

TEST_P(StarLinkCounters, SingleMessageAccounting) {
  const size_t kWords = 1000;
  TopologySpec spec = TopologySpec::Star(2);
  spec.engine = GetParam();
  Cluster cluster(spec);
  cluster.Run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, std::vector<float>(kWords, 1.0f));
    } else {
      comm.RecvAs<std::vector<float>>(0);
    }
  });

  const CostModel& cost = cluster.network().cost_model();
  const double expected = cost.alpha + cost.beta * kWords;
  const double comm_seconds = cluster.WorkerStats(1).comm_seconds;
  EXPECT_NEAR(comm_seconds, expected, 1e-9 * expected);

  std::vector<LinkId> path;
  cluster.topology().Route(0, 1, &path);
  ASSERT_EQ(path.size(), 2u);  // worker -> switch -> worker
  double total_alpha = 0.0;
  for (const LinkId id : path) {
    const LinkUsage usage = cluster.network().link_usage(id);
    EXPECT_EQ(usage.messages, 1u);
    EXPECT_EQ(usage.bytes, kWords * sizeof(float));
    EXPECT_GT(usage.busy_seconds, 0.0);
    EXPECT_LE(usage.busy_seconds, comm_seconds + 1e-12);
    EXPECT_EQ(usage.max_queue_seconds, 0.0);  // nothing to queue behind
    total_alpha += cluster.topology().link_info(id).alpha;
  }
  // The per-hop split preserves the reference budget end-to-end.
  EXPECT_NEAR(total_alpha, cost.alpha, 1e-12);

  // Off-route links saw no traffic.
  uint64_t total_messages = 0;
  for (LinkId id = 0; id < cluster.topology().num_links(); ++id) {
    total_messages += cluster.network().link_usage(id).messages;
  }
  EXPECT_EQ(total_messages, 2u);
}

INSTANTIATE_TEST_SUITE_P(Engines, StarLinkCounters,
                         ::testing::Values(ChargeEngine::kBusyUntil,
                                           ChargeEngine::kEventOrdered));

// Acceptance: on an oversubscribed fat-tree under all-cross-rack traffic
// the utilization table's busiest row is a trunk (both endpoints are
// switches, i.e. graph ids >= P).
TEST(LinkUtilizationTest, OversubscribedTrunkIsBusiest) {
  const int p = 8;
  const size_t kWords = 4096;
  TopologySpec spec = TopologySpec::FatTree(p, /*rack_size=*/4,
                                            /*oversubscription=*/8.0);
  spec.engine = ChargeEngine::kEventOrdered;
  Cluster cluster(spec);
  cluster.Run([&](Comm& comm) {
    const int peer = (comm.rank() + p / 2) % p;  // always cross-rack
    comm.Send(peer, std::vector<float>(kWords, 1.0f));
    comm.RecvAs<std::vector<float>>(peer);
  });

  const RunMetrics metrics = CollectRunMetrics(cluster, "cross-rack");
  ASSERT_FALSE(metrics.links.empty());
  const RunMetrics::Link& busiest = metrics.links.front();
  const LinkInfo info = cluster.topology().link_info(busiest.id);
  EXPECT_GE(info.tail, p) << busiest.name;
  EXPECT_GE(info.head, p) << busiest.name;
  EXPECT_GT(busiest.utilization, 0.0);
  EXPECT_LE(busiest.utilization, 1.0 + 1e-12);
}

}  // namespace
}  // namespace spardl
