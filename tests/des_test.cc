// The simnet v3 event-ordered engine (src/des): LinkServer fairness and
// deterministic tie-breaking, exact equivalence with the busy-until
// engine on uncontended paths, bit-for-bit flat/legacy equality under
// both engines, and the headline regression — run-to-run determinism of
// contended fat-tree times, which the busy-until engine cannot promise.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/registry.h"
#include "des/event_engine.h"
#include "simnet/cluster.h"
#include "test_util.h"
#include "topo/topologies.h"
#include "topo/topology_spec.h"

namespace spardl {
namespace {

TopologySpec WithEngine(TopologySpec spec, ChargeEngine engine) {
  spec.engine = engine;
  return spec;
}

TEST(EventQueueTest, OrdersByTimeThenKey) {
  EventQueue queue;
  queue.Push(2.0, 1);
  queue.Push(1.0, 9);
  queue.Push(1.0, 3);
  queue.Push(3.0, 0);
  ASSERT_EQ(queue.Size(), 4u);
  auto event = queue.PopEarliest();
  EXPECT_EQ(event.time, 1.0);
  EXPECT_EQ(event.flow, 3u);  // equal times break by flow key
  event = queue.PopEarliest();
  EXPECT_EQ(event.time, 1.0);
  EXPECT_EQ(event.flow, 9u);
  event = queue.PopEarliest();
  EXPECT_EQ(event.time, 2.0);
  event = queue.PopEarliest();
  EXPECT_EQ(event.time, 3.0);
  EXPECT_TRUE(queue.Empty());
}

TEST(LinkServerTest, BackToBackHeadersQueueOnBusyLink) {
  LinkServer link;
  // First header: leaves at 0 + alpha, link busy until alpha + serialize.
  EXPECT_DOUBLE_EQ(link.Serve(0.0, 0.5, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(link.busy_until(), 2.5);
  // Second header arriving earlier than busy-until starts at busy-until.
  EXPECT_DOUBLE_EQ(link.Serve(1.0, 0.5, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(link.busy_until(), 5.0);
  // A header arriving after the link went idle is not delayed.
  EXPECT_DOUBLE_EQ(link.Serve(10.0, 0.5, 2.0), 10.5);
  link.Reset();
  EXPECT_DOUBLE_EQ(link.busy_until(), 0.0);
}

// Two same-time flows sharing one star uplink must be served in flow-key
// order (sender's send order), each getting exactly one serialization
// window — fair FIFO queueing, no double-charging, no overlap.
TEST(LinkServerFairnessTest, SameTimeFlowsSerializeInSendOrder) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 10'000;
  const double serialize = cm.beta * static_cast<double>(words);
  Cluster cluster(
      WithEngine(TopologySpec::Star(3, cm), ChargeEngine::kEventOrdered));
  cluster.Run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(std::vector<float>(words, 1.0f)));
      comm.Send(2, Payload(std::vector<float>(words, 1.0f)));
    } else if (comm.rank() == 1) {
      comm.RecvAs<std::vector<float>>(0);
      // First flow off the uplink (key order: dst 1 before dst 2):
      // alpha + one serialization.
      EXPECT_DOUBLE_EQ(comm.sim_now(), cm.alpha + serialize);
    } else {
      comm.RecvAs<std::vector<float>>(0);
      // Second flow's header leaves the shared uplink only once the first
      // body crossed it (alpha/2 + serialize), then pays the remaining
      // uplink + downlink latency and its own serialization:
      // (alpha/2 + serialize) + alpha/2 + alpha/2 + serialize.
      EXPECT_DOUBLE_EQ(comm.sim_now(), 1.5 * cm.alpha + 2.0 * serialize);
    }
  });
}

// The flow with the earlier logical send time gets a shared link first
// even when its receiver charges *second* in wall-clock order — exactly
// what the busy-until engine cannot guarantee. Driving the Comm endpoints
// from one thread makes the charge order fully ours: two cross-rack flows
// share the rack-0 trunk (and the rack-1 return trunk); the later-sent
// flow's receiver consumes first.
TEST(LinkServerFairnessTest, EarlierSendTimeWinsRegardlessOfChargeOrder) {
  const CostModel cm{1e-3, 1e-6};
  const size_t words = 10'000;
  const double s_trunk = 4.0 * cm.beta * static_cast<double>(words);
  const TopologySpec spec =
      WithEngine(TopologySpec::FatTree(4, /*rack_size=*/2, /*oversub=*/4.0,
                                       cm),
                 ChargeEngine::kEventOrdered);
  auto built = spec.Build();
  ASSERT_TRUE(built.ok());
  Network network(std::move(*built));
  Comm early_sender(&network, 0);
  Comm late_sender(&network, 1);
  Comm early_receiver(&network, 2);
  Comm late_receiver(&network, 3);

  // Flow A: 0 -> 2 injected at t = 0. Flow B: 1 -> 3 injected at
  // t = alpha, well inside A's trunk serialization window.
  early_sender.Send(2, Payload(std::vector<float>(words, 1.0f)));
  late_sender.Compute(cm.alpha);
  late_sender.Send(3, Payload(std::vector<float>(words, 1.0f)));

  // Consume the *later* flow first. Were link order decided by charge
  // order (busy-until), B would win the trunk; the event engine must give
  // it to A, which was injected first.
  late_receiver.RecvAs<std::vector<float>>(1);
  early_receiver.RecvAs<std::vector<float>>(0);

  // A rides an idle fabric: 4 hops of alpha/2 plus the trunk bottleneck.
  EXPECT_DOUBLE_EQ(early_receiver.sim_now(), 2.0 * cm.alpha + s_trunk);
  // B's header reaches the trunk while A's body crosses it, waits out
  // A's occupancy on both trunks, then pays its own bottleneck:
  // (alpha + s_trunk) + alpha/2 [up-trunk] ... + alpha/2 [down-trunk]
  // + alpha/2 [downlink] + s_trunk = 2.5*alpha + 2*s_trunk.
  EXPECT_DOUBLE_EQ(late_receiver.sim_now(), 2.5 * cm.alpha + 2.0 * s_trunk);
}

// Uncontended permutation traffic (each worker sends to exactly one
// distinct peer, so no two flows share any link on a star) must charge
// bit-identically under both engines.
TEST(EngineEquivalenceTest, UncontendedPathsMatchBusyUntilExactly) {
  const CostModel cm{1e-3, 1e-6};
  const int p = 6;
  std::vector<std::vector<double>> per_rank(2);
  int slot = 0;
  for (ChargeEngine engine :
       {ChargeEngine::kBusyUntil, ChargeEngine::kEventOrdered}) {
    for (TopologySpec spec :
         {TopologySpec::Star(p, cm),
          TopologySpec::FatTree(p, /*rack_size=*/3, /*oversub=*/4.0, cm)}) {
      spec.engine = engine;
      Cluster cluster(spec);
      for (int round = 0; round < 3; ++round) {
        cluster.Run([&](Comm& comm) {
          // Neighbour permutation r -> r+1: on the star every flow has a
          // private uplink/downlink; on the 2-rack fat tree the two
          // cross-rack flows (2->3 and 5->0) use opposite trunk pairs —
          // no link is shared, so the engines must agree bit-for-bit.
          const int dst = (comm.rank() + 1) % p;
          const int src = (comm.rank() + p - 1) % p;
          comm.Compute(1e-4 * static_cast<double>(comm.rank() + round));
          comm.Send(dst, Payload(std::vector<float>(
                             100 + 10 * static_cast<size_t>(comm.rank()) +
                                 50 * static_cast<size_t>(round),
                             1.0f)));
          comm.RecvAs<std::vector<float>>(src);
        });
      }
      for (int r = 0; r < p; ++r) {
        per_rank[static_cast<size_t>(slot)].push_back(
            cluster.comm(r).sim_now());
      }
    }
    ++slot;
  }
  ASSERT_EQ(per_rank[0].size(), per_rank[1].size());
  for (size_t i = 0; i < per_rank[0].size(); ++i) {
    EXPECT_EQ(per_rank[0][i], per_rank[1][i]) << "entry " << i;
  }
}

// FlatTopology keeps its closed-form legacy charge under both engine
// selections — requesting the event engine on flat must not change a
// single bit of a full SparDL run.
TEST(EngineEquivalenceTest, FlatUnderEventEngineStaysLegacyExact) {
  const int p = 8;
  const size_t n = 4000;
  AlgorithmConfig config;
  config.n = n;
  config.k = 400;
  config.num_workers = p;
  config.num_teams = 2;

  std::vector<double> makespans;
  int slot = 0;
  std::vector<double> per_rank[2];
  for (ChargeEngine engine :
       {ChargeEngine::kBusyUntil, ChargeEngine::kEventOrdered}) {
    Cluster cluster(
        WithEngine(TopologySpec::Flat(p, CostModel::Ethernet()), engine));
    EXPECT_FALSE(cluster.network().event_ordered())
        << "flat is closed-form; the event engine must be skipped";
    std::vector<std::unique_ptr<SparseAllReduce>> algos(
        static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      algos[static_cast<size_t>(r)] =
          std::move(*CreateAlgorithm("spardl", config));
    }
    for (int iter = 0; iter < 3; ++iter) {
      cluster.Run([&](Comm& comm) {
        std::vector<float> grad = testing::RandomGradient(
            n, 23 + static_cast<uint64_t>(comm.rank()) +
                   1000 * static_cast<uint64_t>(iter));
        algos[static_cast<size_t>(comm.rank())]->Run(comm, grad);
      });
    }
    makespans.push_back(cluster.MaxSimSeconds());
    for (int r = 0; r < p; ++r) {
      per_rank[slot].push_back(cluster.comm(r).sim_now());
    }
    ++slot;
  }
  EXPECT_EQ(makespans[0], makespans[1]);  // exact, not EXPECT_DOUBLE_EQ
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(per_rank[0][static_cast<size_t>(r)],
              per_rank[1][static_cast<size_t>(r)])
        << "rank " << r;
  }
}

// One full contended run on the ISSUE's reference fabric: returns every
// worker's final clock plus the makespan.
std::vector<double> ContendedFatTreeRun(int iterations) {
  const int p = 16;
  auto parsed = TopologySpec::Parse("fattree:4x8x2+event", p);
  SPARDL_CHECK(parsed.ok());
  Cluster cluster(*parsed);
  EXPECT_TRUE(cluster.network().event_ordered());

  AlgorithmConfig config;
  config.n = 6000;
  config.k = 600;
  config.num_workers = p;
  config.num_teams = 4;
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] =
        std::move(*CreateAlgorithm("spardl", config));
  }
  for (int iter = 0; iter < iterations; ++iter) {
    cluster.Run([&](Comm& comm) {
      // Per-rank staggered compute widens the wall-clock charge-order
      // races the busy-until engine is sensitive to.
      comm.Compute(1e-5 * static_cast<double>(comm.rank() % 5));
      std::vector<float> grad = testing::RandomGradient(
          6000, 31 + static_cast<uint64_t>(comm.rank()) +
                    1000 * static_cast<uint64_t>(iter));
      algos[static_cast<size_t>(comm.rank())]->Run(comm, grad);
      // Direct cross-rack fan-in on top of the algorithm traffic, to
      // guarantee trunk contention every iteration.
      const int peer = (comm.rank() + 4) % p;
      comm.Send(peer, Payload(std::vector<float>(
                          500 + 100 * static_cast<size_t>(comm.rank() % 3),
                          1.0f)),
                /*tag=*/99);
      comm.RecvAs<std::vector<float>>((comm.rank() + p - 4) % p, /*tag=*/99);
    });
  }
  std::vector<double> times;
  for (int r = 0; r < p; ++r) times.push_back(cluster.comm(r).sim_now());
  times.push_back(cluster.MaxSimSeconds());
  return times;
}

// The acceptance criterion: >= 5 repeated runs of a contended
// fattree:4x8x2 workload produce bit-identical per-worker times. (Repeat
// the whole cluster lifecycle so thread scheduling differs arbitrarily
// between runs.)
TEST(EventOrderedDeterminismTest, ContendedFatTreeTimesAreBitIdentical) {
  const std::vector<double> reference = ContendedFatTreeRun(/*iterations=*/3);
  double contended_makespan = reference.back();
  EXPECT_GT(contended_makespan, 0.0);
  for (int run = 1; run < 5; ++run) {
    const std::vector<double> repeat = ContendedFatTreeRun(/*iterations=*/3);
    ASSERT_EQ(repeat.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(repeat[i], reference[i])  // exact, not EXPECT_DOUBLE_EQ
          << "run " << run << " entry " << i;
    }
  }
}

// Determinism must survive ResetClocksAndStats (warm-up/measured phase
// structure of every bench).
TEST(EventOrderedDeterminismTest, SurvivesClockReset) {
  auto one = [] {
    auto parsed = TopologySpec::Parse("star+event", 4, CostModel{1e-3, 1e-6});
    SPARDL_CHECK(parsed.ok());
    Cluster cluster(*parsed);
    for (int phase = 0; phase < 2; ++phase) {
      cluster.Run([&](Comm& comm) {
        if (comm.rank() == 0) {
          for (int dst = 1; dst < 4; ++dst) {
            comm.Send(dst, Payload(std::vector<float>(5'000, 1.0f)));
          }
        } else {
          comm.Compute(1e-4 * static_cast<double>(comm.rank()));
          comm.RecvAs<std::vector<float>>(0);
        }
      });
      if (phase == 0) cluster.ResetClocksAndStats();
    }
    return cluster.MaxSimSeconds();
  };
  const double first = one();
  for (int run = 1; run < 3; ++run) EXPECT_EQ(one(), first);
}

// The engine's blocking protocol must also handle tag-based out-of-order
// consumption and barriers without deadlock or misordering.
TEST(EventEngineProtocolTest, TagsBarriersAndClockSyncWork) {
  auto parsed = TopologySpec::Parse("ring+event", 4, CostModel{1e-3, 1e-6});
  ASSERT_TRUE(parsed.ok());
  Cluster cluster(*parsed);
  cluster.Run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, Payload(int64_t{1}), /*tag=*/7);
      comm.Send(1, Payload(int64_t{2}), /*tag=*/9);
    } else if (comm.rank() == 1) {
      EXPECT_EQ(comm.RecvAs<int64_t>(0, /*tag=*/9), 2);
      EXPECT_EQ(comm.RecvAs<int64_t>(0, /*tag=*/7), 1);
    }
    comm.Barrier();
    comm.BarrierSyncClocks();
  });
  // All clocks aligned to the max after the sync.
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(cluster.comm(r).sim_now(), cluster.comm(0).sim_now());
  }
}

// Algorithms stay data-correct under the event engine — the engine
// changes timing accounting, never payload routing.
TEST(EventEngineProtocolTest, AlgorithmsConsistentUnderEventEngine) {
  const int p = 6;
  const size_t n = 600;
  AlgorithmConfig config;
  config.n = n;
  config.k = 60;
  config.num_workers = p;
  for (const char* topo : {"star+event", "fattree:3x4x2+event",
                           "torus:3x2+event"}) {
    auto parsed = TopologySpec::Parse(topo, p);
    ASSERT_TRUE(parsed.ok()) << topo;
    for (const char* algo : {"spardl", "topka", "gtopk"}) {
      Cluster cluster(*parsed);
      std::vector<std::unique_ptr<SparseAllReduce>> algos(
          static_cast<size_t>(p));
      for (int r = 0; r < p; ++r) {
        algos[static_cast<size_t>(r)] =
            std::move(*CreateAlgorithm(algo, config));
      }
      std::vector<SparseVector> outs(static_cast<size_t>(p));
      cluster.Run([&](Comm& comm) {
        std::vector<float> grad = testing::RandomGradient(
            n, 47 + static_cast<uint64_t>(comm.rank()));
        outs[static_cast<size_t>(comm.rank())] =
            algos[static_cast<size_t>(comm.rank())]->Run(comm, grad);
      });
      for (int r = 1; r < p; ++r) {
        EXPECT_EQ(outs[static_cast<size_t>(r)], outs[0]) << topo << " "
                                                         << algo;
      }
    }
  }
}

}  // namespace
}  // namespace spardl
