// Regression suite for the layer-bucketed overlap modes on a contended
// fabric — the acceptance bar for the bucketed/priority scheduler:
//
//   * on an oversubscribed fat-tree with nonzero per-iteration compute,
//     bucketed-priority finishes the same training run in STRICTLY less
//     simulated time than the paper's step-synchronous schedule (and, in
//     this regime, plain FIFO bucketing sits strictly between the two);
//   * under the event-ordered engine the whole run is bit-deterministic:
//     re-running a mode reproduces the clock and the parameters exactly;
//   * the two bucketed modes only reorder *when* buckets travel, so they
//     end with bit-identical parameters.
//
// The workload is MakeDeepOverlapCase(): five parameter layers where the
// rear two hold ~70% of the parameters but the front three do most of the
// compute, so FIFO launch order clogs the stream with big early-ready
// rear buckets while the next forward stalls on the small front ones.

#include <gtest/gtest.h>

#include <string>

#include "dl/trainer.h"
#include "topo/topology_spec.h"
#include "train_util.h"

namespace spardl {
namespace {

struct OverlapRun {
  double total_seconds = 0.0;
  double final_metric = 0.0;
};

// 8 workers in racks of 4 behind 8x-oversubscribed uplinks, event-ordered
// engine: deterministic and contended, the regime the deep-overlap case's
// compute constant is sized for.
OverlapRun RunMode(GradSyncMode mode) {
  const TrainingCaseSpec spec = bench::MakeDeepOverlapCase();
  bench::TrainRunOptions options;
  options.num_workers = 8;
  options.k_ratio = 0.05;
  options.epochs = 2;
  options.iterations_per_epoch = 8;
  options.paper_scale_network = false;
  TopologySpec fabric =
      TopologySpec::FatTree(8, /*rack_size=*/4, /*oversubscription=*/8.0,
                            CostModel::Ethernet());
  fabric.engine = ChargeEngine::kEventOrdered;
  options.topology = fabric;
  options.sync_mode = mode;

  // RunTrainingCase CHECKs the synchronous-SGD invariant (all replicas
  // bit-identical) internally, for every mode.
  const bench::ConvergenceSeries series = bench::RunTrainingCase(
      spec, "spardl", std::string(GradSyncModeName(mode)), options);
  OverlapRun run;
  run.total_seconds = series.epochs.back().sim_seconds_cumulative;
  run.final_metric = series.epochs.back().test_metric;
  return run;
}

TEST(OverlapTrainerTest, PrioritySchedulingBeatsSynchronousOnContendedFabric) {
  const OverlapRun sync = RunMode(GradSyncMode::kStepSynchronous);
  const OverlapRun bucketed = RunMode(GradSyncMode::kBucketed);
  const OverlapRun priority = RunMode(GradSyncMode::kBucketedPriority);

  // The acceptance bar: priority scheduling strictly beats the paper's
  // step-synchronous trainer end to end.
  EXPECT_LT(priority.total_seconds, sync.total_seconds);
  // And in this regime the three modes separate fully: overlap alone
  // already wins, and priority ordering wins again on top of it.
  EXPECT_LT(bucketed.total_seconds, sync.total_seconds);
  EXPECT_LT(priority.total_seconds, bucketed.total_seconds);

  // Launch order never changes what the buckets carry: both bucketed
  // modes converge to bit-identical numerics.
  EXPECT_EQ(bucketed.final_metric, priority.final_metric);
}

TEST(OverlapTrainerTest, EventEngineRunsAreBitDeterministic) {
  const OverlapRun first = RunMode(GradSyncMode::kBucketedPriority);
  const OverlapRun second = RunMode(GradSyncMode::kBucketedPriority);
  EXPECT_EQ(first.total_seconds, second.total_seconds);
  EXPECT_EQ(first.final_metric, second.final_metric);
}

}  // namespace
}  // namespace spardl
