#include "sparse/block_partition.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace spardl {
namespace {

TEST(BlockPartitionTest, UniformWidths) {
  BlockPartition p(100, 4);
  EXPECT_EQ(p.block_width(), 25u);
  for (int b = 0; b < 4; ++b) {
    EXPECT_EQ(p.BlockStart(b), static_cast<GradIndex>(25 * b));
    EXPECT_EQ(p.BlockSize(b), 25u);
  }
}

TEST(BlockPartitionTest, RaggedLastBlock) {
  BlockPartition p(10, 4);  // width ceil(10/4) = 3
  EXPECT_EQ(p.block_width(), 3u);
  EXPECT_EQ(p.BlockSize(0), 3u);
  EXPECT_EQ(p.BlockSize(3), 1u);
  EXPECT_EQ(p.BlockEnd(3), 10u);
}

TEST(BlockPartitionTest, EmptyTrailingBlocksWhenNSmall) {
  BlockPartition p(3, 8);  // width 1; blocks 3..7 empty
  EXPECT_EQ(p.BlockSize(2), 1u);
  EXPECT_EQ(p.BlockSize(3), 0u);
  EXPECT_EQ(p.BlockSize(7), 0u);
}

TEST(BlockPartitionTest, BlockOfRoundTrips) {
  BlockPartition p(97, 7);
  for (GradIndex i = 0; i < 97; ++i) {
    const int b = p.BlockOf(i);
    EXPECT_GE(i, p.BlockStart(b));
    EXPECT_LT(i, p.BlockEnd(b));
  }
}

TEST(BlockPartitionTest, PerBlockBudgetCeilsAndFloorsAtOne) {
  BlockPartition p(1000, 4);
  EXPECT_EQ(p.PerBlockBudget(100), 25u);
  EXPECT_EQ(p.PerBlockBudget(101), 26u);
  EXPECT_EQ(p.PerBlockBudget(1), 1u);
}

TEST(BlockPartitionTest, DiesOnZeroInputs) {
  EXPECT_DEATH(BlockPartition(0, 4), "");
  EXPECT_DEATH(BlockPartition(10, 0), "");
}

TEST(SrsBagLayoutTest, NumStepsIsCeilLog2) {
  EXPECT_EQ(SrsBagLayout::NumSteps(1), 0);
  EXPECT_EQ(SrsBagLayout::NumSteps(2), 1);
  EXPECT_EQ(SrsBagLayout::NumSteps(3), 2);
  EXPECT_EQ(SrsBagLayout::NumSteps(4), 2);
  EXPECT_EQ(SrsBagLayout::NumSteps(6), 3);
  EXPECT_EQ(SrsBagLayout::NumSteps(8), 3);
  EXPECT_EQ(SrsBagLayout::NumSteps(14), 4);
}

// The paper's Example 1: P = 6, worker 1 (0-indexed rank 0): B0 = {0},
// B1 = {1}, B2 = {2,3}, B3 = {4,5} (short bag, E = 6 - 4 = 2).
TEST(SrsBagLayoutTest, PaperExampleSixWorkers) {
  SrsBagLayout layout(6, 0);
  EXPECT_EQ(layout.num_steps(), 3);
  EXPECT_EQ(layout.Bag(0), (std::vector<int>{0}));
  EXPECT_EQ(layout.Bag(1), (std::vector<int>{1}));
  EXPECT_EQ(layout.Bag(2), (std::vector<int>{2, 3}));
  EXPECT_EQ(layout.Bag(3), (std::vector<int>{4, 5}));
}

// The paper's Example 2 distances: step 1 -> 4, step 2 -> 2, step 3 -> 1.
TEST(SrsBagLayoutTest, PaperExampleDistances) {
  SrsBagLayout layout(6, 0);
  EXPECT_EQ(layout.StepDistance(1), 4);
  EXPECT_EQ(layout.StepDistance(2), 2);
  EXPECT_EQ(layout.StepDistance(3), 1);
  EXPECT_EQ(layout.SendPeer(1), 4);
  EXPECT_EQ(layout.RecvPeer(1), 2);
  EXPECT_EQ(layout.BagForStep(1), 3);
  EXPECT_EQ(layout.BagForStep(3), 1);
}

TEST(SrsBagLayoutTest, CircularWrapAround) {
  SrsBagLayout layout(6, 4);
  EXPECT_EQ(layout.Bag(0), (std::vector<int>{4}));
  EXPECT_EQ(layout.Bag(1), (std::vector<int>{5}));
  EXPECT_EQ(layout.Bag(2), (std::vector<int>{0, 1}));
  EXPECT_EQ(layout.Bag(3), (std::vector<int>{2, 3}));
}

class SrsBagLayoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(SrsBagLayoutSweep, BagsPartitionAllBlocks) {
  const int p = GetParam();
  for (int rank = 0; rank < p; ++rank) {
    SrsBagLayout layout(p, rank);
    std::set<int> seen;
    for (int bag = 0; bag <= layout.num_steps(); ++bag) {
      for (int block : layout.Bag(bag)) {
        EXPECT_TRUE(seen.insert(block).second)
            << "block " << block << " in two bags";
      }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), p);
  }
}

TEST_P(SrsBagLayoutSweep, BagSizesArePowersOfTwoExceptLast) {
  const int p = GetParam();
  SrsBagLayout layout(p, 0);
  const int l = layout.num_steps();
  for (int bag = 1; bag < l; ++bag) {
    EXPECT_EQ(layout.Bag(bag).size(), static_cast<size_t>(1) << (bag - 1));
  }
  if (l >= 1) {
    const int expected_last = p - (1 << (l - 1));  // E = P - 2^(l-1)
    EXPECT_EQ(static_cast<int>(layout.Bag(l).size()), expected_last);
  }
}

// Theorem 1 at the layout level: the blocks a worker sends at step i are a
// subset of the blocks its target still holds before step i.
TEST_P(SrsBagLayoutSweep, Theorem1HoldsForEveryRankAndStep) {
  const int p = GetParam();
  for (int rank = 0; rank < p; ++rank) {
    SrsBagLayout sender(p, rank);
    for (int step = 1; step <= sender.num_steps(); ++step) {
      SrsBagLayout target(p, sender.SendPeer(step));
      const std::vector<int> held = target.HeldBlocksBeforeStep(step);
      const std::set<int> held_set(held.begin(), held.end());
      for (int block : sender.Bag(sender.BagForStep(step))) {
        EXPECT_TRUE(held_set.count(block))
            << "P=" << p << " rank=" << rank << " step=" << step
            << " block=" << block;
      }
    }
  }
}

TEST_P(SrsBagLayoutSweep, SendRecvPeersAreInverse) {
  const int p = GetParam();
  for (int rank = 0; rank < p; ++rank) {
    SrsBagLayout layout(p, rank);
    for (int step = 1; step <= layout.num_steps(); ++step) {
      SrsBagLayout peer(p, layout.SendPeer(step));
      EXPECT_EQ(peer.RecvPeer(step), rank);
    }
  }
}

TEST_P(SrsBagLayoutSweep, FinalHeldBlockIsOwnRank) {
  const int p = GetParam();
  for (int rank = 0; rank < p; ++rank) {
    SrsBagLayout layout(p, rank);
    const std::vector<int> held =
        layout.HeldBlocksBeforeStep(layout.num_steps() + 1);
    ASSERT_EQ(held.size(), 1u);
    EXPECT_EQ(held[0], rank);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, SrsBagLayoutSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12,
                                           14, 16, 17, 31, 32));

}  // namespace
}  // namespace spardl
