// Dense <-> sparse round-trip coverage beyond the unit checks in
// sparse_vector_test.cc: empty and all-zero inputs, k = n selection,
// full-vector reconstruction, and duplicate-index rejection at the
// construction boundary.

#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "sparse/sparse_vector.h"
#include "sparse/topk.h"
#include "test_util.h"

namespace spardl {
namespace {

TEST(SparseRoundTripTest, EmptyDenseProducesEmptySparse) {
  const std::vector<float> dense;
  const SparseVector sparse = SparseVector::FromDense(dense);
  EXPECT_TRUE(sparse.empty());
  EXPECT_EQ(sparse.WireWords(), 0u);
}

TEST(SparseRoundTripTest, AllZeroDenseProducesEmptySparse) {
  const std::vector<float> dense(64, 0.0f);
  const SparseVector sparse = SparseVector::FromDense(dense);
  EXPECT_TRUE(sparse.empty());
  // Scattering the empty vector back is a no-op.
  std::vector<float> out(64, 0.0f);
  sparse.ScatterToDense(out);
  EXPECT_EQ(out, dense);
}

TEST(SparseRoundTripTest, DenseToSparseToDenseIsLossless) {
  std::vector<float> dense = testing::RandomGradient(512, /*seed=*/7);
  dense[0] = 0.0f;    // holes must survive the round trip
  dense[255] = 0.0f;
  dense[511] = 0.0f;
  const SparseVector sparse = SparseVector::FromDense(dense);
  std::vector<float> rebuilt(dense.size(), 0.0f);
  sparse.ScatterToDense(rebuilt);
  EXPECT_EQ(rebuilt, dense);
}

TEST(SparseRoundTripTest, RoundTripPreservesValueSum) {
  const std::vector<float> dense = testing::RandomGradient(256, /*seed=*/11);
  const SparseVector sparse = SparseVector::FromDense(dense);
  double dense_sum = 0.0;
  for (float v : dense) dense_sum += v;
  EXPECT_NEAR(sparse.ValueSum(), dense_sum, 1e-4);
}

TEST(SparseRoundTripTest, BaseIndexShiftsReconstruction) {
  const std::vector<float> dense = {1.0f, 0.0f, -2.0f, 3.0f};
  const SparseVector sparse = SparseVector::FromDense(dense, /*base_index=*/100);
  EXPECT_TRUE(sparse.IndicesWithin(100, 104));
  std::vector<float> wide(200, 0.0f);
  sparse.ScatterToDense(wide);
  EXPECT_EQ(wide[100], 1.0f);
  EXPECT_EQ(wide[102], -2.0f);
  EXPECT_EQ(wide[103], 3.0f);
  EXPECT_EQ(wide[101], 0.0f);
}

TEST(SparseRoundTripTest, TopKWithKEqualsNKeepsEveryNonZero) {
  std::vector<float> dense = testing::RandomGradient(128, /*seed=*/3);
  dense[17] = 0.0f;  // zeros carry no information and are never selected
  SparseVector kept;
  SparseVector discarded;
  TopKDense(dense, /*base_index=*/0, /*k=*/dense.size(), &kept, &discarded);
  EXPECT_TRUE(discarded.empty());
  std::vector<float> rebuilt(dense.size(), 0.0f);
  kept.ScatterToDense(rebuilt);
  EXPECT_EQ(rebuilt, dense);
}

TEST(SparseRoundTripTest, TopKKeptPlusDiscardedReassembleDense) {
  const std::vector<float> dense = testing::RandomGradient(256, /*seed=*/5);
  SparseVector kept;
  SparseVector discarded;
  TopKDense(dense, /*base_index=*/0, /*k=*/16, &kept, &discarded);
  EXPECT_EQ(kept.size(), 16u);
  std::vector<float> rebuilt(dense.size(), 0.0f);
  kept.ScatterToDense(rebuilt);
  discarded.AddToDense(rebuilt);
  EXPECT_EQ(rebuilt, dense);
}

TEST(SparseRoundTripDeathTest, ConstructorRejectsDuplicateIndices) {
  EXPECT_DEATH(SparseVector({3, 3}, {1.0f, 2.0f}), "");
}

TEST(SparseRoundTripDeathTest, PushBackRejectsNonAscendingIndex) {
#ifndef NDEBUG
  SparseVector v;
  v.PushBack(5, 1.0f);
  EXPECT_DEATH(v.PushBack(5, 2.0f), "");
#else
  GTEST_SKIP() << "PushBack ordering is a DCHECK; release builds skip it";
#endif
}

}  // namespace
}  // namespace spardl
