#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"

namespace spardl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k too large");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "k too large");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k too large");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  SPARDL_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutOfTemporary) {
  auto make = []() -> Result<std::string> { return std::string("abc"); };
  std::string value = std::move(*make());
  EXPECT_EQ(value, "abc");
}

TEST(ResultTest, AccessingErrorValueAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "boom");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
}

TEST(HumanBytesTest, PicksUnits) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(1536.0 * 1024 * 1024), "1.50 GiB");
}

TEST(HumanSecondsTest, PicksUnits) {
  EXPECT_EQ(HumanSeconds(2.0), "2.000 s");
  EXPECT_EQ(HumanSeconds(2e-3), "2.000 ms");
  EXPECT_EQ(HumanSeconds(2e-6), "2.000 us");
  EXPECT_EQ(HumanSeconds(2e-9), "2.0 ns");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const uint64_t first = a();
  a.Seed(7);
  EXPECT_EQ(a(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / samples;
  const double var = sum_sq / samples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

}  // namespace
}  // namespace spardl
