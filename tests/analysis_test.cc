// Critical-path analysis + per-iteration time series (src/obs/analysis):
// the path identity (segments tile [0, makespan] exactly) on the flat
// closed form and on a contended fat-tree under the event engine, what-if
// monotonicity, byte-identical artifacts across runs, the straggler
// report, the fixed-bucket histogram, and the JSON DOM parser the
// spardl-analyze viewer reads artifacts back with.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baselines/registry.h"
#include "dl/grad_profile.h"
#include "obs/analysis.h"
#include "obs/json.h"
#include "simnet/cluster.h"
#include "topo/topology_spec.h"

namespace spardl {
namespace {

// SparDL end-to-end with a nonzero compute constant and an iteration
// mark before each barrier (the trainer/bench loop shape, scaled down).
void RunSparDl(Cluster& cluster, int iterations) {
  const int p = cluster.size();
  AlgorithmConfig config;
  config.n = 1 << 12;
  config.k = config.n / 50;
  config.num_workers = p;
  config.num_teams = p % 2 == 0 ? 2 : 1;
  config.residual_mode = ResidualMode::kNone;
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto created = CreateAlgorithm("spardl", config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    algos[static_cast<size_t>(r)] = std::move(*created);
  }
  const ProfileGradientGenerator generator(config.n, /*seed=*/2024);
  for (int iter = 0; iter < iterations; ++iter) {
    cluster.Run([&](Comm& comm) {
      comm.Compute(1e-4);
      const SparseVector candidates =
          generator.Generate(comm.rank(), iter, config.k * 3 / 2);
      algos[static_cast<size_t>(comm.rank())]->RunOnSparse(comm, candidates);
      comm.MarkIteration();
      comm.BarrierSyncClocks();
    });
  }
}

TopologySpec ContendedFatTree() {
  auto parsed = TopologySpec::Parse("fattree:4x8x2+event", 8);
  EXPECT_TRUE(parsed.ok());
  return *parsed;
}

// The enforced invariant, checked the strong way: exact boundary
// equality segment-to-segment, exact [0, makespan] coverage, and the
// forward-order sum reproducing path_seconds bit-for-bit.
void CheckIdentity(const Cluster& cluster,
                   const CriticalPathReport& report) {
  EXPECT_TRUE(report.identity_ok);
  EXPECT_EQ(report.makespan, cluster.MaxSimSeconds());
  ASSERT_FALSE(report.segments.empty());
  EXPECT_EQ(report.segments.front().t0, 0.0);
  EXPECT_EQ(report.segments.back().t1, report.makespan);
  double sum = 0.0;
  for (size_t i = 0; i < report.segments.size(); ++i) {
    const CriticalSegment& segment = report.segments[i];
    EXPECT_LT(segment.t0, segment.t1) << "segment " << i;
    if (i > 0) {
      EXPECT_EQ(report.segments[i - 1].t1, segment.t0)
          << "gap before segment " << i;
    }
    sum += segment.seconds();
  }
  EXPECT_EQ(sum, report.path_seconds);
  EXPECT_GT(report.path_seconds, 0.0);
}

TEST(CriticalPathTest, IdentityOnFlatClosedForm) {
  Cluster cluster(TopologySpec::Flat(4));
  cluster.EnableTracing();
  RunSparDl(cluster, /*iterations=*/2);
  const CriticalPathReport report = ExtractCriticalPath(cluster);
  CheckIdentity(cluster, report);
  // The flat closed form decomposes into alpha + serialize — no opaque
  // network segments, no queueing.
  EXPECT_EQ(report.by_kind[static_cast<size_t>(SegmentKind::kNetwork)],
            0.0);
  EXPECT_EQ(report.by_kind[static_cast<size_t>(SegmentKind::kLinkQueue)],
            0.0);
  EXPECT_GT(
      report.by_kind[static_cast<size_t>(SegmentKind::kLinkSerialize)],
      0.0);
  EXPECT_TRUE(report.by_link.empty());  // no real LinkIds on the crossbar
}

TEST(CriticalPathTest, IdentityOnContendedFatTreeEvent) {
  Cluster cluster(ContendedFatTree());
  cluster.EnableTracing();
  RunSparDl(cluster, /*iterations=*/2);
  const CriticalPathReport report = ExtractCriticalPath(cluster);
  CheckIdentity(cluster, report);
  // The event engine yields a per-hop decomposition with real links; the
  // 8x-oversubscribed trunk must show queueing on the path.
  EXPECT_FALSE(report.by_link.empty());
  EXPECT_GT(report.by_kind[static_cast<size_t>(SegmentKind::kLinkQueue)],
            0.0);
  EXPECT_GT(
      report.by_kind[static_cast<size_t>(SegmentKind::kLinkSerialize)],
      0.0);
  EXPECT_EQ(report.by_kind[static_cast<size_t>(SegmentKind::kNetwork)],
            0.0);
  EXPECT_GT(report.by_kind[static_cast<size_t>(SegmentKind::kCompute)],
            0.0);
}

TEST(CriticalPathTest, BusyUntilEngineStillClosesTheChain) {
  TopologySpec spec = ContendedFatTree();
  spec.engine = ChargeEngine::kBusyUntil;
  Cluster cluster(spec);
  cluster.EnableTracing();
  RunSparDl(cluster, /*iterations=*/1);
  const CriticalPathReport report = ExtractCriticalPath(cluster);
  CheckIdentity(cluster, report);
  // No per-hop records on this engine: network waits stay opaque.
  EXPECT_EQ(report.by_kind[static_cast<size_t>(SegmentKind::kLinkQueue)],
            0.0);
}

TEST(CriticalPathTest, NoTracingYieldsEmptyNonOkReport) {
  Cluster cluster(TopologySpec::Flat(4));
  RunSparDl(cluster, /*iterations=*/1);
  const CriticalPathReport report = ExtractCriticalPath(cluster);
  EXPECT_FALSE(report.identity_ok);
  EXPECT_TRUE(report.segments.empty());
}

TEST(CriticalPathTest, AnalysisJsonByteIdenticalAcrossRuns) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    Cluster cluster(ContendedFatTree());
    cluster.EnableTracing();
    RunSparDl(cluster, /*iterations=*/2);
    const CriticalPathReport report = ExtractCriticalPath(cluster);
    const std::string json =
        AnalysisJson(report, EstimateWhatIfs(report, cluster));
    EXPECT_TRUE(IsValidJson(json));
    if (run == 0) {
      first = json;
    } else {
      EXPECT_EQ(first, json);
    }
  }
  EXPECT_NE(first.find("\"schema\":\"spardl-analysis/1\""),
            std::string::npos);
  EXPECT_NE(first.find("\"identity_ok\":true"), std::string::npos);
}

TEST(WhatIfTest, HypotheticalsNeverLengthenThePath) {
  Cluster cluster(ContendedFatTree());
  cluster.EnableTracing();
  RunSparDl(cluster, /*iterations=*/2);
  const CriticalPathReport report = ExtractCriticalPath(cluster);
  ASSERT_TRUE(report.identity_ok);
  const std::vector<WhatIfResult> results =
      EstimateWhatIfs(report, cluster);
  ASSERT_EQ(results.size(), 4u);
  for (const WhatIfResult& result : results) {
    EXPECT_LE(result.path_seconds, report.path_seconds) << result.name;
    EXPECT_GE(result.speedup, 1.0) << result.name;
  }
  // The helper charges real compute, so pricing it away must shrink the
  // path strictly; same for zeroing every per-message latency.
  EXPECT_LT(results[0].path_seconds, report.path_seconds);  // compute-free
  EXPECT_LT(results[1].path_seconds, report.path_seconds);  // alpha-zero
  // Halving *all* serialization can never be worse than halving just the
  // trunk links'.
  EXPECT_LE(results[3].path_seconds, results[2].path_seconds);
}

TEST(TimeSeriesTest, JsonByteIdenticalAcrossRunsOnEventEngine) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    Cluster cluster(ContendedFatTree());
    cluster.EnableTracing();
    RunSparDl(cluster, /*iterations=*/3);
    const TimeSeriesReport report = BuildTimeSeries(cluster);
    EXPECT_EQ(report.workers, 8);
    EXPECT_EQ(report.iterations, 3);
    ASSERT_EQ(report.series.size(), 3u);
    const std::string json = TimeSeriesJson(report, "spardl");
    EXPECT_TRUE(IsValidJson(json));
    if (run == 0) {
      first = json;
    } else {
      EXPECT_EQ(first, json);
    }
  }
  EXPECT_NE(first.find("\"schema\":\"spardl-timeseries/1\""),
            std::string::npos);
}

TEST(TimeSeriesTest, PerIterationStatsOrderedAndPositive) {
  Cluster cluster(ContendedFatTree());
  cluster.EnableTracing();
  RunSparDl(cluster, /*iterations=*/2);
  const TimeSeriesReport report = BuildTimeSeries(cluster);
  ASSERT_EQ(report.series.size(), 2u);
  for (const IterationStat& stat : report.series) {
    EXPECT_GT(stat.wall_min, 0.0);
    EXPECT_LE(stat.wall_min, stat.wall_median);
    EXPECT_LE(stat.wall_median, stat.wall_max);
    EXPECT_LE(stat.wall_p99, stat.wall_max);
    EXPECT_GE(stat.wall_p99, stat.wall_min);
    EXPECT_GT(stat.comm_mean, 0.0);
    EXPECT_GT(stat.compute_mean, 0.0);
  }
}

TEST(TimeSeriesTest, FlagsInjectedStraggler) {
  // Pure compute, no communication, no barrier: worker 2 runs 8x longer
  // per iteration, with nothing coupling the other clocks to it.
  Cluster cluster(TopologySpec::Flat(4));
  cluster.EnableTracing();
  for (int iter = 0; iter < 3; ++iter) {
    cluster.Run([&](Comm& comm) {
      comm.Compute(comm.rank() == 2 ? 0.8 : 0.1);
      comm.MarkIteration();
    });
  }
  const TimeSeriesReport report = BuildTimeSeries(cluster, 1.5);
  EXPECT_EQ(report.iterations, 3);
  EXPECT_DOUBLE_EQ(report.median_worker_wall, 0.1);
  ASSERT_EQ(report.stragglers.size(), 1u);
  EXPECT_EQ(report.stragglers[0].worker, 2);
  EXPECT_DOUBLE_EQ(report.stragglers[0].mean_wall, 0.8);
  EXPECT_DOUBLE_EQ(report.stragglers[0].ratio, 8.0);
  ASSERT_EQ(report.series.size(), 3u);
  EXPECT_DOUBLE_EQ(report.series[0].wall_min, 0.1);
  EXPECT_DOUBLE_EQ(report.series[0].wall_max, 0.8);
  EXPECT_DOUBLE_EQ(report.series[0].wall_median, 0.1);
  // And with a permissive threshold nobody is flagged.
  EXPECT_TRUE(BuildTimeSeries(cluster, 10.0).stragglers.empty());
}

TEST(HistogramTest, QuantileEdgesAndLowerBucketSemantics) {
  FixedBucketHistogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);

  FixedBucketHistogram one;
  one.Add(7.0);
  EXPECT_EQ(one.Quantile(0.0), 7.0);
  EXPECT_EQ(one.Quantile(0.5), 7.0);
  EXPECT_EQ(one.Quantile(1.0), 7.0);

  // 99 observations at 0 and one at 100: q=0.99 lands in the first
  // bucket (lower-edge semantics), q=1 is the exact max.
  FixedBucketHistogram skewed;
  for (int i = 0; i < 99; ++i) skewed.Add(0.0);
  skewed.Add(100.0);
  EXPECT_EQ(skewed.count(), 100u);
  EXPECT_EQ(skewed.Quantile(0.0), 0.0);
  EXPECT_EQ(skewed.Quantile(0.99), 0.0);
  EXPECT_EQ(skewed.Quantile(1.0), 100.0);
}

TEST(JsonParseTest, ParsesScalarsContainersAndEscapes) {
  const auto doc = JsonParse(
      "{\"a\":1.5e2,\"b\":\"x\\u0041\\n\",\"c\":[true,null,-3],"
      "\"d\":{\"nested\":\"ok\"}}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_DOUBLE_EQ(doc->NumberOr("a", 0.0), 150.0);
  EXPECT_EQ(doc->StringOr("b", ""), "xA\n");
  const JsonValue* c = doc->Find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->is_array());
  ASSERT_EQ(c->array_items.size(), 3u);
  EXPECT_EQ(c->array_items[0].type, JsonValue::Type::kBool);
  EXPECT_TRUE(c->array_items[0].bool_value);
  EXPECT_EQ(c->array_items[1].type, JsonValue::Type::kNull);
  EXPECT_DOUBLE_EQ(c->array_items[2].number_value, -3.0);
  const JsonValue* d = doc->Find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->StringOr("nested", ""), "ok");
  // Fallbacks for missing/mistyped members.
  EXPECT_DOUBLE_EQ(doc->NumberOr("missing", -1.0), -1.0);
  EXPECT_EQ(doc->StringOr("a", "fallback"), "fallback");
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonParseTest, DecodesSurrogatePairsToUtf8) {
  const auto doc = JsonParse("{\"emoji\":\"\\uD83D\\uDE00\"}");
  ASSERT_TRUE(doc.has_value());
  const std::string emoji = doc->StringOr("emoji", "");
  EXPECT_EQ(emoji.size(), 4u);  // U+1F600 is 4 bytes of UTF-8
  EXPECT_EQ(static_cast<unsigned char>(emoji[0]), 0xF0u);
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonParse("").has_value());
  EXPECT_FALSE(JsonParse("{").has_value());
  EXPECT_FALSE(JsonParse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(JsonParse("{'a':1}").has_value());
  EXPECT_FALSE(JsonParse("{\"a\":01}").has_value());
  EXPECT_FALSE(JsonParse("[1,]").has_value());
  EXPECT_FALSE(JsonParse("nulll").has_value());
  EXPECT_FALSE(JsonParse("\"\\uD83D\"").has_value());  // lone surrogate
}

TEST(JsonParseTest, RoundTripsTheAnalysisArtifacts) {
  Cluster cluster(ContendedFatTree());
  cluster.EnableTracing();
  RunSparDl(cluster, /*iterations=*/2);
  const CriticalPathReport report = ExtractCriticalPath(cluster);
  const std::string analysis =
      AnalysisJson(report, EstimateWhatIfs(report, cluster));
  const auto parsed = JsonParse(analysis);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->StringOr("schema", ""), "spardl-analysis/1");
  EXPECT_DOUBLE_EQ(parsed->NumberOr("makespan_seconds", -1.0),
                   report.makespan);
  EXPECT_DOUBLE_EQ(parsed->NumberOr("path_seconds", -1.0),
                   report.path_seconds);
  const JsonValue* what_if = parsed->Find("what_if");
  ASSERT_NE(what_if, nullptr);
  EXPECT_EQ(what_if->array_items.size(), 4u);

  const std::string series =
      TimeSeriesJson(BuildTimeSeries(cluster), "spardl");
  const auto series_doc = JsonParse(series);
  ASSERT_TRUE(series_doc.has_value());
  EXPECT_EQ(series_doc->StringOr("schema", ""), "spardl-timeseries/1");
  EXPECT_DOUBLE_EQ(series_doc->NumberOr("iterations", 0.0), 2.0);
  ASSERT_NE(series_doc->Find("series"), nullptr);
  EXPECT_EQ(series_doc->Find("series")->array_items.size(), 2u);
}

}  // namespace
}  // namespace spardl
