#include "dl/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace spardl {
namespace {

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  Matrix logits(2, 4);  // all zeros -> uniform distribution
  const LossResult result = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectIsNearZero) {
  Matrix logits(1, 3);
  logits.At(0, 1) = 50.0f;
  const LossResult result = SoftmaxCrossEntropy(logits, {1});
  EXPECT_LT(result.loss, 1e-6);
}

TEST(SoftmaxCrossEntropyTest, GradientRowsSumToZero) {
  Matrix logits(3, 5);
  for (size_t i = 0; i < logits.data().size(); ++i) {
    logits.data()[i] = static_cast<float>(i % 7) * 0.3f;
  }
  const LossResult result = SoftmaxCrossEntropy(logits, {0, 2, 4});
  for (size_t r = 0; r < 3; ++r) {
    float row_sum = 0.0f;
    for (size_t c = 0; c < 5; ++c) row_sum += result.grad.At(r, c);
    EXPECT_NEAR(row_sum, 0.0f, 1e-6f);
  }
}

TEST(SoftmaxCrossEntropyTest, StableUnderLargeLogits) {
  Matrix logits(1, 2);
  logits.At(0, 0) = 10000.0f;
  logits.At(0, 1) = 9999.0f;
  const LossResult result = SoftmaxCrossEntropy(logits, {0});
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_NEAR(result.loss, std::log(1.0 + std::exp(-1.0)), 1e-4);
}

TEST(AccuracyTest, CountsArgmaxMatches) {
  Matrix logits(3, 2);
  logits.At(0, 0) = 1.0f;  // argmax 0, label 0: hit
  logits.At(1, 1) = 1.0f;  // argmax 1, label 0: miss
  logits.At(2, 1) = 1.0f;  // argmax 1, label 1: hit
  EXPECT_NEAR(Accuracy(logits, {0, 0, 1}), 2.0 / 3.0, 1e-9);
}

TEST(MeanSquaredErrorTest, ZeroWhenEqual) {
  Matrix a(2, 2);
  a.At(0, 0) = 1.0f;
  const LossResult result = MeanSquaredError(a, a);
  EXPECT_DOUBLE_EQ(result.loss, 0.0);
  for (float g : result.grad.data()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(MeanSquaredErrorTest, MatchesHandComputation) {
  Matrix pred(1, 2);
  Matrix target(1, 2);
  pred.At(0, 0) = 3.0f;  // diff 1
  target.At(0, 0) = 2.0f;
  pred.At(0, 1) = 0.0f;  // diff -2
  target.At(0, 1) = 2.0f;
  const LossResult result = MeanSquaredError(pred, target);
  EXPECT_DOUBLE_EQ(result.loss, (1.0 + 4.0) / 2.0);
  EXPECT_FLOAT_EQ(result.grad.At(0, 0), 2.0f * 1.0f / 2.0f);
  EXPECT_FLOAT_EQ(result.grad.At(0, 1), 2.0f * -2.0f / 2.0f);
}

}  // namespace
}  // namespace spardl
