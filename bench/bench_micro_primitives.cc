// Microbenchmarks (google-benchmark) for the primitives on SparDL's hot
// path: top-k selection, sparse merge-summation, SRS bag partitioning, and
// the collectives' wall-clock cost on the in-process cluster.
//
// Deliberately NOT wired through bench::ParseHarnessArgs: google-benchmark
// owns this binary's command line (--benchmark_filter and friends), and
// the shared --workers/--topology knobs would collide with the fixed
// per-benchmark size arguments. Every other bench harness accepts the
// shared flags; size this one with --benchmark_filter instead.

#include <benchmark/benchmark.h>

#include <vector>

#include "collectives/sparse_allgather.h"
#include "common/random.h"
#include "core/spar_reduce_scatter.h"
#include "simnet/cluster.h"
#include "sparse/topk.h"

namespace spardl {
namespace {

std::vector<float> DenseGradient(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(rng.NextGaussian());
  return out;
}

SparseVector RandomSparse(size_t n, size_t nnz, uint64_t seed) {
  Rng rng(seed);
  SparseVector out;
  GradIndex idx = 0;
  const size_t max_gap = std::max<size_t>(2, n / nnz);
  for (size_t i = 0; i < nnz && idx < n; ++i) {
    idx += 1 + static_cast<GradIndex>(rng.NextBounded(max_gap));
    if (idx >= n) break;
    out.PushBack(idx, static_cast<float>(rng.NextGaussian()));
  }
  return out;
}

void BM_TopKDense(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = n / 100;
  const std::vector<float> dense = DenseGradient(n, 1);
  TopKSelector selector;
  SparseVector kept;
  SparseVector discarded;
  for (auto _ : state) {
    selector.SelectDense(dense, 0, k, &kept, &discarded);
    benchmark::DoNotOptimize(kept.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_TopKDense)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_TopKSparse(benchmark::State& state) {
  const size_t nnz = static_cast<size_t>(state.range(0));
  const SparseVector input = RandomSparse(100 * nnz, nnz, 2);
  TopKSelector selector;
  SparseVector kept;
  SparseVector discarded;
  for (auto _ : state) {
    selector.SelectSparse(input, nnz / 4, &kept, &discarded);
    benchmark::DoNotOptimize(kept.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_TopKSparse)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_TopKSparseWarm(benchmark::State& state) {
  // The SRS re-sparsification pattern: the same selector repeatedly
  // re-selects with a carried threshold (here the data is static, the
  // best case; SRS sees slow drift).
  const size_t nnz = static_cast<size_t>(state.range(0));
  const SparseVector input = RandomSparse(100 * nnz, nnz, 2);
  TopKSelector selector;
  SparseVector kept;
  SparseVector discarded;
  float tau = 0.0f;
  for (auto _ : state) {
    selector.SelectSparseWarm(input, nnz / 4, &kept, &discarded, &tau);
    benchmark::DoNotOptimize(kept.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_TopKSparseWarm)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_MergeSum(benchmark::State& state) {
  const size_t nnz = static_cast<size_t>(state.range(0));
  const SparseVector a = RandomSparse(20 * nnz, nnz, 3);
  const SparseVector b = RandomSparse(20 * nnz, nnz, 4);
  SparseVector out;
  for (auto _ : state) {
    MergeSum(a, b, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_MergeSum)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_SumAll(benchmark::State& state) {
  // P-way merge-sum, the SAG/all-gather reduction primitive. Wide index
  // range so the loser tree (not the dense accumulator) is measured.
  const size_t p = static_cast<size_t>(state.range(0));
  const size_t nnz = 1 << 14;
  std::vector<SparseVector> inputs;
  for (size_t r = 0; r < p; ++r) {
    inputs.push_back(RandomSparse(40 * nnz, nnz, 10 + r));
  }
  size_t total = 0;
  for (const SparseVector& x : inputs) total += x.size();
  for (auto _ : state) {
    SparseVector out = SumAll(inputs);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(total));
}
BENCHMARK(BM_SumAll)->Arg(3)->Arg(8)->Arg(17);

void BM_SrsBagLayout(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SrsBagLayout layout(p, p / 2);
    benchmark::DoNotOptimize(layout.num_steps());
  }
}
BENCHMARK(BM_SrsBagLayout)->Arg(14)->Arg(64)->Arg(512);

void BM_BruckAllGatherWallTime(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  Cluster cluster(p, CostModel::Free());
  for (auto _ : state) {
    cluster.Run([&](Comm& comm) {
      BruckAllGather(comm, CommGroup::World(comm),
                     RandomSparse(1 << 16, 1 << 10,
                                  static_cast<uint64_t>(comm.rank())));
    });
  }
}
BENCHMARK(BM_BruckAllGatherWallTime)->Arg(4)->Arg(8)->Arg(14)
    ->Unit(benchmark::kMillisecond);

void BM_SparReduceScatterWallTime(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const size_t n = 1 << 18;
  Cluster cluster(p, CostModel::Free());
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    grads.push_back(DenseGradient(n, 100 + static_cast<uint64_t>(r)));
  }
  for (auto _ : state) {
    cluster.Run([&](Comm& comm) {
      SrsOptions options;
      options.k = n / 100;
      SparReduceScatter(comm, CommGroup::World(comm),
                        grads[static_cast<size_t>(comm.rank())], options,
                        nullptr);
    });
  }
}
BENCHMARK(BM_SparReduceScatterWallTime)->Arg(4)->Arg(8)->Arg(14)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spardl

BENCHMARK_MAIN();
