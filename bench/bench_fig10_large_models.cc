// Reproduces Fig. 10: per-update time on the large cases — ResNet-50
// (23.5M params) and BERT (133.5M params) — SparDL vs Ok-Topk, 14 workers.
// Paper shape: SparDL 2.3x (ResNet-50) and 2.0x (BERT) faster than
// Ok-Topk in communication.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const int p = args.workers_or(14);
  std::printf(
      "== Fig. 10: per-update time on large models, %d workers ==\n\n", p);
  for (const std::string& model : {std::string("ResNet-50"),
                                   std::string("BERT")}) {
    const ModelProfile& profile = ProfileByModel(model);
    bench::PerUpdateOptions options;
    options.num_workers = p;
    options.k_ratio = 0.01;
    options.measured_iterations = args.iterations_or(1);
    options.topology = args.TopologyOr(std::nullopt, p);
    options.placement = args.placement_or(PlacementPolicy::kContiguous);
    const auto results = bench::MeasurePerUpdateAll(
        {"oktopk", "spardl"}, profile, options);
    TablePrinter table(
        {"method", "comm (s)", "comp (s)", "total (s)", "comm speedup"});
    const double spardl_comm = results.back().comm_seconds;
    for (const auto& r : results) {
      table.AddRow({r.algo_label, StrFormat("%.4f", r.comm_seconds),
                    StrFormat("%.3f", r.compute_seconds),
                    StrFormat("%.4f", r.total_seconds()),
                    StrFormat("%.1fx", r.comm_seconds / spardl_comm)});
    }
    std::printf("%s (%s on %s, n=%zu)\n%s\n", profile.case_name.c_str(),
                profile.model.c_str(), profile.dataset.c_str(),
                profile.num_params, table.ToString().c_str());
  }
  std::printf(
      "Paper: SparDL is 2.3x (ResNet-50) / 2.0x (BERT) faster than "
      "Ok-Topk in communication cost.\n");
  return 0;
}
