// Reproduces Fig. 11: convergence on the large cases (ResNet-50-like,
// BERT-like) vs training time, SparDL vs Ok-Topk, 14 workers. Paper shape:
// comparable convergence per epoch, SparDL ~1.7x faster to finish.

#include <cstdio>
#include <string>
#include <vector>

#include "train_util.h"

int main() {
  using namespace spardl;  // NOLINT
  std::printf(
      "== Fig. 11: convergence on large cases, SparDL vs Ok-Topk ==\n\n");
  for (const std::string& case_key :
       {std::string("resnet50"), std::string("bert")}) {
    const TrainingCaseSpec spec = MakeTrainingCase(case_key);
    bench::TrainRunOptions options;
    options.num_workers = 14;
    options.k_ratio = case_key == "bert" ? 0.03 : 0.01;
    options.epochs = 5;
    options.iterations_per_epoch = 10;
    std::vector<bench::ConvergenceSeries> series;
    series.push_back(
        bench::RunTrainingCase(spec, "oktopk", "Ok-Topk", options));
    series.push_back(
        bench::RunTrainingCase(spec, "spardl", "SparDL", options));
    bench::PrintConvergence("-- " + spec.name + " --", series);
  }
  return 0;
}
