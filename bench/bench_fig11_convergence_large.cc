// Reproduces Fig. 11: convergence on the large cases (ResNet-50-like,
// BERT-like) vs training time, SparDL vs Ok-Topk, 14 workers. Paper shape:
// comparable convergence per epoch, SparDL ~1.7x faster to finish.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "train_util.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const int p = args.workers_or(14);
  std::printf(
      "== Fig. 11: convergence on large cases, SparDL vs Ok-Topk ==\n\n");
  for (const std::string& case_key :
       {std::string("resnet50"), std::string("bert")}) {
    const TrainingCaseSpec spec = MakeTrainingCase(case_key);
    bench::TrainRunOptions options;
    options.num_workers = p;
    options.k_ratio = case_key == "bert" ? 0.03 : 0.01;
    options.epochs = 5;
    options.iterations_per_epoch = args.iterations_or(10);
    options.topology = args.TopologyOr(std::nullopt, p);
    options.placement = args.placement_or(PlacementPolicy::kContiguous);
    std::vector<bench::ConvergenceSeries> series;
    series.push_back(
        bench::RunTrainingCase(spec, "oktopk", "Ok-Topk", options));
    series.push_back(
        bench::RunTrainingCase(spec, "spardl", "SparDL", options));
    bench::PrintConvergence("-- " + spec.name + " --", series);
  }
  return 0;
}
