#ifndef SPARDL_BENCH_BENCH_UTIL_H_
#define SPARDL_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "dl/grad_profile.h"
#include "simnet/cluster.h"
#include "topo/placement.h"
#include "topo/topology_spec.h"

namespace spardl {
namespace bench {

/// Shared harness CLI: every bench main accepts
///
///   --workers=N / --workers N       cluster size override
///   --iterations=N / --iterations N measured iterations override
///   --topology=SPEC                 fabric override ("fattree:4x8x2", ...)
///   --engine=busy|event             charge engine override
///   --backend=thread|fiber          worker execution backend override
///   --placement=POLICY              team layout (contiguous|rack|interleaved)
///   --trace-out=PATH                Chrome trace JSON of the last traced run
///   --metrics-out=PATH              structured run-metrics JSON (all runs)
///   --metrics-csv=PATH              per-run numeric series as CSV
///   --timeseries-out=PATH           per-iteration time-series JSON (last run)
///
/// with `SPARDL_BENCH_WORKERS` / `SPARDL_BENCH_ITERATIONS` /
/// `SPARDL_BENCH_TOPOLOGY` / `SPARDL_BENCH_ENGINE` /
/// `SPARDL_BENCH_BACKEND` /
/// `SPARDL_BENCH_PLACEMENT` / `SPARDL_BENCH_TRACE_OUT` /
/// `SPARDL_BENCH_METRICS_OUT` / `SPARDL_BENCH_METRICS_CSV` /
/// `SPARDL_BENCH_TIMESERIES_OUT` environment variables as defaults
/// (flag > env > the bench's built-in value), so CI can run the expensive
/// harnesses at smoke-tier sizes — and on any fabric/engine/team layout,
/// with artifacts — without editing code. Unknown `--` flags abort with a
/// usage message; positional args are left for the bench to interpret.
///
/// `ParseHarnessArgs` registers the four output paths process-globally;
/// the shared measurement helpers (`MeasurePerUpdate`, `RunTrainingCase`)
/// then enable tracing and persist artifacts via `ObserveRun` with no
/// per-bench code.
struct HarnessArgs {
  std::optional<int> workers;
  std::optional<int> iterations;
  /// A `TopologySpec::Parse` string (may carry a "+event" suffix).
  std::optional<std::string> topology;
  std::optional<ChargeEngine> engine;
  /// `--backend thread|fiber`: worker execution backend for every
  /// cluster this bench builds (unset = the process default, i.e.
  /// `SPARDL_EXEC_BACKEND` or thread-per-worker).
  std::optional<ExecBackend> backend;
  std::optional<PlacementPolicy> placement;
  std::optional<std::string> trace_out;
  std::optional<std::string> metrics_out;
  std::optional<std::string> metrics_csv;
  std::optional<std::string> timeseries_out;
  /// `--protocol-check` / `SPARDL_BENCH_PROTOCOL_CHECK=1`: run every
  /// cluster with the SPMD protocol verifier attached; a diagnosed
  /// divergence aborts the bench with the verifier's report.
  bool protocol_check = false;

  int workers_or(int fallback) const { return workers.value_or(fallback); }
  int iterations_or(int fallback) const {
    return iterations.value_or(fallback);
  }
  PlacementPolicy placement_or(PlacementPolicy fallback) const {
    return placement.value_or(fallback);
  }

  /// The fabric this run should use: `--topology` (parsed with `workers`
  /// and `cost`) when given, else `fallback` (nullopt = the bench's
  /// default, usually flat); `--engine` overrides the engine either way.
  /// Parse errors abort with a usage message.
  std::optional<TopologySpec> TopologyOr(
      std::optional<TopologySpec> fallback, int num_workers,
      CostModel cost = CostModel::Ethernet()) const;
};

HarnessArgs ParseHarnessArgs(int argc, char** argv);

/// True once `ParseHarnessArgs` saw any observability sink
/// (--trace-out / --metrics-out / --metrics-csv / --timeseries-out or
/// their env defaults).
bool ObservabilityEnabled();

/// Turns span recording on for `cluster` when observability is enabled
/// (no-op otherwise). Call after constructing the cluster, before the
/// measured iterations.
void MaybeEnableObservability(Cluster& cluster);

/// True once `ParseHarnessArgs` saw `--protocol-check` (or its env
/// default).
bool ProtocolCheckEnabled();

/// Attaches the SPMD protocol verifier to `cluster` when
/// `--protocol-check` was given (no-op otherwise). The shared measurement
/// helpers call this themselves; benches that build their own clusters
/// should call it after construction, before running workers.
void MaybeEnableProtocolCheck(Cluster& cluster);

/// Applies the harness `--backend` selection to `cluster` (no-op when
/// the flag was not given — the cluster then keeps the process default,
/// `Cluster::DefaultExecBackend`). Same calling convention as
/// `MaybeEnableProtocolCheck`: after construction, before running.
void ApplyExecBackend(Cluster& cluster);

/// Records one finished measurement run against the configured sinks:
/// appends the run's `RunMetrics` (with its embedded critical-path
/// analysis) and rewrites the metrics JSON/CSV, and rewrites the Chrome
/// trace and time-series JSON with this cluster's data (multiple observed
/// runs: the *last* trace/time-series wins; the metrics files keep every
/// run). Prints the top-links, critical-path, what-if, and straggler
/// tables to stdout. The straggler threshold is
/// `SPARDL_STRAGGLER_FACTOR` (default 1.5). Exits non-zero with a message
/// on any write failure. No-op when observability is disabled.
void ObserveRun(Cluster& cluster, const std::string& label);

/// The default fabric sweep shared by `bench_ext_topology` and
/// `examples/topology_explorer`: flat, star, two-rack fat-tree
/// (single-core and 2-core ECMP), ring, and — for even P >= 4 — a
/// (P/2) x 2 torus. One list so the two surfaces cannot drift.
std::vector<TopologySpec> DefaultFabricSweep(
    int num_workers, CostModel cost = CostModel::Ethernet());

/// Resolves a run's fabric from an optional per-options override: falls
/// back to the flat `cost_model` crossbar, fills a 0 worker count in the
/// spec from `num_workers`, and CHECKs the two agree. Shared by
/// `MeasurePerUpdate` and `RunTrainingCase` so the per-update benches and
/// the convergence harnesses can never resolve a `TopologySpec`
/// differently.
TopologySpec ResolveFabric(const std::optional<TopologySpec>& topology,
                           int num_workers, CostModel cost_model);

/// Result of measuring one method's per-update communication on a
/// paper-scale gradient profile.
struct PerUpdateResult {
  std::string algo_label;
  /// Simulated communication seconds per update (max over workers,
  /// averaged over measured iterations).
  double comm_seconds = 0.0;
  /// Modelled forward+backward seconds (the profile's compute constant).
  double compute_seconds = 0.0;
  /// Per-worker received words / messages per update (max over workers).
  double words_per_update = 0.0;
  double messages_per_update = 0.0;

  double total_seconds() const { return comm_seconds + compute_seconds; }
};

/// Options for a per-update measurement run.
struct PerUpdateOptions {
  int num_workers = 14;
  double k_ratio = 0.01;
  CostModel cost_model = CostModel::Ethernet();
  /// When set, the cluster runs on this fabric instead of the flat
  /// `cost_model` crossbar. A `num_workers` of 0 in the spec inherits
  /// `num_workers` above; otherwise the two must agree.
  std::optional<TopologySpec> topology;
  /// Candidate entries per worker = candidate_factor * k.
  double candidate_factor = 1.5;
  int warmup_iterations = 1;
  int measured_iterations = 2;
  int num_teams = 1;          // for "spardl"
  /// Team layout planned against the run's resolved fabric (for "spardl"
  /// with num_teams > 1; ignored by the baselines).
  PlacementPolicy placement = PlacementPolicy::kContiguous;
  uint64_t seed = 2024;
  /// Heterogeneous compute (the §VI extension on the compute side):
  /// (worker, multiplier) pairs fed to
  /// `ProfileGradientGenerator::SetComputeMultiplier`. When non-empty,
  /// every worker charges `profile.compute_seconds` (scaled by its
  /// multiplier) to its clock each iteration, so compute-slow workers
  /// surface in the per-iteration straggler report. Empty (default)
  /// keeps the legacy communication-only measurement.
  std::vector<std::pair<int, double>> compute_multipliers;
};

/// Runs `algo_name` on synthetic candidate gradients of `profile`'s size
/// and returns the per-update costs. Residual collection is disabled (the
/// O(n) dense buffer would not fit for 133.5M-parameter profiles); this
/// matches the paper's per-update-time measurements, which isolate
/// communication.
PerUpdateResult MeasurePerUpdate(const std::string& algo_name,
                                 const ModelProfile& profile,
                                 const PerUpdateOptions& options);

/// Convenience: measure several methods under the same options.
std::vector<PerUpdateResult> MeasurePerUpdateAll(
    const std::vector<std::string>& algo_names, const ModelProfile& profile,
    const PerUpdateOptions& options);

/// One (d, placement) cell of a team-tuning grid search.
struct TeamTuneCandidate {
  int num_teams = 1;
  PlacementPolicy placement = PlacementPolicy::kContiguous;
  std::string algo_label;
  /// Simulated comm+compute seconds for one epoch on the tuned fabric.
  double epoch_seconds = 0.0;
};

struct TeamTuneResult {
  std::vector<TeamTuneCandidate> candidates;
  /// Index into `candidates` of the fastest cell.
  size_t best_index = 0;

  const TeamTuneCandidate& best() const { return candidates[best_index]; }
};

struct TeamTuneOptions {
  double k_ratio = 0.01;
  int iterations_per_epoch = 30;
  int measured_iterations = 2;
  /// Placement policies to grid over. On a single-locality-group fabric
  /// (flat/star/ring) every policy yields the same simulated times, so
  /// the grid collapses to kContiguous there; d = 1 rows likewise carry
  /// only one placement cell.
  std::vector<PlacementPolicy> policies = AllPlacementPolicies();
};

/// The paper's §III-D/§IV-G team-count selection, generalised to a
/// (d, placement) grid over the *given* fabric: one simulated epoch of
/// `spardl` per divisor d of `fabric.num_workers` per placement policy.
/// This is the engine behind `examples/tune_teams` — and the regression
/// surface for the historical bug where the tuner ignored the requested
/// topology and always tuned d on the flat closed-form fabric.
TeamTuneResult TuneTeamPlacement(const ModelProfile& profile,
                                 const TopologySpec& fabric,
                                 const TeamTuneOptions& options);

}  // namespace bench
}  // namespace spardl

#endif  // SPARDL_BENCH_BENCH_UTIL_H_
