// Ablation of SparDL design choices called out in DESIGN.md:
//  (1) the §III-B "Optimization for SRS" (sparsify lazily, only the next
//      outgoing bag) vs eager re-sparsification after every summation —
//      same wire volume, fewer top-k passes, lower wall-clock time;
//  (2) Bruck vs recursive-doubling all-gather on non-power-of-two P —
//      why SparDL ships Bruck.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "collectives/sparse_allgather.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/spar_reduce_scatter.h"
#include "metrics/table.h"
#include "simnet/cluster.h"

namespace spardl {
namespace {

double WallSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void LazyVsEager(const bench::HarnessArgs& args) {
  const int p = args.workers_or(14);
  const int iterations = args.iterations_or(3);
  const size_t n = 1 << 20;
  const size_t k = n / 100;
  std::vector<std::vector<float>> grads;
  for (int r = 0; r < p; ++r) {
    Rng rng(static_cast<uint64_t>(r) + 5);
    std::vector<float> g(n);
    for (float& v : g) v = static_cast<float>(rng.NextGaussian());
    grads.push_back(std::move(g));
  }

  TablePrinter table({"variant", "wall s / iter", "wire words / worker"});
  for (bool lazy : {false, true}) {
    Cluster cluster(
        *args.TopologyOr(TopologySpec::Flat(p, CostModel::Ethernet()), p));
    bench::ApplyExecBackend(cluster);
    const double wall = WallSeconds([&] {
      for (int iter = 0; iter < iterations; ++iter) {
        cluster.Run([&](Comm& comm) {
          SrsOptions options;
          options.k = k;
          options.lazy_sparsify = lazy;
          SparReduceScatter(comm, CommGroup::World(comm),
                            grads[static_cast<size_t>(comm.rank())],
                            options, nullptr);
        });
      }
    });
    table.AddRow({lazy ? "lazy (paper optimisation)" : "eager",
                  StrFormat("%.3f", wall / iterations),
                  StrFormat("%lu", static_cast<unsigned long>(
                                       cluster.MaxWordsReceived() /
                                       iterations))});
  }
  std::printf(
      "SRS sparsification timing ablation (P=%d, n=%zu, k/n=1%%)\n%s\n", p,
      n, table.ToString().c_str());
}

void BruckVsRecursiveDoubling(const bench::HarnessArgs& args) {
  TablePrinter table({"P", "Bruck rounds", "Bruck words",
                      "recursive-doubling applicability"});
  // --workers collapses the P sweep to the requested size.
  const std::vector<int> sweep =
      args.workers.has_value() ? std::vector<int>{*args.workers}
                               : std::vector<int>{8, 12, 14};
  for (int p : sweep) {
    Cluster cluster(p, CostModel::Ethernet());
    bench::ApplyExecBackend(cluster);
    cluster.Run([&](Comm& comm) {
      SparseVector mine;
      mine.PushBack(static_cast<GradIndex>(comm.rank()), 1.0f);
      BruckAllGather(comm, CommGroup::World(comm), std::move(mine));
    });
    table.AddRow({StrFormat("%d", p),
                  StrFormat("%lu", static_cast<unsigned long>(
                                       cluster.MaxMessagesReceived())),
                  StrFormat("%lu", static_cast<unsigned long>(
                                       cluster.MaxWordsReceived())),
                  (p & (p - 1)) == 0 ? "works" : "needs padding/extra step"});
  }
  std::printf(
      "All-gather choice ablation (why SparDL uses Bruck, §III-B)\n%s\n",
      table.ToString().c_str());
}

}  // namespace
}  // namespace spardl

int main(int argc, char** argv) {
  const spardl::bench::HarnessArgs args =
      spardl::bench::ParseHarnessArgs(argc, argv);
  std::printf("== Ablations of SparDL design choices ==\n\n");
  spardl::LazyVsEager(args);
  spardl::BruckVsRecursiveDoubling(args);
  return 0;
}
