// Reproduces Fig. 7: the number of sparse gradients held after using Bruck
// All-Gather to synchronise gradients among teams (B-SAG's observed union)
// changes slowly across batches — the property that makes the top-h
// controller (Algorithm 2) work.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "core/spardl.h"
#include "dl/grad_profile.h"
#include "metrics/table.h"
#include "simnet/cluster.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const int p = args.workers_or(14);
  // Teams must divide P: keep the paper's d=7 when it fits, else the
  // largest proper divisor (so a --workers override still exercises
  // inter-team B-SAG whenever one exists).
  int d = 1;
  if (p % 7 == 0) {
    d = 7;
  } else {
    for (int cand = p - 1; cand >= 1; --cand) {
      if (p % cand == 0) {
        d = cand;
        break;
      }
    }
  }
  const size_t n = 2'000'000;
  const size_t k = 20'000;  // k/n = 1e-2
  const int iterations = args.iterations_or(400);

  std::printf(
      "== Fig. 7: gradients after inter-team Bruck all-gather (B-SAG) ==\n"
      "P=%d, d=%d, n=%zu, k=%zu, %d batches; support drifts slowly as in "
      "training.\n\n",
      p, d, n, k, iterations);

  SparDLConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = p;
  config.num_teams = d;
  config.sag_mode = SagMode::kBruck;
  config.residual_mode = ResidualMode::kNone;

  Cluster cluster(p, CostModel::Free());
  bench::ApplyExecBackend(cluster);
  std::vector<std::unique_ptr<SparDL>> algos(static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] = std::move(*SparDL::Create(config));
  }
  const ProfileGradientGenerator generator(n, 99, 64, /*drift_period=*/40);

  std::vector<double> series;
  series.reserve(static_cast<size_t>(iterations));
  for (int iter = 0; iter < iterations; ++iter) {
    cluster.Run([&](Comm& comm) {
      const SparseVector candidates =
          generator.Generate(comm.rank(), iter, 2 * k);
      algos[static_cast<size_t>(comm.rank())]->RunOnSparse(comm,
                                                           candidates);
    });
    series.push_back(
        static_cast<double>(algos[0]->last_bsag_union()));
  }

  TablePrinter table({"batch", "union nnz", "target L=dk/P"});
  const size_t target = d * k / p;
  for (int iter = 0; iter < iterations; iter += 25) {
    table.AddRow({StrFormat("%d", iter),
                  StrFormat("%.0f", series[static_cast<size_t>(iter)]),
                  StrFormat("%zu", target)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Slow-change statistic: mean |relative step-to-step change|.
  double change = 0.0;
  double max_change = 0.0;
  for (size_t i = 1; i < series.size(); ++i) {
    const double rel = std::abs(series[i] - series[i - 1]) /
                       (series[i - 1] + 1.0);
    change += rel;
    max_change = std::max(max_change, rel);
  }
  change /= static_cast<double>(series.size() - 1);
  std::printf(
      "Mean batch-to-batch relative change: %.3f%% (max %.1f%%).\n"
      "Paper claim (Fig. 7): the count \"changes slowly with regard to "
      "iterations\", with occasional fluctuations at drift points — "
      "matched when the mean change is in the low percent range.\n",
      100.0 * change, 100.0 * max_change);
  return 0;
}
