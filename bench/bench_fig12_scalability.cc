// Reproduces Fig. 12: (a) speedup vs number of workers (5, 8, 11, 14),
// relative to one epoch of TopkDSA at 8 workers on the VGG-19 case;
// (b) accuracy vs time with 8 workers, where the paper adds gTopk (its
// formulation is power-of-two only; ours folds extras, so (a) includes it
// at every P as an extension beyond the paper's plot). Paper shape:
// SparDL's speedup grows fastest with P; at 8 workers its margin is
// smaller than at 14.

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"
#include "train_util.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const ModelProfile& profile = ProfileByModel("VGG-19");

  // == Extension beyond the figure: large-P rows on a contended fabric ==
  // Gated on an explicit --workers >= 256 ask, and replaces the paper
  // sweep entirely: these rows exist to exercise the cooperative backend
  // at simulated-cluster scale (P = 256 / 1024 / 4096 on one machine),
  // not to reproduce a plot. Direct-send methods (topkdsa, topka)
  // materialise Theta(P^2) packets and are excluded; the log-round
  // methods (gtopk, spardl) carry the scaling story. k/n shrinks to 0.1%
  // so per-worker candidate volume stays laptop-sized at 4M params.
  if (args.workers && *args.workers >= 256) {
    const ModelProfile synth = {"-", "synthetic", "-", 4'000'000, 0.0};
    std::vector<int> large_counts;
    for (int p : {256, 1024, 4096}) {
      if (p <= *args.workers) large_counts.push_back(p);
    }
    std::printf(
        "== Large-P extension: per-update time on an oversubscribed "
        "fat-tree ==\n"
        "Synthetic n=%zu, k/n=0.1%%; racks of 8, oversub 4.0, 2 ECMP "
        "cores. 'wall' is measured wall-clock for the whole run "
        "(warmup+measured), i.e. the execution backend's cost.\n\n",
        synth.num_params);
    TablePrinter large_table(
        {"P", "method", "comm s/update", "msgs/update", "wall"});
    for (int p : large_counts) {
      for (const std::string& algo : {std::string("gtopk"),
                                      std::string("spardl")}) {
        bench::PerUpdateOptions options;
        options.num_workers = p;
        options.k_ratio = 0.001;
        options.measured_iterations = args.iterations_or(1);
        TopologySpec spec =
            TopologySpec::FatTree(p, /*rack_size=*/8, /*oversubscription=*/
                                  4.0, CostModel::Ethernet(),
                                  /*num_cores=*/2);
        if (args.engine) spec.engine = *args.engine;
        options.topology = spec;
        const auto wall_start = std::chrono::steady_clock::now();
        const bench::PerUpdateResult r =
            bench::MeasurePerUpdate(algo, synth, options);
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        large_table.AddRow({StrFormat("%d", p), r.algo_label,
                            StrFormat("%.4f", r.comm_seconds),
                            StrFormat("%.0f", r.messages_per_update),
                            StrFormat("%.1fs", wall)});
      }
    }
    std::printf("%s\n", large_table.ToString().c_str());
    return 0;  // the figure's small-P sweeps are a separate exercise
  }

  // --workers caps the sweep (the figure's shape needs several P values,
  // so the override trims instead of replacing the axis).
  std::vector<int> worker_counts = {5, 8, 11, 14};
  if (args.workers) {
    std::erase_if(worker_counts,
                  [&](int p) { return p > *args.workers; });
    if (worker_counts.empty()) worker_counts = {*args.workers};
  }
  const std::vector<std::string> algos = {"topkdsa", "topka", "gtopk",
                                          "oktopk", "spardl"};

  std::printf(
      "== Fig. 12(a): speedup vs number of workers (VGG-19 profile) ==\n"
      "Reference: per-epoch time of TopkDSA at P=8 (epoch = per-update "
      "time x fixed iteration count; the constant cancels in ratios).\n\n");

  std::map<std::string, std::map<int, double>> total_seconds;
  for (int p : worker_counts) {
    for (const std::string& algo : algos) {
      bench::PerUpdateOptions options;
      options.num_workers = p;
      options.k_ratio = 0.01;
      options.measured_iterations = args.iterations_or(1);
      const bench::PerUpdateResult r =
          bench::MeasurePerUpdate(algo, profile, options);
      total_seconds[algo][p] = r.total_seconds();
    }
  }
  const int reference_p =
      total_seconds["topkdsa"].count(8) != 0 ? 8 : worker_counts.front();
  const double reference = total_seconds["topkdsa"][reference_p];
  std::vector<std::string> header = {"method"};
  for (int p : worker_counts) header.push_back(StrFormat("P=%d", p));
  TablePrinter table(header);
  for (const std::string& algo : algos) {
    std::vector<std::string> row = {algo};
    for (int p : worker_counts) {
      auto it = total_seconds[algo].find(p);
      row.push_back(it == total_seconds[algo].end()
                        ? "-"
                        : StrFormat("%.2fx", reference / it->second));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "== Fig. 12(b): convergence with 8 workers (gTopk included) ==\n\n");
  const TrainingCaseSpec spec = MakeTrainingCase("vgg19");
  bench::TrainRunOptions options;
  options.num_workers = 8;  // the paper's Fig. 12(b) setup
  options.k_ratio = 0.01;
  options.epochs = 5;
  options.iterations_per_epoch = args.iterations_or(10);
  std::vector<bench::ConvergenceSeries> series;
  for (const auto& [algo, label] :
       std::vector<std::pair<std::string, std::string>>{
           {"topkdsa", "TopkDSA"},
           {"topka", "TopkA"},
           {"gtopk", "gTopk"},
           {"oktopk", "Ok-Topk"},
           {"spardl", "SparDL"}}) {
    series.push_back(bench::RunTrainingCase(spec, algo, label, options));
  }
  bench::PrintConvergence("-- Case 2 with 8 workers --", series);
  return 0;
}
