// Reproduces Fig. 16: the impact of the sparsification budget k/n on
// training time and convergence (VGG-16- and VGG-19-like cases, 14
// workers). Two parts:
//  (1) per-update communication time of the *paper-scale* profiles for
//      k/n in {1e-1 .. 1e-5} — shows time flattening once the latency
//      term dominates (the paper's explanation for why 1e-4/1e-5 barely
//      help);
//  (2) real training at k/n in {1e-1, 1e-2, 1e-3} — accuracy degrades
//      gently at 1e-2 and visibly at 1e-3.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"
#include "train_util.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const int p = args.workers_or(14);
  const std::vector<double> ratios = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5};

  std::printf(
      "== Fig. 16 part 1: per-update comm time vs k/n (paper-scale "
      "profiles, SparDL, P=%d) ==\n\n",
      p);
  for (const std::string& model :
       {std::string("VGG-16"), std::string("VGG-19")}) {
    const ModelProfile& profile = ProfileByModel(model);
    TablePrinter table({"k/n", "comm (s)", "vs previous"});
    double previous = -1.0;
    for (double ratio : ratios) {
      bench::PerUpdateOptions options;
      options.num_workers = p;
      options.k_ratio = ratio;
      options.measured_iterations = args.iterations_or(1);
      options.topology = args.TopologyOr(std::nullopt, p);
      options.placement = args.placement_or(PlacementPolicy::kContiguous);
      const bench::PerUpdateResult r =
          bench::MeasurePerUpdate("spardl", profile, options);
      table.AddRow({StrFormat("%.0e", ratio),
                    StrFormat("%.5f", r.comm_seconds),
                    previous < 0
                        ? "-"
                        : StrFormat("%.2fx", r.comm_seconds / previous)});
      previous = r.comm_seconds;
    }
    std::printf("%s (n=%zu)\n%s\n", profile.model.c_str(),
                profile.num_params, table.ToString().c_str());
  }
  std::printf(
      "Paper shape: large drop from 1e-1 to 1e-2, smaller to 1e-3, nearly "
      "flat below (latency floor).\n\n");

  std::printf(
      "== Fig. 16 part 2: convergence vs k/n (real training, P=%d) ==\n\n",
      p);
  for (const std::string& case_key :
       {std::string("vgg16"), std::string("vgg19")}) {
    const TrainingCaseSpec spec = MakeTrainingCase(case_key);
    std::vector<bench::ConvergenceSeries> series;
    for (double ratio : {1e-1, 1e-2, 1e-3}) {
      bench::TrainRunOptions options;
      options.num_workers = p;
      options.k_ratio = ratio;
      options.epochs = 6;
      options.iterations_per_epoch = args.iterations_or(10);
      options.topology = args.TopologyOr(std::nullopt, p);
      options.placement = args.placement_or(PlacementPolicy::kContiguous);
      series.push_back(bench::RunTrainingCase(
          spec, "spardl", StrFormat("k/n=%.0e", ratio), options));
    }
    bench::PrintConvergence("-- " + spec.name + " --", series);
  }
  std::printf(
      "Paper conclusion: k/n = 1e-2 or 1e-3 is the sweet spot — low "
      "communication time while maintaining the convergence rate.\n");
  return 0;
}
