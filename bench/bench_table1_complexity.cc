// Reproduces Table I: latency/bandwidth complexity of the sparse
// All-Reduce methods. Measured message rounds (latency, in units of alpha)
// and received words (bandwidth, reported as multiples of k) per worker on
// the simulated cluster are printed next to the paper's closed-form
// predictions.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"

namespace spardl {
namespace {

int CeilLog2(int x) {
  int l = 0;
  while ((1 << l) < x) ++l;
  return l;
}

struct Prediction {
  double latency;         // units of alpha
  double bandwidth_low;   // units of k*beta (words / k)
  double bandwidth_high;  // same; == low when the bound is tight
};

Prediction Predict(const std::string& algo, int p, int d) {
  const double pd = p;
  const double log_p = CeilLog2(p);
  if (algo == "topka") return {log_p, 2 * (pd - 1), 2 * (pd - 1)};
  if (algo == "topkdsa") {
    // (P + 2 log P) alpha; [4 (P-1)/P k, (P-1)/P (2k + n)] beta.
    return {pd + 2 * log_p, 4 * (pd - 1) / pd, -1 /* n-dependent */};
  }
  if (algo == "gtopk") return {2 * log_p, 4 * log_p, 4 * log_p};
  if (algo == "oktopk") {
    return {2 * (pd + log_p), 2 * (pd - 1) / pd, 6 * (pd - 1) / pd};
  }
  if (algo == "spardl") {
    if (d == 1) {
      return {2 * log_p, 4 * (pd - 1) / pd, 4 * (pd - 1) / pd};
    }
    const double dd = d;
    const double log_pd = CeilLog2(p / d);
    if ((d & (d - 1)) == 0) {  // R-SAG
      const double log_d = CeilLog2(d);
      const double bw =
          2 * ((2 * pd - 2 * dd) / pd + dd / pd * log_d);
      return {2 * log_pd + log_d, bw, bw};
    }
    const double log_d = CeilLog2(d);
    return {2 * log_pd + log_d,
            2 * (dd * dd + pd - 2 * dd) / (pd * dd),
            2 * (dd * dd + 2 * pd - 3 * dd) / pd};
  }
  return {0, 0, 0};
}

void RunForWorkers(int p, int iterations) {
  const ModelProfile profile = {"-", "synthetic", "-", 4'000'000, 0.0};
  const double k =
      0.01 * static_cast<double>(profile.num_params);

  struct Row {
    std::string algo;
    int d;
  };
  std::vector<Row> rows = {{"topkdsa", 1}, {"topka", 1},   {"gtopk", 1},
                           {"oktopk", 1},  {"spardl", 1},  {"spardl", 2},
                           {"spardl", 7}};
  if (p % 7 != 0) rows.back().d = p / 2;  // keep d | P

  TablePrinter table({"method", "pred latency (a)", "meas latency (a)",
                      "pred bandwidth (kB)", "meas bandwidth (kB)"});
  for (const Row& row : rows) {
    // gTopk now runs at any P (fold generalisation), but Table I's
    // analytic row is the paper's power-of-two tree; skip the comparison
    // where the prediction formula does not apply.
    if (row.algo == "gtopk" && (p & (p - 1)) != 0) continue;
    if (p % row.d != 0) continue;
    bench::PerUpdateOptions options;
    options.num_workers = p;
    options.k_ratio = 0.01;
    options.num_teams = row.d;
    options.measured_iterations = iterations;
    const bench::PerUpdateResult result =
        bench::MeasurePerUpdate(row.algo, profile, options);
    const Prediction pred = Predict(row.algo, p, row.d);
    std::string pred_bw =
        pred.bandwidth_high < 0
            ? StrFormat("[%.2f, n-bound]", pred.bandwidth_low)
        : pred.bandwidth_low == pred.bandwidth_high
            ? StrFormat("%.2f", pred.bandwidth_low)
            : StrFormat("[%.2f, %.2f]", pred.bandwidth_low,
                        pred.bandwidth_high);
    table.AddRow({result.algo_label, StrFormat("%.0f", pred.latency),
                  StrFormat("%.1f", result.messages_per_update), pred_bw,
                  StrFormat("%.2f", result.words_per_update / k)});
  }
  std::printf("P = %d, n = %zu, k/n = 0.01\n%s\n", p, profile.num_params,
              table.ToString().c_str());
}

}  // namespace
}  // namespace spardl

int main(int argc, char** argv) {
  const spardl::bench::HarnessArgs args =
      spardl::bench::ParseHarnessArgs(argc, argv);
  std::printf(
      "== Table I: communication complexity of sparse All-Reduce methods "
      "==\n"
      "Latency in units of alpha (messages received per worker);\n"
      "bandwidth in units of k*beta (received words / k). Paper predictions "
      "vs simulated measurements.\n"
      "Notes: measured latency for direct-send methods is P-1 (+log P "
      "rounds) per hop where the paper rounds to P; gTopk's measured "
      "per-worker receive count undercounts its 2logP critical path, which "
      "spans workers (the simulated clock does capture it).\n\n");
  const int iterations = args.iterations_or(2);
  if (args.workers) {
    spardl::RunForWorkers(*args.workers, iterations);
  } else {
    spardl::RunForWorkers(8, iterations);
    spardl::RunForWorkers(14, iterations);
  }
  return 0;
}
