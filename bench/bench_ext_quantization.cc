// Extension bench (paper §VI: "combining with quantization methods"):
// SparDL with 4/8/16-bit value quantization on the wire. Reports per-update
// communication on the VGG-19 profile and a convergence spot-check showing
// the error feedback absorbs the quantization noise.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"
#include "train_util.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  std::printf(
      "== Extension: SparDL + value quantization (paper §VI future "
      "work) ==\n\n");

  const ModelProfile& profile = ProfileByModel("VGG-19");
  const int p = args.workers_or(14);
  TablePrinter table({"config", "comm (s)", "words/update", "vs fp32"});
  double fp32_comm = 0.0;
  for (int bits : {32, 16, 8, 4}) {
    // MeasurePerUpdate has no quantization knob; measure inline.
    const size_t n = profile.num_params;
    const size_t k = n / 100;
    AlgorithmConfig config;
    config.n = n;
    config.k = k;
    config.num_workers = p;
    config.residual_mode = ResidualMode::kNone;
    config.value_bits = bits;
    Cluster cluster(
        *args.TopologyOr(TopologySpec::Flat(p, CostModel::Ethernet()), p));
    bench::ApplyExecBackend(cluster);
    std::vector<std::unique_ptr<SparseAllReduce>> algos(
        static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      algos[static_cast<size_t>(r)] =
          std::move(*CreateAlgorithm("spardl", config));
    }
    const ProfileGradientGenerator generator(n, 2024);
    for (int iter = 0; iter < 2; ++iter) {
      if (iter == 1) cluster.ResetClocksAndStats();
      cluster.Run([&](Comm& comm) {
        const SparseVector candidates =
            generator.Generate(comm.rank(), iter, k + k / 2);
        algos[static_cast<size_t>(comm.rank())]->RunOnSparse(comm,
                                                             candidates);
        comm.BarrierSyncClocks();
      });
    }
    double comm_seconds = 0.0;
    uint64_t words = 0;
    for (int r = 0; r < p; ++r) {
      comm_seconds =
          std::max(comm_seconds, cluster.comm(r).stats().comm_seconds);
      words = std::max(words, cluster.comm(r).stats().words_received);
    }
    if (bits == 32) fp32_comm = comm_seconds;
    table.AddRow({std::string(algos[0]->name()),
                  StrFormat("%.4f", comm_seconds),
                  StrFormat("%lu", static_cast<unsigned long>(words)),
                  StrFormat("%.2fx", fp32_comm / comm_seconds)});
  }
  std::printf("VGG-19 profile, P=%d, k/n=1%%\n%s\n", p,
              table.ToString().c_str());

  const int p_train = args.workers_or(8);
  std::printf("convergence spot-check (VGG-16-like case, P=%d):\n\n",
              p_train);
  const TrainingCaseSpec spec = MakeTrainingCase("vgg16");
  std::vector<bench::ConvergenceSeries> series;
  for (int bits : {32, 8, 4}) {
    bench::TrainRunOptions options;
    options.num_workers = p_train;
    options.k_ratio = 0.01;
    options.epochs = 5;
    options.iterations_per_epoch = args.iterations_or(10);
    options.value_bits = bits;
    options.topology = args.TopologyOr(std::nullopt, p_train);
    options.placement = args.placement_or(PlacementPolicy::kContiguous);
    series.push_back(bench::RunTrainingCase(
        spec, "spardl", StrFormat("q%d", bits), options));
  }
  bench::PrintConvergence("-- quantized SparDL training --", series);
  std::printf(
      "Reading: 8-bit values cut wire volume ~1.6x with no visible "
      "convergence cost (quantization error is recycled via the residual "
      "store). 4-bit only reaches ~1.7x, not 2x over 8-bit: packed nibbles "
      "still cost ceil(entries*bits/8) value bytes and the 4-byte index "
      "per surviving entry dominates once values are sub-byte.\n");
  return 0;
}
