// Reproduces Fig. 13: SparDL with the two Spar-All-Gather variants on the
// VGG-16 case, 14 workers. (a) R-SAG with d = 1, 2; (b) B-SAG with
// d = 1, 2, 7, 14. Paper shape: R-SAG(d=2) slightly faster than d=1;
// B-SAG d=7 the fastest (~1.25x), d=14 a bit slower than d=7 and with the
// lowest final accuracy (aggregation after one local top-h only).

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "train_util.h"

int main() {
  using namespace spardl;  // NOLINT
  TrainingCaseSpec spec = MakeTrainingCase("vgg16");
  // Harder task variant so the d=P quality loss is visible within the
  // short run (see bench_fig17_residuals.cc for the same reasoning).
  spec.dataset_factory = [] {
    return MakeSyntheticClassification(96, 10, 3.0f, 101);
  };

  auto run = [&](int d, SagMode mode, const std::string& label) {
    bench::TrainRunOptions options;
    options.num_workers = 14;
    options.k_ratio = 0.004;
    options.epochs = 8;
    options.iterations_per_epoch = 10;
    options.num_teams = d;
    if (d > 1) options.sag_mode = mode;
    return bench::RunTrainingCase(spec, "spardl", label, options);
  };

  std::printf("== Fig. 13(a): SparDL with R-SAG (VGG-16, P=14) ==\n\n");
  {
    std::vector<bench::ConvergenceSeries> series;
    series.push_back(run(1, SagMode::kAuto, "d=1"));
    series.push_back(run(2, SagMode::kRecursive, "d=2 (R-SAG)"));
    bench::PrintConvergence("-- R-SAG --", series);
  }

  std::printf("== Fig. 13(b): SparDL with B-SAG (VGG-16, P=14) ==\n\n");
  {
    std::vector<bench::ConvergenceSeries> series;
    series.push_back(run(1, SagMode::kAuto, "d=1"));
    series.push_back(run(2, SagMode::kBruck, "d=2 (B-SAG)"));
    series.push_back(run(7, SagMode::kBruck, "d=7 (B-SAG)"));
    series.push_back(run(14, SagMode::kBruck, "d=14 (B-SAG)"));
    bench::PrintConvergence("-- B-SAG --", series);
  }
  return 0;
}
