// Reproduces Fig. 13: SparDL with the two Spar-All-Gather variants on the
// VGG-16 case, 14 workers. (a) R-SAG with d = 1, 2; (b) B-SAG with
// d = 1, 2, 7, 14. Paper shape: R-SAG(d=2) slightly faster than d=1;
// B-SAG d=7 the fastest (~1.25x), d=14 a bit slower than d=7 and with the
// lowest final accuracy (aggregation after one local top-h only).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "train_util.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const int p = args.workers_or(14);
  TrainingCaseSpec spec = MakeTrainingCase("vgg16");
  // Harder task variant so the d=P quality loss is visible within the
  // short run (see bench_fig17_residuals.cc for the same reasoning).
  spec.dataset_factory = [] {
    return MakeSyntheticClassification(96, 10, 3.0f, 101);
  };

  auto run = [&](int d, SagMode mode, const std::string& label) {
    bench::TrainRunOptions options;
    options.num_workers = p;
    options.k_ratio = 0.004;
    options.epochs = 8;
    options.iterations_per_epoch = args.iterations_or(10);
    options.num_teams = d;
    options.topology = args.TopologyOr(std::nullopt, p);
    options.placement = args.placement_or(PlacementPolicy::kContiguous);
    if (d > 1) options.sag_mode = mode;
    return bench::RunTrainingCase(spec, "spardl", label, options);
  };
  // Team counts must divide P; a --workers override drops the panels
  // whose paper d does not divide the requested size.
  const auto divides = [&](int d) { return p % d == 0; };

  std::printf("== Fig. 13(a): SparDL with R-SAG (VGG-16, P=%d) ==\n\n", p);
  {
    std::vector<bench::ConvergenceSeries> series;
    series.push_back(run(1, SagMode::kAuto, "d=1"));
    if (divides(2)) {
      series.push_back(run(2, SagMode::kRecursive, "d=2 (R-SAG)"));
    }
    bench::PrintConvergence("-- R-SAG --", series);
  }

  std::printf("== Fig. 13(b): SparDL with B-SAG (VGG-16, P=%d) ==\n\n", p);
  {
    std::vector<bench::ConvergenceSeries> series;
    series.push_back(run(1, SagMode::kAuto, "d=1"));
    for (int d : {2, 7}) {
      if (d < p && divides(d)) {
        series.push_back(
            run(d, SagMode::kBruck, StrFormat("d=%d (B-SAG)", d)));
      }
    }
    series.push_back(run(p, SagMode::kBruck, StrFormat("d=%d (B-SAG)", p)));
    bench::PrintConvergence("-- B-SAG --", series);
  }
  return 0;
}
