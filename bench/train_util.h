#ifndef SPARDL_BENCH_TRAIN_UTIL_H_
#define SPARDL_BENCH_TRAIN_UTIL_H_

#include <optional>
#include <string>
#include <vector>

#include "core/residual.h"
#include "core/spardl.h"
#include "dl/cases.h"
#include "dl/trainer.h"
#include "topo/placement.h"
#include "topo/topology_spec.h"

namespace spardl {
namespace bench {

/// One training run's identity + curve, for the convergence figures.
struct ConvergenceSeries {
  std::string label;
  TaskMetric metric = TaskMetric::kAccuracy;
  std::vector<EpochRecord> epochs;
  bool replicas_consistent = false;
};

struct TrainRunOptions {
  int num_workers = 14;
  double k_ratio = 0.01;
  int num_teams = 1;
  /// Team layout planned against the run's resolved fabric (SparDL with
  /// num_teams > 1; ignored by the baselines).
  PlacementPolicy placement = PlacementPolicy::kContiguous;
  std::optional<ResidualMode> residual_mode;  // method default when unset
  std::optional<SagMode> sag_mode;            // kAuto when unset
  int value_bits = 32;                        // SparDL wire quantization
  int epochs = 6;
  int iterations_per_epoch = 12;
  CostModel cost_model = CostModel::Ethernet();
  /// When set, training runs on this fabric instead of the flat
  /// `cost_model` crossbar — the same knob `PerUpdateOptions.topology`
  /// gives the per-update benches. A `num_workers` of 0 in the spec
  /// inherits `num_workers` above; otherwise the two must agree. The
  /// spec's embedded cost is the per-hop alpha-beta budget (and is what
  /// `paper_scale_network` rescales).
  std::optional<TopologySpec> topology;
  /// LR-drop milestone as a fraction of total epochs (Fig. 17 uses the
  /// paper's epoch-80 drop); < 0 disables.
  double lr_drop_fraction = -1.0;
  /// Scale beta by paper-model-n / this-model-n and charge the paper
  /// model's compute constant, so the laptop-scale model experiences the
  /// paper testbed's bandwidth/latency/compute balance (the alpha-beta
  /// model is linear in message size, so method ratios are preserved).
  bool paper_scale_network = true;
  /// Gradient-sync schedule: step-synchronous (default), or one of the
  /// layer-bucketed overlap modes (`bench_ext_overlap` sweeps all three).
  GradSyncMode sync_mode = GradSyncMode::kStepSynchronous;
};

/// A deep VGG-shaped case for the overlap harness (`bench_ext_overlap`
/// and the overlap trainer tests): five parameter layers where the rear
/// two hold ~70% of the parameters but the front three do most of the
/// compute (`layer_compute_fractions` is front-heavy, like conv-vs-fc
/// splits in real VGG). That shape is what priority scheduling exists
/// for — the big, early-ready rear buckets clog the communication stream
/// ahead of the small front buckets the next forward needs first. The
/// paper's seven cases are all three-parameter-layer models, where a
/// bucket launch order can never deviate from FIFO.
TrainingCaseSpec MakeDeepOverlapCase();

/// Trains `spec` with the named sparse All-Reduce method and returns the
/// per-epoch curve on the simulated clock.
ConvergenceSeries RunTrainingCase(const TrainingCaseSpec& spec,
                                  const std::string& algo_name,
                                  const std::string& label,
                                  const TrainRunOptions& options);

/// Prints curves as "sim time | metric" rows per series.
void PrintConvergence(const std::string& title,
                      const std::vector<ConvergenceSeries>& series);

}  // namespace bench
}  // namespace spardl

#endif  // SPARDL_BENCH_TRAIN_UTIL_H_
