// Reproduces Fig. 8: per-update time (communication + computation) with 14
// workers on the four mid-size cases — VGG-19/CIFAR-100, VGG-11/House,
// LSTM-IMDB, LSTM-PTB — for TopkDSA, TopkA, Ok-Topk and SparDL.
//
// Absolute numbers depend on the authors' testbed; the *shape* to match:
// SparDL fastest in communication in all four cases, TopkDSA slowest,
// Ok-Topk the best baseline, with paper speedups of SparDL over
// (TopkDSA, TopkA, Ok-Topk): VGG-19 6.4/5.1/1.6x, VGG-11 5.6/4.7/2.2x,
// LSTM-IMDB 2.7/3.8/1.8x, LSTM-PTB 5.0/4.5/2.3x.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const std::vector<std::string> models = {"VGG-19", "VGG-11", "LSTM-IMDB",
                                           "LSTM-PTB"};
  const std::vector<std::string> algos = {"topkdsa", "topka", "oktopk",
                                          "spardl"};
  std::printf(
      "== Fig. 8: per-update time with %d workers (Ethernet alpha-beta "
      "model) ==\n\n",
      args.workers_or(14));

  for (const std::string& model : models) {
    const ModelProfile& profile = ProfileByModel(model);
    bench::PerUpdateOptions options;
    options.num_workers = args.workers_or(14);
    options.k_ratio = 0.01;
    options.measured_iterations = args.iterations_or(1);
    const auto results =
        bench::MeasurePerUpdateAll(algos, profile, options);
    const double spardl_comm = results.back().comm_seconds;

    TablePrinter table({"method", "comm (s)", "comp (s)", "total (s)",
                        "SparDL comm speedup"});
    for (const auto& r : results) {
      table.AddRow({r.algo_label, StrFormat("%.4f", r.comm_seconds),
                    StrFormat("%.3f", r.compute_seconds),
                    StrFormat("%.4f", r.total_seconds()),
                    StrFormat("%.1fx", r.comm_seconds / spardl_comm)});
    }
    std::printf("%s (%s on %s, n=%zu)\n%s\n", profile.case_name.c_str(),
                profile.model.c_str(), profile.dataset.c_str(),
                profile.num_params, table.ToString().c_str());
  }
  std::printf(
      "Shape check vs paper: SparDL lowest communication everywhere; "
      "Ok-Topk best baseline but still behind SparDL; TopkA/TopkDSA 4-7x "
      "behind. (The paper measures TopkDSA slowest of the four; in the "
      "pure alpha-beta model its ordering vs TopkA depends on support "
      "overlap — see EXPERIMENTS.md note 1.)\n");
  return 0;
}
