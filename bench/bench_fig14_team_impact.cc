// Reproduces Fig. 14: impact of the team count d on per-epoch time, for
// P = 14 (d in {1, 2, 7, 14}) and P = 12 (d in {1, 2, 3, 4, 6, 12}), on
// the VGG-16 profile. Both SAG families are measured where defined
// (R-SAG needs power-of-two d). Paper shape: a sweet spot at moderate d
// (d=7 for P=14, d=6 for P=12); too-large d raises bandwidth and wins
// nothing.
//
//   $ ./build/bench/bench_fig14_team_impact [--workers N] [--iterations N]
//         [--topology SPEC] [--engine busy|event]
//         [--placement contiguous|rack|interleaved]
//
// --topology/--engine rerun the d sweep on a non-flat fabric (the same
// wiring fig9/ext_topology have; the comparison is meaningless if the d
// sweep silently stays flat), --workers replaces the two paper cluster
// sizes with one custom P (d = every divisor), and --placement pins the
// team layout. On a multi-rack fabric a second table compares the
// placement policies per d — the axis the flat model cannot see.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"
#include "topo/placement.h"

namespace spardl {
namespace {

std::vector<int> Divisors(int p) {
  std::vector<int> divisors;
  for (int d = 1; d <= p; ++d) {
    if (p % d == 0) divisors.push_back(d);
  }
  return divisors;
}

void RunForWorkers(int p, const std::vector<int>& team_counts,
                   int iterations_per_epoch,
                   const std::optional<TopologySpec>& fabric,
                   PlacementPolicy placement, int measured_iterations) {
  const ModelProfile& profile = ProfileByModel("VGG-16");
  TablePrinter table({"d", "R-SAG per-epoch (s)", "B-SAG per-epoch (s)"});
  for (int d : team_counts) {
    std::string rsag = "-";
    std::string bsag = "-";
    for (bool recursive : {true, false}) {
      if (recursive && (d & (d - 1)) != 0) continue;
      bench::PerUpdateOptions options;
      options.num_workers = p;
      options.k_ratio = 0.01;
      options.num_teams = d;
      options.placement = placement;
      options.topology = fabric;
      options.measured_iterations = measured_iterations;
      // The registry resolves pow-2 d to R-SAG automatically; force B-SAG
      // by measuring through a config the registry honors. d=1 has no SAG;
      // report it in both columns.
      bench::PerUpdateResult r;
      if (d == 1) {
        r = bench::MeasurePerUpdate("spardl", profile, options);
      } else {
        r = bench::MeasurePerUpdate(
            recursive ? "spardl-rsag" : "spardl-bsag", profile, options);
      }
      const double epoch_seconds =
          (r.comm_seconds + r.compute_seconds) * iterations_per_epoch;
      if (recursive || d == 1) rsag = StrFormat("%.2f", epoch_seconds);
      if (!recursive || d == 1) bsag = StrFormat("%.2f", epoch_seconds);
      if (d == 1) break;
    }
    table.AddRow({StrFormat("%d", d), rsag, bsag});
  }
  const std::string fabric_label =
      fabric.has_value() ? fabric->Describe() : std::string("flat (paper)");
  std::printf("P = %d (%s profile, %d iterations/epoch, fabric %s)\n%s\n",
              p, profile.model.c_str(), iterations_per_epoch,
              fabric_label.c_str(), table.ToString().c_str());

  // Placement only moves simulated time when the fabric has more than one
  // locality group; the flat paper fabric skips this table.
  const TopologySpec resolved = bench::ResolveFabric(fabric, p, {});
  if (LocalityGroups(resolved, p).size() <= 1) return;
  TablePrinter placement_table({"d", "contiguous (s)", "rack-local (s)",
                                "interleaved (s)"});
  for (int d : team_counts) {
    if (d == 1) continue;  // no teams, no layout
    std::vector<std::string> row = {StrFormat("%d", d)};
    for (PlacementPolicy policy : AllPlacementPolicies()) {
      bench::PerUpdateOptions options;
      options.num_workers = p;
      options.k_ratio = 0.01;
      options.num_teams = d;
      options.placement = policy;
      options.topology = fabric;
      options.measured_iterations = measured_iterations;
      const bench::PerUpdateResult r =
          bench::MeasurePerUpdate("spardl", profile, options);
      row.push_back(StrFormat(
          "%.2f", (r.comm_seconds + r.compute_seconds) *
                      iterations_per_epoch));
    }
    placement_table.AddRow(row);
  }
  std::printf("team placement impact (same d sweep, auto SAG)\n%s\n",
              placement_table.ToString().c_str());
}

}  // namespace
}  // namespace spardl

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  std::printf("== Fig. 14: impact of team count d on per-epoch time ==\n\n");
  const int iterations_per_epoch = 60;
  const int measured = args.iterations_or(2);
  const PlacementPolicy placement =
      args.placement_or(PlacementPolicy::kContiguous);
  if (args.workers.has_value()) {
    const int p = *args.workers;
    const std::optional<TopologySpec> fabric =
        args.TopologyOr(std::nullopt, p);
    RunForWorkers(p, Divisors(p), iterations_per_epoch, fabric, placement,
                  measured);
  } else {
    for (int p : {14, 12}) {
      const std::optional<TopologySpec> fabric =
          args.TopologyOr(std::nullopt, p);
      RunForWorkers(p, p == 14 ? std::vector<int>{1, 2, 7, 14}
                               : std::vector<int>{1, 2, 3, 4, 6, 12},
                    iterations_per_epoch, fabric, placement, measured);
    }
  }
  std::printf(
      "Paper shape (flat fabric): B-SAG improves over d=1 with the optimum "
      "at moderate d (7 of 14; 6 of 12); R-SAG(d=2) is a slight improvement "
      "and R-SAG(d=4) pays extra bandwidth — both reproduced. The paper "
      "also finds d=P slightly slower than the optimum; in the alpha-beta "
      "model that ordering depends on how strongly worker top-k supports "
      "overlap (here d=P stays ~2%% ahead; its real cost is the accuracy "
      "loss shown in Fig. 13b, which this repo reproduces in "
      "bench_fig13_sag_convergence). On a multi-rack --topology the "
      "placement table shows rack-local teams beating interleaved ones — "
      "the locality axis the flat model cannot see.\n");
  return 0;
}
