// Reproduces Fig. 14: impact of the team count d on per-epoch time, for
// P = 14 (d in {1, 2, 7, 14}) and P = 12 (d in {1, 2, 3, 4, 6, 12}), on
// the VGG-16 profile. Both SAG families are measured where defined
// (R-SAG needs power-of-two d). Paper shape: a sweet spot at moderate d
// (d=7 for P=14, d=6 for P=12); too-large d raises bandwidth and wins
// nothing.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"

namespace spardl {
namespace {

void RunForWorkers(int p, const std::vector<int>& team_counts,
                   int iterations_per_epoch) {
  const ModelProfile& profile = ProfileByModel("VGG-16");
  TablePrinter table({"d", "R-SAG per-epoch (s)", "B-SAG per-epoch (s)"});
  for (int d : team_counts) {
    std::string rsag = "-";
    std::string bsag = "-";
    for (bool recursive : {true, false}) {
      if (recursive && (d & (d - 1)) != 0) continue;
      bench::PerUpdateOptions options;
      options.num_workers = p;
      options.k_ratio = 0.01;
      options.num_teams = d;
      options.measured_iterations = 2;
      // The registry resolves pow-2 d to R-SAG automatically; force B-SAG
      // by measuring through a config the registry honors. d=1 has no SAG;
      // report it in both columns.
      bench::PerUpdateResult r;
      if (d == 1) {
        r = bench::MeasurePerUpdate("spardl", profile, options);
      } else {
        r = bench::MeasurePerUpdate(
            recursive ? "spardl-rsag" : "spardl-bsag", profile, options);
      }
      const double epoch_seconds =
          (r.comm_seconds + r.compute_seconds) * iterations_per_epoch;
      if (recursive || d == 1) rsag = StrFormat("%.2f", epoch_seconds);
      if (!recursive || d == 1) bsag = StrFormat("%.2f", epoch_seconds);
      if (d == 1) break;
    }
    table.AddRow({StrFormat("%d", d), rsag, bsag});
  }
  std::printf("P = %d (%s profile, %d iterations/epoch)\n%s\n", p,
              profile.model.c_str(), iterations_per_epoch,
              table.ToString().c_str());
}

}  // namespace
}  // namespace spardl

int main() {
  std::printf("== Fig. 14: impact of team count d on per-epoch time ==\n\n");
  spardl::RunForWorkers(14, {1, 2, 7, 14}, 60);
  spardl::RunForWorkers(12, {1, 2, 3, 4, 6, 12}, 60);
  std::printf(
      "Paper shape: B-SAG improves over d=1 with the optimum at moderate "
      "d (7 of 14; 6 of 12); R-SAG(d=2) is a slight improvement and "
      "R-SAG(d=4) pays extra bandwidth — both reproduced. The paper also "
      "finds d=P slightly slower than the optimum; in the alpha-beta model "
      "that ordering depends on how strongly worker top-k supports "
      "overlap (here d=P stays ~2%% ahead; its real cost is the accuracy "
      "loss shown in Fig. 13b, which this repo reproduces in "
      "bench_fig13_sag_convergence).\n");
  return 0;
}
