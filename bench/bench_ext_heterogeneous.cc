// Extension bench (paper §VI: "heterogeneous environment"): one straggler
// worker with a slower network path. Methods with Theta(P) direct-send
// fan-in (TopkDSA, Ok-Topk) funnel many messages through the slow NIC and
// degrade faster than the log-round methods (SparDL, TopkA).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench_util.h"
#include "common/strings.h"
#include "dl/grad_profile.h"
#include "metrics/table.h"
#include "simnet/cluster.h"

namespace spardl {
namespace {

// Per-update makespan (max worker clock / iterations). `slowdown` > 1
// gives worker p/2 a slower network path; `compute_mult` > 0 switches on
// compute charging (every worker pays the profile's forward+backward
// time) with worker p/2's compute scaled by `compute_mult` — the
// compute-side straggler the paper's §VI leaves to future work.
double PerUpdateSeconds(const std::string& algo, int p, double slowdown,
                        double compute_mult, int iterations) {
  const ModelProfile& profile = ProfileByModel("VGG-19");
  const size_t n = profile.num_params;
  const size_t k = n / 100;
  AlgorithmConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = p;
  config.residual_mode = ResidualMode::kNone;

  Cluster cluster(p, CostModel::Ethernet());
  bench::ApplyExecBackend(cluster);
  if (slowdown > 1.0) cluster.network().SetWorkerSlowdown(p / 2, slowdown);
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] = std::move(*CreateAlgorithm(algo, config));
  }
  ProfileGradientGenerator generator(n, 11);
  if (compute_mult > 0.0) {
    generator.SetComputeMultiplier(p / 2, compute_mult);
  }
  for (int iter = 0; iter < 1 + iterations; ++iter) {
    if (iter == 1) cluster.ResetClocksAndStats();
    cluster.Run([&](Comm& comm) {
      if (generator.has_compute_skew()) {
        comm.Compute(generator.ComputeSeconds(comm.rank(),
                                              profile.compute_seconds));
      }
      const SparseVector candidates =
          generator.Generate(comm.rank(), iter, k + k / 2);
      algos[static_cast<size_t>(comm.rank())]->RunOnSparse(comm, candidates);
      comm.BarrierSyncClocks();
    });
  }
  return cluster.MaxSimSeconds() / static_cast<double>(iterations);
}

}  // namespace
}  // namespace spardl

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const int p = args.workers_or(14);
  const int iters = args.iterations_or(1);
  std::printf(
      "== Extension: heterogeneous cluster (one straggler, VGG-19 "
      "profile, P=%d) ==\n\n",
      p);
  TablePrinter table({"method", "homogeneous (s)", "straggler 4x (s)",
                      "straggler 16x (s)", "degradation @16x"});
  for (const std::string& algo :
       {std::string("topkdsa"), std::string("topka"), std::string("oktopk"),
        std::string("spardl")}) {
    const double base = PerUpdateSeconds(algo, p, 1.0, 0.0, iters);
    const double slow4 = PerUpdateSeconds(algo, p, 4.0, 0.0, iters);
    const double slow16 = PerUpdateSeconds(algo, p, 16.0, 0.0, iters);
    table.AddRow({algo, StrFormat("%.4f", base), StrFormat("%.4f", slow4),
                  StrFormat("%.4f", slow16),
                  StrFormat("%.1fx", slow16 / base)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Compute-side straggler: worker p/2 keeps a full-speed NIC but its
  // forward+backward pass runs 4x / 16x slower (a throttled or older
  // accelerator). Baseline charges compute homogeneously so the columns
  // are comparable.
  std::printf(
      "== Compute-side straggler (one slow accelerator, same fabric) "
      "==\n\n");
  TablePrinter compute_table({"method", "homogeneous (s)",
                              "slow compute 4x (s)",
                              "slow compute 16x (s)", "degradation @16x"});
  for (const std::string& algo :
       {std::string("topkdsa"), std::string("topka"), std::string("oktopk"),
        std::string("spardl")}) {
    const double base = PerUpdateSeconds(algo, p, 1.0, 1.0, iters);
    const double slow4 = PerUpdateSeconds(algo, p, 1.0, 4.0, iters);
    const double slow16 = PerUpdateSeconds(algo, p, 1.0, 16.0, iters);
    compute_table.AddRow(
        {algo, StrFormat("%.4f", base), StrFormat("%.4f", slow4),
         StrFormat("%.4f", slow16), StrFormat("%.1fx", slow16 / base)});
  }
  std::printf("%s\n", compute_table.ToString().c_str());
  std::printf(
      "Reading: synchronous All-Reduce is gated by the slowest worker, so "
      "every method degrades by about the straggler's slowdown factor — "
      "but the *absolute* penalty is proportional to the method's "
      "per-update volume, so the bandwidth-heavy methods (TopkA, TopkDSA) "
      "lose whole seconds where SparDL loses a few hundred ms. The "
      "compute-side table shows the complementary regime: a slow "
      "accelerator delays every method by the same absolute compute gap, "
      "so the *fastest* communicator degrades by the largest factor. The "
      "paper lists heterogeneity-aware variants as future work; this "
      "harness provides the measurement substrate for them.\n");
  return 0;
}
