// Reproduces Fig. 17: global (GRES) vs partial (PRES) vs local (LRES)
// residual collection, P = 14, with the learning-rate drop the paper
// applies at epoch 80 (scaled to this run's epoch budget). Four panels:
// (a) VGG-19-like, SparDL; (b) VGG-16-like, SparDL; (c) VGG-16-like,
// SparDL(R-SAG d=2); (d) VGG-16-like, SparDL(B-SAG d=7).
//
// Paper shape: GRES converges best (it alone recovers in-procedure
// residuals, which SparDL's multi-step selection produces in quantity);
// the gap is clearest after the LR drop.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "train_util.h"

namespace spardl {
namespace {

void RunPanel(const bench::HarnessArgs& args, const std::string& title,
              const std::string& case_key, int d, SagMode sag_mode) {
  const int p = args.workers_or(14);
  if (p % d != 0) {
    std::printf("%s skipped: d=%d does not divide P=%d\n\n", title.c_str(),
                d, p);
    return;
  }
  TrainingCaseSpec spec = MakeTrainingCase(case_key);
  // Harder variants of the synthetic tasks: with the paper's 160-epoch
  // budget the easy versions saturate long before the residual policies
  // can separate; extra label noise keeps the decision boundary tight.
  if (case_key == "vgg16") {
    spec.dataset_factory = [] {
      return MakeSyntheticClassification(96, 10, 3.2f, 101);
    };
  } else if (case_key == "vgg19") {
    spec.dataset_factory = [] {
      return MakeSyntheticClassification(128, 20, 3.2f, 102);
    };
  }
  std::vector<bench::ConvergenceSeries> series;
  const std::vector<std::pair<ResidualMode, std::string>> modes = {
      {ResidualMode::kGlobal, "SparDL-GRES"},
      {ResidualMode::kPartial, "SparDL-PRES"},
      {ResidualMode::kLocal, "SparDL-LRES"}};
  for (const auto& [mode, label] : modes) {
    bench::TrainRunOptions options;
    options.num_workers = p;
    options.k_ratio = 0.002;  // tight budget makes residual policy matter
    options.epochs = 10;
    options.iterations_per_epoch = args.iterations_or(10);
    options.topology = args.TopologyOr(std::nullopt, p);
    options.placement = args.placement_or(PlacementPolicy::kContiguous);
    options.num_teams = d;
    if (d > 1) options.sag_mode = sag_mode;
    options.residual_mode = mode;
    options.lr_drop_fraction = 0.6;  // the paper's epoch-80 drop, scaled
    series.push_back(bench::RunTrainingCase(spec, "spardl", label, options));
  }
  bench::PrintConvergence(title, series);
}

}  // namespace
}  // namespace spardl

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  std::printf(
      "== Fig. 17: residual collection ablation (GRES / PRES / LRES) "
      "==\n\n");
  RunPanel(args, "-- (a) VGG-19-like, SparDL --", "vgg19", 1,
           SagMode::kAuto);
  RunPanel(args, "-- (b) VGG-16-like, SparDL --", "vgg16", 1,
           SagMode::kAuto);
  RunPanel(args, "-- (c) VGG-16-like, SparDL (R-SAG, d=2) --", "vgg16", 2,
           SagMode::kRecursive);
  RunPanel(args, "-- (d) VGG-16-like, SparDL (B-SAG, d=7) --", "vgg16", 7,
           SagMode::kBruck);
  return 0;
}
