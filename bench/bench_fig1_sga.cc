// Reproduces the Fig. 1 phenomenon: the Sparse Gradient Accumulation (SGA)
// dilemma. When top-k-sparsified gradients from different workers are
// summed across All-Reduce steps *without* re-sparsification, the union
// support grows toward dense; SparDL's block-wise re-selection keeps every
// message at its sparse budget.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/strings.h"
#include "metrics/table.h"
#include "sparse/sparse_vector.h"
#include "sparse/topk.h"

namespace spardl {
namespace {

SparseVector WorkerTopK(int worker, size_t n, size_t k) {
  Rng rng(1000 + static_cast<uint64_t>(worker));
  std::vector<float> dense(n);
  for (float& v : dense) v = static_cast<float>(rng.NextGaussian());
  SparseVector kept;
  TopKDense(dense, 0, k, &kept);
  return kept;
}

}  // namespace
}  // namespace spardl

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  // This figure needs no cluster, so of the shared harness flags only
  // --workers applies (the pairwise summation tree wants a power of two).
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const size_t n = 65536;
  const size_t k = 656;  // ~1% density
  const int p = args.workers_or(16);

  std::printf(
      "== Fig. 1: the SGA dilemma ==\n"
      "Recursive-halving summation of %d workers' top-k gradients "
      "(n=%zu, k=%zu).\n\n",
      p, n, k);

  // Naive: pairwise tree summation without re-sparsification.
  std::vector<SparseVector> level;
  for (int w = 0; w < p; ++w) level.push_back(WorkerTopK(w, n, k));

  TablePrinter table({"step", "naive nnz (SGA)", "naive growth",
                      "SparDL message nnz"});
  size_t previous = k;
  int step = 0;
  table.AddRow({"start", StrFormat("%zu", k), "1.00x",
                StrFormat("%zu", k)});
  while (level.size() > 1) {
    std::vector<SparseVector> next;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      SparseVector merged;
      MergeSum(level[i], level[i + 1], &merged);
      next.push_back(std::move(merged));
    }
    level = std::move(next);
    ++step;
    const size_t nnz = level[0].size();
    table.AddRow({StrFormat("%d", step), StrFormat("%zu", nnz),
                  StrFormat("%.2fx", static_cast<double>(nnz) /
                                         static_cast<double>(previous)),
                  StrFormat("%zu", k)});
    previous = nnz;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper claim: \"each summation increases the volume of sparse "
      "gradients ... may degrade to dense gradients\". Observed: the naive "
      "union grows ~%.1fx over log2(P)=%d steps while SparDL's block-wise "
      "re-selection keeps every message at k.\n",
      static_cast<double>(level[0].size()) / static_cast<double>(k), step);
  return 0;
}
