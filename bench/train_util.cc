#include "train_util.h"

#include <cstdio>
#include <memory>

#include "baselines/registry.h"
#include "dl/layers.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/strings.h"
#include "dl/grad_profile.h"
#include "metrics/table.h"
#include "simnet/cluster.h"

namespace spardl {
namespace bench {

TrainingCaseSpec MakeDeepOverlapCase() {
  TrainingCaseSpec spec;
  spec.key = "deep-overlap";
  spec.name = "Deep VGG-shaped MLP / synthetic CIFAR-10";
  spec.metric = TaskMetric::kAccuracy;
  spec.dataset_factory = [] {
    return MakeSyntheticClassification(96, 10, 1.6f, 108);
  };
  spec.model_factory = [](uint64_t seed) {
    auto model = std::make_unique<Model>();
    // Front "conv-like" layers: compute-heavy, parameter-light.
    model->Add(std::make_unique<LinearLayer>(96, 64));   //  6,208 params
    model->Add(std::make_unique<ReluLayer>());
    model->Add(std::make_unique<LinearLayer>(64, 64));   //  4,160
    model->Add(std::make_unique<ReluLayer>());
    model->Add(std::make_unique<LinearLayer>(64, 64));   //  4,160
    model->Add(std::make_unique<ReluLayer>());
    // Rear "fc-like" layers: ~70% of parameters, little compute.
    model->Add(std::make_unique<LinearLayer>(64, 512));  // 33,280
    model->Add(std::make_unique<ReluLayer>());
    model->Add(std::make_unique<LinearLayer>(512, 10));  //  5,130
    model->Finalize(seed);
    return model;
  };
  TrainerConfig config;
  config.batch_size = 32;
  config.iterations_per_epoch = 20;
  config.epochs = 8;
  config.sgd.learning_rate = 0.08;
  config.sgd.momentum = 0.9;
  // Sized against the Ethernet cost model so that on an oversubscribed
  // fat-tree one iteration's sparse transfers at k/n = 5% roughly match
  // the backward window: enough compute to hide buckets behind, not so
  // much that the stream drains between launches and ordering stops
  // mattering.
  config.compute_seconds_per_iteration = 1.4e-2;
  // Conv-vs-fc compute split: front layers dominate the forward/backward
  // time even though the rear layers dominate the parameter count.
  config.layer_compute_fractions = {0.35, 0.25, 0.2, 0.15, 0.05};
  spec.default_config = config;
  return spec;
}

ConvergenceSeries RunTrainingCase(const TrainingCaseSpec& spec,
                                  const std::string& algo_name,
                                  const std::string& label,
                                  const TrainRunOptions& options) {
  auto dataset = spec.dataset_factory();
  TrainerConfig config = spec.default_config;
  config.epochs = options.epochs;
  config.iterations_per_epoch = options.iterations_per_epoch;
  config.sync_mode = options.sync_mode;
  if (options.lr_drop_fraction > 0.0) {
    config.sgd.lr_milestones = {
        {static_cast<int>(options.lr_drop_fraction * options.epochs), 0.1}};
  }

  TopologySpec fabric = ResolveFabric(options.topology, options.num_workers,
                                      options.cost_model);
  if (options.paper_scale_network && !spec.paper_model.empty()) {
    const ModelProfile& profile = ProfileByModel(spec.paper_model);
    const size_t actual_n = spec.model_factory(config.model_seed)->num_params();
    // Rescale the fabric's per-hop budget, so non-flat topologies keep
    // their relative trunk/access provisioning at paper scale.
    fabric.cost.beta *= static_cast<double>(profile.num_params) /
                        static_cast<double>(actual_n);
    config.compute_seconds_per_iteration = profile.compute_seconds;
  }

  // Like MeasurePerUpdate: the team layout is planned against the
  // *resolved* fabric, so a --topology override moves teams too.
  auto placement = PlanPlacement(fabric, options.num_workers,
                                 options.num_teams, options.placement);
  SPARDL_CHECK(placement.ok()) << placement.status().ToString();

  AlgorithmFactory algorithm_factory = [&, placement](size_t n) {
    AlgorithmConfig algo_config;
    algo_config.n = n;
    algo_config.k = std::max<size_t>(
        1, static_cast<size_t>(options.k_ratio * static_cast<double>(n)));
    algo_config.num_workers = options.num_workers;
    algo_config.num_teams = options.num_teams;
    algo_config.placement = *placement;
    algo_config.value_bits = options.value_bits;
    if (options.residual_mode.has_value()) {
      algo_config.residual_mode = *options.residual_mode;
    }
    if (options.sag_mode.has_value()) {
      algo_config.sag_mode = *options.sag_mode;
    }
    auto created = CreateAlgorithm(algo_name, algo_config);
    SPARDL_CHECK(created.ok()) << created.status().ToString();
    return std::move(*created);
  };

  Cluster cluster(fabric);
  ApplyExecBackend(cluster);
  MaybeEnableObservability(cluster);
  MaybeEnableProtocolCheck(cluster);
  const TrainResult result = TrainDistributed(
      cluster, *dataset, spec.model_factory, algorithm_factory, config);
  SPARDL_CHECK(result.replicas_consistent)
      << label << ": replicas diverged";
  ObserveRun(cluster, label);

  ConvergenceSeries series;
  series.label = label;
  series.metric = spec.metric;
  series.epochs = result.epochs;
  series.replicas_consistent = result.replicas_consistent;
  return series;
}

void PrintConvergence(const std::string& title,
                      const std::vector<ConvergenceSeries>& series) {
  std::printf("%s\n", title.c_str());
  const bool accuracy =
      !series.empty() && series[0].metric == TaskMetric::kAccuracy;
  TablePrinter table({"method", "epoch", "sim time (s)",
                      accuracy ? "test accuracy" : "test loss"});
  for (const ConvergenceSeries& s : series) {
    for (const EpochRecord& e : s.epochs) {
      table.AddRow({s.label, StrFormat("%d", e.epoch + 1),
                    StrFormat("%.3f", e.sim_seconds_cumulative),
                    accuracy ? StrFormat("%.1f%%", 100.0 * e.test_metric)
                             : StrFormat("%.4f", e.test_metric)});
    }
  }
  std::printf("%s", table.ToString().c_str());

  // Completion-time summary (the paper's speedup metric: time to finish
  // the same number of epochs).
  TablePrinter summary({"method", "total sim time (s)", "final metric",
                        "speedup vs first row"});
  const double reference = series[0].epochs.back().sim_seconds_cumulative;
  for (const ConvergenceSeries& s : series) {
    const double total = s.epochs.back().sim_seconds_cumulative;
    summary.AddRow(
        {s.label, StrFormat("%.3f", total),
         accuracy
             ? StrFormat("%.1f%%", 100.0 * s.epochs.back().test_metric)
             : StrFormat("%.4f", s.epochs.back().test_metric),
         StrFormat("%.2fx", reference / total)});
  }
  std::printf("%s\n", summary.ToString().c_str());
}

}  // namespace bench
}  // namespace spardl
