// Reproduces Fig. 15: per-epoch time across the first training epochs for
// each team count d (P = 14 and P = 12, VGG-16 profile). Paper claim: the
// per-epoch time of each configuration is stable across epochs, so the d
// with the least first-epoch time is (almost surely) the optimal d — the
// paper's recommended selection procedure (§III-D / §IV-G).

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench_util.h"
#include "common/strings.h"
#include "dl/grad_profile.h"
#include "metrics/table.h"
#include "simnet/cluster.h"

namespace spardl {
namespace {

// Simulated per-epoch seconds for `epochs` consecutive epochs (support
// drifts across iterations like real training).
std::vector<double> EpochTimes(const bench::HarnessArgs& args,
                               const std::string& algo, int p, int d,
                               int epochs, int iters_per_epoch) {
  const ModelProfile& profile = ProfileByModel("VGG-16");
  const size_t n = profile.num_params;
  const size_t k = n / 100;
  AlgorithmConfig config;
  config.n = n;
  config.k = k;
  config.num_workers = p;
  config.num_teams = d;
  config.residual_mode = ResidualMode::kNone;

  Cluster cluster(
      *args.TopologyOr(TopologySpec::Flat(p, CostModel::Ethernet()), p));
  bench::ApplyExecBackend(cluster);
  std::vector<std::unique_ptr<SparseAllReduce>> algos(
      static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    algos[static_cast<size_t>(r)] = std::move(*CreateAlgorithm(algo, config));
  }
  const ProfileGradientGenerator generator(n, 1234, 64,
                                           /*drift_period=*/iters_per_epoch);
  std::vector<double> times;
  int64_t iteration = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const double before = cluster.MaxSimSeconds();
    for (int i = 0; i < iters_per_epoch; ++i, ++iteration) {
      cluster.Run([&](Comm& comm) {
        const SparseVector candidates = generator.Generate(
            comm.rank(), iteration, k + k / 2);
        algos[static_cast<size_t>(comm.rank())]->RunOnSparse(comm,
                                                             candidates);
        comm.BarrierSyncClocks();
      });
    }
    times.push_back(cluster.MaxSimSeconds() - before +
                    profile.compute_seconds * iters_per_epoch);
  }
  return times;
}

void RunForWorkers(const bench::HarnessArgs& args, int p,
                   const std::vector<std::pair<std::string, int>>&
                       configurations) {
  const int epochs = 5;
  const int iters = args.iterations_or(8);
  TablePrinter table([&] {
    std::vector<std::string> header = {"config"};
    for (int e = 1; e <= epochs; ++e) {
      header.push_back(StrFormat("ep%d (s)", e));
    }
    return header;
  }());
  std::map<std::string, std::vector<double>> all;
  for (const auto& [label, d] : configurations) {
    const std::string algo = label[0] == 'B'   ? "spardl-bsag"
                             : label[0] == 'R' ? "spardl-rsag"
                                               : "spardl";
    std::vector<double> times = EpochTimes(args, algo, p, d, epochs, iters);
    std::vector<std::string> row = {label};
    for (double t : times) row.push_back(StrFormat("%.2f", t));
    table.AddRow(row);
    all[label] = times;
  }
  std::printf("P = %d (VGG-16 profile)\n%s\n", p,
              table.ToString().c_str());

  // Stability + winner consistency check.
  for (const auto& [label, times] : all) {
    const auto [min_it, max_it] =
        std::minmax_element(times.begin(), times.end());
    std::printf("  %-4s spread: %.1f%%\n", label.c_str(),
                100.0 * (*max_it - *min_it) / *min_it);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace spardl

int main(int argc, char** argv) {
  const spardl::bench::HarnessArgs args =
      spardl::bench::ParseHarnessArgs(argc, argv);
  std::printf(
      "== Fig. 15: per-epoch time stability across epochs ==\n\n");
  if (args.workers.has_value()) {
    // --workers collapses the two paper panels into one sweep of every
    // divisor d of the requested size (B-SAG, plus R-SAG at d=2).
    const int p = *args.workers;
    std::vector<std::pair<std::string, int>> configurations = {{"1", 1}};
    if (p % 2 == 0) configurations.push_back({"R2", 2});
    for (int d = 2; d <= p; ++d) {
      if (p % d == 0) {
        configurations.push_back({spardl::StrFormat("B%d", d), d});
      }
    }
    spardl::RunForWorkers(args, p, configurations);
  } else {
    spardl::RunForWorkers(
        args, 14, {{"1", 1}, {"R2", 2}, {"B2", 2}, {"B7", 7}, {"B14", 14}});
    spardl::RunForWorkers(args, 12, {{"1", 1},
                                     {"R2", 2},
                                     {"R4", 4},
                                     {"B2", 2},
                                     {"B3", 3},
                                     {"B4", 4},
                                     {"B6", 6},
                                     {"B12", 12}});
  }
  std::printf(
      "Paper claim: the optimal d is steadily fastest across epochs, so "
      "one epoch per candidate d suffices to pick it.\n");
  return 0;
}
