// Extension bench (beyond the paper's step-synchronous trainer):
// layer-bucketed communication/computation overlap. The same SparDL
// training run under the three `GradSyncMode`s —
//
//   step-synchronous   charge whole-iteration compute, then one
//                      whole-model sparse allreduce (the paper's S-SGD),
//   bucketed           one bucket per parameter layer, posted the instant
//                      its backward slice finishes (reverse layer order),
//   bucketed-priority  bucket launches reordered so front layers — the
//                      ones the next forward consumes first — finish
//                      earliest (Parallax/EmbRace-style scheduling),
//
// on a flat crossbar and on a contended oversubscribed fat-tree, with a
// nonzero per-iteration compute constant (the deep-overlap case, whose
// rear layers hold ~70% of the parameters while the front layers do most
// of the compute). Because the simnet anchors link occupancy at logical
// send times, posting buckets during backward genuinely hides their
// transfer behind the remaining compute; the table reports how much of
// the synchronous epoch that recovers on each fabric.
//
//   $ ./build/bench/bench_ext_overlap [--workers N] [--iterations N]
//         [--topology SPEC] [--engine busy|event]
//         [--placement contiguous|rack|interleaved]
//
// --topology replaces the two-fabric sweep with one fabric; --engine
// selects the charge engine everywhere (event = the deterministic simnet
// v3 discrete-event engine).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "dl/trainer.h"
#include "metrics/table.h"
#include "train_util.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const int p = args.workers_or(8);
  const int iterations = args.iterations_or(10);
  const int epochs = 2;
  const CostModel cm = CostModel::Ethernet();

  std::vector<TopologySpec> fabrics;
  if (args.topology.has_value()) {
    fabrics = {*args.TopologyOr(std::nullopt, p, cm)};
  } else {
    fabrics = {TopologySpec::Flat(p, cm),
               // Oversubscribed rack uplinks: the contended fabric where
               // hiding transfers behind backward pays off most.
               TopologySpec::FatTree(p, /*rack_size=*/p >= 8 ? 4 : 2,
                                     /*oversubscription=*/8.0, cm)};
    // Deterministic table by default; --engine busy opts back into the
    // busy-until engine's (bounded) contention nondeterminism.
    for (TopologySpec& fabric : fabrics) {
      fabric.engine = args.engine.value_or(ChargeEngine::kEventOrdered);
    }
  }

  const TrainingCaseSpec spec = bench::MakeDeepOverlapCase();
  const GradSyncMode modes[] = {GradSyncMode::kStepSynchronous,
                                GradSyncMode::kBucketed,
                                GradSyncMode::kBucketedPriority};

  std::printf(
      "== Extension: layer-bucketed comm/compute overlap ==\n"
      "SparDL training (%s), P=%d, %d epochs x %d\n"
      "iterations, k/n = 5%%. All replicas stay bit-identical within a\n"
      "mode; the modes reschedule *when* each layer's bucket travels,\n"
      "so the simulated clock is what changes.\n\n",
      spec.name.c_str(), p, epochs, iterations);

  TablePrinter table({"topology", "sync mode", "total sim (s)",
                      "comm s/epoch", "compute s/epoch", "vs sync"});
  for (const TopologySpec& fabric : fabrics) {
    double sync_total = 0.0;
    for (GradSyncMode mode : modes) {
      bench::TrainRunOptions options;
      options.num_workers = p;
      options.k_ratio = 0.05;
      options.epochs = epochs;
      options.iterations_per_epoch = iterations;
      options.cost_model = cm;
      options.topology = fabric;
      // The deep-overlap case carries its own compute constant, sized
      // against the Ethernet cost model; no paper-model rescaling.
      options.paper_scale_network = false;
      options.placement = args.placement_or(PlacementPolicy::kContiguous);
      options.sync_mode = mode;
      const bench::ConvergenceSeries series = bench::RunTrainingCase(
          spec, "spardl", std::string(GradSyncModeName(mode)), options);
      const EpochRecord& last = series.epochs.back();
      const double total = last.sim_seconds_cumulative;
      if (mode == GradSyncMode::kStepSynchronous) sync_total = total;
      table.AddRow({fabric.Describe(), std::string(GradSyncModeName(mode)),
                    StrFormat("%.3f", total),
                    StrFormat("%.3f", last.comm_seconds_epoch),
                    StrFormat("%.3f", last.compute_seconds_epoch),
                    StrFormat("%.2fx", sync_total / total)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: on the flat crossbar overlap hides most of the transfer\n"
      "behind backward; on the oversubscribed fat-tree the contended\n"
      "trunk stretches every bucket, and priority ordering recovers the\n"
      "front layers' forward stalls on top of plain bucketing.\n");
  return 0;
}
