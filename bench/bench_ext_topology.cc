// Extension bench (beyond the paper's flat §II model): the same sparse
// All-Reduce methods across simulated fabrics — flat crossbar, star
// (single switch, per-worker uplinks), oversubscribed two-rack fat-tree
// (single-core, and ECMP'd across two cores), a neighbour-link ring, and
// a 2D torus. Per-topology per-update communication time shows how each
// method's traffic pattern interacts with shared links: the flat model
// flatters everything; contention and multi-hop latency punish
// direct-send fan-in (TopkA) hardest, while SparDL's log-round block
// exchanges degrade most gracefully.
//
//   $ ./build/bench/bench_ext_topology [--workers N] [--iterations N]
//         [--topology SPEC] [--engine busy|event]
//         [--placement contiguous|rack|interleaved]
//
// --topology replaces the sweep with one fabric; --engine selects the
// charge engine for every fabric (event = the deterministic simnet v3
// discrete-event engine); --placement pins SparDL's team layout for the
// method table. A second table compares the three placement policies for
// SparDL (d = 2) on every multi-rack fabric of the sweep.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table.h"
#include "topo/placement.h"

int main(int argc, char** argv) {
  using namespace spardl;  // NOLINT
  const bench::HarnessArgs args = bench::ParseHarnessArgs(argc, argv);
  const int p = args.workers_or(8);
  // Large-P mode (P >= 256, the cooperative backend's territory): the
  // direct-send methods (topka; oktopk's threshold phase also fans in
  // P-wise) would materialise Theta(P^2) packets, so the sweep keeps the
  // log-round methods only, and k/n shrinks to 0.1% to bound per-worker
  // candidate volume.
  const bool large_p = p >= 256;
  // Paper-shaped but laptop-sized: 4M params, k/n = 1% (0.1% large-P).
  const ModelProfile profile = {"-", "synthetic", "-", 4'000'000, 0.0};
  const double k_ratio = large_p ? 0.001 : 0.01;
  const std::vector<std::string> algos =
      large_p ? std::vector<std::string>{"gtopk", "spardl"}
              : std::vector<std::string>{"topka", "gtopk", "oktopk",
                                         "spardl"};
  const CostModel cm = CostModel::Ethernet();
  std::vector<TopologySpec> fabrics;
  if (args.topology.has_value()) {
    fabrics = {*args.TopologyOr(std::nullopt, p, cm)};
  } else {
    fabrics = bench::DefaultFabricSweep(p, cm);
    if (large_p) {
      // O(P)-diameter fabrics turn every log-round exchange into
      // thousands of per-hop events; they are small-P illustrations.
      std::erase_if(fabrics, [](const TopologySpec& spec) {
        return spec.kind == TopologyKind::kRing ||
               spec.kind == TopologyKind::kTorus;
      });
    }
    if (args.engine.has_value()) {
      for (TopologySpec& fabric : fabrics) fabric.engine = *args.engine;
    }
  }
  if (large_p) {
    std::printf(
        "[large-P] P=%d: direct-send methods and O(P)-diameter fabrics "
        "excluded; k/n=0.1%%.\n\n",
        p);
  }

  std::printf(
      "== Extension: sparse All-Reduce across network topologies ==\n"
      "Per-update communication seconds (max over workers) on the same\n"
      "synthetic n=%zu, k/n=%.1f%% workload, P=%d. 'vs flat' is the "
      "fabric's\n"
      "slowdown over the paper's flat alpha-beta model for that method.\n\n",
      profile.num_params, k_ratio * 100.0, p);

  std::vector<std::string> header = {"topology"};
  for (const std::string& algo : algos) {
    header.push_back(algo);
    header.push_back("vs flat");
  }
  TablePrinter table(header);
  std::vector<double> flat_comm(algos.size(), 0.0);
  for (const TopologySpec& spec : fabrics) {
    bench::PerUpdateOptions options;
    options.num_workers = p;
    options.k_ratio = k_ratio;
    options.topology = spec;
    options.placement = args.placement_or(PlacementPolicy::kContiguous);
    options.measured_iterations = args.iterations_or(2);
    std::vector<std::string> row = {spec.Describe()};
    for (size_t a = 0; a < algos.size(); ++a) {
      const bench::PerUpdateResult r =
          bench::MeasurePerUpdate(algos[a], profile, options);
      if (spec.kind == TopologyKind::kFlat) flat_comm[a] = r.comm_seconds;
      row.push_back(StrFormat("%.4f s", r.comm_seconds));
      // No flat baseline when --topology narrows the sweep to one fabric.
      row.push_back(spec.kind == TopologyKind::kFlat
                        ? std::string("1.0x")
                        : (flat_comm[a] > 0.0
                               ? StrFormat("%.1fx",
                                           r.comm_seconds / flat_comm[a])
                               : std::string("-")));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  // Team-placement comparison: SparDL's d = 2 teams under each layout, on
  // every fabric of the sweep with more than one locality group (the
  // others cost the same under any layout and are skipped).
  if (p % 2 == 0) {
    TablePrinter placement_table({"topology", "contiguous", "rack-local",
                                  "interleaved"});
    bool any = false;
    for (const TopologySpec& spec : fabrics) {
      if (LocalityGroups(spec, p).size() <= 1) continue;
      any = true;
      std::vector<std::string> row = {spec.Describe()};
      for (PlacementPolicy policy : AllPlacementPolicies()) {
        bench::PerUpdateOptions options;
        options.num_workers = p;
        options.k_ratio = k_ratio;
        options.topology = spec;
        options.num_teams = 2;
        options.placement = policy;
        options.measured_iterations = args.iterations_or(2);
        const bench::PerUpdateResult r =
            bench::MeasurePerUpdate("spardl", profile, options);
        row.push_back(StrFormat("%.4f s", r.comm_seconds));
      }
      placement_table.AddRow(row);
    }
    if (any) {
      std::printf(
          "team placement (SparDL, d=2): per-update comm seconds by "
          "layout\n%s\n",
          placement_table.ToString().c_str());
    }
  }

  std::printf(
      "Reading: star adds sender-uplink serialization, so fan-out-heavy "
      "phases queue; the oversubscribed fat-tree multiplies every "
      "cross-rack word, hurting bandwidth-heavy baselines most (the "
      "2-core ECMP row shows how much of that pain is trunk contention "
      "rather than oversubscription); the ring and torus turn each "
      "log-round exchange into multi-hop latency. SparDL's near-constant "
      "per-worker volume keeps it ahead on every fabric, but the margins "
      "shift — exactly the axis the flat Table-I model cannot see.\n");
  return 0;
}
